package composable_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesSmoke builds and runs every walkthrough under examples/ in
// its quickest mode (EXAMPLES_ITERS=2), so the examples cannot silently
// rot as the platform underneath them moves. Each example must exit zero
// and print something.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test spawns the go tool; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no examples found")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	binDir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			bin := filepath.Join(binDir, name)
			build := exec.CommandContext(ctx, goTool, "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			cmd := exec.CommandContext(ctx, bin)
			cmd.Env = append(os.Environ(), "EXAMPLES_ITERS=2")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
