// Package composable is a full-system simulation of the IBM Research
// composable infrastructure test bed described in "Performance Analysis of
// Deep Learning Workloads on a Composable System" (El Maghraoui et al.,
// IPDPS Workshops 2021, arXiv:2103.10911), together with the deep-learning
// software stack and benchmark suite needed to regenerate every table and
// figure of the paper's evaluation.
//
// The public entry points live in internal/core (composition + training),
// internal/experiments (the paper's tables and figures, plus the S1–S4
// fleet-scheduling and R1–R3 fault-recovery studies), internal/orchestrator
// (the multi-job fleet scheduler with dynamic GPU recomposition and
// fault recovery, from one chassis up to multi-pod spine/leaf fleets of
// 1000+ GPUs), internal/faults (the deterministic failure engine:
// link degradation, GPU/drawer/host failures and repairs, played into a
// run with checkpoint/restart recovery) and the commands under cmd/.
// See README.md for a module tour, a quickstart, and the paper-to-module
// substitution map.
package composable
