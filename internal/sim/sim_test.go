package sim

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSleepOrdering(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Go("b", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		order = append(order, "b")
	})
	e.Go("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		order = append(order, "a")
	})
	e.Go("c", func(p *Proc) {
		p.Sleep(30 * time.Millisecond)
		order = append(order, "c")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("final time = %v, want 30ms", e.Now())
	}
}

func TestSameInstantDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEnv()
		var got []int
		for i := 0; i < 10; i++ {
			e.Go("p", func(p *Proc) {
				p.Sleep(5 * time.Millisecond)
				got = append(got, i)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("non-deterministic ordering: %v vs %v", first, again)
			}
		}
	}
	// Spawn order should equal execution order at the same instant.
	for i, v := range first {
		if v != i {
			t.Fatalf("same-instant order not FIFO: %v", first)
		}
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEnv()
	var doneAt time.Duration
	e.Go("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		e.Go("child", func(c *Proc) {
			c.Sleep(2 * time.Millisecond)
			doneAt = c.Now()
		})
		p.Sleep(time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Millisecond {
		t.Fatalf("child finished at %v, want 3ms", doneAt)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEnv()
	ticks := 0
	e.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	if err := e.RunUntil(10500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if e.Now() != 10500*time.Millisecond {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestSignalBroadcastAndLateWait(t *testing.T) {
	e := NewEnv()
	var sig Signal
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			sig.Wait(p)
			woken++
			if p.Now() != 5*time.Millisecond {
				t.Errorf("woken at %v, want 5ms", p.Now())
			}
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		sig.Fire(e)
	})
	e.Go("late", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		sig.Wait(p) // already fired: returns immediately
		woken++
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestResourceFIFOAndCapacity(t *testing.T) {
	e := NewEnv()
	r := NewResource("gpu", 2)
	var order []string
	hold := func(name string, d time.Duration) {
		e.Go(name, func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, name+"+")
			p.Sleep(d)
			r.Release(e, 1)
			order = append(order, name+"-")
		})
	}
	hold("a", 10*time.Millisecond)
	hold("b", 10*time.Millisecond)
	hold("c", 10*time.Millisecond) // must wait for a or b
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "a+" || order[1] != "b+" {
		t.Fatalf("order = %v", order)
	}
	// c acquires only after a release.
	seenRelease := false
	for _, ev := range order {
		if ev == "a-" || ev == "b-" {
			seenRelease = true
		}
		if ev == "c+" && !seenRelease {
			t.Fatalf("c acquired before any release: %v", order)
		}
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("end = %v, want 20ms", e.Now())
	}
}

func TestResourceLargeRequestNotStarved(t *testing.T) {
	e := NewEnv()
	r := NewResource("mem", 4)
	var bigAt time.Duration
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(10 * time.Millisecond)
		r.Release(e, 3)
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 4) // queued first
		bigAt = p.Now()
		r.Release(e, 4)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		r.Acquire(p, 1) // must NOT jump the queue
		if bigAt == 0 {
			t.Error("small request overtook queued large request")
		}
		r.Release(e, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if bigAt != 10*time.Millisecond {
		t.Fatalf("big acquired at %v, want 10ms", bigAt)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEnv()
	r := NewResource("x", 2)
	e.Go("u", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(10 * time.Millisecond)
		r.Release(e, 2)
		p.Sleep(10 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := r.Utilization(e)
	if got < 0.49 || got > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", got)
	}
}

func TestQueueBlockingAndClose(t *testing.T) {
	e := NewEnv()
	q := NewQueue("batches")
	var got []int
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			q.Put(e, i)
		}
		q.Close(e)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

// TestSameInstantHeapFIFOInterleave pins the ordering contract between the
// two event queues: an event already in the heap for time t (scheduled
// before t arrived, so with a smaller seq) must run before events scheduled
// *at* t (which take the FIFO fast path), and FIFO events run in seq order.
func TestSameInstantHeapFIFOInterleave(t *testing.T) {
	e := NewEnv()
	var got []int
	e.Schedule(time.Millisecond, func() {
		got = append(got, 1)
		// Scheduled at the current instant: FIFO path, seq 3 and 4.
		e.Schedule(time.Millisecond, func() { got = append(got, 3) })
		e.After(0, func() { got = append(got, 4) })
	})
	// Also at 1ms but seq 2: sits in the heap, must beat the FIFO entries.
	e.Schedule(time.Millisecond, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestConcurrentEnvsRace runs many independent environments in parallel,
// each hammering the pooled event storage (heap, same-instant FIFO, wake
// events). Under -race this guards against the reused event slices ever
// becoming shared state across environments.
func TestConcurrentEnvsRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEnv()
			r := NewResource("r", 2)
			var sig Signal
			var done WaitGroup
			const procs = 4
			done.Add(procs)
			for i := 0; i < procs; i++ {
				e.Go("w", func(p *Proc) {
					sig.Wait(p)
					for j := 0; j < 200; j++ {
						r.Acquire(p, 1)
						p.Sleep(0) // FIFO fast path
						p.Sleep(time.Microsecond)
						r.Release(e, 1)
					}
					done.Done(e)
				})
			}
			e.Go("firer", func(p *Proc) {
				p.Sleep(time.Microsecond)
				sig.Fire(e)
				done.Wait(p)
			})
			if err := e.Run(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestDeadlockReportsLazyReasons checks the deadlock error renders the
// kind+detail wait state that replaced the per-yield formatted string.
func TestDeadlockReportsLazyReasons(t *testing.T) {
	e := NewEnv()
	var sig Signal
	r := NewResource("gpu0", 1)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 1)
		sig.Wait(p)
	})
	e.Go("queued", func(p *Proc) { r.Acquire(p, 1) })
	e.Go("napper", func(p *Proc) {
		p.Sleep(time.Millisecond)
		sig.Wait(p)
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	for _, want := range []string{"signal", "resource gpu0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadlock error %q missing %q", err, want)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEnv()
	var sig Signal
	e.Go("stuck", func(p *Proc) { sig.Wait(p) })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEnv()
	var wg WaitGroup
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		e.Go("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done(e)
		})
	}
	var doneAt time.Duration
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Millisecond {
		t.Fatalf("waiter released at %v, want 3ms", doneAt)
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEnv()
	e.Go("boom", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("kaboom")
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestScheduleCallbackOrdering(t *testing.T) {
	e := NewEnv()
	var got []int
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 11) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 11 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEnv()
	r := NewResource("x", 2)
	e.Go("p", func(p *Proc) {
		if !r.TryAcquire(e, 2) {
			t.Error("try on free resource failed")
		}
		if r.TryAcquire(e, 1) {
			t.Error("try on exhausted resource succeeded")
		}
		r.Release(e, 2)
		if !r.TryAcquire(e, 1) {
			t.Error("try after release failed")
		}
		r.Release(e, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := NewEnv()
	var hits []time.Duration
	e.Schedule(time.Millisecond, func() {
		hits = append(hits, e.Now())
		e.After(time.Millisecond, func() { hits = append(hits, e.Now()) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[1] != 2*time.Millisecond {
		t.Fatalf("hits = %v", hits)
	}
}

func TestAddBusyClamped(t *testing.T) {
	e := NewEnv()
	r := NewResource("x", 1)
	e.Go("p", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		r.AddBusy(e, time.Hour) // clamped to elapsed time
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(e); u > 1.0 {
		t.Fatalf("utilization %v exceeds 1", u)
	}
}
