// The sim-core micro-benchmarks. The shared harness bodies live in
// internal/perfbench so that `go test -bench` here and `benchrunner
// -bench-json` measure the exact same code; this file only wraps them and
// adds the spawn-heavy shapes the trajectory file doesn't track.
package sim_test

import (
	"testing"
	"time"

	"composable/internal/perfbench"
	"composable/internal/sim"
)

// BenchmarkScheduleCallbacks measures the raw event-queue cost with no
// process handoffs: one self-rescheduled callback per op.
func BenchmarkScheduleCallbacks(b *testing.B) { perfbench.BenchSimScheduleCallbacks(b) }

// BenchmarkSleepWake measures the full process path — schedule, heap,
// wake, yield — one Sleep per op across interleaved processes.
func BenchmarkSleepWake(b *testing.B) { perfbench.BenchSimSleepWake(b) }

// BenchmarkSameInstantWake measures zero-duration sleeps, the case the
// FIFO fast path serves.
func BenchmarkSameInstantWake(b *testing.B) { perfbench.BenchSimSameInstantFIFO(b) }

// BenchmarkSignalFanout measures a broadcast wake: one op spawns a cohort
// of waiters, fires the signal, and joins them — the Fire/Done wake path
// collectives lean on.
func BenchmarkSignalFanout(b *testing.B) {
	const waiters = 32
	e := sim.NewEnv()
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			sig := &sim.Signal{}
			wg := &sim.WaitGroup{}
			wg.Add(waiters)
			for w := 0; w < waiters; w++ {
				e.Go("waiter", func(q *sim.Proc) {
					sig.Wait(q)
					wg.Done(e)
				})
			}
			p.Sleep(time.Microsecond)
			sig.Fire(e)
			wg.Wait(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures Acquire/Release through a contended
// FIFO queue: per op, one short hold on a resource that always has waiters.
func BenchmarkResourceContention(b *testing.B) {
	e := sim.NewEnv()
	r := sim.NewResource("bench", 2)
	const procs = 6
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Go("worker", func(p *sim.Proc) {
			for j := 0; j < per; j++ {
				r.Acquire(p, 1)
				p.Sleep(time.Microsecond)
				r.Release(e, 1)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
