// Package sim is a deterministic discrete-event simulation engine.
//
// The engine drives goroutine-based processes over a virtual clock with a
// strict one-at-a-time handoff: exactly one process (or event callback) runs
// at any instant, and the order of execution is fully determined by
// (timestamp, scheduling sequence number). This makes simulations of the
// composable system reproducible bit-for-bit across runs, which the
// experiment harness relies on.
//
// The design follows the SimPy school: a process is an ordinary function
// that blocks on primitives such as Proc.Sleep, Resource.Acquire or
// Signal.Wait; behind the scenes each block is a yield back to the event
// loop. Because handoff is strict, no locking is needed inside models.
//
// The inner loop is allocation-free in steady state: events are small
// values stored in a reusable typed 4-ary heap (no container/heap
// interface boxing, no per-event pointer), process wake-ups carry the
// *Proc directly instead of a closure, and events scheduled for the
// current instant bypass the heap through a reusable FIFO. Both queues
// respect the global (timestamp, seq) order, so the fast paths change
// nothing about execution order.
package sim

import (
	"fmt"
	"sort"
	"time"
)

// Time is virtual simulation time measured from the start of the run.
type Time = time.Duration

// event is a scheduled wake-up or callback, stored by value. The common
// case — waking a blocked process (Sleep, Signal.Fire, WaitGroup.Done,
// Resource.Release, Queue hand-offs) — carries the process directly in
// proc, so scheduling it allocates nothing. sig carries a deferred
// Signal.Fire the same closure-free way (fabric uses it for flow latency
// fires). fn is the general-purpose callback used by Schedule/After.
// Events with equal timestamps fire in scheduling order (seq), which
// keeps the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	do  eventDo // *Proc (wake), *Signal (fire), or eventFn (call)
}

// eventDo is the closed union of event payloads. All three implementations
// are pointer-shaped, so storing one in the interface never allocates, and
// the union keeps event at 32 bytes — two payload pointer fields instead of
// three. The struct size is load-bearing: the event value is copied on
// every enqueue, heap sift and pop, and growing it to 40 bytes measurably
// (~3x) slows the pure callback-chain hot path.
type eventDo interface{ isEvent() }

func (*Proc) isEvent()   {}
func (*Signal) isEvent() {}

// eventFn is a Schedule/After callback boxed as an eventDo.
type eventFn func()

func (eventFn) isEvent() {}

func eventBefore(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, spawn processes with Go, then call Run.
type Env struct {
	now Time
	seq uint64
	// heap is a 4-ary min-heap of events ordered by (at, seq); its backing
	// array is reused across the whole run.
	heap []event
	// fifo holds events scheduled for the current instant, in seq order
	// (every entry's at equals now). It is drained ahead of same-instant
	// heap entries with larger seq and its storage is recycled on drain.
	fifo     []event
	fifoHead int
	// rootWake parks the Run caller while processes hold the dispatch
	// baton; the goroutine whose dispatch ends the run (queue drained,
	// limit reached, failure) sends on it. Capacity 1 so the root's own
	// ending dispatch can self-signal.
	rootWake chan struct{}
	// limit is the RunUntil horizon for the current run (-1 for Run).
	limit Time
	// fnPanicked/fnPanic capture a panic from a Schedule/After callback.
	// Under the baton-passing handoff the callback may execute on a
	// process goroutine, but Run's contract is that callback panics escape
	// Run itself — so the panic value is carried to the root goroutine and
	// rethrown there.
	fnPanicked bool
	fnPanic    any
	// curCont is the process whose stepper continuation dispatch is running
	// inline right now; dispatch's recover uses it to attribute a panic to
	// the owning process instead of treating it as a callback panic.
	curCont *Proc
	// procs is the live process set, maintained by swap-remove via each
	// Proc's procIdx — spawn and completion sit on the scheduler's hot
	// path, so membership must not cost a map hash.
	procs   []*Proc
	running bool
	failure error
	// freeProcs parks the goroutines of completed processes for reuse:
	// spawning a process is on the fleet scheduler's per-attempt path
	// (every training rank, feeder and watcher is one), and recycling the
	// Proc, its resume channel and its goroutine makes a steady-state Go
	// allocation-free. The pool is drained when run returns so an idle Env
	// never pins parked goroutines.
	freeProcs []*Proc
	// onEvent, when set, observes every dispatched event's timestamp. It is
	// the engine's invariant probe point (internal/invariant watches it for
	// event-time monotonicity); the nil check keeps the hot loop free.
	onEvent func(at Time)
	// nEvents counts dispatched events for the whole run — a free-running
	// engine odometer the observability layer samples as a gauge.
	nEvents uint64
	// procStart/procEnd, when set, observe goroutine-backed process
	// lifetimes (spawn in Go, completion in runOne). procStart returns an
	// opaque token carried on the Proc and handed back to procEnd, which
	// is how internal/obs turns each process into one trace span without
	// the engine knowing what a span is. Steppers are not reported: they
	// live for the whole run and would only add noise.
	procStart func(name string, at Time) uint64
	procEnd   func(token uint64, at Time)
}

// SetEventProbe installs fn to be called with the timestamp of every event
// the loop dispatches, in dispatch order. Pass nil to remove the probe. The
// probe must not mutate simulation state; it exists for invariant checking
// and tracing.
func (e *Env) SetEventProbe(fn func(at Time)) { e.onEvent = fn }

// SetProcProbe installs lifetime observers for goroutine-backed processes:
// start is called at spawn and returns a token, end receives that token
// when the process completes. Zero tokens are never handed to end, so an
// observer can use 0 as "not traced". Pass nils to remove the probes. Like
// the event probe, the observers must not mutate simulation state.
func (e *Env) SetProcProbe(start func(name string, at Time) uint64, end func(token uint64, at Time)) {
	e.procStart = start
	e.procEnd = end
}

// EventCount returns the number of events dispatched so far across the
// environment's lifetime.
func (e *Env) EventCount() uint64 { return e.nEvents }

// LiveProcs returns the number of currently live processes (including
// steppers).
func (e *Env) LiveProcs() int { return len(e.procs) }

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{rootWake: make(chan struct{}, 1)}
}

// addProc appends p to the live set.
//
//perf:hot
func (e *Env) addProc(p *Proc) {
	p.procIdx = len(e.procs)
	e.procs = append(e.procs, p)
}

// dropProc swap-removes p from the live set.
//
//perf:hot
func (e *Env) dropProc(p *Proc) {
	last := len(e.procs) - 1
	moved := e.procs[last]
	e.procs[p.procIdx] = moved
	moved.procIdx = p.procIdx
	e.procs[last] = nil
	e.procs = e.procs[:last]
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Schedule registers fn to run at absolute virtual time at. Times in the
// past are clamped to the current instant. Schedule may be called before
// Run or from inside a running process or event callback.
//
//perf:hot
func (e *Env) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, do: eventFn(fn)})
}

// scheduleWake registers a wake-up of p at absolute time at. It is the
// closure-free fast path behind every blocking primitive in the package.
//
//perf:hot
func (e *Env) scheduleWake(p *Proc, at Time) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, do: p})
}

// enqueue routes an event to the same-instant FIFO or the heap.
//
//perf:hot
func (e *Env) enqueue(ev event) {
	if ev.at == e.now {
		e.fifo = append(e.fifo, ev)
		return
	}
	e.heapPush(ev)
}

// After registers fn to run d from now.
func (e *Env) After(d time.Duration, fn func()) { e.Schedule(e.now+d, fn) }

// ScheduleSignal registers s to fire at absolute virtual time at. It is
// the closure-free equivalent of Schedule(at, func() { s.Fire(e) }) and
// obeys the same (timestamp, seq) ordering.
//
//perf:hot
func (e *Env) ScheduleSignal(at Time, s *Signal) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, do: s})
}

// AfterSignal registers s to fire d from now, closure-free.
//
//perf:hot
func (e *Env) AfterSignal(d time.Duration, s *Signal) { e.ScheduleSignal(e.now+d, s) }

// heapPush and heapPop maintain the 4-ary min-heap. A 4-ary layout halves
// the tree depth of the binary heap, and sifting event values directly
// avoids both container/heap's interface{} boxing and a pointer chase per
// comparison.
//
//perf:hot
func (e *Env) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventBefore(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

//perf:hot
func (e *Env) heapPop() event {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // release the fn/proc references
	h = h[:last]
	e.heap = h
	i := 0
	for {
		first := 4*i + 1
		if first >= len(h) {
			break
		}
		min := first
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		for c := first + 1; c < end; c++ {
			if eventBefore(&h[c], &h[min]) {
				min = c
			}
		}
		if !eventBefore(&h[min], &h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// waitKind classifies what a blocked process is waiting for. The render to
// a human-readable reason happens only in deadlock reports, so the hot
// yield path never formats strings.
type waitKind uint8

const (
	waitNone waitKind = iota
	waitSleep
	waitSignal
	waitGroup
	waitResource
	waitQueue
)

// Proc is a running simulation process. All blocking primitives take the
// Proc so that only code executing inside the process can block it.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
	// fn is the body the loop goroutine runs on its next wake; exit tells
	// a parked goroutine to terminate when the pool drains. procIdx is the
	// process's slot in Env.procs while live.
	fn      func(p *Proc)
	exit    bool
	procIdx int
	// cont (or contS), when non-nil, marks a stepper: a goroutine-free
	// process whose wake-up events invoke the continuation inline on the
	// dispatching goroutine instead of a context switch (NewStepper,
	// InitStepperFor). contS is the closure-free variant: storing a
	// pointer in the interface costs no allocation, where a bound method
	// value costs one.
	cont  func()
	contS Stepper
	// waitN > 0 marks a WaitAll in progress: the process is registered on
	// waitN unfired signals and must not be woken until the last one fires.
	// padFrom/padFactor, when padFactor > 0, defer that wake further by
	// (fire time − padFrom) × padFactor (WaitAllPadded).
	waitN     int
	padFrom   Time
	padFactor float64
	// What the process is blocked on; rendered lazily by deadlockError.
	waitKind waitKind
	waitDur  time.Duration // waitSleep
	waitName string        // waitResource, waitQueue
	// obsTok is the opaque lifetime-probe token from Env.procStart (0 =
	// untraced); runOne hands it back to Env.procEnd on completion.
	obsTok uint64
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// blockedOn renders the process's wait state for deadlock reports.
func (p *Proc) blockedOn() string {
	switch p.waitKind {
	case waitSleep:
		return "sleep " + p.waitDur.String()
	case waitSignal:
		return "signal"
	case waitGroup:
		return "waitgroup"
	case waitResource:
		return "resource " + p.waitName
	case waitQueue:
		return "queue " + p.waitName
	default:
		return "runnable"
	}
}

// Go spawns fn as a new process starting at the current virtual time.
// It may be called before Run or from within the simulation. Completed
// processes leave their goroutine parked for the next Go, so spawning is
// allocation-free in steady state.
//
//perf:hot
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(e.freeProcs); n > 0 {
		p = e.freeProcs[n-1]
		e.freeProcs[n-1] = nil
		e.freeProcs = e.freeProcs[:n-1]
		p.name = name
		p.done = false
	} else {
		p = e.newProc(name)
	}
	p.fn = fn
	e.addProc(p)
	p.obsTok = 0
	if e.procStart != nil {
		p.obsTok = e.procStart(name, e.now)
	}
	// The start is an ordinary wake event: the loop goroutine is already
	// blocked on resume and runs fn on its first wake, exactly where the
	// pre-pooling implementation scheduled its spawn closure.
	e.seq++
	e.enqueue(event{at: e.now, seq: e.seq, do: p})
	return p
}

// newProc allocates a fresh process and starts its parked loop goroutine
// (the Go miss path).
func (e *Env) newProc(name string) *Proc {
	// resume has capacity 1 so a dispatching goroutine can deposit the
	// baton for a process that has not parked yet — including itself.
	p := &Proc{env: e, name: name, resume: make(chan struct{}, 1)}
	go p.loop()
	return p
}

// loop is the persistent body of a process goroutine: run one spawned
// function per wake, park in between. It terminates when the pool drains
// (exit) or the goroutine unwinds via runtime.Goexit inside fn (a test
// failing inside a process), in which case runOne does not park it.
func (p *Proc) loop() {
	for {
		<-p.resume
		if p.exit {
			return
		}
		p.runOne()
	}
}

// runOne executes the current fn with the same termination protocol the
// engine always had: on return, recovered panic, or Goexit the process is
// marked done, removed from the live set, and the baton is passed onward
// by dispatching the next event from this goroutine. Only a goroutine that
// survives (normal return or recovered panic) parks itself for reuse; the
// pool append happens before dispatch so that, if dispatch itself selects
// the wake-up of a Go that reused this very Proc, the baton self-deposit
// works and loop runs the new fn next.
func (p *Proc) runOne() {
	e := p.env
	completed := false
	defer func() {
		r := recover()
		if r != nil && e.failure == nil {
			e.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
		}
		p.fn = nil
		p.done = true
		if e.procEnd != nil && p.obsTok != 0 {
			e.procEnd(p.obsTok, e.now)
			p.obsTok = 0
		}
		e.dropProc(p)
		if completed || r != nil {
			e.freeProcs = append(e.freeProcs, p)
		}
		e.dispatch()
	}()
	p.fn(p)
	completed = true
}

// drainProcPool terminates every parked process goroutine. run calls it on
// the way out so an idle or finished Env holds no goroutines; the next Run
// (or RunUntil segment) simply repopulates the pool on demand.
func (e *Env) drainProcPool() {
	for i, p := range e.freeProcs {
		p.exit = true
		p.resume <- struct{}{}
		e.freeProcs[i] = nil
	}
	e.freeProcs = e.freeProcs[:0]
}

// dispatch is the event loop under the baton-passing handoff: it runs on
// whichever goroutine currently holds control (the Run caller initially, a
// yielding or completing process thereafter). Callback and signal events
// execute inline with no goroutine switch at all; a process wake-up sends
// the baton directly to that process's goroutine and returns, costing one
// switch instead of the two (yielder→root, root→next) of a central loop.
// The event selection logic is identical either way, so execution order —
// and therefore determinism — is unchanged. When the run is over (queue
// drained, limit reached, failure, callback panic) the baton goes back to
// the root goroutine parked in run.
//
//perf:hot
func (e *Env) dispatch() {
	// One deferred recover covers every callback and stepper the loop below
	// runs inline. Hoisting it here — instead of wrapping each call — keeps
	// the per-event path free of defer setup while preserving both panic
	// protocols: a stepper panic becomes that process's failure (an error
	// from Run), a Schedule/After callback panic is carried to the root
	// goroutine and rethrown from Run. Either way the run is over, so the
	// recovering frame hands the baton straight back to the root.
	defer e.recoverDispatch()
	for e.failure == nil && !e.fnPanicked {
		var ev event
		if e.fifoHead < len(e.fifo) {
			// Same-instant fast path. A heap entry at the current instant
			// can still precede the FIFO head if it was scheduled earlier
			// (smaller seq) while now was in its future.
			if len(e.heap) > 0 && e.heap[0].at == e.now && e.heap[0].seq < e.fifo[e.fifoHead].seq {
				ev = e.heapPop()
			} else {
				ev = e.fifo[e.fifoHead]
				e.fifo[e.fifoHead] = event{} // release the fn/proc references
				e.fifoHead++
				if e.fifoHead == len(e.fifo) {
					e.fifo = e.fifo[:0]
					e.fifoHead = 0
				}
			}
		} else if len(e.heap) > 0 {
			if e.limit >= 0 && e.heap[0].at > e.limit {
				e.now = e.limit
				break
			}
			ev = e.heapPop()
			e.now = ev.at
		} else {
			break
		}
		e.nEvents++
		if e.onEvent != nil {
			e.onEvent(ev.at)
		}
		switch do := ev.do.(type) {
		case *Proc:
			p := do
			p.waitKind = waitNone
			if p.cont != nil || p.contS != nil {
				// Stepper: its continuation runs inline, no switch. curCont
				// marks the owner so the deferred recover above attributes a
				// panic to this process rather than to a plain callback.
				e.curCont = p
				if p.cont != nil {
					p.cont()
				} else {
					p.contS.Step()
				}
				e.curCont = nil
				continue
			}
			p.resume <- struct{}{}
			return
		case *Signal:
			do.Fire(e)
		default:
			ev.do.(eventFn)()
		}
	}
	e.rootWake <- struct{}{}
}

// recoverDispatch is dispatch's deferred panic handler. As a method rather
// than a closure literal it costs dispatch no allocation, and since it is
// the deferred function itself, recover works inside it.
func (e *Env) recoverDispatch() {
	r := recover()
	if r == nil {
		return
	}
	if p := e.curCont; p != nil {
		e.curCont = nil
		if e.failure == nil {
			e.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
		}
	} else {
		e.fnPanicked = true
		e.fnPanic = r
	}
	e.rootWake <- struct{}{}
}

// yield returns control from the process to the event loop by dispatching
// the next event from this goroutine, then blocks the process until it is
// woken again. kind is recorded for deadlock reports. The resume channel
// has capacity 1, so a dispatch that selects this very process's wake-up
// (possible when the wake was scheduled before yielding, as Sleep does)
// deposits the baton and falls through to the receive immediately.
//
//perf:hot
func (p *Proc) yield(kind waitKind) {
	p.waitKind = kind
	p.env.dispatch()
	<-p.resume
}

// yieldNamed is yield with the blocking primitive's name attached.
func (p *Proc) yieldNamed(kind waitKind, name string) {
	p.waitName = name
	p.yield(kind)
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process is rescheduled after already-queued events
// at the same instant).
//
//perf:hot
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.env
	e.scheduleWake(p, e.now+d)
	p.waitDur = d
	p.yield(waitSleep)
}

// Run executes events until the queue drains or a process panics. It
// returns an error if any process panicked or if processes remain blocked
// with no pending events (a deadlock).
func (e *Env) Run() error { return e.run(-1) }

// RunUntil executes events up to and including virtual time t.
// Processes still alive at t simply stop being scheduled; this is the
// normal way to run an open-ended simulation for a fixed horizon.
func (e *Env) RunUntil(t Time) error { return e.run(t) }

func (e *Env) run(limit Time) error {
	if e.running {
		return fmt.Errorf("sim: Run called re-entrantly")
	}
	e.running = true
	e.limit = limit
	defer func() {
		e.drainProcPool()
		e.running = false
	}()
	e.dispatch()
	<-e.rootWake
	if e.fnPanicked {
		r := e.fnPanic
		e.fnPanicked, e.fnPanic = false, nil
		panic(r)
	}
	if e.failure != nil {
		return e.failure
	}
	if limit < 0 && len(e.procs) > 0 {
		return e.deadlockError()
	}
	return nil
}

func (e *Env) deadlockError() error {
	var waits []string
	for _, p := range e.procs {
		waits = append(waits, fmt.Sprintf("%s (waiting: %s)", p.name, p.blockedOn()))
	}
	sort.Strings(waits)
	return fmt.Errorf("sim: deadlock, %d blocked process(es): %v", len(waits), waits)
}

// Signal is a broadcast one-shot event. Processes Wait on it; Fire releases
// all current and future waiters. The zero value is ready to use.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all waiters at the current instant. Firing twice is a no-op.
// Fire must be called from inside the simulation (a process or callback).
// The waiter backing array is kept for reuse by a Reset signal.
//
//perf:hot
func (s *Signal) Fire(e *Env) {
	if s.fired {
		return
	}
	s.fired = true
	ws := s.waiters
	s.waiters = ws[:0]
	for i, p := range ws {
		if p.waitN > 0 {
			// WaitAll registration: only the last signal of the set
			// schedules the wake, padded if WaitAllPadded asked for it.
			if p.waitN--; p.waitN == 0 {
				at := e.now
				if p.padFactor > 0 {
					at += time.Duration(float64(at-p.padFrom) * p.padFactor)
					p.padFactor = 0
				}
				e.scheduleWake(p, at)
			}
		} else {
			e.scheduleWake(p, e.now)
		}
		ws[i] = nil
	}
}

// Reset returns a fired signal to its unfired state, keeping the waiter
// backing array. It is for owners that recycle signal-bearing structures
// (pooled fabric flows); the caller must guarantee no process still holds
// a reference expecting the previous firing.
func (s *Signal) Reset() {
	s.fired = false
	s.waiters = s.waiters[:0]
}

// Wait blocks the process until the signal fires. It returns immediately
// if the signal already fired.
//
//perf:hot
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.yield(waitSignal)
}

// WaitAll blocks the process until every signal in sigs has fired. Unlike
// waiting on each signal in turn — which parks and wakes the process once
// per unfired signal — WaitAll registers on all pending signals up front
// and parks at most once: the last signal to fire schedules the single
// wake. The virtual time at which the process resumes is identical to the
// sequential formulation (the maximum of the signals' fire times).
//
//perf:hot
func WaitAll(p *Proc, sigs []*Signal) {
	pending := 0
	for _, s := range sigs {
		if !s.fired {
			s.waiters = append(s.waiters, p)
			pending++
		}
	}
	if pending == 0 {
		return
	}
	p.waitN = pending
	p.padFactor = 0
	p.yield(waitSignal)
}

// WaitAllPadded is WaitAll followed by a proportional cool-down: the
// process resumes at T + (T − from) × factor, where T is the instant the
// last signal fires. It exists for the collective rings, whose per-round
// protocol overhead is a fixed fraction of the round's transfer time —
// folding the cool-down into the wake-up halves the parks per round
// versus WaitAll-then-Sleep while resuming at exactly the same virtual
// time.
//
//perf:hot
func WaitAllPadded(p *Proc, sigs []*Signal, from Time, factor float64) {
	pending := 0
	for _, s := range sigs {
		if !s.fired {
			s.waiters = append(s.waiters, p)
			pending++
		}
	}
	e := p.env
	if pending == 0 {
		// Everything already fired: the elapsed time is known here.
		if d := time.Duration(float64(e.now-from) * factor); d > 0 {
			p.Sleep(d)
		}
		return
	}
	p.waitN = pending
	p.padFrom, p.padFactor = from, factor
	p.yield(waitSignal)
}

// NewStepper returns a goroutine-free process: a control block whose
// wake-up events invoke step inline on whatever goroutine is dispatching,
// costing a function call where a goroutine-backed process costs a context
// switch. Steppers drive engine-internal state machines on the hot path
// (the collective rings); they cannot block, so step advances the machine
// and re-arms via ArmWaitAllPadded or Ready before returning. A stepper is
// not tracked in the live-process set — a machine that stalls surfaces
// through whatever process waits on its result, not the deadlock report.
func (e *Env) NewStepper(name string, step func()) *Proc {
	return &Proc{env: e, name: name, cont: step}
}

// Stepper is a state machine driven by an embedded Proc; see
// InitStepperFor.
type Stepper interface {
	Step()
}

// InitStepperFor initializes p (typically a Proc embedded in s itself) as
// a stepper whose wake-ups call s.Step(). Unlike NewStepper with a bound
// method value, wiring an interface costs no allocation — the pattern for
// pooled or per-op machines created on a hot path.
func (e *Env) InitStepperFor(p *Proc, name string, s Stepper) {
	p.env, p.name, p.contS = e, name, s
	p.cont = nil
}

// Ready schedules sp's next step at the current instant, in ordinary
// (timestamp, seq) order — the stepper equivalent of Go's spawn wake.
//
//perf:hot
func (e *Env) Ready(sp *Proc) {
	e.seq++
	e.enqueue(event{at: e.now, seq: e.seq, do: sp})
}

// ReadyAfter schedules sp's next step d from now — the stepper
// equivalent of a Sleep wake, occupying the same (timestamp, seq)
// position a blocking process's Sleep(d) would.
//
//perf:hot
func (e *Env) ReadyAfter(sp *Proc, d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.enqueue(event{at: e.now + d, seq: e.seq, do: sp})
}

// ArmWaitAllPadded is WaitAllPadded for steppers: it registers sp on every
// unfired signal and returns true if at least one is pending, in which
// case sp's step runs at T + (T − from) × factor, where T is the instant
// the last signal fires — the exact event position WaitAllPadded would
// have woken a blocking process at. If every signal has already fired it
// registers nothing and returns false; the caller continues inline (the
// blocking formulation would not have parked either).
//
//perf:hot
func ArmWaitAllPadded(sp *Proc, sigs []*Signal, from Time, factor float64) bool {
	pending := 0
	for _, s := range sigs {
		if !s.fired {
			s.waiters = append(s.waiters, sp)
			pending++
		}
	}
	if pending == 0 {
		return false
	}
	sp.waitN = pending
	sp.padFrom, sp.padFactor = from, factor
	sp.waitKind = waitSignal
	return true
}

// WaitGroup counts outstanding work items inside a simulation; Wait blocks
// until the count returns to zero. Unlike sync.WaitGroup it is not
// goroutine-safe — by design, since the engine is single-threaded.
type WaitGroup struct {
	n       int
	waiters []*Proc
}

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: WaitGroup counter went negative")
	}
}

// Done decrements the counter, waking waiters when it reaches zero. The
// waiter backing array is kept for reuse by a re-Added group.
//
//perf:hot
func (w *WaitGroup) Done(e *Env) {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup counter went negative")
	}
	if w.n == 0 {
		ws := w.waiters
		w.waiters = ws[:0]
		for i, p := range ws {
			e.scheduleWake(p, e.now)
			ws[i] = nil
		}
	}
}

// Wait blocks until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.yield(waitGroup)
}

// Arm registers stepper sp to step when the counter reaches zero and
// returns true; if the counter is already zero it registers nothing and
// returns false and the caller continues inline — the stepper counterpart
// of Wait.
//
//perf:hot
func (w *WaitGroup) Arm(sp *Proc) bool {
	if w.n == 0 {
		return false
	}
	w.waiters = append(w.waiters, sp)
	sp.waitKind = waitGroup
	return true
}

// Arm registers stepper sp to step when the signal fires and returns true;
// if it already fired it registers nothing and returns false — the
// stepper counterpart of Wait.
//
//perf:hot
func (s *Signal) Arm(sp *Proc) bool {
	if s.fired {
		return false
	}
	s.waiters = append(s.waiters, sp)
	sp.waitKind = waitSignal
	return true
}
