// Package sim is a deterministic discrete-event simulation engine.
//
// The engine drives goroutine-based processes over a virtual clock with a
// strict one-at-a-time handoff: exactly one process (or event callback) runs
// at any instant, and the order of execution is fully determined by
// (timestamp, scheduling sequence number). This makes simulations of the
// composable system reproducible bit-for-bit across runs, which the
// experiment harness relies on.
//
// The design follows the SimPy school: a process is an ordinary function
// that blocks on primitives such as Proc.Sleep, Resource.Acquire or
// Signal.Wait; behind the scenes each block is a yield back to the event
// loop. Because handoff is strict, no locking is needed inside models.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Time is virtual simulation time measured from the start of the run.
type Time = time.Duration

// event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (seq), which keeps the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, spawn processes with Go, then call Run.
type Env struct {
	now     Time
	seq     uint64
	events  eventHeap
	ack     chan struct{}
	procs   map[*Proc]struct{}
	running bool
	failure error
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		ack:   make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Schedule registers fn to run at absolute virtual time at. Times in the
// past are clamped to the current instant. Schedule may be called before
// Run or from inside a running process or event callback.
func (e *Env) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// After registers fn to run d from now.
func (e *Env) After(d time.Duration, fn func()) { e.Schedule(e.now+d, fn) }

// Proc is a running simulation process. All blocking primitives take the
// Proc so that only code executing inside the process can block it.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
	// blockedOn describes what the process is waiting for; used in
	// deadlock reports.
	blockedOn string
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns fn as a new process starting at the current virtual time.
// It may be called before Run or from within the simulation.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	e.Schedule(e.now, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if e.failure == nil {
						e.failure = fmt.Errorf("sim: process %q panicked: %v", name, r)
					}
				}
				p.done = true
				delete(e.procs, p)
				e.ack <- struct{}{}
			}()
			<-p.resume
			fn(p)
		}()
		e.wake(p)
	})
	return p
}

// wake hands control to p and blocks until p yields or finishes.
func (e *Env) wake(p *Proc) {
	p.blockedOn = ""
	p.resume <- struct{}{}
	<-e.ack
}

// yield returns control from the process to the event loop and blocks the
// process until it is woken again. reason is recorded for deadlock reports.
func (p *Proc) yield(reason string) {
	p.blockedOn = reason
	p.env.ack <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process is rescheduled after already-queued events
// at the same instant).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.env
	e.Schedule(e.now+d, func() { e.wake(p) })
	p.yield(fmt.Sprintf("sleep %v", d))
}

// Run executes events until the queue drains or a process panics. It
// returns an error if any process panicked or if processes remain blocked
// with no pending events (a deadlock).
func (e *Env) Run() error { return e.run(-1) }

// RunUntil executes events up to and including virtual time t.
// Processes still alive at t simply stop being scheduled; this is the
// normal way to run an open-ended simulation for a fixed horizon.
func (e *Env) RunUntil(t Time) error { return e.run(t) }

func (e *Env) run(limit Time) error {
	if e.running {
		return fmt.Errorf("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		if e.failure != nil {
			return e.failure
		}
		next := e.events[0]
		if limit >= 0 && next.at > limit {
			e.now = limit
			return nil
		}
		heap.Pop(&e.events)
		e.now = next.at
		next.fn()
	}
	if e.failure != nil {
		return e.failure
	}
	if limit < 0 && len(e.procs) > 0 {
		return e.deadlockError()
	}
	return nil
}

func (e *Env) deadlockError() error {
	var waits []string
	for p := range e.procs {
		waits = append(waits, fmt.Sprintf("%s (waiting: %s)", p.name, p.blockedOn))
	}
	sort.Strings(waits)
	return fmt.Errorf("sim: deadlock, %d blocked process(es): %v", len(waits), waits)
}

// Signal is a broadcast one-shot event. Processes Wait on it; Fire releases
// all current and future waiters. The zero value is ready to use.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all waiters at the current instant. Firing twice is a no-op.
// Fire must be called from inside the simulation (a process or callback).
func (s *Signal) Fire(e *Env) {
	if s.fired {
		return
	}
	s.fired = true
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		p := p
		e.Schedule(e.now, func() { e.wake(p) })
	}
}

// Wait blocks the process until the signal fires. It returns immediately
// if the signal already fired.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.yield("signal")
}

// WaitGroup counts outstanding work items inside a simulation; Wait blocks
// until the count returns to zero. Unlike sync.WaitGroup it is not
// goroutine-safe — by design, since the engine is single-threaded.
type WaitGroup struct {
	n       int
	waiters []*Proc
}

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: WaitGroup counter went negative")
	}
}

// Done decrements the counter, waking waiters when it reaches zero.
func (w *WaitGroup) Done(e *Env) {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup counter went negative")
	}
	if w.n == 0 {
		ws := w.waiters
		w.waiters = nil
		for _, p := range ws {
			p := p
			e.Schedule(e.now, func() { e.wake(p) })
		}
	}
}

// Wait blocks until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.yield("waitgroup")
}
