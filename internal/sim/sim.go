// Package sim is a deterministic discrete-event simulation engine.
//
// The engine drives goroutine-based processes over a virtual clock with a
// strict one-at-a-time handoff: exactly one process (or event callback) runs
// at any instant, and the order of execution is fully determined by
// (timestamp, scheduling sequence number). This makes simulations of the
// composable system reproducible bit-for-bit across runs, which the
// experiment harness relies on.
//
// The design follows the SimPy school: a process is an ordinary function
// that blocks on primitives such as Proc.Sleep, Resource.Acquire or
// Signal.Wait; behind the scenes each block is a yield back to the event
// loop. Because handoff is strict, no locking is needed inside models.
//
// The inner loop is allocation-free in steady state: events are small
// values stored in a reusable typed 4-ary heap (no container/heap
// interface boxing, no per-event pointer), process wake-ups carry the
// *Proc directly instead of a closure, and events scheduled for the
// current instant bypass the heap through a reusable FIFO. Both queues
// respect the global (timestamp, seq) order, so the fast paths change
// nothing about execution order.
package sim

import (
	"fmt"
	"sort"
	"time"
)

// Time is virtual simulation time measured from the start of the run.
type Time = time.Duration

// event is a scheduled wake-up or callback, stored by value. The common
// case — waking a blocked process (Sleep, Signal.Fire, WaitGroup.Done,
// Resource.Release, Queue hand-offs) — carries the process directly in
// proc, so scheduling it allocates nothing. fn is the general-purpose
// callback used by Schedule/After. Events with equal timestamps fire in
// scheduling order (seq), which keeps the simulation deterministic.
type event struct {
	at   Time
	seq  uint64
	proc *Proc  // non-nil: wake this process
	fn   func() // otherwise: run this callback
}

func eventBefore(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, spawn processes with Go, then call Run.
type Env struct {
	now Time
	seq uint64
	// heap is a 4-ary min-heap of events ordered by (at, seq); its backing
	// array is reused across the whole run.
	heap []event
	// fifo holds events scheduled for the current instant, in seq order
	// (every entry's at equals now). It is drained ahead of same-instant
	// heap entries with larger seq and its storage is recycled on drain.
	fifo     []event
	fifoHead int
	ack      chan struct{}
	procs    map[*Proc]struct{}
	running  bool
	failure  error
	// onEvent, when set, observes every dispatched event's timestamp. It is
	// the engine's invariant probe point (internal/invariant watches it for
	// event-time monotonicity); the nil check keeps the hot loop free.
	onEvent func(at Time)
}

// SetEventProbe installs fn to be called with the timestamp of every event
// the loop dispatches, in dispatch order. Pass nil to remove the probe. The
// probe must not mutate simulation state; it exists for invariant checking
// and tracing.
func (e *Env) SetEventProbe(fn func(at Time)) { e.onEvent = fn }

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		ack:   make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Schedule registers fn to run at absolute virtual time at. Times in the
// past are clamped to the current instant. Schedule may be called before
// Run or from inside a running process or event callback.
//
//perf:hot
func (e *Env) Schedule(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, fn: fn})
}

// scheduleWake registers a wake-up of p at absolute time at. It is the
// closure-free fast path behind every blocking primitive in the package.
//
//perf:hot
func (e *Env) scheduleWake(p *Proc, at Time) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.enqueue(event{at: at, seq: e.seq, proc: p})
}

// enqueue routes an event to the same-instant FIFO or the heap.
//
//perf:hot
func (e *Env) enqueue(ev event) {
	if ev.at == e.now {
		e.fifo = append(e.fifo, ev)
		return
	}
	e.heapPush(ev)
}

// After registers fn to run d from now.
func (e *Env) After(d time.Duration, fn func()) { e.Schedule(e.now+d, fn) }

// heapPush and heapPop maintain the 4-ary min-heap. A 4-ary layout halves
// the tree depth of the binary heap, and sifting event values directly
// avoids both container/heap's interface{} boxing and a pointer chase per
// comparison.
//
//perf:hot
func (e *Env) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventBefore(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

//perf:hot
func (e *Env) heapPop() event {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // release the fn/proc references
	h = h[:last]
	e.heap = h
	i := 0
	for {
		first := 4*i + 1
		if first >= len(h) {
			break
		}
		min := first
		end := first + 4
		if end > len(h) {
			end = len(h)
		}
		for c := first + 1; c < end; c++ {
			if eventBefore(&h[c], &h[min]) {
				min = c
			}
		}
		if !eventBefore(&h[min], &h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// waitKind classifies what a blocked process is waiting for. The render to
// a human-readable reason happens only in deadlock reports, so the hot
// yield path never formats strings.
type waitKind uint8

const (
	waitNone waitKind = iota
	waitSleep
	waitSignal
	waitGroup
	waitResource
	waitQueue
)

// Proc is a running simulation process. All blocking primitives take the
// Proc so that only code executing inside the process can block it.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
	// What the process is blocked on; rendered lazily by deadlockError.
	waitKind waitKind
	waitDur  time.Duration // waitSleep
	waitName string        // waitResource, waitQueue
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// blockedOn renders the process's wait state for deadlock reports.
func (p *Proc) blockedOn() string {
	switch p.waitKind {
	case waitSleep:
		return "sleep " + p.waitDur.String()
	case waitSignal:
		return "signal"
	case waitGroup:
		return "waitgroup"
	case waitResource:
		return "resource " + p.waitName
	case waitQueue:
		return "queue " + p.waitName
	default:
		return "runnable"
	}
}

// Go spawns fn as a new process starting at the current virtual time.
// It may be called before Run or from within the simulation.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	e.Schedule(e.now, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if e.failure == nil {
						e.failure = fmt.Errorf("sim: process %q panicked: %v", name, r)
					}
				}
				p.done = true
				delete(e.procs, p)
				e.ack <- struct{}{}
			}()
			<-p.resume
			fn(p)
		}()
		e.wake(p)
	})
	return p
}

// wake hands control to p and blocks until p yields or finishes.
//
//perf:hot
func (e *Env) wake(p *Proc) {
	p.waitKind = waitNone
	p.resume <- struct{}{}
	<-e.ack
}

// yield returns control from the process to the event loop and blocks the
// process until it is woken again. kind is recorded for deadlock reports.
//
//perf:hot
func (p *Proc) yield(kind waitKind) {
	p.waitKind = kind
	p.env.ack <- struct{}{}
	<-p.resume
}

// yieldNamed is yield with the blocking primitive's name attached.
func (p *Proc) yieldNamed(kind waitKind, name string) {
	p.waitName = name
	p.yield(kind)
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process is rescheduled after already-queued events
// at the same instant).
//
//perf:hot
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.env
	e.scheduleWake(p, e.now+d)
	p.waitDur = d
	p.yield(waitSleep)
}

// Run executes events until the queue drains or a process panics. It
// returns an error if any process panicked or if processes remain blocked
// with no pending events (a deadlock).
func (e *Env) Run() error { return e.run(-1) }

// RunUntil executes events up to and including virtual time t.
// Processes still alive at t simply stop being scheduled; this is the
// normal way to run an open-ended simulation for a fixed horizon.
func (e *Env) RunUntil(t Time) error { return e.run(t) }

func (e *Env) run(limit Time) error {
	if e.running {
		return fmt.Errorf("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		if e.failure != nil {
			return e.failure
		}
		var ev event
		if e.fifoHead < len(e.fifo) {
			// Same-instant fast path. A heap entry at the current instant
			// can still precede the FIFO head if it was scheduled earlier
			// (smaller seq) while now was in its future.
			if len(e.heap) > 0 && e.heap[0].at == e.now && e.heap[0].seq < e.fifo[e.fifoHead].seq {
				ev = e.heapPop()
			} else {
				ev = e.fifo[e.fifoHead]
				e.fifo[e.fifoHead] = event{} // release the fn/proc references
				e.fifoHead++
				if e.fifoHead == len(e.fifo) {
					e.fifo = e.fifo[:0]
					e.fifoHead = 0
				}
			}
		} else if len(e.heap) > 0 {
			if limit >= 0 && e.heap[0].at > limit {
				e.now = limit
				return nil
			}
			ev = e.heapPop()
			e.now = ev.at
		} else {
			break
		}
		if e.onEvent != nil {
			e.onEvent(ev.at)
		}
		if ev.proc != nil {
			e.wake(ev.proc)
		} else {
			ev.fn()
		}
	}
	if e.failure != nil {
		return e.failure
	}
	if limit < 0 && len(e.procs) > 0 {
		return e.deadlockError()
	}
	return nil
}

func (e *Env) deadlockError() error {
	var waits []string
	for p := range e.procs {
		waits = append(waits, fmt.Sprintf("%s (waiting: %s)", p.name, p.blockedOn()))
	}
	sort.Strings(waits)
	return fmt.Errorf("sim: deadlock, %d blocked process(es): %v", len(waits), waits)
}

// Signal is a broadcast one-shot event. Processes Wait on it; Fire releases
// all current and future waiters. The zero value is ready to use.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all waiters at the current instant. Firing twice is a no-op.
// Fire must be called from inside the simulation (a process or callback).
func (s *Signal) Fire(e *Env) {
	if s.fired {
		return
	}
	s.fired = true
	ws := s.waiters
	s.waiters = nil
	for _, p := range ws {
		e.scheduleWake(p, e.now)
	}
}

// Wait blocks the process until the signal fires. It returns immediately
// if the signal already fired.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.yield(waitSignal)
}

// WaitGroup counts outstanding work items inside a simulation; Wait blocks
// until the count returns to zero. Unlike sync.WaitGroup it is not
// goroutine-safe — by design, since the engine is single-threaded.
type WaitGroup struct {
	n       int
	waiters []*Proc
}

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: WaitGroup counter went negative")
	}
}

// Done decrements the counter, waking waiters when it reaches zero.
func (w *WaitGroup) Done(e *Env) {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup counter went negative")
	}
	if w.n == 0 {
		ws := w.waiters
		w.waiters = nil
		for _, p := range ws {
			e.scheduleWake(p, e.now)
		}
	}
}

// Wait blocks until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.yield(waitGroup)
}
