package sim

import "fmt"

// Resource is a counting semaphore with a FIFO wait queue: the standard
// model for exclusive or capacity-limited hardware (a GPU's compute engine,
// a storage controller's queue slots, CPU cores).
type Resource struct {
	name     string
	capacity int
	inUse    int
	waiters  []resWaiter
	// busy accounting for utilization metrics.
	accumBusy  Time
	lastChange Time
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given capacity (> 0).
func NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity must be positive", name))
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks the process until n units are available, then takes them.
// Requests are granted strictly FIFO, so a large request cannot be starved
// by a stream of small ones.
//
//perf:hot
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		//lint:allow hotalloc(panic path only: formats a misuse report, never runs in steady state)
		panic(fmt.Sprintf("sim: acquire %d of resource %q (capacity %d)", n, r.name, r.capacity))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.take(p.env, n)
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	p.yieldNamed(waitResource, r.name)
}

// TryAcquire takes n units if immediately available, reporting success.
func (r *Resource) TryAcquire(e *Env, n int) bool {
	if n <= 0 || n > r.capacity {
		return false
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.take(e, n)
		return true
	}
	return false
}

// Release returns n units and wakes as many FIFO waiters as now fit.
//
//perf:hot
func (r *Resource) Release(e *Env, n int) {
	if n <= 0 || n > r.inUse {
		//lint:allow hotalloc(panic path only: formats a misuse report, never runs in steady state)
		panic(fmt.Sprintf("sim: release %d of resource %q (in use %d)", n, r.name, r.inUse))
	}
	r.account(e)
	r.inUse -= n
	// Pop admitted waiters by copying the tail down rather than reslicing
	// the head away: the backing array keeps its capacity, so the next
	// Acquire appends without reallocating.
	woken := 0
	for woken < len(r.waiters) {
		w := r.waiters[woken]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.inUse += w.n
		e.scheduleWake(w.p, e.now)
		woken++
	}
	if woken > 0 {
		m := copy(r.waiters, r.waiters[woken:])
		for i := m; i < len(r.waiters); i++ {
			r.waiters[i] = resWaiter{}
		}
		r.waiters = r.waiters[:m]
	}
}

//perf:hot
func (r *Resource) take(e *Env, n int) {
	r.account(e)
	r.inUse += n
}

// AddBusy credits the resource with extra busy time without occupying it,
// for activity the resource performs that is not modeled as a hold (e.g.
// NCCL kernels keeping a GPU "utilized" while the training process waits
// on a collective). The credit is clamped so utilization cannot exceed 1.
func (r *Resource) AddBusy(e *Env, d Time) {
	if d <= 0 {
		return
	}
	r.account(e)
	r.accumBusy += d
	if r.accumBusy > e.now {
		r.accumBusy = e.now
	}
}

// account accrues busy time weighted by occupancy since the last change.
//
//perf:hot
func (r *Resource) account(e *Env) {
	dt := e.now - r.lastChange
	if dt > 0 && r.inUse > 0 {
		r.accumBusy += Time(float64(dt) * float64(r.inUse) / float64(r.capacity))
	}
	r.lastChange = e.now
}

// Utilization returns the occupancy-weighted busy fraction of the resource
// over [0, now]. It is what a sampling monitor (nvidia-smi, top) would
// report as average utilization.
func (r *Resource) Utilization(e *Env) float64 {
	if e.now == 0 {
		return 0
	}
	busy := r.accumBusy
	dt := e.now - r.lastChange
	if dt > 0 && r.inUse > 0 {
		busy += Time(float64(dt) * float64(r.inUse) / float64(r.capacity))
	}
	return float64(busy) / float64(e.now)
}

// UtilizationSince returns the busy fraction accrued after mark, where mark
// is a previous snapshot from BusySnapshot. Used by periodic samplers.
func (r *Resource) UtilizationSince(e *Env, markTime, markBusy Time) (frac float64) {
	busy := r.accumBusy
	dt := e.now - r.lastChange
	if dt > 0 && r.inUse > 0 {
		busy += Time(float64(dt) * float64(r.inUse) / float64(r.capacity))
	}
	window := e.now - markTime
	if window <= 0 {
		return 0
	}
	frac = float64(busy-markBusy) / float64(window)
	// AddBusy credits (e.g. NCCL kernels) can land in the same window as
	// held-occupancy time; a utilization is still a fraction.
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return frac
}

// BusySnapshot returns (now, accumulated busy time) for use with
// UtilizationSince.
func (r *Resource) BusySnapshot(e *Env) (Time, Time) {
	busy := r.accumBusy
	dt := e.now - r.lastChange
	if dt > 0 && r.inUse > 0 {
		busy += Time(float64(dt) * float64(r.inUse) / float64(r.capacity))
	}
	return e.now, busy
}

// Queue is an unbounded FIFO channel between processes: producers Put items
// and consumers Get them, blocking when empty. It models staging buffers
// such as a data loader's ready-batch queue.
type Queue struct {
	name    string
	items   []interface{}
	waiters []*Proc
	closed  bool
}

// NewQueue creates an empty queue.
func NewQueue(name string) *Queue { return &Queue{name: name} }

// Len returns the number of buffered items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends an item and wakes one waiting consumer.
func (q *Queue) Put(e *Env, item interface{}) {
	if q.closed {
		panic(fmt.Sprintf("sim: put on closed queue %q", q.name))
	}
	q.items = append(q.items, item)
	q.wakeOne(e)
}

// Close marks the queue as finished; blocked and future Gets return
// (nil, false) once drained.
func (q *Queue) Close(e *Env) {
	q.closed = true
	for len(q.waiters) > 0 {
		q.wakeOne(e)
	}
}

//perf:hot
func (q *Queue) wakeOne(e *Env) {
	if len(q.waiters) == 0 {
		return
	}
	p := q.waiters[0]
	m := copy(q.waiters, q.waiters[1:])
	q.waiters[m] = nil
	q.waiters = q.waiters[:m]
	e.scheduleWake(p, e.now)
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. ok is false when the queue is closed and drained.
//
//perf:hot
func (q *Queue) Get(p *Proc) (item interface{}, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.waiters = append(q.waiters, p)
		p.yieldNamed(waitQueue, q.name)
	}
	item = q.items[0]
	m := copy(q.items, q.items[1:])
	q.items[m] = nil
	q.items = q.items[:m]
	return item, true
}
