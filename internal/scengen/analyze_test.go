package scengen

import (
	"strings"
	"testing"
)

// TestAnalyzeFleetAndCheckSLO pins the sweep-facing SLO assertion
// path: a generous SLO holds on a seeded scenario, an impossible one
// reports the failing clause with its actual value, and the analysis
// ledger-balances against the outcome.
func TestAnalyzeFleetAndCheckSLO(t *testing.T) {
	out, a, err := AnalyzeFleet(FleetFromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(out.Result.Jobs) {
		t.Fatalf("analysis sees %d jobs, result has %d", len(a.Jobs), len(out.Result.Jobs))
	}

	if err := CheckSLO("p99-wait<=24h max-failed<=0 util>=0", a, out.Stats()); err != nil {
		t.Errorf("generous SLO should hold: %v", err)
	}
	err = CheckSLO("p99-latency<=1ns goodput>=1e9", a, out.Stats())
	if err == nil {
		t.Fatal("impossible SLO passed")
	}
	if !strings.Contains(err.Error(), "p99-latency<=1ns") || !strings.Contains(err.Error(), "goodput>=1e9") {
		t.Errorf("violation message should name both failed clauses, got: %v", err)
	}

	if err := CheckSLO("bogus<=1", a, out.Stats()); err == nil {
		t.Error("bad SLO spec should fail to parse")
	}
}

// TestAnalyzeFaultyFleetWinddown pins that a faulty scenario's
// analysis carries fault wind-down blame when kills occurred.
func TestAnalyzeFaultyFleetWinddown(t *testing.T) {
	fleet := trimJobs(FleetFromSeed(1), 3)
	sc := SanitizeFaults(FaultScenario{
		Fleet: fleet,
		Plan:  PlanForFleet(3, fleet),
	})
	out, a, err := AnalyzeFaultyFleet(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	kills := 0
	for i := range a.Jobs {
		kills += a.Jobs[i].Kills
	}
	if kills != out.Result.Kills {
		t.Errorf("analysis sees %d kills, result says %d", kills, out.Result.Kills)
	}
}

func trimJobs(sc FleetScenario, n int) FleetScenario {
	if len(sc.Jobs) > n {
		sc.Jobs = sc.Jobs[:n]
	}
	return sc
}
