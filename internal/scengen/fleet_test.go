package scengen

import (
	"os"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"composable/internal/orchestrator"
)

// fleetSweepParams reads the fleet sweep shape from the environment so CI
// can pin the seed and scale the scenario count without code changes.
func fleetSweepParams(t *testing.T) (base int64, n int) {
	base, n = 1, 100
	if s := os.Getenv("FLEET_SWEEP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FLEET_SWEEP_SEED: %v", err)
		}
		base = v
	}
	if s := os.Getenv("FLEET_SWEEP_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("FLEET_SWEEP_N: bad value %q", s)
		}
		n = v
	}
	return base, n
}

// TestFleetScenarioSweep is the fleet analog of TestScenarioSweep: N
// seeded fleet scenarios (default 100, override via FLEET_SWEEP_N /
// FLEET_SWEEP_SEED), each run twice end to end with the full invariant
// probe set — sim/fabric conservation plus the orchestrator invariants
// (no double-assignment, attach/detach conservation, queue-lifecycle
// monotonicity). The two executions must produce byte-identical telemetry
// fingerprints.
func TestFleetScenarioSweep(t *testing.T) {
	base, n := fleetSweepParams(t)

	seeds := make(chan int64)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				sc := FleetFromSeed(seed)
				first, err := RunFleet(sc)
				if err != nil {
					fail("seed %d (%s): %v", seed, sc.ID(), err)
					continue
				}
				if err := first.Err(); err != nil {
					fail("seed %d (%s): %v", seed, sc.ID(), err)
					continue
				}
				second, err := RunFleet(sc)
				if err != nil {
					fail("seed %d (%s): repeat: %v", seed, sc.ID(), err)
					continue
				}
				if err := second.Err(); err != nil {
					fail("seed %d (%s): repeat: %v", seed, sc.ID(), err)
					continue
				}
				if first.Fingerprint != second.Fingerprint {
					fail("seed %d (%s): two in-process fleet runs diverged:\n--- first\n%s--- second\n%s",
						seed, sc.ID(), first.Fingerprint, second.Fingerprint)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		seeds <- base + int64(i)
	}
	close(seeds)
	wg.Wait()
}

// podSweepParams reads the pod sweep shape from the environment (CI pins
// the seed and bounds the count via POD_SWEEP_SEED / POD_SWEEP_N).
func podSweepParams(t *testing.T) (base int64, n int) {
	base, n = 1, 100
	if s := os.Getenv("POD_SWEEP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("POD_SWEEP_SEED: %v", err)
		}
		base = v
	}
	if s := os.Getenv("POD_SWEEP_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("POD_SWEEP_N: bad value %q", s)
		}
		n = v
	}
	return base, n
}

// TestPodScenarioSweep extends the run-twice determinism tier to
// hierarchical fleets: N seeded pod-shaped scenarios (multi-chassis,
// spine/leaf, oversubscribed uplinks, cross-chassis recomposition), each
// run twice with the full invariant probe set; the fingerprints must be
// byte-identical.
func TestPodScenarioSweep(t *testing.T) {
	base, n := podSweepParams(t)

	seeds := make(chan int64)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				sc := PodFleetFromSeed(seed)
				first, err := RunFleet(sc)
				if err != nil {
					fail("seed %d (%s): %v", seed, sc.ID(), err)
					continue
				}
				if err := first.Err(); err != nil {
					fail("seed %d (%s): %v", seed, sc.ID(), err)
					continue
				}
				second, err := RunFleet(sc)
				if err != nil {
					fail("seed %d (%s): repeat: %v", seed, sc.ID(), err)
					continue
				}
				if err := second.Err(); err != nil {
					fail("seed %d (%s): repeat: %v", seed, sc.ID(), err)
					continue
				}
				if first.Fingerprint != second.Fingerprint {
					fail("seed %d (%s): two in-process pod fleet runs diverged:\n--- first\n%s--- second\n%s",
						seed, sc.ID(), first.Fingerprint, second.Fingerprint)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		seeds <- base + int64(i)
	}
	close(seeds)
	wg.Wait()
}

func TestPodFleetFromSeedDeterministic(t *testing.T) {
	crossChassis := false
	for seed := int64(1); seed <= 50; seed++ {
		a, b := PodFleetFromSeed(seed), PodFleetFromSeed(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: PodFleetFromSeed not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if !a.podShaped() || a.TotalGPUs() != a.GPUs*a.Pods*a.ChassisPerPod {
			t.Fatalf("seed %d: not pod-shaped: %+v", seed, a)
		}
		for _, j := range a.Jobs {
			if j.GPUs > a.GPUs {
				crossChassis = true // demand larger than one chassis
			}
		}
	}
	if !crossChassis {
		t.Error("no generated job ever overflows a single chassis; the sweep never exercises cross-chassis placement")
	}
}

func TestFleetFromSeedDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := FleetFromSeed(seed), FleetFromSeed(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: FleetFromSeed not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
}

func TestSanitizeFleetIdempotentAndValid(t *testing.T) {
	raw := FleetScenario{
		Hosts: 99, GPUs: -3, Policy: "nope", AttachLatency: -5,
		Jobs: []orchestrator.JobSpec{{GPUs: 40, Workload: "bogus", Tenant: 7}},
	}
	once := SanitizeFleet(raw)
	twice := SanitizeFleet(once)
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("SanitizeFleet not idempotent:\n%+v\n%+v", once, twice)
	}
	if once.Hosts != 3 || once.GPUs < 2 || once.Policy != "drawer" {
		t.Errorf("bad clamps: %+v", once)
	}
	if _, err := RunFleet(once); err != nil {
		t.Errorf("sanitized scenario failed to run: %v", err)
	}
}

func TestSanitizeFleetStaticFitsShares(t *testing.T) {
	sc := SanitizeFleet(FleetScenario{
		Hosts: 3, GPUs: 7, Policy: "static",
		Jobs: []orchestrator.JobSpec{
			{GPUs: 6, Tenant: 0, Workload: "ResNet-50", Epochs: 1, ItersPerEpoch: 2},
			{GPUs: 6, Tenant: 2, Workload: "ResNet-50", Epochs: 1, ItersPerEpoch: 2},
		},
	})
	if !sc.Preattach {
		t.Error("static scenario not preattached")
	}
	for _, j := range sc.Jobs {
		share := (sc.GPUs + sc.Hosts - 1 - j.Tenant) / sc.Hosts
		if j.GPUs > share {
			t.Errorf("tenant %d demand %d over share %d", j.Tenant, j.GPUs, share)
		}
	}
	out, err := RunFleet(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	if out.Result.Recompositions != 0 {
		t.Errorf("static run recomposed %d times", out.Result.Recompositions)
	}
}
