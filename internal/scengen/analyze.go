package scengen

import (
	"fmt"
	"strings"

	"composable/internal/obs"
	"composable/internal/obs/analyze"
)

// AnalyzeFleet runs the scenario observed and hands back both the
// outcome and its post-hoc trace analysis — the one-call path sweeps
// and experiments use to assert on attribution or SLOs.
func AnalyzeFleet(sc FleetScenario) (*FleetOutcome, *analyze.Analysis, error) {
	c := obs.NewCollector()
	out, err := RunFleetObserved(sc, c)
	if err != nil {
		return nil, nil, err
	}
	return out, analyze.FromCollector(c).Analyze(), nil
}

// AnalyzeFaultyFleet is AnalyzeFleet for a faulty scenario.
func AnalyzeFaultyFleet(sc FaultScenario) (*FleetOutcome, *analyze.Analysis, error) {
	c := obs.NewCollector()
	out, err := RunFaultyFleetObserved(sc, c)
	if err != nil {
		return nil, nil, err
	}
	return out, analyze.FromCollector(c).Analyze(), nil
}

// Stats converts the outcome's FleetResult into the analyzer's
// run-level stats, unlocking goodput/utilization SLO clauses.
func (o *FleetOutcome) Stats() analyze.FleetStats {
	return analyze.FleetStats{
		Goodput:     o.Result.Goodput,
		Utilization: o.Result.Utilization,
		Known:       true,
	}
}

// CheckSLO parses and evaluates a declarative SLO spec against an
// analysis. The returned error (nil when healthy) names every failed
// clause with its actual value, so a sweep failure message is
// self-contained.
func CheckSLO(spec string, a *analyze.Analysis, stats analyze.FleetStats) error {
	slo, err := analyze.ParseSLO(spec)
	if err != nil {
		return err
	}
	rep := analyze.Evaluate(slo, a, stats)
	if rep.Healthy {
		return nil
	}
	var b strings.Builder
	for _, c := range rep.Checks {
		if c.Skipped || c.Pass {
			continue
		}
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s (actual %s)", c.Clause, c.Actual)
	}
	return fmt.Errorf("slo violated: %s", b.String())
}
