package scengen

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"composable/internal/cluster"
	"composable/internal/invariant"
	"composable/internal/sim"
	"composable/internal/train"
	"composable/internal/units"
)

// Outcome is one executed scenario: the training result, the invariant set
// that watched the run, and a canonical fingerprint of every deterministic
// output — two executions of the same scenario must produce byte-identical
// fingerprints.
type Outcome struct {
	Scenario    Scenario
	Result      *train.Result
	Inv         *invariant.Set
	Fingerprint string
}

// Violations returns the invariant violations the run accumulated.
func (o *Outcome) Violations() []invariant.Violation { return o.Inv.Violations() }

// Err returns nil when every invariant held.
func (o *Outcome) Err() error { return o.Inv.Err() }

// Run executes the scenario end to end on a fresh simulation with the full
// invariant probe set attached: sim event-time monotonicity, fabric
// capacity/byte conservation, training lifecycle monotonicity, and the
// post-run structural checks. A non-nil error means the scenario failed to
// compose or train; invariant violations are reported on the Outcome.
func Run(sc Scenario) (*Outcome, error) {
	return run(sc, 1)
}

// run is Run with the fabric speedup used by the metamorphic checks:
// before any flow starts, every link capacity is multiplied by linkScale.
func run(sc Scenario, linkScale float64) (*Outcome, error) {
	opts, err := sc.Options()
	if err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, sc.Config())
	if err != nil {
		return nil, fmt.Errorf("scengen: compose %s: %w", sc.ID(), err)
	}
	if linkScale != 1 {
		scaleLinks(sys, linkScale)
	}
	inv := invariant.New()
	inv.Watch(sys)
	opts.Probe = inv.TrainProbe()
	res, err := train.Run(sys, opts)
	if err != nil {
		return nil, fmt.Errorf("scengen: train %s: %w", sc.ID(), err)
	}
	inv.CheckResult(sys, res)
	return &Outcome{Scenario: sc, Result: res, Inv: inv, Fingerprint: Fingerprint(res)}, nil
}

// scaleLinks multiplies every fabric link capacity (both directions) by
// factor. It must run before any flow starts.
func scaleLinks(sys *cluster.System, factor float64) {
	for _, l := range sys.Net.Links() {
		l.CapAtoB = units.BytesPerSec(float64(l.CapAtoB) * factor)
		l.CapBtoA = units.BytesPerSec(float64(l.CapBtoA) * factor)
	}
}

// Fingerprint canonically renders every deterministic scalar of a result.
// Floats are encoded exactly (shortest round-trip form), so two runs match
// if and only if they are bit-identical.
func Fingerprint(res *train.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sys=%s wl=%s strat=%s prec=%v sharded=%t batch=%d epochs=%d iters=%d\n",
		res.System, res.Workload, res.Strategy, res.Precision, res.Sharded,
		res.BatchPerGPU, res.Epochs, res.Iters)
	fmt.Fprintf(&b, "total=%d avgIter=%d peakMem=%d\n",
		int64(res.TotalTime), int64(res.AvgIter), int64(res.PeakGPUMem))
	b.WriteString("epochs=")
	for i, e := range res.EpochTimes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(e), 10))
	}
	b.WriteByte('\n')
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"gpuUtil", res.AvgGPUUtil},
		{"gpuMem", res.AvgGPUMemUtil},
		{"cpuUtil", res.AvgCPUUtil},
		{"hostMem", res.AvgHostMemUtil},
		{"memAccess", res.MemAccessFrac},
		{"falconGBps", res.FalconPCIeGBps},
	} {
		b.WriteString(f.name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(f.v, 'g', -1, 64))
		b.WriteByte('\n')
	}
	return b.String()
}

// Metamorphic relations. Each check runs a scenario and a transformed
// sibling and asserts the physically necessary ordering between them, with
// a small tolerance for float scheduling noise.

// fasterFabricScale is the link speedup used by CheckFasterFabricNotSlower.
const fasterFabricScale = 4.0

// metamorphicSlack bounds the tolerated inversion: a relative fraction of
// the baseline plus an absolute floor.
func metamorphicSlack(base time.Duration) time.Duration {
	s := base / 1000 // 0.1%
	if s < time.Millisecond {
		s = time.Millisecond
	}
	return s
}

// CheckFasterFabricNotSlower asserts that the same workload on a strictly
// faster fabric (every link capacity ×4, latencies unchanged) never trains
// slower. Compute, storage media rates and endpoint overheads are
// unchanged, so total time must be monotone nonincreasing.
func CheckFasterFabricNotSlower(sc Scenario) error {
	base, err := Run(sc)
	if err != nil {
		return err
	}
	if berr := base.Err(); berr != nil {
		return fmt.Errorf("scengen: baseline run of %s: %w", sc.ID(), berr)
	}
	fast, err := run(sc, fasterFabricScale)
	if err != nil {
		return err
	}
	if ferr := fast.Err(); ferr != nil {
		return fmt.Errorf("scengen: scaled-fabric run of %s: %w", sc.ID(), ferr)
	}
	b, f := base.Result.TotalTime, fast.Result.TotalTime
	if f > b+metamorphicSlack(b) {
		return fmt.Errorf("scengen: metamorphic faster-fabric violated on %s: %v (×%g links) > %v (baseline)",
			sc.ID(), f, fasterFabricScale, b)
	}
	return nil
}

// CheckMoreItersNotFaster asserts that doubling the iteration count never
// reduces total training time — work is strictly additive in this engine.
func CheckMoreItersNotFaster(sc Scenario) error {
	base, err := Run(sc)
	if err != nil {
		return err
	}
	if berr := base.Err(); berr != nil {
		return fmt.Errorf("scengen: baseline run of %s: %w", sc.ID(), berr)
	}
	longer := sc
	longer.ItersPerEpoch *= 2
	long, err := Run(longer)
	if err != nil {
		return err
	}
	if lerr := long.Err(); lerr != nil {
		return fmt.Errorf("scengen: doubled-iters run of %s: %w", sc.ID(), lerr)
	}
	b, l := base.Result.TotalTime, long.Result.TotalTime
	if l+metamorphicSlack(b) < b {
		return fmt.Errorf("scengen: metamorphic more-iters violated on %s: %d iters in %v < %d iters in %v",
			sc.ID(), long.Result.Iters, l, base.Result.Iters, b)
	}
	return nil
}

// CheckShardedPeakNotLarger asserts ZeRO-2 sharding never increases the
// per-GPU memory high-water mark at equal batch: sharding divides gradient
// and optimizer state, touching nothing else. Scenarios whose batch only
// fits sharded are skipped (nil error) — there is no unsharded sibling to
// compare against.
func CheckShardedPeakNotLarger(sc Scenario) error {
	plain := sc
	plain.Strategy = train.DDP
	plain.Sharded = false
	plain = Sanitize(plain)
	if plain.Sharded {
		// Sanitize's relief valve re-enabled sharding: the workload does
		// not fit unsharded at all, so there is no sibling to compare.
		return nil
	}
	shard := plain
	shard.Sharded = true
	shard = Sanitize(shard)
	shard.BatchPerGPU = plain.BatchPerGPU // equal batch, known to fit unsharded
	pres, err := Run(plain)
	if err != nil {
		return err
	}
	if perr := pres.Err(); perr != nil {
		return fmt.Errorf("scengen: unsharded run of %s: %w", plain.ID(), perr)
	}
	sres, err := Run(shard)
	if err != nil {
		return err
	}
	if serr := sres.Err(); serr != nil {
		return fmt.Errorf("scengen: sharded run of %s: %w", shard.ID(), serr)
	}
	if sres.Result.PeakGPUMem > pres.Result.PeakGPUMem {
		return fmt.Errorf("scengen: metamorphic sharded-memory violated on %s: sharded peak %v > plain peak %v",
			sc.ID(), sres.Result.PeakGPUMem, pres.Result.PeakGPUMem)
	}
	return nil
}
