package scengen

import (
	"os"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"composable/internal/cluster"
	"composable/internal/sim"
	"composable/internal/train"
)

// sweepParams reads the sweep shape from the environment so CI can pin the
// seed and scale the scenario count without code changes.
func sweepParams(t *testing.T) (base int64, n int) {
	base, n = 1, 100
	if s := os.Getenv("SCENGEN_SWEEP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SCENGEN_SWEEP_SEED: %v", err)
		}
		base = v
	}
	if s := os.Getenv("SCENGEN_SWEEP_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("SCENGEN_SWEEP_N: bad value %q", s)
		}
		n = v
	}
	return base, n
}

// TestScenarioSweep is the randomized scenario tier: N seeded scenarios
// (default 100, override via SCENGEN_SWEEP_N / SCENGEN_SWEEP_SEED), each
// run twice end to end. Every invariant must hold on every run, the two
// executions must produce byte-identical fingerprints, and a rotating
// subset additionally checks the metamorphic relations (faster fabric
// never slower, more iterations never faster, sharding never grows the
// memory peak).
func TestScenarioSweep(t *testing.T) {
	base, n := sweepParams(t)

	type job struct {
		seed int64
		idx  int
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				sc := FromSeed(j.seed)
				first, err := Run(sc)
				if err != nil {
					fail("seed %d (%s): %v", j.seed, sc.ID(), err)
					continue
				}
				if err := first.Err(); err != nil {
					fail("seed %d (%s): %v", j.seed, sc.ID(), err)
					continue
				}
				second, err := Run(sc)
				if err != nil {
					fail("seed %d (%s): repeat: %v", j.seed, sc.ID(), err)
					continue
				}
				if err := second.Err(); err != nil {
					fail("seed %d (%s): repeat: %v", j.seed, sc.ID(), err)
					continue
				}
				if first.Fingerprint != second.Fingerprint {
					fail("seed %d (%s): two in-process runs diverged:\n--- first\n%s--- second\n%s",
						j.seed, sc.ID(), first.Fingerprint, second.Fingerprint)
					continue
				}
				var merr error
				switch j.idx % 10 {
				case 0:
					merr = CheckFasterFabricNotSlower(sc)
				case 3:
					merr = CheckShardedPeakNotLarger(sc)
				case 5:
					merr = CheckMoreItersNotFaster(sc)
				}
				if merr != nil {
					fail("seed %d: %v", j.seed, merr)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- job{seed: base + int64(i), idx: i}
	}
	close(jobs)
	wg.Wait()
}

func TestFromSeedDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := FromSeed(seed), FromSeed(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: FromSeed not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
	if reflect.DeepEqual(FromSeed(1), FromSeed(2)) {
		t.Fatal("distinct seeds produced identical scenarios")
	}
}

func TestSanitizeIdempotentAndValid(t *testing.T) {
	for seed := int64(1); seed <= 300; seed++ {
		sc := FromSeed(seed)
		if again := Sanitize(sc); !reflect.DeepEqual(sc, again) {
			t.Fatalf("seed %d: Sanitize not idempotent:\n%+v\n%+v", seed, sc, again)
		}
		assertValid(t, sc)
	}
}

// TestSanitizeRepairsHostileScenarios drives Sanitize with out-of-range and
// contradictory raw values, as the fuzz target does, and requires a valid
// scenario back.
func TestSanitizeRepairsHostileScenarios(t *testing.T) {
	hostile := []Scenario{
		{}, // all zero: no GPUs, no workload
		{LocalGPUs: -3, FalconGPUs: 900, Workload: "nope", Strategy: "mpi", Storage: "tape"},
		{LocalGPUs: 1, Strategy: train.DP, Sharded: true}, // sharded DP, 1 GPU
		{FalconGPUs: 1, FalconModel: "H100", BatchPerGPU: 1 << 20, Workload: "BERT-L"},
		{LocalGPUs: 8, Workload: "BERT-L", Precision: 42, BatchPerGPU: 4096, Epochs: -5, ItersPerEpoch: 1 << 30},
		{FalconGPUs: 3, SingleDrawer: true, Buckets: -1, Workers: 10_000, Channels: 99},
	}
	for i, raw := range hostile {
		sc := Sanitize(raw)
		assertValid(t, sc)
		if again := Sanitize(sc); !reflect.DeepEqual(sc, again) {
			t.Fatalf("case %d: Sanitize not idempotent on repaired scenario", i)
		}
		// The repaired scenario must actually compose.
		if _, err := cluster.Compose(sim.NewEnv(), sc.Config()); err != nil {
			t.Fatalf("case %d: repaired scenario does not compose: %v", i, err)
		}
	}
}

// assertValid checks the structural validity contract of a sanitized
// scenario without running it.
func assertValid(t *testing.T, sc Scenario) {
	t.Helper()
	if sc.LocalGPUs < 0 || sc.LocalGPUs > 8 || sc.FalconGPUs < 0 || sc.FalconGPUs > 8 {
		t.Fatalf("%s: GPU counts out of range", sc.ID())
	}
	if sc.LocalGPUs+sc.FalconGPUs < 2 {
		t.Fatalf("%s: fewer than 2 GPUs", sc.ID())
	}
	if sc.FalconGPUs == 0 && (sc.FalconModel != "" || sc.SingleDrawer) {
		t.Fatalf("%s: falcon knobs without falcon GPUs", sc.ID())
	}
	if sc.Sharded && sc.Strategy != train.DDP {
		t.Fatalf("%s: sharded without DDP", sc.ID())
	}
	if sc.BatchPerGPU < 1 {
		t.Fatalf("%s: batch %d", sc.ID(), sc.BatchPerGPU)
	}
	if sc.Epochs < 1 || sc.Epochs > maxEpochs || sc.ItersPerEpoch < 1 || sc.ItersPerEpoch > maxIters {
		t.Fatalf("%s: run length out of range", sc.ID())
	}
	opts, err := sc.Options()
	if err != nil {
		t.Fatalf("%s: %v", sc.ID(), err)
	}
	// The batch must fit every GPU part under the scenario's sharding.
	shards := 1
	if sc.Sharded {
		shards = sc.LocalGPUs + sc.FalconGPUs
	}
	for _, spec := range sc.gpuSpecs() {
		need := opts.Workload.MemoryNeeded(sc.Precision, sc.BatchPerGPU, shards)
		if usable := spec.Memory - spec.Reserved; need > usable {
			t.Fatalf("%s: batch %d needs %v on %s (usable %v)",
				sc.ID(), sc.BatchPerGPU, need, spec.Name, usable)
		}
	}
}

// TestScenarioDiversity guards the generator's coverage: a modest seed
// range must exercise every storage tier, both strategies, both
// precisions, sharding, every workload, and local-only / falcon-only /
// hybrid / heterogeneous compositions.
func TestScenarioDiversity(t *testing.T) {
	storages := map[cluster.StorageKind]bool{}
	strategies := map[train.Strategy]bool{}
	workloads := map[string]bool{}
	var fp32, fp16, sharded, localOnly, falconOnly, hybrid, p100, singleDrawer bool
	for seed := int64(1); seed <= 200; seed++ {
		sc := FromSeed(seed)
		storages[sc.Storage] = true
		strategies[sc.Strategy] = true
		workloads[sc.Workload] = true
		switch {
		case sc.FalconGPUs == 0:
			localOnly = true
		case sc.LocalGPUs == 0:
			falconOnly = true
		default:
			hybrid = true
		}
		if sc.FalconModel == "P100" {
			p100 = true
		}
		if sc.SingleDrawer {
			singleDrawer = true
		}
		if sc.Sharded {
			sharded = true
		}
		if sc.Precision == 0 {
			fp32 = true
		} else {
			fp16 = true
		}
	}
	if len(storages) != 3 {
		t.Errorf("storage tiers seen: %v", storages)
	}
	if len(strategies) != 2 {
		t.Errorf("strategies seen: %v", strategies)
	}
	if len(workloads) != 5 {
		t.Errorf("workloads seen: %v", workloads)
	}
	for name, seen := range map[string]bool{
		"fp32": fp32, "fp16": fp16, "sharded": sharded, "local-only": localOnly,
		"falcon-only": falconOnly, "hybrid": hybrid, "P100": p100, "single-drawer": singleDrawer,
	} {
		if !seen {
			t.Errorf("generator never produced a %s scenario in 200 seeds", name)
		}
	}
}

// TestFingerprintDistinguishesResults makes sure the fingerprint is not
// vacuously stable: different scenarios produce different fingerprints.
func TestFingerprintDistinguishesResults(t *testing.T) {
	a, err := Run(FromSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(FromSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Fatalf("distinct scenarios share a fingerprint:\n%s", a.Fingerprint)
	}
}

func TestMetamorphicFasterFabric(t *testing.T) {
	for seed := int64(11); seed <= 14; seed++ {
		if err := CheckFasterFabricNotSlower(FromSeed(seed)); err != nil {
			t.Error(err)
		}
	}
}

func TestMetamorphicMoreIters(t *testing.T) {
	for seed := int64(21); seed <= 24; seed++ {
		if err := CheckMoreItersNotFaster(FromSeed(seed)); err != nil {
			t.Error(err)
		}
	}
}

func TestMetamorphicShardedPeak(t *testing.T) {
	for seed := int64(31); seed <= 34; seed++ {
		if err := CheckShardedPeakNotLarger(FromSeed(seed)); err != nil {
			t.Error(err)
		}
	}
}
