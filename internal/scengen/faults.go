package scengen

import (
	"fmt"
	"time"

	"composable/internal/cluster"
	"composable/internal/falcon"
	"composable/internal/faults"
	"composable/internal/invariant"
	"composable/internal/obs"
	"composable/internal/orchestrator"
	"composable/internal/sim"
)

// FaultScenario is a fleet scenario with a fault schedule played into it:
// the sweep axis the paper's test bed cannot cover — every result under
// link flaps, dying GPUs, drawer hot-unplugs and host crashes, with
// checkpoint/restart recovery. A scenario produced by FaultsFromSeed or
// SanitizeFaults is valid by construction: it composes, the plan targets
// real hardware, every non-repairable failure leaves the largest job
// enough survivors, and a static-partition scenario only sees failures
// that heal (a permanently dead device would wedge a fixed share).
type FaultScenario struct {
	Fleet FleetScenario
	Plan  faults.Plan
	// MaxRetries is the per-job reschedule budget (0 = orchestrator
	// default).
	MaxRetries int
}

// faultHorizon bounds generated fault times: long enough to land inside
// any sweep-sized fleet run, short enough that most faults actually hit.
const faultHorizon = 30 * time.Second

// ID is a compact deterministic label for the scenario.
func (sc FaultScenario) ID() string {
	return fmt.Sprintf("%s-f%d", sc.Fleet.ID(), len(sc.Plan.Events))
}

// faultBounds derives the plan bounds a fleet scenario implies. The same
// bounds are computed by the orchestrator when arming, so a sanitized
// scenario passes through it unchanged.
func faultBounds(fleet FleetScenario) faults.Bounds {
	maxDemand := 2
	for _, j := range fleet.Jobs {
		if j.GPUs > maxDemand {
			maxDemand = j.GPUs
		}
	}
	b := faults.Bounds{
		Slots:            fleet.TotalGPUs(),
		SlotsPerDrawer:   falcon.SlotsPerDrawer,
		Hosts:            fleet.TotalHosts(),
		Horizon:          faultHorizon,
		MaxPermanentGPUs: fleet.TotalGPUs() - maxDemand,
	}
	if fleet.podShaped() {
		// Pod fleets span the global drawer space and draw the two
		// pod-scoped kinds; the degenerate derivation stays untouched so
		// old seeds keep their plans.
		b.Drawers = fleet.chassisCount() * falcon.NumDrawers
		b.Pods = fleet.Pods
	}
	if b.MaxPermanentGPUs < 0 {
		b.MaxPermanentGPUs = 0
	}
	if fleet.Policy == "static" {
		// A fixed per-tenant share cannot survive a permanently dead
		// device: every fault must heal.
		b.MaxPermanentGPUs = 0
	}
	return b
}

// FaultsFromSeed derives one valid fault scenario from a seed: the seed's
// fleet scenario (FleetFromSeed) plus a fault plan drawn from a decoupled
// stream of the same seed, sanitized together. Equal seeds yield equal
// scenarios.
func FaultsFromSeed(seed int64) FaultScenario {
	fleet := FleetFromSeed(seed)
	// Decouple the fault draw from the fleet draw so extending one
	// generator never reshuffles the other.
	plan := faults.FromSeed(seed^0x5eedFa017, faultBounds(fleet))
	return SanitizeFaults(FaultScenario{Fleet: fleet, Plan: plan})
}

// PlanForFleet derives a seeded fault plan sized to a fleet scenario —
// the CLI path for "this fleet scenario, but with fault schedule N".
func PlanForFleet(seed int64, fleet FleetScenario) faults.Plan {
	return faults.FromSeed(seed, faultBounds(fleet))
}

// SanitizeFaults maps an arbitrary fault scenario onto the nearest valid
// one: the fleet scenario sanitized, then the plan sanitized against the
// bounds that fleet implies. It is idempotent.
func SanitizeFaults(sc FaultScenario) FaultScenario {
	sc.Fleet = SanitizeFleet(sc.Fleet)
	sc.Plan = faults.Sanitize(sc.Plan, faultBounds(sc.Fleet))
	if sc.MaxRetries < 0 {
		sc.MaxRetries = 0
	}
	return sc
}

// RunFaultyFleet executes the scenario end to end on a fresh simulation
// with the fault plan armed and the full fleet invariant probe set
// attached — including the fault-aware checks: no placement on a down
// slot or crashed host, kill/requeue lifecycle legality, lost-work ledger
// balance, and byte conservation under mid-run capacity changes. The
// outcome's fingerprint covers the applied-fault ledger, so the run-twice
// determinism tier extends to faulty runs.
func RunFaultyFleet(sc FaultScenario) (*FleetOutcome, error) {
	return RunFaultyFleetObserved(sc, nil)
}

// RunFaultyFleetObserved is RunFaultyFleet with an observability
// collector attached across the stack; fault injections additionally
// open blast-radius spans that close on repair. A nil collector
// degrades to the plain RunFaultyFleet.
func RunFaultyFleetObserved(sc FaultScenario, c *obs.Collector) (*FleetOutcome, error) {
	env := sim.NewEnv()
	if c != nil {
		c.Attach(env)
	}
	f, err := cluster.ComposeFleet(env, sc.Fleet.fleetOptions())
	if err != nil {
		return nil, fmt.Errorf("scengen: compose %s: %w", sc.ID(), err)
	}
	if c != nil {
		f.AttachObs(c)
	}
	pol, err := orchestrator.PolicyByName(sc.Fleet.Policy)
	if err != nil {
		return nil, fmt.Errorf("scengen: %s: %w", sc.ID(), err)
	}
	inv := invariant.New()
	inv.WatchEnv(env)
	inv.WatchNetwork(f.Net)
	inv.WatchFleet(f)
	res, err := orchestrator.Run(f, sc.Fleet.Jobs, orchestrator.Options{
		Policy:        pol,
		AttachLatency: sc.Fleet.AttachLatency,
		Probe:         inv.OrchestratorProbe(),
		Faults:        &sc.Plan,
		MaxRetries:    sc.MaxRetries,
		Obs:           c,
	})
	if err != nil {
		return nil, fmt.Errorf("scengen: faulty fleet %s: %w", sc.ID(), err)
	}
	inv.CheckFleetResult(f, res)
	return &FleetOutcome{Scenario: sc.Fleet, Result: res, Inv: inv, Fingerprint: res.Fingerprint()}, nil
}
