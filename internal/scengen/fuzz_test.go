package scengen

import (
	"testing"

	"composable/internal/cluster"
	"composable/internal/gpu"
	"composable/internal/train"
)

// FuzzComposeAndTrain drives Sanitize with raw field values and requires
// the repaired scenario to compose, train end to end, keep every invariant
// and reproduce itself byte-identically on a second run. It is the
// property the whole scenario tier rests on: there is no reachable
// scenario the platform mishandles.
//
// The iteration count is clamped hard (run length is not an interesting
// fuzz dimension, execution time is), so individual executions stay fast.
func FuzzComposeAndTrain(f *testing.F) {
	// Seed the corpus with the paper's own grid corners plus the odd
	// compositions the sweep rarely lands on. testdata/fuzz holds further
	// regression inputs; go test replays both without -fuzz.
	f.Add(int64(1), uint8(8), uint8(0), false, false, uint8(0), uint8(1), false, false, false, uint8(0), uint8(1), uint8(2), uint8(4), uint8(24), uint8(0)) // localGPUs / ResNet-50
	f.Add(int64(2), uint8(4), uint8(4), false, false, uint8(0), uint8(4), false, false, false, uint8(0), uint8(1), uint8(2), uint8(4), uint8(24), uint8(0)) // hybridGPUs / BERT-L
	f.Add(int64(3), uint8(0), uint8(8), false, false, uint8(0), uint8(3), false, false, false, uint8(0), uint8(1), uint8(2), uint8(4), uint8(24), uint8(0)) // falconGPUs / BERT
	f.Add(int64(4), uint8(8), uint8(0), false, false, uint8(2), uint8(2), false, true, false, uint8(0), uint8(1), uint8(2), uint8(4), uint8(24), uint8(0))  // falconNVMe / YOLO / FP32
	f.Add(int64(5), uint8(0), uint8(8), true, true, uint8(1), uint8(4), false, false, true, uint8(10), uint8(2), uint8(3), uint8(8), uint8(32), uint8(4))   // P100 single-drawer, sharded BERT-L
	f.Add(int64(6), uint8(2), uint8(1), false, false, uint8(0), uint8(0), true, true, false, uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1))    // tiny DP corner
	f.Fuzz(func(t *testing.T, seed int64,
		local, falcon uint8, singleDrawer, p100 bool, storage, workload uint8,
		dp, fp32, sharded bool, batch, epochs, iters, buckets, workers, channels uint8) {
		raw := Scenario{
			Seed:         seed,
			LocalGPUs:    int(local),
			FalconGPUs:   int(falcon),
			SingleDrawer: singleDrawer,
			Storage: []cluster.StorageKind{
				cluster.StorageBaseline, cluster.StorageLocalNVMe, cluster.StorageFalconNVMe,
			}[int(storage)%3],
			Workload:      []string{"MobileNetV2", "ResNet-50", "YOLOv5-L", "BERT", "BERT-L"}[int(workload)%5],
			Sharded:       sharded,
			BatchPerGPU:   int(batch),
			Epochs:        int(epochs),
			ItersPerEpoch: int(iters)%4 + 1, // keep executions fast
			Buckets:       int(buckets),
			Workers:       int(workers),
			Channels:      int(channels),
		}
		if p100 {
			raw.FalconModel = "P100"
		}
		if dp {
			raw.Strategy = train.DP
		} else {
			raw.Strategy = train.DDP
		}
		if fp32 {
			raw.Precision = gpu.FP32
		} else {
			raw.Precision = gpu.FP16
		}
		sc := Sanitize(raw)
		first, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.ID(), err)
		}
		if err := first.Err(); err != nil {
			t.Fatalf("%s: %v", sc.ID(), err)
		}
		second, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: repeat: %v", sc.ID(), err)
		}
		if first.Fingerprint != second.Fingerprint {
			t.Fatalf("%s: two in-process runs diverged:\n--- first\n%s--- second\n%s",
				sc.ID(), first.Fingerprint, second.Fingerprint)
		}
	})
}
