package scengen

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/invariant"
	"composable/internal/obs"
	"composable/internal/orchestrator"
	"composable/internal/sim"
	"composable/internal/train"
)

// FleetScenario is one fully specified fleet run: a multi-host testbed, a
// placement policy, and a seeded arrival stream of training jobs. A
// scenario produced by FleetFromSeed or SanitizeFleet is valid by
// construction: it composes, every job is placeable under the policy, and
// every batch fits device memory.
type FleetScenario struct {
	// Seed records provenance; it does not affect execution.
	Seed int64

	Hosts int // host machines cabled to each chassis, 1..3 (1..2 pod-shaped)
	GPUs  int // per-chassis GPU inventory, 2..16
	// Preattach partitions the GPUs round-robin across hosts at compose
	// time. Always true for the static policy (its whole premise).
	Preattach bool

	// Pod shape (both zero = the degenerate single-chassis testbed):
	// Pods pods of ChassisPerPod chassis behind a spine, the pod uplinks
	// oversubscribed Oversubscription:1. PodFleetFromSeed draws these;
	// FleetFromSeed never does, so its seed → scenario map is unchanged.
	Pods             int
	ChassisPerPod    int
	Oversubscription float64
	// Policy is an orchestrator policy name.
	Policy string
	// AttachLatency is the per-device recomposition cost, with the same
	// convention as orchestrator.Options: 0 picks the orchestrator
	// default, negative means free recomposition.
	AttachLatency time.Duration

	Jobs []orchestrator.JobSpec
}

// podShaped reports whether the scenario selects the hierarchical fleet.
func (sc FleetScenario) podShaped() bool { return sc.Pods != 0 || sc.ChassisPerPod != 0 }

// chassisCount returns the number of chassis the scenario composes.
func (sc FleetScenario) chassisCount() int {
	if !sc.podShaped() {
		return 1
	}
	return sc.Pods * sc.ChassisPerPod
}

// TotalGPUs returns the fleet-wide GPU inventory (GPUs is per chassis).
func (sc FleetScenario) TotalGPUs() int { return sc.GPUs * sc.chassisCount() }

// TotalHosts returns the fleet-wide host count (Hosts is per chassis).
func (sc FleetScenario) TotalHosts() int { return sc.Hosts * sc.chassisCount() }

// fleetOptions maps the scenario onto cluster compose options.
func (sc FleetScenario) fleetOptions() cluster.FleetOptions {
	return cluster.FleetOptions{
		Hosts: sc.Hosts, GPUs: sc.GPUs, Preattach: sc.Preattach,
		Pods: sc.Pods, ChassisPerPod: sc.ChassisPerPod, Oversubscription: sc.Oversubscription,
	}
}

// Fleet generation bounds. Job streams are kept short and cheap: the
// sweep exists to cover the scheduling space, not to re-measure training.
const (
	fleetMaxJobs  = 8
	fleetMaxIters = 4
)

// FleetFromSeed derives one valid fleet scenario from a seed. Equal seeds
// yield equal scenarios; the mapping is fixed (extend ranges rather than
// reorder draws).
func FleetFromSeed(seed int64) FleetScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := FleetScenario{Seed: seed}
	sc.Hosts = 2 + rng.Intn(2)
	sc.GPUs = 2*sc.Hosts + rng.Intn(17-2*sc.Hosts)
	// Drawer-local is the production default; weight it accordingly.
	sc.Policy = []string{"firstfit", "drawer", "drawer", "bandwidth", "static"}[rng.Intn(5)]
	sc.Preattach = rng.Intn(2) == 1
	sc.AttachLatency = time.Duration(200+rng.Intn(1800)) * time.Millisecond

	bench := dlmodel.Benchmarks()
	n := 3 + rng.Intn(fleetMaxJobs-2)
	var arrival time.Duration
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 { // bursts: half the stream arrives back to back
			arrival += time.Duration(rng.Intn(4000)) * time.Millisecond
		}
		j := orchestrator.JobSpec{
			Arrival:  arrival,
			Tenant:   rng.Intn(sc.Hosts),
			GPUs:     2 + rng.Intn(5),
			Workload: bench[rng.Intn(len(bench))].Name,
		}
		if rng.Intn(5) == 0 {
			j.Strategy = train.DP
		} else {
			j.Strategy = train.DDP
		}
		if rng.Intn(3) == 0 {
			j.Precision = gpu.FP32
		} else {
			j.Precision = gpu.FP16
		}
		j.Sharded = rng.Intn(6) == 0
		if rng.Intn(2) == 1 {
			j.BatchPerGPU = 1 + rng.Intn(64)
		}
		j.Epochs = 1
		j.ItersPerEpoch = 2 + rng.Intn(fleetMaxIters-1)
		sc.Jobs = append(sc.Jobs, j)
	}
	return SanitizeFleet(sc)
}

// SanitizeFleet maps an arbitrary fleet scenario onto the nearest valid
// one: counts clamped into composable ranges, the policy resolved to a
// known one, the static policy forced onto a preattached partition with
// per-tenant demands that fit its share, and every job spec sanitized.
// It is idempotent.
func SanitizeFleet(sc FleetScenario) FleetScenario {
	if sc.podShaped() {
		// Sweep-sized pod fleets: big enough for cross-pod placement to
		// happen, small enough that a 100-seed run-twice sweep stays cheap.
		sc.Pods = clamp(sc.Pods, 1, 4)
		sc.ChassisPerPod = clamp(sc.ChassisPerPod, 1, 3)
		sc.Hosts = clamp(sc.Hosts, 1, 2) // the fabric port takes the third slot
		switch {
		case sc.Oversubscription < 1:
			sc.Oversubscription = 1
		case sc.Oversubscription > 16:
			sc.Oversubscription = 16
		}
	} else {
		sc.Hosts = clamp(sc.Hosts, 1, 3)
		sc.Oversubscription = 0
	}
	sc.GPUs = clamp(sc.GPUs, 2, 16)
	if _, err := orchestrator.PolicyByName(sc.Policy); err != nil {
		sc.Policy = "drawer"
	}
	if sc.Policy == "static" {
		sc.Preattach = true
		// Every tenant's share must fit at least a 2-GPU job.
		if sc.GPUs < 2*sc.Hosts {
			sc.GPUs = 2 * sc.Hosts
		}
	}
	if sc.AttachLatency < 0 {
		sc.AttachLatency = -1 // normalized "free recomposition"
	}
	if sc.AttachLatency > 10*time.Second {
		sc.AttachLatency = 10 * time.Second
	}
	if len(sc.Jobs) == 0 {
		sc.Jobs = []orchestrator.JobSpec{{GPUs: 2, Workload: "ResNet-50", Epochs: 1, ItersPerEpoch: 2}}
	}
	if len(sc.Jobs) > fleetMaxJobs {
		sc.Jobs = sc.Jobs[:fleetMaxJobs]
	}
	for i := range sc.Jobs {
		j := sc.Jobs[i].Sanitize(sc.TotalGPUs(), sc.TotalHosts(), gpu.TeslaV100PCIe)
		j.ItersPerEpoch = clamp(j.ItersPerEpoch, 1, fleetMaxIters)
		j.Epochs = 1
		if sc.Policy == "static" {
			// Round-robin preattach stripes within each chassis: the tenant
			// with local index l owns every chassis slot i with i%hosts == l.
			share := (sc.GPUs + sc.Hosts - 1 - j.Tenant%sc.Hosts) / sc.Hosts
			if j.GPUs > share {
				j.GPUs = share
			}
		}
		sc.Jobs[i] = j
	}
	return sc
}

// PodFleetFromSeed derives one valid pod-shaped fleet scenario from a
// seed: a hierarchical fleet of 2–3 pods, with jobs sized so that some
// placements are forced across chassis and pods. Equal seeds yield equal
// scenarios; the draw stream is independent of FleetFromSeed's.
func PodFleetFromSeed(seed int64) FleetScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := FleetScenario{Seed: seed}
	sc.Pods = 2 + rng.Intn(2)          // 2..3
	sc.ChassisPerPod = 1 + rng.Intn(2) // 1..2
	sc.Hosts = 1 + rng.Intn(2)         // 1..2 per chassis
	sc.GPUs = 4 + rng.Intn(5)          // 4..8 per chassis
	sc.Oversubscription = []float64{1, 2, 4, 8}[rng.Intn(4)]
	sc.Policy = []string{"firstfit", "drawer", "drawer", "bandwidth", "static"}[rng.Intn(5)]
	sc.Preattach = rng.Intn(2) == 1
	sc.AttachLatency = time.Duration(200+rng.Intn(1800)) * time.Millisecond

	bench := dlmodel.Benchmarks()
	n := 3 + rng.Intn(fleetMaxJobs-2)
	var arrival time.Duration
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			arrival += time.Duration(rng.Intn(4000)) * time.Millisecond
		}
		j := orchestrator.JobSpec{
			Arrival:  arrival,
			Tenant:   rng.Intn(sc.Hosts * sc.Pods * sc.ChassisPerPod),
			GPUs:     2 + rng.Intn(2*sc.GPUs), // some demands overflow one chassis
			Workload: bench[rng.Intn(len(bench))].Name,
		}
		if rng.Intn(5) == 0 {
			j.Strategy = train.DP
		} else {
			j.Strategy = train.DDP
		}
		if rng.Intn(3) == 0 {
			j.Precision = gpu.FP32
		} else {
			j.Precision = gpu.FP16
		}
		j.Sharded = rng.Intn(6) == 0
		if rng.Intn(2) == 1 {
			j.BatchPerGPU = 1 + rng.Intn(64)
		}
		j.Epochs = 1
		j.ItersPerEpoch = 2 + rng.Intn(fleetMaxIters-1)
		sc.Jobs = append(sc.Jobs, j)
	}
	return SanitizeFleet(sc)
}

// ID is a compact, deterministic label for the scenario.
func (sc FleetScenario) ID() string {
	var b strings.Builder
	b.WriteString("fleet-")
	if sc.podShaped() {
		fmt.Fprintf(&b, "p%dx%do%g-", sc.Pods, sc.ChassisPerPod, sc.Oversubscription)
	}
	fmt.Fprintf(&b, "h%dg%d-%s", sc.Hosts, sc.GPUs, sc.Policy)
	if sc.Preattach {
		b.WriteString("-pre")
	}
	switch eff := sc.AttachLatency; {
	case eff < 0:
		fmt.Fprintf(&b, "-j%d-alfree", len(sc.Jobs))
	case eff == 0:
		fmt.Fprintf(&b, "-j%d-al%dms", len(sc.Jobs), orchestrator.DefaultAttachLatency.Milliseconds())
	default:
		fmt.Fprintf(&b, "-j%d-al%dms", len(sc.Jobs), eff.Milliseconds())
	}
	return b.String()
}

// FleetOutcome is one executed fleet scenario: the fleet telemetry, the
// invariant set that watched the run, and the canonical fingerprint used
// by the run-twice determinism check.
type FleetOutcome struct {
	Scenario    FleetScenario
	Result      *orchestrator.FleetResult
	Inv         *invariant.Set
	Fingerprint string
}

// Violations returns the invariant violations the run accumulated.
func (o *FleetOutcome) Violations() []invariant.Violation { return o.Inv.Violations() }

// Err returns nil when every invariant held.
func (o *FleetOutcome) Err() error { return o.Inv.Err() }

// RunFleet executes the scenario end to end on a fresh simulation with
// the full fleet invariant probe set attached: sim event-time
// monotonicity, fabric capacity/byte conservation, chassis attach/detach
// conservation, orchestrator lifecycle and assignment exclusivity, and
// the post-run structural checks. A non-nil error means the scenario
// failed to compose or schedule; invariant violations are reported on the
// FleetOutcome.
func RunFleet(sc FleetScenario) (*FleetOutcome, error) {
	return RunFleetObserved(sc, nil)
}

// RunFleetObserved is RunFleet with an observability collector attached
// to every layer of the run: sim proc lifetimes, fabric flow spans and
// per-tier utilization gauges, train epoch/checkpoint spans, and the
// orchestrator's queue/placement metrics. A nil collector degrades to
// the plain, probe-free RunFleet. The fingerprint is unaffected either
// way — observation never perturbs the simulation.
func RunFleetObserved(sc FleetScenario, c *obs.Collector) (*FleetOutcome, error) {
	env := sim.NewEnv()
	if c != nil {
		c.Attach(env)
	}
	f, err := cluster.ComposeFleet(env, sc.fleetOptions())
	if err != nil {
		return nil, fmt.Errorf("scengen: compose %s: %w", sc.ID(), err)
	}
	if c != nil {
		f.AttachObs(c)
	}
	pol, err := orchestrator.PolicyByName(sc.Policy)
	if err != nil {
		return nil, fmt.Errorf("scengen: %s: %w", sc.ID(), err)
	}
	inv := invariant.New()
	inv.WatchEnv(env)
	inv.WatchNetwork(f.Net)
	inv.WatchFleet(f)
	res, err := orchestrator.Run(f, sc.Jobs, orchestrator.Options{
		Policy:        pol,
		AttachLatency: sc.AttachLatency, // same 0=default/negative=free convention
		Probe:         inv.OrchestratorProbe(),
		Obs:           c,
	})
	if err != nil {
		return nil, fmt.Errorf("scengen: fleet %s: %w", sc.ID(), err)
	}
	inv.CheckFleetResult(f, res)
	return &FleetOutcome{Scenario: sc, Result: res, Inv: inv, Fingerprint: res.Fingerprint()}, nil
}
