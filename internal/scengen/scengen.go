// Package scengen generates random — but always valid — composed-system
// scenarios beyond the paper's fixed evaluation grid: arbitrary GPU
// counts and drawer packings, chassis GPU models, storage tiers, Table II
// workloads and software knobs (DDP/DP, FP16/FP32, ZeRO-2 sharding,
// bucket/worker/channel counts). Generation is seeded and deterministic,
// so every scenario is reproducible from one int64.
//
// The package pairs each scenario with the internal/invariant probe set:
// Run composes the system, wires the invariant checkers into the sim
// engine, the fabric allocator and the training loop, trains, and returns
// the result plus a canonical fingerprint used for run-twice determinism
// checks. It backs the TestScenarioSweep tier, the FuzzComposeAndTrain
// fuzz target and `composer -random`.
package scengen

import (
	"fmt"
	"math/rand"
	"strings"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/train"
)

// Scenario is one fully specified composed-system experiment: a host
// configuration plus a workload and its software configuration. A Scenario
// produced by FromSeed or Sanitize is valid by construction: it composes
// without error and its batch fits device memory.
type Scenario struct {
	// Seed records provenance (the FromSeed input); it does not affect
	// execution — the simulation itself is deterministic.
	Seed int64

	// Hardware composition.
	LocalGPUs    int    // host-local V100 SXM2 on the NVLink mesh, 0..8
	FalconGPUs   int    // chassis-attached GPUs, 0..8
	SingleDrawer bool   // pack all Falcon GPUs into drawer 0 (§III-B)
	FalconModel  string // "V100" or "P100"; "" when FalconGPUs == 0
	Storage      cluster.StorageKind

	// Workload and software configuration.
	Workload    string // Table II benchmark name
	Strategy    train.Strategy
	Precision   gpu.Precision
	Sharded     bool
	BatchPerGPU int // resolved by Sanitize to fit device memory

	// Run length and tuning knobs.
	Epochs        int
	ItersPerEpoch int
	Buckets       int
	Workers       int
	Channels      int // 0 = collective library default
}

// Generation bounds. Iteration counts are kept small: the scenario tier
// exists to cover the composition space, not to re-measure the paper.
const (
	maxEpochs = 2
	maxIters  = 12 // Sanitize clamp; FromSeed draws 2..4
)

// FromSeed derives one valid scenario from a seed. Equal seeds yield equal
// scenarios; the mapping is fixed (a change to it invalidates checked-in
// sweep expectations, so extend ranges rather than reorder draws).
func FromSeed(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{Seed: seed}
	sc.LocalGPUs = rng.Intn(9)
	sc.FalconGPUs = rng.Intn(9)
	sc.SingleDrawer = rng.Intn(2) == 1
	if rng.Intn(4) == 0 { // P100 drawers are the rarer composition
		sc.FalconModel = "P100"
	} else {
		sc.FalconModel = "V100"
	}
	sc.Storage = []cluster.StorageKind{
		cluster.StorageBaseline, cluster.StorageLocalNVMe, cluster.StorageFalconNVMe,
	}[rng.Intn(3)]
	bench := dlmodel.Benchmarks()
	sc.Workload = bench[rng.Intn(len(bench))].Name
	if rng.Intn(4) == 0 { // DP is the ablation case; weight DDP
		sc.Strategy = train.DP
	} else {
		sc.Strategy = train.DDP
	}
	if rng.Intn(3) == 0 {
		sc.Precision = gpu.FP32
	} else {
		sc.Precision = gpu.FP16
	}
	sc.Sharded = rng.Intn(4) == 0
	if rng.Intn(2) == 0 {
		sc.BatchPerGPU = 0 // paper default, clamped to fit by Sanitize
	} else {
		sc.BatchPerGPU = 1 + rng.Intn(128)
	}
	sc.Epochs = 1 + rng.Intn(maxEpochs)
	sc.ItersPerEpoch = 2 + rng.Intn(3)
	sc.Buckets = 1 + rng.Intn(8)
	sc.Workers = 4 * (1 + rng.Intn(6))
	sc.Channels = rng.Intn(4)
	return Sanitize(sc)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sanitize maps an arbitrary scenario onto the nearest valid one: counts
// are clamped into composable ranges, contradictory knobs are resolved
// (sharding requires DDP; drawer packing and chassis model need Falcon
// GPUs), and the batch is fitted to the smallest GPU's memory. It is
// idempotent, and every scenario it returns trains without composition or
// OOM errors — the property FuzzComposeAndTrain hammers on.
func Sanitize(sc Scenario) Scenario {
	sc.LocalGPUs = clamp(sc.LocalGPUs, 0, 8)
	sc.FalconGPUs = clamp(sc.FalconGPUs, 0, 8)
	// The collective layer needs a group of at least two.
	if sc.LocalGPUs+sc.FalconGPUs < 2 {
		if sc.FalconGPUs > 0 {
			sc.FalconGPUs = 2
		} else {
			sc.LocalGPUs = 2
		}
	}
	if sc.FalconGPUs == 0 {
		sc.SingleDrawer = false
		sc.FalconModel = ""
	} else if sc.FalconModel != "P100" {
		sc.FalconModel = "V100"
	}
	switch sc.Storage {
	case cluster.StorageBaseline, cluster.StorageLocalNVMe, cluster.StorageFalconNVMe:
	default:
		sc.Storage = cluster.StorageBaseline
	}
	if _, err := dlmodel.BenchmarkByName(sc.Workload); err != nil {
		sc.Workload = "ResNet-50"
	}
	if sc.Strategy != train.DP {
		sc.Strategy = train.DDP
	}
	if sc.Precision != gpu.FP16 {
		sc.Precision = gpu.FP32
	}
	if sc.Strategy != train.DDP {
		sc.Sharded = false
	}
	sc.Epochs = clamp(sc.Epochs, 1, maxEpochs)
	sc.ItersPerEpoch = clamp(sc.ItersPerEpoch, 1, maxIters)
	sc.Buckets = clamp(sc.Buckets, 1, 8)
	sc.Workers = clamp(sc.Workers, 1, 32)
	sc.Channels = clamp(sc.Channels, 0, 4)

	// Fit the batch to the tightest device: the admission check in train
	// is all-or-nothing, so the smallest GPU bounds everyone.
	w, _ := dlmodel.BenchmarkByName(sc.Workload)
	maxB := sc.maxBatch(w)
	if maxB < 1 {
		// No batch fits (a heavy workload at FP32 on a small part): fall
		// back to the relief valves the paper itself used — sharding, then
		// mixed precision.
		if sc.Strategy == train.DDP {
			sc.Sharded = true
			maxB = sc.maxBatch(w)
		}
		if maxB < 1 {
			sc.Precision = gpu.FP16
			maxB = sc.maxBatch(w)
		}
		if maxB < 1 {
			maxB = 1 // unreachable with the current catalog; keep valid
		}
	}
	if sc.BatchPerGPU == 0 {
		sc.BatchPerGPU = w.BatchPerGPU
	}
	sc.BatchPerGPU = clamp(sc.BatchPerGPU, 1, maxB)
	return sc
}

// maxBatch returns the largest per-GPU batch that fits every GPU model in
// the composition under the scenario's precision and sharding degree.
func (sc Scenario) maxBatch(w dlmodel.Workload) int {
	shards := 1
	if sc.Sharded {
		shards = sc.LocalGPUs + sc.FalconGPUs
	}
	best := -1
	for _, spec := range sc.gpuSpecs() {
		b := w.MaxBatch(spec, sc.Precision, shards)
		if best == -1 || b < best {
			best = b
		}
	}
	return best
}

// gpuSpecs lists the distinct GPU parts the composition uses.
func (sc Scenario) gpuSpecs() []gpu.Spec {
	var specs []gpu.Spec
	if sc.LocalGPUs > 0 {
		specs = append(specs, gpu.TeslaV100SXM2)
	}
	if sc.FalconGPUs > 0 {
		if sc.FalconModel == "P100" {
			specs = append(specs, gpu.TeslaP100)
		} else {
			specs = append(specs, gpu.TeslaV100PCIe)
		}
	}
	return specs
}

// Config renders the scenario's hardware side as a cluster configuration.
func (sc Scenario) Config() cluster.Config {
	return cluster.Config{
		Name:           sc.systemName(),
		LocalGPUs:      sc.LocalGPUs,
		FalconGPUs:     sc.FalconGPUs,
		Storage:        sc.Storage,
		SingleDrawer:   sc.SingleDrawer,
		FalconGPUModel: sc.FalconModel,
	}
}

// systemName is the compact hardware half of the scenario ID.
func (sc Scenario) systemName() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rand-L%d", sc.LocalGPUs)
	if sc.FalconGPUs > 0 {
		fmt.Fprintf(&b, "F%d%s", sc.FalconGPUs, sc.FalconModel)
		if sc.SingleDrawer {
			b.WriteString("sd")
		}
	}
	fmt.Fprintf(&b, "-%s", sc.Storage)
	return b.String()
}

// Options renders the scenario's software side as training options.
func (sc Scenario) Options() (train.Options, error) {
	w, err := dlmodel.BenchmarkByName(sc.Workload)
	if err != nil {
		return train.Options{}, fmt.Errorf("scengen: %w", err)
	}
	return train.Options{
		Workload:      w,
		Precision:     sc.Precision,
		Strategy:      sc.Strategy,
		Sharded:       sc.Sharded,
		BatchPerGPU:   sc.BatchPerGPU,
		Epochs:        sc.Epochs,
		ItersPerEpoch: sc.ItersPerEpoch,
		Buckets:       sc.Buckets,
		Workers:       sc.Workers,
		Channels:      sc.Channels,
		Seed:          sc.Seed,
	}, nil
}

// ID is a compact, deterministic description of the full scenario, usable
// as a log label.
func (sc Scenario) ID() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s+%v", sc.systemName(), sc.Workload, sc.Strategy, sc.Precision)
	if sc.Sharded {
		b.WriteString("+sharded")
	}
	fmt.Fprintf(&b, "/b%d-e%d-i%d-k%d-w%d-c%d",
		sc.BatchPerGPU, sc.Epochs, sc.ItersPerEpoch, sc.Buckets, sc.Workers, sc.Channels)
	return b.String()
}
