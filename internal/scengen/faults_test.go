package scengen

import (
	"os"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"composable/internal/faults"
	"composable/internal/orchestrator"
)

// faultSweepParams reads the fault sweep shape from the environment so CI
// can pin the seed and scale the scenario count without code changes.
func faultSweepParams(t *testing.T) (base int64, n int) {
	base, n = 1, 100
	if s := os.Getenv("FAULT_SWEEP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FAULT_SWEEP_SEED: %v", err)
		}
		base = v
	}
	if s := os.Getenv("FAULT_SWEEP_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("FAULT_SWEEP_N: bad value %q", s)
		}
		n = v
	}
	return base, n
}

// TestFaultScenarioSweep is the fault analog of TestFleetScenarioSweep: N
// seeded fault scenarios (default 100, override via FAULT_SWEEP_N /
// FAULT_SWEEP_SEED), each run twice end to end with the full invariant
// probe set — sim/fabric conservation under mid-run capacity changes,
// chassis attach/detach conservation across hot-unplugs, kill/requeue
// lifecycle legality, no placement on down hardware, and the lost-work
// ledger. The two executions must produce byte-identical telemetry
// fingerprints, applied-fault ledger included.
func TestFaultScenarioSweep(t *testing.T) {
	base, n := faultSweepParams(t)

	seeds := make(chan int64)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				sc := FaultsFromSeed(seed)
				first, err := RunFaultyFleet(sc)
				if err != nil {
					fail("seed %d (%s): %v", seed, sc.ID(), err)
					continue
				}
				if err := first.Err(); err != nil {
					fail("seed %d (%s): %v", seed, sc.ID(), err)
					continue
				}
				second, err := RunFaultyFleet(sc)
				if err != nil {
					fail("seed %d (%s): repeat: %v", seed, sc.ID(), err)
					continue
				}
				if err := second.Err(); err != nil {
					fail("seed %d (%s): repeat: %v", seed, sc.ID(), err)
					continue
				}
				if first.Fingerprint != second.Fingerprint {
					fail("seed %d (%s): two in-process faulty runs diverged:\n--- first\n%s--- second\n%s",
						seed, sc.ID(), first.Fingerprint, second.Fingerprint)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		seeds <- base + int64(i)
	}
	close(seeds)
	wg.Wait()
}

func TestFaultsFromSeedDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := FaultsFromSeed(seed), FaultsFromSeed(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: FaultsFromSeed not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
}

func TestFaultsFromSeedActuallyInjects(t *testing.T) {
	// The sweep would be vacuous if seeded plans were mostly empty or the
	// faults never landed; require that a healthy share of seeds produce
	// fault activity inside the run.
	withFaults, withKills := 0, 0
	for seed := int64(1); seed <= 20; seed++ {
		sc := FaultsFromSeed(seed)
		if len(sc.Plan.Events) == 0 {
			continue
		}
		out, err := RunFaultyFleet(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Result.Faults > 0 {
			withFaults++
		}
		if out.Result.Kills > 0 {
			withKills++
		}
	}
	if withFaults < 15 {
		t.Errorf("only %d/20 seeds injected faults", withFaults)
	}
	if withKills == 0 {
		t.Error("no seed produced a single kill: the recovery path is never exercised")
	}
}

func TestSanitizeFaultsIdempotentAndValid(t *testing.T) {
	raw := FaultScenario{
		Fleet: FleetScenario{
			Hosts: 99, GPUs: -3, Policy: "nope",
			Jobs: []orchestrator.JobSpec{{GPUs: 40, Workload: "bogus", Tenant: 7}},
		},
		Plan: faults.Plan{Events: []faults.Event{
			{At: -1, Kind: faults.KindGPU, Target: 400},
			{At: 1, Kind: "gibberish", Target: -2},
		}},
		MaxRetries: -5,
	}
	once := SanitizeFaults(raw)
	twice := SanitizeFaults(once)
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("SanitizeFaults not idempotent:\n%+v\n%+v", once, twice)
	}
	if _, err := RunFaultyFleet(once); err != nil {
		t.Errorf("sanitized fault scenario failed to run: %v", err)
	}
}

func TestStaticFaultScenariosAlwaysHeal(t *testing.T) {
	sc := SanitizeFaults(FaultScenario{
		Fleet: FleetScenario{Hosts: 3, GPUs: 12, Policy: "static",
			Jobs: []orchestrator.JobSpec{{GPUs: 2, Workload: "ResNet-50", Epochs: 1, ItersPerEpoch: 2}}},
		Plan: faults.Plan{Events: []faults.Event{
			{At: 1, Kind: faults.KindGPU, Target: 0}, // permanent in the raw plan
		}},
	})
	for _, e := range sc.Plan.Events {
		if e.Kind == faults.KindGPU && e.Permanent() {
			t.Fatalf("static scenario kept a permanent device fault: %+v", e)
		}
	}
	out, err := RunFaultyFleet(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
}
