package hostcpu

import (
	"testing"
	"time"

	"composable/internal/sim"
	"composable/internal/units"
)

func TestCorePoolParallelism(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, XeonGold6148x2)
	if h.TotalCores() != 40 {
		t.Fatalf("cores = %d, want 40 (2×20)", h.TotalCores())
	}
	// 40 tasks of 10ms on 40 cores finish together at 10ms; the 41st
	// waits.
	var last time.Duration
	for i := 0; i < 41; i++ {
		env.Go("w", func(p *sim.Proc) {
			h.RunOnCore(p, 10*time.Millisecond)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 20*time.Millisecond {
		t.Fatalf("last task at %v, want 20ms", last)
	}
}

func TestRunOnCoresClampsToPool(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, XeonGold6148x2)
	env.Go("big", func(p *sim.Proc) {
		h.RunOnCores(p, 1000, 5*time.Millisecond) // clamped to 40
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 5*time.Millisecond {
		t.Fatalf("took %v", env.Now())
	}
}

func TestPerCoreScale(t *testing.T) {
	spec := XeonGold6148x2
	spec.PerCoreScale = 2.0 // twice as fast
	env := sim.NewEnv()
	h := New(env, spec)
	env.Go("w", func(p *sim.Proc) { h.RunOnCore(p, 10*time.Millisecond) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 5*time.Millisecond {
		t.Fatalf("scaled op took %v, want 5ms", env.Now())
	}
}

func TestHostMemoryAccounting(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, XeonGold6148x2)
	base := h.MemUtilization()
	if base <= 0 {
		t.Fatal("OS baseline memory should register")
	}
	if err := h.AllocMem(100 * units.GB); err != nil {
		t.Fatal(err)
	}
	if h.MemUtilization() <= base {
		t.Fatal("allocation did not raise utilization")
	}
	// Cannot exceed physical memory.
	if err := h.AllocMem(700 * units.GB); err == nil {
		t.Fatal("over-allocation accepted")
	}
	h.FreeMem(100 * units.GB)
	if h.PeakMem() != 100*units.GB {
		t.Fatalf("peak = %v", h.PeakMem())
	}
}

func TestCPUUtilizationWindowed(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, XeonGold6148x2)
	env.Go("w", func(p *sim.Proc) {
		h.RunOnCores(p, 20, 50*time.Millisecond) // half the cores busy
		p.Sleep(50 * time.Millisecond)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	u := h.CPUUtilization()
	if u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want 0.25 (20/40 cores for half the run)", u)
	}
}
