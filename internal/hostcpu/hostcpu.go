// Package hostcpu models the host server's CPU complex: a pool of cores
// that data-loading workers occupy for preprocessing, plus a host-memory
// accountant. The paper's host has two Xeon Gold 6148 sockets (2 × 20
// cores) and 756 GB of memory.
package hostcpu

import (
	"fmt"
	"time"

	"composable/internal/sim"
	"composable/internal/units"
)

// Spec describes a host CPU complex.
type Spec struct {
	Name    string
	Sockets int
	Cores   int // physical cores per socket
	// PerCoreScale scales preprocessing op costs (1.0 = reference core,
	// a 2.4 GHz Skylake).
	PerCoreScale float64
	Memory       units.Bytes
}

// XeonGold6148x2 is the paper's host CPU configuration.
var XeonGold6148x2 = Spec{
	Name:         "2 x Intel Xeon Gold 6148 @ 2.40GHz",
	Sockets:      2,
	Cores:        20,
	PerCoreScale: 1.0,
	Memory:       756 * units.GB,
}

// Host is a CPU complex instance.
type Host struct {
	Spec Spec

	env   *sim.Env
	cores *sim.Resource
	// memory accounting
	used units.Bytes
	peak units.Bytes
	// baseline is memory permanently in use by OS + frameworks.
	baseline units.Bytes
}

// New creates a host CPU complex.
func New(env *sim.Env, spec Spec) *Host {
	total := spec.Sockets * spec.Cores
	return &Host{
		Spec:     spec,
		env:      env,
		cores:    sim.NewResource("host.cores", total),
		baseline: 24 * units.GB, // OS, drivers, CUDA host-side state
	}
}

// TotalCores returns the physical core count.
func (h *Host) TotalCores() int { return h.Spec.Sockets * h.Spec.Cores }

// RunOnCore occupies one core for the scaled duration of op.
func (h *Host) RunOnCore(p *sim.Proc, d time.Duration) {
	h.cores.Acquire(p, 1)
	p.Sleep(time.Duration(float64(d) / h.Spec.PerCoreScale))
	h.cores.Release(h.env, 1)
}

// RunOnCores occupies n cores for the scaled duration each — the shape of
// a data-loader worker pool burning through a batch's preprocessing.
// n is clamped to the core count.
func (h *Host) RunOnCores(p *sim.Proc, n int, d time.Duration) {
	if n < 1 {
		n = 1
	}
	if max := h.TotalCores(); n > max {
		n = max
	}
	h.cores.Acquire(p, n)
	p.Sleep(time.Duration(float64(d) / h.Spec.PerCoreScale))
	h.cores.Release(h.env, n)
}

// CPUUtilization returns the lifetime average core occupancy.
func (h *Host) CPUUtilization() float64 { return h.cores.Utilization(h.env) }

// BusySnapshot supports windowed utilization sampling.
func (h *Host) BusySnapshot() (sim.Time, sim.Time) { return h.cores.BusySnapshot(h.env) }

// UtilizationSince returns core occupancy since a snapshot.
func (h *Host) UtilizationSince(markTime, markBusy sim.Time) float64 {
	return h.cores.UtilizationSince(h.env, markTime, markBusy)
}

// AllocMem reserves host memory (page cache, pinned staging buffers,
// process heaps).
func (h *Host) AllocMem(n units.Bytes) error {
	if n < 0 {
		return fmt.Errorf("hostcpu: negative allocation")
	}
	if h.baseline+h.used+n > h.Spec.Memory {
		return fmt.Errorf("hostcpu: host out of memory: %v requested, %v free",
			n, h.Spec.Memory-h.baseline-h.used)
	}
	h.used += n
	if h.used > h.peak {
		h.peak = h.used
	}
	return nil
}

// FreeMem releases host memory.
func (h *Host) FreeMem(n units.Bytes) {
	if n < 0 || n > h.used {
		panic("hostcpu: bad free")
	}
	h.used -= n
}

// MemUtilization returns (baseline+used)/total, as `free` would show.
func (h *Host) MemUtilization() float64 {
	return float64(h.baseline+h.used) / float64(h.Spec.Memory)
}

// UsedMem returns current workload memory including the OS baseline.
func (h *Host) UsedMem() units.Bytes { return h.baseline + h.used }

// PeakMem returns the high-water mark excluding baseline.
func (h *Host) PeakMem() units.Bytes { return h.peak }
