// Package detmap is the sanctioned way to iterate a map on a
// deterministic-output path. Go randomizes map iteration order on every
// run; any map range whose order can leak into a fingerprint, rendered
// report or CSV is a reproducibility bug. The maporder analyzer
// (internal/lint) flags such ranges and recognizes this package as the
// fix: range over SortedKeys(m) instead of m.
package detmap

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order. Ranging over the
// returned slice visits the map deterministically:
//
//	for _, k := range detmap.SortedKeys(m) {
//		render(k, m[k])
//	}
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
