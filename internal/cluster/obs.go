package cluster

import (
	"composable/internal/fabric"
	"composable/internal/obs"
)

// Fleet observability wiring: AttachObs hands the fabric its collector
// and registers the per-tier link-utilization gauges the paper's port
// monitors correspond to — slot links (chassis drawer ports), host
// adapter links, and pod spine uplinks.

// linkTier classifies a fleet's links for the utilization gauges.
const (
	tierNone = iota
	tierSlot
	tierAdapter
	tierSpine
	numTiers
)

// AttachObs wires an observability collector into the fleet: the fabric
// allocator starts tracing flows and recomputes, and three gauges report
// the mean utilization (allocated/capacity over carrying directions) of
// each link tier. Call after composing, before the environment runs; a
// nil collector is a no-op.
func (f *FleetSystem) AttachObs(c *obs.Collector) {
	if c == nil {
		return
	}
	f.Net.SetObs(c)
	tier := make([]uint8, len(f.Net.Links()))
	for _, s := range f.Slots {
		tier[s.Link] = tierSlot
	}
	for _, h := range f.Hosts {
		tier[h.AdapterLink] = tierAdapter
	}
	for _, id := range f.PodUplinks {
		tier[id] = tierSpine
	}
	reg := c.Registry()
	names := [numTiers]string{"", "fabric.util.slot", "fabric.util.adapter", "fabric.util.spine"}
	for t := tierSlot; t < numTiers; t++ {
		if t == tierSpine && len(f.PodUplinks) == 0 {
			continue // degenerate shape: no spine tier to report
		}
		t := t
		reg.Gauge(names[t], func() float64 {
			sum, n := 0.0, 0
			f.Net.VisitAllocations(func(l *fabric.Link, forward bool, allocated, capacity float64) {
				if int(tier[l.ID]) != t || capacity <= 0 {
					return
				}
				sum += allocated / capacity
				n++
			})
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		})
	}
}
