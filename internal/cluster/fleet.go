package cluster

import (
	"fmt"
	"time"

	"composable/internal/fabric"
	"composable/internal/falcon"
	"composable/internal/gpu"
	"composable/internal/hostcpu"
	"composable/internal/pcie"
	"composable/internal/sim"
	"composable/internal/storage"
	"composable/internal/units"
)

// FleetOptions shapes a fleet composition (ComposeFleet).
type FleetOptions struct {
	// Hosts is the number of independent host machines cabled to the
	// chassis, 1..falcon.MaxHostsAdvanced (both drawers run in advanced
	// mode so devices can be re-allocated on the fly, §III-B-3).
	Hosts int
	// GPUs is the chassis GPU inventory, 2..16, packed drawer 0 first.
	GPUs int
	// GPUModel selects the chassis part: "" or "V100" for the Tesla V100
	// PCIe, "P100" for the Tesla P100.
	GPUModel string
	// Preattach assigns GPU i to host i%Hosts at compose time (a static
	// per-host partition). When false every GPU starts detached and the
	// orchestrator attaches on demand.
	Preattach bool
}

// FleetHost is one host machine of a fleet: its own CPU complex, memory,
// baseline storage and host adapter, sharing the chassis with its peers.
type FleetHost struct {
	Index int
	Name  string
	Port  string // chassis host port (H1..H3)

	CPU     *hostcpu.Host
	RC, Mem fabric.NodeID
	Store   *storage.Device
	Cache   *storage.PageCache
	// AdapterLink is the rc ↔ host-adapter link, the host's bandwidth
	// bottleneck into the chassis.
	AdapterLink fabric.LinkID
}

// FleetSlot is one chassis GPU slot of a fleet: the installed device, its
// fabric node and slot link. Which host owns it is control-plane state
// (falcon.Chassis.Owner); the orchestrator moves ownership at run time.
type FleetSlot struct {
	Index  int
	Ref    falcon.SlotRef
	Dev    *gpu.Device
	Node   fabric.NodeID
	Link   fabric.LinkID
	Drawer int
}

// FleetSystem is a composed multi-host testbed: several hosts cabled to
// one Falcon chassis whose GPU inventory can be re-attached between them
// mid-run. It is the hardware substrate of internal/orchestrator.
type FleetSystem struct {
	Env     *sim.Env
	Net     *fabric.Network
	Chassis *falcon.Chassis
	Hosts   []*FleetHost
	Slots   []*FleetSlot
	Opts    FleetOptions
}

// ComposeFleet builds a fleet: opts.Hosts machines (each with its own
// root complex, DRAM, CPU complex, baseline storage and host adapter)
// cabled to one Falcon chassis holding opts.GPUs chassis GPUs. Both
// drawers run in advanced mode; each host's adapter is cabled to every
// drawer switch in use, so any GPU can be attached to any host and the
// control plane alone decides ownership.
func ComposeFleet(env *sim.Env, opts FleetOptions) (*FleetSystem, error) {
	if opts.Hosts < 1 || opts.Hosts > falcon.MaxHostsAdvanced {
		return nil, fmt.Errorf("cluster: fleet supports 1-%d hosts, got %d",
			falcon.MaxHostsAdvanced, opts.Hosts)
	}
	maxGPUs := falcon.NumDrawers * falcon.SlotsPerDrawer
	if opts.GPUs < 2 || opts.GPUs > maxGPUs {
		return nil, fmt.Errorf("cluster: fleet GPU count %d out of range [2,%d]", opts.GPUs, maxGPUs)
	}
	spec := gpu.TeslaV100PCIe
	switch opts.GPUModel {
	case "", "V100":
	case "P100":
		spec = gpu.TeslaP100
	default:
		return nil, fmt.Errorf("cluster: unknown fleet GPU model %q", opts.GPUModel)
	}

	net := fabric.NewNetwork(env)
	net.EndpointOverhead = pcie.EndpointOverhead

	ch := falcon.New("falcon-1")
	ch.Now = func() time.Duration { return env.Now() }
	for d := 0; d < falcon.NumDrawers; d++ {
		if err := ch.SetMode(d, falcon.ModeAdvanced); err != nil {
			return nil, err
		}
	}

	f := &FleetSystem{Env: env, Net: net, Chassis: ch, Opts: opts}

	// Drawer switches for the drawers the inventory occupies.
	drawersInUse := (opts.GPUs + falcon.SlotsPerDrawer - 1) / falcon.SlotsPerDrawer
	switches := make([]fabric.NodeID, drawersInUse)
	for d := range switches {
		switches[d] = net.AddNode(fmt.Sprintf("falcon-sw%d", d), fabric.KindSwitch)
	}

	for h := 0; h < opts.Hosts; h++ {
		host := &FleetHost{
			Index: h,
			Name:  fmt.Sprintf("host%d", h+1),
			Port:  fmt.Sprintf("H%d", h+1),
			CPU:   hostcpu.New(env, hostcpu.XeonGold6148x2),
		}
		if err := ch.CableHost(host.Port, host.Name); err != nil {
			return nil, err
		}
		host.RC = net.AddNode(fmt.Sprintf("rc-%s", host.Name), fabric.KindRootComplex)
		host.Mem = net.AddNode(fmt.Sprintf("dram-%s", host.Name), fabric.KindMemory)
		net.ConnectSym(host.RC, host.Mem, memLinkBW, memLinkLatency, "SMP")

		ha := net.AddNode(fmt.Sprintf("host-adapter-%s", host.Name), fabric.KindHostAdapter)
		host.AdapterLink = net.ConnectSym(host.RC, ha, pcie.EffHostAdapter, pcie.AdapterLatency, pcie.Gen4.String())
		for _, sw := range switches {
			net.ConnectSym(ha, sw, pcie.CDFPHostCable, pcie.HostLinkLatency, "CDFP")
		}

		storeNode := net.AddNode(fmt.Sprintf("store-%s", host.Name), fabric.KindNVMe)
		net.ConnectSym(storeNode, host.RC, baselineStoreLinkBW, 5*time.Microsecond, "SATA")
		host.Store = storage.New(env, net, storage.BaselineStore, storeNode, false)
		host.Cache = storage.NewPageCache(host.CPU)
		f.Hosts = append(f.Hosts, host)
	}

	for i := 0; i < opts.GPUs; i++ {
		drawer := i / falcon.SlotsPerDrawer
		ref := falcon.SlotRef{Drawer: drawer, Slot: i % falcon.SlotsPerDrawer}
		dev := falcon.DeviceInfo{
			ID:    fmt.Sprintf("fleet-gpu-%d", i),
			Type:  falcon.DeviceGPU,
			Model: spec.Name, VendorID: "10de", LinkGen: 4, Lanes: 16,
		}
		if err := ch.Install(ref, dev); err != nil {
			return nil, err
		}
		node := net.AddNode(fmt.Sprintf("fgpu%d", i), fabric.KindGPU)
		link := net.ConnectSym(node, switches[drawer], pcie.EffSwitchP2P, pcie.SlotLatency, pcie.Gen4.String())
		slot := &FleetSlot{
			Index: i, Ref: ref, Node: node, Link: link, Drawer: drawer,
			Dev: gpu.New(env, spec, i, node, false),
		}
		// Wire the GUI's port-traffic monitor to the slot link counters.
		ch.SetTrafficSource(ref, func() (in, out units.Bytes) {
			ab, ba := net.LinkTrafficSnapshot(link)
			return ba, ab
		})
		if opts.Preattach {
			if err := ch.Attach(ref, f.Hosts[i%opts.Hosts].Port); err != nil {
				return nil, err
			}
		}
		f.Slots = append(f.Slots, slot)
	}
	return f, nil
}

// OwnerHost returns the index of the host a slot is attached to, or -1
// when the slot is detached. It reads the chassis control plane, so it is
// always the ground truth an orchestrator's bookkeeping can be checked
// against.
func (f *FleetSystem) OwnerHost(slot *FleetSlot) int {
	port := f.Chassis.Owner(slot.Ref)
	if port == "" {
		return -1
	}
	for _, h := range f.Hosts {
		if h.Port == port {
			return h.Index
		}
	}
	return -1
}

// JobSystem assembles the per-job view the training engine runs on: the
// owning host's CPU/memory/storage plus the job's GPU slots. The returned
// System shares the fleet's simulation and fabric, so concurrent jobs
// contend for the host adapter, CPU cores and storage exactly as
// co-located tenants would.
func (f *FleetSystem) JobSystem(host *FleetHost, slots []*FleetSlot, name string) *System {
	sys := &System{
		Env: f.Env, Net: f.Net, Chassis: f.Chassis,
		Cfg:  Config{Name: name, FalconGPUs: len(slots), Storage: StorageBaseline},
		Host: host.CPU,
		RC:   host.RC, Mem: host.Mem,
		Store: host.Store, Cache: host.Cache,
	}
	sys.HostAdapterLinks = append(sys.HostAdapterLinks, host.AdapterLink)
	for _, s := range slots {
		sys.GPUs = append(sys.GPUs, s.Dev)
		sys.FalconGPUPortLinks = append(sys.FalconGPUPortLinks, s.Link)
	}
	return sys
}
