package cluster

import (
	"fmt"
	"time"

	"composable/internal/fabric"
	"composable/internal/falcon"
	"composable/internal/gpu"
	"composable/internal/hostcpu"
	"composable/internal/pcie"
	"composable/internal/sim"
	"composable/internal/storage"
	"composable/internal/units"
)

// FleetOptions shapes a fleet composition (ComposeFleet).
//
// Two shapes are supported. The degenerate shape (Pods and ChassisPerPod
// both zero) is a single chassis with up to falcon.MaxHostsAdvanced hosts —
// the original one-rack testbed, bit-for-bit unchanged. Setting Pods and
// ChassisPerPod composes a hierarchical fleet instead: Pods pods of
// ChassisPerPod chassis each, every chassis carrying its own Hosts host
// machines and GPUs chassis GPUs, tied together by a spine/leaf fabric
// tier with oversubscribed inter-pod links.
type FleetOptions struct {
	// Hosts is the number of host machines cabled to each chassis. In the
	// degenerate shape 1..falcon.MaxHostsAdvanced (both drawers run in
	// advanced mode so devices can be re-allocated on the fly, §III-B-3);
	// in the pod shape 1..falcon.MaxHostsAdvanced-1, because the chassis
	// fabric port counts as one more host against the drawer sharing limit.
	Hosts int
	// GPUs is the per-chassis GPU inventory, 2..16, packed drawer 0 first.
	GPUs int
	// GPUModel selects the chassis part: "" or "V100" for the Tesla V100
	// PCIe, "P100" for the Tesla P100.
	GPUModel string
	// Preattach assigns GPU i to host i%Hosts at compose time (a static
	// per-host partition; in the pod shape the stripe is per chassis, over
	// that chassis's own hosts). When false every GPU starts detached and
	// the orchestrator attaches on demand.
	Preattach bool

	// Pods is the number of pods in a hierarchical fleet; zero selects the
	// degenerate single-chassis shape.
	Pods int
	// ChassisPerPod is the number of chassis in each pod, each hanging off
	// the pod's leaf switch.
	ChassisPerPod int
	// Oversubscription is the ratio of a pod's aggregate uplink bandwidth
	// to its spine link capacity (≥ 1; zero means 1, i.e. non-blocking).
	// Higher values starve cross-pod traffic, which is what gives the
	// locality-aware policies real distance to score.
	Oversubscription float64
}

// Hierarchical reports whether the options select the pod shape.
func (o FleetOptions) Hierarchical() bool { return o.Pods != 0 || o.ChassisPerPod != 0 }

// FleetHost is one host machine of a fleet: its own CPU complex, memory,
// baseline storage and host adapter, sharing its chassis with its peers.
type FleetHost struct {
	Index int
	Name  string
	Port  string // chassis host port (H1..H3)
	// Pod and ChassisIdx locate the host in the hierarchy (both zero in
	// the degenerate shape).
	Pod        int
	ChassisIdx int

	CPU     *hostcpu.Host
	RC, Mem fabric.NodeID
	Store   *storage.Device
	Cache   *storage.PageCache
	// AdapterLink is the rc ↔ host-adapter link, the host's bandwidth
	// bottleneck into the chassis.
	AdapterLink fabric.LinkID
}

// FleetSlot is one chassis GPU slot of a fleet: the installed device, its
// fabric node and slot link. Which host owns it is control-plane state
// (falcon.Chassis.Owner plus, for cross-chassis attaches, the fleet's own
// record); the orchestrator moves ownership at run time.
type FleetSlot struct {
	Index int
	Ref   falcon.SlotRef
	Dev   *gpu.Device
	Node  fabric.NodeID
	Link  fabric.LinkID
	// Drawer is the fleet-global drawer index,
	// ChassisIdx*falcon.NumDrawers + Ref.Drawer. In the degenerate shape
	// it equals Ref.Drawer.
	Drawer int
	// Pod and ChassisIdx locate the slot in the hierarchy (both zero in
	// the degenerate shape).
	Pod        int
	ChassisIdx int
}

// fabricPort is the chassis host port reserved as the fabric uplink in the
// pod shape: a GPU attached to it is served to a host in another chassis
// over the spine/leaf tier, with the fleet recording the true owner.
var fabricPort = fmt.Sprintf("H%d", falcon.NumHostPorts)

// FleetSystem is a composed multi-host testbed: hosts cabled to one or
// more Falcon chassis whose GPU inventory can be re-attached between them
// mid-run. It is the hardware substrate of internal/orchestrator.
type FleetSystem struct {
	Env *sim.Env
	Net *fabric.Network
	// Chassis is the first chassis — the only one in the degenerate shape.
	Chassis *falcon.Chassis
	// ChassisList holds every chassis in global index order.
	ChassisList []*falcon.Chassis
	Hosts       []*FleetHost
	Slots       []*FleetSlot
	// PodUplinks[p] is the pod-p leaf ↔ spine link (empty in the
	// degenerate shape); faults degrade it via SetLinkCapacity.
	PodUplinks []fabric.LinkID
	Opts       FleetOptions

	// slotHost is the fleet-level ownership record, indexed by slot. It
	// disambiguates the fabric port: the per-chassis control plane only
	// says "attached to the fabric", the fleet says to which host.
	slotHost []int
}

// NumPods returns the pod count (1 for the degenerate shape).
func (f *FleetSystem) NumPods() int {
	if f.Opts.Pods == 0 {
		return 1
	}
	return f.Opts.Pods
}

// NumChassis returns the chassis count.
func (f *FleetSystem) NumChassis() int { return len(f.ChassisList) }

// NumDrawers returns the size of the fleet-global drawer index space.
func (f *FleetSystem) NumDrawers() int { return len(f.ChassisList) * falcon.NumDrawers }

// ChassisFor returns the chassis holding the slot.
func (f *FleetSystem) ChassisFor(s *FleetSlot) *falcon.Chassis { return f.ChassisList[s.ChassisIdx] }

// portFor picks the chassis port an attach of slot to host goes through:
// the host's own port when they share a chassis, the fabric port when the
// attach crosses chassis.
func (f *FleetSystem) portFor(slot *FleetSlot, host *FleetHost) string {
	if host.ChassisIdx == slot.ChassisIdx {
		return host.Port
	}
	return fabricPort
}

// AttachSlot attaches a detached slot to a host through the slot's chassis
// control plane, local port or fabric port as the hierarchy demands.
func (f *FleetSystem) AttachSlot(slot *FleetSlot, host *FleetHost) error {
	if err := f.ChassisFor(slot).Attach(slot.Ref, f.portFor(slot, host)); err != nil {
		return err
	}
	f.slotHost[slot.Index] = host.Index
	return nil
}

// ReassignSlot moves an attached slot to another host without an
// intermediate detach (falcon advanced-mode re-allocation). Cross-chassis
// moves between two remote hosts re-attach on the fabric port, so the
// chassis still emits the recomposition event.
func (f *FleetSystem) ReassignSlot(slot *FleetSlot, host *FleetHost) error {
	if err := f.ChassisFor(slot).Reassign(slot.Ref, f.portFor(slot, host)); err != nil {
		return err
	}
	f.slotHost[slot.Index] = host.Index
	return nil
}

// DetachSlot releases a slot from its host.
func (f *FleetSystem) DetachSlot(slot *FleetSlot) error {
	if err := f.ChassisFor(slot).Detach(slot.Ref); err != nil {
		return err
	}
	f.slotHost[slot.Index] = -1
	return nil
}

const (
	// leafLinkLatency is a drawer-switch ↔ pod-leaf hop (in-rack optics).
	leafLinkLatency = 500 * time.Nanosecond
	// spineLinkLatency is a pod-leaf ↔ spine hop (cross-row runs).
	spineLinkLatency = 1 * time.Microsecond
)

// leafUplinkBW is one drawer-switch uplink into the pod leaf — the same
// 400 Gb/s line rate as the Falcon host cables.
var leafUplinkBW = pcie.CDFPHostCable

// ComposeFleet builds a fleet: host machines (each with its own root
// complex, DRAM, CPU complex, baseline storage and host adapter) cabled to
// Falcon chassis holding opts.GPUs chassis GPUs each. All drawers run in
// advanced mode; each host's adapter is cabled to every drawer switch of
// its chassis, so any GPU can be attached to any host — same-chassis over
// the host port, cross-chassis over the spine/leaf tier — and the control
// plane alone decides ownership.
func ComposeFleet(env *sim.Env, opts FleetOptions) (*FleetSystem, error) {
	if opts.Hierarchical() {
		if opts.Pods < 1 || opts.Pods > 32 {
			return nil, fmt.Errorf("cluster: fleet supports 1-32 pods, got %d", opts.Pods)
		}
		if opts.ChassisPerPod < 1 || opts.ChassisPerPod > 32 {
			return nil, fmt.Errorf("cluster: fleet supports 1-32 chassis per pod, got %d", opts.ChassisPerPod)
		}
		if opts.Hosts < 1 || opts.Hosts > falcon.MaxHostsAdvanced-1 {
			return nil, fmt.Errorf("cluster: pod fleet supports 1-%d hosts per chassis (the fabric port counts against the drawer limit), got %d",
				falcon.MaxHostsAdvanced-1, opts.Hosts)
		}
		if opts.Oversubscription != 0 && (opts.Oversubscription < 1 || opts.Oversubscription > 64) {
			return nil, fmt.Errorf("cluster: fleet oversubscription %g out of range [1,64]", opts.Oversubscription)
		}
	} else {
		if opts.Oversubscription != 0 {
			return nil, fmt.Errorf("cluster: oversubscription requires the pod shape (set Pods and ChassisPerPod)")
		}
		if opts.Hosts < 1 || opts.Hosts > falcon.MaxHostsAdvanced {
			return nil, fmt.Errorf("cluster: fleet supports 1-%d hosts, got %d",
				falcon.MaxHostsAdvanced, opts.Hosts)
		}
	}
	maxGPUs := falcon.NumDrawers * falcon.SlotsPerDrawer
	if opts.GPUs < 2 || opts.GPUs > maxGPUs {
		return nil, fmt.Errorf("cluster: fleet GPU count %d out of range [2,%d]", opts.GPUs, maxGPUs)
	}
	spec := gpu.TeslaV100PCIe
	switch opts.GPUModel {
	case "", "V100":
	case "P100":
		spec = gpu.TeslaP100
	default:
		return nil, fmt.Errorf("cluster: unknown fleet GPU model %q", opts.GPUModel)
	}

	net := fabric.NewNetwork(env)
	net.EndpointOverhead = pcie.EndpointOverhead

	f := &FleetSystem{Env: env, Net: net, Opts: opts}

	if !opts.Hierarchical() {
		site := chassisSite{
			name:   "falcon-1",
			swName: func(d int) string { return fmt.Sprintf("falcon-sw%d", d) },
			leaf:   -1,
		}
		if err := f.buildChassis(site, spec); err != nil {
			return nil, err
		}
		return f, nil
	}

	// Pod fabric tier: one spine, one leaf per pod. A pod's spine link
	// carries its whole aggregate uplink bandwidth divided by the
	// oversubscription ratio.
	spine := net.AddNode("spine-sw", fabric.KindSwitch)
	drawersInUse := (opts.GPUs + falcon.SlotsPerDrawer - 1) / falcon.SlotsPerDrawer
	oversub := opts.Oversubscription
	if oversub == 0 {
		oversub = 1
	}
	spineCap := units.BytesPerSec(float64(leafUplinkBW) * float64(drawersInUse*opts.ChassisPerPod) / oversub)
	for p := 0; p < opts.Pods; p++ {
		leaf := net.AddNode(fmt.Sprintf("pod%d-leaf", p+1), fabric.KindSwitch)
		f.PodUplinks = append(f.PodUplinks, net.ConnectSym(leaf, spine, spineCap, spineLinkLatency, "fabric"))
		for cc := 0; cc < opts.ChassisPerPod; cc++ {
			c := p*opts.ChassisPerPod + cc
			name := fmt.Sprintf("falcon-%d", c+1)
			site := chassisSite{
				name:    name,
				swName:  func(d int) string { return fmt.Sprintf("%s-sw%d", name, d) },
				pod:     p,
				idx:     c,
				hostIdx: c * opts.Hosts,
				gpuIdx:  c * opts.GPUs,
				leaf:    leaf,
			}
			if err := f.buildChassis(site, spec); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

// chassisSite parameterizes one chassis build: its names and its place in
// the hierarchy. leaf < 0 means no pod fabric tier (degenerate shape).
type chassisSite struct {
	name    string
	swName  func(d int) string
	pod     int
	idx     int // global chassis index
	hostIdx int // global index of this chassis's first host
	gpuIdx  int // global index of this chassis's first GPU
	leaf    fabric.NodeID
}

// buildChassis composes one chassis and its hosts and GPUs into the fleet.
// The node/link creation sequence is load-bearing: it defines fabric IDs
// and therefore every downstream fingerprint, so the degenerate shape must
// keep the original order exactly.
func (f *FleetSystem) buildChassis(site chassisSite, spec gpu.Spec) error {
	env, net, opts := f.Env, f.Net, f.Opts

	ch := falcon.New(site.name)
	ch.Now = func() time.Duration { return env.Now() }
	for d := 0; d < falcon.NumDrawers; d++ {
		if err := ch.SetMode(d, falcon.ModeAdvanced); err != nil {
			return err
		}
	}
	f.ChassisList = append(f.ChassisList, ch)
	if site.idx == 0 {
		f.Chassis = ch
	}

	// Drawer switches for the drawers the inventory occupies.
	drawersInUse := (opts.GPUs + falcon.SlotsPerDrawer - 1) / falcon.SlotsPerDrawer
	switches := make([]fabric.NodeID, drawersInUse)
	for d := range switches {
		switches[d] = net.AddNode(site.swName(d), fabric.KindSwitch)
	}
	if site.leaf >= 0 {
		for _, sw := range switches {
			net.ConnectSym(sw, site.leaf, leafUplinkBW, leafLinkLatency, "CDFP")
		}
		if err := ch.CableHost(fabricPort, "fabric-"+site.name); err != nil {
			return err
		}
	}

	for h := 0; h < opts.Hosts; h++ {
		g := site.hostIdx + h
		host := &FleetHost{
			Index: g,
			Name:  fmt.Sprintf("host%d", g+1),
			Port:  fmt.Sprintf("H%d", h+1),
			Pod:   site.pod, ChassisIdx: site.idx,
			CPU: hostcpu.New(env, hostcpu.XeonGold6148x2),
		}
		if err := ch.CableHost(host.Port, host.Name); err != nil {
			return err
		}
		host.RC = net.AddNode(fmt.Sprintf("rc-%s", host.Name), fabric.KindRootComplex)
		host.Mem = net.AddNode(fmt.Sprintf("dram-%s", host.Name), fabric.KindMemory)
		net.ConnectSym(host.RC, host.Mem, memLinkBW, memLinkLatency, "SMP")

		ha := net.AddNode(fmt.Sprintf("host-adapter-%s", host.Name), fabric.KindHostAdapter)
		host.AdapterLink = net.ConnectSym(host.RC, ha, pcie.EffHostAdapter, pcie.AdapterLatency, pcie.Gen4.String())
		for _, sw := range switches {
			net.ConnectSym(ha, sw, pcie.CDFPHostCable, pcie.HostLinkLatency, "CDFP")
		}

		storeNode := net.AddNode(fmt.Sprintf("store-%s", host.Name), fabric.KindNVMe)
		net.ConnectSym(storeNode, host.RC, baselineStoreLinkBW, 5*time.Microsecond, "SATA")
		host.Store = storage.New(env, net, storage.BaselineStore, storeNode, false)
		host.Cache = storage.NewPageCache(host.CPU)
		f.Hosts = append(f.Hosts, host)
	}

	for i := 0; i < opts.GPUs; i++ {
		g := site.gpuIdx + i
		drawer := i / falcon.SlotsPerDrawer
		ref := falcon.SlotRef{Drawer: drawer, Slot: i % falcon.SlotsPerDrawer}
		dev := falcon.DeviceInfo{
			ID:    fmt.Sprintf("fleet-gpu-%d", g),
			Type:  falcon.DeviceGPU,
			Model: spec.Name, VendorID: "10de", LinkGen: 4, Lanes: 16,
		}
		if err := ch.Install(ref, dev); err != nil {
			return err
		}
		node := net.AddNode(fmt.Sprintf("fgpu%d", g), fabric.KindGPU)
		link := net.ConnectSym(node, switches[drawer], pcie.EffSwitchP2P, pcie.SlotLatency, pcie.Gen4.String())
		slot := &FleetSlot{
			Index: g, Ref: ref, Node: node, Link: link,
			Drawer: site.idx*falcon.NumDrawers + drawer,
			Pod:    site.pod, ChassisIdx: site.idx,
			Dev: gpu.New(env, spec, g, node, false),
		}
		// Wire the GUI's port-traffic monitor to the slot link counters.
		ch.SetTrafficSource(ref, func() (in, out units.Bytes) {
			ab, ba := net.LinkTrafficSnapshot(link)
			return ba, ab
		})
		f.slotHost = append(f.slotHost, -1)
		if opts.Preattach {
			host := f.Hosts[site.hostIdx+i%opts.Hosts]
			if err := ch.Attach(ref, host.Port); err != nil {
				return err
			}
			f.slotHost[g] = host.Index
		}
		f.Slots = append(f.Slots, slot)
	}
	return nil
}

// OwnerHost returns the index of the host a slot is attached to, or -1
// when the slot is detached. It reads the chassis control plane first, so
// it is always the ground truth an orchestrator's bookkeeping can be
// checked against; only fabric-port attaches consult the fleet's record.
func (f *FleetSystem) OwnerHost(slot *FleetSlot) int {
	port := f.ChassisFor(slot).Owner(slot.Ref)
	if port == "" {
		return -1
	}
	if port == fabricPort && f.Opts.Hierarchical() {
		return f.slotHost[slot.Index]
	}
	for _, h := range f.Hosts {
		if h.ChassisIdx == slot.ChassisIdx && h.Port == port {
			return h.Index
		}
	}
	return -1
}

// JobSystem assembles the per-job view the training engine runs on: the
// owning host's CPU/memory/storage plus the job's GPU slots. The returned
// System shares the fleet's simulation and fabric, so concurrent jobs
// contend for the host adapter, CPU cores, storage and — for cross-chassis
// slots — the spine/leaf tier exactly as co-located tenants would.
func (f *FleetSystem) JobSystem(host *FleetHost, slots []*FleetSlot, name string) *System {
	sys := &System{
		Env: f.Env, Net: f.Net, Chassis: f.ChassisList[host.ChassisIdx],
		Cfg:  Config{Name: name, FalconGPUs: len(slots), Storage: StorageBaseline},
		Host: host.CPU,
		RC:   host.RC, Mem: host.Mem,
		Store: host.Store, Cache: host.Cache,
	}
	sys.HostAdapterLinks = append(sys.HostAdapterLinks, host.AdapterLink)
	for _, s := range slots {
		sys.GPUs = append(sys.GPUs, s.Dev)
		sys.FalconGPUPortLinks = append(sys.FalconGPUPortLinks, s.Link)
	}
	return sys
}
