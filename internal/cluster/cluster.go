// Package cluster composes hosts and Falcon chassis devices into runnable
// systems: it builds the fabric graph (data plane) that corresponds to a
// chassis allocation (control plane) and instantiates the device models.
//
// The five host configurations of the paper's Table III are provided as
// ready-made Config constructors.
package cluster

import (
	"fmt"
	"time"

	"composable/internal/fabric"
	"composable/internal/falcon"
	"composable/internal/gpu"
	"composable/internal/hostcpu"
	"composable/internal/nvlink"
	"composable/internal/pcie"
	"composable/internal/sim"
	"composable/internal/storage"
	"composable/internal/units"
)

// StorageKind selects the storage subsystem of a configuration.
type StorageKind string

// Storage options (Table III).
const (
	// StorageBaseline is the hosts' general-purpose "local storage".
	StorageBaseline StorageKind = "local-storage"
	// StorageLocalNVMe is the host-attached 4 TB NVMe.
	StorageLocalNVMe StorageKind = "local-nvme"
	// StorageFalconNVMe is the chassis-attached 4 TB NVMe (drawer 2).
	StorageFalconNVMe StorageKind = "falcon-nvme"
)

// Config describes a system composition.
type Config struct {
	Name       string
	LocalGPUs  int // host-local V100 SXM2 (NVLink cube mesh)
	FalconGPUs int // chassis-attached V100 PCIe, 4 per drawer
	Storage    StorageKind
	// SingleDrawer packs all Falcon GPUs into drawer 0 behind one host
	// connection instead of the paper's 4-per-drawer layout (Figure 6).
	// §III-B discusses the trade: one connection serving eight devices
	// avoids host crossings for peer traffic but halves host bandwidth.
	// Exercised by the A4 ablation.
	SingleDrawer bool
	// FalconGPUModel selects the chassis GPU part: "" or "V100" for the
	// Tesla V100 PCIe, "P100" for the Tesla P100 the chassis also holds
	// (§V-A-1). Exercised by the X2 heterogeneous-accelerator extension.
	FalconGPUModel string
}

// The five host configurations evaluated in the paper (Table III).
func LocalGPUsConfig() Config {
	return Config{Name: "localGPUs", LocalGPUs: 8, Storage: StorageBaseline}
}
func HybridGPUsConfig() Config {
	return Config{Name: "hybridGPUs", LocalGPUs: 4, FalconGPUs: 4, Storage: StorageBaseline}
}
func FalconGPUsConfig() Config {
	return Config{Name: "falconGPUs", FalconGPUs: 8, Storage: StorageBaseline}
}
func LocalNVMeConfig() Config {
	return Config{Name: "localNVMe", LocalGPUs: 8, Storage: StorageLocalNVMe}
}
func FalconNVMeConfig() Config {
	return Config{Name: "falconNVMe", LocalGPUs: 8, Storage: StorageFalconNVMe}
}

// TableIIIConfigs returns all five configurations in paper order.
func TableIIIConfigs() []Config {
	return []Config{
		LocalGPUsConfig(), HybridGPUsConfig(), FalconGPUsConfig(),
		LocalNVMeConfig(), FalconNVMeConfig(),
	}
}

// Description returns the Table III "Host Configuration" wording.
func (c Config) Description() string {
	switch {
	case c.FalconGPUs > 0 && c.LocalGPUs > 0:
		return fmt.Sprintf("%d local GPUs, %d falcon GPUs, and local storage", c.LocalGPUs, c.FalconGPUs)
	case c.FalconGPUs > 0:
		return fmt.Sprintf("%d falcon-attached GPUs", c.FalconGPUs)
	case c.Storage == StorageLocalNVMe:
		return fmt.Sprintf("%d local GPUs and local NVMe", c.LocalGPUs)
	case c.Storage == StorageFalconNVMe:
		return fmt.Sprintf("%d local GPUs and falcon-attached NVMe", c.LocalGPUs)
	default:
		return fmt.Sprintf("%d local GPUs and local storage", c.LocalGPUs)
	}
}

// Host-internal link parameters.
var (
	// memLinkBW is the root complex ↔ DRAM path (six DDR4-2666 channels
	// per socket; far above any PCIe device's demand, as it should be).
	memLinkBW = units.GBps(100)
	// memLinkLatency approximates LLC-miss-to-DRAM plus IIO traversal.
	memLinkLatency = 300 * time.Nanosecond
	// baselineStoreLinkBW is the SATA controller path of the baseline
	// store.
	baselineStoreLinkBW = units.GBps(2.0)
)

// System is a composed, runnable system: fabric, devices and chassis.
type System struct {
	Env  *sim.Env
	Net  *fabric.Network
	Cfg  Config
	Host *hostcpu.Host

	// RC and Mem are the host's root-complex and DRAM fabric nodes.
	RC, Mem fabric.NodeID

	GPUs    []*gpu.Device // locals first, then Falcon-attached
	Store   *storage.Device
	Cache   *storage.PageCache
	Chassis *falcon.Chassis

	// FalconGPUPortLinks are the chassis slot links of attached Falcon
	// GPUs; their ingress/egress counters feed Figure 12.
	FalconGPUPortLinks []fabric.LinkID
	// HostAdapterLinks are the rc ↔ host-adapter links in use.
	HostAdapterLinks []fabric.LinkID
}

// HostName is the composed host's name on the chassis management plane.
const HostName = "host1"

// Compose builds a system for the given configuration.
func Compose(env *sim.Env, cfg Config) (*System, error) {
	if cfg.LocalGPUs < 0 || cfg.LocalGPUs > 8 {
		return nil, fmt.Errorf("cluster: local GPU count %d out of range [0,8]", cfg.LocalGPUs)
	}
	if cfg.FalconGPUs < 0 || cfg.FalconGPUs > 8 {
		return nil, fmt.Errorf("cluster: falcon GPU count %d out of range [0,8]", cfg.FalconGPUs)
	}
	if cfg.LocalGPUs+cfg.FalconGPUs == 0 {
		return nil, fmt.Errorf("cluster: configuration has no GPUs")
	}

	net := fabric.NewNetwork(env)
	net.EndpointOverhead = pcie.EndpointOverhead

	s := &System{Env: env, Net: net, Cfg: cfg, Host: hostcpu.New(env, hostcpu.XeonGold6148x2)}
	s.RC = net.AddNode("rc0", fabric.KindRootComplex)
	s.Mem = net.AddNode("dram0", fabric.KindMemory)
	net.ConnectSym(s.RC, s.Mem, memLinkBW, memLinkLatency, "SMP")

	// Host-local GPUs: PCIe to the root complex plus the NVLink mesh.
	localNodes := make([]fabric.NodeID, cfg.LocalGPUs)
	for i := 0; i < cfg.LocalGPUs; i++ {
		node := net.AddNode(fmt.Sprintf("gpu%d", i), fabric.KindGPU)
		localNodes[i] = node
		net.ConnectSym(node, s.RC, pcie.EffLocalGPU, pcie.LocalGPULatency, pcie.Gen3.String())
		s.GPUs = append(s.GPUs, gpu.New(env, gpu.TeslaV100SXM2, i, node, true))
	}
	for _, e := range nvlink.CubeMesh() {
		if e.A < cfg.LocalGPUs && e.B < cfg.LocalGPUs {
			net.ConnectSym(localNodes[e.A], localNodes[e.B],
				nvlink.EdgeBandwidth(e.Bricks), nvlink.EdgeLatency, nvlink.Protocol)
		}
	}

	// Falcon chassis: control plane first, then mirror into the fabric.
	s.Chassis = falcon.New("falcon-1")
	s.Chassis.Now = func() time.Duration { return env.Now() }
	if err := s.Chassis.CableHost("H1", HostName); err != nil {
		return nil, err
	}
	if err := s.Chassis.CableHost("H2", HostName); err != nil {
		return nil, err
	}
	drawerPort := map[int]string{0: "H1", 1: "H2"}

	// Drawer switch fabric, built lazily per drawer in use.
	var drawerSwitch [falcon.NumDrawers]fabric.NodeID
	var haveDrawer [falcon.NumDrawers]bool
	ensureDrawer := func(d int) fabric.NodeID {
		if haveDrawer[d] {
			return drawerSwitch[d]
		}
		sw := net.AddNode(fmt.Sprintf("falcon-sw%d", d), fabric.KindSwitch)
		ha := net.AddNode(fmt.Sprintf("host-adapter%d", d), fabric.KindHostAdapter)
		s.HostAdapterLinks = append(s.HostAdapterLinks,
			net.ConnectSym(s.RC, ha, pcie.EffHostAdapter, pcie.AdapterLatency, pcie.Gen4.String()))
		net.ConnectSym(ha, sw, pcie.CDFPHostCable, pcie.HostLinkLatency, "CDFP")
		drawerSwitch[d] = sw
		haveDrawer[d] = true
		return sw
	}

	// Falcon GPUs: four per drawer, matching the paper's Figure 6
	// (or all in drawer 0 when SingleDrawer is set).
	perDrawer := 4
	if cfg.SingleDrawer {
		perDrawer = falcon.SlotsPerDrawer
	}
	falconSpec := gpu.TeslaV100PCIe
	switch cfg.FalconGPUModel {
	case "", "V100":
	case "P100":
		falconSpec = gpu.TeslaP100
	default:
		return nil, fmt.Errorf("cluster: unknown falcon GPU model %q", cfg.FalconGPUModel)
	}
	for i := 0; i < cfg.FalconGPUs; i++ {
		drawer := i / perDrawer
		slot := i % perDrawer
		ref := falcon.SlotRef{Drawer: drawer, Slot: slot}
		dev := falcon.DeviceInfo{
			ID:    fmt.Sprintf("gpu-%d", i),
			Type:  falcon.DeviceGPU,
			Model: falconSpec.Name, VendorID: "10de", LinkGen: 4, Lanes: 16,
		}
		if err := s.Chassis.Install(ref, dev); err != nil {
			return nil, err
		}
		if err := s.Chassis.Attach(ref, drawerPort[drawer]); err != nil {
			return nil, err
		}
		sw := ensureDrawer(drawer)
		idx := cfg.LocalGPUs + i
		node := net.AddNode(fmt.Sprintf("fgpu%d", i), fabric.KindGPU)
		link := net.ConnectSym(node, sw, pcie.EffSwitchP2P, pcie.SlotLatency, pcie.Gen4.String())
		s.FalconGPUPortLinks = append(s.FalconGPUPortLinks, link)
		s.registerPortMonitor(ref, link)
		s.GPUs = append(s.GPUs, gpu.New(env, falconSpec, idx, node, false))
	}

	// Storage subsystem.
	switch cfg.Storage {
	case StorageBaseline:
		node := net.AddNode("store0", fabric.KindNVMe)
		net.ConnectSym(node, s.RC, baselineStoreLinkBW, 5*time.Microsecond, "SATA")
		s.Store = storage.New(env, net, storage.BaselineStore, node, false)
	case StorageLocalNVMe:
		node := net.AddNode("nvme0", fabric.KindNVMe)
		net.ConnectSym(node, s.RC, pcie.EffNVMe, pcie.NVMeLinkLatency, pcie.Gen3.String())
		s.Store = storage.New(env, net, storage.IntelNVMe4TB, node, false)
	case StorageFalconNVMe:
		// The chassis NVMe sits in drawer 2 (index 1), slot 7 (Fig. 6).
		ref := falcon.SlotRef{Drawer: 1, Slot: 7}
		dev := falcon.DeviceInfo{
			ID: "nvme-falcon", Type: falcon.DeviceNVMe,
			Model: storage.IntelNVMe4TB.Name, VendorID: "8086", LinkGen: 3, Lanes: 4,
		}
		if err := s.Chassis.Install(ref, dev); err != nil {
			return nil, err
		}
		if err := s.Chassis.Attach(ref, drawerPort[1]); err != nil {
			return nil, err
		}
		sw := ensureDrawer(1)
		node := net.AddNode("fnvme0", fabric.KindNVMe)
		link := net.ConnectSym(node, sw, pcie.EffNVMe, pcie.NVMeLinkLatency, pcie.Gen3.String())
		s.registerPortMonitor(ref, link)
		s.Store = storage.New(env, net, storage.IntelNVMe4TB, node, true)
	default:
		return nil, fmt.Errorf("cluster: unknown storage kind %q", cfg.Storage)
	}
	s.Cache = storage.NewPageCache(s.Host)
	return s, nil
}

// registerPortMonitor wires a chassis slot's traffic view to the fabric
// link counters, backing the management GUI's "monitor port traffic"
// feature (§II-B).
func (s *System) registerPortMonitor(ref falcon.SlotRef, link fabric.LinkID) {
	net := s.Net
	s.Chassis.SetTrafficSource(ref, func() (in, out units.Bytes) {
		ab, ba := net.LinkTrafficSnapshot(link)
		// The slot's device is node A of the link; "in" is traffic into
		// the device (B→A), "out" is device egress (A→B).
		return ba, ab
	})
}

// LocalGPUList returns the host-local devices.
func (s *System) LocalGPUList() []*gpu.Device {
	return s.GPUs[:s.Cfg.LocalGPUs]
}

// FalconGPUList returns the chassis-attached devices.
func (s *System) FalconGPUList() []*gpu.Device {
	return s.GPUs[s.Cfg.LocalGPUs:]
}

// GPUNodes returns the fabric nodes of all GPUs in index order.
func (s *System) GPUNodes() []fabric.NodeID {
	out := make([]fabric.NodeID, len(s.GPUs))
	for i, g := range s.GPUs {
		out[i] = g.Node
	}
	return out
}
