package cluster

import (
	"fmt"
	"time"

	"composable/internal/fabric"
	"composable/internal/falcon"
	"composable/internal/gpu"
	"composable/internal/hostcpu"
	"composable/internal/pcie"
	"composable/internal/sim"
	"composable/internal/storage"
)

// ComposeShared builds the paper's advanced mode (§III-B-3): up to three
// hosts share one Falcon drawer, each owning a disjoint set of its GPUs.
// All hosts live on one simulation and one fabric, so any cross-tenant
// interference (or its absence — the isolation the chassis promises) is
// measurable by running their jobs concurrently.
//
// Each returned System has its own host CPU complex, root complex, memory,
// and baseline storage; they share the chassis control plane and the
// drawer's PCIe switch. The i-th host is cabled to port H(i+1).
func ComposeShared(env *sim.Env, hosts, gpusPerHost int) ([]*System, *falcon.Chassis, error) {
	if hosts < 1 || hosts > falcon.MaxHostsAdvanced {
		return nil, nil, fmt.Errorf("cluster: advanced mode supports 1-%d hosts, got %d",
			falcon.MaxHostsAdvanced, hosts)
	}
	if gpusPerHost < 1 || hosts*gpusPerHost > falcon.SlotsPerDrawer {
		return nil, nil, fmt.Errorf("cluster: %d hosts x %d GPUs exceeds the drawer's %d slots",
			hosts, gpusPerHost, falcon.SlotsPerDrawer)
	}

	net := fabric.NewNetwork(env)
	net.EndpointOverhead = pcie.EndpointOverhead

	ch := falcon.New("falcon-1")
	ch.Now = func() time.Duration { return env.Now() }
	if err := ch.SetMode(0, falcon.ModeAdvanced); err != nil {
		return nil, nil, err
	}
	sw := net.AddNode("falcon-sw0", fabric.KindSwitch)

	systems := make([]*System, 0, hosts)
	for h := 0; h < hosts; h++ {
		hostName := fmt.Sprintf("host%d", h+1)
		port := fmt.Sprintf("H%d", h+1)
		if err := ch.CableHost(port, hostName); err != nil {
			return nil, nil, err
		}

		s := &System{
			Env: env, Net: net, Chassis: ch,
			Cfg:  Config{Name: fmt.Sprintf("shared-%s", hostName), FalconGPUs: gpusPerHost, Storage: StorageBaseline},
			Host: hostcpu.New(env, hostcpu.XeonGold6148x2),
		}
		s.RC = net.AddNode(fmt.Sprintf("rc-%s", hostName), fabric.KindRootComplex)
		s.Mem = net.AddNode(fmt.Sprintf("dram-%s", hostName), fabric.KindMemory)
		net.ConnectSym(s.RC, s.Mem, memLinkBW, memLinkLatency, "SMP")

		ha := net.AddNode(fmt.Sprintf("host-adapter-%s", hostName), fabric.KindHostAdapter)
		s.HostAdapterLinks = append(s.HostAdapterLinks,
			net.ConnectSym(s.RC, ha, pcie.EffHostAdapter, pcie.AdapterLatency, pcie.Gen4.String()))
		net.ConnectSym(ha, sw, pcie.CDFPHostCable, pcie.HostLinkLatency, "CDFP")

		for i := 0; i < gpusPerHost; i++ {
			slot := h*gpusPerHost + i
			ref := falcon.SlotRef{Drawer: 0, Slot: slot}
			if err := ch.Install(ref, falcon.DeviceInfo{
				ID:    fmt.Sprintf("v100-s%d", slot),
				Type:  falcon.DeviceGPU,
				Model: gpu.TeslaV100PCIe.Name, VendorID: "10de", LinkGen: 4, Lanes: 16,
			}); err != nil {
				return nil, nil, err
			}
			if err := ch.Attach(ref, port); err != nil {
				return nil, nil, err
			}
			node := net.AddNode(fmt.Sprintf("fgpu-%s-%d", hostName, i), fabric.KindGPU)
			link := net.ConnectSym(node, sw, pcie.EffSwitchP2P, pcie.SlotLatency, pcie.Gen4.String())
			s.FalconGPUPortLinks = append(s.FalconGPUPortLinks, link)
			s.GPUs = append(s.GPUs, gpu.New(env, gpu.TeslaV100PCIe, i, node, false))
		}

		storeNode := net.AddNode(fmt.Sprintf("store-%s", hostName), fabric.KindNVMe)
		net.ConnectSym(storeNode, s.RC, baselineStoreLinkBW, 5*time.Microsecond, "SATA")
		s.Store = storage.New(env, net, storage.BaselineStore, storeNode, false)
		s.Cache = storage.NewPageCache(s.Host)

		systems = append(systems, s)
	}
	return systems, ch, nil
}
