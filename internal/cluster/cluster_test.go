package cluster

import (
	"testing"

	"composable/internal/fabric"
	"composable/internal/falcon"
	"composable/internal/sim"
)

func compose(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := Compose(sim.NewEnv(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTableIIIComposition(t *testing.T) {
	for _, tc := range []struct {
		cfg                Config
		local, falcon      int
		falconStore        bool
		falconPortLinks    int
		hostAdapters       int
		chassisGPUAttached int
	}{
		{LocalGPUsConfig(), 8, 0, false, 0, 0, 0},
		{HybridGPUsConfig(), 4, 4, false, 4, 1, 4},
		{FalconGPUsConfig(), 0, 8, false, 8, 2, 8},
		{LocalNVMeConfig(), 8, 0, false, 0, 0, 0},
		{FalconNVMeConfig(), 8, 0, true, 0, 1, 0},
	} {
		sys := compose(t, tc.cfg)
		if got := len(sys.LocalGPUList()); got != tc.local {
			t.Errorf("%s: local GPUs = %d, want %d", tc.cfg.Name, got, tc.local)
		}
		if got := len(sys.FalconGPUList()); got != tc.falcon {
			t.Errorf("%s: falcon GPUs = %d, want %d", tc.cfg.Name, got, tc.falcon)
		}
		if sys.Store.Falcon != tc.falconStore {
			t.Errorf("%s: store falcon = %v", tc.cfg.Name, sys.Store.Falcon)
		}
		if got := len(sys.FalconGPUPortLinks); got != tc.falconPortLinks {
			t.Errorf("%s: port links = %d, want %d", tc.cfg.Name, got, tc.falconPortLinks)
		}
		if got := len(sys.HostAdapterLinks); got != tc.hostAdapters {
			t.Errorf("%s: host adapters = %d, want %d", tc.cfg.Name, got, tc.hostAdapters)
		}
		// Control plane mirrors the data plane.
		sum := sys.Chassis.Summary()
		if sum.Attached != tc.chassisGPUAttached+boolToInt(tc.falconStore) {
			t.Errorf("%s: chassis attached = %d", tc.cfg.Name, sum.Attached)
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestAllGPUsReachMemoryAndEachOther(t *testing.T) {
	for _, cfg := range TableIIIConfigs() {
		sys := compose(t, cfg)
		for _, g := range sys.GPUs {
			if _, err := sys.Net.Route(sys.Mem, g.Node); err != nil {
				t.Errorf("%s: mem cannot reach %s: %v", cfg.Name, g.Name(), err)
			}
			for _, h := range sys.GPUs {
				if g == h {
					continue
				}
				if _, err := sys.Net.Route(g.Node, h.Node); err != nil {
					t.Errorf("%s: %s cannot reach %s: %v", cfg.Name, g.Name(), h.Name(), err)
				}
			}
		}
		if _, err := sys.Net.Route(sys.Store.Node, sys.Mem); err != nil {
			t.Errorf("%s: storage unreachable: %v", cfg.Name, err)
		}
	}
}

func TestLocalGPUsUseNVLink(t *testing.T) {
	sys := compose(t, LocalGPUsConfig())
	gpus := sys.GPUNodes()
	proto, err := sys.Net.PathProtocol(gpus[0], gpus[1])
	if err != nil {
		t.Fatal(err)
	}
	if proto != "NVLink" {
		t.Fatalf("local pair protocol = %q", proto)
	}
	// Every local GPU pair should route over NVLink (directly or via
	// peers), never through the root complex.
	for i := range gpus {
		for j := i + 1; j < len(gpus); j++ {
			p, err := sys.Net.PathProtocol(gpus[i], gpus[j])
			if err != nil {
				t.Fatal(err)
			}
			if p != "NVLink" {
				t.Errorf("pair %d-%d protocol = %q", i, j, p)
			}
		}
	}
}

func TestFalconGPUsPairProtocols(t *testing.T) {
	sys := compose(t, FalconGPUsConfig())
	f := sys.FalconGPUList()
	// Same drawer: through one switch.
	proto, _ := sys.Net.PathProtocol(f[0].Node, f[1].Node)
	if proto != "PCI-e 4.0" {
		t.Errorf("same-drawer protocol = %q", proto)
	}
	// Cross drawer: via both host adapters and the root complex.
	path, err := sys.Net.Route(f[0].Node, f[4].Node)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 4 {
		t.Errorf("cross-drawer path has %d hops, want ≥4 (sw, ha, rc, ha, sw)", len(path))
	}
}

func TestChassisStateMatchesFigure6(t *testing.T) {
	// The paper's Figure 6 topology: host cabled to both drawers, four
	// GPUs per drawer, NVMe in drawer 2.
	sys := compose(t, FalconGPUsConfig())
	ch := sys.Chassis
	if got := len(ch.Attached("H1")); got != 4 {
		t.Errorf("drawer 1 attached = %d", got)
	}
	if got := len(ch.Attached("H2")); got != 4 {
		t.Errorf("drawer 2 attached = %d", got)
	}
	sysN := compose(t, FalconNVMeConfig())
	dev := sysN.Chassis.Device(falcon.SlotRef{Drawer: 1, Slot: 7})
	if dev == nil || dev.Type != falcon.DeviceNVMe {
		t.Errorf("drawer 2 slot 7 = %+v, want NVMe (Figure 6)", dev)
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "none"},
		{Name: "too-many-local", LocalGPUs: 9},
		{Name: "too-many-falcon", FalconGPUs: 9},
		{Name: "bad-storage", LocalGPUs: 8, Storage: StorageKind("tape")},
	} {
		if _, err := Compose(sim.NewEnv(), cfg); err == nil {
			t.Errorf("config %q accepted", cfg.Name)
		}
	}
}

func TestDescriptionWording(t *testing.T) {
	// Table III wording, verbatim where the paper gives it.
	want := map[string]string{
		"localGPUs":  "8 local GPUs and local storage",
		"hybridGPUs": "4 local GPUs, 4 falcon GPUs, and local storage",
		"falconGPUs": "8 falcon-attached GPUs",
		"localNVMe":  "8 local GPUs and local NVMe",
		"falconNVMe": "8 local GPUs and falcon-attached NVMe",
	}
	for _, cfg := range TableIIIConfigs() {
		if got := cfg.Description(); got != want[cfg.Name] {
			t.Errorf("%s description = %q, want %q", cfg.Name, got, want[cfg.Name])
		}
	}
}

func TestNodeKindsWired(t *testing.T) {
	sys := compose(t, FalconGPUsConfig())
	kinds := map[fabric.NodeKind]int{}
	for _, n := range sys.Net.Nodes() {
		kinds[n.Kind]++
	}
	if kinds[fabric.KindSwitch] != 2 {
		t.Errorf("switches = %d, want 2 drawers", kinds[fabric.KindSwitch])
	}
	if kinds[fabric.KindHostAdapter] != 2 {
		t.Errorf("host adapters = %d", kinds[fabric.KindHostAdapter])
	}
	if kinds[fabric.KindGPU] != 8 {
		t.Errorf("GPUs = %d", kinds[fabric.KindGPU])
	}
}

func TestP100FalconOption(t *testing.T) {
	cfg := FalconGPUsConfig()
	cfg.FalconGPUModel = "P100"
	sys := compose(t, cfg)
	for _, g := range sys.FalconGPUList() {
		if g.Spec.Name != "Tesla P100-PCIE-16GB" {
			t.Fatalf("falcon GPU spec = %s", g.Spec.Name)
		}
	}
	bad := FalconGPUsConfig()
	bad.FalconGPUModel = "K80"
	if _, err := Compose(sim.NewEnv(), bad); err == nil {
		t.Fatal("unknown GPU model accepted")
	}
}

func TestChassisPortTrafficWired(t *testing.T) {
	env := sim.NewEnv()
	sys, err := Compose(env, FalconGPUsConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Move some data to a falcon GPU, then read the chassis view.
	env.Go("x", func(p *sim.Proc) {
		if err := sys.Net.Transfer(p, sys.Mem, sys.FalconGPUList()[0].Node, 1<<30); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	rows := sys.Chassis.PortTraffic()
	if len(rows) != 8 {
		t.Fatalf("monitored slots = %d, want 8", len(rows))
	}
	var sawTraffic bool
	for _, r := range rows {
		if r.Ingress > 0 {
			sawTraffic = true
		}
	}
	if !sawTraffic {
		t.Fatal("no slot reported ingress traffic after H2D transfer")
	}
}
