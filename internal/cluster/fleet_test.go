package cluster_test

import (
	"testing"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/falcon"
	"composable/internal/gpu"
	"composable/internal/sim"
	"composable/internal/train"
	"composable/internal/units"
)

type FleetOptions = cluster.FleetOptions

var ComposeFleet = cluster.ComposeFleet

func TestComposeFleetBounds(t *testing.T) {
	for _, bad := range []FleetOptions{
		{Hosts: 0, GPUs: 4},
		{Hosts: falcon.MaxHostsAdvanced + 1, GPUs: 4},
		{Hosts: 2, GPUs: 1},
		{Hosts: 2, GPUs: 17},
		{Hosts: 2, GPUs: 4, GPUModel: "H100"},
	} {
		if _, err := ComposeFleet(sim.NewEnv(), bad); err == nil {
			t.Errorf("ComposeFleet(%+v) accepted", bad)
		}
	}
}

func TestComposeFleetInventoryAndPreattach(t *testing.T) {
	env := sim.NewEnv()
	f, err := ComposeFleet(env, FleetOptions{Hosts: 3, GPUs: 12, Preattach: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Hosts) != 3 || len(f.Slots) != 12 {
		t.Fatalf("got %d hosts, %d slots", len(f.Hosts), len(f.Slots))
	}
	sum := f.Chassis.Summary()
	if sum.GPUs != 12 || sum.Attached != 12 || sum.HostLinks != 3 {
		t.Fatalf("chassis summary %+v", sum)
	}
	// Round-robin preattach: slot i belongs to host i%3, and OwnerHost
	// agrees with the chassis control plane.
	for i, slot := range f.Slots {
		if got := f.OwnerHost(slot); got != i%3 {
			t.Errorf("slot %d preattached to host %d, want %d", i, got, i%3)
		}
	}
	// Drawer packing: first eight slots in drawer 0, rest in drawer 1.
	for i, slot := range f.Slots {
		if want := i / falcon.SlotsPerDrawer; slot.Drawer != want {
			t.Errorf("slot %d in drawer %d, want %d", i, slot.Drawer, want)
		}
	}
}

func TestFleetJobSystemTrains(t *testing.T) {
	env := sim.NewEnv()
	f, err := ComposeFleet(env, FleetOptions{Hosts: 2, GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	host := f.Hosts[1]
	slots := f.Slots[:2]
	for _, s := range slots {
		if err := f.Chassis.Attach(s.Ref, host.Port); err != nil {
			t.Fatal(err)
		}
	}
	sys := f.JobSystem(host, slots, "fleet-test")
	if len(sys.GPUs) != 2 || len(sys.FalconGPUPortLinks) != 2 {
		t.Fatalf("job system has %d GPUs, %d port links", len(sys.GPUs), len(sys.FalconGPUPortLinks))
	}
	res, err := train.Run(sys, train.Options{
		Workload: dlmodel.ResNet50Workload(), Precision: gpu.FP16,
		Epochs: 1, ItersPerEpoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.FalconPCIeGBps <= 0 {
		t.Fatalf("result %+v", res)
	}
	// Chassis port-traffic monitors see the job's slot traffic.
	var moved units.Bytes
	for _, row := range f.Chassis.PortTraffic() {
		moved += row.Ingress + row.Egress
	}
	if moved <= 0 {
		t.Error("chassis port monitors recorded no traffic")
	}
}
