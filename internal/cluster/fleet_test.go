package cluster_test

import (
	"testing"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/falcon"
	"composable/internal/gpu"
	"composable/internal/pcie"
	"composable/internal/sim"
	"composable/internal/train"
	"composable/internal/units"
)

type FleetOptions = cluster.FleetOptions

var ComposeFleet = cluster.ComposeFleet

func TestComposeFleetBounds(t *testing.T) {
	for _, bad := range []FleetOptions{
		{Hosts: 0, GPUs: 4},
		{Hosts: falcon.MaxHostsAdvanced + 1, GPUs: 4},
		{Hosts: 2, GPUs: 1},
		{Hosts: 2, GPUs: 17},
		{Hosts: 2, GPUs: 4, GPUModel: "H100"},
	} {
		if _, err := ComposeFleet(sim.NewEnv(), bad); err == nil {
			t.Errorf("ComposeFleet(%+v) accepted", bad)
		}
	}
}

func TestComposeFleetInventoryAndPreattach(t *testing.T) {
	env := sim.NewEnv()
	f, err := ComposeFleet(env, FleetOptions{Hosts: 3, GPUs: 12, Preattach: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Hosts) != 3 || len(f.Slots) != 12 {
		t.Fatalf("got %d hosts, %d slots", len(f.Hosts), len(f.Slots))
	}
	sum := f.Chassis.Summary()
	if sum.GPUs != 12 || sum.Attached != 12 || sum.HostLinks != 3 {
		t.Fatalf("chassis summary %+v", sum)
	}
	// Round-robin preattach: slot i belongs to host i%3, and OwnerHost
	// agrees with the chassis control plane.
	for i, slot := range f.Slots {
		if got := f.OwnerHost(slot); got != i%3 {
			t.Errorf("slot %d preattached to host %d, want %d", i, got, i%3)
		}
	}
	// Drawer packing: first eight slots in drawer 0, rest in drawer 1.
	for i, slot := range f.Slots {
		if want := i / falcon.SlotsPerDrawer; slot.Drawer != want {
			t.Errorf("slot %d in drawer %d, want %d", i, slot.Drawer, want)
		}
	}
}

func TestComposeFleetPodBounds(t *testing.T) {
	cases := []struct {
		name string
		opts FleetOptions
	}{
		{"pods without chassis-per-pod", FleetOptions{Pods: 2, Hosts: 1, GPUs: 4}},
		{"chassis-per-pod without pods", FleetOptions{ChassisPerPod: 2, Hosts: 1, GPUs: 4}},
		{"too many pods", FleetOptions{Pods: 33, ChassisPerPod: 1, Hosts: 1, GPUs: 4}},
		{"too many chassis per pod", FleetOptions{Pods: 2, ChassisPerPod: 33, Hosts: 1, GPUs: 4}},
		{"pod hosts hit the fabric-port limit", FleetOptions{Pods: 2, ChassisPerPod: 1, Hosts: falcon.MaxHostsAdvanced, GPUs: 4}},
		{"oversubscription below 1", FleetOptions{Pods: 2, ChassisPerPod: 1, Hosts: 1, GPUs: 4, Oversubscription: 0.5}},
		{"oversubscription above 64", FleetOptions{Pods: 2, ChassisPerPod: 1, Hosts: 1, GPUs: 4, Oversubscription: 65}},
		{"oversubscription on the degenerate shape", FleetOptions{Hosts: 2, GPUs: 4, Oversubscription: 2}},
		{"pod shape still bounds GPUs", FleetOptions{Pods: 2, ChassisPerPod: 1, Hosts: 1, GPUs: 17}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ComposeFleet(sim.NewEnv(), tc.opts); err == nil {
				t.Errorf("ComposeFleet(%+v) accepted", tc.opts)
			}
		})
	}
}

func TestComposeFleetPodInventory(t *testing.T) {
	const (
		pods, cpp, hosts, gpus = 2, 2, 2, 10
		oversub                = 4.0
	)
	env := sim.NewEnv()
	f, err := ComposeFleet(env, FleetOptions{
		Hosts: hosts, GPUs: gpus, Preattach: true,
		Pods: pods, ChassisPerPod: cpp, Oversubscription: oversub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPods() != pods || f.NumChassis() != pods*cpp || f.NumDrawers() != pods*cpp*falcon.NumDrawers {
		t.Fatalf("hierarchy counts: pods %d chassis %d drawers %d", f.NumPods(), f.NumChassis(), f.NumDrawers())
	}
	if len(f.Hosts) != pods*cpp*hosts || len(f.Slots) != pods*cpp*gpus {
		t.Fatalf("got %d hosts, %d slots", len(f.Hosts), len(f.Slots))
	}
	if len(f.PodUplinks) != pods {
		t.Fatalf("got %d pod uplinks, want %d", len(f.PodUplinks), pods)
	}
	// The spine link carries the pod's aggregate uplink bandwidth divided
	// by the oversubscription ratio: 2 drawers × 2 chassis × 400G / 4.
	drawersInUse := (gpus + falcon.SlotsPerDrawer - 1) / falcon.SlotsPerDrawer
	wantCap := units.BytesPerSec(float64(pcie.CDFPHostCable) * float64(drawersInUse*cpp) / oversub)
	for p, id := range f.PodUplinks {
		l := f.Net.Link(id)
		if l.CapAtoB != wantCap || l.CapBtoA != wantCap {
			t.Errorf("pod %d spine link caps %v/%v, want %v", p, l.CapAtoB, l.CapBtoA, wantCap)
		}
	}
	for i, h := range f.Hosts {
		if h.Index != i || h.ChassisIdx != i/hosts || h.Pod != i/(hosts*cpp) {
			t.Errorf("host %d placed at pod %d chassis %d", i, h.Pod, h.ChassisIdx)
		}
	}
	for g, s := range f.Slots {
		ci, li := g/gpus, g%gpus
		if s.Index != g || s.ChassisIdx != ci || s.Pod != ci/cpp {
			t.Errorf("slot %d placed at pod %d chassis %d", g, s.Pod, s.ChassisIdx)
		}
		if want := li / falcon.SlotsPerDrawer; s.Ref.Drawer != want {
			t.Errorf("slot %d in chassis drawer %d, want %d", g, s.Ref.Drawer, want)
		}
		if want := ci*falcon.NumDrawers + s.Ref.Drawer; s.Drawer != want {
			t.Errorf("slot %d global drawer %d, want %d", g, s.Drawer, want)
		}
		// Preattach stripes per chassis over that chassis's own hosts.
		if want := ci*hosts + li%hosts; f.OwnerHost(s) != want {
			t.Errorf("slot %d preattached to host %d, want %d", g, f.OwnerHost(s), want)
		}
	}
	for ci, ch := range f.ChassisList {
		sum := ch.Summary()
		// Every chassis cables its own hosts plus the fabric uplink port.
		if sum.GPUs != gpus || sum.Attached != gpus || sum.HostLinks != hosts+1 {
			t.Errorf("chassis %d summary %+v", ci, sum)
		}
	}
}

func TestFleetCrossChassisAttachLifecycle(t *testing.T) {
	env := sim.NewEnv()
	f, err := ComposeFleet(env, FleetOptions{
		Hosts: 2, GPUs: 4, Pods: 2, ChassisPerPod: 1, Oversubscription: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	slot := f.Slots[4] // first slot of chassis 1 (pod 1)
	local, remote := f.Hosts[2], f.Hosts[0]

	// Cross-pod attach goes over the fabric port but the fleet records the
	// true owner.
	if err := f.AttachSlot(slot, remote); err != nil {
		t.Fatal(err)
	}
	if got := f.OwnerHost(slot); got != remote.Index {
		t.Fatalf("cross-chassis attach: owner %d, want %d", got, remote.Index)
	}
	if sum := f.ChassisList[1].Summary(); sum.Attached != 1 {
		t.Fatalf("chassis 1 attached %d, want 1", sum.Attached)
	}
	// Reassign back to a same-chassis host, then detach.
	if err := f.ReassignSlot(slot, local); err != nil {
		t.Fatal(err)
	}
	if got := f.OwnerHost(slot); got != local.Index {
		t.Fatalf("reassign: owner %d, want %d", got, local.Index)
	}
	if err := f.DetachSlot(slot); err != nil {
		t.Fatal(err)
	}
	if got := f.OwnerHost(slot); got != -1 {
		t.Fatalf("detach: owner %d, want -1", got)
	}
}

func TestFleetJobSystemTrains(t *testing.T) {
	env := sim.NewEnv()
	f, err := ComposeFleet(env, FleetOptions{Hosts: 2, GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	host := f.Hosts[1]
	slots := f.Slots[:2]
	for _, s := range slots {
		if err := f.Chassis.Attach(s.Ref, host.Port); err != nil {
			t.Fatal(err)
		}
	}
	sys := f.JobSystem(host, slots, "fleet-test")
	if len(sys.GPUs) != 2 || len(sys.FalconGPUPortLinks) != 2 {
		t.Fatalf("job system has %d GPUs, %d port links", len(sys.GPUs), len(sys.FalconGPUPortLinks))
	}
	res, err := train.Run(sys, train.Options{
		Workload: dlmodel.ResNet50Workload(), Precision: gpu.FP16,
		Epochs: 1, ItersPerEpoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.FalconPCIeGBps <= 0 {
		t.Fatalf("result %+v", res)
	}
	// Chassis port-traffic monitors see the job's slot traffic.
	var moved units.Bytes
	for _, row := range f.Chassis.PortTraffic() {
		moved += row.Ingress + row.Egress
	}
	if moved <= 0 {
		t.Error("chassis port monitors recorded no traffic")
	}
}
