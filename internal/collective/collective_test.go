package collective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"composable/internal/cluster"
	"composable/internal/sim"
	"composable/internal/units"
)

func compose(t *testing.T, cfg cluster.Config) (*sim.Env, *cluster.System, *Communicator) {
	t.Helper()
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := New(sys.Net, sys.GPUs)
	if err != nil {
		t.Fatal(err)
	}
	return env, sys, comm
}

func TestRingUsesNVLinkForLocalGroup(t *testing.T) {
	_, _, comm := compose(t, cluster.LocalGPUsConfig())
	if comm.RingEfficiency() != NVLinkRingEfficiency {
		t.Fatalf("local ring efficiency = %v, want NVLink %v", comm.RingEfficiency(), NVLinkRingEfficiency)
	}
	ring := comm.Ring()
	if len(ring) != 8 {
		t.Fatalf("ring size = %d", len(ring))
	}
	seen := map[int]bool{}
	for _, r := range ring {
		if seen[r] {
			t.Fatalf("ring visits rank %d twice: %v", r, ring)
		}
		seen[r] = true
	}
}

func TestRingDropsToPCIeEfficiencyWithFalconGPUs(t *testing.T) {
	for _, cfg := range []cluster.Config{cluster.FalconGPUsConfig(), cluster.HybridGPUsConfig()} {
		_, _, comm := compose(t, cfg)
		if comm.RingEfficiency() != PCIeRingEfficiency {
			t.Fatalf("%s ring efficiency = %v, want PCIe %v", cfg.Name, comm.RingEfficiency(), PCIeRingEfficiency)
		}
	}
}

// TestAllReduceLatencyOrdering checks the headline mechanism of the paper:
// the same all-reduce is far slower on Falcon-attached GPUs than on the
// NVLink-local group, and the hybrid group pays the PCIe price too.
func TestAllReduceLatencyOrdering(t *testing.T) {
	measure := func(cfg cluster.Config, size units.Bytes) time.Duration {
		env, _, comm := compose(t, cfg)
		var took time.Duration
		env.Go("bench", func(p *sim.Proc) {
			start := p.Now()
			comm.ExecAllReduce(p, size)
			took = p.Now() - start
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	const size = 640 * units.MB // ≈ BERT-large FP16 gradient payload
	local := measure(cluster.LocalGPUsConfig(), size)
	falcon := measure(cluster.FalconGPUsConfig(), size)
	hybrid := measure(cluster.HybridGPUsConfig(), size)
	t.Logf("allreduce %v: local=%v hybrid=%v falcon=%v", size, local, hybrid, falcon)
	if falcon < 3*local {
		t.Errorf("falcon ring (%v) should be ≫ local ring (%v)", falcon, local)
	}
	if hybrid < 2*local {
		t.Errorf("hybrid ring (%v) should be ≫ local ring (%v)", hybrid, local)
	}
}

// TestAllReduceBusBandwidth sanity-checks the local ring against NCCL-style
// bus bandwidth accounting: busbw = 2*(n-1)/n * size / time should be in
// the tens of GB/s on NVLink.
func TestAllReduceBusBandwidth(t *testing.T) {
	env, _, comm := compose(t, cluster.LocalGPUsConfig())
	const size = units.GB
	var took time.Duration
	env.Go("bench", func(p *sim.Proc) {
		start := p.Now()
		comm.ExecAllReduce(p, size)
		took = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	busbw := 2.0 * 7 / 8 * float64(size) / took.Seconds() / 1e9
	if busbw < 20 || busbw > 80 {
		t.Fatalf("local allreduce busbw = %.1f GB/s, want 20-80", busbw)
	}
}

func TestAllReduceValuesCorrectness(t *testing.T) {
	env, _, comm := compose(t, cluster.LocalGPUsConfig())
	n := comm.Size()
	const ln = 1000
	vecs := make([][]float64, n)
	want := make([]float64, ln)
	rng := rand.New(rand.NewSource(7))
	for r := range vecs {
		vecs[r] = make([]float64, ln)
		for k := range vecs[r] {
			vecs[r][k] = rng.NormFloat64()
			want[k] += vecs[r][k]
		}
	}
	env.Go("ar", func(p *sim.Proc) {
		if err := comm.AllReduceValues(p, vecs, 4); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for r := range vecs {
		for k := range want {
			if math.Abs(vecs[r][k]-want[k]) > 1e-9*math.Max(1, math.Abs(want[k])) {
				t.Fatalf("rank %d element %d = %v, want %v", r, k, vecs[r][k], want[k])
			}
		}
	}
}

// TestRingAllReduceValuesProperty: for random sizes, lengths and ring
// permutations, the ring algorithm produces the element-wise sum at every
// rank.
func TestRingAllReduceValuesProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		ln := 1 + rng.Intn(50)
		ring := rng.Perm(n)
		vecs := make([][]float64, n)
		want := make([]float64, ln)
		for r := range vecs {
			vecs[r] = make([]float64, ln)
			for k := range vecs[r] {
				vecs[r][k] = float64(rng.Intn(1000)) // exact in float64
				want[k] += vecs[r][k]
			}
		}
		if err := ringAllReduceValues(vecs, ring); err != nil {
			return false
		}
		for r := range vecs {
			for k := range want {
				if vecs[r][k] != want[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveStreamOrdering(t *testing.T) {
	// Two back-to-back all-reduces issued by all ranks must complete in
	// order and take roughly double the single-op time.
	env, _, comm := compose(t, cluster.LocalGPUsConfig())
	const size = 100 * units.MB
	var firstDone, secondDone time.Duration
	var wg sim.WaitGroup
	wg.Add(comm.Size())
	for rank := 0; rank < comm.Size(); rank++ {
		env.Go("rank", func(p *sim.Proc) {
			h1 := comm.StartAllReduce(rank, size)
			h2 := comm.StartAllReduce(rank, size)
			h1.Wait(p)
			if firstDone == 0 {
				firstDone = p.Now()
			}
			h2.Wait(p)
			if secondDone == 0 {
				secondDone = p.Now()
			}
			wg.Done(env)
		})
	}
	env.Go("join", func(p *sim.Proc) { wg.Wait(p) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if firstDone <= 0 || secondDone <= firstDone {
		t.Fatalf("ordering violated: first=%v second=%v", firstDone, secondDone)
	}
	ratio := float64(secondDone) / float64(firstDone)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("second op at %.2fx first, want ~2x (serialized stream)", ratio)
	}
}

func TestBroadcastAndReduceToRootSlowerThanRing(t *testing.T) {
	// DP's master-GPU pattern (reduce-to-root + broadcast) must cost more
	// than one ring all-reduce of the same payload: the master's links
	// serialize 7 peer flows.
	const size = 256 * units.MB
	env, _, comm := compose(t, cluster.LocalGPUsConfig())
	var dpTime, ringTime time.Duration
	env.Go("dp", func(p *sim.Proc) {
		start := p.Now()
		comm.ExecReduceToRoot(p, 0, size)
		comm.ExecBroadcast(p, 0, size)
		dpTime = p.Now() - start
		start = p.Now()
		comm.ExecAllReduce(p, size)
		ringTime = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	t.Logf("dp=%v ring=%v", dpTime, ringTime)
	if dpTime <= ringTime {
		t.Fatalf("DP pattern (%v) should be slower than ring (%v)", dpTime, ringTime)
	}
}

func TestNewWithRingValidation(t *testing.T) {
	_, sys, _ := compose(t, cluster.LocalGPUsConfig())
	if _, err := NewWithRing(sys.Net, sys.GPUs, []int{0, 1}); err == nil {
		t.Error("short ring accepted")
	}
	if _, err := NewWithRing(sys.Net, sys.GPUs, []int{0, 1, 2, 3, 4, 5, 6, 6}); err == nil {
		t.Error("duplicate ring entry accepted")
	}
	if _, err := NewWithRing(sys.Net, sys.GPUs, []int{0, 1, 2, 3, 4, 5, 6, 9}); err == nil {
		t.Error("out-of-range ring entry accepted")
	}
	if _, err := NewWithRing(sys.Net, sys.GPUs, []int{7, 6, 5, 4, 3, 2, 1, 0}); err != nil {
		t.Errorf("valid ring rejected: %v", err)
	}
}

func TestChannelCountEffects(t *testing.T) {
	// Counter-rotating channels double effective ring bandwidth where
	// ring edges are dedicated full-duplex links (the NVLink mesh), but
	// are neutral where both ring directions already share a bottleneck
	// (the falcon host-adapter links) — the A2 ablation's result.
	measure := func(cfg cluster.Config, ch int) time.Duration {
		env, _, comm := compose(t, cfg)
		comm.SetChannels(ch)
		var took time.Duration
		env.Go("b", func(p *sim.Proc) {
			start := p.Now()
			comm.ExecAllReduce(p, 256*units.MB)
			took = p.Now() - start
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	localOne := measure(cluster.LocalGPUsConfig(), 1)
	localTwo := measure(cluster.LocalGPUsConfig(), 2)
	if r := localOne.Seconds() / localTwo.Seconds(); r < 1.9 || r > 2.1 {
		t.Fatalf("NVLink ring: 1ch/2ch = %.2f, want 2 (dedicated links)", r)
	}
	falconOne := measure(cluster.FalconGPUsConfig(), 1)
	falconTwo := measure(cluster.FalconGPUsConfig(), 2)
	if d := falconOne.Seconds()/falconTwo.Seconds() - 1; d < -0.02 || d > 0.02 {
		t.Fatalf("falcon ring: 1ch=%v 2ch=%v, want invariant (shared bottleneck)", falconOne, falconTwo)
	}
}

func TestReduceScatterHalfOfAllReduce(t *testing.T) {
	env, _, comm := compose(t, cluster.LocalGPUsConfig())
	const size = 512 * units.MB
	var rsTime, arTime time.Duration
	env.Go("b", func(p *sim.Proc) {
		start := p.Now()
		comm.runRingPasses(p, size, 1)
		rsTime = p.Now() - start
		start = p.Now()
		comm.runRingPasses(p, size, 2)
		arTime = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := arTime.Seconds() / rsTime.Seconds()
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("allreduce/reducescatter = %.2f, want 2 (two passes)", ratio)
	}
}
