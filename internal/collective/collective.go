// Package collective is an NCCL-style multi-GPU communication library for
// the simulated fabric: topology-aware ring construction, ring all-reduce,
// reduce-scatter, all-gather and broadcast, with dual counter-rotating
// channels (as NCCL builds on DGX-class machines) and per-protocol
// efficiency factors.
//
// Collectives both *move simulated time* (their flows contend on the fabric,
// which is where the paper's PCIe-switching overhead comes from) and, when
// used through the *Values variants, actually compute the reduction, so the
// algorithms are testable for correctness, not just for timing.
package collective

import (
	"fmt"
	"strconv"

	"composable/internal/fabric"
	"composable/internal/gpu"
	"composable/internal/nvlink"
	"composable/internal/sim"
	"composable/internal/units"
)

// Protocol efficiency: the fraction of path bandwidth a NCCL-style ring
// sustains, beyond raw link efficiency (already in the link calibration).
// These two constants are calibrated jointly against Figure 11 (BERT-large
// ≈ 2× slower on falconGPUs) and Figure 12 (≈ 76 GB/s falcon PCIe traffic
// for BERT-large): protocol handshakes and chunk scheduling cost more on
// PCIe rings (no dedicated copy engines per peer, relaxed-ordering stalls)
// than on NVLink rings.
const (
	NVLinkRingEfficiency = 0.90
	PCIeRingEfficiency   = 0.55
)

// DefaultChannels is the number of counter-rotating rings a communicator
// uses. Two rings in opposite directions use both directions of every
// full-duplex edge, mirroring NCCL's channel pairs. See the A2 ablation
// experiment for the cost of running a single ring.
const DefaultChannels = 2

// Communicator coordinates collectives over a fixed group of GPUs.
// All ranks must join each operation; operations execute in join order
// (NCCL stream semantics).
type Communicator struct {
	net      *fabric.Network
	env      *sim.Env
	gpus     []*gpu.Device
	ring     []int // ring order as indices into gpus
	eff      float64
	channels int
	queue    []*op // FIFO of operations being assembled/executed
	// fanSpecs is scratch for armFanTransfer (ops execute serially, so
	// one buffer per communicator suffices).
	fanSpecs []fabric.TransferSpec
	// ringChans holds one persistent goroutine-free ring driver per
	// channel, reused across every op on this communicator (ops execute
	// serially — NCCL stream semantics — so reuse is safe). Each round of
	// each channel then costs zero context switches: the stepper's
	// continuation runs inline in the event dispatcher.
	ringChans []*ringChannel
}

// ringChannel drives one counter-rotating ring channel as a stepper state
// machine: each step releases the previous round's flows, starts the next
// round's, and re-arms on their completion, padded by the protocol
// overhead. The event positions are identical to the goroutine-per-channel
// formulation, so execution order — and the simulation's determinism — is
// unchanged; only the context switches are gone.
type ringChannel struct {
	c       *Communicator
	sp      *sim.Proc
	reverse bool
	specs   []fabric.TransferSpec
	flows   []*fabric.Flow
	chunk   units.Bytes
	r       int
	rounds  int
	wg      *sim.WaitGroup
}

// start primes the channel for one op and schedules its first step at the
// current instant — the same event a per-op process spawn would occupy.
func (rc *ringChannel) start(chunk units.Bytes, rounds int, wg *sim.WaitGroup) {
	rc.chunk, rc.rounds, rc.r, rc.wg = chunk, rounds, 0, wg
	rc.c.env.Ready(rc.sp)
}

// step advances the channel: release the finished round's flows, start the
// next round, re-arm on its completion; when the rounds are done, report
// to the op's wait group.
//
//perf:hot
func (rc *ringChannel) step() {
	c := rc.c
	if len(rc.flows) > 0 {
		c.net.ReleaseFlows(&rc.flows)
	}
	n := len(c.ring)
	for rc.r < rc.rounds {
		rc.r++
		for i := 0; i < n; i++ {
			src := c.gpus[c.ring[i]].Node
			var dst fabric.NodeID
			if rc.reverse {
				dst = c.gpus[c.ring[(i+n-1)%n]].Node
			} else {
				dst = c.gpus[c.ring[(i+1)%n]].Node
			}
			rc.specs[i] = fabric.TransferSpec{Src: src, Dst: dst, Size: rc.chunk}
		}
		// The pad charges the round's protocol overhead beyond payload
		// movement in the same event as the completion wake.
		armed, err := c.net.ArmParallelTransfer(rc.sp, rc.specs, 1/c.eff-1, &rc.flows)
		if err != nil {
			panic(err)
		}
		if armed {
			return
		}
		c.net.ReleaseFlows(&rc.flows) // every leg finished instantly
	}
	rc.wg.Done(c.env)
}

// SetChannels overrides the counter-rotating ring count (ablation knob;
// must be >= 1). Channels beyond the first pair re-use ring directions.
func (c *Communicator) SetChannels(n int) {
	if n < 1 {
		n = 1
	}
	c.channels = n
	c.buildChannels()
}

// buildChannels constructs the per-channel ring drivers for the current
// channel count.
func (c *Communicator) buildChannels() {
	c.ringChans = make([]*ringChannel, c.channels)
	for ch := range c.ringChans {
		rc := &ringChannel{
			c:       c,
			reverse: ch%2 == 1,
			specs:   make([]fabric.TransferSpec, len(c.ring)),
		}
		rc.sp = c.env.NewStepper("ring-ch"+strconv.Itoa(ch), rc.step)
		c.ringChans[ch] = rc
	}
}

// opProcName maps an op kind to its (constant) process name; every op of a
// kind shares one name, so launches never format strings.
func opProcName(kind string) string {
	switch kind {
	case "allreduce":
		return "nccl-allreduce"
	case "reducescatter":
		return "nccl-reducescatter"
	case "allgather":
		return "nccl-allgather"
	case "broadcast":
		return "nccl-broadcast"
	case "reduceroot":
		return "nccl-reduceroot"
	}
	return "nccl-" + kind
}

// op is one in-flight collective, driven as a stepper state machine: wait
// for the predecessor, run the data movement, fire done. The stages sit at
// the exact event positions the process-per-op formulation used, minus its
// context switches.
type op struct {
	kind    string
	bytes   units.Bytes
	root    int
	ranks   uint64 // bitmask of joined ranks (groups are ≤ 64 ranks)
	joined  int
	started bool
	done    sim.Signal
	prev    *op

	c      *Communicator
	proc   sim.Proc // embedded stepper driven via Step (no extra allocs)
	moving bool     // data movement started; next step completes the op
	wg     sim.WaitGroup
	flows  []*fabric.Flow
}

// New builds a communicator with a topology-aware ring: host-local GPUs
// are ordered along the NVLink cube-mesh Hamiltonian cycle, Falcon GPUs
// follow in slot order, so a hybrid ring crosses the host boundary exactly
// twice — matching how NCCL's graph search places PCIe hops.
func New(net *fabric.Network, gpus []*gpu.Device) (*Communicator, error) {
	if len(gpus) < 2 {
		return nil, fmt.Errorf("collective: need at least 2 GPUs, have %d", len(gpus))
	}
	var locals, falcons []int
	for i, g := range gpus {
		if g.Local {
			locals = append(locals, i)
		} else {
			falcons = append(falcons, i)
		}
	}
	ring := make([]int, 0, len(gpus))
	for _, pos := range nvlink.RingOrder(len(locals)) {
		ring = append(ring, locals[pos])
	}
	ring = append(ring, falcons...)
	return NewWithRing(net, gpus, ring)
}

// NewWithRing builds a communicator with an explicit ring order (indices
// into gpus, each exactly once). Used by the ring-topology ablation; New
// is the production constructor.
func NewWithRing(net *fabric.Network, gpus []*gpu.Device, ring []int) (*Communicator, error) {
	if len(ring) != len(gpus) {
		return nil, fmt.Errorf("collective: ring has %d entries for %d GPUs", len(ring), len(gpus))
	}
	seen := make([]bool, len(gpus))
	for _, r := range ring {
		if r < 0 || r >= len(gpus) || seen[r] {
			return nil, fmt.Errorf("collective: invalid ring %v", ring)
		}
		seen[r] = true
	}

	c := &Communicator{net: net, env: net.Env(), gpus: gpus, ring: ring, channels: DefaultChannels}
	c.buildChannels()
	c.eff = NVLinkRingEfficiency
	for i := range ring {
		a := gpus[ring[i]].Node
		b := gpus[ring[(i+1)%len(ring)]].Node
		proto, err := net.PathProtocol(a, b)
		if err != nil {
			return nil, fmt.Errorf("collective: ring edge unreachable: %w", err)
		}
		if proto != nvlink.Protocol {
			c.eff = PCIeRingEfficiency
		}
	}
	return c, nil
}

// Size returns the number of ranks.
func (c *Communicator) Size() int { return len(c.gpus) }

// Ring returns the ring order (indices into the GPU group).
func (c *Communicator) Ring() []int { return append([]int(nil), c.ring...) }

// RingEfficiency returns the protocol efficiency chosen for this group.
func (c *Communicator) RingEfficiency() float64 { return c.eff }

// join registers a rank's arrival at its next op of the given kind,
// creating the op if this rank is first. When the last rank arrives,
// execution starts (chained after the previous op, preserving NCCL's
// stream-order semantics). Each rank must issue collectives in the same
// order — the standard NCCL contract.
func (c *Communicator) join(kind string, bytes units.Bytes, root, rank int) *op {
	if rank < 0 || rank >= len(c.gpus) {
		panic(fmt.Sprintf("collective: rank %d out of range", rank))
	}
	// Find the oldest op of this kind this rank has not joined yet.
	var cur *op
	bit := uint64(1) << uint(rank)
	for _, o := range c.queue {
		if !o.started && o.kind == kind && o.bytes == bytes && o.root == root && o.ranks&bit == 0 {
			cur = o
			break
		}
	}
	if cur == nil {
		var prev *op
		if len(c.queue) > 0 {
			prev = c.queue[len(c.queue)-1]
		}
		cur = &op{kind: kind, bytes: bytes, root: root, prev: prev}
		c.queue = append(c.queue, cur)
	}
	cur.ranks |= bit
	cur.joined++
	if cur.joined == len(c.gpus) {
		cur.started = true
		c.launch(cur)
	}
	return cur
}

// launch schedules the op's stepper, which runs its data movement after
// the predecessor completes.
func (c *Communicator) launch(o *op) {
	o.c = c
	c.env.InitStepperFor(&o.proc, opProcName(o.kind), o)
	c.env.Ready(&o.proc)
}

// step advances the op through its three stages — predecessor wait, data
// movement, completion — re-arming on the event that ends each stage.
//
//perf:hot
func (o *op) Step() {
	c := o.c
	if !o.moving {
		if o.prev != nil && o.prev.done.Arm(&o.proc) {
			return
		}
		o.prev = nil
		o.moving = true
		switch o.kind {
		case "allreduce":
			if o.armRingPasses(2) { // reduce-scatter + all-gather
				return
			}
		case "reducescatter", "allgather":
			if o.armRingPasses(1) {
				return
			}
		case "broadcast":
			if o.armFanTransfer(true) {
				return
			}
		case "reduceroot":
			if o.armFanTransfer(false) {
				return
			}
		default:
			panic("collective: unknown op " + o.kind)
		}
	}
	if len(o.flows) > 0 {
		c.net.ReleaseFlows(&o.flows)
	}
	c.gc()
	o.done.Fire(c.env)
}

// armRingPasses starts `passes` × (N−1) ring rounds over all channels and
// arms the op's stepper on their joint completion. Reports false if the
// channels finished inline (degenerate rings only).
//
//perf:hot
func (o *op) armRingPasses(passes int) bool {
	c := o.c
	n := len(c.ring)
	rounds := passes * (n - 1)
	chunk := units.Bytes(float64(o.bytes) / float64(n) / float64(c.channels))
	if chunk <= 0 {
		chunk = 1
	}
	o.wg.Add(c.channels)
	for ch := 0; ch < c.channels; ch++ {
		c.ringChans[ch].start(chunk, rounds, &o.wg)
	}
	return o.wg.Arm(&o.proc)
}

// armFanTransfer starts the root→all (broadcast) or all→root (reduce)
// flows and arms the op's stepper on their completion.
//
//perf:hot
func (o *op) armFanTransfer(fromRoot bool) bool {
	c := o.c
	specs := c.fanSpecs[:0]
	for i := range c.gpus {
		if i == o.root {
			continue
		}
		if fromRoot {
			specs = append(specs, fabric.TransferSpec{
				Src: c.gpus[o.root].Node, Dst: c.gpus[i].Node, Size: o.bytes,
			})
		} else {
			specs = append(specs, fabric.TransferSpec{
				Src: c.gpus[i].Node, Dst: c.gpus[o.root].Node, Size: o.bytes,
			})
		}
	}
	c.fanSpecs = specs
	armed, err := c.net.ArmParallelTransfer(&o.proc, specs, 1/c.eff-1, &o.flows)
	if err != nil {
		panic(err)
	}
	return armed
}

// gc drops completed ops from the head of the queue, copying the tail
// down so the queue's backing array keeps its capacity.
func (c *Communicator) gc() {
	drop := 0
	for drop < len(c.queue) && c.queue[drop].started && c.queue[drop].done.Fired() {
		drop++
	}
	if drop == 0 {
		return
	}
	m := copy(c.queue, c.queue[drop:])
	for i := m; i < len(c.queue); i++ {
		c.queue[i] = nil
	}
	c.queue = c.queue[:m]
}

// runRingPasses executes `passes` × (N−1) ring rounds over both channels;
// each channel moves half the payload in chunks of size/N per rank per
// round. A pass of 1 is a reduce-scatter or all-gather; 2 is a full
// all-reduce. Per-round protocol overhead is applied as extra time (the
// efficiency factor), not extra counted bytes: chassis port counters see
// payload, matching how the paper measured Figure 12.
func (c *Communicator) runRingPasses(p *sim.Proc, size units.Bytes, passes int) {
	n := len(c.ring)
	rounds := passes * (n - 1)
	chunk := units.Bytes(float64(size) / float64(n) / float64(c.channels))
	if chunk <= 0 {
		chunk = 1
	}
	var wg sim.WaitGroup
	wg.Add(c.channels)
	for ch := 0; ch < c.channels; ch++ {
		c.ringChans[ch].start(chunk, rounds, &wg)
	}
	wg.Wait(p)
}

// runBroadcast sends the payload root → every other rank as concurrent
// flows (PyTorch DP's replicate step).
func (c *Communicator) runBroadcast(p *sim.Proc, root int, size units.Bytes) {
	specs := make([]fabric.TransferSpec, 0, len(c.gpus)-1)
	for i := range c.gpus {
		if i == root {
			continue
		}
		specs = append(specs, fabric.TransferSpec{
			Src: c.gpus[root].Node, Dst: c.gpus[i].Node, Size: size,
		})
	}
	if err := c.net.ParallelTransferPadded(p, specs, 1/c.eff-1); err != nil {
		panic(err)
	}
}

// runReduceRoot gathers every rank's payload into root as concurrent flows
// (PyTorch DP's gradient reduction onto the master GPU).
func (c *Communicator) runReduceRoot(p *sim.Proc, root int, size units.Bytes) {
	specs := make([]fabric.TransferSpec, 0, len(c.gpus)-1)
	for i := range c.gpus {
		if i == root {
			continue
		}
		specs = append(specs, fabric.TransferSpec{
			Src: c.gpus[i].Node, Dst: c.gpus[root].Node, Size: size,
		})
	}
	if err := c.net.ParallelTransferPadded(p, specs, 1/c.eff-1); err != nil {
		panic(err)
	}
}

// StartAllReduce joins rank to its next all-reduce of size bytes and
// returns the completion signal, letting the caller overlap the collective
// with further compute (DDP bucket overlap).
func (c *Communicator) StartAllReduce(rank int, size units.Bytes) *sim.Signal {
	return &c.join("allreduce", size, 0, rank).done
}

// AllReduce joins rank and blocks until the collective completes.
func (c *Communicator) AllReduce(p *sim.Proc, rank int, size units.Bytes) {
	c.join("allreduce", size, 0, rank).done.Wait(p)
}

// StartReduceScatter joins rank to a reduce-scatter (ZeRO gradient
// sharding).
func (c *Communicator) StartReduceScatter(rank int, size units.Bytes) *sim.Signal {
	return &c.join("reducescatter", size, 0, rank).done
}

// StartAllGather joins rank to an all-gather (ZeRO parameter reassembly).
func (c *Communicator) StartAllGather(rank int, size units.Bytes) *sim.Signal {
	return &c.join("allgather", size, 0, rank).done
}

// Broadcast joins rank to a root→all broadcast and blocks.
func (c *Communicator) Broadcast(p *sim.Proc, rank, root int, size units.Bytes) {
	c.join("broadcast", size, root, rank).done.Wait(p)
}

// ReduceToRoot joins rank to an all→root gradient reduction and blocks.
func (c *Communicator) ReduceToRoot(p *sim.Proc, rank, root int, size units.Bytes) {
	c.join("reduceroot", size, root, rank).done.Wait(p)
}

// The Exec variants run a collective immediately on behalf of all ranks
// from a single driver process — the shape microbenchmarks and examples
// want, where no per-rank processes exist.

// ExecAllReduce performs one all-reduce, blocking the driver.
func (c *Communicator) ExecAllReduce(p *sim.Proc, size units.Bytes) {
	c.runRingPasses(p, size, 2)
}

// ExecBroadcast performs one root→all broadcast, blocking the driver.
func (c *Communicator) ExecBroadcast(p *sim.Proc, root int, size units.Bytes) {
	c.runBroadcast(p, root, size)
}

// ExecReduceToRoot performs one all→root reduction, blocking the driver.
func (c *Communicator) ExecReduceToRoot(p *sim.Proc, root int, size units.Bytes) {
	c.runReduceRoot(p, root, size)
}
