package collective

import (
	"fmt"

	"composable/internal/sim"
	"composable/internal/units"
)

// This file implements the data plane of the ring algorithms: the actual
// chunked reduce-scatter / all-gather arithmetic over real vectors. The
// timing variants in collective.go move simulated time; these move values.
// AllReduceValues does both, so tests can assert numerical correctness of
// exactly the schedule whose cost the simulator charges.

// ringAllReduceValues runs the textbook ring all-reduce in place over
// vecs[rank], using the given ring order. After it returns, every vector
// equals the element-wise sum of all inputs.
func ringAllReduceValues(vecs [][]float64, ring []int) error {
	n := len(ring)
	if n == 0 {
		return fmt.Errorf("collective: empty ring")
	}
	ln := len(vecs[ring[0]])
	for _, r := range ring {
		if len(vecs[r]) != ln {
			return fmt.Errorf("collective: rank %d vector length %d != %d", r, len(vecs[r]), ln)
		}
	}
	if n == 1 {
		return nil
	}
	// Chunk c covers [start(c), start(c+1)).
	start := func(c int) int { return (c%n + n) % n * ln / n }
	bounds := func(c int) (int, int) {
		c = (c%n + n) % n
		return c * ln / n, (c + 1) * ln / n
	}
	_ = start

	// Reduce-scatter: in round r, ring position i sends chunk (i-r) to
	// position i+1, which accumulates it. Buffers snapshot the sent
	// chunks first so all sends within a round are concurrent.
	for r := 0; r < n-1; r++ {
		type msg struct {
			to    int
			chunk int
			data  []float64
		}
		msgs := make([]msg, 0, n)
		for i := 0; i < n; i++ {
			c := i - r
			lo, hi := bounds(c)
			src := vecs[ring[i]][lo:hi]
			buf := make([]float64, len(src))
			copy(buf, src)
			msgs = append(msgs, msg{to: (i + 1) % n, chunk: c, data: buf})
		}
		for _, m := range msgs {
			lo, hi := bounds(m.chunk)
			dst := vecs[ring[m.to]][lo:hi]
			for k := range dst {
				dst[k] += m.data[k]
			}
		}
	}
	// After reduce-scatter, position i holds the full sum of chunk i+1.
	// All-gather: in round r, position i sends chunk (i+1-r) onward.
	for r := 0; r < n-1; r++ {
		type msg struct {
			to    int
			chunk int
			data  []float64
		}
		msgs := make([]msg, 0, n)
		for i := 0; i < n; i++ {
			c := i + 1 - r
			lo, hi := bounds(c)
			src := vecs[ring[i]][lo:hi]
			buf := make([]float64, len(src))
			copy(buf, src)
			msgs = append(msgs, msg{to: (i + 1) % n, chunk: c, data: buf})
		}
		for _, m := range msgs {
			lo, hi := bounds(m.chunk)
			copy(vecs[ring[m.to]][lo:hi], m.data)
		}
	}
	return nil
}

// AllReduceValues all-reduces one vector per rank (element-wise sum
// everywhere), charging the simulated fabric for the movement. vecs is
// indexed by rank; the call blocks until both data and simulated transfer
// complete. elemBytes sizes the wire payload (4 for FP32 gradients,
// 2 for FP16).
func (c *Communicator) AllReduceValues(p *sim.Proc, vecs [][]float64, elemBytes int) error {
	if len(vecs) != len(c.gpus) {
		return fmt.Errorf("collective: %d vectors for %d ranks", len(vecs), len(c.gpus))
	}
	if err := ringAllReduceValues(vecs, c.ring); err != nil {
		return err
	}
	size := units.Bytes(len(vecs[c.ring[0]]) * elemBytes)
	c.runRingPasses(p, size, 2)
	return nil
}
