package dlmodel

import "fmt"

// ResNet50 builds the ResNet-50 graph for 224×224 ImageNet inputs
// (He et al. 2016). The 50-layer count follows the paper's convention:
// 49 convolutions on the main path plus the final classifier; projection
// shortcuts are parameters but not counted layers.
func ResNet50() *Graph {
	g := &Graph{Name: "ResNet-50"}
	b := &cnnBuilder{g: g, h: 224, w: 224, c: 3}

	b.conv("conv1", 64, 7, 2, true, true, 1)
	b.pool("maxpool", 3, 2, false)

	stages := []struct {
		mid, out, blocks, stride int
	}{
		{64, 256, 3, 1},
		{128, 512, 4, 2},
		{256, 1024, 6, 2},
		{512, 2048, 3, 2},
	}
	for si, st := range stages {
		for blk := 0; blk < st.blocks; blk++ {
			stride := 1
			if blk == 0 {
				stride = st.stride
			}
			name := fmt.Sprintf("layer%d.%d", si+1, blk)
			cin := b.c
			hIn, wIn := b.h, b.w
			b.conv(name+".conv1", st.mid, 1, 1, true, true, 1)
			b.conv(name+".conv2", st.mid, 3, stride, true, true, 1)
			b.conv(name+".conv3", st.out, 1, 1, true, false, 1)
			if blk == 0 {
				// Projection shortcut: a real conv, but not part of
				// the canonical 50-layer count.
				down := &cnnBuilder{g: g, h: hIn, w: wIn, c: cin}
				down.conv(name+".downsample", st.out, 1, stride, true, false, 0)
			}
			b.addResidual(name + ".add")
			g.add(Layer{Name: name + ".relu", Kind: "act",
				FwdFLOPs: g.Layers[len(g.Layers)-1].FwdFLOPs,
				ActBytes: g.Layers[len(g.Layers)-1].ActBytes})
		}
	}
	b.pool("avgpool", 0, 0, true)
	b.linear("fc", 1000, 1)
	return g.finalize()
}
