package dlmodel

import (
	"fmt"

	"composable/internal/units"
)

// bertConfig sizes a BERT encoder (Devlin et al. 2019).
type bertConfig struct {
	name      string
	hidden    int
	layers    int
	heads     int
	ffn       int
	vocab     int
	maxPos    int
	typeVocab int
	seqLen    int
}

// BERTBase builds bert-base-uncased with a SQuAD span-extraction head at
// the given sequence length. Depth (Table II) counts encoder blocks: 12.
func BERTBase(seqLen int) *Graph {
	return buildBERT(bertConfig{
		name: "BERT", hidden: 768, layers: 12, heads: 12, ffn: 3072,
		vocab: 30522, maxPos: 512, typeVocab: 2, seqLen: seqLen,
	})
}

// BERTLarge builds bert-large-uncased with a SQuAD head. Depth: 24.
func BERTLarge(seqLen int) *Graph {
	return buildBERT(bertConfig{
		name: "BERT-L", hidden: 1024, layers: 24, heads: 16, ffn: 4096,
		vocab: 30522, maxPos: 512, typeVocab: 2, seqLen: seqLen,
	})
}

func buildBERT(cfg bertConfig) *Graph {
	g := &Graph{Name: cfg.name}
	H := int64(cfg.hidden)
	S := int64(cfg.seqLen)
	act := func(n int64) units.Bytes { return units.Bytes(4 * n) }

	// Embeddings: word + position + token-type lookups, then LayerNorm.
	// Lookups are gathers: negligible FLOPs, large parameter tables.
	g.add(Layer{Name: "embeddings.word", Kind: "embed",
		Params: int64(cfg.vocab) * H, ActBytes: act(S * H)})
	g.add(Layer{Name: "embeddings.position", Kind: "embed",
		Params: int64(cfg.maxPos) * H, ActBytes: act(S * H)})
	g.add(Layer{Name: "embeddings.type", Kind: "embed",
		Params: int64(cfg.typeVocab) * H, ActBytes: act(S * H)})
	g.add(Layer{Name: "embeddings.ln", Kind: "ln", Params: 2 * H,
		FwdFLOPs: units.FLOPs(8 * S * H), ActBytes: act(S * H)})

	linear := func(name string, in, out int64) {
		g.add(Layer{Name: name, Kind: "linear",
			Params:   in*out + out,
			FwdFLOPs: units.FLOPs(2 * S * in * out),
			ActBytes: act(S * out)})
	}
	for l := 0; l < cfg.layers; l++ {
		p := fmt.Sprintf("encoder.%d.", l)
		// The encoder block is the depth unit of Table II.
		g.add(Layer{Name: p + "block", Kind: "attn", DepthUnits: 1})
		linear(p+"attn.q", H, H)
		linear(p+"attn.k", H, H)
		linear(p+"attn.v", H, H)
		// Scaled dot-product attention: QKᵀ then AV, each 2·S²·H MACs
		// ×2 FLOPs, plus softmax.
		g.add(Layer{Name: p + "attn.scores", Kind: "attn",
			FwdFLOPs: units.FLOPs(2 * S * S * H),
			ActBytes: act(int64(cfg.heads) * S * S)})
		g.add(Layer{Name: p + "attn.softmax", Kind: "act",
			FwdFLOPs: units.FLOPs(5 * int64(cfg.heads) * S * S),
			ActBytes: act(int64(cfg.heads) * S * S)})
		g.add(Layer{Name: p + "attn.context", Kind: "attn",
			FwdFLOPs: units.FLOPs(2 * S * S * H),
			ActBytes: act(S * H)})
		linear(p+"attn.out", H, H)
		g.add(Layer{Name: p + "attn.ln", Kind: "ln", Params: 2 * H,
			FwdFLOPs: units.FLOPs(8 * S * H), ActBytes: act(S * H)})
		linear(p+"ffn.in", H, int64(cfg.ffn))
		g.add(Layer{Name: p + "ffn.gelu", Kind: "act",
			FwdFLOPs: units.FLOPs(8 * S * int64(cfg.ffn)),
			ActBytes: act(S * int64(cfg.ffn))})
		linear(p+"ffn.out", int64(cfg.ffn), H)
		g.add(Layer{Name: p + "ffn.ln", Kind: "ln", Params: 2 * H,
			FwdFLOPs: units.FLOPs(8 * S * H), ActBytes: act(S * H)})
	}
	// Pooler (present in the pretrained checkpoint, hence in the
	// parameter count) and the SQuAD span head.
	linear("pooler", H, H)
	linear("qa_outputs", H, 2)
	return g.finalize()
}
