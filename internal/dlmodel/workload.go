package dlmodel

import (
	"fmt"
	"sync"
	"time"

	"composable/internal/data"
	"composable/internal/gpu"
	"composable/internal/units"
)

// Workload binds a model graph to its dataset and the training
// hyperparameters the paper used (§V-C-1), plus the calibrated execution
// constants that map FLOPs to V100 time.
type Workload struct {
	Name   string
	Domain string // "Computer Vision" or "NLP (Q&A)"
	Graph  *Graph
	Data   data.Spec

	// Paper hyperparameters.
	BatchPerGPU int // per-GPU batch (the paper's batch over 8 GPUs)
	Epochs      int
	SeqLen      int // NLP only

	// EffFP16/EffFP32 are the achievable fractions of GPU peak for this
	// model's kernel mix (calibrated against public V100 throughput
	// numbers: depthwise convs are launch/memory-bound, transformers
	// feed tensor cores well).
	EffFP16, EffFP32 float64
	// LaunchOverhead is the fixed per-iteration host time: kernel
	// launches, Python dispatch, optimizer bookkeeping. It dominates for
	// small fast models (MobileNetV2).
	LaunchOverhead time.Duration

	// ActPerSampleFP16 is the training activation footprint per sample
	// at FP16, including framework overheads (PyTorch keeps more than
	// the layer outputs alive). Calibrated so that BERT-large reproduces
	// the paper's batch-size ceilings: 6 without sharding, 10 with
	// (§V-C-4). FP32 doubles it.
	ActPerSampleFP16 units.Bytes

	// CheckpointsPerEpoch is how many snapshots the training loop writes
	// per (real, full-length) epoch: YOLOv5 saves last+best, the BERT
	// fine-tuning scripts save every few hundred steps.
	CheckpointsPerEpoch int
	// CkptStateFactor scales the snapshot beyond bare FP32 weights for
	// scripts that also persist optimizer/EMA state (YOLOv5 ≈2.5×,
	// HF Trainer ≈3×).
	CkptStateFactor float64

	// DPPerIterOverhead is the extra single-process cost of PyTorch DP:
	// Python GIL, scatter/gather glue (§V-C-4).
	DPPerIterOverhead time.Duration
}

// benchmarkSet builds the five Table II workloads exactly once per
// process. Graph construction is the expensive part (hundreds of layers
// with formatted names); the benchmarks are immutable by contract, so
// every caller can share one build. Workload is a value type — callers
// receive struct copies that alias the cached, finalized *Graph, which is
// read-only after construction.
var benchmarkSet = sync.OnceValue(func() []Workload {
	return []Workload{
		MobileNetV2Workload(), ResNet50Workload(), YOLOv5LWorkload(),
		BERTBaseWorkload(), BERTLargeWorkload(),
	}
})

// Benchmarks returns the paper's five workloads in Table II order. The
// returned slice is the caller's to modify; the Graph pointers inside are
// the shared immutable benchmark graphs.
func Benchmarks() []Workload {
	cached := benchmarkSet()
	out := make([]Workload, len(cached))
	copy(out, cached)
	return out
}

// BenchmarkByName finds a workload by its Table II name.
//
//perf:hot
func BenchmarkByName(name string) (Workload, error) {
	for _, w := range benchmarkSet() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("dlmodel: unknown benchmark %q", name)
}

// MobileNetV2Workload: ImageNet, batch 64, 10 epochs (§V-C-1).
func MobileNetV2Workload() Workload {
	return Workload{
		Name: "MobileNetV2", Domain: "Computer Vision",
		Graph: MobileNetV2(), Data: data.ImageNet,
		BatchPerGPU: 64, Epochs: 10,
		// Depthwise separable convs run far below tensor-core peak and
		// the 151-layer graph is kernel-launch bound.
		EffFP16: 0.088, EffFP32: 0.30,
		// MobileNetV2 DDP is dominated by per-layer launch/dispatch cost
		// (151 small kernels + DDP hooks): ≈940 img/s/GPU on V100.
		LaunchOverhead:      55 * time.Millisecond,
		ActPerSampleFP16:    28 * units.MB,
		CheckpointsPerEpoch: 1,
		CkptStateFactor:     2,
		DPPerIterOverhead:   12 * time.Millisecond,
	}
}

// ResNet50Workload: ImageNet, batch 128, 20 epochs.
func ResNet50Workload() Workload {
	return Workload{
		Name: "ResNet-50", Domain: "Computer Vision",
		Graph: ResNet50(), Data: data.ImageNet,
		BatchPerGPU: 128, Epochs: 20,
		EffFP16: 0.21, EffFP32: 0.52,
		LaunchOverhead:      6 * time.Millisecond,
		ActPerSampleFP16:    45 * units.MB,
		CheckpointsPerEpoch: 1,
		CkptStateFactor:     2,
		DPPerIterOverhead:   15 * time.Millisecond,
	}
}

// YOLOv5LWorkload: COCO, batch 88 over 8 GPUs = 11 per GPU, 20 epochs.
func YOLOv5LWorkload() Workload {
	return Workload{
		Name: "YOLOv5-L", Domain: "Computer Vision",
		Graph: YOLOv5L(), Data: data.COCO,
		BatchPerGPU: 11, Epochs: 20,
		EffFP16: 0.18, EffFP32: 0.45,
		LaunchOverhead:   10 * time.Millisecond,
		ActPerSampleFP16: 160 * units.MB,
		// YOLOv5 writes last.pt and best.pt (model+EMA+optimizer) every
		// epoch.
		CheckpointsPerEpoch: 2,
		CkptStateFactor:     2.5,
		DPPerIterOverhead:   15 * time.Millisecond,
	}
}

// BERTBaseWorkload: SQuAD fine-tune, seq 384, batch 96 over 8 GPUs = 12,
// 2 epochs.
func BERTBaseWorkload() Workload {
	return Workload{
		Name: "BERT", Domain: "NLP (Q&A)",
		Graph: BERTBase(384), Data: data.SQuADv11,
		BatchPerGPU: 12, Epochs: 2, SeqLen: 384,
		EffFP16: 0.27, EffFP32: 0.60,
		LaunchOverhead:      5 * time.Millisecond,
		ActPerSampleFP16:    720 * units.MB,
		CheckpointsPerEpoch: 2, // save_steps cadence
		CkptStateFactor:     3, // HF Trainer persists optimizer state
		DPPerIterOverhead:   20 * time.Millisecond,
	}
}

// BERTLargeWorkload: SQuAD fine-tune, seq 384, batch 48 over 8 GPUs = 6,
// 2 epochs.
func BERTLargeWorkload() Workload {
	return Workload{
		Name: "BERT-L", Domain: "NLP (Q&A)",
		Graph: BERTLarge(384), Data: data.SQuADv11,
		BatchPerGPU: 6, Epochs: 2, SeqLen: 384,
		EffFP16: 0.28, EffFP32: 0.60,
		LaunchOverhead: 5 * time.Millisecond,
		// 1.31 decimal GB/sample: the value that reproduces the paper's
		// sharded-training result exactly (max batch 6 plain DDP,
		// 10 with ZeRO-2 sharding on a 16 GB V100; §V-C-4).
		ActPerSampleFP16:    units.Bytes(1_310_000_000),
		CheckpointsPerEpoch: 3, // ≈ every 600 steps of the 1825-step epoch
		CkptStateFactor:     3, // HF Trainer persists optimizer state
		DPPerIterOverhead:   20 * time.Millisecond,
	}
}

// GradBytes is the gradient payload synchronized per iteration.
func (w Workload) GradBytes(prec gpu.Precision) units.Bytes {
	return units.Bytes(w.Graph.Params()) * prec.BytesPerElement()
}

// CheckpointBytes is one FP32 model snapshot (weights only).
func (w Workload) CheckpointBytes() units.Bytes {
	return units.Bytes(w.Graph.Params()) * 4
}

// CheckpointWriteBytes is the full on-disk snapshot including optimizer
// and EMA state, per the workload's training script.
func (w Workload) CheckpointWriteBytes() units.Bytes {
	f := w.CkptStateFactor
	if f < 1 {
		f = 1
	}
	return units.Bytes(float64(w.CheckpointBytes()) * f)
}

// RealItersPerEpoch is the full-length epoch in iterations at the paper's
// global batch over nGPU GPUs. Simulated runs shrink the dataset (fewer
// iterations per epoch); per-epoch fixed costs such as checkpoints are
// scaled by simIters/RealItersPerEpoch so that their share of training
// time matches the full-length run.
func (w Workload) RealItersPerEpoch(nGPU int) int {
	global := w.BatchPerGPU * nGPU
	if global <= 0 {
		return 1
	}
	iters := w.Data.Samples / global
	if iters < 1 {
		iters = 1
	}
	return iters
}

// ComputeTime returns the forward and backward durations of one iteration
// on the given GPU (backward costs twice the forward, the usual 1:2 rule).
// LaunchOverhead is charged separately by the training loop.
func (w Workload) ComputeTime(spec gpu.Spec, prec gpu.Precision, batch int) (fwd, bwd time.Duration) {
	eff := w.EffFP16
	if prec == gpu.FP32 {
		eff = w.EffFP32
	}
	rate := units.FLOPSRate(float64(spec.Peak(prec)) * eff)
	fwdFLOPs := units.FLOPs(int64(w.Graph.FwdFLOPs()) * int64(batch))
	fwd = rate.ComputeTime(fwdFLOPs)
	bwd = 2 * fwd
	return fwd, bwd
}

// Memory accounting constants (bytes per parameter).
//
// Mixed precision (FP16): FP16 weights (2) + FP16 grads (2) + Adam m and v
// in FP32 (8) + FP32 master weights (4) = 16. Full FP32: weights (4) +
// grads (4) + Adam m, v (8) = 16. ZeRO-2 sharding divides gradient and
// optimizer state across the data-parallel group.
func staticBytesPerParam(prec gpu.Precision) (weights, grads, opt units.Bytes) {
	if prec == gpu.FP16 {
		return 2, 2, 12
	}
	return 4, 4, 8
}

// MemoryNeeded returns the device memory a rank needs to train with the
// given batch, precision and sharding degree (nShards=1 means no sharding).
func (w Workload) MemoryNeeded(prec gpu.Precision, batch, nShards int) units.Bytes {
	if nShards < 1 {
		nShards = 1
	}
	wB, gB, oB := staticBytesPerParam(prec)
	p := units.Bytes(w.Graph.Params())
	static := p * wB
	// ZeRO-2: gradients and optimizer state are sharded; weights are not.
	static += (p*gB + p*oB) / units.Bytes(nShards)
	act := w.ActPerSampleFP16
	if prec == gpu.FP32 {
		act *= 2
	}
	return static + act*units.Bytes(batch)
}

// MaxBatch returns the largest per-GPU batch that fits the device.
func (w Workload) MaxBatch(spec gpu.Spec, prec gpu.Precision, nShards int) int {
	usable := spec.Memory - spec.Reserved
	batch := 0
	for w.MemoryNeeded(prec, batch+1, nShards) <= usable {
		batch++
		if batch > 4096 {
			break
		}
	}
	return batch
}

// TableIIRow is one row of the paper's Table II.
type TableIIRow struct {
	Benchmark string
	Domain    string
	Dataset   string
	Params    int64
	Depth     int
}

// TableII derives the paper's Table II from the model graphs.
func TableII() []TableIIRow {
	rows := make([]TableIIRow, 0, 5)
	for _, w := range Benchmarks() {
		rows = append(rows, TableIIRow{
			Benchmark: w.Name, Domain: w.Domain, Dataset: w.Data.Name,
			Params: w.Graph.Params(), Depth: w.Graph.Depth(),
		})
	}
	return rows
}
