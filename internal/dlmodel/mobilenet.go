package dlmodel

import "fmt"

// MobileNetV2 builds the MobileNetV2 (width 1.0) graph for 224×224
// ImageNet inputs (Sandler et al. 2018). The 53-layer count is the
// standard convention: stem conv + 52 block/final convolutions + the
// classifier... precisely: 1 stem + 2 convs in the first (t=1) block +
// 3 convs in each of the 16 remaining inverted residuals + the 1×1 head
// conv + the classifier = 53 weighted layers.
func MobileNetV2() *Graph {
	g := &Graph{Name: "MobileNetV2"}
	b := &cnnBuilder{g: g, h: 224, w: 224, c: 3}

	b.conv("stem", 32, 3, 2, true, true, 1)

	// Inverted residual settings: expansion t, output channels c,
	// repeats n, first-block stride s (Table 2 of the MobileNetV2 paper).
	settings := []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	blockIdx := 0
	for _, st := range settings {
		for i := 0; i < st.n; i++ {
			stride := 1
			if i == 0 {
				stride = st.s
			}
			name := fmt.Sprintf("block%d", blockIdx)
			blockIdx++
			cin := b.c
			expanded := cin * st.t
			if st.t != 1 {
				b.conv(name+".expand", expanded, 1, 1, true, true, 1)
			}
			b.dwconv(name+".dw", 3, stride, 1)
			b.conv(name+".project", st.c, 1, 1, true, false, 1)
			if stride == 1 && cin == st.c {
				b.addResidual(name + ".add")
			}
		}
	}
	b.conv("head", 1280, 1, 1, true, true, 1)
	b.pool("avgpool", 0, 0, true)
	b.linear("classifier", 1000, 1)
	return g.finalize()
}
