package dlmodel

import (
	"fmt"

	"composable/internal/units"
)

// YOLOv5L builds YOLOv5-L (the 2021 Ultralytics release the paper used:
// Focus stem, CSP backbone with SPP, PANet head) for 640×640 COCO inputs.
//
// Depth convention: Table II reports 392 for YOLOv5-L, which counts the
// elementary torch modules of the Ultralytics implementation (every Conv2d,
// BatchNorm, activation, pool, concat, add, upsample and detect head).
// We count the same elementary module kinds; small differences against 392
// reflect minor version drift in the 2021 code base and are asserted to
// within 10% by the Table II test.
func YOLOv5L() *Graph {
	g := &Graph{Name: "YOLOv5-L"}
	y := &yoloBuilder{cnnBuilder{g: g, h: 640, w: 640, c: 3}}

	// Backbone (yolov5l.yaml, width/depth multiple 1.0).
	// Focus: space-to-depth (3→12 channels, 640→320) then Conv 64.
	y.h, y.w, y.c = 320, 320, 12
	g.add(Layer{Name: "focus.slice", Kind: "concat",
		ActBytes: units.Bytes(4 * 12 * 320 * 320), DepthUnits: 1})
	y.yconv("focus.conv", 64, 3, 1)

	y.yconv("down1", 128, 3, 2)
	p3snapshot := y.c3("c3_1", 128, 3, true)
	_ = p3snapshot
	y.yconv("down2", 256, 3, 2)
	p3 := y.c3("c3_2", 256, 9, true) // P3/8 feature
	y.yconv("down3", 512, 3, 2)
	p4 := y.c3("c3_3", 512, 9, true) // P4/16 feature
	y.yconv("down4", 1024, 3, 2)
	y.spp("spp", 1024)
	y.c3("c3_4", 1024, 3, false)

	// PANet head.
	y.yconv("head.conv1", 512, 1, 1)
	h1 := snap(y) // 20×20×512, reused by the late concat
	y.upsample("head.up1")
	y.concat("head.cat1", p4.c) // with P4
	y.c3("head.c3_1", 512, 3, false)
	y.yconv("head.conv2", 256, 1, 1)
	h2 := snap(y)
	y.upsample("head.up2")
	y.concat("head.cat2", p3.c)            // with P3
	d1 := y.c3("head.c3_2", 256, 3, false) // detect P3 input
	y.yconv("head.conv3", 256, 3, 2)
	y.concat("head.cat3", h2.c)
	d2 := y.c3("head.c3_3", 512, 3, false) // detect P4 input
	y.yconv("head.conv4", 512, 3, 2)
	y.concat("head.cat4", h1.c)
	d3 := y.c3("head.c3_4", 1024, 3, false) // detect P5 input

	// Detect: one 1×1 conv per scale to 3 anchors × (80 classes + 5).
	const detOut = 3 * 85
	for i, d := range []dims{d1, d2, d3} {
		det := &cnnBuilder{g: g, h: d.h, w: d.w, c: d.c}
		det.g = g
		detName := fmt.Sprintf("detect.m%d", i)
		det.conv(detName, detOut, 1, 1, false, false, 1)
	}
	g.add(Layer{Name: "detect", Kind: "detect", DepthUnits: 1})
	return g.finalize()
}

type dims struct{ h, w, c int }

func snap(y *yoloBuilder) dims { return dims{y.h, y.w, y.c} }

// yoloBuilder adds YOLO composite blocks on top of cnnBuilder. YOLO's depth
// convention counts every elementary module, so convs here carry 3 depth
// units (Conv2d + BN + SiLU).
type yoloBuilder struct{ cnnBuilder }

// yconv is the Ultralytics Conv block: Conv2d + BN + SiLU.
func (y *yoloBuilder) yconv(name string, cout, k, stride int) {
	y.conv(name, cout, k, stride, true, true, 1)
	// conv() assigns 1 depth unit to the conv; credit BN and SiLU too.
	y.g.Layers[len(y.g.Layers)-2].DepthUnits = 1 // bn
	y.g.Layers[len(y.g.Layers)-1].DepthUnits = 1 // act
}

// bottleneck is Conv1×1 → Conv3×3 with optional shortcut.
func (y *yoloBuilder) bottleneck(name string, c int, shortcut bool) {
	y.yconv(name+".cv1", c, 1, 1)
	y.yconv(name+".cv2", c, 3, 1)
	if shortcut {
		y.addResidual(name + ".add")
		y.g.Layers[len(y.g.Layers)-1].DepthUnits = 1
	}
}

// c3 is the CSP block: two parallel 1×1 reductions, n bottlenecks on one
// branch, concat, and a 1×1 fusion conv. Returns the output dimensions.
func (y *yoloBuilder) c3(name string, cout, n int, shortcut bool) dims {
	cin := y.c
	mid := cout / 2
	// Branch 2 (plain reduction) accounted from the same input.
	branch := &yoloBuilder{cnnBuilder{g: y.g, h: y.h, w: y.w, c: cin}}
	branch.yconv(name+".cv2", mid, 1, 1)
	// Branch 1: reduction + bottleneck stack.
	y.yconv(name+".cv1", mid, 1, 1)
	for i := 0; i < n; i++ {
		y.bottleneck(fmt.Sprintf("%s.m%d", name, i), mid, shortcut)
	}
	// Concat the two mid-channel branches, then fuse.
	y.c = 2 * mid
	y.g.add(Layer{Name: name + ".cat", Kind: "concat",
		ActBytes: units.Bytes(4 * y.c * y.h * y.w), DepthUnits: 1})
	y.yconv(name+".cv3", cout, 1, 1)
	return dims{y.h, y.w, y.c}
}

// spp is the spatial pyramid pooling block: 1×1 reduce, three max-pools,
// concat, 1×1 expand.
func (y *yoloBuilder) spp(name string, cout int) {
	mid := cout / 2
	y.yconv(name+".cv1", mid, 1, 1)
	for i, k := range []int{5, 9, 13} {
		// Pools are same-size (stride 1, padded); record cost only.
		y.g.add(Layer{Name: fmt.Sprintf("%s.pool%d", name, i), Kind: "pool",
			FwdFLOPs:   units.FLOPs(k * k * mid * y.h * y.w),
			ActBytes:   units.Bytes(4 * mid * y.h * y.w),
			DepthUnits: 1})
	}
	y.c = mid * 4
	y.g.add(Layer{Name: name + ".cat", Kind: "concat",
		ActBytes: units.Bytes(4 * y.c * y.h * y.w), DepthUnits: 1})
	y.yconv(name+".cv2", cout, 1, 1)
}

// upsample doubles spatial resolution (nearest neighbor).
func (y *yoloBuilder) upsample(name string) {
	y.h *= 2
	y.w *= 2
	y.g.add(Layer{Name: name, Kind: "upsample",
		FwdFLOPs:   units.FLOPs(y.c * y.h * y.w),
		ActBytes:   units.Bytes(4 * y.c * y.h * y.w),
		DepthUnits: 1})
}

// concat merges the current tensor with a skip connection of extraC
// channels at the same resolution.
func (y *yoloBuilder) concat(name string, extraC int) {
	y.c += extraC
	y.g.add(Layer{Name: name, Kind: "concat",
		ActBytes: units.Bytes(4 * y.c * y.h * y.w), DepthUnits: 1})
}
