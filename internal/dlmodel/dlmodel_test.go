package dlmodel

import (
	"math"
	"strings"
	"testing"

	"composable/internal/gpu"
	"composable/internal/units"
)

// TestTableIIParameters pins the derived parameter counts to the paper's
// Table II: 3.4M / 25.6M / 47M / 110M / 340M. The graphs are built from the
// published architectures, so tolerance covers rounding in the paper's
// reporting (e.g. BERT-large is 335M counted, "340M" reported).
func TestTableIIParameters(t *testing.T) {
	want := map[string]struct {
		params float64 // millions, as the paper reports
		tol    float64 // relative tolerance
		depth  int
	}{
		"MobileNetV2": {3.4, 0.05, 53},
		"ResNet-50":   {25.6, 0.01, 50},
		"YOLOv5-L":    {47, 0.02, 392},
		"BERT":        {110, 0.01, 12},
		"BERT-L":      {340, 0.02, 24},
	}
	for _, row := range TableII() {
		w, ok := want[row.Benchmark]
		if !ok {
			t.Fatalf("unexpected benchmark %q", row.Benchmark)
		}
		gotM := float64(row.Params) / 1e6
		if math.Abs(gotM-w.params)/w.params > w.tol {
			t.Errorf("%s params = %.2fM, want %.1fM ±%.0f%%", row.Benchmark, gotM, w.params, w.tol*100)
		}
		// Depth: exact for the classifier and BERT conventions; YOLOv5's
		// module count depends on code-base version, assert within 10%.
		if row.Benchmark == "YOLOv5-L" {
			if math.Abs(float64(row.Depth-w.depth))/float64(w.depth) > 0.10 {
				t.Errorf("%s depth = %d, want %d ±10%%", row.Benchmark, row.Depth, w.depth)
			}
		} else if row.Depth != w.depth {
			t.Errorf("%s depth = %d, want %d", row.Benchmark, row.Depth, w.depth)
		}
	}
}

func TestKnownExactParameterCounts(t *testing.T) {
	// Cross-check two architectures whose exact counts are public.
	if got := ResNet50().Params(); got != 25557032 {
		t.Errorf("ResNet-50 params = %d, want 25557032 (torchvision)", got)
	}
	if got := MobileNetV2().Params(); got != 3504872 {
		t.Errorf("MobileNetV2 params = %d, want 3504872 (torchvision)", got)
	}
}

func TestFLOPsScaleWithSeqLen(t *testing.T) {
	short := BERTBase(128).FwdFLOPs()
	long := BERTBase(384).FwdFLOPs()
	if long <= short {
		t.Fatalf("FLOPs did not grow with sequence length: %v vs %v", short, long)
	}
	// Attention has an S² term, so tripling S more than triples FLOPs.
	if float64(long) < 3*float64(short) {
		t.Fatalf("BERT FLOPs sublinear in seq len: %v vs %v", long, short)
	}
}

// TestBERTLargeBatchCeilings reproduces the paper's §V-C-4 result exactly:
// on a 16 GB V100, BERT-large fine-tuning fits batch 6 with plain
// mixed-precision DDP and batch 10 once gradients/optimizer state are
// sharded across the 8 GPUs ("we were able to increase the batch size from
// 6 to 10").
func TestBERTLargeBatchCeilings(t *testing.T) {
	w := BERTLargeWorkload()
	if got := w.MaxBatch(gpu.TeslaV100SXM2, gpu.FP16, 1); got != 6 {
		t.Errorf("unsharded FP16 max batch = %d, want 6", got)
	}
	if got := w.MaxBatch(gpu.TeslaV100SXM2, gpu.FP16, 8); got != 10 {
		t.Errorf("ZeRO-2 sharded (8-way) FP16 max batch = %d, want 10", got)
	}
	// FP32 must fit strictly fewer samples than FP16.
	fp32 := w.MaxBatch(gpu.TeslaV100SXM2, gpu.FP32, 1)
	if fp32 >= 6 || fp32 < 1 {
		t.Errorf("FP32 max batch = %d, want in [1,5]", fp32)
	}
}

func TestMemoryNeededMonotonic(t *testing.T) {
	w := BERTLargeWorkload()
	if w.MemoryNeeded(gpu.FP16, 4, 1) >= w.MemoryNeeded(gpu.FP16, 5, 1) {
		t.Error("memory not increasing in batch")
	}
	if w.MemoryNeeded(gpu.FP16, 4, 8) >= w.MemoryNeeded(gpu.FP16, 4, 1) {
		t.Error("sharding did not reduce memory")
	}
	if w.MemoryNeeded(gpu.FP32, 4, 1) <= w.MemoryNeeded(gpu.FP16, 4, 1) {
		t.Error("FP32 should need more memory than FP16 at same batch")
	}
}

func TestComputeTimeCalibration(t *testing.T) {
	// Iteration compute (fwd+bwd+launch) at the paper's batch sizes
	// should land in the right V100 regime: MobileNetV2 is launch-bound
	// and fast, BERT-large is heavy.
	for _, tc := range []struct {
		w        Workload
		min, max float64 // milliseconds for fwd+bwd+launch
	}{
		{MobileNetV2Workload(), 40, 80},
		{ResNet50Workload(), 90, 170},
		{YOLOv5LWorkload(), 130, 230},
		{BERTBaseWorkload(), 55, 110},
		{BERTLargeWorkload(), 100, 170},
	} {
		fwd, bwd := tc.w.ComputeTime(gpu.TeslaV100SXM2, gpu.FP16, tc.w.BatchPerGPU)
		total := (fwd + bwd + tc.w.LaunchOverhead).Seconds() * 1e3
		if total < tc.min || total > tc.max {
			t.Errorf("%s iter compute = %.1fms, want [%v, %v]", tc.w.Name, total, tc.min, tc.max)
		}
		// FP32 must be substantially slower (tensor-core advantage).
		fwd32, bwd32 := tc.w.ComputeTime(gpu.TeslaV100SXM2, gpu.FP32, tc.w.BatchPerGPU)
		if fwd32+bwd32 < 2*(fwd+bwd) {
			t.Errorf("%s FP32 compute %.1fms not ≥2x FP16 %.1fms",
				tc.w.Name, (fwd32+bwd32).Seconds()*1e3, (fwd+bwd).Seconds()*1e3)
		}
	}
}

func TestGradAndCheckpointBytes(t *testing.T) {
	w := ResNet50Workload()
	if got := w.GradBytes(gpu.FP16); got != units.Bytes(w.Graph.Params())*2 {
		t.Errorf("FP16 grads = %v", got)
	}
	if got := w.CheckpointBytes(); got != units.Bytes(w.Graph.Params())*4 {
		t.Errorf("checkpoint = %v", got)
	}
}

func TestBenchmarkByName(t *testing.T) {
	if _, err := BenchmarkByName("ResNet-50"); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("AlexNet"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestActivationBytesOrdering(t *testing.T) {
	// Per-sample graph activations: transformers at seq 384 dwarf the
	// CNN classifiers, matching the paper's observation that NLP models
	// stress GPU memory.
	mob := MobileNetV2().ActBytesFP32()
	bert := BERTLarge(384).ActBytesFP32()
	if bert <= mob {
		t.Fatalf("BERT-large act (%v) should exceed MobileNetV2 (%v)", bert, mob)
	}
}

func TestSummaryRendering(t *testing.T) {
	out := ResNet50().Summary(3)
	for _, want := range []string{"ResNet-50", "conv", "heaviest 3 layers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestParamsByKindDistribution(t *testing.T) {
	// BERT's parameters live overwhelmingly in linear layers and the
	// embedding tables.
	kinds := BERTBase(384).ParamsByKind()
	total := BERTBase(384).Params()
	if frac := float64(kinds["linear"]+kinds["embed"]) / float64(total); frac < 0.98 {
		t.Fatalf("linear+embed fraction = %.3f, want ≈1", frac)
	}
	// ResNet: convs dominate, BN is a small tax.
	rk := ResNet50().ParamsByKind()
	if rk["conv"] < 20*rk["bn"] {
		t.Fatalf("conv/bn param ratio too low: conv=%d bn=%d", rk["conv"], rk["bn"])
	}
}
