// Package dlmodel builds layer-level cost graphs of the paper's five deep
// learning benchmarks (Table II): MobileNetV2, ResNet-50, YOLOv5-L,
// BERT-base and BERT-large. Each graph carries per-layer parameter counts,
// forward FLOPs and activation sizes computed from the real architectures,
// so Table II's parameter/depth columns are *derived*, not transcribed.
package dlmodel

import (
	"fmt"

	"composable/internal/units"
)

// Layer is one node of a model's cost graph.
type Layer struct {
	Name string
	Kind string // "conv", "dwconv", "linear", "bn", "ln", "act", "pool", "attn", "embed", "add", "concat", "upsample", "detect"
	// Params is the learnable parameter count.
	Params int64
	// FwdFLOPs is the forward multiply-accumulate cost for one sample
	// (counted as 2 FLOPs per MAC).
	FwdFLOPs units.FLOPs
	// ActBytes is the FP32 output activation size for one sample.
	ActBytes units.Bytes
	// DepthUnits is the layer's contribution to the model's reported
	// depth. Conventions differ per family (see Graph.Depth).
	DepthUnits int
}

// Graph is an ordered layer list with aggregate queries.
type Graph struct {
	Name   string
	Layers []Layer

	// Aggregates, computed once by finalize when a builder finishes. The
	// benchmark graphs are immutable after construction and shared across
	// the whole process (Benchmarks caches them), so the hot paths that
	// query Params/FwdFLOPs per training iteration must not re-walk the
	// layer list — MemoryNeeded alone walks it hundreds of times during
	// batch admission.
	finalized bool
	params    int64
	fwdFLOPs  units.FLOPs
	actBytes  units.Bytes
	depth     int
}

func (g *Graph) add(l Layer) { g.Layers = append(g.Layers, l) }

// finalize freezes the graph's aggregates. Builders call it exactly once,
// after the last add; graphs assembled by hand (tests) that skip it fall
// back to the walking implementations.
func (g *Graph) finalize() *Graph {
	g.params, g.fwdFLOPs, g.actBytes, g.depth = 0, 0, 0, 0
	for _, l := range g.Layers {
		g.params += l.Params
		g.fwdFLOPs += l.FwdFLOPs
		g.actBytes += l.ActBytes
		g.depth += l.DepthUnits
	}
	g.finalized = true
	return g
}

// Params returns the total learnable parameter count.
//
//perf:hot
func (g *Graph) Params() int64 {
	if g.finalized {
		return g.params
	}
	var total int64
	for _, l := range g.Layers {
		total += l.Params
	}
	return total
}

// FwdFLOPs returns the forward cost of one sample.
//
//perf:hot
func (g *Graph) FwdFLOPs() units.FLOPs {
	if g.finalized {
		return g.fwdFLOPs
	}
	var total units.FLOPs
	for _, l := range g.Layers {
		total += l.FwdFLOPs
	}
	return total
}

// ActBytesFP32 returns the summed FP32 activation output of one sample —
// a proxy for training-time activation memory before framework overheads.
//
//perf:hot
func (g *Graph) ActBytesFP32() units.Bytes {
	if g.finalized {
		return g.actBytes
	}
	var total units.Bytes
	for _, l := range g.Layers {
		total += l.ActBytes
	}
	return total
}

// Depth returns the model depth under its family's counting convention
// (the one Table II uses): weighted layers for the CNN classifiers,
// encoder blocks for BERT, elementary modules for YOLOv5.
//
//perf:hot
func (g *Graph) Depth() int {
	if g.finalized {
		return g.depth
	}
	total := 0
	for _, l := range g.Layers {
		total += l.DepthUnits
	}
	return total
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d layers, %.1fM params, %v fwd/sample, depth %d",
		g.Name, len(g.Layers), float64(g.Params())/1e6, g.FwdFLOPs(), g.Depth())
}

// cnnBuilder tracks spatial dimensions while stacking 2-D layers.
type cnnBuilder struct {
	g    *Graph
	h, w int
	c    int
}

func outDim(in, k, stride, pad int) int { return (in+2*pad-k)/stride + 1 }

// conv adds conv(+BN)(+act). Padding is "same" style (k/2). depthUnits
// applies to the conv itself; BN and activation carry zero depth for the
// classifier convention.
func (b *cnnBuilder) conv(name string, cout, k, stride int, bn, act bool, depthUnits int) {
	pad := k / 2
	ho := outDim(b.h, k, stride, pad)
	wo := outDim(b.w, k, stride, pad)
	params := int64(k*k*b.c) * int64(cout)
	flops := units.FLOPs(2 * int64(k*k*b.c) * int64(cout) * int64(ho*wo))
	actBytes := units.Bytes(4 * cout * ho * wo)
	b.g.add(Layer{Name: name, Kind: "conv", Params: params, FwdFLOPs: flops, ActBytes: actBytes, DepthUnits: depthUnits})
	if bn {
		b.g.add(Layer{Name: name + ".bn", Kind: "bn", Params: int64(2 * cout),
			FwdFLOPs: units.FLOPs(4 * cout * ho * wo), ActBytes: actBytes})
	}
	if act {
		b.g.add(Layer{Name: name + ".act", Kind: "act",
			FwdFLOPs: units.FLOPs(cout * ho * wo), ActBytes: actBytes})
	}
	b.h, b.w, b.c = ho, wo, cout
}

// dwconv adds a depthwise conv(+BN)(+act).
func (b *cnnBuilder) dwconv(name string, k, stride int, depthUnits int) {
	pad := k / 2
	ho := outDim(b.h, k, stride, pad)
	wo := outDim(b.w, k, stride, pad)
	params := int64(k*k) * int64(b.c)
	flops := units.FLOPs(2 * int64(k*k) * int64(b.c) * int64(ho*wo))
	actBytes := units.Bytes(4 * b.c * ho * wo)
	b.g.add(Layer{Name: name, Kind: "dwconv", Params: params, FwdFLOPs: flops, ActBytes: actBytes, DepthUnits: depthUnits})
	b.g.add(Layer{Name: name + ".bn", Kind: "bn", Params: int64(2 * b.c),
		FwdFLOPs: units.FLOPs(4 * b.c * ho * wo), ActBytes: actBytes})
	b.g.add(Layer{Name: name + ".act", Kind: "act",
		FwdFLOPs: units.FLOPs(b.c * ho * wo), ActBytes: actBytes})
	b.h, b.w = ho, wo
}

// pool adds a pooling layer.
func (b *cnnBuilder) pool(name string, k, stride int, global bool) {
	if global {
		b.g.add(Layer{Name: name, Kind: "pool",
			FwdFLOPs: units.FLOPs(b.c * b.h * b.w), ActBytes: units.Bytes(4 * b.c)})
		b.h, b.w = 1, 1
		return
	}
	pad := 0
	ho := outDim(b.h, k, stride, pad)
	wo := outDim(b.w, k, stride, pad)
	b.g.add(Layer{Name: name, Kind: "pool",
		FwdFLOPs: units.FLOPs(k * k * b.c * ho * wo), ActBytes: units.Bytes(4 * b.c * ho * wo)})
	b.h, b.w = ho, wo
}

// linear adds a fully connected layer with bias.
func (b *cnnBuilder) linear(name string, out int, depthUnits int) {
	in := b.c * b.h * b.w
	params := int64(in)*int64(out) + int64(out)
	b.g.add(Layer{Name: name, Kind: "linear", Params: params,
		FwdFLOPs: units.FLOPs(2 * int64(in) * int64(out)), ActBytes: units.Bytes(4 * out), DepthUnits: depthUnits})
	b.c, b.h, b.w = out, 1, 1
}

// addResidual records an elementwise residual addition.
func (b *cnnBuilder) addResidual(name string) {
	b.g.add(Layer{Name: name, Kind: "add",
		FwdFLOPs: units.FLOPs(b.c * b.h * b.w), ActBytes: units.Bytes(4 * b.c * b.h * b.w)})
}
