package dlmodel

import (
	"fmt"
	"sort"
	"strings"

	"composable/internal/units"
)

// Summary renders a torchsummary-style report of the graph: per-kind
// aggregates plus the heaviest layers, for inspecting what the cost model
// is charging.
func (g *Graph) Summary(topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g)

	type agg struct {
		kind   string
		count  int
		params int64
		flops  units.FLOPs
	}
	byKind := map[string]*agg{}
	for _, l := range g.Layers {
		a := byKind[l.Kind]
		if a == nil {
			a = &agg{kind: l.Kind}
			byKind[l.Kind] = a
		}
		a.count++
		a.params += l.Params
		a.flops += l.FwdFLOPs
	}
	kinds := make([]*agg, 0, len(byKind))
	for _, a := range byKind {
		kinds = append(kinds, a)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].flops > kinds[j].flops })
	fmt.Fprintf(&b, "%-10s %7s %14s %16s\n", "kind", "layers", "params", "fwd FLOPs")
	for _, a := range kinds {
		fmt.Fprintf(&b, "%-10s %7d %13.2fM %16v\n",
			a.kind, a.count, float64(a.params)/1e6, a.flops)
	}

	if topN > 0 {
		heavy := append([]Layer(nil), g.Layers...)
		sort.SliceStable(heavy, func(i, j int) bool { return heavy[i].FwdFLOPs > heavy[j].FwdFLOPs })
		if topN > len(heavy) {
			topN = len(heavy)
		}
		fmt.Fprintf(&b, "heaviest %d layers:\n", topN)
		for _, l := range heavy[:topN] {
			fmt.Fprintf(&b, "  %-28s %-8s %12v %12v\n", l.Name, l.Kind, l.FwdFLOPs, l.ActBytes)
		}
	}
	return b.String()
}

// ParamsByKind returns the parameter count aggregated per layer kind.
func (g *Graph) ParamsByKind() map[string]int64 {
	out := map[string]int64{}
	for _, l := range g.Layers {
		out[l.Kind] += l.Params
	}
	return out
}
