package falcon

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func v100(i int) DeviceInfo {
	return DeviceInfo{ID: fmt.Sprintf("gpu-%d", i), Type: DeviceGPU, Model: "Tesla V100-PCIE", VendorID: "10de", LinkGen: 4, Lanes: 16}
}

func chassisWithHosts(t *testing.T) *Chassis {
	t.Helper()
	c := New("falcon-a")
	for i, h := range []string{"host1", "host2", "host3", "host4"} {
		if err := c.CableHost(fmt.Sprintf("H%d", i+1), h); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestInstallAttachDetachLifecycle(t *testing.T) {
	c := chassisWithHosts(t)
	ref := SlotRef{Drawer: 0, Slot: 0}
	if err := c.Install(ref, v100(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(ref, v100(1)); err == nil {
		t.Fatal("double install allowed")
	}
	if err := c.Attach(ref, "H1"); err != nil {
		t.Fatal(err)
	}
	if got := c.Owner(ref); got != "H1" {
		t.Fatalf("owner = %q", got)
	}
	if err := c.Attach(ref, "H2"); err == nil {
		t.Fatal("double attach allowed")
	}
	if err := c.Remove(ref); err == nil {
		t.Fatal("removed attached device")
	}
	if err := c.Detach(ref); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove(ref); err != nil {
		t.Fatal(err)
	}
	if c.Device(ref) != nil {
		t.Fatal("device still present after remove")
	}
}

func TestStandardOneHostRejectsSecondHost(t *testing.T) {
	c := chassisWithHosts(t)
	for s := 0; s < 8; s++ {
		if err := c.Install(SlotRef{0, s}, v100(s)); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 8; s++ {
		if err := c.Attach(SlotRef{0, s}, "H1"); err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
	}
	// All 8 to one host is the mode's maximum; a second host must fail.
	if err := c.Detach(SlotRef{0, 7}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{0, 7}, "H2"); err == nil {
		t.Fatal("standard-1host accepted a second host")
	}
}

func TestStandardTwoHostHalfSplit(t *testing.T) {
	c := chassisWithHosts(t)
	if err := c.SetMode(0, ModeStandardTwoHost); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if err := c.Install(SlotRef{0, s}, v100(s)); err != nil {
			t.Fatal(err)
		}
	}
	// host1 gets the lower half, host2 the upper half.
	for s := 0; s < 4; s++ {
		if err := c.Attach(SlotRef{0, s}, "H1"); err != nil {
			t.Fatal(err)
		}
	}
	for s := 4; s < 8; s++ {
		if err := c.Attach(SlotRef{0, s}, "H2"); err != nil {
			t.Fatal(err)
		}
	}
	// Crossing the half boundary must fail.
	if err := c.Detach(SlotRef{0, 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{0, 3}, "H2"); err == nil {
		t.Fatal("two-host mode allowed a port to cross the drawer half")
	}
}

func TestAdvancedModeThreeHostsAndReassign(t *testing.T) {
	c := chassisWithHosts(t)
	if err := c.SetMode(0, ModeAdvanced); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if err := c.Install(SlotRef{0, s}, v100(s)); err != nil {
			t.Fatal(err)
		}
	}
	// Arbitrary distribution over three hosts.
	ports := []string{"H1", "H1", "H1", "H2", "H2", "H3", "H3", "H3"}
	for s, p := range ports {
		if err := c.Attach(SlotRef{0, s}, p); err != nil {
			t.Fatalf("slot %d -> %s: %v", s, p, err)
		}
	}
	// A fourth host must be rejected.
	if err := c.Detach(SlotRef{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{0, 0}, "H4"); err == nil {
		t.Fatal("advanced mode accepted a fourth host")
	}
	if err := c.Attach(SlotRef{0, 0}, "H1"); err != nil {
		t.Fatal(err)
	}
	// Dynamic re-allocation works in advanced mode...
	if err := c.Reassign(SlotRef{0, 0}, "H2"); err != nil {
		t.Fatal(err)
	}
	if got := c.Owner(SlotRef{0, 0}); got != "H2" {
		t.Fatalf("owner after reassign = %q", got)
	}
	// ...but not in standard mode.
	if err := c.SetMode(1, ModeStandardOneHost); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(SlotRef{1, 0}, v100(10)); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{1, 0}, "H3"); err != nil {
		t.Fatal(err)
	}
	if err := c.Reassign(SlotRef{1, 0}, "H4"); err == nil {
		t.Fatal("reassign allowed outside advanced mode")
	}
}

func TestModeChangeRequiresDetachedDrawer(t *testing.T) {
	c := chassisWithHosts(t)
	if err := c.Install(SlotRef{0, 0}, v100(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{0, 0}, "H1"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMode(0, ModeAdvanced); err == nil {
		t.Fatal("mode change allowed with attached devices")
	}
	if err := c.Detach(SlotRef{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetMode(0, ModeAdvanced); err != nil {
		t.Fatal(err)
	}
}

func TestAttachRequiresCabledPort(t *testing.T) {
	c := New("bare")
	if err := c.Install(SlotRef{0, 0}, v100(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{0, 0}, "H1"); err == nil {
		t.Fatal("attach to uncabled port allowed")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	c := chassisWithHosts(t)
	if err := c.SetMode(1, ModeAdvanced); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if err := c.Install(SlotRef{0, s}, v100(s)); err != nil {
			t.Fatal(err)
		}
		if err := c.Attach(SlotRef{0, s}, "H1"); err != nil {
			t.Fatal(err)
		}
	}
	nvme := DeviceInfo{ID: "nvme-0", Type: DeviceNVMe, Model: "Intel 4TB", LinkGen: 3, Lanes: 4}
	if err := c.Install(SlotRef{1, 7}, nvme); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{1, 7}, "H3"); err != nil {
		t.Fatal(err)
	}

	data, err := c.ExportConfig()
	if err != nil {
		t.Fatal(err)
	}
	c2 := New("falcon-b")
	if err := c2.ImportConfig(data); err != nil {
		t.Fatal(err)
	}
	if got := c2.Owner(SlotRef{1, 7}); got != "H3" {
		t.Fatalf("imported owner = %q, want H3", got)
	}
	if c2.DrawerMode(1) != ModeAdvanced {
		t.Fatalf("imported mode = %v", c2.DrawerMode(1))
	}
	if got, want := len(c2.Attached("H1")), 4; got != want {
		t.Fatalf("H1 devices = %d, want %d", got, want)
	}
	d := c2.Device(SlotRef{1, 7})
	if d == nil || d.Type != DeviceNVMe {
		t.Fatalf("imported device = %+v", d)
	}
}

func TestSummaryAndTopologyView(t *testing.T) {
	c := chassisWithHosts(t)
	for s := 0; s < 3; s++ {
		if err := c.Install(SlotRef{0, s}, v100(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Install(SlotRef{1, 0}, DeviceInfo{ID: "nvme-0", Type: DeviceNVMe, Model: "Intel 4TB"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{0, 0}, "H1"); err != nil {
		t.Fatal(err)
	}
	sum := c.Summary()
	if sum.GPUs != 3 || sum.NVMes != 1 || sum.Attached != 1 || sum.Free != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.HostLinks != 4 {
		t.Fatalf("host links = %d", sum.HostLinks)
	}
	top := c.Topology()
	for _, want := range []string{"drawer 0", "drawer 1", "H1", "host1", "Tesla V100-PCIE"} {
		if !strings.Contains(top, want) {
			t.Fatalf("topology view missing %q:\n%s", want, top)
		}
	}
}

func TestSensorsScaleWithLoadAndThermalAlert(t *testing.T) {
	c := chassisWithHosts(t)
	idle := c.Sensors()
	for s := 0; s < 8; s++ {
		if err := c.Install(SlotRef{0, s}, v100(s)); err != nil {
			t.Fatal(err)
		}
		if err := c.Attach(SlotRef{0, s}, "H1"); err != nil {
			t.Fatal(err)
		}
	}
	busy := c.Sensors()
	if busy.DrawerTempC[0] <= idle.DrawerTempC[0] {
		t.Fatal("drawer temperature did not rise with load")
	}
	if busy.FanDutyPct <= idle.FanDutyPct {
		t.Fatal("fan duty did not rise with load")
	}
	// 8 attached devices: 23+10+28 = 61C < 65C threshold -> no alert.
	if got := c.CheckThermals(); got != 0 {
		t.Fatalf("unexpected thermal alerts: %d", got)
	}
}

func TestPortHealthView(t *testing.T) {
	c := chassisWithHosts(t)
	hs := c.PortHealth()
	if len(hs) != NumHostPorts {
		t.Fatalf("ports = %d", len(hs))
	}
	for _, h := range hs {
		if !h.LinkUp {
			t.Fatalf("port %s down after cabling", h.Port)
		}
	}
}

// TestAttachInvariantsProperty drives random valid/invalid operations and
// checks the core safety invariants: a device is owned by at most one port,
// ownership implies presence, and per-mode host limits hold.
func TestAttachInvariantsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("prop")
		hosts := []string{"h1", "h2", "h3", "h4"}
		for i, h := range hosts {
			if err := c.CableHost(fmt.Sprintf("H%d", i+1), h); err != nil {
				return false
			}
		}
		modes := []Mode{ModeStandardOneHost, ModeStandardTwoHost, ModeAdvanced}
		_ = c.SetMode(0, modes[rng.Intn(3)])
		_ = c.SetMode(1, modes[rng.Intn(3)])
		for op := 0; op < 200; op++ {
			ref := SlotRef{Drawer: rng.Intn(NumDrawers), Slot: rng.Intn(SlotsPerDrawer)}
			port := fmt.Sprintf("H%d", 1+rng.Intn(4))
			switch rng.Intn(5) {
			case 0:
				_ = c.Install(ref, v100(op))
			case 1:
				_ = c.Remove(ref)
			case 2:
				_ = c.Attach(ref, port)
			case 3:
				_ = c.Detach(ref)
			case 4:
				_ = c.Reassign(ref, port)
			}
			// Invariants after every operation.
			for d := 0; d < NumDrawers; d++ {
				hostsInDrawer := map[string]bool{}
				for s := 0; s < SlotsPerDrawer; s++ {
					r := SlotRef{Drawer: d, Slot: s}
					owner := c.Owner(r)
					if owner != "" && c.Device(r) == nil {
						t.Logf("seed %d: slot %v owned but empty", seed, r)
						return false
					}
					if owner != "" {
						p, err := c.Port(owner)
						if err != nil || p.Host == "" {
							t.Logf("seed %d: slot %v owned by bad port %q", seed, r, owner)
							return false
						}
						hostsInDrawer[p.Host] = true
					}
				}
				limit := map[Mode]int{
					ModeStandardOneHost: 1,
					ModeStandardTwoHost: 2,
					ModeAdvanced:        MaxHostsAdvanced,
				}[c.DrawerMode(d)]
				if len(hostsInDrawer) > limit {
					t.Logf("seed %d: drawer %d has %d hosts in mode %s", seed, d, len(hostsInDrawer), c.DrawerMode(d))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEventLogRecordsLifecycle(t *testing.T) {
	c := chassisWithHosts(t)
	if err := c.Install(SlotRef{0, 0}, v100(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{0, 0}, "H1"); err != nil {
		t.Fatal(err)
	}
	// A mode-constraint rejection is logged as a warning.
	if err := c.Install(SlotRef{0, 1}, v100(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{0, 1}, "H2"); err == nil {
		t.Fatal("second host accepted in standard-1host mode")
	}
	evs := c.Events()
	var attaches, warnings int
	for _, e := range evs {
		if strings.Contains(e.Message, "attached to H1") {
			attaches++
		}
		if e.Severity == SevWarning {
			warnings++
		}
	}
	if attaches != 1 || warnings != 1 {
		t.Fatalf("attaches=%d warnings=%d, events: %+v", attaches, warnings, evs)
	}
}

func TestOneHostTwoConnections(t *testing.T) {
	// §III-B-1: "One host can have two connections to the same drawer.
	// Each connection gives access to four devices."
	c := New("dual")
	if err := c.CableHost("H1", "host1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CableHost("H2", "host1"); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if err := c.Install(SlotRef{0, s}, v100(s)); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 4; s++ {
		if err := c.Attach(SlotRef{0, s}, "H1"); err != nil {
			t.Fatalf("lower half via H1: %v", err)
		}
	}
	for s := 4; s < 8; s++ {
		if err := c.Attach(SlotRef{0, s}, "H2"); err != nil {
			t.Fatalf("upper half via H2: %v", err)
		}
	}
	// The same host may not cross connection halves in standard mode.
	if err := c.Detach(SlotRef{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Attach(SlotRef{0, 0}, "H2"); err == nil {
		t.Fatal("connection crossed the drawer half")
	}
}
