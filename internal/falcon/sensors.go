package falcon

import "fmt"

// Sensor readings mirror the OpenBMC/management-GUI monitoring surface
// (§II-B): temperatures per drawer and chassis, fan duty, and PCIe link
// health counters. Values are synthesized from chassis state — enough to
// exercise alerting logic and the management API.

// SensorReadings is a snapshot of the BMC's environmental monitoring.
type SensorReadings struct {
	ChassisTempC float64
	DrawerTempC  [NumDrawers]float64
	FanDutyPct   float64
}

// Thermal model constants: an idle drawer sits at ambient+10; each attached
// device adds heat; fans ramp with the hottest drawer.
const (
	ambientC       = 23.0
	idleDrawerRise = 10.0
	perDeviceRise  = 3.5
	fanBaseDuty    = 30.0
)

// Sensors synthesizes current readings from occupancy.
func (c *Chassis) Sensors() SensorReadings {
	var r SensorReadings
	hottest := 0.0
	for d := 0; d < NumDrawers; d++ {
		active := 0
		for s := 0; s < SlotsPerDrawer; s++ {
			if c.drawers[d].slots[s].port != "" {
				active++
			}
		}
		t := ambientC + idleDrawerRise + perDeviceRise*float64(active)
		r.DrawerTempC[d] = t
		if t > hottest {
			hottest = t
		}
	}
	r.ChassisTempC = ambientC + (hottest-ambientC)*0.6
	r.FanDutyPct = fanBaseDuty + (hottest-ambientC)*1.8
	if r.FanDutyPct > 100 {
		r.FanDutyPct = 100
	}
	return r
}

// tempAlertC is the threshold above which the BMC raises a warning
// (§II-B: "alert administrators to any parameters which fall outside of
// specifications").
const tempAlertC = 65.0

// CheckThermals appends event-log warnings for out-of-spec temperatures
// and returns the number of alerts raised.
func (c *Chassis) CheckThermals() int {
	r := c.Sensors()
	alerts := 0
	for d, t := range r.DrawerTempC {
		if t > tempAlertC {
			c.logf(SevWarning, "drawer %d temperature %.1fC exceeds %.0fC threshold", d, t, tempAlertC)
			alerts++
		}
	}
	return alerts
}

// LinkHealth is the per-port PCIe health view (§II-B: "PCI-e Link Health,
// including accumulated error count").
type LinkHealth struct {
	Port        string
	LinkUp      bool
	Gen         int
	Lanes       int
	ErrorCount  int
	Description string
}

// PortHealth reports link health for all host ports. Error counts are
// synthetic but deterministic (a function of attach churn) so the
// management surface has realistic data.
func (c *Chassis) PortHealth() []LinkHealth {
	attachEvents := 0
	for _, e := range c.log {
		if e.Severity == SevInfo {
			attachEvents++
		}
	}
	var out []LinkHealth
	for _, p := range c.Ports() {
		h := LinkHealth{
			Port:   p.ID,
			LinkUp: p.Host != "",
			Gen:    4,
			Lanes:  p.Lanes,
			// Correctable error counters tick slowly with traffic and
			// retraining; model as a function of management activity.
			ErrorCount: attachEvents / 7,
		}
		if h.LinkUp {
			h.Description = fmt.Sprintf("x%d Gen%d to %s", h.Lanes, h.Gen, p.Host)
		} else {
			h.Description = "link down"
		}
		out = append(out, h)
	}
	return out
}
