// Package falcon models the Falcon 4016 composable chassis: a 4U PCIe
// Gen4 enclosure with two drawers of eight device slots each, four CDFP
// host ports, and a management plane (paper §II–§III).
//
// The package is the chassis *control plane*: which devices sit in which
// slots, which hosts own them, mode constraints, the event log and sensor
// readings. The *data plane* — links, bandwidth, contention — is built from
// this state by package cluster, which wires an equivalent fabric graph.
package falcon

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"composable/internal/units"
)

// Chassis geometry.
const (
	NumDrawers     = 2
	SlotsPerDrawer = 8
	NumHostPorts   = 4
	// MaxHostsAdvanced is the sharing limit in advanced mode (§II-C).
	MaxHostsAdvanced = 3
)

// DeviceType classifies a slot device.
type DeviceType string

// Device types the chassis accepts (§II-A).
const (
	DeviceGPU    DeviceType = "GPU"
	DeviceNVMe   DeviceType = "NVMe"
	DeviceNIC    DeviceType = "NIC"
	DeviceCustom DeviceType = "Custom" // custom PCIe 4.0 hardware
)

// DeviceInfo describes a device installed in a slot, mirroring the fields
// the management GUI shows in its resource list (§II-B).
type DeviceInfo struct {
	ID       string     `json:"id"`
	Type     DeviceType `json:"type"`
	Model    string     `json:"model"`
	VendorID string     `json:"vendorId"`
	LinkGen  int        `json:"linkGen"`
	Lanes    int        `json:"lanes"`
}

// Mode is a drawer's operating mode (§II-C, §III-B).
type Mode string

// Drawer modes.
const (
	// ModeStandardOneHost: one host accesses all eight devices (or one
	// host uses two connections of four devices each).
	ModeStandardOneHost Mode = "standard-1host"
	// ModeStandardTwoHost: two hosts, four devices each (split by drawer
	// half).
	ModeStandardTwoHost Mode = "standard-2host"
	// ModeAdvanced: up to three hosts share the drawer's devices in any
	// distribution; devices may be re-allocated dynamically.
	ModeAdvanced Mode = "advanced"
)

// SlotRef addresses one slot.
type SlotRef struct {
	Drawer int `json:"drawer"`
	Slot   int `json:"slot"`
}

func (r SlotRef) String() string { return fmt.Sprintf("d%d/s%d", r.Drawer, r.Slot) }

func (r SlotRef) valid() bool {
	return r.Drawer >= 0 && r.Drawer < NumDrawers && r.Slot >= 0 && r.Slot < SlotsPerDrawer
}

// slot is the internal slot state.
type slot struct {
	device *DeviceInfo
	port   string // owning host port ID, "" when detached
}

// HostPort is one of the four CDFP host connections (H1–H4).
type HostPort struct {
	ID   string `json:"id"`
	Host string `json:"host"` // cabled host name, "" when uncabled
	// Lanes configured on the port (§II-B "port type and lanes").
	Lanes int `json:"lanes"`
}

// Severity grades event-log entries.
type Severity string

// Event severities.
const (
	SevInfo    Severity = "info"
	SevWarning Severity = "warning"
	SevError   Severity = "error"
)

// Event is one management-plane log entry (§II-B "event logs").
type Event struct {
	At       time.Duration `json:"at"` // management-clock timestamp
	Severity Severity      `json:"severity"`
	Message  string        `json:"message"`
}

// Chassis is one Falcon 4016.
type Chassis struct {
	Name string

	drawers [NumDrawers]struct {
		mode  Mode
		slots [SlotsPerDrawer]slot
	}
	ports map[string]*HostPort
	log   []Event

	// Now supplies management-clock timestamps; the cluster layer binds
	// it to the simulation clock. Defaults to a zero clock.
	Now func() time.Duration

	// onChange observers (the MCS and the cluster layer subscribe).
	observers []func(ev string, slot SlotRef)

	// traffic sources per monitored slot (SetTrafficSource).
	traffic map[SlotRef]TrafficFunc
}

// New creates a chassis with all drawers in standard one-host mode and the
// four host ports uncabled.
func New(name string) *Chassis {
	c := &Chassis{Name: name, ports: make(map[string]*HostPort), Now: func() time.Duration { return 0 }}
	for d := 0; d < NumDrawers; d++ {
		c.drawers[d].mode = ModeStandardOneHost
	}
	for i := 1; i <= NumHostPorts; i++ {
		id := fmt.Sprintf("H%d", i)
		c.ports[id] = &HostPort{ID: id, Lanes: 16}
	}
	return c
}

// Observe registers a callback invoked after each state change with the
// event kind ("install", "remove", "attach", "detach", "mode") and slot.
func (c *Chassis) Observe(fn func(ev string, slot SlotRef)) { c.observers = append(c.observers, fn) }

func (c *Chassis) notify(ev string, ref SlotRef) {
	for _, fn := range c.observers {
		fn(ev, ref)
	}
}

func (c *Chassis) logf(sev Severity, format string, args ...interface{}) {
	c.log = append(c.log, Event{At: c.Now(), Severity: sev, Message: fmt.Sprintf(format, args...)})
}

// Events returns a copy of the event log.
func (c *Chassis) Events() []Event { return append([]Event(nil), c.log...) }

// Port returns a host port by ID (H1–H4).
func (c *Chassis) Port(id string) (*HostPort, error) {
	p, ok := c.ports[id]
	if !ok {
		return nil, fmt.Errorf("falcon: no host port %q", id)
	}
	return p, nil
}

// Ports returns the host ports sorted by ID.
func (c *Chassis) Ports() []*HostPort {
	out := make([]*HostPort, 0, len(c.ports))
	//lint:allow maporder(order cannot leak: the slice is sorted by ID before returning)
	for _, p := range c.ports {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CableHost records that a host is cabled to a port.
func (c *Chassis) CableHost(portID, host string) error {
	p, err := c.Port(portID)
	if err != nil {
		return err
	}
	p.Host = host
	c.logf(SevInfo, "host %s cabled to port %s", host, portID)
	return nil
}

// SetMode switches a drawer's operating mode. All devices in the drawer
// must be detached first: mode switches re-partition the PCIe switch.
func (c *Chassis) SetMode(drawer int, m Mode) error {
	if drawer < 0 || drawer >= NumDrawers {
		return fmt.Errorf("falcon: no drawer %d", drawer)
	}
	switch m {
	case ModeStandardOneHost, ModeStandardTwoHost, ModeAdvanced:
	default:
		return fmt.Errorf("falcon: unknown mode %q", m)
	}
	for s := range c.drawers[drawer].slots {
		if c.drawers[drawer].slots[s].port != "" {
			return fmt.Errorf("falcon: drawer %d has attached devices; detach before changing mode", drawer)
		}
	}
	c.drawers[drawer].mode = m
	c.logf(SevInfo, "drawer %d mode set to %s", drawer, m)
	c.notify("mode", SlotRef{Drawer: drawer})
	return nil
}

// DrawerMode returns a drawer's mode.
func (c *Chassis) DrawerMode(drawer int) Mode { return c.drawers[drawer].mode }

// Install seats a device in an empty slot.
func (c *Chassis) Install(ref SlotRef, dev DeviceInfo) error {
	if !ref.valid() {
		return fmt.Errorf("falcon: invalid slot %v", ref)
	}
	s := &c.drawers[ref.Drawer].slots[ref.Slot]
	if s.device != nil {
		return fmt.Errorf("falcon: slot %v occupied by %s", ref, s.device.ID)
	}
	d := dev
	s.device = &d
	c.logf(SevInfo, "device %s (%s) installed in %v", dev.ID, dev.Type, ref)
	c.notify("install", ref)
	return nil
}

// Remove unseats the device in a slot; it must be detached.
func (c *Chassis) Remove(ref SlotRef) error {
	if !ref.valid() {
		return fmt.Errorf("falcon: invalid slot %v", ref)
	}
	s := &c.drawers[ref.Drawer].slots[ref.Slot]
	if s.device == nil {
		return fmt.Errorf("falcon: slot %v empty", ref)
	}
	if s.port != "" {
		return fmt.Errorf("falcon: device in %v still attached to %s", ref, s.port)
	}
	c.logf(SevInfo, "device %s removed from %v", s.device.ID, ref)
	s.device = nil
	c.notify("remove", ref)
	return nil
}

// Device returns the device in a slot, or nil.
func (c *Chassis) Device(ref SlotRef) *DeviceInfo {
	if !ref.valid() {
		return nil
	}
	return c.drawers[ref.Drawer].slots[ref.Slot].device
}

// Owner returns the host port owning the slot's device ("" if detached).
func (c *Chassis) Owner(ref SlotRef) string {
	if !ref.valid() {
		return ""
	}
	return c.drawers[ref.Drawer].slots[ref.Slot].port
}

// Attach assigns the device in ref to the host cabled at portID, enforcing
// the drawer's mode constraints.
func (c *Chassis) Attach(ref SlotRef, portID string) error {
	if !ref.valid() {
		return fmt.Errorf("falcon: invalid slot %v", ref)
	}
	port, err := c.Port(portID)
	if err != nil {
		return err
	}
	if port.Host == "" {
		return fmt.Errorf("falcon: port %s is not cabled to a host", portID)
	}
	s := &c.drawers[ref.Drawer].slots[ref.Slot]
	if s.device == nil {
		return fmt.Errorf("falcon: slot %v is empty", ref)
	}
	if s.port != "" {
		return fmt.Errorf("falcon: device %s already attached to %s", s.device.ID, s.port)
	}
	if err := c.checkModeConstraint(ref, portID); err != nil {
		c.logf(SevWarning, "attach %v to %s rejected: %v", ref, portID, err)
		return err
	}
	s.port = portID
	c.logf(SevInfo, "device %s in %v attached to %s (host %s)", s.device.ID, ref, portID, port.Host)
	c.notify("attach", ref)
	return nil
}

// checkModeConstraint validates an attach against the drawer mode.
func (c *Chassis) checkModeConstraint(ref SlotRef, portID string) error {
	d := &c.drawers[ref.Drawer]
	portsInUse := map[string]bool{portID: true}
	for i := range d.slots {
		if p := d.slots[i].port; p != "" {
			portsInUse[p] = true
		}
	}
	switch d.mode {
	case ModeStandardOneHost:
		// All devices go to one host; the host may use two connections,
		// but each connection serves one fixed half of the drawer.
		hosts := map[string]bool{}
		for p := range portsInUse {
			hosts[c.ports[p].Host] = true
		}
		if len(hosts) > 1 {
			return fmt.Errorf("mode %s allows a single host per drawer", d.mode)
		}
		if len(portsInUse) > 2 {
			return fmt.Errorf("mode %s allows at most two connections per drawer", d.mode)
		}
		if len(portsInUse) == 2 {
			if err := c.checkHalfSplit(ref, portID); err != nil {
				return err
			}
		}
	case ModeStandardTwoHost:
		if len(portsInUse) > 2 {
			return fmt.Errorf("mode %s allows at most two hosts per drawer", d.mode)
		}
		if err := c.checkHalfSplit(ref, portID); err != nil {
			return err
		}
	case ModeAdvanced:
		hosts := map[string]bool{}
		for p := range portsInUse {
			hosts[c.ports[p].Host] = true
		}
		if len(hosts) > MaxHostsAdvanced {
			return fmt.Errorf("mode %s allows at most %d hosts per drawer", d.mode, MaxHostsAdvanced)
		}
	}
	return nil
}

// checkHalfSplit enforces that in standard modes a port serves only one
// fixed half of a drawer (slots 0–3 or 4–7): the PCIe switch partitions at
// half-drawer granularity.
func (c *Chassis) checkHalfSplit(ref SlotRef, portID string) error {
	d := &c.drawers[ref.Drawer]
	newHalf := ref.Slot / (SlotsPerDrawer / 2)
	for i := range d.slots {
		if d.slots[i].port == "" || i == ref.Slot {
			continue
		}
		half := i / (SlotsPerDrawer / 2)
		samePort := d.slots[i].port == portID
		if samePort && half != newHalf {
			return fmt.Errorf("standard mode partitions the drawer in halves: port %s already serves slots %d-%d",
				portID, half*4, half*4+3)
		}
		if !samePort && half == newHalf {
			return fmt.Errorf("standard mode partitions the drawer in halves: slots %d-%d already served by %s",
				newHalf*4, newHalf*4+3, d.slots[i].port)
		}
	}
	return nil
}

// Detach releases the device in ref from its host.
func (c *Chassis) Detach(ref SlotRef) error {
	if !ref.valid() {
		return fmt.Errorf("falcon: invalid slot %v", ref)
	}
	s := &c.drawers[ref.Drawer].slots[ref.Slot]
	if s.device == nil {
		return fmt.Errorf("falcon: slot %v is empty", ref)
	}
	if s.port == "" {
		return fmt.Errorf("falcon: device %s is not attached", s.device.ID)
	}
	c.logf(SevInfo, "device %s in %v detached from %s", s.device.ID, ref, s.port)
	s.port = ""
	c.notify("detach", ref)
	return nil
}

// Reassign moves a device to another host port without an intermediate
// detach. Only advanced mode supports on-the-fly re-allocation (§III-B-3).
func (c *Chassis) Reassign(ref SlotRef, portID string) error {
	if !ref.valid() {
		return fmt.Errorf("falcon: invalid slot %v", ref)
	}
	if c.drawers[ref.Drawer].mode != ModeAdvanced {
		return fmt.Errorf("falcon: dynamic re-allocation requires advanced mode (drawer %d is %s)",
			ref.Drawer, c.drawers[ref.Drawer].mode)
	}
	s := &c.drawers[ref.Drawer].slots[ref.Slot]
	if s.device == nil {
		return fmt.Errorf("falcon: slot %v is empty", ref)
	}
	old := s.port
	s.port = ""
	if err := c.Attach(ref, portID); err != nil {
		s.port = old
		return err
	}
	return nil
}

// Attached returns the slots attached to the given host port, in slot order.
func (c *Chassis) Attached(portID string) []SlotRef {
	var out []SlotRef
	for d := 0; d < NumDrawers; d++ {
		for s := 0; s < SlotsPerDrawer; s++ {
			if c.drawers[d].slots[s].port == portID {
				out = append(out, SlotRef{Drawer: d, Slot: s})
			}
		}
	}
	return out
}

// AttachedToHost returns slots attached to any port cabled to host.
func (c *Chassis) AttachedToHost(host string) []SlotRef {
	var out []SlotRef
	for d := 0; d < NumDrawers; d++ {
		for s := 0; s < SlotsPerDrawer; s++ {
			p := c.drawers[d].slots[s].port
			if p != "" && c.ports[p].Host == host {
				out = append(out, SlotRef{Drawer: d, Slot: s})
			}
		}
	}
	return out
}

// Slots returns every occupied slot.
func (c *Chassis) Slots() []SlotRef {
	var out []SlotRef
	for d := 0; d < NumDrawers; d++ {
		for s := 0; s < SlotsPerDrawer; s++ {
			if c.drawers[d].slots[s].device != nil {
				out = append(out, SlotRef{Drawer: d, Slot: s})
			}
		}
	}
	return out
}

// ResourceSummary is the GUI's resource-list view (§II-B).
type ResourceSummary struct {
	GPUs, NVMes, NICs, Custom int
	Attached, Free            int
	HostLinks                 int
}

// Summary computes the resource-list counters.
func (c *Chassis) Summary() ResourceSummary {
	var sum ResourceSummary
	for d := 0; d < NumDrawers; d++ {
		for s := 0; s < SlotsPerDrawer; s++ {
			sl := c.drawers[d].slots[s]
			if sl.device == nil {
				continue
			}
			switch sl.device.Type {
			case DeviceGPU:
				sum.GPUs++
			case DeviceNVMe:
				sum.NVMes++
			case DeviceNIC:
				sum.NICs++
			default:
				sum.Custom++
			}
			if sl.port != "" {
				sum.Attached++
			} else {
				sum.Free++
			}
		}
	}
	for _, p := range c.ports {
		if p.Host != "" {
			sum.HostLinks++
		}
	}
	return sum
}

// configFile is the JSON import/export schema (§II-B "import or export
// resource allocation as a configuration file").
type configFile struct {
	Name    string      `json:"name"`
	Drawers []drawerCfg `json:"drawers"`
	Ports   []*HostPort `json:"ports"`
}

type drawerCfg struct {
	Mode  Mode      `json:"mode"`
	Slots []slotCfg `json:"slots"`
}

type slotCfg struct {
	Slot   int         `json:"slot"`
	Device *DeviceInfo `json:"device,omitempty"`
	Port   string      `json:"port,omitempty"`
}

// ExportConfig serializes the full allocation state.
func (c *Chassis) ExportConfig() ([]byte, error) {
	cf := configFile{Name: c.Name, Ports: c.Ports()}
	for d := 0; d < NumDrawers; d++ {
		dc := drawerCfg{Mode: c.drawers[d].mode}
		for s := 0; s < SlotsPerDrawer; s++ {
			sl := c.drawers[d].slots[s]
			if sl.device == nil {
				continue
			}
			dc.Slots = append(dc.Slots, slotCfg{Slot: s, Device: sl.device, Port: sl.port})
		}
		cf.Drawers = append(cf.Drawers, dc)
	}
	return json.MarshalIndent(cf, "", "  ")
}

// ImportConfig replays an exported allocation into an empty chassis,
// validating every step through the normal attach path.
func (c *Chassis) ImportConfig(data []byte) error {
	var cf configFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return fmt.Errorf("falcon: bad config: %w", err)
	}
	if len(cf.Drawers) > NumDrawers {
		return fmt.Errorf("falcon: config has %d drawers; chassis has %d", len(cf.Drawers), NumDrawers)
	}
	for _, p := range cf.Ports {
		if p.Host != "" {
			if err := c.CableHost(p.ID, p.Host); err != nil {
				return err
			}
		}
	}
	for di, dc := range cf.Drawers {
		if err := c.SetMode(di, dc.Mode); err != nil {
			return err
		}
		for _, sc := range dc.Slots {
			if sc.Device == nil {
				continue
			}
			ref := SlotRef{Drawer: di, Slot: sc.Slot}
			if err := c.Install(ref, *sc.Device); err != nil {
				return err
			}
			if sc.Port != "" {
				if err := c.Attach(ref, sc.Port); err != nil {
					return err
				}
			}
		}
	}
	c.logf(SevInfo, "configuration imported")
	return nil
}

// Topology renders the list/topology view of the management GUI.
func (c *Chassis) Topology() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Falcon 4016 %q\n", c.Name)
	for _, p := range c.Ports() {
		host := p.Host
		if host == "" {
			host = "(uncabled)"
		}
		fmt.Fprintf(&b, "  port %s x%d -> %s\n", p.ID, p.Lanes, host)
	}
	for d := 0; d < NumDrawers; d++ {
		fmt.Fprintf(&b, "  drawer %d [%s]\n", d, c.drawers[d].mode)
		for s := 0; s < SlotsPerDrawer; s++ {
			sl := c.drawers[d].slots[s]
			switch {
			case sl.device == nil:
				fmt.Fprintf(&b, "    s%d: (empty)\n", s)
			case sl.port == "":
				fmt.Fprintf(&b, "    s%d: %-22s %-6s free\n", s, sl.device.Model, sl.device.Type)
			default:
				fmt.Fprintf(&b, "    s%d: %-22s %-6s -> %s (%s)\n",
					s, sl.device.Model, sl.device.Type, sl.port, c.ports[sl.port].Host)
			}
		}
	}
	return b.String()
}

// TrafficFunc reports a slot's cumulative ingress/egress bytes; the
// composition layer binds it to the fabric's port counters.
type TrafficFunc func() (in, out units.Bytes)

// SetTrafficSource wires a slot's traffic counters for the management
// GUI's port-traffic monitoring (§II-B).
func (c *Chassis) SetTrafficSource(ref SlotRef, fn TrafficFunc) {
	if c.traffic == nil {
		c.traffic = make(map[SlotRef]TrafficFunc)
	}
	c.traffic[ref] = fn
}

// PortTrafficRow is one slot's traffic view.
type PortTrafficRow struct {
	Slot     SlotRef     `json:"slot"`
	Device   string      `json:"device"`
	Ingress  units.Bytes `json:"ingressBytes"`
	Egress   units.Bytes `json:"egressBytes"`
	Attached string      `json:"attachedTo,omitempty"`
}

// PortTraffic returns the traffic view for every monitored slot, in slot
// order.
func (c *Chassis) PortTraffic() []PortTrafficRow {
	var out []PortTrafficRow
	for d := 0; d < NumDrawers; d++ {
		for s := 0; s < SlotsPerDrawer; s++ {
			ref := SlotRef{Drawer: d, Slot: s}
			fn, ok := c.traffic[ref]
			if !ok {
				continue
			}
			in, eg := fn()
			row := PortTrafficRow{Slot: ref, Ingress: in, Egress: eg, Attached: c.Owner(ref)}
			if dev := c.Device(ref); dev != nil {
				row.Device = dev.ID
			}
			out = append(out, row)
		}
	}
	return out
}
