// Package microbench reimplements the GPU peer-to-peer microbenchmark
// (CUDA's p2pBandwidthLatencyTest) on the simulated fabric. Its output
// regenerates the paper's Table IV: bidirectional bandwidth, small-write
// latency and link protocol for Local-Local, Falcon-Local and
// Falcon-Falcon GPU pairs.
package microbench

import (
	"fmt"
	"time"

	"composable/internal/cluster"
	"composable/internal/fabric"
	"composable/internal/sim"
	"composable/internal/units"
)

// P2PResult is one measured pair.
type P2PResult struct {
	Pair           string // "L-L", "F-L", "F-F"
	BidirBandwidth units.BytesPerSec
	WriteLatency   time.Duration
	Protocol       string
}

// measure runs the bandwidth and latency phases for one GPU pair inside an
// already-running simulation process.
func measure(p *sim.Proc, net *fabric.Network, a, b fabric.NodeID, payload units.Bytes) (units.BytesPerSec, time.Duration, string, error) {
	// Bidirectional bandwidth: equal payloads both directions at once,
	// as the CUDA test does.
	start := p.Now()
	if err := net.ParallelTransfer(p, []fabric.TransferSpec{
		{Src: a, Dst: b, Size: payload},
		{Src: b, Dst: a, Size: payload},
	}); err != nil {
		return 0, 0, "", err
	}
	elapsed := p.Now() - start
	bw := units.BytesPerSec(float64(2*payload) / elapsed.Seconds())

	// P2P write latency: a zero-payload transfer completes after exactly
	// the path latency (DMA setup + per-hop traversals).
	lat, err := net.PathLatency(a, b)
	if err != nil {
		return 0, 0, "", err
	}
	proto, err := net.PathProtocol(a, b)
	if err != nil {
		return 0, 0, "", err
	}
	return bw, lat, proto, nil
}

// TableIV composes the hybrid system (4 local + 4 Falcon GPUs: the one
// configuration containing all three pair kinds) and measures the three
// rows of the paper's Table IV. payload is the per-direction transfer size;
// 1 GiB reproduces the steady-state numbers.
func TableIV(payload units.Bytes) ([]P2PResult, error) {
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cluster.HybridGPUsConfig())
	if err != nil {
		return nil, err
	}
	locals := sys.LocalGPUList()
	falcons := sys.FalconGPUList()
	if len(locals) < 2 || len(falcons) < 2 {
		return nil, fmt.Errorf("microbench: hybrid system missing GPUs")
	}
	pairs := []struct {
		name string
		a, b fabric.NodeID
	}{
		{"L-L", locals[0].Node, locals[1].Node},
		{"F-L", falcons[0].Node, locals[0].Node},
		{"F-F", falcons[0].Node, falcons[1].Node},
	}
	results := make([]P2PResult, len(pairs))
	env.Go("p2p-bench", func(p *sim.Proc) {
		for i, pair := range pairs {
			bw, lat, proto, err := measure(p, sys.Net, pair.a, pair.b, payload)
			if err != nil {
				panic(err)
			}
			results[i] = P2PResult{Pair: pair.name, BidirBandwidth: bw, WriteLatency: lat, Protocol: proto}
		}
	})
	if err := env.Run(); err != nil {
		return nil, err
	}
	// Paper order: L-L, F-L, F-F.
	return results, nil
}
