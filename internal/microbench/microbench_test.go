package microbench

import (
	"math"
	"testing"
	"time"

	"composable/internal/units"
)

// TestTableIVReproduction pins the simulated microbenchmark to the paper's
// Table IV within 2%:
//
//	             L-L     F-L     F-F
//	bidir GB/s   72.37   19.64   24.47
//	latency µs   1.85    2.66    2.08
//	protocol     NVLink  PCIe4   PCIe4
func TestTableIVReproduction(t *testing.T) {
	res, err := TableIV(units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("rows = %d", len(res))
	}
	want := []struct {
		pair  string
		gbps  float64
		lat   time.Duration
		proto string
	}{
		{"L-L", 72.37, 1850 * time.Nanosecond, "NVLink"},
		{"F-L", 19.64, 2660 * time.Nanosecond, "PCI-e 4.0"},
		{"F-F", 24.47, 2080 * time.Nanosecond, "PCI-e 4.0"},
	}
	for i, w := range want {
		r := res[i]
		if r.Pair != w.pair {
			t.Fatalf("row %d pair = %s, want %s", i, r.Pair, w.pair)
		}
		if got := r.BidirBandwidth.GB(); math.Abs(got-w.gbps)/w.gbps > 0.02 {
			t.Errorf("%s bandwidth = %.2f GB/s, want %.2f", w.pair, got, w.gbps)
		}
		if d := r.WriteLatency - w.lat; d < -50*time.Nanosecond || d > 50*time.Nanosecond {
			t.Errorf("%s latency = %v, want %v", w.pair, r.WriteLatency, w.lat)
		}
		if r.Protocol != w.proto {
			t.Errorf("%s protocol = %q, want %q", w.pair, r.Protocol, w.proto)
		}
	}
	// Orderings the paper calls out: L-L ≈ 4x F-L and ≈ 3x F-F.
	ll, fl, ff := res[0].BidirBandwidth.GB(), res[1].BidirBandwidth.GB(), res[2].BidirBandwidth.GB()
	if r := ll / fl; r < 3.4 || r > 4.1 {
		t.Errorf("L-L/F-L ratio = %.2f, want ~3.7 ('almost 4x')", r)
	}
	if r := ll / ff; r < 2.6 || r > 3.3 {
		t.Errorf("L-L/F-F ratio = %.2f, want ~3.0 ('almost 3x')", r)
	}
}
