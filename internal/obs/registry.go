package obs

import (
	"io"
	"strconv"
)

// CounterID is the handle returned by Registry.Counter; hot paths bump
// counters through it with a slice index, never a map lookup.
type CounterID int

// metricKind separates monotonically bumped counters from
// sampled-on-demand gauges.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
)

// metric is one registered metric. Exactly one of count/gauge is live,
// selected by kind.
type metric struct {
	name  string
	kind  metricKind
	count int64
	gauge func() float64
}

// Registry holds a run's metrics in registration order. It is usable on
// its own — mcsd backs its /metrics endpoint with one, with no simulation
// attached — or inside a Collector, where the sampler snapshots every
// metric on a fixed sim-time interval. Like the Collector it is not safe
// for concurrent use; callers that share one across goroutines (mcsd)
// serialize with their own lock.
type Registry struct {
	metrics []metric
	index   map[string]int
}

func (r *Registry) lookup(name string) (int, bool) {
	if r.index == nil {
		return 0, false
	}
	i, ok := r.index[name]
	return i, ok
}

func (r *Registry) add(m metric) int {
	if r.index == nil {
		r.index = make(map[string]int)
	}
	r.metrics = append(r.metrics, m)
	i := len(r.metrics) - 1
	r.index[m.name] = i
	return i
}

// Counter registers (or finds) a counter and returns its handle.
func (r *Registry) Counter(name string) CounterID {
	if i, ok := r.lookup(name); ok {
		return CounterID(i)
	}
	return CounterID(r.add(metric{name: name, kind: kindCounter}))
}

// Gauge registers a gauge sampled by fn. Re-registering a name replaces
// its sampler.
func (r *Registry) Gauge(name string, fn func() float64) {
	if i, ok := r.lookup(name); ok {
		r.metrics[i].kind = kindGauge
		r.metrics[i].gauge = fn
		return
	}
	r.add(metric{name: name, kind: kindGauge, gauge: fn})
}

// Add bumps a counter by delta.
func (r *Registry) Add(id CounterID, delta int64) {
	r.metrics[id].count += delta
}

// Inc bumps a counter by one.
func (r *Registry) Inc(id CounterID) { r.Add(id, 1) }

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.metrics) }

// Name returns the i-th metric's name, in registration order.
func (r *Registry) Name(i int) string { return r.metrics[i].name }

// CounterValue returns the named counter's current value (0 if unknown).
func (r *Registry) CounterValue(name string) int64 {
	if i, ok := r.lookup(name); ok {
		return r.metrics[i].count
	}
	return 0
}

// value snapshots the i-th metric: the running total for counters, one
// sampler call for gauges.
func (r *Registry) value(i int) float64 {
	m := &r.metrics[i]
	if m.kind == kindGauge {
		if m.gauge == nil {
			return 0
		}
		return m.gauge()
	}
	return float64(m.count)
}

// WriteText renders the registry as "name value" lines in registration
// order — the mcsd /metrics body. Counters print as integers, gauges with
// the canonical shortest float form, so the bytes are deterministic for a
// deterministic run.
func (r *Registry) WriteText(w io.Writer) error {
	b := make([]byte, 0, 64*len(r.metrics))
	for i := range r.metrics {
		m := &r.metrics[i]
		b = append(b, m.name...)
		b = append(b, ' ')
		if m.kind == kindCounter {
			b = strconv.AppendInt(b, m.count, 10)
		} else {
			b = strconv.AppendFloat(b, r.value(i), 'g', -1, 64)
		}
		b = append(b, '\n')
	}
	_, err := w.Write(b)
	return err
}
