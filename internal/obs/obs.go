package obs

import (
	"time"

	"composable/internal/sim"
)

// Cat is the category (Perfetto track) a span or instant belongs to. One
// fixed track per instrumented layer keeps trace output stable and lets a
// reader fold whole subsystems in the viewer.
type Cat uint8

// The instrumented layers, in track order. The first five are the
// legacy tracks pinned by the PR 9 golden trace; tracks added after
// (mcs, analyze) only appear in exported traces when a span actually
// uses them, so appending here never disturbs existing trace bytes.
const (
	CatSim Cat = iota
	CatFabric
	CatTrain
	CatOrchestrator
	CatFaults
	CatMCS
	CatAnalyze
	numCats

	// numLegacyCats bounds the tracks whose thread_name metadata is
	// emitted unconditionally (the golden-trace format).
	numLegacyCats = CatMCS
)

// catNames indexes Cat → track name; the order is the tid order in the
// exported trace.
var catNames = [numCats]string{"sim", "fabric", "train", "orchestrator", "faults", "mcs", "analyze"}

// Name returns the category's track name.
func (c Cat) Name() string {
	if c < numCats {
		return catNames[c]
	}
	return "unknown"
}

// SpanID identifies a span (or instant) held by a Collector. The zero
// SpanID is "none": End and SetAttr on it are no-ops, so instrumented
// code can store it unconditionally in pooled structs.
type SpanID uint32

// attrVal is one typed span attribute: either an int64 or a string.
type attrVal struct {
	key   string
	i     int64
	s     string
	isStr bool
}

// span is one recorded span or instant. Spans are stored (and exported)
// in begin order, which is deterministic because the simulation is.
type span struct {
	name    string
	cat     Cat
	start   sim.Time
	end     sim.Time
	open    bool
	instant bool
	attrs   []attrVal
}

// DefaultInterval is the sampling interval used when none is set, chosen
// to match telemetry.NewRecorder's default.
const DefaultInterval = 100 * time.Millisecond

// Collector gathers spans, instants and metric samples from one
// simulation run. A nil *Collector means "tracing off": every
// instrumented seam nil-checks before emitting, so the disabled cost is
// one branch. Collectors are not safe for concurrent use; the simulator
// is single-threaded, which is what makes the output deterministic.
type Collector struct {
	env      *sim.Env
	reg      Registry
	interval time.Duration

	spans   []span
	maxTime sim.Time // latest sim time seen; closes still-open spans at export

	// Sampling state: a telemetry.Recorder-style stepper with the
	// primed-first-tick convention, writing one columnar row per tick.
	times     []sim.Time
	cols      [][]float64
	sp        *sim.Proc
	primed    bool
	stopped   bool
	sampleOff bool
}

// NewCollector returns an empty collector sampling every DefaultInterval
// of sim time once StartSampling runs.
func NewCollector() *Collector {
	return &Collector{interval: DefaultInterval}
}

// SetInterval sets the metric sampling interval. Non-positive values keep
// the default. Must be called before StartSampling.
func (c *Collector) SetInterval(d time.Duration) {
	if d > 0 {
		c.interval = d
	}
}

// Interval returns the metric sampling interval.
func (c *Collector) Interval() time.Duration { return c.interval }

// Registry returns the collector's metric registry, shared by every
// instrumented layer of the run.
func (c *Collector) Registry() *Registry { return &c.reg }

// Attach binds the collector to a simulation environment: spans get their
// timestamps from env.Now, proc lifetimes become spans on the sim track,
// and the engine's cumulative event count is registered as a gauge. Call
// once, before the environment runs.
func (c *Collector) Attach(env *sim.Env) {
	c.env = env
	env.SetProcProbe(
		func(name string, at sim.Time) uint64 {
			return uint64(c.beginAt(CatSim, name, at, false))
		},
		func(token uint64, at sim.Time) {
			c.EndAt(SpanID(token), at)
		},
	)
	c.reg.Gauge("sim.events", func() float64 { return float64(env.EventCount()) })
	c.reg.Gauge("sim.procs", func() float64 { return float64(env.LiveProcs()) })
}

// Env returns the attached environment (nil before Attach).
func (c *Collector) Env() *sim.Env { return c.env }

func (c *Collector) note(at sim.Time) {
	if at > c.maxTime {
		c.maxTime = at
	}
}

func (c *Collector) beginAt(cat Cat, name string, at sim.Time, instant bool) SpanID {
	c.note(at)
	c.spans = append(c.spans, span{
		name:    name,
		cat:     cat,
		start:   at,
		end:     at,
		open:    !instant,
		instant: instant,
	})
	return SpanID(len(c.spans))
}

// Begin opens a span on the given track at the current sim time and
// returns its id. The returned id stays valid for SetAttr/End for the
// life of the collector.
func (c *Collector) Begin(cat Cat, name string) SpanID {
	return c.beginAt(cat, name, c.env.Now(), false)
}

// BeginAt opens a span with an explicit start time (used for spans whose
// start was only known in retrospect, e.g. epoch boundaries).
func (c *Collector) BeginAt(cat Cat, name string, at sim.Time) SpanID {
	c.note(c.env.Now())
	return c.beginAt(cat, name, at, false)
}

// End closes the span at the current sim time. A zero id is a no-op.
func (c *Collector) End(id SpanID) {
	c.EndAt(id, c.env.Now())
}

// EndAt closes the span at an explicit time. A zero id is a no-op.
func (c *Collector) EndAt(id SpanID, at sim.Time) {
	if id == 0 {
		return
	}
	s := &c.spans[id-1]
	if !s.open {
		return
	}
	s.open = false
	s.end = at
	c.note(at)
}

// Emit records an already-complete span with explicit start and end.
func (c *Collector) Emit(cat Cat, name string, start, end sim.Time) SpanID {
	id := c.beginAt(cat, name, start, false)
	c.EndAt(id, end)
	return id
}

// Instant records a zero-duration mark at the current sim time. The
// returned id accepts SetAttr like any span.
func (c *Collector) Instant(cat Cat, name string) SpanID {
	return c.beginAt(cat, name, c.env.Now(), true)
}

// SetAttr attaches an integer attribute to a span. A zero id is a no-op.
func (c *Collector) SetAttr(id SpanID, key string, v int64) {
	if id == 0 {
		return
	}
	s := &c.spans[id-1]
	s.attrs = append(s.attrs, attrVal{key: key, i: v})
}

// SetAttrStr attaches a string attribute to a span. A zero id is a no-op.
func (c *Collector) SetAttrStr(id SpanID, key, v string) {
	if id == 0 {
		return
	}
	s := &c.spans[id-1]
	s.attrs = append(s.attrs, attrVal{key: key, s: v, isStr: true})
}

// Inc bumps a registered counter by one.
func (c *Collector) Inc(id CounterID) { c.reg.Add(id, 1) }

// Add bumps a registered counter by delta.
func (c *Collector) Add(id CounterID, delta int64) { c.reg.Add(id, delta) }

// attrInt returns the span's integer attribute named key, if present.
func (s *span) attrInt(key string) (int64, bool) {
	for _, a := range s.attrs {
		if !a.isStr && a.key == key {
			return a.i, true
		}
	}
	return 0, false
}

// DisableSampling makes StartSampling a no-op: the collector captures
// spans but never spawns the periodic metrics stepper. Consumers that
// replay policies which may legitimately strand jobs (the advisor's
// feasibility probing) need this — an armed sampler would keep the
// otherwise-drained event queue alive forever.
func (c *Collector) DisableSampling() { c.sampleOff = true }

// StartSampling spawns the sampling stepper: every Interval of sim time
// it snapshots every registered metric into one columnar row. Metrics
// registered after the first tick are ignored for the rest of the run, so
// wire all layers before the environment runs. Requires Attach.
func (c *Collector) StartSampling() {
	if c.sampleOff || c.env == nil || c.sp != nil {
		return
	}
	c.cols = make([][]float64, c.reg.Len())
	c.sp = c.env.NewStepper("obs-sampler", c.step)
	c.primed = false
	c.stopped = false
	c.env.Ready(c.sp)
}

// StopSampling ends sampling after the currently armed tick fires; the
// orchestrator calls it when the last job settles so the event queue can
// drain.
func (c *Collector) StopSampling() { c.stopped = true }

//perf:hot
func (c *Collector) step() {
	if c.stopped {
		return
	}
	if !c.primed {
		// Spawn position: sample only after the first interval elapses,
		// mirroring telemetry.Recorder's primed-first-tick convention.
		c.primed = true
		c.env.ReadyAfter(c.sp, c.interval)
		return
	}
	now := c.env.Now()
	c.note(now)
	c.times = append(c.times, now)
	for i := range c.cols {
		c.cols[i] = append(c.cols[i], c.reg.value(i))
	}
	c.env.ReadyAfter(c.sp, c.interval)
}

// SpanCount returns the number of recorded spans and instants.
func (c *Collector) SpanCount() int { return len(c.spans) }

// MaxTime returns the latest sim time the collector observed; exporters
// and the analyzer close still-open spans at this time.
func (c *Collector) MaxTime() sim.Time { return c.maxTime }

// SpanView is a read-only view of one recorded span or instant, handed
// to VisitSpans callbacks. Open spans (a permanent fault, a proc alive
// at exit) are presented with End clamped to MaxTime, matching how the
// trace exporter renders them.
type SpanView struct {
	Name    string
	Cat     Cat
	Start   sim.Time
	End     sim.Time
	Instant bool
	attrs   []attrVal
}

// AttrInt returns the span's integer attribute named key, if present.
func (v SpanView) AttrInt(key string) (int64, bool) {
	for _, a := range v.attrs {
		if !a.isStr && a.key == key {
			return a.i, true
		}
	}
	return 0, false
}

// AttrStr returns the span's string attribute named key, if present.
func (v SpanView) AttrStr(key string) (string, bool) {
	for _, a := range v.attrs {
		if a.isStr && a.key == key {
			return a.s, true
		}
	}
	return "", false
}

// VisitSpans calls f for every recorded span and instant in begin
// order — the deterministic order the trace exporter uses. It is the
// read path for post-hoc analysis (obs/analyze): no copy of the span
// table, no mutation.
func (c *Collector) VisitSpans(f func(SpanView)) {
	for i := range c.spans {
		s := &c.spans[i]
		end := s.end
		if s.open {
			end = c.maxTime
		}
		f(SpanView{
			Name:    s.name,
			Cat:     s.cat,
			Start:   s.start,
			End:     end,
			Instant: s.instant,
			attrs:   s.attrs,
		})
	}
}

// SampleCount returns the number of sampling ticks taken.
func (c *Collector) SampleCount() int { return len(c.times) }
