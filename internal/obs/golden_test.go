package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"composable/internal/obs"
	"composable/internal/scengen"
)

var update = flag.Bool("update", false, "rewrite the golden trace file")

// goldenScenario is a small fixed faulty fleet run that exercises every
// instrumented layer: jobs schedule (orchestrator/train/fabric/sim) and a
// repairable GPU fault fires mid-run (faults).
func goldenScenario() scengen.FaultScenario {
	fleet := scengen.FleetFromSeed(1)
	fleet.Jobs = fleet.Jobs[:3]
	return scengen.SanitizeFaults(scengen.FaultScenario{
		Fleet: fleet,
		Plan:  scengen.PlanForFleet(3, fleet),
	})
}

func runGolden(t *testing.T) *obs.Collector {
	t.Helper()
	c := obs.NewCollector()
	out, err := scengen.RunFaultyFleetObserved(goldenScenario(), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGoldenTrace pins the Chrome trace exporter byte for byte: the fixed
// scenario's trace must match the checked-in file exactly, parse as valid
// JSON, and contain spans from all five instrumented layers. Regenerate
// with `go test ./internal/obs -run TestGoldenTrace -update` after an
// intentional format or instrumentation change.
//
// Adding a category (CatMCS, CatAnalyze) does NOT require a regen: the
// exporter emits a track's process metadata on demand, the first time a
// span lands on it, so categories unused by this scenario leave the
// golden bytes untouched.
func TestGoldenTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := runGolden(t).WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fleet_trace.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace bytes diverge from %s (%d vs %d bytes); rerun with -update if intentional",
			golden, buf.Len(), len(want))
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" || e.Ph == "i" {
			seen[e.Cat] = true
		}
	}
	for _, cat := range []string{"sim", "fabric", "train", "orchestrator", "faults"} {
		if !seen[cat] {
			t.Errorf("trace has no spans on the %q track", cat)
		}
	}
}

// TestTraceRunTwiceIdentical pins determinism at the exporter level: two
// fresh runs of the same scenario produce byte-identical traces and
// metrics CSVs.
func TestTraceRunTwiceIdentical(t *testing.T) {
	var t1, t2, m1, m2 bytes.Buffer
	a, b := runGolden(t), runGolden(t)
	if err := a.WriteTrace(&t1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTrace(&t2); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteMetricsCSV(&m1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteMetricsCSV(&m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Error("trace bytes differ between two identical runs")
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Error("metrics CSV bytes differ between two identical runs")
	}
}

// TestTraceFiltered pins the tenant-scoped cut mcsd serves: only spans
// carrying the requested job attribute survive, and counter samples are
// omitted.
func TestTraceFiltered(t *testing.T) {
	c := runGolden(t)
	var buf bytes.Buffer
	if err := c.WriteTraceFiltered(&buf, "job", 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("filtered trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "C":
			t.Fatal("filtered trace must not carry fleet-global counter samples")
		case "X", "i":
			spans++
			if v, ok := e.Args["job"].(float64); !ok || int(v) != 0 {
				t.Fatalf("filtered trace leaked a span with job attr %v", e.Args["job"])
			}
		}
	}
	if spans == 0 {
		t.Fatal("filtered trace for job 0 is empty")
	}
}

// TestTelemetryReexports pins the satellite fold-in: the telemetry event
// and series APIs are reachable through obs with identical behavior.
func TestTelemetryReexports(t *testing.T) {
	tr := obs.NewTrack("faults")
	tr.Record(scengen.FleetFromSeed(1).AttachLatency, "down", "gpu0")
	if tr.Len() != 1 {
		t.Fatalf("Track.Len = %d, want 1", tr.Len())
	}
	s := obs.Series{Name: "util", Times: []time.Duration{time.Second}, Values: []float64{0.5}}
	if got := s.CSV(); got != "time_s,util\n1.000,0.500000\n" {
		t.Fatalf("Series CSV = %q", got)
	}
}
