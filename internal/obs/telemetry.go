package obs

import (
	"time"

	"composable/internal/sim"
	"composable/internal/telemetry"
)

// This file folds internal/telemetry's event-series API into obs, so one
// import covers spans, sampled metrics and annotated event tracks. The
// aliases are the originals — same types, same CSV/ASCII bytes, still
// pinned by telemetry's determinism tests.

// Series is one sampled metric series (alias of telemetry.Series).
type Series = telemetry.Series

// Track is an annotated event series (alias of telemetry.Track).
type Track = telemetry.Track

// TrackEvent is one annotated observation (alias of telemetry.TrackEvent).
type TrackEvent = telemetry.TrackEvent

// Recorder periodically sweeps probes inside a simulation (alias of
// telemetry.Recorder).
type Recorder = telemetry.Recorder

// Probe is one metric source sampled each interval (alias of
// telemetry.Probe).
type Probe = telemetry.Probe

// NewTrack creates an empty event track.
func NewTrack(name string) *Track { return telemetry.NewTrack(name) }

// NewRecorder creates a recorder sampling every interval of virtual time.
func NewRecorder(env *sim.Env, interval time.Duration) *Recorder {
	return telemetry.NewRecorder(env, interval)
}
