package obs

import (
	"strings"
	"testing"
	"time"

	"composable/internal/sim"
)

func TestAppendMicros(t *testing.T) {
	cases := []struct {
		d    sim.Time
		want string
	}{
		{0, "0"},
		{time.Microsecond, "1"},
		{1500 * time.Nanosecond, "1.500"},
		{time.Nanosecond, "0.001"},
		{999 * time.Nanosecond, "0.999"},
		{time.Second, "1000000"},
		{2*time.Second + 123456789*time.Nanosecond, "2123456.789"},
	}
	for _, c := range cases {
		if got := string(appendMicros(nil, c.d)); got != c.want {
			t.Errorf("appendMicros(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestRegistryText(t *testing.T) {
	var r Registry
	a := r.Counter("alpha_total")
	r.Gauge("beta", func() float64 { return 2.5 })
	r.Add(a, 41)
	r.Inc(a)
	if r.Counter("alpha_total") != a {
		t.Fatal("re-registering a counter must return the same handle")
	}
	if got := r.CounterValue("alpha_total"); got != 42 {
		t.Fatalf("CounterValue = %d, want 42", got)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "alpha_total 42\nbeta 2.5\n"
	if sb.String() != want {
		t.Fatalf("WriteText = %q, want %q", sb.String(), want)
	}
}

// TestCollectorSpans drives spans through a real environment: proc
// lifetimes become sim-track spans, explicit spans carry attributes, and
// open spans clamp to the last observed time at export.
func TestCollectorSpans(t *testing.T) {
	env := sim.NewEnv()
	c := NewCollector()
	c.Attach(env)

	var open SpanID
	env.Go("worker", func(p *sim.Proc) {
		id := c.Begin(CatFabric, "flow")
		c.SetAttr(id, "src", 3)
		c.SetAttrStr(id, "proto", "pcie")
		p.Sleep(10 * time.Millisecond)
		c.End(id)
		open = c.Begin(CatTrain, "never-closed")
		c.SetAttr(open, "job", 7)
		_ = c.Instant(CatFaults, "mark")
		p.Sleep(5 * time.Millisecond)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// worker proc span + flow + never-closed + instant.
	if c.SpanCount() != 4 {
		t.Fatalf("SpanCount = %d, want 4", c.SpanCount())
	}

	var sb strings.Builder
	if err := c.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"name":"worker","cat":"sim"`,
		`"name":"flow","cat":"fabric","args":{"src":3,"proto":"pcie"}`,
		`"ph":"i"`,
		// The open span must clamp to maxTime (15ms), not render zero-width:
		// started at 10ms, run ends at 15ms → dur 5000µs.
		`"ts":10000,"dur":5000,"name":"never-closed"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q\ntrace:\n%s", want, out)
		}
	}

	// Zero SpanID and double-End are safe no-ops.
	c.End(0)
	c.SetAttr(0, "x", 1)
	c.End(open)
	before := sb.String()
	var sb2 strings.Builder
	if err := c.WriteTrace(&sb2); err != nil {
		t.Fatal(err)
	}
	if before != sb2.String() {
		t.Error("no-op operations changed the exported trace")
	}
}

// TestSamplingCSV pins the sampler: primed first tick, one row per
// interval, metrics in registration order, CSV cells in telemetry's
// fixed formats.
func TestSamplingCSV(t *testing.T) {
	env := sim.NewEnv()
	c := NewCollector()
	c.SetInterval(20 * time.Millisecond)
	c.Attach(env)
	ticks := 0
	c.Registry().Gauge("ticks", func() float64 { ticks++; return float64(ticks) })
	cnt := c.Registry().Counter("bumps_total")

	var sp *sim.Proc
	n := 0
	sp = env.NewStepper("driver", func() {
		n++
		c.Add(cnt, 2)
		if n < 5 {
			env.ReadyAfter(sp, 20*time.Millisecond)
		} else {
			c.StopSampling()
		}
	})
	c.StartSampling()
	env.ReadyAfter(sp, 20*time.Millisecond)
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if c.SampleCount() == 0 {
		t.Fatal("sampler never ticked")
	}
	var sb strings.Builder
	if err := c.WriteMetricsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "time_s,sim.events,sim.procs,ticks,bumps_total" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if len(lines) != 1+c.SampleCount() {
		t.Fatalf("%d CSV rows, want %d", len(lines)-1, c.SampleCount())
	}
	if !strings.HasPrefix(lines[1], "0.020,") {
		t.Errorf("first sample row = %q, want 0.020s tick", lines[1])
	}
	sum := c.Summary()
	if !strings.Contains(sum, "bumps_total") || !strings.Contains(sum, "samples over") {
		t.Errorf("Summary missing expected fields:\n%s", sum)
	}
}

// TestSamplerStopsQueue guards the drain property: a collector whose
// sampling is never stopped must not wedge env.Run (the stepper re-arms
// only while unstopped), and StopSampling lets the queue drain.
func TestSamplerStopsQueue(t *testing.T) {
	env := sim.NewEnv()
	c := NewCollector()
	c.Attach(env)
	c.StartSampling()
	env.Go("short", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		c.StopSampling()
	})
	done := make(chan error, 1)
	go func() { done <- env.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("env.Run did not drain after StopSampling")
	}
}
