package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"composable/internal/sim"
)

// appendMicros renders a sim time as Chrome trace microseconds with
// exact integer math: whole µs, then the sub-µs remainder as three
// decimal digits. No floats, so the bytes cannot drift between runs.
func appendMicros(b []byte, d sim.Time) []byte {
	ns := int64(d)
	b = strconv.AppendInt(b, ns/1000, 10)
	if f := ns % 1000; f != 0 {
		b = append(b, '.', byte('0'+f/100), byte('0'+f/10%10), byte('0'+f%10))
	}
	return b
}

// appendAttrs renders a span's attributes as a JSON object body (no
// braces), in the order they were set.
func appendAttrs(b []byte, attrs []attrVal) []byte {
	for i, a := range attrs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, a.key)
		b = append(b, ':')
		if a.isStr {
			b = strconv.AppendQuote(b, a.s)
		} else {
			b = strconv.AppendInt(b, a.i, 10)
		}
	}
	return b
}

// appendSpanEvent renders one span or instant as a trace_event line.
// Still-open spans (a permanent fault, a proc alive at exit) are closed
// at the collector's max observed time so they render with their true
// extent instead of vanishing.
func (c *Collector) appendSpanEvent(b []byte, s *span) []byte {
	if s.instant {
		b = append(b, `{"ph":"i","pid":1,"tid":`...)
	} else {
		b = append(b, `{"ph":"X","pid":1,"tid":`...)
	}
	b = strconv.AppendInt(b, int64(s.cat), 10)
	b = append(b, `,"ts":`...)
	b = appendMicros(b, s.start)
	if !s.instant {
		end := s.end
		if s.open {
			end = c.maxTime
		}
		b = append(b, `,"dur":`...)
		b = appendMicros(b, end-s.start)
	} else {
		b = append(b, `,"s":"t"`...)
	}
	b = append(b, `,"name":`...)
	b = strconv.AppendQuote(b, s.name)
	b = append(b, `,"cat":`...)
	b = strconv.AppendQuote(b, catNames[s.cat])
	b = append(b, `,"args":{`...)
	b = appendAttrs(b, s.attrs)
	b = append(b, "}}"...)
	return b
}

// writeTrace renders the Chrome trace_event JSON. keep selects which
// spans to include (nil = all); metric counter tracks are emitted only
// for the unfiltered trace, since samples are fleet-global.
func (c *Collector) writeTrace(w io.Writer, keep func(*span) bool) error {
	b := make([]byte, 0, 1<<14)
	b = append(b, "{\"traceEvents\":[\n"...)
	// Track metadata first: one named thread per category, tid = Cat.
	// The five legacy tracks are always present — the PR 9 golden trace
	// pins those bytes — while newer tracks (mcs, analyze) are emitted
	// only when a kept span actually lands on them, so traces from runs
	// that never touch the new layers stay byte-identical.
	var used [numCats]bool
	for i := range c.spans {
		s := &c.spans[i]
		if keep == nil || keep(s) {
			used[s.cat] = true
		}
	}
	first := true
	for i := 0; i < int(numCats); i++ {
		if Cat(i) >= numLegacyCats && !used[i] {
			continue
		}
		if !first {
			b = append(b, ",\n"...)
		}
		first = false
		b = append(b, `{"ph":"M","pid":1,"tid":`...)
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, `,"name":"thread_name","args":{"name":`...)
		b = strconv.AppendQuote(b, catNames[i])
		b = append(b, "}}"...)
	}
	// Spans and instants, in begin order.
	for i := range c.spans {
		s := &c.spans[i]
		if keep != nil && !keep(s) {
			continue
		}
		b = append(b, ",\n"...)
		b = c.appendSpanEvent(b, s)
	}
	// Metric samples as counter tracks, tick-major then registration
	// order — never a map walk.
	if keep == nil {
		for k := range c.times {
			for m := range c.cols {
				b = append(b, ",\n"...)
				b = append(b, `{"ph":"C","pid":1,"ts":`...)
				b = appendMicros(b, c.times[k])
				b = append(b, `,"name":`...)
				b = strconv.AppendQuote(b, c.reg.Name(m))
				b = append(b, `,"args":{"value":`...)
				b = strconv.AppendFloat(b, c.cols[m][k], 'g', -1, 64)
				b = append(b, "}}"...)
			}
		}
	}
	b = append(b, "\n]}\n"...)
	_, err := w.Write(b)
	return err
}

// WriteTrace renders the whole run as Chrome trace_event JSON, loadable
// in Perfetto or chrome://tracing. Sim time maps to trace microseconds.
func (c *Collector) WriteTrace(w io.Writer) error {
	return c.writeTrace(w, nil)
}

// WriteTraceFiltered renders only the spans and instants carrying the
// integer attribute key=val — mcsd uses it to cut one job's trace out of
// a shared fleet run. Metric counter tracks are omitted: samples are
// fleet-global, not attributable to one job.
func (c *Collector) WriteTraceFiltered(w io.Writer, key string, val int64) error {
	return c.writeTrace(w, func(s *span) bool {
		v, ok := s.attrInt(key)
		return ok && v == val
	})
}

// WriteMetricsCSV renders the sampled metrics as one columnar CSV:
// a time_s column followed by one column per metric in registration
// order, matching telemetry's %.3f/%.6f cell formats.
func (c *Collector) WriteMetricsCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("time_s")
	for m := 0; m < c.reg.Len(); m++ {
		sb.WriteByte(',')
		sb.WriteString(c.reg.Name(m))
	}
	sb.WriteByte('\n')
	for k := range c.times {
		fmt.Fprintf(&sb, "%.3f", c.times[k].Seconds())
		for m := range c.cols {
			fmt.Fprintf(&sb, ",%.6f", c.cols[m][k])
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Summary renders a compact ASCII digest of the run: span and instant
// counts per track, then min/mean/max per sampled metric.
func (c *Collector) Summary() string {
	var spans, instants [numCats]int
	for i := range c.spans {
		if c.spans[i].instant {
			instants[c.spans[i].cat]++
		} else {
			spans[c.spans[i].cat]++
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "obs: %d spans, %d samples over %s\n",
		len(c.spans), len(c.times), c.maxTime)
	for i := 0; i < int(numCats); i++ {
		if spans[i] == 0 && instants[i] == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-12s %5d spans %5d instants\n", catNames[i], spans[i], instants[i])
	}
	for m := range c.cols {
		col := c.cols[m]
		if len(col) == 0 {
			continue
		}
		lo, hi, sum := col[0], col[0], 0.0
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			sum += v
		}
		fmt.Fprintf(&sb, "  %-24s min %.3f mean %.3f max %.3f\n",
			c.reg.Name(m), lo, sum/float64(len(col)), hi)
	}
	return sb.String()
}
