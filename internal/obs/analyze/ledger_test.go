package analyze_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"composable/internal/obs"
	"composable/internal/obs/analyze"
	"composable/internal/orchestrator"
	"composable/internal/scengen"
)

// sweepParams reads a sweep shape from the same environment variables
// the scengen sweeps use, so CI drives both from one knob.
func sweepParams(t *testing.T, seedVar, nVar string) (base int64, n int) {
	base, n = 1, 100
	if s := os.Getenv(seedVar); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("%s: %v", seedVar, err)
		}
		base = v
	}
	if s := os.Getenv(nVar); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("%s: bad value %q", nVar, s)
		}
		n = v
	}
	return base, n
}

// sweepLedger fans seeds over workers, running one observed scenario
// per seed and checking the full attribution ledger on each.
func sweepLedger(t *testing.T, base int64, n int, run func(seed int64) (*obs.Collector, *orchestrator.FleetResult, error)) {
	t.Helper()
	seeds := make(chan int64)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				c, res, err := run(seed)
				if err != nil {
					mu.Lock()
					t.Errorf("seed %d: %v", seed, err)
					mu.Unlock()
					continue
				}
				tr := analyze.FromCollector(c)
				a := tr.Analyze()
				sub := &recordingT{}
				checkLedger(sub, tr, a, res)
				if len(sub.errs) > 0 {
					mu.Lock()
					for _, e := range sub.errs {
						t.Errorf("seed %d: %s", seed, e)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		seeds <- base + int64(i)
	}
	close(seeds)
	wg.Wait()
}

// recordingT captures checkLedger failures so the sweep can prefix
// them with the offending seed.
type recordingT struct {
	testing.TB
	errs []string
}

func (r *recordingT) Helper() {}
func (r *recordingT) Errorf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}

// TestLedgerBalanceFleetSweep is the satellite property test: across
// the 100-seed fleet sweep (FLEET_SWEEP_SEED / FLEET_SWEEP_N), every
// job's attribution buckets sum to its wall span exactly, the critical
// path tiles it gaplessly, and the fleet totals reconcile with
// FleetResult's wait/runtime/GPU-second/goodput accounting.
func TestLedgerBalanceFleetSweep(t *testing.T) {
	base, n := sweepParams(t, "FLEET_SWEEP_SEED", "FLEET_SWEEP_N")
	sweepLedger(t, base, n, func(seed int64) (*obs.Collector, *orchestrator.FleetResult, error) {
		c := obs.NewCollector()
		out, err := scengen.RunFleetObserved(scengen.FleetFromSeed(seed), c)
		if err != nil {
			return nil, nil, err
		}
		if err := out.Err(); err != nil {
			return nil, nil, err
		}
		return c, out.Result, nil
	})
}

// TestLedgerBalanceFaultSweep runs the same ledger property across the
// 100-seed fault sweep (FAULT_SWEEP_SEED / FAULT_SWEEP_N): kills,
// requeues and abandonments must still balance to the nanosecond.
func TestLedgerBalanceFaultSweep(t *testing.T) {
	base, n := sweepParams(t, "FAULT_SWEEP_SEED", "FAULT_SWEEP_N")
	sweepLedger(t, base, n, func(seed int64) (*obs.Collector, *orchestrator.FleetResult, error) {
		c := obs.NewCollector()
		out, err := scengen.RunFaultyFleetObserved(scengen.FaultsFromSeed(seed), c)
		if err != nil {
			return nil, nil, err
		}
		if err := out.Err(); err != nil {
			return nil, nil, err
		}
		return c, out.Result, nil
	})
}
