package analyze

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Threshold is one parsed SLO clause: a metric, a comparison, and a
// bound. Duration metrics compare durations; scalar metrics compare
// floats.
type Threshold struct {
	Metric string // canonical metric key, e.g. "p99-wait", "goodput"
	Op     string // "<=" (ceiling) or ">=" (floor)
	Dur    time.Duration
	Val    float64
	IsDur  bool
	Raw    string // the clause as written
}

// SLO is a parsed set of declarative objectives, evaluated in clause
// order.
type SLO struct {
	Checks []Threshold
	Source string // the original spec text
}

// Empty reports whether no clauses were configured.
func (s SLO) Empty() bool { return len(s.Checks) == 0 }

// Duration-valued SLO metrics: a percentile over one of the three
// histograms. Scalar metrics (goodput, util, max-failed, max-kills)
// come from FleetStats or the attribution itself.
var durMetrics = map[string]bool{
	"p50-wait": true, "p90-wait": true, "p99-wait": true,
	"p50-latency": true, "p90-latency": true, "p99-latency": true,
	"p50-compose": true, "p90-compose": true, "p99-compose": true,
}

var scalarMetrics = map[string]bool{
	"goodput": true, "util": true, "max-failed": true, "max-kills": true,
}

// ParseSLO parses a declarative SLO spec: whitespace- or
// comma-separated clauses of the form metric<=bound or metric>=bound.
//
//	p99-wait<=800ms p50-latency<=90s goodput>=2.5 util>=0.4 max-failed<=0
//
// Duration bounds use Go duration syntax; goodput is delivered
// GPU-seconds per second of makespan; util is the 0..1 fleet
// utilization; max-failed / max-kills bound abandoned jobs and kill
// events. "utilization" is accepted as an alias for "util".
func ParseSLO(spec string) (SLO, error) {
	slo := SLO{Source: strings.TrimSpace(spec)}
	fields := strings.FieldsFunc(spec, func(r rune) bool {
		return r == ' ' || r == ',' || r == '\t' || r == '\n'
	})
	for _, f := range fields {
		op := ""
		i := strings.Index(f, "<=")
		if i < 0 {
			i = strings.Index(f, ">=")
		}
		if i < 0 {
			return SLO{}, fmt.Errorf("slo clause %q: want metric<=bound or metric>=bound", f)
		}
		op = f[i : i+2]
		metric, bound := strings.ToLower(strings.TrimSpace(f[:i])), strings.TrimSpace(f[i+2:])
		if metric == "utilization" {
			metric = "util"
		}
		if metric == "failed" {
			metric = "max-failed"
		}
		if metric == "kills" {
			metric = "max-kills"
		}
		th := Threshold{Metric: metric, Op: op, Raw: f}
		switch {
		case durMetrics[metric]:
			d, err := time.ParseDuration(bound)
			if err != nil {
				return SLO{}, fmt.Errorf("slo clause %q: bad duration %q: %v", f, bound, err)
			}
			th.IsDur, th.Dur = true, d
		case scalarMetrics[metric]:
			v, err := strconv.ParseFloat(bound, 64)
			if err != nil {
				return SLO{}, fmt.Errorf("slo clause %q: bad number %q: %v", f, bound, err)
			}
			th.Val = v
		default:
			return SLO{}, fmt.Errorf("slo clause %q: unknown metric %q", f, metric)
		}
		slo.Checks = append(slo.Checks, th)
	}
	return slo, nil
}

// FleetStats carries run-level metrics the trace alone cannot supply:
// goodput and utilization need GPU counts per job, which spans do not
// record. Known=false marks trace-file-only analysis; SLO clauses on
// these metrics are then reported skipped rather than failed.
type FleetStats struct {
	Goodput     float64 `json:"goodput"`
	Utilization float64 `json:"utilization"`
	Known       bool    `json:"-"`
}

// Check is one evaluated SLO clause.
type Check struct {
	Clause  string `json:"clause"`
	Actual  string `json:"actual"`
	Pass    bool   `json:"pass"`
	Skipped bool   `json:"skipped,omitempty"`
}

// HealthReport is the machine-readable SLO verdict.
type HealthReport struct {
	Healthy bool    `json:"healthy"`
	Passed  int     `json:"passed"`
	Failed  int     `json:"failed"`
	Skipped int     `json:"skipped"`
	Checks  []Check `json:"checks"`
}

// Evaluate scores the SLO against an analysis. Skipped checks (metric
// unavailable without FleetStats) do not count against health.
func Evaluate(slo SLO, a *Analysis, stats FleetStats) *HealthReport {
	rep := &HealthReport{Healthy: true}
	for _, th := range slo.Checks {
		c := Check{Clause: th.Raw}
		if th.IsDur {
			actual := durMetric(th.Metric, a)
			c.Actual = actual.String()
			c.Pass = cmpDur(actual, th.Op, th.Dur)
		} else {
			var actual float64
			known := true
			switch th.Metric {
			case "goodput":
				actual, known = stats.Goodput, stats.Known
			case "util":
				actual, known = stats.Utilization, stats.Known
			case "max-failed":
				actual = float64(a.FailedJobs())
			case "max-kills":
				actual = float64(totalKills(a))
			}
			if !known {
				c.Skipped = true
				c.Actual = "n/a (trace-only analysis)"
			} else {
				c.Actual = strconv.FormatFloat(actual, 'g', -1, 64)
				c.Pass = cmpF(actual, th.Op, th.Val)
			}
		}
		switch {
		case c.Skipped:
			rep.Skipped++
		case c.Pass:
			rep.Passed++
		default:
			rep.Failed++
			rep.Healthy = false
		}
		rep.Checks = append(rep.Checks, c)
	}
	return rep
}

// durMetric resolves a percentile metric key against the histograms.
func durMetric(metric string, a *Analysis) time.Duration {
	var h *Histogram
	switch {
	case strings.HasSuffix(metric, "-wait"):
		h = a.Wait
	case strings.HasSuffix(metric, "-latency"):
		h = a.Latency
	case strings.HasSuffix(metric, "-compose"):
		h = a.Compose
	default:
		return 0
	}
	switch metric[:3] {
	case "p50":
		return h.P50()
	case "p90":
		return h.P90()
	default:
		return h.P99()
	}
}

func totalKills(a *Analysis) int {
	n := 0
	for i := range a.Jobs {
		n += a.Jobs[i].Kills
	}
	return n
}

func cmpDur(actual time.Duration, op string, bound time.Duration) bool {
	if op == "<=" {
		return actual <= bound
	}
	return actual >= bound
}

func cmpF(actual float64, op string, bound float64) bool {
	if op == "<=" {
		return actual <= bound
	}
	return actual >= bound
}
