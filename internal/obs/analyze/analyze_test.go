package analyze_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"composable/internal/obs"
	"composable/internal/obs/analyze"
	"composable/internal/orchestrator"
	"composable/internal/scengen"
)

// faultyScenario is a fixed faulty fleet run exercising every span the
// analyzer attributes: waits, composes, runs, checkpoints, restores,
// kills, and requeues (same shape as the obs golden-trace scenario).
func faultyScenario() scengen.FaultScenario {
	fleet := scengen.FleetFromSeed(1)
	fleet.Jobs = fleet.Jobs[:3]
	return scengen.SanitizeFaults(scengen.FaultScenario{
		Fleet: fleet,
		Plan:  scengen.PlanForFleet(3, fleet),
	})
}

func runFaulty(t *testing.T) (*obs.Collector, *scengen.FleetOutcome) {
	t.Helper()
	c := obs.NewCollector()
	out, err := scengen.RunFaultyFleetObserved(faultyScenario(), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	return c, out
}

// TestReadTraceMatchesCollector pins the two input paths against each
// other: analyzing a live collector and analyzing its exported Chrome
// trace must see the identical span model.
func TestReadTraceMatchesCollector(t *testing.T) {
	c, _ := runFaulty(t)
	live := analyze.FromCollector(c)

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	reread, err := analyze.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if live.Horizon != reread.Horizon {
		t.Errorf("horizon: live %v vs reread %v", live.Horizon, reread.Horizon)
	}
	if len(live.Spans) != len(reread.Spans) {
		t.Fatalf("span count: live %d vs reread %d", len(live.Spans), len(reread.Spans))
	}
	for i := range live.Spans {
		if !reflect.DeepEqual(live.Spans[i], reread.Spans[i]) {
			t.Fatalf("span %d diverges:\nlive   %+v\nreread %+v", i, live.Spans[i], reread.Spans[i])
		}
	}
}

// checkLedger asserts the attribution ledger for one analyzed run: per
// job the buckets sum to the wall span exactly and the critical path
// tiles [arrival, finish] gaplessly; completed jobs reconcile exactly
// with the orchestrator's JobResult; GPU-second accounting matches the
// run spans; and goodput × makespan reconciles with delivered GPU time.
func checkLedger(t testing.TB, tr *analyze.Trace, a *analyze.Analysis, res *orchestrator.FleetResult) {
	t.Helper()
	// Per-job run-span totals straight from the trace, for the
	// GPU-second reconciliation.
	runTotal := map[int64]time.Duration{}
	finalRun := map[int64]analyze.Span{}
	for _, sp := range tr.Spans {
		if sp.Cat == "orchestrator" && sp.Name == "run" && sp.Job >= 0 {
			runTotal[sp.Job] += sp.Dur()
			finalRun[sp.Job] = sp
		}
	}

	for i := range a.Jobs {
		ja := &a.Jobs[i]
		var sum time.Duration
		for b := analyze.Bucket(0); b < analyze.NumBuckets; b++ {
			sum += ja.Buckets[b]
		}
		if sum != ja.Wall {
			t.Errorf("job %d: buckets sum %v != wall %v (Δ %v)", ja.Job, sum, ja.Wall, ja.Wall-sum)
		}
		// Path tiles [Arrival, Finish] with no gaps or overlaps.
		cursor := ja.Arrival
		for _, seg := range ja.Path {
			if seg.Start != cursor {
				t.Errorf("job %d: path gap/overlap at %v (segment starts %v)", ja.Job, cursor, seg.Start)
				break
			}
			if seg.End <= seg.Start {
				t.Errorf("job %d: empty path segment %+v", ja.Job, seg)
			}
			cursor = seg.End
		}
		if cursor != ja.Finish {
			t.Errorf("job %d: path ends at %v, want finish %v", ja.Job, cursor, ja.Finish)
		}
	}

	if res == nil {
		return
	}
	for _, jr := range res.Jobs {
		ja := a.Job(int64(jr.ID))
		if ja == nil {
			t.Errorf("job %d in FleetResult but not in trace analysis", jr.ID)
			continue
		}
		if ja.Failed != jr.Failed {
			t.Errorf("job %d: trace failed=%v, result failed=%v", jr.ID, ja.Failed, jr.Failed)
		}
		if ja.Arrival != jr.Arrival {
			t.Errorf("job %d: trace arrival %v != result arrival %v", jr.ID, ja.Arrival, jr.Arrival)
		}
		if !jr.Failed {
			// Wall = Wait + Runtime exactly, and the final run span IS
			// the final attempt.
			if ja.Finish != jr.Finished {
				t.Errorf("job %d: trace finish %v != result finished %v", jr.ID, ja.Finish, jr.Finished)
			}
			if ja.Wall != jr.Wait+jr.Runtime {
				t.Errorf("job %d: wall %v != wait %v + runtime %v", jr.ID, ja.Wall, jr.Wait, jr.Runtime)
			}
			fr, ok := finalRun[int64(jr.ID)]
			if !ok {
				t.Errorf("job %d completed but has no run span", jr.ID)
			} else if fr.Dur() != jr.Runtime {
				t.Errorf("job %d: final run span %v != runtime %v", jr.ID, fr.Dur(), jr.Runtime)
			}
		}
		// Delivered + lost GPU-seconds = GPUs × total launched attempt
		// time (float accounting, so compare with a tolerance).
		want := float64(jr.GPUs) * runTotal[int64(jr.ID)].Seconds()
		got := jr.GPUSeconds + jr.LostGPUSeconds
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("job %d: delivered %v + lost %v = %v GPU·s, want GPUs × run spans = %v",
				jr.ID, jr.GPUSeconds, jr.LostGPUSeconds, got, want)
		}
	}
	// Fleet level: goodput is delivered GPU time over makespan.
	if res.Makespan > 0 {
		want := res.GPUSeconds / res.Makespan.Seconds()
		if math.Abs(res.Goodput-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("fleet: goodput %v != GPUSeconds/Makespan %v", res.Goodput, want)
		}
	}
}

// TestAttributionLedgerFaultyRun runs the fixed faulty scenario and
// checks the full ledger, including that fault wind-down actually got
// blamed (the scenario kills at least one attempt).
func TestAttributionLedgerFaultyRun(t *testing.T) {
	c, out := runFaulty(t)
	tr := analyze.FromCollector(c)
	a := tr.Analyze()
	checkLedger(t, tr, a, out.Result)

	if out.Result.Kills > 0 && a.Blame[analyze.BucketWinddown] == 0 {
		t.Errorf("run had %d kills but winddown blame is zero", out.Result.Kills)
	}
	if a.Blame[analyze.BucketCompute] == 0 {
		t.Error("no compute time attributed at all")
	}
	// Jobs here place instantly (capacity is free at arrival), so the
	// wait bucket is legitimately zero — but every job must still have
	// a wait histogram entry.
	if a.Wait.Count() != len(a.Jobs) {
		t.Errorf("wait histogram has %d entries, want one per job (%d)", a.Wait.Count(), len(a.Jobs))
	}
	kills := 0
	for i := range a.Jobs {
		kills += a.Jobs[i].Kills
	}
	if kills != out.Result.Kills {
		t.Errorf("trace sees %d kills, result says %d", kills, out.Result.Kills)
	}
}

// TestReportsDeterministic pins run-over-run byte identity of both
// renderers, and that the JSON report is valid JSON.
func TestReportsDeterministic(t *testing.T) {
	render := func() (string, []byte) {
		c, out := runFaulty(t)
		a := analyze.FromCollector(c).Analyze()
		stats := &analyze.FleetStats{
			Goodput:     out.Result.Goodput,
			Utilization: out.Result.Utilization,
			Known:       true,
		}
		slo, err := analyze.ParseSLO("p99-wait<=10m goodput>=0.001 max-failed<=100")
		if err != nil {
			t.Fatal(err)
		}
		health := analyze.Evaluate(slo, a, *stats)
		var txt bytes.Buffer
		if err := analyze.WriteText(&txt, a, stats, health, 5); err != nil {
			t.Fatal(err)
		}
		js, err := analyze.JSONReport(a, stats, health, 5)
		if err != nil {
			t.Fatal(err)
		}
		return txt.String(), js
	}
	txt1, js1 := render()
	txt2, js2 := render()
	if txt1 != txt2 {
		t.Error("text report differs between identical runs")
	}
	if !bytes.Equal(js1, js2) {
		t.Error("JSON report differs between identical runs")
	}
	var doc map[string]any
	if err := json.Unmarshal(js1, &doc); err != nil {
		t.Fatalf("JSON report is not valid JSON: %v", err)
	}
	if _, ok := doc["blame"]; !ok {
		t.Error("JSON report missing blame totals")
	}
}

// TestAnalyzeFromFileMatchesLive pins that the trace-file path yields
// the same analysis (and the same JSON report, minus run stats) as the
// live collector path.
func TestAnalyzeFromFileMatchesLive(t *testing.T) {
	c, _ := runFaulty(t)
	live := analyze.FromCollector(c).Analyze()

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := analyze.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromFile := tr.Analyze()

	liveJS, err := analyze.JSONReport(live, nil, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	fileJS, err := analyze.JSONReport(fromFile, nil, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJS, fileJS) {
		t.Fatalf("file-based analysis diverges from live:\nlive:\n%s\nfile:\n%s", liveJS, fileJS)
	}
}
