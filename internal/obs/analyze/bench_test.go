// The trace-analytics micro-benchmark. The harness body lives in
// internal/perfbench so that `go test -bench` here and `benchrunner
// -bench-json` measure the exact same code.
package analyze_test

import (
	"testing"

	"composable/internal/perfbench"
)

// BenchmarkAnalyzeFleetTrace measures the full analytics pipeline —
// span extraction, time attribution, percentile histograms, SLO
// evaluation and the text report — over one observed fleet run.
func BenchmarkAnalyzeFleetTrace(b *testing.B) { perfbench.BenchObsAnalyzeFleetTrace(b) }
