// Package analyze is the deterministic trace-analytics engine built on
// internal/obs: it consumes a Collector's recorded spans (or a
// re-loaded Chrome-trace JSON export) post-hoc and answers the
// questions the raw trace only shows visually — where did each job's
// time go, what is p99 wait, is the fleet inside its SLO.
//
// The engine runs entirely off the hot path: nothing here is called
// during a simulation, so the zero-alloc probe contract and the
// AllocsPerRun gates of the instrumented layers are untouched.
//
// # Attribution
//
// A job's wall time — arrival to final drain — is tiled exactly, with
// no gaps and no double counting, into six buckets:
//
//	wait        queued, holding no GPUs (orchestrator "wait" spans)
//	compose     fabric attach/recompose before launch ("compose" spans)
//	compute     productive training inside a "run" span
//	checkpoint  checkpoint writes (train "checkpoint" spans)
//	restore     checkpoint restore after a requeue ("restore" spans)
//	winddown    a killed attempt draining between the kill instant and
//	            the attempt's drain (work past the last epoch boundary
//	            is the lost-work the orchestrator accounts)
//
// The tiling is the job's critical path: an ordered, gapless list of
// segments whose durations sum to the wall span exactly (int64
// nanoseconds — a property test sweeps 100 seeded scenarios to pin
// this ledger balance). Summing buckets across jobs yields fleet-wide
// blame totals.
//
// # Histograms and percentiles
//
// Job latency (wall), queue wait, and per-episode recomposition cost
// feed fixed log₂-bucket histograms that also retain their sorted raw
// values, so p50/p90/p99 are exact nearest-rank percentiles rather
// than bucket interpolations. Identical runs produce identical bytes.
//
// # SLOs
//
// ParseSLO accepts a declarative clause list such as
//
//	p99-wait<=800ms goodput>=2.5 util>=0.4 max-failed<=0
//
// and Evaluate scores it against an Analysis plus optional FleetStats
// into a machine-readable HealthReport with per-check verdicts.
// Clauses that need run-level metrics a bare trace file cannot supply
// (goodput, utilization) are reported as skipped, not failed, when
// stats are unknown.
//
// cmd/tracectl is the CLI front end; fleetsim/chaossim expose the same
// engine via -report/-slo, and mcsd serves it on admin GET /api/health.
package analyze
