package analyze

import (
	"math/bits"
	"sort"
	"time"
)

// HistBuckets is the fixed bucket count of every histogram: bucket 0
// holds values under 1ms, bucket i (i ≥ 1) holds [1ms·2^(i-1),
// 1ms·2^i), and the last bucket absorbs everything larger (≈ 8.7
// years — effectively unbounded for sim runs).
const HistBuckets = 40

// Histogram is a fixed-bucket log₂-scaled duration histogram. The
// buckets are for display; the raw values are retained (sorted at
// seal time) so P50/P90/P99 are exact nearest-rank percentiles, not
// bucket interpolations. Determinism is inherited from the trace: the
// same run yields the same values, hence the same bytes.
type Histogram struct {
	Name   string
	Counts [HistBuckets]int
	values []time.Duration
	sealed bool
}

// NewHistogram returns an empty histogram carrying the metric name.
func NewHistogram(name string) *Histogram {
	return &Histogram{Name: name}
}

// Add records one value (negative values clamp to zero).
func (h *Histogram) Add(v time.Duration) {
	if v < 0 {
		v = 0
	}
	h.Counts[histBucket(v)]++
	h.values = append(h.values, v)
	h.sealed = false
}

// histBucket maps a value to its bucket index.
func histBucket(v time.Duration) int {
	if v < time.Millisecond {
		return 0
	}
	// bits.Len gives floor(log2)+1; v/1ms ≥ 1 here.
	b := bits.Len64(uint64(v / time.Millisecond))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketBounds returns bucket i's [lo, hi) range.
func BucketBounds(i int) (lo, hi time.Duration) {
	if i <= 0 {
		return 0, time.Millisecond
	}
	return time.Millisecond << (i - 1), time.Millisecond << i
}

func (h *Histogram) seal() {
	sort.Slice(h.values, func(i, j int) bool { return h.values[i] < h.values[j] })
	h.sealed = true
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int { return len(h.values) }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() time.Duration {
	if !h.sealed {
		h.seal()
	}
	if len(h.values) == 0 {
		return 0
	}
	return h.values[0]
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() time.Duration {
	if !h.sealed {
		h.seal()
	}
	if len(h.values) == 0 {
		return 0
	}
	return h.values[len(h.values)-1]
}

// Percentile returns the exact nearest-rank percentile: the smallest
// recorded value v such that at least p% of values are ≤ v. Returns 0
// on an empty histogram.
func (h *Histogram) Percentile(p float64) time.Duration {
	if !h.sealed {
		h.seal()
	}
	n := len(h.values)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return h.values[0]
	}
	if p >= 100 {
		return h.values[n-1]
	}
	rank := p100ceil(p, n)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return h.values[rank-1]
}

// p100ceil computes ceil(p·n/100) in a way that is exact for the
// whole-number percentiles SLOs use (p50/p90/p99), avoiding float
// artifacts like 0.29·100 ≠ 29.
func p100ceil(p float64, n int) int {
	if ip := int(p); float64(ip) == p {
		// integer percentile: pure integer ceil
		return (ip*n + 99) / 100
	}
	r := p * float64(n) / 100
	rank := int(r)
	if float64(rank) < r {
		rank++
	}
	return rank
}

// P50 is Percentile(50).
func (h *Histogram) P50() time.Duration { return h.Percentile(50) }

// P90 is Percentile(90).
func (h *Histogram) P90() time.Duration { return h.Percentile(90) }

// P99 is Percentile(99).
func (h *Histogram) P99() time.Duration { return h.Percentile(99) }
