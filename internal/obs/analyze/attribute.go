package analyze

import (
	"sort"
	"time"
)

// Bucket is one attribution category of a job's wall time.
type Bucket uint8

// The attribution buckets, in render order.
const (
	BucketWait Bucket = iota
	BucketCompose
	BucketCompute
	BucketCheckpoint
	BucketRestore
	BucketWinddown
	NumBuckets
)

var bucketNames = [NumBuckets]string{
	"wait", "compose", "compute", "checkpoint", "restore", "winddown",
}

// String returns the bucket's name.
func (b Bucket) String() string {
	if b < NumBuckets {
		return bucketNames[b]
	}
	return "unknown"
}

// Segment is one interval of a job's critical path, attributed to a
// single bucket.
type Segment struct {
	Bucket Bucket
	Start  time.Duration
	End    time.Duration
}

// Dur returns the segment's extent.
func (s Segment) Dur() time.Duration { return s.End - s.Start }

// JobAttribution is one job's complete time accounting: an ordered,
// gapless critical path tiling [Arrival, Finish], and per-bucket
// totals that sum to Wall exactly.
type JobAttribution struct {
	Job      int64
	Arrival  time.Duration
	Finish   time.Duration
	Wall     time.Duration
	Buckets  [NumBuckets]time.Duration
	Attempts int // scheduling attempts (wait episodes)
	Kills    int
	Failed   bool // abandoned after exhausting retries
	Path     []Segment
}

// Analysis is the full post-hoc digest of one run's trace.
type Analysis struct {
	Jobs    []JobAttribution // ascending job ID
	Blame   [NumBuckets]time.Duration
	Wait    *Histogram // per-job total queue wait
	Latency *Histogram // per completed job: arrival → finish wall
	Compose *Histogram // per compose episode (attach/recompose cost)
	Horizon time.Duration
}

// FailedJobs counts jobs the trace marks abandoned.
func (a *Analysis) FailedJobs() int {
	n := 0
	for i := range a.Jobs {
		if a.Jobs[i].Failed {
			n++
		}
	}
	return n
}

// Job returns the attribution for one job ID, or nil.
func (a *Analysis) Job(id int64) *JobAttribution {
	for i := range a.Jobs {
		if a.Jobs[i].Job == id {
			return &a.Jobs[i]
		}
	}
	return nil
}

// Slowest returns up to n jobs ordered by descending wall time (ties
// by ascending job ID, so the order is deterministic).
func (a *Analysis) Slowest(n int) []*JobAttribution {
	idx := make([]int, len(a.Jobs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		jx, jy := &a.Jobs[idx[x]], &a.Jobs[idx[y]]
		if jx.Wall != jy.Wall {
			return jx.Wall > jy.Wall
		}
		return jx.Job < jy.Job
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]*JobAttribution, n)
	for i := 0; i < n; i++ {
		out[i] = &a.Jobs[idx[i]]
	}
	return out
}

// jobSpans groups one job's raw material for attribution.
type jobSpans struct {
	phases   []Span          // wait/compose/run spans, begin order
	overhead []Span          // checkpoint/restore train spans
	kills    []time.Duration // kill instant times
	failed   bool
}

// Analyze attributes every job's wall time, totals the fleet blame,
// and builds the latency/wait/compose histograms. The input trace is
// not modified; calling Analyze twice yields identical results.
func (t *Trace) Analyze() *Analysis {
	byJob := map[int64]*jobSpans{}
	var ids []int64
	get := func(id int64) *jobSpans {
		js, ok := byJob[id]
		if !ok {
			js = &jobSpans{}
			byJob[id] = js
			ids = append(ids, id)
		}
		return js
	}
	for i := range t.Spans {
		sp := &t.Spans[i]
		if sp.Job < 0 {
			continue
		}
		switch sp.Cat {
		case "orchestrator":
			js := get(sp.Job)
			switch sp.Name {
			case "wait", "compose", "run":
				js.phases = append(js.phases, *sp)
			case "kill":
				js.kills = append(js.kills, sp.Start)
			case "fail":
				js.failed = true
			}
		case "train":
			switch sp.Name {
			case "checkpoint", "restore":
				js := get(sp.Job)
				js.overhead = append(js.overhead, *sp)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	a := &Analysis{
		Horizon: t.Horizon,
		Wait:    NewHistogram("wait"),
		Latency: NewHistogram("latency"),
		Compose: NewHistogram("compose"),
	}
	for _, id := range ids {
		js := byJob[id]
		if len(js.phases) == 0 {
			continue // instants only: nothing to attribute
		}
		ja := attributeJob(id, js)
		a.Wait.Add(ja.Buckets[BucketWait])
		if !ja.Failed {
			a.Latency.Add(ja.Wall)
		}
		for i := range js.phases {
			if js.phases[i].Name == "compose" {
				a.Compose.Add(js.phases[i].Dur())
			}
		}
		for b := Bucket(0); b < NumBuckets; b++ {
			a.Blame[b] += ja.Buckets[b]
		}
		a.Jobs = append(a.Jobs, ja)
	}
	a.Wait.seal()
	a.Latency.seal()
	a.Compose.seal()
	return a
}

// attributeJob tiles one job's phase spans into critical-path
// segments. The orchestrator's span discipline guarantees the phases
// abut (wait ends where compose begins, run ends where the next wait
// begins), so the segments tile [arrival, finish] with no gaps; the
// cursor sweep inside each phase guarantees no double counting, so the
// bucket totals sum to the wall span exactly.
func attributeJob(id int64, js *jobSpans) JobAttribution {
	ja := JobAttribution{Job: id, Failed: js.failed, Kills: len(js.kills)}
	ja.Arrival = js.phases[0].Start
	for i := range js.phases {
		p := &js.phases[i]
		if p.End > ja.Finish {
			ja.Finish = p.End
		}
		if p.Name == "wait" {
			ja.Attempts++
		}
	}
	ja.Wall = ja.Finish - ja.Arrival

	killOf := assignKills(js)
	for i := range js.phases {
		p := &js.phases[i]
		switch p.Name {
		case "wait":
			addSegment(&ja, BucketWait, p.Start, p.End)
		case "compose":
			end := p.End
			if killOf[i] >= 0 {
				end = killOf[i]
			}
			addSegment(&ja, BucketCompose, p.Start, end)
			if killOf[i] >= 0 {
				addSegment(&ja, BucketWinddown, killOf[i], p.End)
			}
		case "run":
			attributeRun(&ja, p, killOf[i], js)
		}
	}
	return ja
}

// assignKills maps each kill instant to the phase span in progress
// when it fired: the last phase that began at or before the kill.
// Containment alone would be ambiguous at boundaries — a drain, the
// requeue, and an immediate re-placement can all share one sim instant
// — but begin order is not. Returns killOf[i] = earliest kill time
// charged to phase i, clamped into the span, or -1. Wait spans take no
// kills (a queued job holds nothing to kill).
func assignKills(js *jobSpans) []time.Duration {
	killOf := make([]time.Duration, len(js.phases))
	for i := range killOf {
		killOf[i] = -1
	}
	for _, k := range js.kills {
		idx := -1
		for i := range js.phases {
			if js.phases[i].Start <= k {
				idx = i
			} else {
				break // phases are in begin order
			}
		}
		if idx < 0 || js.phases[idx].Name == "wait" {
			continue
		}
		at := k
		if at > js.phases[idx].End {
			at = js.phases[idx].End
		}
		if killOf[idx] < 0 || at < killOf[idx] {
			killOf[idx] = at
		}
	}
	return killOf
}

// attributeRun splits one run span into compute, checkpoint, restore
// and (after a kill) winddown segments. Overhead sub-intervals are
// clipped to the run span and swept with a cursor: whatever a later
// interval overlaps with an earlier one is claimed once, never twice,
// and the gaps between them are compute. killAt is the kill charged to
// this run span (-1 = none); its winddown tail competes in the same
// sweep, so an overlapping checkpoint is still counted once.
func attributeRun(ja *JobAttribution, run *Span, killAt time.Duration, js *jobSpans) {
	type sub struct {
		start, end time.Duration
		bucket     Bucket
	}
	var subs []sub
	for i := range js.overhead {
		o := &js.overhead[i]
		s, e := o.Start, o.End
		if s < run.Start {
			s = run.Start
		}
		if e > run.End {
			e = run.End
		}
		if s >= e {
			continue
		}
		b := BucketCheckpoint
		if o.Name == "restore" {
			b = BucketRestore
		}
		subs = append(subs, sub{s, e, b})
	}
	if killAt >= 0 {
		subs = append(subs, sub{killAt, run.End, BucketWinddown})
	}
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].start != subs[j].start {
			return subs[i].start < subs[j].start
		}
		if subs[i].end != subs[j].end {
			return subs[i].end < subs[j].end
		}
		return subs[i].bucket < subs[j].bucket
	})
	cursor := run.Start
	for _, s := range subs {
		s0 := s.start
		if s0 < cursor {
			s0 = cursor // earlier interval already claimed the overlap
		}
		if s0 >= s.end {
			continue
		}
		addSegment(ja, BucketCompute, cursor, s0)
		addSegment(ja, s.bucket, s0, s.end)
		cursor = s.end
	}
	addSegment(ja, BucketCompute, cursor, run.End)
}

// addSegment appends a non-empty segment and charges its bucket.
func addSegment(ja *JobAttribution, b Bucket, start, end time.Duration) {
	if end <= start {
		return
	}
	ja.Buckets[b] += end - start
	ja.Path = append(ja.Path, Segment{Bucket: b, Start: start, End: end})
}
