package analyze

import (
	"testing"
	"time"
)

// TestParseMicros pins the exact inverse of the exporter's appendMicros
// rendering: integer microseconds with an optional three-digit
// fractional part, no float round trip.
func TestParseMicros(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"0", 0},
		{"1", time.Microsecond},
		{"1.5", 1500 * time.Nanosecond},
		{"1.500", 1500 * time.Nanosecond},
		{"123.456", 123456 * time.Nanosecond},
		{"1000000", time.Second},
		{"999999.999", time.Second - time.Nanosecond},
		{"", 0},
	}
	for _, c := range cases {
		got, err := parseMicros(c.in)
		if err != nil {
			t.Errorf("parseMicros(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseMicros(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := parseMicros("1.2345"); err == nil {
		t.Error("sub-nanosecond fraction should be rejected, got nil error")
	}
	if _, err := parseMicros("abc"); err == nil {
		t.Error("garbage timestamp should be rejected, got nil error")
	}
}

// TestHistogramPercentiles pins nearest-rank semantics: the percentile
// is an actual recorded value, exact for whole-number percentiles.
func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram("t")
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if got := h.P50(); got != 50*time.Millisecond {
		t.Errorf("P50 = %v, want 50ms", got)
	}
	if got := h.P90(); got != 90*time.Millisecond {
		t.Errorf("P90 = %v, want 90ms", got)
	}
	if got := h.P99(); got != 99*time.Millisecond {
		t.Errorf("P99 = %v, want 99ms", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("P100 = %v, want 100ms", got)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Errorf("Min = %v, want 1ms", got)
	}

	// Small n: p99 of 3 values is the max (ceil(0.99*3) = 3).
	s := NewHistogram("s")
	s.Add(time.Second)
	s.Add(2 * time.Second)
	s.Add(3 * time.Second)
	if got := s.P99(); got != 3*time.Second {
		t.Errorf("P99 of 3 values = %v, want 3s", got)
	}
	if got := s.P50(); got != 2*time.Second {
		t.Errorf("P50 of 3 values = %v, want 2s", got)
	}

	empty := NewHistogram("e")
	if got := empty.P99(); got != 0 {
		t.Errorf("P99 of empty = %v, want 0", got)
	}
}

// TestHistogramBuckets pins the fixed log₂ bucket layout.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    time.Duration
		want int
	}{
		{0, 0},
		{999 * time.Microsecond, 0},
		{time.Millisecond, 1},
		{1999 * time.Microsecond, 1},
		{2 * time.Millisecond, 2},
		{3 * time.Millisecond, 2},
		{4 * time.Millisecond, 3},
		{time.Second, 10},
		{365 * 24 * time.Hour, 35},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.want {
			t.Errorf("histBucket(%v) = %d, want %d", c.v, got, c.want)
		}
		lo, hi := BucketBounds(histBucket(c.v))
		if c.v < lo || c.v >= hi {
			t.Errorf("value %v outside its bucket bounds [%v, %v)", c.v, lo, hi)
		}
	}
}

// TestParseSLO covers syntax, aliases and rejection.
func TestParseSLO(t *testing.T) {
	slo, err := ParseSLO("p99-wait<=800ms, goodput>=2.5 utilization>=0.4\nmax-failed<=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(slo.Checks) != 4 {
		t.Fatalf("got %d checks, want 4", len(slo.Checks))
	}
	if c := slo.Checks[0]; !c.IsDur || c.Dur != 800*time.Millisecond || c.Op != "<=" {
		t.Errorf("clause 0 parsed wrong: %+v", c)
	}
	if c := slo.Checks[2]; c.Metric != "util" || c.Val != 0.4 {
		t.Errorf("utilization alias parsed wrong: %+v", c)
	}
	if c := slo.Checks[3]; c.Metric != "max-failed" || c.Val != 0 {
		t.Errorf("max-failed parsed wrong: %+v", c)
	}

	for _, bad := range []string{"p99-wait<800ms", "nope<=1s", "p99-wait<=fast", "goodput>=abc"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q): want error, got nil", bad)
		}
	}
	if s, err := ParseSLO("   "); err != nil || !s.Empty() {
		t.Errorf("blank spec: want empty SLO, got %+v, %v", s, err)
	}
}

// TestEvaluateSkipsUnknownStats pins trace-file-only behavior: goodput
// and util clauses are skipped (not failed) without FleetStats, and
// skipped checks never flip health.
func TestEvaluateSkipsUnknownStats(t *testing.T) {
	a := &Analysis{
		Wait:    NewHistogram("wait"),
		Latency: NewHistogram("latency"),
		Compose: NewHistogram("compose"),
	}
	a.Wait.Add(100 * time.Millisecond)
	a.Latency.Add(2 * time.Second)

	slo, err := ParseSLO("p99-wait<=1s goodput>=100 util>=0.99")
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(slo, a, FleetStats{})
	if !rep.Healthy || rep.Passed != 1 || rep.Skipped != 2 || rep.Failed != 0 {
		t.Fatalf("trace-only report = %+v, want healthy with 1 pass / 2 skipped", rep)
	}

	rep = Evaluate(slo, a, FleetStats{Goodput: 1, Utilization: 0.5, Known: true})
	if rep.Healthy || rep.Failed != 2 {
		t.Fatalf("with stats known, impossible floors must fail: %+v", rep)
	}
}

// TestPathString pins the compressed critical-path rendering.
func TestPathString(t *testing.T) {
	path := []Segment{
		{BucketWait, 0, time.Second},
		{BucketCompose, time.Second, time.Second + 100*time.Millisecond},
		{BucketCompute, time.Second + 100*time.Millisecond, 2 * time.Second},
		{BucketCompute, 2 * time.Second, 3 * time.Second},
		{BucketWinddown, 3 * time.Second, 3500 * time.Millisecond},
	}
	got := PathString(path)
	want := "wait 1s → compose 100ms → compute 1.9s → winddown 500ms"
	if got != want {
		t.Errorf("PathString = %q, want %q", got, want)
	}
	if got := PathString(nil); got != "" {
		t.Errorf("PathString(nil) = %q, want empty", got)
	}
}
