package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// bucketsJSON renders a [NumBuckets]time.Duration with fixed field
// order; int64 nanoseconds keep the bytes exact.
type bucketsJSON struct {
	WaitNs       int64 `json:"waitNs"`
	ComposeNs    int64 `json:"composeNs"`
	ComputeNs    int64 `json:"computeNs"`
	CheckpointNs int64 `json:"checkpointNs"`
	RestoreNs    int64 `json:"restoreNs"`
	WinddownNs   int64 `json:"winddownNs"`
}

func toBucketsJSON(b [NumBuckets]time.Duration) bucketsJSON {
	return bucketsJSON{
		WaitNs:       int64(b[BucketWait]),
		ComposeNs:    int64(b[BucketCompose]),
		ComputeNs:    int64(b[BucketCompute]),
		CheckpointNs: int64(b[BucketCheckpoint]),
		RestoreNs:    int64(b[BucketRestore]),
		WinddownNs:   int64(b[BucketWinddown]),
	}
}

type histJSON struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	P50Ns int64  `json:"p50Ns"`
	P90Ns int64  `json:"p90Ns"`
	P99Ns int64  `json:"p99Ns"`
	MinNs int64  `json:"minNs"`
	MaxNs int64  `json:"maxNs"`
}

func toHistJSON(h *Histogram) histJSON {
	return histJSON{
		Name:  h.Name,
		Count: h.Count(),
		P50Ns: int64(h.P50()),
		P90Ns: int64(h.P90()),
		P99Ns: int64(h.P99()),
		MinNs: int64(h.Min()),
		MaxNs: int64(h.Max()),
	}
}

type jobJSON struct {
	Job      int64       `json:"job"`
	WallNs   int64       `json:"wallNs"`
	Attempts int         `json:"attempts"`
	Kills    int         `json:"kills,omitempty"`
	Failed   bool        `json:"failed,omitempty"`
	Buckets  bucketsJSON `json:"buckets"`
}

type reportJSON struct {
	Jobs       int           `json:"jobs"`
	FailedJobs int           `json:"failedJobs"`
	HorizonNs  int64         `json:"horizonNs"`
	Blame      bucketsJSON   `json:"blame"`
	Histograms []histJSON    `json:"histograms"`
	Slowest    []jobJSON     `json:"slowest"`
	Stats      *FleetStats   `json:"stats,omitempty"`
	SLO        *HealthReport `json:"slo,omitempty"`
}

// JSONReport renders the analysis (plus optional run stats and SLO
// verdict) as deterministic indented JSON: struct field order is
// fixed, durations are int64 nanoseconds, and identical runs yield
// identical bytes. stats and health may be nil.
func JSONReport(a *Analysis, stats *FleetStats, health *HealthReport, topN int) ([]byte, error) {
	rep := reportJSON{
		Jobs:       len(a.Jobs),
		FailedJobs: a.FailedJobs(),
		HorizonNs:  int64(a.Horizon),
		Blame:      toBucketsJSON(a.Blame),
		Histograms: []histJSON{toHistJSON(a.Latency), toHistJSON(a.Wait), toHistJSON(a.Compose)},
	}
	for _, ja := range a.Slowest(topN) {
		rep.Slowest = append(rep.Slowest, jobJSON{
			Job:      ja.Job,
			WallNs:   int64(ja.Wall),
			Attempts: ja.Attempts,
			Kills:    ja.Kills,
			Failed:   ja.Failed,
			Buckets:  toBucketsJSON(ja.Buckets),
		})
	}
	if stats != nil && stats.Known {
		rep.Stats = stats
	}
	rep.SLO = health
	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteText renders the human report: fleet blame totals, histogram
// summaries with exact percentiles, the top-N slowest jobs with their
// per-bucket split and compressed critical paths, and the SLO verdict
// when one was evaluated. Output is deterministic.
func WriteText(w io.Writer, a *Analysis, stats *FleetStats, health *HealthReport, topN int) error {
	var sb strings.Builder
	failed := a.FailedJobs()
	fmt.Fprintf(&sb, "trace analytics: %d jobs over %s", len(a.Jobs), a.Horizon)
	if failed > 0 {
		fmt.Fprintf(&sb, " (%d failed)", failed)
	}
	sb.WriteByte('\n')
	if stats != nil && stats.Known {
		fmt.Fprintf(&sb, "fleet: goodput %.3f GPU·s/s, utilization %.3f\n", stats.Goodput, stats.Utilization)
	}

	sb.WriteString("\ntime attribution (fleet blame):\n")
	var total time.Duration
	for b := Bucket(0); b < NumBuckets; b++ {
		total += a.Blame[b]
	}
	for b := Bucket(0); b < NumBuckets; b++ {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(a.Blame[b]) / float64(total)
		}
		fmt.Fprintf(&sb, "  %-11s %14s %6.1f%%\n", b.String(), a.Blame[b], pct)
	}
	fmt.Fprintf(&sb, "  %-11s %14s\n", "total", total)

	sb.WriteString("\nhistograms (exact percentiles):\n")
	fmt.Fprintf(&sb, "  %-9s %6s %12s %12s %12s %12s\n", "metric", "count", "p50", "p90", "p99", "max")
	for _, h := range []*Histogram{a.Latency, a.Wait, a.Compose} {
		fmt.Fprintf(&sb, "  %-9s %6d %12s %12s %12s %12s\n",
			h.Name, h.Count(), h.P50(), h.P90(), h.P99(), h.Max())
	}

	slowest := a.Slowest(topN)
	if len(slowest) > 0 {
		fmt.Fprintf(&sb, "\nslowest %d jobs:\n", len(slowest))
		fmt.Fprintf(&sb, "  %4s %12s %3s %12s %12s %12s %10s %10s %10s %s\n",
			"job", "wall", "att", "wait", "compose", "compute", "ckpt", "restore", "winddown", "")
		for _, ja := range slowest {
			mark := ""
			if ja.Failed {
				mark = "FAILED"
			}
			fmt.Fprintf(&sb, "  %4d %12s %3d %12s %12s %12s %10s %10s %10s %s\n",
				ja.Job, ja.Wall, ja.Attempts,
				ja.Buckets[BucketWait], ja.Buckets[BucketCompose], ja.Buckets[BucketCompute],
				ja.Buckets[BucketCheckpoint], ja.Buckets[BucketRestore], ja.Buckets[BucketWinddown],
				mark)
		}
		sb.WriteString("\ncritical paths:\n")
		for _, ja := range slowest {
			fmt.Fprintf(&sb, "  job %-3d %s\n", ja.Job, PathString(ja.Path))
		}
	}

	if health != nil {
		verdict := "PASS"
		if !health.Healthy {
			verdict = "FAIL"
		}
		fmt.Fprintf(&sb, "\nslo: %s (%d passed, %d failed, %d skipped)\n",
			verdict, health.Passed, health.Failed, health.Skipped)
		for _, c := range health.Checks {
			tag := "pass"
			if c.Skipped {
				tag = "skip"
			} else if !c.Pass {
				tag = "FAIL"
			}
			fmt.Fprintf(&sb, "  [%s] %-24s actual %s\n", tag, c.Clause, c.Actual)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// PathString compresses a critical path for one-line display: runs of
// consecutive same-bucket segments merge, rendered as
// "wait 1.2s → compose 80ms → compute 3.4s".
func PathString(path []Segment) string {
	var sb strings.Builder
	i := 0
	for i < len(path) {
		b := path[i].Bucket
		var d time.Duration
		for i < len(path) && path[i].Bucket == b {
			d += path[i].Dur()
			i++
		}
		if sb.Len() > 0 {
			sb.WriteString(" → ")
		}
		sb.WriteString(b.String())
		sb.WriteByte(' ')
		sb.WriteString(d.String())
	}
	return sb.String()
}
