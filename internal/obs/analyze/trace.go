package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"composable/internal/obs"
)

// Span is the analyzer's flattened view of one trace event. Only the
// attributes the analysis keys on survive (job, attempt, cause); the
// rest of the exporter's args are irrelevant to attribution and are
// dropped so that a Trace built live from a Collector and one re-read
// from its exported JSON are identical.
type Span struct {
	Name    string
	Cat     string
	Start   time.Duration
	End     time.Duration
	Instant bool
	Job     int64 // "job" attribute; -1 when absent
	Attempt int64 // "attempt" attribute; -1 when absent
	Cause   string
}

// Dur returns the span's extent (zero for instants).
func (s *Span) Dur() time.Duration { return s.End - s.Start }

// Trace is an ordered span set ready for analysis: spans appear in
// begin order (the exporter's order), and Horizon is the latest sim
// time the run observed.
type Trace struct {
	Spans   []Span
	Horizon time.Duration
}

// FromCollector snapshots a finished run's collector into a Trace.
// Open spans are clamped to the collector's max time, exactly as the
// trace exporter renders them.
func FromCollector(c *obs.Collector) *Trace {
	t := &Trace{Horizon: c.MaxTime()}
	t.Spans = make([]Span, 0, c.SpanCount())
	c.VisitSpans(func(v obs.SpanView) {
		sp := Span{
			Name:    v.Name,
			Cat:     v.Cat.Name(),
			Start:   v.Start,
			End:     v.End,
			Instant: v.Instant,
			Job:     -1,
			Attempt: -1,
		}
		if j, ok := v.AttrInt("job"); ok {
			sp.Job = j
		}
		if a, ok := v.AttrInt("attempt"); ok {
			sp.Attempt = a
		}
		if cause, ok := v.AttrStr("cause"); ok {
			sp.Cause = cause
		}
		t.Spans = append(t.Spans, sp)
	})
	return t
}

// rawEvent mirrors one exported trace_event line. Numbers stay textual
// (json.Number) so timestamps can be re-parsed with the exporter's
// exact integer math instead of a float round trip.
type rawEvent struct {
	Ph   string                     `json:"ph"`
	Ts   json.Number                `json:"ts"`
	Dur  json.Number                `json:"dur"`
	Name string                     `json:"name"`
	Cat  string                     `json:"cat"`
	Args map[string]json.RawMessage `json:"args"`
}

// ReadTrace rebuilds a Trace from a Chrome trace_event JSON export
// (obs.WriteTrace output, or any trace using the same µs timestamps).
// The parse inverts appendMicros exactly — integer microseconds plus
// an optional three-digit fractional part — so a round-tripped trace
// analyzes byte-identically to the live collector.
func ReadTrace(r io.Reader) (*Trace, error) {
	var doc struct {
		TraceEvents []rawEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("analyze: parse trace: %w", err)
	}
	t := &Trace{}
	for i := range doc.TraceEvents {
		e := &doc.TraceEvents[i]
		switch e.Ph {
		case "C":
			ts, err := parseMicros(e.Ts.String())
			if err != nil {
				return nil, fmt.Errorf("analyze: counter sample ts %q: %w", e.Ts, err)
			}
			if ts > t.Horizon {
				t.Horizon = ts
			}
		case "X", "i":
			ts, err := parseMicros(e.Ts.String())
			if err != nil {
				return nil, fmt.Errorf("analyze: span ts %q: %w", e.Ts, err)
			}
			sp := Span{
				Name:    e.Name,
				Cat:     e.Cat,
				Start:   ts,
				End:     ts,
				Instant: e.Ph == "i",
				Job:     -1,
				Attempt: -1,
			}
			if e.Ph == "X" {
				dur, err := parseMicros(e.Dur.String())
				if err != nil {
					return nil, fmt.Errorf("analyze: span dur %q: %w", e.Dur, err)
				}
				sp.End = ts + dur
			}
			if v, ok := argInt(e.Args, "job"); ok {
				sp.Job = v
			}
			if v, ok := argInt(e.Args, "attempt"); ok {
				sp.Attempt = v
			}
			if s, ok := argStr(e.Args, "cause"); ok {
				sp.Cause = s
			}
			if sp.End > t.Horizon {
				t.Horizon = sp.End
			}
			t.Spans = append(t.Spans, sp)
		}
	}
	return t, nil
}

// parseMicros converts a trace timestamp — whole microseconds with an
// optional fractional part — back to nanoseconds exactly. Fractions
// longer than three digits (sub-ns, which obs never emits) are an
// error rather than a silent truncation.
func parseMicros(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil // absent field (e.g. "dur" on a malformed line)
	}
	whole, frac := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		whole, frac = s[:i], s[i+1:]
	}
	us, err := strconv.ParseInt(whole, 10, 64)
	if err != nil {
		return 0, err
	}
	ns := us * 1000
	if frac != "" {
		if len(frac) > 3 {
			return 0, fmt.Errorf("sub-nanosecond timestamp %q", s)
		}
		for len(frac) < 3 {
			frac += "0"
		}
		f, err := strconv.ParseInt(frac, 10, 64)
		if err != nil {
			return 0, err
		}
		if ns < 0 {
			ns -= f
		} else {
			ns += f
		}
	}
	return time.Duration(ns), nil
}

// argInt extracts an integer span attribute from a raw args object.
func argInt(args map[string]json.RawMessage, key string) (int64, bool) {
	raw, ok := args[key]
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// argStr extracts a string span attribute from a raw args object.
func argStr(args map[string]json.RawMessage, key string) (string, bool) {
	raw, ok := args[key]
	if !ok {
		return "", false
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", false
	}
	return s, true
}
