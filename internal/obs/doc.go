// Package obs is the simulator's observability layer: sim-time-native
// span tracing, sampled metrics, and deterministic exporters, built for
// the same two contracts the rest of the repo lives under.
//
// Determinism: nothing in this package reads the wall clock or iterates a
// map. Spans are stored in begin order, metrics in registration order, and
// samples on a fixed sim-time interval, so every exporter —
// Chrome trace_event JSON ([Collector.WriteTrace], loadable in Perfetto or
// chrome://tracing with sim time mapped to microseconds), metrics CSV
// ([Collector.WriteMetricsCSV]) and the ASCII run summary
// ([Collector.Summary]) — emits byte-identical output for byte-identical
// runs. The run-twice CLI tests and the golden trace test pin this.
//
// Zero overhead when off: every instrumented seam in sim, fabric, train,
// orchestrator and faults guards its emit with a nil check
// (`if c != nil { c.Begin(...) }`), so a disabled collector costs one
// predictable branch and no allocations — the AllocsPerRun gates in
// internal/perfbench run the instrumented code with a nil collector and
// hold the pre-instrumentation ceilings. The guarded-call pattern itself
// is pinned as a simlint hotalloc golden package (testdata/src/obsguard).
//
// The package also absorbs internal/telemetry's event-series API:
// [Series], [Track], [TrackEvent], [Recorder] and [Probe] are re-exported
// aliases, so new code has one import for spans, metrics and event tracks
// while the telemetry CSV/ASCII bytes stay exactly as the determinism
// tests pin them.
package obs
