// Package nvlink models second-generation NVLink: per-brick bandwidth and
// the DGX-1V "hybrid cube mesh" wiring used by the host servers' eight
// local V100 SXM2 GPUs (paper Figure 7).
package nvlink

import (
	"time"

	"composable/internal/units"
)

// BrickRaw is the raw per-direction bandwidth of one NVLink 2.0 brick.
// A V100 has six bricks for 300 GB/s total bidirectional bandwidth.
var BrickRaw = units.GBps(25)

// BrickEfficiency is the achievable fraction of raw brick bandwidth for
// bulk transfers, calibrated against Table IV: the L-L pair (a double-brick
// edge) measures 72.37 GB/s bidirectional = 36.185 GB/s per direction over
// 50 GB/s raw.
const BrickEfficiency = 0.7237

// EdgeBandwidth returns the effective per-direction bandwidth of an edge
// with the given brick count.
func EdgeBandwidth(bricks int) units.BytesPerSec {
	return units.BytesPerSec(float64(BrickRaw) * BrickEfficiency * float64(bricks))
}

// EdgeLatency is the one-hop NVLink traversal latency. Together with the
// fabric's 1.3 µs endpoint overhead it reproduces Table IV's 1.85 µs L-L
// p2p write latency.
const EdgeLatency = 550 * time.Nanosecond

// Protocol is the protocol label reported for NVLink paths (Table IV).
const Protocol = "NVLink"

// Edge is one NVLink connection of the cube mesh.
type Edge struct {
	A, B   int // GPU indices
	Bricks int
}

// CubeMesh returns the DGX-1V hybrid cube mesh for eight GPUs: two quads
// (0-3, 4-7), each quad a ring plus one diagonal pair of double links, and
// double links joining the quads. Every GPU uses exactly six bricks.
//
// Edges (bricks): pair partners 0-1, 2-3, 4-5, 6-7 (2); quad rings
// 0-3, 1-2, 4-7, 5-6 (1); diagonals 0-2, 1-3, 4-6, 5-7 (1); cross links
// 0-4, 1-5, 2-6, 3-7 (2).
func CubeMesh() []Edge {
	return []Edge{
		{0, 1, 2}, {2, 3, 2}, {4, 5, 2}, {6, 7, 2},
		{0, 3, 1}, {1, 2, 1}, {4, 7, 1}, {5, 6, 1},
		{0, 2, 1}, {1, 3, 1}, {4, 6, 1}, {5, 7, 1},
		{0, 4, 2}, {1, 5, 2}, {2, 6, 2}, {3, 7, 2},
	}
}

// BricksPerGPU is the NVLink brick count of a V100.
const BricksPerGPU = 6

// RingOrder returns a Hamiltonian cycle over the cube mesh used as the
// primary collective ring for n local GPUs (n must divide into the mesh;
// supported values are 2, 4 and 8). The 8-GPU ring
// 0-1-2-3-7-6-5-4-0 uses only existing mesh edges.
func RingOrder(n int) []int {
	switch n {
	case 2:
		return []int{0, 1}
	case 4:
		return []int{0, 1, 2, 3}
	case 8:
		return []int{0, 1, 2, 3, 7, 6, 5, 4}
	default:
		// Fall back to index order; the fabric will route over
		// multi-hop paths where no direct edge exists.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}
}
