package nvlink

import (
	"math"
	"testing"
)

func TestCubeMeshBrickBudget(t *testing.T) {
	// Every GPU in the DGX-1V hybrid cube mesh uses exactly its six
	// bricks.
	perGPU := map[int]int{}
	for _, e := range CubeMesh() {
		perGPU[e.A] += e.Bricks
		perGPU[e.B] += e.Bricks
	}
	if len(perGPU) != 8 {
		t.Fatalf("mesh covers %d GPUs, want 8", len(perGPU))
	}
	for g, bricks := range perGPU {
		if bricks != BricksPerGPU {
			t.Errorf("GPU %d uses %d bricks, want %d", g, bricks, BricksPerGPU)
		}
	}
}

func TestCubeMeshNoDuplicateEdges(t *testing.T) {
	seen := map[[2]int]bool{}
	for _, e := range CubeMesh() {
		k := [2]int{e.A, e.B}
		if e.A > e.B {
			k = [2]int{e.B, e.A}
		}
		if seen[k] {
			t.Errorf("duplicate edge %v", k)
		}
		seen[k] = true
	}
}

func TestEdgeBandwidthCalibration(t *testing.T) {
	// A double-brick edge must reproduce Table IV's L-L row:
	// 72.37 GB/s bidirectional = 36.185 per direction.
	got := EdgeBandwidth(2).GB()
	if math.Abs(got-36.185) > 0.01 {
		t.Errorf("double edge = %.3f GB/s per direction, want 36.185", got)
	}
	if EdgeBandwidth(1) >= EdgeBandwidth(2) {
		t.Error("bandwidth must scale with bricks")
	}
}

func TestRingOrderTraversesMeshEdges(t *testing.T) {
	edges := map[[2]int]bool{}
	for _, e := range CubeMesh() {
		edges[[2]int{e.A, e.B}] = true
		edges[[2]int{e.B, e.A}] = true
	}
	for _, n := range []int{2, 4, 8} {
		ring := RingOrder(n)
		if len(ring) != n {
			t.Fatalf("RingOrder(%d) has %d entries", n, len(ring))
		}
		seen := map[int]bool{}
		for i, g := range ring {
			if seen[g] {
				t.Fatalf("RingOrder(%d) repeats %d", n, g)
			}
			seen[g] = true
			next := ring[(i+1)%n]
			if n >= 2 && !edges[[2]int{g, next}] {
				t.Errorf("RingOrder(%d): %d→%d is not a mesh edge", n, g, next)
			}
		}
	}
}

func TestRingOrderFallback(t *testing.T) {
	ring := RingOrder(3)
	if len(ring) != 3 {
		t.Fatalf("fallback ring = %v", ring)
	}
}
