package orchestrator

import (
	"testing"
)

// syntheticView builds a View over a hand-made fleet shape: 2 drawers × 4
// slots, slots 0-2 free on host 0, slots 4-6 free detached, slot 3 held,
// slot 7 down. No scratch — the policy helpers fall back to allocating.
func syntheticView() View {
	v := View{
		Hosts:          2,
		Drawers:        2,
		Slots:          make([]SlotView, 8),
		HostActiveGPUs: []int{2, 0},
		HostActiveJobs: []int{1, 0},
		HostUp:         []bool{true, true},
	}
	for i := 0; i < 8; i++ {
		sv := SlotView{Index: i, Drawer: i / 4, Host: -1, Config: -1}
		switch {
		case i < 3:
			sv.Host, sv.Free = 0, true
		case i == 3:
			sv.Host = 0 // held by a job
		case i < 7:
			sv.Free = true
		default:
			sv.Down = true
		}
		v.Slots[i] = sv
	}
	return v
}

// dirtyScratch returns a policyScratch whose every buffer holds stale
// garbage from a pretend earlier placement: non-empty pick lists, a taken
// bitset with bits still set, non-zero drawer loads. A Place call that
// fails to reset any of these produces a wrong placement, which the
// equivalence test below turns into a failure.
func dirtyScratch() *policyScratch {
	return &policyScratch{
		picks: []int{99, 98, 97, 96, 95, 94, 93, 92},
		best:  []int{88, 87, 86, 85, 84, 83, 82, 81},
		cands: make([]SlotView, 8),
		taken: []bool{true, true, true, true, true, true, true, true},
		load:  []int{50, 60},
	}
}

// TestPolicyScratchResetEquivalence runs every built-in policy twice on
// the same View — once with no scratch (the allocating fallback) and once
// with a deliberately dirty scratch — and requires identical placements.
// This is the direct unit-level guard the fingerprint sweeps only cover
// end-to-end: a missing reset in any scratch buffer fails here.
func TestPolicyScratchResetEquivalence(t *testing.T) {
	for _, p := range Policies() {
		for gpus := 2; gpus <= 6; gpus++ {
			r := Request{Job: 1, Tenant: 0, GPUs: gpus}

			clean := syntheticView()
			hostC, picksC, okC := p.Place(clean, r)
			// Copy before the dirty run can overwrite the fallback slices.
			picksCopy := append([]int(nil), picksC...)

			dirty := syntheticView()
			dirty.scratch = dirtyScratch()
			hostD, picksD, okD := p.Place(dirty, r)

			if okC != okD || (okC && hostC != hostD) {
				t.Errorf("%s gpus=%d: clean (host %d, ok %v) vs dirty scratch (host %d, ok %v)",
					p.Name(), gpus, hostC, okC, hostD, okD)
				continue
			}
			if !okC {
				continue
			}
			if len(picksCopy) != len(picksD) {
				t.Errorf("%s gpus=%d: clean picks %v vs dirty %v", p.Name(), gpus, picksCopy, picksD)
				continue
			}
			for i := range picksCopy {
				if picksCopy[i] != picksD[i] {
					t.Errorf("%s gpus=%d: clean picks %v vs dirty %v", p.Name(), gpus, picksCopy, picksD)
					break
				}
			}
		}
	}
}

// TestPolicyScratchReuseAcrossCalls drives repeated Place calls through
// one shared scratch (the scheduler's usage pattern) and checks each call
// against a scratchless reference: buffers must carry no state between
// placements.
func TestPolicyScratchReuseAcrossCalls(t *testing.T) {
	sc := &policyScratch{}
	for _, p := range Policies() {
		for _, gpus := range []int{4, 2, 6, 3, 2} {
			r := Request{Job: 0, Tenant: 0, GPUs: gpus}
			ref := syntheticView()
			refHost, refPicks, refOK := p.Place(ref, r)
			refCopy := append([]int(nil), refPicks...)

			v := syntheticView()
			v.scratch = sc
			host, picks, ok := p.Place(v, r)
			if ok != refOK || (ok && host != refHost) {
				t.Fatalf("%s gpus=%d: shared-scratch (host %d, ok %v) vs reference (host %d, ok %v)",
					p.Name(), gpus, host, ok, refHost, refOK)
			}
			for i := range refCopy {
				if picks[i] != refCopy[i] {
					t.Fatalf("%s gpus=%d: shared-scratch picks %v vs reference %v",
						p.Name(), gpus, picks, refCopy)
				}
			}
		}
	}
}

// TestCheckPlacementSeenEpoch exercises the epoch-stamped duplicate
// detector that replaced checkPlacement's per-call map: repeated calls
// must not leak "seen" stamps into each other (a stale stamp would reject
// a valid placement), while a genuine duplicate in one call must still be
// caught.
func TestCheckPlacementSeenEpoch(t *testing.T) {
	fleet := testFleet(t, 2, 8, false)
	s := &scheduler{
		fleet:      fleet,
		opts:       Options{Policy: FirstFit{}},
		slotJob:    make([]int, len(fleet.Slots)),
		slotHost:   make([]int, len(fleet.Slots)),
		hostGPUs:   make([]int, len(fleet.Hosts)),
		hostJobs:   make([]int, len(fleet.Hosts)),
		slotFaulty: make([]bool, len(fleet.Slots)),
		drawerDown: make([]bool, 4),
		hostDown:   make([]bool, len(fleet.Hosts)),
	}
	for i := range s.slotJob {
		s.slotJob[i] = -1
	}
	js := &jobState{spec: JobSpec{ID: 0, GPUs: 2}}

	// The same slots may be validated any number of times across calls.
	for i := 0; i < 3; i++ {
		if err := s.checkPlacement(js, 0, []int{0, 1}); err != nil {
			t.Fatalf("call %d: valid placement rejected: %v", i, err)
		}
	}
	// A duplicate within one call is still an error.
	if err := s.checkPlacement(js, 0, []int{3, 3}); err == nil {
		t.Fatal("duplicate slot accepted")
	}
	// And the failed call's stamps must not poison the next valid one.
	if err := s.checkPlacement(js, 0, []int{3, 4}); err != nil {
		t.Fatalf("valid placement after duplicate rejected: %v", err)
	}
}
