package orchestrator

import (
	"strings"
	"testing"
	"time"

	"composable/internal/faults"
	"composable/internal/gpu"
)

// longJob is a single 4-GPU job long enough for mid-run faults to land.
func longJob(epochs int) []JobSpec {
	return []JobSpec{{
		Tenant: 0, GPUs: 4, Workload: "ResNet-50", Precision: gpu.FP16,
		Epochs: epochs, ItersPerEpoch: 8,
	}}
}

// faultFreeMakespan measures the baseline so fault times can be placed
// mid-run deterministically.
func faultFreeMakespan(t *testing.T, specs []JobSpec) time.Duration {
	t.Helper()
	f := testFleet(t, 2, 8, false)
	res, err := Run(f, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Makespan
}

func TestGPUFaultKillsAndReschedulesFromCheckpoint(t *testing.T) {
	specs := longJob(4)
	base := faultFreeMakespan(t, specs)

	f := testFleet(t, 2, 8, false)
	plan := faults.Plan{Events: []faults.Event{
		// Kill a GPU the drawer-local policy definitely picked (slot 0,
		// lowest index) mid-run; it never comes back.
		{At: base / 2, Kind: faults.KindGPU, Target: 0},
	}}
	res, err := Run(f, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Retries != 1 {
		t.Fatalf("retries = %d, want 1 (fault at %v of %v run)", j.Retries, base/2, base)
	}
	if j.Failed {
		t.Fatal("job failed despite retry budget")
	}
	if j.EpochsDone == 0 {
		t.Error("no checkpointed epochs carried across the kill (restart from scratch)")
	}
	if j.LostGPUSeconds <= 0 {
		t.Error("kill mid-epoch lost no work")
	}
	if res.Kills != 1 || res.Faults != 1 || res.LostGPUSeconds != j.LostGPUSeconds {
		t.Errorf("fleet fault aggregates wrong: %+v", res)
	}
	// The failed slot is blacklisted: the retry must avoid slot 0.
	for _, ref := range j.Slots {
		if ref == f.Slots[0].Ref {
			t.Errorf("retry placed on the failed slot %v", ref)
		}
	}
	if res.Makespan <= base {
		t.Errorf("faulty makespan %v not beyond fault-free %v", res.Makespan, base)
	}
	if j.EpochsDone >= 4 {
		// Sanity on the ledger: carried epochs below total means the final
		// attempt did real work.
		t.Errorf("carried epochs %d should be below total 4", j.EpochsDone)
	}
}

func TestGPURepairRestoresCapacity(t *testing.T) {
	// 2 hosts × 4 GPUs and a 4-GPU job: after one GPU fails the job can
	// only run again once the repair lands.
	specs := longJob(2)
	base := faultFreeMakespan(t, specs)
	f := testFleet(t, 2, 4, false)
	repair := 2 * base // well past anything else
	plan := faults.Plan{Events: []faults.Event{
		{At: base / 2, Kind: faults.KindGPU, Target: 1, Repair: repair},
	}}
	res, err := Run(f, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Failed || j.Retries != 1 {
		t.Fatalf("job %+v, want one clean retry", j)
	}
	// The retry needed all 4 GPUs, so it could only launch after the
	// repair.
	if j.Launched < base/2+repair {
		t.Errorf("job relaunched at %v, before the repair at %v", j.Launched, base/2+repair)
	}
}

func TestHostCrashKillsAndOtherHostServes(t *testing.T) {
	specs := longJob(2)
	base := faultFreeMakespan(t, specs)
	f := testFleet(t, 2, 8, false)
	plan := faults.Plan{Events: []faults.Event{
		// The drawer policy places the first job on host 0 (least loaded,
		// lowest index). Crash it mid-run; it stays down a long time, so
		// the retry must land on host 1.
		{At: base / 2, Kind: faults.KindHost, Target: 0, Repair: 10 * base},
	}}
	res, err := Run(f, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Retries != 1 || j.Failed {
		t.Fatalf("want one retry after host crash, got %+v", j)
	}
	if j.Host != 1 {
		t.Errorf("retry placed on host %d, want the surviving host 1", j.Host)
	}
	if !strings.Contains(j.FailureCause, "host1 crashed") {
		t.Errorf("cause = %q", j.FailureCause)
	}
}

func TestDrawerUnplugStaticTenantWaitsForReplug(t *testing.T) {
	// Static partition on 2 hosts × 4 GPUs (all slots in drawer 0).
	// Unplugging drawer 0 kills everything; tenants may not move, so the
	// stream only finishes after the re-plug.
	specs := []JobSpec{{
		Tenant: 0, GPUs: 2, Workload: "ResNet-50", Precision: gpu.FP16,
		Epochs: 1, ItersPerEpoch: 6,
	}}
	f := testFleet(t, 2, 4, true)
	res0, err := Run(testFleet(t, 2, 4, true), specs, Options{Policy: Static{}, AttachLatency: -1})
	if err != nil {
		t.Fatal(err)
	}
	base := res0.Makespan
	replug := 3 * base
	plan := faults.Plan{Events: []faults.Event{
		{At: base / 2, Kind: faults.KindDrawer, Target: 0, Repair: replug},
	}}
	res, err := Run(f, specs, Options{Policy: Static{}, AttachLatency: -1, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Retries == 0 || j.Failed {
		t.Fatalf("drawer flap should have killed and retried the job: %+v", j)
	}
	if j.Launched < base/2+replug {
		t.Errorf("static tenant relaunched at %v, before the re-plug at %v", j.Launched, base/2+replug)
	}
}

func TestLinkDegradationSlowsTheRun(t *testing.T) {
	specs := longJob(2)
	base := faultFreeMakespan(t, specs)
	f := testFleet(t, 2, 8, false)
	plan := faults.Plan{Events: []faults.Event{
		// Permanently degrade every picked slot's link hard.
		{At: base / 4, Kind: faults.KindSlotLink, Target: 0, Factor: 0.05},
		{At: base / 4, Kind: faults.KindSlotLink, Target: 1, Factor: 0.05},
	}}
	res, err := Run(f, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills != 0 {
		t.Fatalf("link degradation should not kill jobs (kills=%d)", res.Kills)
	}
	if res.Makespan <= base {
		t.Errorf("degraded links: makespan %v not beyond fault-free %v", res.Makespan, base)
	}
}

func TestRetryBudgetExhaustionFailsJob(t *testing.T) {
	specs := longJob(2)
	base := faultFreeMakespan(t, specs)
	f := testFleet(t, 2, 8, false)
	// MaxRetries < 0 → zero budget: the first kill abandons the job.
	plan := faults.Plan{Events: []faults.Event{
		{At: base / 2, Kind: faults.KindGPU, Target: 0},
	}}
	res, err := Run(f, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1, Faults: &plan, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if !j.Failed || res.FailedJobs != 1 {
		t.Fatalf("job should be abandoned on a zero retry budget: %+v", j)
	}
	if j.Finished != 0 || j.Runtime != 0 {
		t.Errorf("failed job carries completion telemetry: %+v", j)
	}
	if res.Makespan != 0 || res.Goodput != 0 {
		t.Errorf("no completed jobs: makespan %v goodput %v", res.Makespan, res.Goodput)
	}
}

func TestFaultyRunsAreDeterministic(t *testing.T) {
	specs := longJob(3)
	base := faultFreeMakespan(t, specs)
	run := func() string {
		f := testFleet(t, 2, 8, false)
		plan := faults.Plan{Events: []faults.Event{
			{At: base / 3, Kind: faults.KindGPU, Target: 0, Repair: base},
			{At: base / 2, Kind: faults.KindSlotLink, Target: 2, Factor: 0.1, Repair: base / 2},
			{At: 2 * base / 3, Kind: faults.KindHost, Target: 1, Repair: base},
		}}
		res, err := Run(f, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1, Faults: &plan})
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical faulty runs diverged:\n--- first\n%s--- second\n%s", a, b)
	}
}

func TestFaultTrackRecordsTimeline(t *testing.T) {
	specs := longJob(2)
	base := faultFreeMakespan(t, specs)
	f := testFleet(t, 2, 8, false)
	plan := faults.Plan{Events: []faults.Event{
		{At: base / 2, Kind: faults.KindGPU, Target: 0, Repair: base},
	}}
	res, err := Run(f, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Track == nil || res.Track.Len() < 3 {
		t.Fatalf("fault track missing events: %+v", res.Track)
	}
	byKind := map[string]int{}
	for _, e := range res.Track.Events {
		byKind[e.Kind]++
	}
	if byKind["fault"] != 1 || byKind["repair"] != 1 || byKind["kill"] != 1 {
		t.Errorf("track kinds %v, want 1 fault + 1 repair + 1 kill", byKind)
	}
	if res.FaultLedger == "" || !strings.Contains(res.Fingerprint(), res.FaultLedger) {
		t.Error("fault ledger missing from the fingerprint")
	}
}
