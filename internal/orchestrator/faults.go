package orchestrator

import (
	"fmt"
	"strconv"
	"time"

	"composable/internal/falcon"
	"composable/internal/faults"
	"composable/internal/units"
)

// Fault recovery. The scheduler arms a faults.Plan against the fleet and
// reacts to every event the injector dispatches:
//
//   - link degradation/outage rescales the slot or host-adapter link in
//     the live fabric (in-flight flows slow down or freeze, and thaw on
//     repair);
//   - a GPU failure or drawer unplug blacklists the slot(s) — detached
//     from the control plane, excluded from placement — and kills any job
//     holding them;
//   - a host crash kills every job placed or running there and takes the
//     host out of the placement pool until it recovers.
//
// A killed job winds down cooperatively (the training engine stops every
// rank at a consistent iteration boundary, the simulated NCCL teardown),
// releases its GPUs, and re-enters the queue in arrival order. Its next
// launch resumes from the last epoch-boundary checkpoint: completed
// epochs carry over, the restore cost is charged, and only the work since
// the last checkpoint is lost — the ledger the lost-work invariant
// balances. A job that exhausts its retry budget is marked Failed.

// armFaults sanitizes the plan against the fleet's real shape and wires
// the injector into the scheduler's recovery handlers.
func (s *scheduler) armFaults(plan faults.Plan) {
	f := s.fleet
	bounds := faults.Bounds{
		Slots:          len(f.Slots),
		SlotsPerDrawer: falcon.SlotsPerDrawer,
		Hosts:          len(f.Hosts),
		Horizon:        1<<62 - 1, // the plan's own times stand
	}
	// Permanent device faults must leave the largest job enough survivors.
	maxDemand := 2
	for _, js := range s.jobs {
		if js.spec.GPUs > maxDemand {
			maxDemand = js.spec.GPUs
		}
	}
	bounds.MaxPermanentGPUs = len(f.Slots) - maxDemand
	if bounds.MaxPermanentGPUs < 0 {
		bounds.MaxPermanentGPUs = 0
	}
	plan = faults.Sanitize(plan, bounds)

	// Healthy link capacities, for degrade/repair rescaling.
	slotCaps := make([][2]units.BytesPerSec, len(f.Slots))
	for i, slot := range f.Slots {
		l := f.Net.Link(slot.Link)
		slotCaps[i] = [2]units.BytesPerSec{l.CapAtoB, l.CapBtoA}
	}
	hostCaps := make([][2]units.BytesPerSec, len(f.Hosts))
	for h, host := range f.Hosts {
		l := f.Net.Link(host.AdapterLink)
		hostCaps[h] = [2]units.BytesPerSec{l.CapAtoB, l.CapBtoA}
	}

	inj := faults.NewInjector(f.Env, plan, faults.Hooks{
		SlotLink: func(slot int, factor float64) {
			c := slotCaps[slot]
			f.Net.SetLinkCapacity(f.Slots[slot].Link,
				units.BytesPerSec(float64(c[0])*factor), units.BytesPerSec(float64(c[1])*factor))
		},
		HostLink: func(host int, factor float64) {
			c := hostCaps[host]
			f.Net.SetLinkCapacity(f.Hosts[host].AdapterLink,
				units.BytesPerSec(float64(c[0])*factor), units.BytesPerSec(float64(c[1])*factor))
		},
		GPU: func(slot int, up bool) {
			s.slotFaulty[slot] = !up
			if up {
				s.slotRepaired(slot)
				s.trySchedule()
			} else {
				s.slotLost(slot, "gpu failure in "+f.Slots[slot].Ref.String())
			}
		},
		Drawer: func(drawer int, up bool) {
			s.drawerDown[drawer] = !up
			for i, slot := range f.Slots {
				if slot.Drawer != drawer {
					continue
				}
				if up {
					// Probe every returning slot before any scheduling, so
					// a placement never races its own slots' up events.
					s.slotRepaired(i)
				} else {
					s.slotLost(i, "drawer "+strconv.Itoa(drawer)+" hot-unplugged")
				}
			}
			if up {
				s.trySchedule()
			}
		},
		Host: func(host int, up bool) {
			s.hostDown[host] = !up
			now := s.now()
			if up {
				s.probe(Event{Kind: EventHostUp, At: now, Job: -1, Host: host})
				s.trySchedule()
				return
			}
			s.probe(Event{Kind: EventHostDown, At: now, Job: -1, Host: host})
			for _, js := range s.jobs {
				if !js.done && !js.failed && js.host == host {
					s.kill(js, "host"+strconv.Itoa(host+1)+" crashed")
				}
			}
		},
	})
	inj.SetProbe(func(r faults.Record) {
		kind := "fault"
		if r.Up {
			kind = "repair"
		}
		s.track.Record(r.At, kind, string(r.Kind)+"["+strconv.Itoa(r.Target)+"]")
	})
	inj.Arm()
	s.injector = inj
}

// slotAvailable reports whether a slot is schedulable: its device healthy
// and its drawer plugged.
//
//perf:hot
func (s *scheduler) slotAvailable(i int) bool {
	if s.slotFaulty == nil {
		return true
	}
	return !s.slotFaulty[i] && !s.drawerDown[s.fleet.Slots[i].Drawer]
}

// slotLost handles a slot leaving the pool: hot-unplug from the control
// plane and kill the holder. Idempotent — a GPU fault inside an already
// unplugged drawer changes nothing.
func (s *scheduler) slotLost(i int, cause string) {
	if s.err != nil {
		return
	}
	now := s.now()
	s.account(now)
	ref := s.fleet.Slots[i].Ref
	if s.slotHost[i] != -1 && s.fleet.Chassis.Owner(ref) != "" {
		if err := s.fleet.Chassis.Detach(ref); err != nil {
			s.err = fmt.Errorf("orchestrator: unplugging failed slot %v: %w", ref, err)
			return
		}
	}
	s.slotHost[i] = -1
	s.probe(Event{Kind: EventSlotDown, At: now, Job: -1, Host: -1, Slots: []falcon.SlotRef{ref}})
	if id := s.slotJob[i]; id != -1 {
		s.kill(s.jobs[id], cause)
	}
}

// slotRepaired handles a slot rejoining the pool (detached; the next
// placement re-attaches it). A slot stays out while its drawer is still
// unplugged or its own device still failed. The caller runs trySchedule
// once every returning slot is probed.
func (s *scheduler) slotRepaired(i int) {
	if s.err != nil || !s.slotAvailable(i) {
		return
	}
	now := s.now()
	s.account(now)
	s.probe(Event{Kind: EventSlotUp, At: now, Job: -1, Host: -1, Slots: []falcon.SlotRef{s.fleet.Slots[i].Ref}})
}

// kill tears one job's attempt down. Launched jobs abort cooperatively
// and reschedule when their wind-down drains; jobs still in the hot-plug
// window reschedule when the pending launch callback fires. If the abort
// loses the race against the final iteration the job completes normally
// and the kill is withdrawn.
func (s *scheduler) kill(js *jobState, cause string) {
	if js.done || js.failed || js.killed {
		return
	}
	if js.host == -1 {
		return // queued: holds nothing, nothing to kill
	}
	if js.job != nil {
		js.job.Abort()
		if !js.job.Aborted() {
			return // past the final iteration: the fault lost the race
		}
	}
	js.killed = true
	js.cause = cause
	s.kills++
	s.track.Record(s.now(), "kill", "job "+strconv.Itoa(js.spec.ID)+": "+cause)
}

// reschedule finishes a kill once the attempt has drained: accounts the
// lost work, releases the GPUs, and requeues (or fails) the job.
func (s *scheduler) reschedule(js *jobState, now time.Duration) {
	// Checkpointed progress carries over; work past the last epoch
	// boundary of this attempt is lost.
	usefulEnd := js.launched
	if js.job != nil {
		js.epochsDone += js.job.EpochsDone()
		if end, ok := js.job.LastEpochEnd(); ok {
			usefulEnd = end
		}
		js.lostSec += float64(js.spec.GPUs) * (now - usefulEnd).Seconds()
	}
	for _, slot := range js.slots {
		s.slotJob[slot.Index] = -1
	}
	s.hostGPUs[js.host] -= js.spec.GPUs
	s.hostJobs[js.host]--
	host := js.host
	refs := js.refs
	js.job, js.slots, js.refs, js.host = nil, nil, nil, -1
	js.killed = false
	js.retries++
	s.probe(Event{Kind: EventKill, At: now, Job: js.spec.ID, Host: host, Slots: refs})
	if js.retries > s.maxRetries {
		js.failed = true
		// "abandon", not "fail": the timeline marks kinds by first rune,
		// and 'f' already means an injected fault.
		s.track.Record(now, "abandon", "job "+strconv.Itoa(js.spec.ID)+" abandoned after "+strconv.Itoa(js.retries)+" kills")
		s.probe(Event{Kind: EventFail, At: now, Job: js.spec.ID, Host: -1})
	} else {
		s.enqueue(js)
	}
	s.trySchedule()
}

// enqueue inserts a job into the wait queue in arrival order (ties by
// ID), so a retried job regains its FIFO position rather than the tail.
//
//perf:hot
func (s *scheduler) enqueue(js *jobState) {
	at := len(s.queue)
	for i, q := range s.queue {
		if q.spec.Arrival > js.spec.Arrival ||
			(q.spec.Arrival == js.spec.Arrival && q.spec.ID > js.spec.ID) {
			at = i
			break
		}
	}
	s.queue = append(s.queue, nil)
	copy(s.queue[at+1:], s.queue[at:])
	s.queue[at] = js
}
