package orchestrator

import (
	"fmt"
	"strconv"
	"time"

	"composable/internal/falcon"
	"composable/internal/faults"
	"composable/internal/obs"
	"composable/internal/units"
)

// Fault recovery. The scheduler arms a faults.Plan against the fleet and
// reacts to every event the injector dispatches:
//
//   - link degradation/outage rescales the slot or host-adapter link in
//     the live fabric (in-flight flows slow down or freeze, and thaw on
//     repair);
//   - a GPU failure or drawer unplug blacklists the slot(s) — detached
//     from the control plane, excluded from placement — and kills any job
//     holding them;
//   - a host crash kills every job placed or running there and takes the
//     host out of the placement pool until it recovers.
//
// A killed job winds down cooperatively (the training engine stops every
// rank at a consistent iteration boundary, the simulated NCCL teardown),
// releases its GPUs, and re-enters the queue in arrival order. Its next
// launch resumes from the last epoch-boundary checkpoint: completed
// epochs carry over, the restore cost is charged, and only the work since
// the last checkpoint is lost — the ledger the lost-work invariant
// balances. A job that exhausts its retry budget is marked Failed.

// armFaults sanitizes the plan against the fleet's real shape and wires
// the injector into the scheduler's recovery handlers.
func (s *scheduler) armFaults(plan faults.Plan) {
	f := s.fleet
	bounds := faults.Bounds{
		Slots:          len(f.Slots),
		SlotsPerDrawer: falcon.SlotsPerDrawer,
		Hosts:          len(f.Hosts),
		Horizon:        1<<62 - 1, // the plan's own times stand
	}
	if f.Opts.Hierarchical() {
		// Pod fleets span the full global drawer space and accept the two
		// pod-scoped kinds; a degenerate fleet keeps the old derivation so
		// existing plans sanitize to the same draws.
		bounds.Drawers = f.NumDrawers()
		bounds.Pods = f.NumPods()
	}
	// Permanent device faults must leave the largest job enough survivors.
	maxDemand := 2
	for _, js := range s.jobs {
		if js.spec.GPUs > maxDemand {
			maxDemand = js.spec.GPUs
		}
	}
	bounds.MaxPermanentGPUs = len(f.Slots) - maxDemand
	if bounds.MaxPermanentGPUs < 0 {
		bounds.MaxPermanentGPUs = 0
	}
	plan = faults.Sanitize(plan, bounds)

	// Healthy link capacities, for degrade/repair rescaling.
	slotCaps := make([][2]units.BytesPerSec, len(f.Slots))
	for i, slot := range f.Slots {
		l := f.Net.Link(slot.Link)
		slotCaps[i] = [2]units.BytesPerSec{l.CapAtoB, l.CapBtoA}
	}
	hostCaps := make([][2]units.BytesPerSec, len(f.Hosts))
	for h, host := range f.Hosts {
		l := f.Net.Link(host.AdapterLink)
		hostCaps[h] = [2]units.BytesPerSec{l.CapAtoB, l.CapBtoA}
	}
	spineCaps := make([][2]units.BytesPerSec, len(f.PodUplinks))
	for p, id := range f.PodUplinks {
		l := f.Net.Link(id)
		spineCaps[p] = [2]units.BytesPerSec{l.CapAtoB, l.CapBtoA}
	}

	inj := faults.NewInjector(f.Env, plan, faults.Hooks{
		SlotLink: func(slot int, factor float64) {
			c := slotCaps[slot]
			f.Net.SetLinkCapacity(f.Slots[slot].Link,
				units.BytesPerSec(float64(c[0])*factor), units.BytesPerSec(float64(c[1])*factor))
		},
		HostLink: func(host int, factor float64) {
			c := hostCaps[host]
			f.Net.SetLinkCapacity(f.Hosts[host].AdapterLink,
				units.BytesPerSec(float64(c[0])*factor), units.BytesPerSec(float64(c[1])*factor))
		},
		SpineLink: func(pod int, factor float64) {
			if pod >= len(spineCaps) {
				return // degenerate fleet: no uplinks (Sanitize remaps these away)
			}
			c := spineCaps[pod]
			f.Net.SetLinkCapacity(f.PodUplinks[pod],
				units.BytesPerSec(float64(c[0])*factor), units.BytesPerSec(float64(c[1])*factor))
		},
		GPU: func(slot int, up bool) {
			s.capAccrue(s.now())
			s.slotFaulty[slot] = !up
			s.recountLive()
			if up {
				s.slotRepaired(slot)
				s.trySchedule()
			} else {
				s.slotLost(slot, "gpu failure in "+f.Slots[slot].Ref.String())
			}
		},
		Drawer: func(drawer int, up bool) {
			s.capAccrue(s.now())
			s.drawerDown[drawer] = !up
			s.recountLive()
			for i, slot := range f.Slots {
				if slot.Drawer != drawer {
					continue
				}
				if up {
					// Probe every returning slot before any scheduling, so
					// a placement never races its own slots' up events.
					s.slotRepaired(i)
				} else {
					s.slotLost(i, "drawer "+strconv.Itoa(drawer)+" hot-unplugged")
				}
			}
			if up {
				s.trySchedule()
			}
		},
		Pod: func(pod int, up bool) {
			now := s.now()
			s.capAccrue(now)
			s.podDown[pod] = !up
			s.recountLive()
			if up {
				s.probe(Event{Kind: EventPodUp, At: now, Job: -1, Host: -1, Pod: pod})
				// Probe every returning slot before any scheduling resumes;
				// hosts come back implicitly (unless individually crashed).
				for i, slot := range f.Slots {
					if slot.Pod == pod {
						s.slotRepaired(i)
					}
				}
				s.trySchedule()
				return
			}
			s.probe(Event{Kind: EventPodDown, At: now, Job: -1, Host: -1, Pod: pod})
			for i, slot := range f.Slots {
				if slot.Pod == pod {
					s.slotLost(i, "pod "+strconv.Itoa(pod)+" lost power")
				}
			}
			// The pod's hosts lost power with it: jobs placed there die even
			// when their GPUs sat in another pod.
			for h, host := range f.Hosts {
				if host.Pod != pod {
					continue
				}
				for _, js := range s.jobs {
					if !js.done && !js.failed && js.host == h {
						s.kill(js, "pod "+strconv.Itoa(pod)+" lost power under host"+strconv.Itoa(h+1))
					}
				}
			}
		},
		Host: func(host int, up bool) {
			s.hostDown[host] = !up
			now := s.now()
			if up {
				s.probe(Event{Kind: EventHostUp, At: now, Job: -1, Host: host})
				s.trySchedule()
				return
			}
			s.probe(Event{Kind: EventHostDown, At: now, Job: -1, Host: host})
			for _, js := range s.jobs {
				if !js.done && !js.failed && js.host == host {
					s.kill(js, "host"+strconv.Itoa(host+1)+" crashed")
				}
			}
		},
	})
	inj.SetProbe(func(r faults.Record) {
		kind := "fault"
		if r.Up {
			kind = "repair"
		}
		s.track.Record(r.At, kind, string(r.Kind)+"["+strconv.Itoa(r.Target)+"]")
	})
	inj.Arm()
	s.injector = inj
	s.capTracking = true
	s.liveSlots = len(f.Slots)
}

// capAccrue advances the live-capacity integral to now. Exact as long as
// it runs before every availability flip: liveSlots is piecewise constant
// between fault events.
func (s *scheduler) capAccrue(now time.Duration) {
	if !s.capTracking {
		return
	}
	if now > s.capLastT {
		s.capGPUSec += float64(s.liveSlots) * (now - s.capLastT).Seconds()
	}
	s.capLastT = now
}

// recountLive rescans slot availability after fault flags changed. A full
// scan (not a delta) so overlapping faults — a GPU dying inside a downed
// drawer inside a downed pod — never double-count.
func (s *scheduler) recountLive() {
	if !s.capTracking {
		return
	}
	live := 0
	for i := range s.fleet.Slots {
		if s.slotAvailable(i) {
			live++
		}
	}
	s.liveSlots = live
	if live < len(s.fleet.Slots) {
		s.capEverDown = true
	}
}

// hostAvailable reports whether a host can receive placements: it hasn't
// crashed and its pod has power.
//
//perf:hot
func (s *scheduler) hostAvailable(h int) bool {
	if s.hostDown != nil && s.hostDown[h] {
		return false
	}
	return len(s.podDown) == 0 || !s.podDown[s.fleet.Hosts[h].Pod]
}

// slotAvailable reports whether a slot is schedulable: its device healthy,
// its drawer plugged, and its pod powered.
//
//perf:hot
func (s *scheduler) slotAvailable(i int) bool {
	if s.slotFaulty == nil {
		return true
	}
	slot := s.fleet.Slots[i]
	if s.slotFaulty[i] || s.drawerDown[slot.Drawer] {
		return false
	}
	return len(s.podDown) == 0 || !s.podDown[slot.Pod]
}

// slotLost handles a slot leaving the pool: hot-unplug from the control
// plane and kill the holder. Idempotent — a GPU fault inside an already
// unplugged drawer changes nothing.
func (s *scheduler) slotLost(i int, cause string) {
	if s.err != nil {
		return
	}
	now := s.now()
	s.account(now)
	slot := s.fleet.Slots[i]
	ref := slot.Ref
	if s.slotHost[i] != -1 && s.fleet.ChassisFor(slot).Owner(ref) != "" {
		if err := s.fleet.DetachSlot(slot); err != nil {
			s.err = fmt.Errorf("orchestrator: unplugging failed slot %v: %w", ref, err)
			return
		}
	}
	s.slotHost[i] = -1
	s.probe(Event{Kind: EventSlotDown, At: now, Job: -1, Host: -1, Slots: []falcon.SlotRef{ref}, Indices: []int{i}})
	if id := s.slotJob[i]; id != -1 {
		s.kill(s.jobs[id], cause)
	}
}

// slotRepaired handles a slot rejoining the pool (detached; the next
// placement re-attaches it). A slot stays out while its drawer is still
// unplugged or its own device still failed. The caller runs trySchedule
// once every returning slot is probed.
func (s *scheduler) slotRepaired(i int) {
	if s.err != nil || !s.slotAvailable(i) {
		return
	}
	now := s.now()
	s.account(now)
	s.probe(Event{Kind: EventSlotUp, At: now, Job: -1, Host: -1, Slots: []falcon.SlotRef{s.fleet.Slots[i].Ref}, Indices: []int{i}})
}

// kill tears one job's attempt down. Launched jobs abort cooperatively
// and reschedule when their wind-down drains; jobs still in the hot-plug
// window reschedule when the pending launch callback fires. If the abort
// loses the race against the final iteration the job completes normally
// and the kill is withdrawn.
func (s *scheduler) kill(js *jobState, cause string) {
	if js.done || js.failed || js.killed {
		return
	}
	if js.host == -1 {
		return // queued: holds nothing, nothing to kill
	}
	if js.job != nil {
		js.job.Abort()
		if !js.job.Aborted() {
			return // past the final iteration: the fault lost the race
		}
	}
	js.killed = true
	js.cause = cause
	s.kills++
	s.track.Record(s.now(), "kill", "job "+strconv.Itoa(js.spec.ID)+": "+cause)
	if s.obs != nil {
		s.obs.Inc(s.obsKills)
		ev := s.obs.Instant(obs.CatOrchestrator, "kill")
		s.obs.SetAttr(ev, "job", int64(js.spec.ID))
		s.obs.SetAttrStr(ev, "cause", cause)
	}
}

// reschedule finishes a kill once the attempt has drained: accounts the
// lost work, releases the GPUs, and requeues (or fails) the job.
func (s *scheduler) reschedule(js *jobState, now time.Duration) {
	if s.obs != nil {
		// Whatever phase the attempt died in ends here: a launched job
		// closes its run span, one killed in the hot-plug window its
		// compose span.
		s.obs.End(js.runSpan)
		s.obs.End(js.composeSpan)
		js.runSpan, js.composeSpan = 0, 0
	}
	// Checkpointed progress carries over; work past the last epoch
	// boundary of this attempt is lost.
	usefulEnd := js.launched
	if js.job != nil {
		js.epochsDone += js.job.EpochsDone()
		if end, ok := js.job.LastEpochEnd(); ok {
			usefulEnd = end
		}
		// Up to the last epoch boundary the attempt delivered kept work;
		// past it the work is lost and will be re-run.
		js.deliveredSec += float64(js.spec.GPUs) * (usefulEnd - js.launched).Seconds()
		js.lostSec += float64(js.spec.GPUs) * (now - usefulEnd).Seconds()
	}
	for _, slot := range js.slots {
		s.slotJob[slot.Index] = -1
	}
	s.hostGPUs[js.host] -= js.spec.GPUs
	s.hostJobs[js.host]--
	host := js.host
	refs := js.refs
	indices := js.indices
	js.job, js.slots, js.refs, js.indices, js.host = nil, nil, nil, nil, -1
	js.killed = false
	js.retries++
	s.probe(Event{Kind: EventKill, At: now, Job: js.spec.ID, Host: host, Slots: refs, Indices: indices})
	if s.obs != nil {
		s.obs.Inc(s.obsRetries)
	}
	if js.retries > s.maxRetries {
		js.failed = true
		// "abandon", not "fail": the timeline marks kinds by first rune,
		// and 'f' already means an injected fault.
		s.track.Record(now, "abandon", "job "+strconv.Itoa(js.spec.ID)+" abandoned after "+strconv.Itoa(js.retries)+" kills")
		s.probe(Event{Kind: EventFail, At: now, Job: js.spec.ID, Host: -1})
		if s.obs != nil {
			ev := s.obs.Instant(obs.CatOrchestrator, "fail")
			s.obs.SetAttr(ev, "job", int64(js.spec.ID))
			s.obs.SetAttrStr(ev, "cause", js.cause)
		}
		s.settle()
	} else {
		s.enqueue(js)
		if s.obs != nil {
			js.waitSpan = s.obs.Begin(obs.CatOrchestrator, "wait")
			s.obs.SetAttr(js.waitSpan, "job", int64(js.spec.ID))
			s.obs.SetAttr(js.waitSpan, "attempt", int64(js.retries))
		}
	}
	s.trySchedule()
}

// enqueue inserts a job into the wait queue in arrival order (ties by
// ID), so a retried job regains its FIFO position rather than the tail.
//
//perf:hot
func (s *scheduler) enqueue(js *jobState) {
	at := len(s.queue)
	for i, q := range s.queue {
		if q.spec.Arrival > js.spec.Arrival ||
			(q.spec.Arrival == js.spec.Arrival && q.spec.ID > js.spec.ID) {
			at = i
			break
		}
	}
	s.queue = append(s.queue, nil)
	copy(s.queue[at+1:], s.queue[at:])
	s.queue[at] = js
}
