package orchestrator

import (
	"testing"

	"composable/internal/faults"
)

// TestUtilizationExcludesDeadCapacity pins the utilization denominator
// fix: capacity the fleet has lost to a permanent failure must not keep
// counting as idle. A dead GPU the workload never touched used to dilute
// utilization below (or at best equal to) the fault-free run; with the
// live-capacity integral it strictly raises it, because the delivered
// work is unchanged while the available GPU-seconds shrink.
func TestUtilizationExcludesDeadCapacity(t *testing.T) {
	specs := longJob(4)
	f0 := testFleet(t, 2, 8, false)
	base, err := Run(f0, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1})
	if err != nil {
		t.Fatal(err)
	}

	f := testFleet(t, 2, 8, false)
	plan := faults.Plan{Events: []faults.Event{
		// Permanently kill a GPU the 4-GPU drawer-local job never picked
		// (it runs on slots 0-3). The schedule is otherwise untouched.
		{At: base.Makespan / 2, Kind: faults.KindGPU, Target: 7},
	}}
	res, err := Run(f, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills != 0 || res.Jobs[0].Retries != 0 {
		t.Fatalf("fault on an idle slot disturbed the run: %+v", res)
	}
	if res.Makespan != base.Makespan || res.GPUSeconds != base.GPUSeconds {
		t.Fatalf("schedule changed: makespan %v vs %v, gpuSec %v vs %v",
			res.Makespan, base.Makespan, res.GPUSeconds, base.GPUSeconds)
	}
	// The old denominator — every fleet GPU for the whole makespan — is
	// exactly the fault-free utilization here.
	naive := res.GPUSeconds / (float64(res.GPUs) * res.Makespan.Seconds())
	if naive != base.Utilization {
		t.Fatalf("test premise broken: naive %v != fault-free %v", naive, base.Utilization)
	}
	if res.Utilization <= naive {
		t.Errorf("utilization %v still counts dead capacity as idle (naive whole-fleet denominator gives %v)",
			res.Utilization, naive)
	}
	if res.Utilization < base.Utilization {
		t.Errorf("permanent GPU failure dragged utilization %v below fault-free %v",
			res.Utilization, base.Utilization)
	}
	if res.Utilization > 1 {
		t.Errorf("utilization %v above 1", res.Utilization)
	}
}

// TestGPUSecondsCountDeliveredWorkPerAttempt pins the per-attempt
// accounting fix: a job killed mid-run and rescheduled from checkpoint
// must be credited the useful (checkpointed) work of the killed attempt,
// not just GPUs × final-attempt runtime.
func TestGPUSecondsCountDeliveredWorkPerAttempt(t *testing.T) {
	specs := longJob(4)
	base := faultFreeMakespan(t, specs)
	f := testFleet(t, 2, 8, false)
	plan := faults.Plan{Events: []faults.Event{
		{At: base / 2, Kind: faults.KindGPU, Target: 0},
	}}
	res, err := Run(f, specs, Options{Policy: DrawerLocal{}, AttachLatency: -1, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	if j.Retries != 1 || j.Failed {
		t.Fatalf("want one clean retry, got %+v", j)
	}
	if j.EpochsDone == 0 {
		t.Fatal("first attempt checkpointed nothing; the scenario cannot pin the fix")
	}
	finalAttempt := float64(j.GPUs) * j.Runtime.Seconds()
	if j.GPUSeconds <= finalAttempt {
		t.Errorf("GPUSeconds %.3f does not exceed final-attempt credit %.3f: the killed attempt's delivered work was dropped",
			j.GPUSeconds, finalAttempt)
	}
	if j.LostGPUSeconds <= 0 {
		t.Error("mid-epoch kill lost no work")
	}
	var delivered float64
	for _, jr := range res.Jobs {
		if !jr.Failed {
			delivered += jr.GPUSeconds
		}
	}
	if res.GPUSeconds != delivered {
		t.Errorf("fleet GPUSeconds %v != sum of per-job delivered %v", res.GPUSeconds, delivered)
	}
}

// TestGPUSecondsFaultFreeExactProduct pins degenerate preservation for
// both metric fixes: without faults the per-job credit is bit-identical
// to the old GPUs × Runtime product and utilization is bit-identical to
// the old whole-fleet-for-the-whole-makespan formula, so historical
// fingerprints stay byte-stable.
func TestGPUSecondsFaultFreeExactProduct(t *testing.T) {
	f := testFleet(t, 2, 8, false)
	res, err := Run(f, testStream(), Options{Policy: DrawerLocal{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if want := float64(j.GPUs) * j.Runtime.Seconds(); j.GPUSeconds != want {
			t.Errorf("job %d: GPUSeconds %v != exact product %v", j.ID, j.GPUSeconds, want)
		}
	}
	if want := res.GPUSeconds / (float64(res.GPUs) * res.Makespan.Seconds()); res.Utilization != want {
		t.Errorf("fault-free utilization %v != exact legacy formula %v", res.Utilization, want)
	}
}
