// Package orchestrator is the fleet-level scheduler the paper's pitch
// implies but never builds: it drives a *stream* of deep-learning training
// jobs through a composable multi-host testbed, attaching and detaching
// Falcon chassis GPUs between hosts on demand (§III-B-3 advanced mode)
// instead of composing one static configuration per run.
//
// The scheduler is purely event-driven inside the deterministic simulation:
// job arrivals, placement decisions, recomposition delays, launches and
// completions are all sim-time events, so a given (fleet, job stream,
// policy) triple always produces byte-identical telemetry — the property
// the fleet scenario sweep pins.
//
// Placement is pluggable (Policy): first-fit, drawer-locality-aware,
// bandwidth-aware, and the static per-host partition that serves as the
// paper-world baseline. Jobs are served strictly FIFO — the head of the
// queue blocks until the policy can place it — which keeps the comparison
// between policies about *placement*, not queue discipline.
//
// Fleets scale past one rack: cluster.ComposeFleet can build pods of
// chassis behind a spine/leaf fabric tier with oversubscribed inter-pod
// links, and the scheduler is hierarchy-aware end to end — policies score
// placement distance in tiers (same chassis < same pod < cross-pod),
// recomposition crosses chassis over each chassis's fabric uplink port,
// and the fault engine's blast radii extend to whole pods and spine
// links. A 1024-GPU, 500-job scenario (8 pods × 8 chassis × 16 GPUs)
// schedules in under a second of wall clock (orchestrator/pod-schedule
// in internal/perfbench).
//
// Accounting is fault-honest: GPUSeconds credits the delivered
// (checkpointed) work of every attempt, not just the final one, and
// Utilization divides by the live-capacity integral — capacity lost to a
// permanent failure stops counting as idle. Fault-free runs reduce to
// the exact legacy formulas, bit for bit.
package orchestrator

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/falcon"
	"composable/internal/faults"
	"composable/internal/gpu"
	"composable/internal/obs"
	"composable/internal/sim"
	"composable/internal/telemetry"
	"composable/internal/train"
)

// JobSpec is one training job in the arrival stream.
type JobSpec struct {
	// ID is assigned by Run in stream order; caller-set values are
	// overwritten.
	ID int
	// Arrival is the sim time the job enters the queue.
	Arrival time.Duration
	// Tenant is the index of the submitting host (the job's "home"
	// machine). Dynamic policies ignore it; the static baseline may only
	// run the job on this host's fixed GPU share.
	Tenant int
	// GPUs is the device demand (≥ 2: the collective layer needs a group).
	GPUs int

	Workload      string // Table II benchmark name
	Strategy      train.Strategy
	Precision     gpu.Precision
	Sharded       bool
	BatchPerGPU   int // 0 = workload default, clamped to fit
	Epochs        int
	ItersPerEpoch int
	// CheckpointsPerEpoch overrides the workload's checkpoint write
	// cadence (0 keeps it). Restart granularity is the epoch boundary,
	// so extra mid-epoch writes are pure overhead — the recovery trade
	// is swept by splitting the same work into more epochs (R1), not by
	// raising this.
	CheckpointsPerEpoch int
}

// Sanitize maps an arbitrary spec onto the nearest valid one for a fleet
// of totalGPUs devices of the given part across hosts machines, mirroring
// scengen.Sanitize: counts clamped, contradictory knobs resolved, batch
// fitted to device memory (with the paper's relief valves — sharding, then
// mixed precision — when nothing fits).
func (j JobSpec) Sanitize(totalGPUs, hosts int, spec gpu.Spec) JobSpec {
	if j.Arrival < 0 {
		j.Arrival = 0
	}
	j.GPUs = clamp(j.GPUs, 2, totalGPUs)
	j.Tenant = clamp(j.Tenant, 0, hosts-1)
	if _, err := dlmodel.BenchmarkByName(j.Workload); err != nil {
		j.Workload = "ResNet-50"
	}
	if j.Strategy != train.DP {
		j.Strategy = train.DDP
	}
	if j.Precision != gpu.FP16 {
		j.Precision = gpu.FP32
	}
	if j.Strategy != train.DDP {
		j.Sharded = false
	}
	j.Epochs = clamp(j.Epochs, 1, 8)
	j.ItersPerEpoch = clamp(j.ItersPerEpoch, 1, 50)
	j.CheckpointsPerEpoch = clamp(j.CheckpointsPerEpoch, 0, 8)

	w, _ := dlmodel.BenchmarkByName(j.Workload)
	maxB := j.maxBatch(w, spec)
	if maxB < 1 {
		if j.Strategy == train.DDP {
			j.Sharded = true
			maxB = j.maxBatch(w, spec)
		}
		if maxB < 1 {
			j.Precision = gpu.FP16
			maxB = j.maxBatch(w, spec)
		}
		if maxB < 1 {
			maxB = 1
		}
	}
	if j.BatchPerGPU == 0 {
		j.BatchPerGPU = w.BatchPerGPU
	}
	j.BatchPerGPU = clamp(j.BatchPerGPU, 1, maxB)
	return j
}

func (j JobSpec) maxBatch(w dlmodel.Workload, spec gpu.Spec) int {
	shards := 1
	if j.Sharded {
		shards = j.GPUs
	}
	return w.MaxBatch(spec, j.Precision, shards)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// EventKind tags the orchestrator's lifecycle probe points.
type EventKind string

// Lifecycle events, in per-job order. A fault-free job moves arrive →
// place → launch → finish; a fault may interpose kill (back to the queue,
// resuming from its last checkpoint on the next place) or, once the retry
// budget is spent, fail.
const (
	// EventArrive: the job entered the queue.
	EventArrive EventKind = "arrive"
	// EventPlace: the policy picked a host and GPU slots; any
	// recomposition (attach/reassign) happened at this instant.
	EventPlace EventKind = "place"
	// EventLaunch: the training processes started (after the
	// recomposition delay, if any).
	EventLaunch EventKind = "launch"
	// EventFinish: all ranks completed and the GPUs were released.
	EventFinish EventKind = "finish"
	// EventKill: a fault killed the job's attempt; its GPUs were released
	// and the job re-entered the queue (or failed).
	EventKill EventKind = "kill"
	// EventFail: the job exhausted its retry budget and was abandoned.
	EventFail EventKind = "fail"
)

// Fault events, interleaved with the lifecycle stream so one probe sees
// the whole causal order (a slot goes down, then its holder is killed).
const (
	// EventSlotDown/Up: a chassis GPU slot left/rejoined the schedulable
	// pool (device failure, drawer unplug, or the repair).
	EventSlotDown EventKind = "slot-down"
	EventSlotUp   EventKind = "slot-up"
	// EventHostDown/Up: a host machine crashed/recovered.
	EventHostDown EventKind = "host-down"
	EventHostUp   EventKind = "host-up"
	// EventPodDown/Up: an entire pod lost power/recovered — every chassis,
	// slot, and host under it went with it. Emitted before the per-slot and
	// per-host cascade, so a probe sees cause before effect.
	EventPodDown EventKind = "pod-down"
	EventPodUp   EventKind = "pod-up"
)

// Event is one orchestrator lifecycle observation, the probe surface
// internal/invariant hangs the fleet checks on (no double-assignment,
// attach conservation, queue-lifecycle monotonicity, no placement on a
// down slot).
type Event struct {
	Kind  EventKind
	At    time.Duration
	Job   int // -1 on fault events
	Host  int // -1 on arrive
	Slots []falcon.SlotRef
	// Indices are the global fleet slot indices matching Slots. SlotRefs
	// repeat across chassis in a pod fleet, so probes key per-slot state on
	// these, not on the refs.
	Indices []int
	Moves   int // place only: control-plane moves this placement needed
	Pod     int // pod-down/up only: the pod that lost/regained power
}

// DefaultAttachLatency is the per-device recomposition cost: the
// hot-plug/rescan window between the control-plane attach and the device
// being usable by the host. Dynamic recomposition pays it; static
// partitioning never does — the trade the S1 experiment measures.
const DefaultAttachLatency = 1500 * time.Millisecond

// DefaultMaxRetries is the per-job reschedule budget after fault kills.
const DefaultMaxRetries = 3

// Options tunes a fleet run.
type Options struct {
	// Policy places jobs; nil means FirstFit.
	Policy Policy
	// AttachLatency is the sim-time cost per device move (0 = default;
	// negative = free recomposition).
	AttachLatency time.Duration
	// Probe, when non-nil, observes every lifecycle event. It must not
	// mutate scheduler state; internal/invariant attaches here.
	Probe func(Event)
	// Faults, when non-nil, is armed against the fleet: link degradation,
	// GPU/drawer/host failures and their repairs play out in sim time,
	// and the scheduler recovers — killed jobs resume from their last
	// epoch-boundary checkpoint on surviving GPUs, failed devices are
	// blacklisted until repaired. The plan is sanitized against the
	// fleet's real shape before arming.
	Faults *faults.Plan
	// MaxRetries caps fault-kill reschedules per job (0 = default 3;
	// negative = no retries). A job over budget is marked Failed.
	MaxRetries int
	// Obs, when non-nil, traces the run: per-job wait/compose/run spans
	// with kill/fail/recompose instants on the orchestrator track, queue
	// and capacity gauges sampled on the collector's interval, and the
	// training engine's own spans threaded through per launch. The
	// collector must already be attached to the fleet's environment. Like
	// Probe it must not change outcomes.
	Obs *obs.Collector
}

// jobState tracks one job through the queue.
type jobState struct {
	spec    JobSpec
	host    int
	slots   []*cluster.FleetSlot
	refs    []falcon.SlotRef
	indices []int // global slot indices matching refs
	moves   int   // cumulative across attempts
	job     *train.Job
	res     *train.Result

	arrived, placed, launched, finished time.Duration
	done                                bool

	// Fault recovery state.
	killed     bool   // current attempt is being torn down
	cause      string // last failure cause
	retries    int    // attempts killed by faults so far
	failed     bool   // retry budget exhausted; job abandoned
	epochsDone int    // checkpointed epochs carried across attempts
	lostSec    float64
	// deliveredSec is GPU time that produced checkpointed (kept) progress,
	// summed over every attempt — killed attempts contribute up to their
	// last epoch boundary, the final attempt contributes in full. The old
	// accounting only counted the final attempt, understating delivered
	// work (and goodput) for every retried job.
	deliveredSec float64

	// Open trace spans for the job's current lifecycle phase (0 = none);
	// wait reopens on every requeue, compose and run restart per attempt.
	waitSpan    obs.SpanID
	composeSpan obs.SpanID
	runSpan     obs.SpanID
}

// scheduler is the event-driven core. Everything runs inside sim callbacks
// and processes, one at a time, so no locking is needed and every decision
// is deterministic.
type scheduler struct {
	fleet *cluster.FleetSystem
	opts  Options
	jobs  []*jobState
	queue []*jobState // arrived, not yet placed; strict FIFO

	slotJob  []int // per slot: owning job ID, -1 free
	slotHost []int // per slot: attached host index, -1 detached
	hostGPUs []int // assigned GPUs per host
	hostJobs []int // assigned jobs per host

	recomps int
	err     error

	// Fault state (see faults.go). A slot is schedulable only while its
	// device, drawer, and pod are healthy; a host only while neither it nor
	// its pod is down.
	slotFaulty []bool
	drawerDown []bool
	podDown    []bool
	hostDown   []bool
	slotConfig []int // compose-time owner per slot (-1 on a cold fleet)
	maxRetries int
	injector   *faults.Injector
	track      *telemetry.Track
	kills      int

	// Live-capacity integral (armed runs only): ∫ live GPUs dt up to
	// capLastT, advanced by capAccrue before any availability flag flips.
	// Utilization divides by this instead of fleet GPUs × makespan once
	// capacity ever dipped, so a permanently failed device stops dragging
	// the ratio below what the surviving fleet actually delivered.
	capTracking    bool
	capGPUSec      float64
	capLastT       time.Duration
	capIntAtFinish float64 // integral snapshotted at the last job finish
	liveSlots      int
	capEverDown    bool

	// Fragmentation accounting: free-GPU-seconds accumulated while at
	// least one job waits (capacity exists but the policy cannot use it).
	lastT      time.Duration
	fragGPUSec float64

	// Reusable scratch for the placement hot path: the View handed to the
	// policy each Place call (policies must not retain it), the policy
	// scoring buffers behind it, and the epoch-stamped duplicate check in
	// checkPlacement (seenGen bumps instead of clearing; a slot is "seen"
	// when its stamp matches the current generation).
	viewSlots       []SlotView
	viewGPUs        []int
	viewJobs        []int
	viewUp          []bool
	viewHostChassis []int // static: host index → chassis index
	viewHostPod     []int // static: host index → pod index
	pscratch        policyScratch
	seenSlot        []uint64
	seenGen         uint64

	// Observability (nil obs = off; every emit below is nil-checked so
	// the disabled hot path costs one branch and zero allocations).
	obs           *obs.Collector
	obsPlacements obs.CounterID
	obsRetries    obs.CounterID
	obsKills      obs.CounterID
	settled       int // done or failed jobs; the last one stops the sampler
}

// Run executes the job stream on the fleet to completion and returns the
// fleet telemetry. The fleet must be freshly composed (its simulation not
// yet run); Run drives the environment itself. Specs are sanitized and
// re-IDed in stream order. An error is returned if the simulation fails,
// a job cannot start (configuration error), or jobs remain unplaceable
// under the policy once the stream drains.
func Run(f *cluster.FleetSystem, specs []JobSpec, opts Options) (*FleetResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("orchestrator: empty job stream")
	}
	if opts.Policy == nil {
		opts.Policy = FirstFit{}
	}
	switch {
	case opts.AttachLatency == 0:
		opts.AttachLatency = DefaultAttachLatency
	case opts.AttachLatency < 0:
		opts.AttachLatency = 0
	}

	maxRetries := opts.MaxRetries
	switch {
	case maxRetries == 0:
		maxRetries = DefaultMaxRetries
	case maxRetries < 0:
		maxRetries = 0
	}
	s := &scheduler{
		fleet:      f,
		opts:       opts,
		slotJob:    make([]int, len(f.Slots)),
		slotHost:   make([]int, len(f.Slots)),
		hostGPUs:   make([]int, len(f.Hosts)),
		hostJobs:   make([]int, len(f.Hosts)),
		slotFaulty: make([]bool, len(f.Slots)),
		drawerDown: make([]bool, f.NumDrawers()),
		podDown:    make([]bool, f.NumPods()),
		hostDown:   make([]bool, len(f.Hosts)),
		maxRetries: maxRetries,
		track:      telemetry.NewTrack("faults"),
	}
	for i := range f.Slots {
		s.slotJob[i] = -1
		s.slotHost[i] = f.OwnerHost(f.Slots[i])
	}
	s.slotConfig = append([]int(nil), s.slotHost...)
	devSpec := f.Slots[0].Dev.Spec
	for i := range specs {
		spec := specs[i].Sanitize(len(f.Slots), len(f.Hosts), devSpec)
		spec.ID = i
		js := &jobState{spec: spec, host: -1}
		s.jobs = append(s.jobs, js)
		f.Env.Schedule(spec.Arrival, func() { s.arrive(js) })
	}
	if opts.Faults != nil && !opts.Faults.Empty() {
		s.armFaults(*opts.Faults)
	}
	if opts.Obs != nil {
		s.obsSetup(opts.Obs)
	}

	if err := f.Env.Run(); err != nil {
		return nil, fmt.Errorf("orchestrator: %w", err)
	}
	if s.err != nil {
		return nil, s.err
	}
	var stuck []string
	for _, js := range s.jobs {
		if !js.done && !js.failed {
			stuck = append(stuck, strconv.Itoa(js.spec.ID))
		}
	}
	if len(stuck) > 0 {
		return nil, fmt.Errorf("orchestrator: policy %s left job(s) %s unplaceable on %d hosts × %d GPUs",
			opts.Policy.Name(), strings.Join(stuck, ","), len(f.Hosts), len(f.Slots))
	}
	return s.result(), nil
}

func (s *scheduler) now() time.Duration { return s.fleet.Env.Now() }

// obsSetup wires the collector in: scheduler counters and gauges join the
// registry (the fabric and fault layers register theirs at their own
// seams), the fault injector learns to emit blast-radius spans, and the
// sampler starts. Runs once, before the environment does.
func (s *scheduler) obsSetup(c *obs.Collector) {
	s.obs = c
	reg := c.Registry()
	s.obsPlacements = reg.Counter("orchestrator.placements")
	s.obsRetries = reg.Counter("orchestrator.retries")
	s.obsKills = reg.Counter("orchestrator.kills")
	reg.Gauge("orchestrator.queue_depth", func() float64 { return float64(len(s.queue)) })
	reg.Gauge("orchestrator.live_gpus", func() float64 {
		if s.capTracking {
			return float64(s.liveSlots)
		}
		return float64(len(s.fleet.Slots))
	})
	reg.Gauge("orchestrator.stranded_gpus", func() float64 {
		free := 0
		for i, j := range s.slotJob {
			if j == -1 && s.slotAvailable(i) {
				free++
			}
		}
		return float64(free)
	})
	if s.injector != nil {
		s.injector.SetObs(c)
	}
	c.StartSampling()
}

// settle records one job reaching a terminal state (done or failed); the
// last one stops the metric sampler so the event queue can drain.
func (s *scheduler) settle() {
	s.settled++
	if s.obs != nil && s.settled == len(s.jobs) {
		s.obs.StopSampling()
	}
}

func (s *scheduler) probe(ev Event) {
	if s.opts.Probe != nil {
		s.opts.Probe(ev)
	}
}

// account accrues fragmentation time up to now: while any job waits, every
// free schedulable GPU is stranded capacity (a failed device is missing,
// not stranded).
//
//perf:hot
func (s *scheduler) account(now time.Duration) {
	if len(s.queue) > 0 && now > s.lastT {
		free := 0
		for i, j := range s.slotJob {
			if j == -1 && s.slotAvailable(i) {
				free++
			}
		}
		s.fragGPUSec += float64(free) * (now - s.lastT).Seconds()
	}
	s.lastT = now
}

func (s *scheduler) arrive(js *jobState) {
	if s.err != nil {
		return
	}
	now := s.now()
	s.account(now)
	js.arrived = now
	s.queue = append(s.queue, js)
	s.probe(Event{Kind: EventArrive, At: now, Job: js.spec.ID, Host: -1})
	if s.obs != nil {
		js.waitSpan = s.obs.Begin(obs.CatOrchestrator, "wait")
		s.obs.SetAttr(js.waitSpan, "job", int64(js.spec.ID))
	}
	s.trySchedule()
}

// trySchedule places queue heads for as long as the policy can.
//
//perf:hot
func (s *scheduler) trySchedule() {
	for s.err == nil && len(s.queue) > 0 {
		js := s.queue[0]
		host, picks, ok := s.opts.Policy.Place(s.view(), Request{
			Job: js.spec.ID, Tenant: js.spec.Tenant, GPUs: js.spec.GPUs,
		})
		if !ok {
			return
		}
		if err := s.checkPlacement(js, host, picks); err != nil {
			s.err = err
			return
		}
		// Pop by copy-down so the queue's backing array keeps its capacity.
		m := copy(s.queue, s.queue[1:])
		s.queue[m] = nil
		s.queue = s.queue[:m]
		s.place(js, host, picks)
	}
}

// checkPlacement validates a policy's pick before any state changes: the
// scheduler trusts no Policy implementation with its invariants.
//
//perf:hot
func (s *scheduler) checkPlacement(js *jobState, host int, picks []int) error {
	if host < 0 || host >= len(s.fleet.Hosts) {
		return fmt.Errorf("orchestrator: policy %s placed job %d on host %d of %d",
			s.opts.Policy.Name(), js.spec.ID, host, len(s.fleet.Hosts))
	}
	if !s.hostAvailable(host) {
		return fmt.Errorf("orchestrator: policy %s placed job %d on crashed host %d",
			s.opts.Policy.Name(), js.spec.ID, host)
	}
	if len(picks) != js.spec.GPUs {
		return fmt.Errorf("orchestrator: policy %s picked %d slots for job %d needing %d",
			s.opts.Policy.Name(), len(picks), js.spec.ID, js.spec.GPUs)
	}
	if len(s.seenSlot) < len(s.fleet.Slots) {
		s.seenSlot = make([]uint64, len(s.fleet.Slots))
	}
	s.seenGen++
	for _, i := range picks {
		if i < 0 || i >= len(s.fleet.Slots) || s.seenSlot[i] == s.seenGen {
			return fmt.Errorf("orchestrator: policy %s picked invalid/duplicate slot %d for job %d",
				s.opts.Policy.Name(), i, js.spec.ID)
		}
		s.seenSlot[i] = s.seenGen
		if s.slotJob[i] != -1 {
			return fmt.Errorf("orchestrator: policy %s double-assigned slot %d (held by job %d) to job %d",
				s.opts.Policy.Name(), i, s.slotJob[i], js.spec.ID)
		}
		if !s.slotAvailable(i) {
			return fmt.Errorf("orchestrator: policy %s picked failed slot %d for job %d",
				s.opts.Policy.Name(), i, js.spec.ID)
		}
	}
	return nil
}

// place claims the slots, performs the control-plane recomposition, and
// schedules the launch after the attach delay.
func (s *scheduler) place(js *jobState, host int, picks []int) {
	now := s.now()
	s.account(now)
	js.placed = now
	js.host = host
	h := s.fleet.Hosts[host]
	moves := 0 // this placement only; js.moves accumulates across attempts
	for _, i := range picks {
		slot := s.fleet.Slots[i]
		s.slotJob[i] = js.spec.ID
		js.slots = append(js.slots, slot)
		js.refs = append(js.refs, slot.Ref)
		js.indices = append(js.indices, i)
		if s.slotHost[i] == host {
			continue
		}
		// Recomposition: advanced mode re-allocates on the fly; a detached
		// device attaches, an attached one reassigns in a single step. The
		// fleet routes the op through the slot's own chassis, over its local
		// host port or the pod fabric port for a cross-chassis composition.
		var err error
		if s.slotHost[i] == -1 {
			err = s.fleet.AttachSlot(slot, h)
		} else {
			err = s.fleet.ReassignSlot(slot, h)
		}
		if err != nil {
			s.err = fmt.Errorf("orchestrator: recomposing %v for job %d: %w", slot.Ref, js.spec.ID, err)
			return
		}
		s.slotHost[i] = host
		moves++
		if s.obs != nil {
			ev := s.obs.Instant(obs.CatOrchestrator, "recompose")
			s.obs.SetAttr(ev, "job", int64(js.spec.ID))
			s.obs.SetAttr(ev, "slot", int64(i))
			s.obs.SetAttr(ev, "host", int64(host))
		}
	}
	js.moves += moves
	s.recomps += moves
	s.hostGPUs[host] += js.spec.GPUs
	s.hostJobs[host]++
	s.probe(Event{Kind: EventPlace, At: now, Job: js.spec.ID, Host: host, Slots: js.refs, Indices: js.indices, Moves: moves})
	if s.obs != nil {
		s.obs.Inc(s.obsPlacements)
		s.obs.End(js.waitSpan)
		js.waitSpan = 0
		js.composeSpan = s.obs.Begin(obs.CatOrchestrator, "compose")
		s.obs.SetAttr(js.composeSpan, "job", int64(js.spec.ID))
		s.obs.SetAttr(js.composeSpan, "host", int64(host))
		s.obs.SetAttr(js.composeSpan, "moves", int64(moves))
	}

	if delay := s.opts.AttachLatency * time.Duration(moves); delay > 0 {
		s.fleet.Env.After(delay, func() { s.launch(js) })
	} else {
		s.launch(js)
	}
}

// launch starts the training processes on the job's system view. A job
// killed during the hot-plug window (its host crashed, a picked device
// died) reschedules here instead of starting.
func (s *scheduler) launch(js *jobState) {
	if s.err != nil {
		return
	}
	now := s.now()
	s.account(now)
	if js.killed {
		s.reschedule(js, now)
		return
	}
	js.launched = now
	w, err := dlmodel.BenchmarkByName(js.spec.Workload)
	if err != nil {
		s.err = fmt.Errorf("orchestrator: job %d: %w", js.spec.ID, err)
		return
	}
	remaining := js.spec.Epochs - js.epochsDone
	if remaining < 1 {
		remaining = 1
	}
	name := "fleet-j" + strconv.Itoa(js.spec.ID) + "-h" + strconv.Itoa(js.host+1)
	sys := s.fleet.JobSystem(s.fleet.Hosts[js.host], js.slots, name)
	job, err := train.Start(sys, train.Options{
		Workload:            w,
		Precision:           js.spec.Precision,
		Strategy:            js.spec.Strategy,
		Sharded:             js.spec.Sharded,
		BatchPerGPU:         js.spec.BatchPerGPU,
		Epochs:              remaining,
		ItersPerEpoch:       js.spec.ItersPerEpoch,
		CheckpointsPerEpoch: js.spec.CheckpointsPerEpoch,
		ResumeEpochs:        js.epochsDone,
		Obs:                 s.obs,
		ObsJob:              js.spec.ID,
	})
	if err != nil {
		s.err = fmt.Errorf("orchestrator: starting job %d (%s ×%d on host%d): %w",
			js.spec.ID, js.spec.Workload, js.spec.GPUs, js.host+1, err)
		return
	}
	js.job = job
	s.probe(Event{Kind: EventLaunch, At: now, Job: js.spec.ID, Host: js.host, Slots: js.refs, Indices: js.indices})
	if s.obs != nil {
		s.obs.End(js.composeSpan)
		js.composeSpan = 0
		js.runSpan = s.obs.Begin(obs.CatOrchestrator, "run")
		s.obs.SetAttr(js.runSpan, "job", int64(js.spec.ID))
		s.obs.SetAttr(js.runSpan, "host", int64(js.host))
		s.obs.SetAttr(js.runSpan, "attempt", int64(js.retries))
	}
	s.fleet.Env.Go("fleet.watch.j"+strconv.Itoa(js.spec.ID)+"r"+strconv.Itoa(js.retries), func(p *sim.Proc) {
		job.Done().Wait(p)
		s.finish(js, p.Now())
	})
}

// finish collects the result, releases the GPUs (attachment is left in
// place — the next placement reuses or reassigns it) and reschedules. For
// an attempt a fault killed, it routes to the recovery path instead once
// the wind-down has drained.
func (s *scheduler) finish(js *jobState, now time.Duration) {
	s.account(now)
	if js.killed {
		s.reschedule(js, now)
		return
	}
	js.finished = now
	res, err := js.job.Collect()
	if err != nil {
		s.err = fmt.Errorf("orchestrator: collecting job %d: %w", js.spec.ID, err)
		return
	}
	js.res = res
	js.deliveredSec += float64(js.spec.GPUs) * (now - js.launched).Seconds()
	for _, slot := range js.slots {
		s.slotJob[slot.Index] = -1
	}
	s.hostGPUs[js.host] -= js.spec.GPUs
	s.hostJobs[js.host]--
	js.done = true
	if s.obs != nil {
		s.obs.End(js.runSpan)
		js.runSpan = 0
	}
	s.settle()
	if s.capTracking {
		// Snapshot the capacity integral at every finish; the last one wins
		// and is exactly ∫ live GPUs dt over [0, makespan].
		s.capAccrue(now)
		s.capIntAtFinish = s.capGPUSec
	}
	s.probe(Event{Kind: EventFinish, At: now, Job: js.spec.ID, Host: js.host, Slots: js.refs, Indices: js.indices})
	s.trySchedule()
}

// view snapshots scheduler state into the scheduler-owned scratch View.
// The snapshot is rebuilt from live state on every call, so a policy (which
// must not retain it) always sees current values while the placement path
// allocates nothing after the first call.
//
//perf:hot
func (s *scheduler) view() View {
	if s.viewSlots == nil {
		s.viewSlots = make([]SlotView, len(s.fleet.Slots))
		s.viewGPUs = make([]int, len(s.fleet.Hosts))
		s.viewJobs = make([]int, len(s.fleet.Hosts))
		s.viewUp = make([]bool, len(s.fleet.Hosts))
		s.viewHostChassis = make([]int, len(s.fleet.Hosts))
		s.viewHostPod = make([]int, len(s.fleet.Hosts))
		for h, host := range s.fleet.Hosts {
			s.viewHostChassis[h] = host.ChassisIdx
			s.viewHostPod[h] = host.Pod
		}
	}
	cpp := s.fleet.Opts.ChassisPerPod
	if cpp < 1 {
		cpp = 1
	}
	v := View{
		Hosts:             len(s.fleet.Hosts),
		Drawers:           s.fleet.NumDrawers(),
		Pods:              s.fleet.NumPods(),
		Chassis:           s.fleet.NumChassis(),
		DrawersPerChassis: falcon.NumDrawers,
		ChassisPerPod:     cpp,
		HostActiveGPUs:    s.viewGPUs,
		HostActiveJobs:    s.viewJobs,
		HostUp:            s.viewUp,
		HostChassis:       s.viewHostChassis,
		HostPod:           s.viewHostPod,
		Slots:             s.viewSlots,
		scratch:           &s.pscratch,
	}
	copy(v.HostActiveGPUs, s.hostGPUs)
	copy(v.HostActiveJobs, s.hostJobs)
	for h := range v.HostUp {
		v.HostUp[h] = s.hostAvailable(h)
	}
	for i, slot := range s.fleet.Slots {
		down := !s.slotAvailable(i)
		v.Slots[i] = SlotView{
			Index:   i,
			Drawer:  slot.Drawer,
			Chassis: slot.ChassisIdx,
			Pod:     slot.Pod,
			Host:    s.slotHost[i],
			Free:    s.slotJob[i] == -1 && !down,
			Down:    down,
			Config:  s.slotConfig[i],
		}
	}
	return v
}

func (s *scheduler) result() *FleetResult {
	r := &FleetResult{
		Policy: s.opts.Policy.Name(),
		Hosts:  len(s.fleet.Hosts),
		GPUs:   len(s.fleet.Slots),

		Recompositions:          s.recomps,
		FragmentationGPUSeconds: s.fragGPUSec,
		Kills:                   s.kills,
		Track:                   s.track,
	}
	if s.fleet.Opts.Hierarchical() {
		r.Pods = s.fleet.NumPods()
		r.Chassis = s.fleet.NumChassis()
		r.Oversubscription = s.fleet.Opts.Oversubscription
		if r.Oversubscription == 0 {
			r.Oversubscription = 1
		}
	}
	if s.injector != nil {
		for _, rec := range s.injector.Records() {
			if !rec.Up {
				r.Faults++
			}
		}
		r.FaultLedger = s.injector.AppliedLedger()
	}
	completed := 0
	r.Jobs = make([]JobResult, 0, len(s.jobs))
	for _, js := range s.jobs {
		jr := JobResult{
			ID: js.spec.ID, Workload: js.spec.Workload,
			GPUs: js.spec.GPUs, Tenant: js.spec.Tenant, Host: js.host, Moves: js.moves,
			Slots:   js.refs,
			Retries: js.retries, EpochsDone: js.epochsDone,
			GPUSeconds: js.deliveredSec, LostGPUSeconds: js.lostSec,
			Failed: js.failed, FailureCause: js.cause,
			Train: js.res,
		}
		r.LostGPUSeconds += js.lostSec
		if js.failed {
			// An abandoned job has no final attempt: only its arrival, the
			// lost work above, and any checkpointed-but-wasted delivered
			// time are meaningful. The fleet aggregate counts none of the
			// latter — an abandoned checkpoint delivers nothing.
			jr.Arrival = js.arrived
			r.FailedJobs++
			r.Jobs = append(r.Jobs, jr)
			continue
		}
		completed++
		jr.Arrival, jr.Placed, jr.Launched, jr.Finished = js.arrived, js.placed, js.launched, js.finished
		jr.Wait, jr.Runtime = js.launched-js.arrived, js.finished-js.launched
		r.Jobs = append(r.Jobs, jr)
		if jr.Finished > r.Makespan {
			r.Makespan = jr.Finished
		}
		r.TotalWait += jr.Wait
		if jr.Wait > r.MaxWait {
			r.MaxWait = jr.Wait
		}
		// Delivered GPU time over every attempt, not just the final one: a
		// retried job's checkpointed epochs were real work its final-attempt
		// runtime never re-ran.
		r.GPUSeconds += jr.GPUSeconds
	}
	if completed > 0 {
		r.MeanWait = r.TotalWait / time.Duration(completed)
	}
	if r.Makespan > 0 {
		denom := float64(r.GPUs) * r.Makespan.Seconds()
		if s.capEverDown && s.capIntAtFinish > 0 {
			// Capacity dipped during the run: divide by the GPU time that
			// actually existed, so a permanent device failure shrinks the
			// denominator instead of reading as scheduler idleness.
			denom = s.capIntAtFinish
		}
		r.Utilization = r.GPUSeconds / denom
		r.Goodput = r.GPUSeconds / r.Makespan.Seconds()
	}
	return r
}
