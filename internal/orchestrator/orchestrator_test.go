package orchestrator

import (
	"strings"
	"testing"
	"time"

	"composable/internal/cluster"
	"composable/internal/gpu"
	"composable/internal/sim"
	"composable/internal/train"
)

func testFleet(t *testing.T, hosts, gpus int, preattach bool) *cluster.FleetSystem {
	t.Helper()
	env := sim.NewEnv()
	f, err := cluster.ComposeFleet(env, cluster.FleetOptions{Hosts: hosts, GPUs: gpus, Preattach: preattach})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func testStream() []JobSpec {
	return []JobSpec{
		{Arrival: 0, Tenant: 0, GPUs: 4, Workload: "ResNet-50", Precision: gpu.FP16, Epochs: 1, ItersPerEpoch: 3},
		{Arrival: 0, Tenant: 0, GPUs: 2, Workload: "BERT", Precision: gpu.FP16, Epochs: 1, ItersPerEpoch: 3},
		{Arrival: 2 * time.Second, Tenant: 1, GPUs: 4, Workload: "MobileNetV2", Precision: gpu.FP16, Epochs: 1, ItersPerEpoch: 3},
		{Arrival: 3 * time.Second, Tenant: 1, GPUs: 2, Workload: "ResNet-50", Precision: gpu.FP32, Epochs: 1, ItersPerEpoch: 2},
	}
}

func TestFleetRunCompletesAllJobs(t *testing.T) {
	for _, p := range Policies() {
		if p.Name() == "static" {
			continue // needs preattach; covered separately
		}
		t.Run(p.Name(), func(t *testing.T) {
			f := testFleet(t, 2, 8, false)
			res, err := Run(f, testStream(), Options{Policy: p})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Jobs) != 4 {
				t.Fatalf("got %d job results, want 4", len(res.Jobs))
			}
			for _, j := range res.Jobs {
				if j.Finished <= j.Launched || j.Launched < j.Placed || j.Placed < j.Arrival {
					t.Errorf("job %d lifecycle out of order: %+v", j.ID, j)
				}
				if j.Train == nil || j.Train.TotalTime <= 0 {
					t.Errorf("job %d has no training result", j.ID)
				}
			}
			if res.Makespan <= 0 || res.Utilization <= 0 || res.Utilization > 1 {
				t.Errorf("bad aggregates: makespan %v util %v", res.Makespan, res.Utilization)
			}
			// A cold (fully detached) fleet must recompose at least once
			// per job's first placement.
			if res.Recompositions == 0 {
				t.Error("cold fleet ran without a single recomposition")
			}
		})
	}
}

func TestFleetRunDeterministic(t *testing.T) {
	run := func() string {
		f := testFleet(t, 3, 12, false)
		res, err := Run(f, testStream(), Options{Policy: DrawerLocal{}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical fleet runs diverged:\n--- first\n%s--- second\n%s", a, b)
	}
}

func TestStaticPolicyNeverRecomposes(t *testing.T) {
	f := testFleet(t, 2, 8, true)
	res, err := Run(f, testStream(), Options{Policy: Static{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recompositions != 0 {
		t.Fatalf("static partition recomposed %d times", res.Recompositions)
	}
	for _, j := range res.Jobs {
		if j.Host != j.Tenant {
			t.Errorf("job %d ran on host %d, not its tenant %d", j.ID, j.Host, j.Tenant)
		}
	}
}

func TestStaticPolicyOnDetachedFleetIsUnplaceable(t *testing.T) {
	f := testFleet(t, 2, 8, false)
	_, err := Run(f, testStream(), Options{Policy: Static{}})
	if err == nil || !strings.Contains(err.Error(), "unplaceable") {
		t.Fatalf("err = %v, want unplaceable", err)
	}
}

func TestOversizedDemandIsClamped(t *testing.T) {
	f := testFleet(t, 2, 4, false)
	res, err := Run(f, []JobSpec{
		{GPUs: 99, Workload: "ResNet-50", Precision: gpu.FP16, Epochs: 1, ItersPerEpoch: 2},
		{GPUs: 0, Workload: "ResNet-50", Precision: gpu.FP16, Epochs: 1, ItersPerEpoch: 2},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].GPUs != 4 || res.Jobs[1].GPUs != 2 {
		t.Fatalf("demands not clamped: %d, %d", res.Jobs[0].GPUs, res.Jobs[1].GPUs)
	}
}

// badPolicy double-assigns the same slot to every job.
type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }
func (badPolicy) Place(v View, r Request) (int, []int, bool) {
	slots := make([]int, r.GPUs)
	return 0, slots, true // slot 0 repeated
}

func TestSchedulerRejectsDoubleAssignment(t *testing.T) {
	f := testFleet(t, 2, 8, false)
	_, err := Run(f, testStream()[:1], Options{Policy: badPolicy{}})
	if err == nil || !strings.Contains(err.Error(), "invalid/duplicate") {
		t.Fatalf("err = %v, want duplicate-slot rejection", err)
	}
}

func TestAttachLatencyDelaysLaunch(t *testing.T) {
	stream := testStream()[:1]
	run := func(latency time.Duration) *FleetResult {
		f := testFleet(t, 2, 8, false)
		res, err := Run(f, stream, Options{Policy: FirstFit{}, AttachLatency: latency})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	slow := run(5 * time.Second)
	free := run(-1) // negative = free recomposition
	j := slow.Jobs[0]
	wantDelay := 5 * time.Second * time.Duration(j.Moves)
	if j.Moves == 0 || j.Launched-j.Placed != wantDelay {
		t.Errorf("launch delay %v for %d moves, want %v", j.Launched-j.Placed, j.Moves, wantDelay)
	}
	if f := free.Jobs[0]; f.Launched != f.Placed {
		t.Errorf("free recomposition still delayed launch by %v", f.Launched-f.Placed)
	}
}

func TestSanitizeSpec(t *testing.T) {
	spec := JobSpec{
		Arrival: -time.Second, Tenant: 9, GPUs: 1,
		Workload: "no-such-model", Strategy: "weird", Sharded: true,
		Epochs: 99, ItersPerEpoch: 0, BatchPerGPU: 1 << 20,
	}
	got := spec.Sanitize(8, 2, gpu.TeslaV100PCIe)
	if got.Arrival != 0 || got.Tenant != 1 || got.GPUs != 2 {
		t.Errorf("bad clamps: %+v", got)
	}
	if got.Workload != "ResNet-50" || got.Strategy != train.DDP {
		t.Errorf("bad fallbacks: %+v", got)
	}
	if got.Epochs != 8 || got.ItersPerEpoch != 1 {
		t.Errorf("bad run-length clamps: %+v", got)
	}
	if got.BatchPerGPU < 1 || got.BatchPerGPU >= 1<<20 {
		t.Errorf("batch not fitted: %d", got.BatchPerGPU)
	}
	if again := got.Sanitize(8, 2, gpu.TeslaV100PCIe); again != got {
		t.Errorf("Sanitize not idempotent:\n%+v\n%+v", got, again)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestDrawerLocalPacksOneDrawer(t *testing.T) {
	f := testFleet(t, 2, 16, false) // both drawers populated
	res, err := Run(f, []JobSpec{
		{GPUs: 4, Workload: "ResNet-50", Precision: gpu.FP16, Epochs: 1, ItersPerEpoch: 2},
	}, Options{Policy: DrawerLocal{}})
	if err != nil {
		t.Fatal(err)
	}
	drawer := res.Jobs[0].Slots[0].Drawer
	for _, ref := range res.Jobs[0].Slots {
		if ref.Drawer != drawer {
			t.Fatalf("drawer-local placement spans drawers: %v", res.Jobs[0].Slots)
		}
	}
}

func TestBandwidthAwareSpreadsDrawers(t *testing.T) {
	f := testFleet(t, 2, 16, false)
	res, err := Run(f, []JobSpec{
		{GPUs: 4, Workload: "ResNet-50", Precision: gpu.FP16, Epochs: 1, ItersPerEpoch: 2},
	}, Options{Policy: BandwidthAware{}})
	if err != nil {
		t.Fatal(err)
	}
	perDrawer := map[int]int{}
	for _, ref := range res.Jobs[0].Slots {
		perDrawer[ref.Drawer]++
	}
	if perDrawer[0] != 2 || perDrawer[1] != 2 {
		t.Fatalf("bandwidth-aware placement not balanced: %v", res.Jobs[0].Slots)
	}
}
