// The fleet-orchestrator micro-benchmark. The harness body lives in
// internal/perfbench so that `go test -bench` here and `benchrunner
// -bench-json` measure the exact same code.
package orchestrator_test

import (
	"testing"

	"composable/internal/perfbench"
)

// BenchmarkFleetSchedule measures one complete fleet scheduling round:
// compose a 3-host × 8-GPU fleet and drive a fixed 6-job stream through
// the orchestrator, dynamic recompositions included.
func BenchmarkFleetSchedule(b *testing.B) { perfbench.BenchOrchestratorFleetSchedule(b) }

// BenchmarkFaultsRecoverReschedule measures the full fault-recovery path:
// fault injection, cooperative wind-down, control-plane hot-unplug,
// requeue, and checkpoint-resume on a 2-host × 8-GPU fleet.
func BenchmarkFaultsRecoverReschedule(b *testing.B) { perfbench.BenchFaultsRecoverReschedule(b) }
