package orchestrator

import (
	"fmt"
	"strings"
)

// View is the scheduler state a Policy decides over. It is a snapshot; a
// policy must not retain it across calls.
type View struct {
	Hosts int
	// Drawers is the fleet-global drawer index space (chassis ×
	// falcon.NumDrawers in a pod fleet).
	Drawers int
	// Pods / Chassis are the hierarchy extents (both 1 in the degenerate
	// single-chassis shape, or on a hand-built View that leaves them 0).
	Pods    int
	Chassis int
	// DrawersPerChassis and ChassisPerPod map a global drawer index back
	// to its chassis and pod (zero on hand-built flat Views).
	DrawersPerChassis int
	ChassisPerPod     int
	// Slots in fleet slot order. The order is drawer-contiguous: every
	// drawer's slots form one consecutive range, which the locality
	// policies exploit.
	Slots []SlotView
	// HostActiveGPUs / HostActiveJobs count currently assigned (placed or
	// running) resources per host.
	HostActiveGPUs []int
	HostActiveJobs []int
	// HostChassis / HostPod locate each host in the hierarchy. Nil on
	// hand-built flat Views (everything co-located).
	HostChassis []int
	HostPod     []int
	// HostUp marks hosts that have not crashed. Nil (a fault-free
	// scheduler build) means every host is up.
	HostUp []bool

	// scratch, when set by the scheduler, provides the policy helpers
	// reusable buffers so the hot placement path allocates nothing. A
	// hand-built View (tests, external callers) leaves it nil and the
	// helpers fall back to allocating.
	scratch *policyScratch
}

// policyScratch is the scheduler-owned buffer set behind allocation-free
// policy scoring. Buffers are only valid for the duration of one Place
// call; the picks returned to the scheduler are consumed before the next
// call overwrites them.
type policyScratch struct {
	picks  []int      // returned picks (FirstFit, Static, BandwidthAware)
	best   []int      // DrawerLocal: best single-drawer picks so far
	cands  []SlotView // candidate slots being ranked
	taken  []bool     // BandwidthAware: slots already picked this placement
	load   []int      // BandwidthAware: per-drawer active-device counts
	dstart []int      // BandwidthAware: per-drawer slot range offsets
}

// pickBuf returns a zero-length int buffer with at least the given
// capacity, reusing scratch when available.
func (v View) pickBuf(n int) []int {
	if sc := v.scratch; sc != nil {
		if cap(sc.picks) < n {
			sc.picks = make([]int, 0, n)
		}
		sc.picks = sc.picks[:0]
		return sc.picks
	}
	//lint:allow hotalloc(fallback for hand-built Views without scratch)
	return make([]int, 0, n)
}

// hostUp reports whether host h is schedulable.
func (v View) hostUp(h int) bool { return v.HostUp == nil || v.HostUp[h] }

// hostChassis / hostPod locate a host; hand-built Views without the
// arrays are flat (everything co-located).
func (v View) hostChassis(h int) int {
	if v.HostChassis == nil {
		return 0
	}
	return v.HostChassis[h]
}

func (v View) hostPod(h int) int {
	if v.HostPod == nil {
		return 0
	}
	return v.HostPod[h]
}

// drawerChassis / drawerPod map a global drawer index to its place in the
// hierarchy (identity-flat when the mapping fields are unset).
func (v View) drawerChassis(d int) int {
	if v.DrawersPerChassis <= 0 {
		return 0
	}
	return d / v.DrawersPerChassis
}

func (v View) drawerPod(d int) int {
	if v.ChassisPerPod <= 0 {
		return 0
	}
	return v.drawerChassis(d) / v.ChassisPerPod
}

// distTier ranks fabric distance from a host's adapter: 0 same chassis
// (drawer-switch hops only), 1 same pod (through the leaf switch), 2
// cross-pod (through the oversubscribed spine). In the degenerate
// single-chassis shape every tier is 0 and distance never discriminates.
func distTier(chassis, pod, hostChassis, hostPod int) int {
	if chassis == hostChassis {
		return 0
	}
	if pod == hostPod {
		return 1
	}
	return 2
}

// SlotView is one GPU slot as a policy sees it.
type SlotView struct {
	Index  int
	Drawer int // fleet-global drawer index
	// Pod and Chassis locate the slot in the hierarchy (zero in the
	// degenerate shape and on hand-built flat Views).
	Pod     int
	Chassis int
	// Host the slot is currently attached to (-1 detached). A free slot
	// attached to another host can be taken, at the cost of one
	// recomposition move.
	Host int
	// Free marks a slot with no assigned job that is schedulable now; a
	// Down slot is never Free.
	Free bool
	// Down marks a failed device or unplugged drawer: invisible capacity
	// until the repair lands.
	Down bool
	// Config is the host the slot was attached to when the run began
	// (-1 on a cold fleet): the fixed partition the static policy owns.
	// After a drawer flap re-plugs a detached slot, Config is how the
	// static layout is restored.
	Config int
}

// Request is the head-of-queue job a policy must place.
type Request struct {
	Job    int
	Tenant int
	GPUs   int
}

// Policy picks a host and GPU slots for a job, or reports it cannot yet.
// Implementations must be deterministic pure functions of (View, Request):
// the fleet sweep runs every scenario twice and requires identical
// telemetry.
type Policy interface {
	Name() string
	Place(v View, r Request) (host int, slots []int, ok bool)
}

// Policies returns the built-in policies in shoot-out order.
func Policies() []Policy {
	return []Policy{FirstFit{}, DrawerLocal{}, BandwidthAware{}, Static{}}
}

// PolicyNames lists the built-in policy names.
func PolicyNames() []string {
	ps := Policies()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name()
	}
	return names
}

// PolicyByName resolves a built-in policy.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("orchestrator: unknown policy %q (have %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// countFree returns the number of free slots.
//
//perf:hot
func countFree(v View) int {
	n := 0
	for _, s := range v.Slots {
		if s.Free {
			n++
		}
	}
	return n
}

// sortSlotsByRank stable-sorts candidate slots by (attach rank for host,
// slot index) with a typed insertion sort: the candidate sets are small
// (one drawer, or the free pool) and the closure-free sort keeps policy
// scoring off the allocator.
//
//perf:hot
func sortSlotsByRank(cands []SlotView, host int) {
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		rc := attachRank(c, host)
		j := i - 1
		for j >= 0 {
			rj := attachRank(cands[j], host)
			if rj < rc || (rj == rc && cands[j].Index < c.Index) {
				break
			}
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}
}

// sortSlotsByRankDist extends sortSlotsByRank's key with the fabric
// distance tier between attach rank and index: (rank, distance, index).
// On a flat View distance never differs and the order matches
// sortSlotsByRank exactly.
//
//perf:hot
func sortSlotsByRankDist(cands []SlotView, host, hostChassis, hostPod int) {
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		rc := attachRank(c, host)
		dc := distTier(c.Chassis, c.Pod, hostChassis, hostPod)
		j := i - 1
		for j >= 0 {
			rj := attachRank(cands[j], host)
			dj := distTier(cands[j].Chassis, cands[j].Pod, hostChassis, hostPod)
			if rj < rc || (rj == rc && (dj < dc || (dj == dc && cands[j].Index < c.Index))) {
				break
			}
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}
}

// sortInts is an allocation-free insertion sort for the short pick lists
// policies return.
//
//perf:hot
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// leastLoadedHost picks the up host with the fewest assigned GPUs,
// breaking ties by fewest assigned jobs, then lowest index. It returns -1
// when every host is down.
func leastLoadedHost(v View) int {
	best := -1
	for h := 0; h < v.Hosts; h++ {
		if !v.hostUp(h) {
			continue
		}
		switch {
		case best == -1:
			best = h
		case v.HostActiveGPUs[h] < v.HostActiveGPUs[best]:
			best = h
		case v.HostActiveGPUs[h] == v.HostActiveGPUs[best] &&
			v.HostActiveJobs[h] < v.HostActiveJobs[best]:
			best = h
		}
	}
	return best
}

// attachRank orders slots by recomposition cost for a target host:
// already attached there (0, free), detached (1, one attach), attached
// elsewhere (2, one reassign).
func attachRank(s SlotView, host int) int {
	switch s.Host {
	case host:
		return 0
	case -1:
		return 1
	default:
		return 2
	}
}

// FirstFit is the naive baseline: every job goes to the lowest-index host
// and takes the first free GPUs in slot order. It ignores drawer locality,
// attachment state and host load — the contention it piles onto host 1's
// CPU, storage and adapter is what the policy shoot-out (S2) measures.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "firstfit" }

// Place implements Policy.
//
//perf:hot
func (FirstFit) Place(v View, r Request) (int, []int, bool) {
	if countFree(v) < r.GPUs {
		return 0, nil, false
	}
	picks := v.pickBuf(r.GPUs)
	for _, s := range v.Slots {
		if s.Free {
			picks = append(picks, s.Index)
			if len(picks) == r.GPUs {
				break
			}
		}
	}
	// Lowest-index host that hasn't crashed (host 1 absent faults).
	for h := 0; h < v.Hosts; h++ {
		if v.hostUp(h) {
			return h, picks, true
		}
	}
	return 0, nil, false
}

// DrawerLocal spreads jobs across hosts by load and packs each job's GPUs
// into a single drawer when one has room, preferring slots already
// attached to the chosen host: peer (all-reduce) traffic stays inside one
// PCIe switch and recompositions are minimized — §III-B's locality
// argument as a scheduling policy.
type DrawerLocal struct{}

// Name implements Policy.
func (DrawerLocal) Name() string { return "drawer" }

// Place implements Policy.
//
//perf:hot
func (DrawerLocal) Place(v View, r Request) (int, []int, bool) {
	if countFree(v) < r.GPUs {
		return 0, nil, false
	}
	host := leastLoadedHost(v)
	if host == -1 {
		return 0, nil, false
	}
	var cands []SlotView
	var best []int
	if sc := v.scratch; sc != nil {
		cands, best = sc.cands[:0], sc.best[:0]
	}
	hc, hp := v.hostChassis(host), v.hostPod(host)
	// Free slots in fleet order: every drawer's free slots form one
	// contiguous run, so one pass groups them without a per-drawer rescan
	// (the old Drawers × Slots loop was quadratic at pod-fleet scale).
	for _, s := range v.Slots {
		if s.Free {
			cands = append(cands, s)
		}
	}
	// Single-drawer placements first: among drawers that fit the whole
	// job, take the one whose best slots need the fewest moves (ties:
	// closer to the host, then lower drawer index; in the degenerate
	// shape distance never differs and moves alone decide, as before).
	bestMoves, bestTier := -1, 0
	for start := 0; start < len(cands); {
		end := start + 1
		for end < len(cands) && cands[end].Drawer == cands[start].Drawer {
			end++
		}
		run := cands[start:end]
		start = end
		if len(run) < r.GPUs {
			continue
		}
		sortSlotsByRank(run, host)
		moves := 0
		for _, c := range run[:r.GPUs] {
			if c.Host != host {
				moves++
			}
		}
		tier := distTier(run[0].Chassis, run[0].Pod, hc, hp)
		if bestMoves == -1 || moves < bestMoves || (moves == bestMoves && tier < bestTier) {
			bestMoves, bestTier = moves, tier
			best = best[:0]
			for _, c := range run[:r.GPUs] {
				best = append(best, c.Index)
			}
		}
	}
	if sc := v.scratch; sc != nil {
		sc.cands, sc.best = cands, best
	}
	if bestMoves != -1 {
		return host, best, true
	}
	// No drawer fits alone: span drawers, minimizing moves then distance.
	cands = cands[:0]
	for _, s := range v.Slots {
		if s.Free {
			cands = append(cands, s)
		}
	}
	sortSlotsByRankDist(cands, host, hc, hp)
	picks := v.pickBuf(r.GPUs)
	for _, c := range cands[:r.GPUs] {
		picks = append(picks, c.Index)
	}
	if sc := v.scratch; sc != nil {
		sc.cands = cands
	}
	return host, picks, true
}

// BandwidthAware spreads jobs across hosts by load and a job's GPUs across
// drawers by active-device count, splitting peer traffic over both drawer
// switches instead of saturating one — the opposite bet to DrawerLocal,
// trading switch locality for aggregate link bandwidth.
type BandwidthAware struct{}

// Name implements Policy.
func (BandwidthAware) Name() string { return "bandwidth" }

// Place implements Policy.
//
//perf:hot
func (BandwidthAware) Place(v View, r Request) (int, []int, bool) {
	if countFree(v) < r.GPUs {
		return 0, nil, false
	}
	host := leastLoadedHost(v)
	if host == -1 {
		return 0, nil, false
	}
	// Per-drawer load: devices currently assigned to any job. taken marks
	// slots already picked this placement, a bitset standing in for the
	// old map.
	var load []int
	var taken []bool
	var dstart []int
	if sc := v.scratch; sc != nil {
		if cap(sc.load) < v.Drawers {
			sc.load = make([]int, v.Drawers)
		}
		load = sc.load[:v.Drawers]
		for i := range load {
			load[i] = 0
		}
		if cap(sc.taken) < len(v.Slots) {
			sc.taken = make([]bool, len(v.Slots))
		}
		taken = sc.taken[:len(v.Slots)]
		for i := range taken {
			taken[i] = false
		}
		if cap(sc.dstart) < v.Drawers+1 {
			sc.dstart = make([]int, v.Drawers+1)
		}
		dstart = sc.dstart[:v.Drawers+1]
	} else {
		//lint:allow hotalloc(fallback for hand-built Views without scratch)
		load = make([]int, v.Drawers)
		//lint:allow hotalloc(fallback for hand-built Views without scratch)
		taken = make([]bool, len(v.Slots))
		//lint:allow hotalloc(fallback for hand-built Views without scratch)
		dstart = make([]int, v.Drawers+1)
	}
	// One pass builds per-drawer load and slot-range offsets: Slots come in
	// drawer-contiguous fleet order, so drawer d spans dstart[d]..dstart[d+1]
	// and the pick loop below never rescans the whole fleet per drawer.
	di := 0
	dstart[0] = 0
	for i, s := range v.Slots {
		if !s.Free {
			load[s.Drawer]++
		}
		for di < s.Drawer {
			di++
			dstart[di] = i
		}
	}
	for di < v.Drawers {
		di++
		dstart[di] = len(v.Slots)
	}
	hc, hp := v.hostChassis(host), v.hostPod(host)
	picks := v.pickBuf(r.GPUs)
	for len(picks) < r.GPUs {
		// Closest, then least-loaded drawer that still has a free, untaken
		// slot: spreading across drawer switches is only a bandwidth win
		// while the slots stay under the host's leaf — crossing the
		// oversubscribed spine costs more than sharing a switch. In the
		// degenerate shape every drawer is tier 0 and load alone decides,
		// exactly as before.
		bestDrawer, bestSlot, bestTier := -1, -1, 0
		for d := 0; d < v.Drawers; d++ {
			tier := distTier(v.drawerChassis(d), v.drawerPod(d), hc, hp)
			if bestDrawer != -1 {
				if tier > bestTier || (tier == bestTier && load[d] >= load[bestDrawer]) {
					continue
				}
			}
			slot := -1
			bestRank := 0
			for _, s := range v.Slots[dstart[d]:dstart[d+1]] {
				if !s.Free || taken[s.Index] {
					continue
				}
				if rank := attachRank(s, host); slot == -1 || rank < bestRank {
					slot, bestRank = s.Index, rank
				}
			}
			if slot != -1 {
				bestDrawer, bestSlot, bestTier = d, slot, tier
			}
		}
		picks = append(picks, bestSlot)
		taken[bestSlot] = true
		load[bestDrawer]++
	}
	sortInts(picks)
	return host, picks, true
}

// Static is the paper-world baseline: GPUs are partitioned per host up
// front (cluster.FleetOptions.Preattach) and a job may only run on its
// submitting tenant's share. It never recomposes — and it strands capacity
// whenever one tenant's queue bursts while another's share sits idle,
// which is exactly what the S1 experiment quantifies.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Place implements Policy.
//
//perf:hot
func (Static) Place(v View, r Request) (int, []int, bool) {
	if !v.hostUp(r.Tenant) {
		return 0, nil, false // the tenant waits out its host's crash
	}
	picks := v.pickBuf(r.GPUs)
	for _, s := range v.Slots {
		// The tenant's share: slots attached to it, plus detached slots it
		// owned at compose time (a repaired device or re-plugged drawer
		// returns detached; the next placement restores the partition).
		if s.Free && (s.Host == r.Tenant || (s.Host == -1 && s.Config == r.Tenant)) {
			picks = append(picks, s.Index)
			if len(picks) == r.GPUs {
				return r.Tenant, picks, true
			}
		}
	}
	return 0, nil, false
}
