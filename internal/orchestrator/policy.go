package orchestrator

import (
	"fmt"
	"sort"
	"strings"
)

// View is the scheduler state a Policy decides over. It is a snapshot; a
// policy must not retain it across calls.
type View struct {
	Hosts   int
	Drawers int
	// Slots in chassis slot order.
	Slots []SlotView
	// HostActiveGPUs / HostActiveJobs count currently assigned (placed or
	// running) resources per host.
	HostActiveGPUs []int
	HostActiveJobs []int
	// HostUp marks hosts that have not crashed. Nil (a fault-free
	// scheduler build) means every host is up.
	HostUp []bool
}

// hostUp reports whether host h is schedulable.
func (v View) hostUp(h int) bool { return v.HostUp == nil || v.HostUp[h] }

// SlotView is one GPU slot as a policy sees it.
type SlotView struct {
	Index  int
	Drawer int
	// Host the slot is currently attached to (-1 detached). A free slot
	// attached to another host can be taken, at the cost of one
	// recomposition move.
	Host int
	// Free marks a slot with no assigned job that is schedulable now; a
	// Down slot is never Free.
	Free bool
	// Down marks a failed device or unplugged drawer: invisible capacity
	// until the repair lands.
	Down bool
	// Config is the host the slot was attached to when the run began
	// (-1 on a cold fleet): the fixed partition the static policy owns.
	// After a drawer flap re-plugs a detached slot, Config is how the
	// static layout is restored.
	Config int
}

// Request is the head-of-queue job a policy must place.
type Request struct {
	Job    int
	Tenant int
	GPUs   int
}

// Policy picks a host and GPU slots for a job, or reports it cannot yet.
// Implementations must be deterministic pure functions of (View, Request):
// the fleet sweep runs every scenario twice and requires identical
// telemetry.
type Policy interface {
	Name() string
	Place(v View, r Request) (host int, slots []int, ok bool)
}

// Policies returns the built-in policies in shoot-out order.
func Policies() []Policy {
	return []Policy{FirstFit{}, DrawerLocal{}, BandwidthAware{}, Static{}}
}

// PolicyNames lists the built-in policy names.
func PolicyNames() []string {
	ps := Policies()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name()
	}
	return names
}

// PolicyByName resolves a built-in policy.
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("orchestrator: unknown policy %q (have %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// freeSlots returns the indices of free slots, in slot order.
func freeSlots(v View) []int {
	var out []int
	for _, s := range v.Slots {
		if s.Free {
			out = append(out, s.Index)
		}
	}
	return out
}

// leastLoadedHost picks the up host with the fewest assigned GPUs,
// breaking ties by fewest assigned jobs, then lowest index. It returns -1
// when every host is down.
func leastLoadedHost(v View) int {
	best := -1
	for h := 0; h < v.Hosts; h++ {
		if !v.hostUp(h) {
			continue
		}
		switch {
		case best == -1:
			best = h
		case v.HostActiveGPUs[h] < v.HostActiveGPUs[best]:
			best = h
		case v.HostActiveGPUs[h] == v.HostActiveGPUs[best] &&
			v.HostActiveJobs[h] < v.HostActiveJobs[best]:
			best = h
		}
	}
	return best
}

// attachRank orders slots by recomposition cost for a target host:
// already attached there (0, free), detached (1, one attach), attached
// elsewhere (2, one reassign).
func attachRank(s SlotView, host int) int {
	switch s.Host {
	case host:
		return 0
	case -1:
		return 1
	default:
		return 2
	}
}

// FirstFit is the naive baseline: every job goes to the lowest-index host
// and takes the first free GPUs in slot order. It ignores drawer locality,
// attachment state and host load — the contention it piles onto host 1's
// CPU, storage and adapter is what the policy shoot-out (S2) measures.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "firstfit" }

// Place implements Policy.
func (FirstFit) Place(v View, r Request) (int, []int, bool) {
	free := freeSlots(v)
	if len(free) < r.GPUs {
		return 0, nil, false
	}
	// Lowest-index host that hasn't crashed (host 1 absent faults).
	for h := 0; h < v.Hosts; h++ {
		if v.hostUp(h) {
			return h, free[:r.GPUs], true
		}
	}
	return 0, nil, false
}

// DrawerLocal spreads jobs across hosts by load and packs each job's GPUs
// into a single drawer when one has room, preferring slots already
// attached to the chosen host: peer (all-reduce) traffic stays inside one
// PCIe switch and recompositions are minimized — §III-B's locality
// argument as a scheduling policy.
type DrawerLocal struct{}

// Name implements Policy.
func (DrawerLocal) Name() string { return "drawer" }

// Place implements Policy.
func (DrawerLocal) Place(v View, r Request) (int, []int, bool) {
	if len(freeSlots(v)) < r.GPUs {
		return 0, nil, false
	}
	host := leastLoadedHost(v)
	if host == -1 {
		return 0, nil, false
	}
	orderFor := func(candidates []SlotView) []int {
		sort.SliceStable(candidates, func(i, j int) bool {
			ri, rj := attachRank(candidates[i], host), attachRank(candidates[j], host)
			if ri != rj {
				return ri < rj
			}
			return candidates[i].Index < candidates[j].Index
		})
		out := make([]int, len(candidates))
		for i, c := range candidates {
			out[i] = c.Index
		}
		return out
	}
	// Single-drawer placements first: among drawers that fit the whole
	// job, take the one whose best slots need the fewest moves (tie: lower
	// drawer index).
	bestMoves := -1
	var best []int
	for d := 0; d < v.Drawers; d++ {
		var cands []SlotView
		for _, s := range v.Slots {
			if s.Free && s.Drawer == d {
				cands = append(cands, s)
			}
		}
		if len(cands) < r.GPUs {
			continue
		}
		picks := orderFor(cands)[:r.GPUs]
		moves := 0
		for _, i := range picks {
			if v.Slots[i].Host != host {
				moves++
			}
		}
		if bestMoves == -1 || moves < bestMoves {
			bestMoves, best = moves, picks
		}
	}
	if best != nil {
		return host, best, true
	}
	// No drawer fits alone: span drawers, still minimizing moves.
	var cands []SlotView
	for _, s := range v.Slots {
		if s.Free {
			cands = append(cands, s)
		}
	}
	return host, orderFor(cands)[:r.GPUs], true
}

// BandwidthAware spreads jobs across hosts by load and a job's GPUs across
// drawers by active-device count, splitting peer traffic over both drawer
// switches instead of saturating one — the opposite bet to DrawerLocal,
// trading switch locality for aggregate link bandwidth.
type BandwidthAware struct{}

// Name implements Policy.
func (BandwidthAware) Name() string { return "bandwidth" }

// Place implements Policy.
func (BandwidthAware) Place(v View, r Request) (int, []int, bool) {
	if len(freeSlots(v)) < r.GPUs {
		return 0, nil, false
	}
	host := leastLoadedHost(v)
	if host == -1 {
		return 0, nil, false
	}
	// Per-drawer load: devices currently assigned to any job.
	load := make([]int, v.Drawers)
	for _, s := range v.Slots {
		if !s.Free {
			load[s.Drawer]++
		}
	}
	taken := make(map[int]bool, r.GPUs)
	picks := make([]int, 0, r.GPUs)
	for len(picks) < r.GPUs {
		// Least-loaded drawer that still has a free, untaken slot.
		bestDrawer, bestSlot := -1, -1
		for d := 0; d < v.Drawers; d++ {
			if bestDrawer != -1 && load[d] >= load[bestDrawer] {
				continue
			}
			slot := -1
			bestRank := 0
			for _, s := range v.Slots {
				if !s.Free || s.Drawer != d || taken[s.Index] {
					continue
				}
				if rank := attachRank(s, host); slot == -1 || rank < bestRank {
					slot, bestRank = s.Index, rank
				}
			}
			if slot != -1 {
				bestDrawer, bestSlot = d, slot
			}
		}
		picks = append(picks, bestSlot)
		taken[bestSlot] = true
		load[bestDrawer]++
	}
	sort.Ints(picks)
	return host, picks, true
}

// Static is the paper-world baseline: GPUs are partitioned per host up
// front (cluster.FleetOptions.Preattach) and a job may only run on its
// submitting tenant's share. It never recomposes — and it strands capacity
// whenever one tenant's queue bursts while another's share sits idle,
// which is exactly what the S1 experiment quantifies.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Place implements Policy.
func (Static) Place(v View, r Request) (int, []int, bool) {
	if !v.hostUp(r.Tenant) {
		return 0, nil, false // the tenant waits out its host's crash
	}
	var picks []int
	for _, s := range v.Slots {
		// The tenant's share: slots attached to it, plus detached slots it
		// owned at compose time (a repaired device or re-plugged drawer
		// returns detached; the next placement restores the partition).
		if s.Free && (s.Host == r.Tenant || (s.Host == -1 && s.Config == r.Tenant)) {
			picks = append(picks, s.Index)
			if len(picks) == r.GPUs {
				return r.Tenant, picks, true
			}
		}
	}
	return 0, nil, false
}
