package orchestrator

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"composable/internal/falcon"
	"composable/internal/telemetry"
	"composable/internal/train"
)

// JobResult is one completed job's telemetry.
type JobResult struct {
	ID       int
	Workload string
	GPUs     int
	Tenant   int
	Host     int // final (or last) host; -1 if never placed
	Moves    int // recompositions across every attempt
	Slots    []falcon.SlotRef

	Arrival, Placed, Launched, Finished time.Duration
	// Wait is queueing plus recomposition delay of the final attempt
	// (Launched − Arrival; includes time spent on killed attempts).
	Wait time.Duration
	// Runtime is the final attempt's training time (Finished − Launched).
	Runtime time.Duration

	// Fault recovery telemetry.
	// Retries counts attempts a fault killed; EpochsDone is the progress
	// checkpoints carried between them; GPUSeconds is delivered (kept) GPU
	// time summed over every attempt — killed attempts up to their last
	// epoch-boundary checkpoint, the final attempt in full; LostGPUSeconds
	// is GPU time spent past the last checkpoint of killed attempts (work
	// re-done). Delivered + lost = GPUs × total attempt time.
	Retries        int
	EpochsDone     int
	GPUSeconds     float64
	LostGPUSeconds float64
	// Failed marks a job abandoned after its retry budget; FailureCause
	// is the last fault that killed it.
	Failed       bool
	FailureCause string

	Train *train.Result
}

// FleetResult is the telemetry of one complete fleet run.
type FleetResult struct {
	Policy string
	Hosts  int
	GPUs   int
	Jobs   []JobResult // in stream (ID) order

	// Hierarchical shape (all zero on a degenerate single-chassis fleet):
	// Pods × Chassis chassis behind a spine, with each pod's uplink
	// provisioned at 1/Oversubscription of its aggregate leaf bandwidth.
	Pods             int
	Chassis          int
	Oversubscription float64

	// Makespan is the finish time of the last job.
	Makespan time.Duration
	// Wait aggregates over jobs.
	TotalWait, MaxWait, MeanWait time.Duration
	// Recompositions counts every control-plane device move.
	Recompositions int
	// GPUSeconds is Σ completed jobs' delivered GPU time over every
	// attempt: killed attempts count up to their last epoch-boundary
	// checkpoint (work that was kept), the final attempt in full. Work past
	// a checkpoint is in LostGPUSeconds, not here; abandoned jobs
	// contribute nothing.
	GPUSeconds float64
	// Utilization is GPUSeconds over the GPU time that actually existed:
	// fleet GPUs × makespan on a fault-free run, the live-capacity integral
	// ∫ live GPUs dt once any device, drawer, or pod went down — a
	// permanently failed GPU shrinks the denominator instead of reading as
	// scheduler idleness.
	Utilization float64
	// FragmentationGPUSeconds integrates free GPUs over the time at least
	// one job was waiting: capacity that existed but the policy could not
	// put under the queue head.
	FragmentationGPUSeconds float64

	// Fault telemetry (all zero on a fault-free run).
	// Faults counts injected failure events, Kills job attempts torn
	// down, FailedJobs jobs abandoned over budget.
	Faults, Kills, FailedJobs int
	// LostGPUSeconds is Σ jobs' lost work: GPU time past the last
	// checkpoint of killed attempts.
	LostGPUSeconds float64
	// Goodput is delivered useful GPU-seconds per second of makespan —
	// the recovery metric experiment R2 compares across policies: lost
	// and re-done work earns nothing.
	Goodput float64
	// FaultLedger is the canonical applied-fault log (empty without
	// faults); it is part of the fingerprint.
	FaultLedger string
	// Track is the annotated fault/kill event track for CSV export and
	// chart overlays.
	Track *telemetry.Track
}

// Fingerprint canonically renders every deterministic scalar of the fleet
// telemetry. Durations are exact nanosecond integers and floats use the
// shortest round-trip encoding, so two runs match if and only if they are
// bit-identical — the fleet sweep's run-twice check diffs these strings.
func (r *FleetResult) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s hosts=%d gpus=%d jobs=%d", r.Policy, r.Hosts, r.GPUs, len(r.Jobs))
	if r.Chassis != 0 {
		// Rendered only for hierarchical fleets, so degenerate fingerprints
		// stay byte-identical across the topology generations.
		fmt.Fprintf(&b, " pods=%d chassis=%d oversub=%s",
			r.Pods, r.Chassis, strconv.FormatFloat(r.Oversubscription, 'g', -1, 64))
	}
	b.WriteByte('\n')
	for _, j := range r.Jobs {
		fmt.Fprintf(&b, "job id=%d wl=%s g=%d tenant=%d host=%d moves=%d slots=", j.ID, j.Workload, j.GPUs, j.Tenant, j.Host, j.Moves)
		for i, ref := range j.Slots {
			if i > 0 {
				b.WriteByte('+')
			}
			b.WriteString(ref.String())
		}
		fmt.Fprintf(&b, " arr=%d placed=%d launch=%d fin=%d", int64(j.Arrival), int64(j.Placed), int64(j.Launched), int64(j.Finished))
		fmt.Fprintf(&b, " retries=%d edone=%d failed=%t lost=%s",
			j.Retries, j.EpochsDone, j.Failed, strconv.FormatFloat(j.LostGPUSeconds, 'g', -1, 64))
		if j.Retries > 0 {
			// Per-attempt delivered time differs from GPUs × final runtime
			// only once a retry happened; rendering it conditionally keeps
			// every fault-free job line byte-identical to prior generations.
			fmt.Fprintf(&b, " gpuSec=%s", strconv.FormatFloat(j.GPUSeconds, 'g', -1, 64))
		}
		if j.Train != nil {
			fmt.Fprintf(&b, " total=%d avgIter=%d peak=%d", int64(j.Train.TotalTime), int64(j.Train.AvgIter), int64(j.Train.PeakGPUMem))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "makespan=%d recomp=%d waitTotal=%d waitMax=%d waitMean=%d\n",
		int64(r.Makespan), r.Recompositions, int64(r.TotalWait), int64(r.MaxWait), int64(r.MeanWait))
	fmt.Fprintf(&b, "faults=%d kills=%d failedJobs=%d\n", r.Faults, r.Kills, r.FailedJobs)
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"gpuSec", r.GPUSeconds},
		{"util", r.Utilization},
		{"fragGPUSec", r.FragmentationGPUSeconds},
		{"lostGPUSec", r.LostGPUSeconds},
		{"goodput", r.Goodput},
	} {
		b.WriteString(f.name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(f.v, 'g', -1, 64))
		b.WriteByte('\n')
	}
	b.WriteString(r.FaultLedger)
	return b.String()
}

// Summary renders the fleet aggregates as a one-paragraph report line set.
func (r *FleetResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %-10s %d jobs on %d hosts × %d GPUs\n", r.Policy, len(r.Jobs), r.Hosts, r.GPUs)
	fmt.Fprintf(&b, "  makespan %v  mean wait %v  max wait %v\n",
		r.Makespan.Round(time.Millisecond), r.MeanWait.Round(time.Millisecond), r.MaxWait.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %d recompositions, %.1f GPU-s delivered, utilization %.1f%%, %.1f GPU-s stranded\n",
		r.Recompositions, r.GPUSeconds, r.Utilization*100, r.FragmentationGPUSeconds)
	if r.Faults > 0 {
		fmt.Fprintf(&b, "  %d faults: %d kills, %d jobs failed, %.1f GPU-s lost, goodput %.2f GPU/s\n",
			r.Faults, r.Kills, r.FailedJobs, r.LostGPUSeconds, r.Goodput)
	}
	return b.String()
}
