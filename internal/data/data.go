// Package data describes the training datasets of the paper's benchmarks
// (Table II): ImageNet, COCO and SQuAD v1.1. Since the real corpora are not
// available (and irrelevant to the measured quantities), each dataset is a
// synthetic generator with the real per-sample byte size, CPU preprocessing
// cost and access pattern — the three properties that affect training-time
// behaviour on the composable system.
package data

import (
	"time"

	"composable/internal/units"
)

// Spec describes a dataset.
type Spec struct {
	Name    string
	Samples int
	// BytesPerSample is the on-disk size of one raw sample (JPEG image,
	// tokenized feature record).
	BytesPerSample units.Bytes
	// ReadsPerSample is how many raw samples one training sample touches
	// (YOLOv5's mosaic augmentation stitches four images).
	ReadsPerSample int
	// DecodePerSample is the CPU core time to decode and augment one
	// training sample (all its reads included).
	DecodePerSample time.Duration
	// RandomAccess marks shuffled access (random-read rates apply).
	RandomAccess bool
	// InputBytesPerSample is the decoded tensor size shipped host→GPU
	// per sample: vision pipelines transfer uint8 HWC images and
	// normalize on the GPU (the standard high-throughput layout), NLP
	// ships int64 token ids.
	InputBytesPerSample units.Bytes
}

// TotalBytes returns the on-disk dataset size.
func (s Spec) TotalBytes() units.Bytes {
	return units.Bytes(s.Samples) * s.BytesPerSample
}

// The three corpora used in the paper's evaluation.
var (
	// ImageNet is ILSVRC-2012 train: 1.28 M JPEGs averaging ≈110 KB,
	// decoded and augmented (crop/resize/flip/normalize) on the CPU.
	// Stored as pre-shuffled sharded record files (the usual large-scale
	// layout), so storage sees near-sequential streams. 3×224×224 FP32
	// input tensors.
	ImageNet = Spec{
		Name:                "ImageNet",
		Samples:             1281167,
		BytesPerSample:      110 * units.KB,
		ReadsPerSample:      1,
		DecodePerSample:     1400 * time.Microsecond,
		RandomAccess:        false,
		InputBytesPerSample: units.Bytes(3 * 224 * 224),
	}
	// COCO is the 2017 detection train split: 118 k images ≈160 KB.
	// YOLOv5's mosaic augmentation loads four images per sample and
	// letterboxes to 640×640.
	COCO = Spec{
		Name:                "COCO",
		Samples:             118287,
		BytesPerSample:      160 * units.KB,
		ReadsPerSample:      4,
		DecodePerSample:     4800 * time.Microsecond,
		RandomAccess:        true,
		InputBytesPerSample: units.Bytes(3 * 640 * 640),
	}
	// SQuADv11 fine-tuning features: ≈88 k pre-tokenized records of
	// 384 input ids + masks; negligible decode cost.
	SQuADv11 = Spec{
		Name:                "SQuAD v1.1",
		Samples:             87599,
		BytesPerSample:      units.Bytes(2560),
		ReadsPerSample:      1,
		DecodePerSample:     60 * time.Microsecond,
		RandomAccess:        false,
		InputBytesPerSample: units.Bytes(384 * 8),
	}
)
