package data

import "testing"

func TestDatasetSizes(t *testing.T) {
	// Sample counts match the corpora the paper trained on.
	if ImageNet.Samples != 1281167 {
		t.Errorf("ImageNet samples = %d", ImageNet.Samples)
	}
	if COCO.Samples != 118287 {
		t.Errorf("COCO samples = %d", COCO.Samples)
	}
	if SQuADv11.Samples != 87599 {
		t.Errorf("SQuAD samples = %d", SQuADv11.Samples)
	}
	// ImageNet on disk ≈ 134 GiB at 110 KB/image.
	tb := ImageNet.TotalBytes()
	if tb < 120<<30 || tb > 150<<30 {
		t.Errorf("ImageNet bytes = %v", tb)
	}
}

func TestAccessPatterns(t *testing.T) {
	if COCO.ReadsPerSample != 4 {
		t.Error("YOLOv5 mosaic reads 4 images per sample")
	}
	if !COCO.RandomAccess {
		t.Error("mosaic access is random")
	}
	if ImageNet.RandomAccess {
		t.Error("sharded record files stream near-sequentially")
	}
	if SQuADv11.ReadsPerSample != 1 || SQuADv11.RandomAccess {
		t.Error("SQuAD features stream sequentially")
	}
}

func TestPreprocessingCostOrdering(t *testing.T) {
	// Vision decode ≫ NLP feature loading: the mechanism behind
	// Figure 13's CPU utilization split.
	if ImageNet.DecodePerSample <= 10*SQuADv11.DecodePerSample {
		t.Error("image decode should dwarf tokenized-feature loading")
	}
	if COCO.DecodePerSample <= ImageNet.DecodePerSample {
		t.Error("mosaic (4 decodes + stitch) should cost more than one decode")
	}
}

func TestInputTensorSizes(t *testing.T) {
	if ImageNet.InputBytesPerSample != 3*224*224 {
		t.Errorf("ImageNet input = %v (uint8 HWC expected)", ImageNet.InputBytesPerSample)
	}
	if COCO.InputBytesPerSample != 3*640*640 {
		t.Errorf("COCO input = %v", COCO.InputBytesPerSample)
	}
}
