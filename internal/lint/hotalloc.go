package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotDirective marks a function as hot-path. The annotation lives in the
// function's doc comment, optionally with a note:
//
//	//perf:hot — inner event loop, one call per dispatched event
//	func (e *Env) heapPush(ev event) { ... }
const hotDirective = "//perf:hot"

// HotAlloc flags the known allocators inside functions annotated
// //perf:hot: fmt.Sprintf/Sprint/Sprintln, string concatenation inside
// loops, map/slice composite literals, make(map)/make(chan), and closure
// literals (a func literal that captures variables allocates even when it
// never escapes analysis in practice). It is a ratchet for the
// allocation-free hot paths: a function marked hot and clean cannot
// silently regress to allocating without failing the lint gate.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "in //perf:hot functions, flag fmt.Sprintf-family calls, string + in " +
		"loops, map/slice literals, make(map)/make(chan) and closures",
	Run: runHotAlloc,
}

// sprintFamily are the fmt formatters that always allocate their result.
var sprintFamily = map[string]bool{"Sprintf": true, "Sprint": true, "Sprintln": true}

func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotDirective) {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	// Spans of the loops inside fd, for the string-+-in-loop check.
	var loops []ast.Node
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= pos && pos < l.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "fmt" && sprintFamily[fn.Name()] {
				pass.Reportf(n.Pos(), "fmt.%s allocates in //perf:hot %s; precompute or render lazily", fn.Name(), fd.Name.Name)
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
				if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Map:
						pass.Reportf(n.Pos(), "make(map) allocates in //perf:hot %s; reuse a scratch map or switch to an indexed slice", fd.Name.Name)
					case *types.Chan:
						pass.Reportf(n.Pos(), "make(chan) allocates in //perf:hot %s", fd.Name.Name)
					}
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal allocates per call in //perf:hot %s", fd.Name.Name)
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal allocates per call in //perf:hot %s", fd.Name.Name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal allocates in //perf:hot %s; hoist it or pass data explicitly", fd.Name.Name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && inLoop(n.Pos()) {
				if tv, ok := pass.TypesInfo.Types[n]; ok && isString(tv.Type) {
					pass.Reportf(n.Pos(), "string concatenation in a loop in //perf:hot %s; use precomputed names or a reused builder", fd.Name.Name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && inLoop(n.Pos()) && len(n.Lhs) == 1 {
				if tv, ok := pass.TypesInfo.Types[n.Lhs[0]]; ok && isString(tv.Type) {
					pass.Reportf(n.Pos(), "string += in a loop in //perf:hot %s; use precomputed names or a reused builder", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// calleeFunc resolves a call's static callee, nil for dynamic calls and
// builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
