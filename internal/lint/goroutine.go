package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineInProc flags raw `go` statements inside sim.Proc bodies. The
// engine runs exactly one process at a time over virtual time; a goroutine
// spawned from inside a process body runs on the host scheduler instead,
// racing the simulation and destroying determinism. Processes are spawned
// with Env.Go, which hands the goroutine to the event loop.
//
// A "proc body" is any function literal or declaration whose signature is
// func(*sim.Proc) — the shape Env.Go accepts — so both inline bodies and
// named process functions are covered. The engine's own internal
// goroutine handoff lives in plain func() callbacks and is not matched.
var GoroutineInProc = &Analyzer{
	Name: "goroutine",
	Doc: "flag raw go statements inside sim.Proc bodies, which bypass the " +
		"deterministic scheduler; spawn processes with Env.Go instead",
	Run: runGoroutineInProc,
}

// isProcBody reports whether t is func(*sim.Proc) with no results.
func isProcBody(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok || sig.Results().Len() != 0 || sig.Params().Len() != 1 {
		return false
	}
	named := namedOf(sig.Params().At(0).Type())
	if named == nil {
		return false
	}
	obj := named.Obj()
	if _, isPtr := sig.Params().At(0).Type().(*types.Pointer); !isPtr {
		return false
	}
	return obj.Name() == "Proc" && obj.Pkg() != nil && obj.Pkg().Path() == "composable/internal/sim"
}

func runGoroutineInProc(pass *Pass) error {
	for _, f := range pass.Files {
		// Collect the spans of every proc body in the file, then flag go
		// statements landing inside one.
		var procBodies []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if tv, ok := pass.TypesInfo.Types[n]; ok && isProcBody(tv.Type) {
					procBodies = append(procBodies, n)
				}
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok && fn.Type() != nil && isProcBody(fn.Type()) {
					procBodies = append(procBodies, n)
				}
			}
			return true
		})
		if len(procBodies) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok || pass.InTestFile(gs.Pos()) {
				return true
			}
			for _, body := range procBodies {
				if body.Pos() <= gs.Pos() && gs.Pos() < body.End() {
					pass.Reportf(gs.Pos(),
						"go statement inside a sim.Proc body bypasses the deterministic scheduler; spawn a process with Env.Go")
					return true
				}
			}
			return true
		})
	}
	return nil
}
