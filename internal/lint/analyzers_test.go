package lint

import (
	"strings"
	"testing"
)

func TestNoWallClockGolden(t *testing.T) {
	runTestdata(t, NoWallClock, "composable/internal/scengen/wallclock")
}

func TestMapOrderGolden(t *testing.T) {
	runTestdata(t, MapOrder, "composable/internal/telemetry/render")
}

func TestHotAllocGolden(t *testing.T) {
	runTestdata(t, HotAlloc, "hotpath")
}

// TestHotAllocObsGuardGolden pins the nil-checked collector idiom the
// observability layer relies on: guarded span emits inside //perf:hot
// functions are method calls and integer conversions only, so hotalloc
// has nothing to say (the golden package carries zero want comments).
func TestHotAllocObsGuardGolden(t *testing.T) {
	if diags := runTestdata(t, HotAlloc, "obsguard"); len(diags) != 0 {
		t.Errorf("hotalloc flagged the guarded-collector idiom: %v", diags)
	}
}

func TestGoroutineInProcGolden(t *testing.T) {
	runTestdata(t, GoroutineInProc, "procspawn")
}

// TestDomainScoping pins the scoping rules: nowallclock and maporder only
// police the sim-domain package list, while hotalloc and goroutine apply
// everywhere (hotpath and procspawn live outside composable/...).
func TestDomainScoping(t *testing.T) {
	for _, path := range []string{"composable/internal/scengen/wallclock", "composable/cmd/composer/sub", "hotpath"} {
		want := strings.HasPrefix(path, "composable/")
		if got := inSimDomain(path); got != want {
			t.Errorf("inSimDomain(%q) = %v, want %v", path, got, want)
		}
	}
	l := newTestLoader(t)
	// hotpath is full of wall-clock-free allocator bait; nowallclock and
	// maporder must stay silent on a non-domain package.
	other, err := l.load("hotpath")
	if err != nil {
		t.Fatal(err)
	}
	if diags := runOn(t, other, NoWallClock, MapOrder); len(diags) != 0 {
		t.Errorf("domain-scoped analyzers fired outside the sim domain: %v", diags)
	}
}

// runOn applies analyzers to one already-loaded package.
func runOn(t *testing.T, pkg *Package, as ...*Analyzer) []Diagnostic {
	t.Helper()
	diags, err := RunAnalyzers([]*Package{pkg}, as...)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestLintDirectiveGrammar pins the three failure modes of the allow
// grammar. The expectations live here rather than in want comments: a want
// comment appended to a directive line would become part of the directive's
// own text and change which error fires.
func TestLintDirectiveGrammar(t *testing.T) {
	l := newTestLoader(t)
	pkg, err := l.load("composable/internal/scengen/badallow")
	if err != nil {
		t.Fatal(err)
	}
	diags := runOn(t, pkg, NoWallClock)
	wantSubstrings := []string{
		"needs a written reason",
		"unknown analyzer notananalyzer",
		"malformed lint directive",
	}
	var directives []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "lintdirective" {
			directives = append(directives, d)
		}
	}
	if len(directives) != len(wantSubstrings) {
		t.Fatalf("%d lintdirective diagnostics, want %d: %v", len(directives), len(wantSubstrings), directives)
	}
	// Diagnostics come back position-sorted, matching source order.
	for i, want := range wantSubstrings {
		if !strings.Contains(directives[i].Message, want) {
			t.Errorf("directive diagnostic %d = %q, want substring %q", i, directives[i].Message, want)
		}
	}
	// The empty-reason directive indexes nothing, so the time.Now it sits
	// above must still be flagged.
	found := false
	for _, d := range diags {
		if d.Analyzer == "nowallclock" {
			found = true
		}
	}
	if !found {
		t.Error("a reason-less allow suppressed the diagnostic it annotated")
	}
}
