package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowRe matches the suppression directive: //lint:allow name(reason).
// The reason is captured so an empty one can be rejected.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z]+)\((.*)\)\s*$`)

// allowKey locates one suppression: a file line and the analyzer it
// silences.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowIndex is the per-package suppression table. A diagnostic at line L
// is covered if an allow for its analyzer sits on line L (end-of-line
// comment) or line L-1 (comment directly above the flagged statement).
type allowIndex map[allowKey]bool

func (ai allowIndex) covers(analyzer string, pos token.Position) bool {
	if ai == nil {
		return false
	}
	return ai[allowKey{pos.Filename, pos.Line, analyzer}] ||
		ai[allowKey{pos.Filename, pos.Line - 1, analyzer}]
}

// indexAllows scans every comment for //lint:allow directives. Malformed
// directives — an unknown analyzer name, or a blank reason — come back as
// diagnostics: the acceptance bar is that every suppression carries a
// written reason, and the directive parser is where that is enforced.
func indexAllows(fset *token.FileSet, files []*ast.File) (allowIndex, []Diagnostic) {
	idx := make(allowIndex)
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Pos: fset.Position(pos), Analyzer: "lintdirective", Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:") {
					continue
				}
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					report(c.Pos(), "malformed lint directive; want //lint:allow <analyzer>(<reason>)")
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				if AnalyzerByName(name) == nil {
					report(c.Pos(), "//lint:allow names unknown analyzer "+name)
					continue
				}
				if reason == "" {
					report(c.Pos(), "//lint:allow "+name+" needs a written reason")
					continue
				}
				pos := fset.Position(c.Pos())
				idx[allowKey{pos.Filename, pos.Line, name}] = true
			}
		}
	}
	return idx, bad
}
