package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package, the stdlib-only
// analog of golang.org/x/tools/go/analysis.Analyzer (which the offline
// build cannot depend on).
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run reports the analyzer's findings on one package via
	// Pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information through one
// analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allows allowIndex
	diags  *[]Diagnostic
}

// Diagnostic is one finding, position-resolved for printing and
// suppression matching.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a //lint:allow comment for this
// analyzer covers the line (same line or the line directly above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows.covers(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers skip
// those: tests may measure wall time and iterate maps they sort afterward.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzers returns the full simlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoWallClock, MapOrder, HotAlloc, GoroutineInProc}
}

// AnalyzerByName finds a suite analyzer (nil if unknown); it backs the
// //lint:allow grammar check.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies the analyzers to every package and returns the
// combined findings sorted by position. Diagnostics about malformed
// annotations (an allow with no reason, an unknown analyzer name) are
// included under the pseudo-analyzer "lintdirective": a suppression that
// carries no written reason must itself fail the gate.
func RunAnalyzers(pkgs []*Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows, bad := indexAllows(pkg.Fset, pkg.Files)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				allows:    allows,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
