package lint

// This file is the offline analog of golang.org/x/tools/go/analysis/
// analysistest: golden packages live under testdata/src/<importpath>, and
// `// want "regexp"` comments pin the diagnostics each line must produce.
// A test fails on any unexpected diagnostic and on any unmatched want.
//
// Golden packages type-check from source recursively (so a fake
// composable/internal/sim can stand in for the real engine), while stdlib
// imports resolve through the toolchain's export data exactly like the
// production loader.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// stdlibRoots are the external imports golden packages may use; -deps pulls
// their transitive export data along. Extend the list when a new golden
// file needs another stdlib package.
var stdlibRoots = []string{
	"bytes", "fmt", "io", "math/rand", "math/rand/v2",
	"sort", "strconv", "strings", "time",
}

var (
	stdExportsOnce sync.Once
	stdExports     map[string]string
	stdExportsErr  error
)

// stdlibExports maps stdlib import paths to export-data files, compiled on
// first use via `go list -export`.
func stdlibExports(t *testing.T) map[string]string {
	t.Helper()
	stdExportsOnce.Do(func() {
		args := append([]string{"list", "-e", "-export", "-deps", "-json"}, stdlibRoots...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			stdExportsErr = fmt.Errorf("go list std roots: %v\n%s", err, stderr.String())
			return
		}
		stdExports = make(map[string]string)
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPackage
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdExportsErr = err
				return
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	if stdExportsErr != nil {
		t.Fatal(stdExportsErr)
	}
	return stdExports
}

// testLoader type-checks golden packages: testdata imports load from source
// through itself (recursively), everything else goes to the gc importer.
type testLoader struct {
	srcRoot string
	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
}

func newTestLoader(t *testing.T) *testLoader {
	t.Helper()
	fset := token.NewFileSet()
	exports := stdlibExports(t)
	std := newGCImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	}, nil)
	return &testLoader{
		srcRoot: filepath.Join("testdata", "src"),
		fset:    fset,
		std:     std,
		pkgs:    make(map[string]*Package),
	}
}

func (l *testLoader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *testLoader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if fi, err := os.Stat(filepath.Join(l.srcRoot, path)); err == nil && fi.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, "", 0)
}

// load parses and type-checks one golden package from source.
func (l *testLoader) load(importPath string) (*Package, error) {
	dir := filepath.Join(l.srcRoot, importPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	pkg, err := checkPackage(l.fset, importPath, dir, files, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// want is one expectation: a diagnostic on this line whose message matches
// the regexp.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantStringRe pulls the quoted or backquoted expectation patterns out of a
// `// want` comment.
var wantStringRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts `// want "re"` (or backquoted) expectations from the
// package's comments.
func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				raw := wantStringRe.FindAllString(text[len("want "):], -1)
				if len(raw) == 0 {
					t.Fatalf("%s:%d: want comment with no pattern", pos.Filename, pos.Line)
				}
				for _, q := range raw {
					pat := strings.Trim(q, "`")
					if strings.HasPrefix(q, `"`) {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runTestdata loads one golden package, runs the analyzer, and checks the
// diagnostics one-to-one against the package's want comments.
func runTestdata(t *testing.T, a *Analyzer, importPath string) []Diagnostic {
	t.Helper()
	l := newTestLoader(t)
	pkg, err := l.load(importPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, a)
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, pkg)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
	return diags
}
