// Package lint is simlint: a static-analysis suite that mechanically
// enforces the repo's two load-bearing contracts — determinism and
// hot-path allocation discipline — which every layer since the sim core
// stakes its correctness on but which, before this package, lived only in
// code review and after-the-fact run-twice sweeps.
//
// # The determinism contract
//
// A simulation result must be a pure function of its inputs (seed,
// scenario, options): byte-identical fingerprints and rendered reports
// across runs, machines, and GOMAXPROCS settings. Three bug classes break
// it in practice, and each has an analyzer:
//
//   - nowallclock: sim-domain packages must not read the wall clock
//     (time.Now, time.Since, time.Sleep, timers) or draw from the shared
//     top-level math/rand source. Virtual time comes from sim.Env/Proc;
//     randomness comes from rand.New(rand.NewSource(seed)). Genuine
//     telemetry (a CLI reporting how long the suite took) goes through an
//     injected clock and is annotated at the single read site.
//
//   - maporder: Go map iteration order is randomized per run, so a
//     `range` over a map in any function reachable from a
//     Fingerprint/Render/CSV-output path is a nondeterministic-output bug
//     waiting to ship. Iterate via detmap.SortedKeys (or a local
//     sortedKeys helper, which the analyzer recognizes as the sanctioned
//     sorted-iteration point) or annotate the site with a reason why
//     order cannot leak (e.g. the loop only builds a set).
//
//   - goroutine: the engine schedules exactly one process at a time;
//     a raw `go` statement inside a sim.Proc body escapes the
//     deterministic scheduler and races virtual time. Spawn processes
//     with Env.Go instead.
//
// # The hot-path contract
//
// hotalloc guards the allocation-free work (PR 2, ROADMAP item 2):
// functions annotated `//perf:hot` must not use the known allocators —
// fmt.Sprintf/Sprint/Sprintln, string concatenation inside loops,
// map/slice composite literals, make(map)/make(chan), or closure
// literals. The annotation is a ratchet: once a function is marked hot
// and clean, a regression fails the lint gate instead of showing up two
// PRs later as a 10x allocs/op jump in BENCH_*.json.
//
// # Annotation grammar
//
// Two comment directives, both requiring written reasons:
//
//	//perf:hot
//	//perf:hot <free-text note>
//
// marks the function whose doc comment contains it as hot-path (hotalloc
// scope). And
//
//	//lint:allow <analyzer>(<reason>)
//
// suppresses <analyzer>'s diagnostics on the same line or the line
// directly below. The reason is mandatory; an empty or missing reason is
// itself a diagnostic. Example:
//
//	//lint:allow maporder(order-insensitive: loop only counts entries)
//	for _, p := range c.ports {
//
// # Running simlint
//
// In-process (what the repo-wide self-test and perfbench entry do):
//
//	pkgs, _ := lint.Load("composable/...")
//	diags, _ := lint.RunAnalyzers(pkgs, lint.Analyzers()...)
//
// From the command line, standalone or as a vet tool:
//
//	go run ./cmd/simlint ./...
//	go build -o /tmp/simlint ./cmd/simlint && go vet -vettool=/tmp/simlint ./...
//
// Both modes load full type information; the vet-tool mode speaks the go
// command's unitchecker .cfg protocol, so it composes with the build
// cache and lints test files too. Analyzers skip _test.go files: tests
// may legitimately measure wall time and iterate maps they then sort.
package lint
