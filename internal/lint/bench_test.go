// The lint micro-benchmark. The shared harness body lives in
// internal/perfbench so that `go test -bench` here and `benchrunner
// -bench-json` measure the exact same code; this file only wraps it.
// (External test package: perfbench imports lint, so an in-package
// benchmark would be an import cycle.)
package lint_test

import (
	"testing"

	"composable/internal/perfbench"
)

// BenchmarkSimlintFullRepo measures one full static-analysis pass over the
// module — the cost the CI lint gate pays per run.
func BenchmarkSimlintFullRepo(b *testing.B) { perfbench.BenchSimlintFullRepo(b) }
