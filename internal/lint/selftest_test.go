package lint

import "testing"

// TestRepoIsLintClean is the acceptance gate: the full simlint suite over
// the whole module must come back empty. Every wall-clock read, rendered
// map range, hot-path allocator and raw goroutine in the repo is either
// fixed or carries a //lint:allow with a written reason — and this test is
// what keeps it that way.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module pattern is broken", len(pkgs))
	}
	diags, err := RunAnalyzers(pkgs, Analyzers()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
