// Package obsguard is the hotalloc golden file for the nil-checked
// collector idiom: a //perf:hot function may emit spans and bump counters
// through a possibly-nil probe as long as the guarded branch performs
// only method calls and integer conversions. The package has zero want
// comments — the whole point is that the pattern is clean.
package obsguard

// Collector stands in for an observability sink (obs.Collector in the
// real tree): every emit is a plain method call, nothing that allocates.
type Collector struct {
	spans, counts int
}

// Begin opens a span and returns its handle.
func (c *Collector) Begin(name string) int {
	c.spans++
	return c.spans
}

// End closes a span.
func (c *Collector) End(id int) {}

// SetAttr attaches an integer attribute to a span.
func (c *Collector) SetAttr(id int, key string, v int64) {}

// Inc bumps a counter.
func (c *Collector) Inc(id int) { c.counts++ }

// Flow is a hot-path object that may carry an open span.
type Flow struct {
	Src, Dst int
	span     int
}

// AddFlow is the idiom under test: a //perf:hot function whose
// observability hooks are nil-guarded method calls. When the collector is
// nil the branch is never taken and the function allocates nothing; when
// it is set, the calls stay allocation-free. Either way hotalloc must
// stay silent.
//
//perf:hot
func AddFlow(c *Collector, f *Flow) {
	f.span = 0
	if c != nil {
		f.span = c.Begin("flow")
		c.SetAttr(f.span, "src", int64(f.Src))
		c.SetAttr(f.span, "dst", int64(f.Dst))
	}
}

// RemoveFlow closes the span the same guarded way.
//
//perf:hot
func RemoveFlow(c *Collector, f *Flow, counter int) {
	if c != nil && f.span != 0 {
		c.End(f.span)
		c.Inc(counter)
		f.span = 0
	}
}
