// Package procspawn is the goroutine golden file: raw go statements inside
// and outside sim.Proc bodies.
package procspawn

import "composable/internal/sim"

// worker is a named proc body: the go statement bypasses the scheduler.
func worker(p *sim.Proc) {
	go report(p) // want `go statement inside a sim\.Proc body`
	_ = p.Name()
}

func report(p *sim.Proc) { _ = p }

// Spawn uses the sanctioned Env.Go; the raw go statement nested inside the
// inline proc body is still flagged.
func Spawn(e *sim.Env) {
	e.Go("ok", func(p *sim.Proc) {
		go func() {}() // want `go statement inside a sim\.Proc body`
	})
}

// Helper is a plain function: go statements outside proc bodies are the
// host program's business.
func Helper() {
	go func() {}()
}

var _ = worker
