// Package hotpath is the hotalloc golden file: allocators inside and
// outside //perf:hot functions, the preallocation idiom the ratchet leaves
// alone, and the allow escape hatch.
package hotpath

import "fmt"

// Step is hot and clean: no diagnostics.
//
//perf:hot
func Step(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Dirty trips every allocator class the ratchet knows.
//
//perf:hot
func Dirty(names []string) string {
	msg := fmt.Sprintf("%d names", len(names)) // want `fmt\.Sprintf allocates in //perf:hot Dirty`
	seen := make(map[string]bool)              // want `make\(map\) allocates in //perf:hot Dirty`
	ch := make(chan int)                       // want `make\(chan\) allocates in //perf:hot Dirty`
	pairs := []string{msg}                     // want `slice literal allocates per call in //perf:hot Dirty`
	f := func() {}                             // want `closure literal allocates in //perf:hot Dirty`
	f()
	out := ""
	for _, n := range names {
		out += n // want `string \+= in a loop in //perf:hot Dirty`
	}
	_, _, _ = seen, ch, pairs
	return out
}

// Concat trips the binary-+ form of the loop check.
//
//perf:hot
func Concat(names []string) string {
	out := ""
	for _, n := range names {
		out = out + n // want `string concatenation in a loop in //perf:hot Concat`
	}
	return out
}

// Prealloc shows the sanctioned idiom: make([]T, 0, n) is how hot paths
// reserve capacity, so the ratchet does not flag it.
//
//perf:hot
func Prealloc(n int) []int {
	return make([]int, 0, n)
}

// Cold is unannotated; the same allocators are fine here.
func Cold(n int) string {
	return fmt.Sprintf("%d", n)
}

// Guarded keeps a panic-path formatter behind an allow.
//
//perf:hot
func Guarded(n int) {
	if n < 0 {
		//lint:allow hotalloc(golden-file case: panic path only, never runs in steady state)
		panic(fmt.Sprintf("bad n %d", n))
	}
}
