// Package wallclock is the nowallclock golden file: wall-clock reads and
// shared-source rand draws in a sim-domain package, next to the sanctioned
// alternatives and the allow escape hatch.
package wallclock

import (
	"math/rand"
	"time"
)

// tick shows that time.Duration arithmetic stays legal: virtual time is
// represented as time.Duration throughout the repo.
const tick = 10 * time.Millisecond

// clock shows that a bare reference is as nondeterministic as a call.
var clock = time.Now // want `time\.Now reads the wall clock`

// Bad reads the wall clock every way the analyzer covers.
func Bad() time.Duration {
	t := time.Now()      // want `time\.Now reads the wall clock`
	time.Sleep(tick)     // want `time\.Sleep reads the wall clock`
	d := time.Since(t)   // want `time\.Since reads the wall clock`
	_ = time.After(tick) // want `time\.After reads the wall clock`
	return d
}

// Draw pulls from the shared top-level source.
func Draw() int {
	return rand.Intn(6) // want `math/rand\.Intn draws from the shared top-level source`
}

// Seeded is the sanctioned pattern: an explicitly seeded generator.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Allowed carries a written reason, so the read is suppressed.
func Allowed() time.Time {
	//lint:allow nowallclock(golden-file case: telemetry timestamp outside any fingerprint)
	return time.Now()
}
