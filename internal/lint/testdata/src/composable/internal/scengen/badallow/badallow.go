// Package badallow is the lintdirective golden file: suppressions that
// fail the grammar must themselves be diagnosed, so an allow can never
// slip through without a written reason. The expectations live in
// TestLintDirectiveGrammar rather than want comments, because appending a
// want comment to a directive line would change the directive's own text.
package badallow

import "time"

//lint:allow nowallclock()
func emptyReason() time.Time { return time.Now() }

//lint:allow notananalyzer(some reason)
func unknownAnalyzer() {}

//lint:allow bogus directive with no parens
func malformed() {}

var _ = emptyReason
var _ = unknownAnalyzer
var _ = malformed
