// Package sim is a minimal stand-in for the real engine: just enough
// surface (Proc, Env.Go) for golden packages to type-check against the
// import path the goroutine analyzer matches on.
package sim

// Proc is a running simulation process.
type Proc struct{ name string }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Env is a simulation environment.
type Env struct{}

// Go spawns fn as a new process.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{name: name}
	fn(p)
	return p
}
