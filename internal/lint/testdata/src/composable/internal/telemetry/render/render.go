// Package render is the maporder golden file: map ranges on and off the
// rendered-output path, the sortedKeys exemption, and the allow escape
// hatch.
package render

import (
	"io"
	"sort"
	"strings"
)

// Render is an output root (returns string) ranging a map directly.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `range over map on the rendered-output path through Render`
		b.WriteString(k)
	}
	return b.String()
}

// Keys reaches a map range through a non-root helper, exercising the
// reachability search.
func Keys(m map[string]int) string {
	var keys []string
	collect(m, &keys)
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func collect(m map[string]int, dst *[]string) {
	for k := range m { // want `through collect \(reachable from Keys\)`
		*dst = append(*dst, k)
	}
}

// WriteTo exercises the writer-shaped root detection.
func WriteTo(w io.Writer, m map[string]int) {
	for k := range m { // want `range over map on the rendered-output path through WriteTo`
		_, _ = io.WriteString(w, k)
	}
}

// sortedKeys is the sanctioned helper shape: exempt by name.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sorted iterates via the helper: no diagnostics.
func Sorted(m map[string]int) string {
	return strings.Join(sortedKeys(m), ",")
}

// Ports mirrors the falcon.Ports shape: flagged by the ratchet unless the
// sort-after-range is explained in an allow.
func Ports(m map[string]int) string {
	var keys []string
	//lint:allow maporder(golden-file case: keys are sorted before they reach the output)
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// count is unreachable from any output root; its range is fine.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

var _ = count
