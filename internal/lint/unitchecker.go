package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
)

// vetConfig is the .cfg file the go command hands a -vettool for each
// package: file lists, the import remapping, and the export-data file of
// every dependency. The field set mirrors what cmd/go emits (and what
// x/tools' unitchecker consumes); unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitChecker executes the analyzers on the single package described
// by the vet config file and returns the process exit code: 0 clean, 1
// operational failure, 2 diagnostics reported. It is the protocol half of
// `go vet -vettool=simlint` — the go command invokes the tool once per
// package with a fresh .cfg.
func RunUnitChecker(cfgFile string, analyzers []*Analyzer, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "simlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The facts file must exist for the go command's caching even though
	// simlint's analyzers exchange no cross-package facts.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte("simlint: no facts\n"), 0o666)
		}
	}

	fset := token.NewFileSet()
	imp := newGCImporter(fset, func(path string) (string, bool) {
		f, ok := cfg.PackageFile[path]
		return f, ok
	}, cfg.ImportMap)
	pkg, err := checkPackage(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(stderr, "simlint:", err)
		return 1
	}
	writeVetx()
	if cfg.VetxOnly {
		return 0
	}

	diags, err := RunAnalyzers([]*Package{pkg}, analyzers...)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// PrintVersion emits the `-V=full` line the go command uses to fold the
// vet tool's identity into its build cache key. The hash of the binary
// itself stands in for a version: rebuilding simlint invalidates cached
// vet results, exactly as intended.
func PrintVersion(w io.Writer) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil))
}

// PrintFlags emits the `-flags` JSON the go command queries to learn
// which command-line flags the vet tool supports. simlint keeps its CLI
// flag-free: analyzers are always all on.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}
