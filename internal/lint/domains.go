package lint

import "strings"

// simDomain lists the packages bound by the determinism contract: the
// engine, every model layer whose execution feeds fingerprints, the
// invariant/scenario machinery whose reports must reproduce, the
// experiment result paths, the control plane (its audit log and job
// records are rendered output), and the deterministic CLIs whose
// run-twice diffs CI gates on. Wall-clock reads and shared-source
// randomness in these packages break byte-identical replay; nowallclock
// polices them, and maporder scopes its output-path search here too.
var simDomain = []string{
	"composable/internal/sim",
	"composable/internal/fabric",
	"composable/internal/train",
	"composable/internal/collective",
	"composable/internal/orchestrator",
	"composable/internal/faults",
	"composable/internal/invariant",
	"composable/internal/scengen",
	"composable/internal/experiments",
	"composable/internal/telemetry",
	"composable/internal/falcon",
	"composable/internal/cluster",
	"composable/internal/mcs",
	"composable/internal/advisor",
	"composable/cmd/composer",
	"composable/cmd/benchrunner",
	"composable/cmd/fleetsim",
	"composable/cmd/chaossim",
	"composable/cmd/advisor",
	"composable/cmd/falconctl",
}

// inSimDomain reports whether the package path (or a subpackage of it)
// carries the determinism contract.
func inSimDomain(path string) bool {
	for _, d := range simDomain {
		if path == d || strings.HasPrefix(path, d+"/") {
			return true
		}
	}
	return false
}
