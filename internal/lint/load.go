package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis — the
// offline stand-in for golang.org/x/tools/go/packages.Package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (resolved from the
// module root, so callers work regardless of their working directory) and
// returns them ready for RunAnalyzers.
//
// The heavy lifting is delegated to the toolchain: `go list -export`
// compiles dependencies into the build cache and reports their export
// files, and the stdlib gc importer reads those files back through a
// lookup function. That keeps the loader working offline with zero
// third-party dependencies.
func Load(patterns ...string) ([]*Package, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := newGCImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	}, nil)

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := checkPackage(fset, t.ImportPath, t.Dir, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// moduleRoot finds the enclosing module's directory via `go env GOMOD`.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("lint: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return ".", nil
	}
	return filepath.Dir(gomod), nil
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, importPath, dir string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// gcImporter resolves imports from compiled export data: the source
// import path goes through importMap (vet's vendor/test remapping), then
// the lookup maps the canonical path to an export file the stdlib gc
// importer can read.
type gcImporter struct {
	base      types.ImporterFrom
	importMap map[string]string
}

// newGCImporter builds the shared importer. find maps a canonical import
// path to its export-data file; importMap may be nil.
func newGCImporter(fset *token.FileSet, find func(string) (string, bool), importMap map[string]string) *gcImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := find(path)
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	base := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return &gcImporter{base: base, importMap: importMap}
}

func (g *gcImporter) Import(path string) (*types.Package, error) {
	return g.ImportFrom(path, "", 0)
}

func (g *gcImporter) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := g.importMap[path]; ok {
		path = mapped
	}
	return g.base.ImportFrom(path, dir, 0)
}
