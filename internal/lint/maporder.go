package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// MapOrder flags `range` over a map in any function reachable from a
// rendered-output path. Go randomizes map iteration order per run, so a
// map range on a Fingerprint/Render/CSV path is the classic
// nondeterministic-fingerprint bug: output that differs between two runs
// of the same seed. Iteration must go through detmap.SortedKeys (ranging
// the returned slice is naturally exempt) or a local sortedKeys helper,
// or carry a //lint:allow maporder(reason) explaining why order cannot
// leak into output.
//
// Output roots are recognized structurally rather than by a name list: a
// function that returns string or []byte, or writes through an io.Writer
// / *strings.Builder / *bytes.Buffer parameter, renders output. The
// per-package call graph (references count as calls, so callbacks stored
// in registries are followed) extends the root set to everything such a
// path can execute. Dynamic dispatch through interfaces is not resolved —
// the analyzer is a ratchet, not a proof.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map in functions reachable from Fingerprint/Render/" +
		"CSV-output paths; iterate via detmap.SortedKeys or annotate why order cannot leak",
	Run: runMapOrder,
}

// sortedIterationHelper reports whether fn is a sanctioned sorted-iteration
// point: the detmap package, or a local sortedKeys helper (whose whole job
// is to range the map once and sort the keys).
func sortedIterationHelper(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "composable/internal/detmap" {
		return true
	}
	return fn.Name() == "sortedKeys" || fn.Name() == "SortedKeys"
}

// rendersOutput reports whether sig is an output root: its results
// include string or []byte, or it takes a writer-shaped parameter.
func rendersOutput(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if isString(t) || isByteSlice(t) {
			return true
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isWriterish(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isWriterish(t types.Type) bool {
	if named := namedOf(t); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "io.Writer", "strings.Builder", "bytes.Buffer":
				return true
			}
		}
	}
	return false
}

// namedOf unwraps one level of pointer and returns the named type, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func runMapOrder(pass *Pass) error {
	if !inSimDomain(pass.Pkg.Path()) {
		return nil
	}

	// Collect this package's function declarations.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Reference graph: fn -> every same-package function its body mentions
	// (called or stored; both make the callee executable from fn).
	edges := make(map[*types.Func][]*types.Func)
	for fn, fd := range decls {
		ast.Inspect(fd, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
				if _, local := decls[callee]; local && callee != fn {
					edges[fn] = append(edges[fn], callee)
				}
			}
			return true
		})
	}

	// BFS from the output roots, remembering which root reached each
	// function so diagnostics can name the output path.
	rootOf := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	var roots []*types.Func
	for fn := range decls {
		if rendersOutput(fn.Type().(*types.Signature)) {
			roots = append(roots, fn)
		}
	}
	// Deterministic traversal order so "reachable from X" is stable.
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	for _, fn := range roots {
		rootOf[fn] = fn
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range edges[fn] {
			if _, seen := rootOf[callee]; !seen {
				rootOf[callee] = rootOf[fn]
				queue = append(queue, callee)
			}
		}
	}

	for fn, fd := range decls {
		root, reachable := rootOf[fn]
		if !reachable || sortedIterationHelper(fn) || pass.InTestFile(fd.Pos()) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			via := ""
			if root != fn {
				via = " (reachable from " + root.Name() + ")"
			}
			pass.Reportf(rs.Pos(),
				"range over map on the rendered-output path through %s%s; iterate detmap.SortedKeys(m) or annotate why order cannot leak",
				fn.Name(), via)
			return true
		})
	}
	return nil
}
