package lint

import (
	"go/types"
)

// wallClockFuncs are the package time functions that read or wait on the
// host's real clock. time.Duration arithmetic and constants stay legal —
// virtual time is represented as time.Duration throughout the repo.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// sharedRandOK are the math/rand (and /v2) package-level functions that do
// NOT draw from the shared, non-reproducible top-level source: the
// constructors used to build explicitly seeded generators.
var sharedRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// NoWallClock forbids wall-clock reads and top-level math/rand draws in
// sim-domain packages. Both are flagged at every use — including bare
// references like `clock: time.Now` — because storing the function is as
// nondeterministic as calling it.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/Since/Sleep/timers and unseeded top-level math/rand " +
		"in sim-domain packages; virtual time comes from sim.Env, randomness " +
		"from rand.New(rand.NewSource(seed))",
	Run: runNoWallClock,
}

func runNoWallClock(pass *Pass) error {
	if !inSimDomain(pass.Pkg.Path()) {
		return nil
	}
	for ident, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if pass.InTestFile(ident.Pos()) {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
				pass.Reportf(ident.Pos(),
					"time.%s reads the wall clock; sim-domain code must use virtual time (sim.Env/Proc) or an injected clock", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if fn.Type().(*types.Signature).Recv() == nil && !sharedRandOK[fn.Name()] {
				pass.Reportf(ident.Pos(),
					"%s.%s draws from the shared top-level source; use rand.New(rand.NewSource(seed)) for reproducible runs", fn.Pkg().Path(), fn.Name())
			}
		}
	}
	return nil
}
