// Package faults is the failure engine of the composable test bed: a
// deterministic, seeded schedule of failure and repair events played into
// a running simulation. The paper's pitch — hot-plugged chassis, shared
// Falcon links, re-cabled GPUs — creates failure surfaces a fixed server
// never has, and every one of them maps to an event kind here:
//
//   - KindSlotLink / KindHostLink: a fabric link degrades (capacity × a
//     factor) or suffers an outage (factor 0, clamped to a floor so frozen
//     flows stay integrable and resume on repair);
//   - KindGPU: a chassis GPU dies in its slot and is hot-unplugged from
//     the control plane;
//   - KindDrawer: a whole drawer flaps — every slot in it vanishes at once
//     and returns on re-plug;
//   - KindHost: a host machine crashes, taking its running jobs with it.
//
// The package only describes and schedules faults; what a fault *does* is
// supplied by the layer that owns the hardware (Hooks). The fleet
// orchestrator wires hooks that kill and reschedule jobs; single-system
// experiments wire hooks that scale a training run's links. Plans are
// plain data derived from a seed, so a faulty run is exactly as
// reproducible as a fault-free one — the property the fault scenario
// sweep pins byte for byte.
package faults

import (
	"math"
	"math/rand"
	"strconv"
	"time"

	"composable/internal/obs"
	"composable/internal/sim"
)

// Kind classifies a fault event.
type Kind string

// Fault kinds.
const (
	// KindSlotLink degrades the fabric link of one chassis GPU slot
	// (Target = slot index) to Factor × its healthy capacity.
	KindSlotLink Kind = "slot-link"
	// KindHostLink degrades a host's adapter link (Target = host index),
	// the host's whole pipe into the chassis.
	KindHostLink Kind = "host-link"
	// KindGPU fails the device in one chassis slot (Target = slot index).
	KindGPU Kind = "gpu"
	// KindDrawer hot-unplugs a whole drawer (Target = drawer index; in a
	// pod fleet the index is fleet-global, chassis × falcon.NumDrawers +
	// local drawer).
	KindDrawer Kind = "drawer"
	// KindHost crashes a host machine (Target = host index).
	KindHost Kind = "host"
	// KindSpineLink degrades a pod's leaf ↔ spine uplink (Target = pod
	// index) to Factor × its healthy capacity: cross-pod traffic starves
	// while intra-pod traffic is untouched. Pod-shaped fleets only.
	KindSpineLink Kind = "spine-link"
	// KindPod fails a whole pod (Target = pod index): every host and every
	// chassis GPU slot in it goes down at once — the blast radius of a pod
	// power or leaf-switch loss. Pod-shaped fleets only.
	KindPod Kind = "pod"
)

// OutageFloor is the capacity fraction a link outage leaves behind: flows
// over an "out" link are effectively frozen (they crawl at the floor rate)
// but stay integrable, so they thaw when the repair restores capacity
// instead of wedging the allocator.
const OutageFloor = 1e-4

// Event is one scheduled fault.
type Event struct {
	// At is the sim time the fault strikes.
	At time.Duration
	// Kind selects the failure surface; Target's meaning depends on it
	// (slot, host or drawer index).
	Kind   Kind
	Target int
	// Factor is the remaining capacity fraction for the link kinds
	// (0 = outage, clamped to OutageFloor; ignored for device kinds).
	Factor float64
	// Repair, when positive, schedules recovery that long after the
	// fault; zero means the fault is permanent.
	Repair time.Duration
}

// Permanent reports whether the event never repairs.
func (e Event) Permanent() bool { return e.Repair <= 0 }

// String renders the event for logs and golden files. The renderer is
// manual strconv/append work — no fmt — because fault reporting sits on
// the recovery hot path; appendEventString pins the exact bytes.
func (e Event) String() string {
	var buf [96]byte
	b := append(buf[:0], e.At.String()...)
	b = append(b, ' ')
	b = appendKindTarget(b, e.Kind, e.Target)
	if e.Kind.linkKind() {
		b = appendFactor(b, e.Factor)
	}
	if e.Permanent() {
		b = append(b, " permanent"...)
	} else {
		b = append(b, " repair+"...)
		b = append(b, e.Repair.String()...)
	}
	return string(b)
}

// linkKind reports whether the kind degrades a link (carries a Factor).
func (k Kind) linkKind() bool {
	return k == KindSlotLink || k == KindHostLink || k == KindSpineLink
}

// appendKindTarget renders "kind[target]".
func appendKindTarget(b []byte, k Kind, target int) []byte {
	b = append(b, k...)
	b = append(b, '[')
	b = strconv.AppendInt(b, int64(target), 10)
	b = append(b, ']')
	return b
}

// appendFactor renders " x<factor>" with fmt's %.4g semantics (4
// significant digits, shortest form), via strconv.
func appendFactor(b []byte, f float64) []byte {
	b = append(b, " x"...)
	return strconv.AppendFloat(b, f, 'g', 4, 64)
}

// Plan is a deterministic fault schedule.
type Plan struct {
	// Seed records provenance; it does not affect execution.
	Seed   int64
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Ledger canonically renders the plan, one event per line — the fault
// section of a run's byte-exact fingerprint. Rendered with manual
// strconv/append calls; the bytes are pinned by the golden render test.
func (p Plan) Ledger() string {
	b := make([]byte, 0, 64*len(p.Events))
	for _, e := range p.Events {
		b = append(b, "fault at="...)
		b = strconv.AppendInt(b, int64(e.At), 10)
		b = append(b, " kind="...)
		b = append(b, e.Kind...)
		b = append(b, " target="...)
		b = strconv.AppendInt(b, int64(e.Target), 10)
		b = append(b, " factor="...)
		b = strconv.AppendFloat(b, e.Factor, 'g', -1, 64)
		b = append(b, " repair="...)
		b = strconv.AppendInt(b, int64(e.Repair), 10)
		b = append(b, '\n')
	}
	return string(b)
}

// Bounds describes the composed system a plan targets, so generation and
// sanitization can keep every event on real hardware.
type Bounds struct {
	Slots          int // chassis GPU slots (fleet-wide)
	SlotsPerDrawer int // slot→drawer mapping (0 = single drawer)
	Hosts          int
	// Drawers, when positive, is the explicit fleet-global drawer index
	// space (pod fleets stride drawer indices per chassis, so the count is
	// not derivable from Slots alone). Zero keeps the single-chassis
	// derivation from Slots/SlotsPerDrawer.
	Drawers int
	// Pods, when positive, enables the pod-scoped kinds (KindPod,
	// KindSpineLink) with targets in [0, Pods). Zero means no pod tier:
	// pod-scoped events are remapped onto device faults.
	Pods int
	// Horizon bounds fault times; repairs may land past it.
	Horizon time.Duration
	// MaxEvents caps the schedule length (0 = DefaultMaxEvents).
	MaxEvents int
	// MaxPermanentGPUs caps how many GPUs may fail without repair, so a
	// stream's largest job always has surviving capacity (0 = none
	// permanent: every device fault must heal).
	MaxPermanentGPUs int
}

// DefaultMaxEvents bounds generated plans.
const DefaultMaxEvents = 8

func (b Bounds) drawers() int {
	if b.Drawers > 0 {
		return b.Drawers
	}
	if b.SlotsPerDrawer <= 0 || b.Slots <= b.SlotsPerDrawer {
		return 1
	}
	return (b.Slots + b.SlotsPerDrawer - 1) / b.SlotsPerDrawer
}

func (b Bounds) pods() int {
	if b.Pods < 1 {
		return 1
	}
	return b.Pods
}

func (b Bounds) drawerOf(slot int) int {
	if b.SlotsPerDrawer <= 0 {
		return 0
	}
	return slot / b.SlotsPerDrawer
}

// minFaultTime keeps faults off the t=0 instant, where composition and
// arrival bookkeeping run.
const minFaultTime = time.Millisecond

// FromSeed derives a fault plan from a seed within bounds. Equal seeds
// yield equal plans; the mapping is fixed (extend ranges rather than
// reorder draws). The generated plan is already sanitized.
func FromSeed(seed int64, b Bounds) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Seed: seed}
	n := 1 + rng.Intn(maxEvents(b))
	for i := 0; i < n; i++ {
		ev := Event{
			At: minFaultTime + time.Duration(rng.Int63n(int64(horizon(b)))),
		}
		// Pod-shaped bounds widen the kind range with the pod-scoped
		// kinds; non-pod bounds keep the original six-way draw so existing
		// seeds reproduce their plans byte for byte.
		kinds := 6
		if b.Pods > 0 {
			kinds = 8
		}
		switch rng.Intn(kinds) {
		case 0, 1: // link faults are the most common failure in the field
			ev.Kind = KindSlotLink
			ev.Target = rng.Intn(max(1, b.Slots))
			ev.Factor = [...]float64{0, 0.1, 0.25, 0.5}[rng.Intn(4)]
		case 2:
			ev.Kind = KindHostLink
			ev.Target = rng.Intn(max(1, b.Hosts))
			ev.Factor = [...]float64{0.1, 0.25, 0.5}[rng.Intn(3)]
		case 3, 4:
			ev.Kind = KindGPU
			ev.Target = rng.Intn(max(1, b.Slots))
		case 5:
			if rng.Intn(2) == 0 {
				ev.Kind = KindDrawer
				ev.Target = rng.Intn(b.drawers())
			} else {
				ev.Kind = KindHost
				ev.Target = rng.Intn(max(1, b.Hosts))
			}
		case 6:
			ev.Kind = KindSpineLink
			ev.Target = rng.Intn(b.pods())
			ev.Factor = [...]float64{0, 0.1, 0.25, 0.5}[rng.Intn(4)]
		case 7:
			ev.Kind = KindPod
			ev.Target = rng.Intn(b.pods())
		}
		// Most faults heal; a minority of device faults are permanent
		// (Sanitize enforces the survivor budget).
		if ev.Kind == KindGPU && rng.Intn(4) == 0 {
			ev.Repair = 0
		} else {
			ev.Repair = time.Duration(500+rng.Intn(8000)) * time.Millisecond
		}
		p.Events = append(p.Events, ev)
	}
	return Sanitize(p, b)
}

// PlanMTBF derives a plan whose fault arrivals approximate a mean time
// between failures over the horizon: the operator-facing knob ("my GPUs
// die about every N minutes") the advisor's fault profile uses. The
// schedule is deterministic in (seed, mtbf, bounds).
func PlanMTBF(seed int64, mtbf time.Duration, b Bounds) Plan {
	if mtbf <= 0 {
		return Plan{Seed: seed}
	}
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Seed: seed}
	at := time.Duration(0)
	for {
		// Exponential inter-arrival with mean mtbf, deterministic draw.
		gap := time.Duration(float64(mtbf) * rng.ExpFloat64())
		if gap < minFaultTime {
			gap = minFaultTime
		}
		at += gap
		if at > horizon(b) || len(p.Events) >= 4*maxEvents(b) {
			break
		}
		ev := Event{At: at, Repair: time.Duration(500+rng.Intn(4000)) * time.Millisecond}
		switch rng.Intn(4) {
		case 0:
			ev.Kind = KindSlotLink
			ev.Target = rng.Intn(max(1, b.Slots))
			ev.Factor = [...]float64{0, 0.1, 0.25}[rng.Intn(3)]
		case 1, 2:
			ev.Kind = KindGPU
			ev.Target = rng.Intn(max(1, b.Slots))
		case 3:
			ev.Kind = KindDrawer
			ev.Target = rng.Intn(b.drawers())
		}
		p.Events = append(p.Events, ev)
	}
	return Sanitize(p, b)
}

func horizon(b Bounds) time.Duration {
	if b.Horizon > 0 {
		return b.Horizon
	}
	return 60 * time.Second
}

func maxEvents(b Bounds) int {
	if b.MaxEvents > 0 {
		return b.MaxEvents
	}
	return DefaultMaxEvents
}

// Sanitize maps an arbitrary plan onto the nearest valid one for the
// bounds: targets clamped onto real hardware, times clamped into the
// horizon, factors into [0,1), overlapping events on the same target
// dropped (a target fails once at a time; a permanent fault shadows
// everything after it), and the permanent-GPU budget enforced — device
// faults beyond it are forced to heal. It is idempotent, and a sanitized
// plan is safe to arm against any system matching the bounds.
func Sanitize(p Plan, b Bounds) Plan {
	out := Plan{Seed: p.Seed}
	evs := append([]Event(nil), p.Events...)
	for i := range evs {
		e := &evs[i]
		switch e.Kind {
		case KindSlotLink, KindGPU:
			e.Target = clampInt(e.Target, 0, max(0, b.Slots-1))
		case KindHostLink, KindHost:
			e.Target = clampInt(e.Target, 0, max(0, b.Hosts-1))
		case KindDrawer:
			e.Target = clampInt(e.Target, 0, b.drawers()-1)
		case KindSpineLink, KindPod:
			if b.Pods > 0 {
				e.Target = clampInt(e.Target, 0, b.pods()-1)
			} else {
				// No pod tier: the nearest real surface is a device fault.
				e.Kind = KindGPU
				e.Target = clampInt(e.Target, 0, max(0, b.Slots-1))
			}
		default:
			e.Kind = KindGPU
			e.Target = clampInt(e.Target, 0, max(0, b.Slots-1))
		}
		if e.At < minFaultTime {
			e.At = minFaultTime
		}
		if e.At > horizon(b) {
			e.At = horizon(b)
		}
		switch {
		case !e.Kind.linkKind():
			e.Factor = 0
		case e.Factor < 0 || math.IsNaN(e.Factor):
			e.Factor = 0
		case e.Factor >= 1:
			e.Factor = 0.5
		}
		if e.Repair < 0 {
			e.Repair = 0
		}
		if e.Repair > 0 && e.Repair < 100*time.Millisecond {
			e.Repair = 100 * time.Millisecond
		}
		// Hosts, drawers and pods always come back: a stream must be able
		// to drain, and a permanently-dead host would wedge its tenants.
		if (e.Kind == KindHost || e.Kind == KindDrawer || e.Kind == KindPod) && e.Permanent() {
			e.Repair = 2 * time.Second
		}
	}
	// Deterministic order (typed stable insertion sort — plans are short
	// and the closure-free sort keeps compilation off the allocator), then
	// overlap resolution per (kind, target).
	sortEvents(evs)
	// busyUntil is a dense (kind, target) table: after the clamps above,
	// targets sit in [0, max(slots, hosts, drawers)), so a flat slice
	// replaces the old map. 0 encodes "free" (every real entry is ≥
	// minFaultTime), -1 encodes "permanently busy".
	span := max(max(max(b.Slots, b.Hosts), b.drawers()), b.pods())
	if span < 1 {
		span = 1
	}
	busyUntil := make([]time.Duration, len(kindOrder)*span)
	permanentGPUs := 0
	for _, e := range evs {
		if len(out.Events) >= maxEvents(b)*4 {
			break
		}
		k := kindIndex(e.Kind)*span + e.Target
		if until := busyUntil[k]; until != 0 && (until < 0 || e.At < until) {
			continue // overlaps an earlier fault on the same target
		}
		if e.Kind == KindGPU && e.Permanent() {
			if permanentGPUs >= b.MaxPermanentGPUs {
				e.Repair = 2 * time.Second // budget spent: force healing
			} else {
				permanentGPUs++
			}
		}
		if e.Permanent() {
			busyUntil[k] = -1
		} else {
			busyUntil[k] = e.At + e.Repair
		}
		out.Events = append(out.Events, e)
	}
	return out
}

// kindOrder enumerates the kinds for the dense busyUntil table. New kinds
// append; the order is load-bearing for the table layout.
var kindOrder = [...]Kind{KindSlotLink, KindHostLink, KindGPU, KindDrawer, KindHost, KindSpineLink, KindPod}

func kindIndex(k Kind) int {
	for i, o := range kindOrder {
		if o == k {
			return i
		}
	}
	return 2 // Sanitize maps unknown kinds to KindGPU
}

// sortEvents stable-sorts by (At, Kind, Target) with an insertion sort.
func sortEvents(evs []Event) {
	for i := 1; i < len(evs); i++ {
		e := evs[i]
		j := i - 1
		for j >= 0 && eventAfter(evs[j], e) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = e
	}
}

func eventAfter(a, b Event) bool {
	if a.At != b.At {
		return a.At > b.At
	}
	if a.Kind != b.Kind {
		return a.Kind > b.Kind
	}
	return a.Target > b.Target
}

func clampInt(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Record is one applied fault or repair observation, in application order.
type Record struct {
	At     time.Duration
	Kind   Kind
	Target int
	Factor float64 // link kinds: capacity fraction now in effect
	// Up is false when the fault strikes, true when the repair lands.
	Up bool
}

// String renders the record with the same manual strconv/append scheme as
// Event.String; the golden render test pins the bytes.
func (r Record) String() string {
	var buf [96]byte
	b := append(buf[:0], r.At.String()...)
	if r.Up {
		b = append(b, " repair "...)
	} else {
		b = append(b, " FAIL "...)
	}
	b = appendKindTarget(b, r.Kind, r.Target)
	if r.Kind.linkKind() {
		b = appendFactor(b, r.Factor)
	}
	return string(b)
}

// Hooks are the control points an injector drives. Nil hooks are skipped,
// so a caller wires only the surfaces its system has. Link hooks receive
// the capacity fraction now in effect (1 = healthy, OutageFloor = outage);
// device hooks receive up=false on failure and up=true on repair.
type Hooks struct {
	SlotLink  func(slot int, factor float64)
	HostLink  func(host int, factor float64)
	GPU       func(slot int, up bool)
	Drawer    func(drawer int, up bool)
	Host      func(host int, up bool)
	SpineLink func(pod int, factor float64)
	Pod       func(pod int, up bool)
}

// Injector schedules a plan's events into a simulation and dispatches
// them through the hooks, keeping the applied-record log the fingerprint
// and the telemetry event track read from.
type Injector struct {
	env     *sim.Env
	plan    Plan
	hooks   Hooks
	probe   func(Record)
	records []Record
	armed   bool
	// obs, when set, renders each fault as one faults-track span from
	// injection to repair (the blast radius's extent in sim time);
	// obsOpen holds the in-flight spans keyed by (kind, target) —
	// lookup/insert/delete only, never iterated, so order cannot leak.
	obs     *obs.Collector
	obsOpen map[obsSpanKey]obs.SpanID
}

// obsSpanKey identifies one fault's open span: the injector applies at
// most one outstanding fault per (kind, target) pair at a time.
type obsSpanKey struct {
	kind   Kind
	target int
}

// NewInjector binds a (sanitized) plan to an environment and hook set.
// The record log is sized up front: every event applies at most twice
// (fault + repair), so the recovery path never grows it.
func NewInjector(env *sim.Env, plan Plan, hooks Hooks) *Injector {
	return &Injector{env: env, plan: plan, hooks: hooks,
		records: make([]Record, 0, 2*len(plan.Events))}
}

// SetProbe installs fn to observe every applied record, in application
// order. The probe must not mutate simulation state; the invariant set
// and telemetry tracks attach here.
func (in *Injector) SetProbe(fn func(Record)) { in.probe = fn }

// SetObs installs an observability collector: every applied fault becomes
// a span on the faults track, opened when the fault strikes and closed by
// its repair (a permanent fault's span stays open and is clamped at
// export). Pass nil to disable.
func (in *Injector) SetObs(c *obs.Collector) {
	in.obs = c
	if c != nil {
		in.obsOpen = make(map[obsSpanKey]obs.SpanID)
	}
}

// obsRecord pairs fault/repair records into spans; kept off the hot apply
// path behind its nil check.
func (in *Injector) obsRecord(r Record) {
	k := obsSpanKey{kind: r.Kind, target: r.Target}
	if r.Up {
		if id, ok := in.obsOpen[k]; ok {
			in.obs.End(id)
			delete(in.obsOpen, k)
		}
		return
	}
	id := in.obs.Begin(obs.CatFaults, string(r.Kind))
	in.obs.SetAttr(id, "target", int64(r.Target))
	if r.Kind.linkKind() {
		// Per-mille capacity factor keeps span attributes integer-typed.
		in.obs.SetAttr(id, "factor_pm", int64(r.Factor*1000+0.5))
	}
	in.obsOpen[k] = id
}

// Arm schedules every event (and its repair) as sim callbacks. It must be
// called before the environment runs and at most once.
func (in *Injector) Arm() {
	if in.armed {
		panic("faults: injector armed twice")
	}
	in.armed = true
	for _, e := range in.plan.Events {
		e := e
		in.env.Schedule(e.At, func() { in.apply(e, false) })
		if !e.Permanent() {
			in.env.Schedule(e.At+e.Repair, func() { in.apply(e, true) })
		}
	}
}

//perf:hot
func (in *Injector) apply(e Event, up bool) {
	factor := e.Factor
	if factor < OutageFloor {
		factor = OutageFloor
	}
	if up {
		factor = 1
	}
	rec := Record{At: in.env.Now(), Kind: e.Kind, Target: e.Target, Up: up}
	switch e.Kind {
	case KindSlotLink:
		rec.Factor = factor
		if in.hooks.SlotLink != nil {
			in.hooks.SlotLink(e.Target, factor)
		}
	case KindHostLink:
		rec.Factor = factor
		if in.hooks.HostLink != nil {
			in.hooks.HostLink(e.Target, factor)
		}
	case KindGPU:
		if in.hooks.GPU != nil {
			in.hooks.GPU(e.Target, up)
		}
	case KindDrawer:
		if in.hooks.Drawer != nil {
			in.hooks.Drawer(e.Target, up)
		}
	case KindHost:
		if in.hooks.Host != nil {
			in.hooks.Host(e.Target, up)
		}
	case KindSpineLink:
		rec.Factor = factor
		if in.hooks.SpineLink != nil {
			in.hooks.SpineLink(e.Target, factor)
		}
	case KindPod:
		if in.hooks.Pod != nil {
			in.hooks.Pod(e.Target, up)
		}
	}
	in.records = append(in.records, rec)
	if in.probe != nil {
		in.probe(rec)
	}
	if in.obs != nil {
		in.obsRecord(rec)
	}
}

// Records returns the applied fault/repair log in application order.
func (in *Injector) Records() []Record { return in.records }

// AppliedLedger canonically renders the applied records, one per line —
// appended to a faulty run's fingerprint so the run-twice determinism
// check also covers what the engine actually did. Manual strconv/append
// rendering, byte-pinned by the golden render test.
func (in *Injector) AppliedLedger() string {
	b := make([]byte, 0, 64*len(in.records))
	for _, r := range in.records {
		b = append(b, "applied at="...)
		b = strconv.AppendInt(b, int64(r.At), 10)
		b = append(b, " kind="...)
		b = append(b, r.Kind...)
		b = append(b, " target="...)
		b = strconv.AppendInt(b, int64(r.Target), 10)
		b = append(b, " factor="...)
		b = strconv.AppendFloat(b, r.Factor, 'g', -1, 64)
		if r.Up {
			b = append(b, " up=1\n"...)
		} else {
			b = append(b, " up=0\n"...)
		}
	}
	return string(b)
}
