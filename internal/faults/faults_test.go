package faults

import (
	"reflect"
	"testing"
	"time"

	"composable/internal/sim"
)

func bounds() Bounds {
	return Bounds{Slots: 12, SlotsPerDrawer: 8, Hosts: 3, Horizon: 30 * time.Second, MaxPermanentGPUs: 2}
}

func TestFromSeedDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := FromSeed(seed, bounds()), FromSeed(seed, bounds())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: FromSeed not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if a.Ledger() != b.Ledger() {
			t.Fatalf("seed %d: ledgers diverge", seed)
		}
	}
}

func TestPlanMTBFDeterministicAndDenser(t *testing.T) {
	b := bounds()
	a1, a2 := PlanMTBF(7, 5*time.Second, b), PlanMTBF(7, 5*time.Second, b)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("PlanMTBF not deterministic")
	}
	sparse := PlanMTBF(7, 20*time.Second, b)
	dense := PlanMTBF(7, time.Second, b)
	if len(dense.Events) <= len(sparse.Events) {
		t.Errorf("mtbf 1s plan (%d events) not denser than 20s plan (%d events)",
			len(dense.Events), len(sparse.Events))
	}
	if PlanMTBF(7, 0, b).Events != nil {
		t.Errorf("mtbf 0 should disable injection")
	}
}

func TestSanitizeIdempotentAndBounded(t *testing.T) {
	b := bounds()
	raw := Plan{Seed: 9, Events: []Event{
		{At: -time.Second, Kind: KindGPU, Target: 99},                                // clamp target+time
		{At: time.Second, Kind: KindSlotLink, Target: -4, Factor: 3.5},               // clamp factor
		{At: time.Second, Kind: KindHost, Target: 1},                                 // permanent host → forced repair
		{At: 2 * time.Second, Kind: "bogus", Target: 5},                              // unknown kind
		{At: 3 * time.Second, Kind: KindGPU, Target: 2},                              // permanent GPU 1
		{At: 4 * time.Second, Kind: KindGPU, Target: 3},                              // permanent GPU 2
		{At: 5 * time.Second, Kind: KindGPU, Target: 4},                              // over budget → healed
		{At: 3500 * time.Millisecond, Kind: KindGPU, Target: 2, Repair: time.Second}, // overlaps permanent
	}}
	once := Sanitize(raw, b)
	twice := Sanitize(once, b)
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("Sanitize not idempotent:\n%+v\n%+v", once, twice)
	}
	permanentGPUs := 0
	for _, e := range once.Events {
		if e.Target < 0 || e.At < minFaultTime || e.At > b.Horizon {
			t.Errorf("unsanitized event %+v", e)
		}
		switch e.Kind {
		case KindSlotLink, KindHostLink:
			if e.Factor < 0 || e.Factor >= 1 {
				t.Errorf("bad factor %+v", e)
			}
		case KindGPU:
			if e.Permanent() {
				permanentGPUs++
			}
		case KindHost, KindDrawer:
			if e.Permanent() {
				t.Errorf("host/drawer fault left permanent: %+v", e)
			}
		default:
			t.Errorf("unknown kind survived: %+v", e)
		}
	}
	if permanentGPUs > b.MaxPermanentGPUs {
		t.Errorf("%d permanent GPU faults over budget %d", permanentGPUs, b.MaxPermanentGPUs)
	}
	// The overlapping retry of the permanently-failed GPU 2 must be gone.
	seen := 0
	for _, e := range once.Events {
		if e.Kind == KindGPU && e.Target == 2 {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("overlap on permanently-failed target not dropped (%d events)", seen)
	}
}

func TestInjectorDispatchAndLedger(t *testing.T) {
	env := sim.NewEnv()
	plan := Sanitize(Plan{Seed: 1, Events: []Event{
		{At: time.Second, Kind: KindSlotLink, Target: 3, Factor: 0, Repair: time.Second},
		{At: 2 * time.Second, Kind: KindGPU, Target: 5, Repair: 3 * time.Second},
		{At: 4 * time.Second, Kind: KindHost, Target: 1, Repair: time.Second},
	}}, bounds())

	var got []string
	inj := NewInjector(env, plan, Hooks{
		SlotLink: func(slot int, factor float64) {
			if factor != OutageFloor && factor != 1 {
				t.Errorf("outage factor %v, want floor %v or 1", factor, OutageFloor)
			}
			got = append(got, "slotlink")
		},
		GPU:  func(slot int, up bool) { got = append(got, "gpu") },
		Host: func(host int, up bool) { got = append(got, "host") },
	})
	var probed int
	inj.SetProbe(func(r Record) { probed++ })
	inj.Arm()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"slotlink", "slotlink", "gpu", "host", "gpu", "host"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dispatch order %v, want %v", got, want)
	}
	if probed != len(inj.Records()) || probed != 6 {
		t.Fatalf("probe saw %d records, injector logged %d, want 6", probed, len(inj.Records()))
	}
	if inj.AppliedLedger() == "" {
		t.Fatal("empty applied ledger")
	}
}

// TestRenderGolden pins the exact bytes of the manual strconv/append
// renderers that replaced the fmt.Sprintf chains: Event.String,
// Record.String and the two fingerprint ledgers. These strings sit on the
// fingerprint path, so a formatting drift here is silent telemetry
// corruption — the goldens make it a test failure instead.
func TestRenderGolden(t *testing.T) {
	events := []Event{
		{At: 1500 * time.Millisecond, Kind: KindSlotLink, Target: 3, Factor: 0.25, Repair: 2 * time.Second},
		{At: 2 * time.Second, Kind: KindHostLink, Target: 1, Factor: OutageFloor, Repair: 500 * time.Millisecond},
		{At: 3 * time.Second, Kind: KindGPU, Target: 7},
		{At: 4 * time.Second, Kind: KindDrawer, Target: 0, Repair: 2 * time.Second},
		{At: 5*time.Second + 250*time.Millisecond, Kind: KindHost, Target: 2, Repair: time.Second},
		{At: time.Second, Kind: KindSlotLink, Target: 0, Factor: 0, Repair: time.Second},
	}
	wantEvents := []string{
		"1.5s slot-link[3] x0.25 repair+2s",
		"2s host-link[1] x0.0001 repair+500ms",
		"3s gpu[7] permanent",
		"4s drawer[0] repair+2s",
		"5.25s host[2] repair+1s",
		"1s slot-link[0] x0 repair+1s",
	}
	for i, e := range events {
		if got := e.String(); got != wantEvents[i] {
			t.Errorf("Event.String()[%d] = %q, want %q", i, got, wantEvents[i])
		}
	}

	records := []Record{
		{At: 1500 * time.Millisecond, Kind: KindSlotLink, Target: 3, Factor: 0.25},
		{At: 3500 * time.Millisecond, Kind: KindSlotLink, Target: 3, Factor: 1, Up: true},
		{At: 3 * time.Second, Kind: KindGPU, Target: 7},
		{At: 4 * time.Second, Kind: KindHost, Target: 2, Up: true},
	}
	wantRecords := []string{
		"1.5s FAIL slot-link[3] x0.25",
		"3.5s repair slot-link[3] x1",
		"3s FAIL gpu[7]",
		"4s repair host[2]",
	}
	for i, r := range records {
		if got := r.String(); got != wantRecords[i] {
			t.Errorf("Record.String()[%d] = %q, want %q", i, got, wantRecords[i])
		}
	}

	plan := Plan{Events: events[:2]}
	wantLedger := "fault at=1500000000 kind=slot-link target=3 factor=0.25 repair=2000000000\n" +
		"fault at=2000000000 kind=host-link target=1 factor=0.0001 repair=500000000\n"
	if got := plan.Ledger(); got != wantLedger {
		t.Errorf("Ledger() = %q, want %q", got, wantLedger)
	}

	in := &Injector{records: records[:2]}
	wantApplied := "applied at=1500000000 kind=slot-link target=3 factor=0.25 up=0\n" +
		"applied at=3500000000 kind=slot-link target=3 factor=1 up=1\n"
	if got := in.AppliedLedger(); got != wantApplied {
		t.Errorf("AppliedLedger() = %q, want %q", got, wantApplied)
	}
}
