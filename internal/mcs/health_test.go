package mcs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// decode unmarshals a response body or fails the test.
func decode(t *testing.T, body string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
}

// TestAdminHealthSLO pins the extended health surface: tenants keep the
// plain chassis link-health body, admins get the installed SLO and —
// after a drain — the verdict plus per-tenant latency percentiles, and
// the admin body is byte-identical read over read.
func TestAdminHealthSLO(t *testing.T) {
	srv, ts := obsTestServer(t)
	if err := srv.SetSLO("p99-wait<=24h max-failed<=0 util>=0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetSLO("bogus<=1"); err == nil {
		t.Fatal("bad SLO spec installed without error")
	}

	// The tenant body is exactly the chassis view: no SLO, no drain state.
	_, tenantBody := get(t, ts, "/api/health", "tok-alice")
	for _, leak := range []string{"lastDrain", "slo", "tenants"} {
		if strings.Contains(tenantBody, leak) {
			t.Errorf("tenant health body leaks %q:\n%s", leak, tenantBody)
		}
	}

	// Admin before any drain: ports + installed SLO, no lastDrain yet.
	resp, body := get(t, ts, "/api/health", "tok-root")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin health: %d", resp.StatusCode)
	}
	var pre struct {
		SLO string `json:"slo"`
	}
	decode(t, body, &pre)
	if pre.SLO != "p99-wait<=24h max-failed<=0 util>=0" {
		t.Errorf("admin health SLO spec = %q:\n%s", pre.SLO, body)
	}
	if strings.Contains(body, "lastDrain") {
		t.Errorf("lastDrain present before any drain:\n%s", body)
	}

	// Two tenants submit, the admin drains; the snapshot appears.
	doJSON(t, ts, "POST", "/api/jobs", "tok-alice", map[string]any{"gpus": 2, "iters": 2}, nil)
	doJSON(t, ts, "POST", "/api/jobs", "tok-bob", map[string]any{"gpus": 2, "iters": 2}, nil)
	if resp := doJSON(t, ts, "POST", "/api/jobs/run", "tok-root", map[string]any{}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d", resp.StatusCode)
	}

	_, body = get(t, ts, "/api/health", "tok-root")
	var doc struct {
		Ports []any  `json:"ports"`
		SLO   string `json:"slo"`
		Last  *struct {
			Jobs   int `json:"jobs"`
			Failed int `json:"failed"`
			SLO    *struct {
				Healthy bool `json:"healthy"`
			} `json:"slo"`
			Tenants []struct {
				Tenant       string `json:"tenant"`
				Jobs         int    `json:"jobs"`
				P99LatencyMS int64  `json:"p99LatencyMs"`
			} `json:"tenants"`
		} `json:"lastDrain"`
	}
	decode(t, body, &doc)
	if doc.Last == nil {
		t.Fatalf("no lastDrain after a drain:\n%s", body)
	}
	if doc.Last.Jobs != 2 || doc.Last.Failed != 0 {
		t.Errorf("lastDrain jobs/failed = %d/%d, want 2/0", doc.Last.Jobs, doc.Last.Failed)
	}
	if doc.Last.SLO == nil || !doc.Last.SLO.Healthy {
		t.Errorf("generous SLO should verdict healthy:\n%s", body)
	}
	// Tenants in first-submission order, each with a positive latency.
	if len(doc.Last.Tenants) != 2 ||
		doc.Last.Tenants[0].Tenant != "alice" || doc.Last.Tenants[1].Tenant != "bob" {
		t.Fatalf("tenant digests wrong:\n%s", body)
	}
	for _, tn := range doc.Last.Tenants {
		if tn.Jobs != 1 || tn.P99LatencyMS <= 0 {
			t.Errorf("tenant %s digest jobs=%d p99=%dms", tn.Tenant, tn.Jobs, tn.P99LatencyMS)
		}
	}

	// Determinism: the admin body is byte-identical read over read.
	_, again := get(t, ts, "/api/health", "tok-root")
	if body != again {
		t.Errorf("admin health body changed between idle reads:\n--- first\n%s--- second\n%s", body, again)
	}
}

// TestDrainSLOViolationReported pins the failing verdict: an SLO the
// drain cannot meet reports Healthy=false with the failed clause.
func TestDrainSLOViolationReported(t *testing.T) {
	srv, ts := obsTestServer(t)
	if err := srv.SetSLO("p99-latency<=1ns"); err != nil {
		t.Fatal(err)
	}
	doJSON(t, ts, "POST", "/api/jobs", "tok-alice", map[string]any{"gpus": 2, "iters": 2}, nil)
	if resp := doJSON(t, ts, "POST", "/api/jobs/run", "tok-root", map[string]any{}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d", resp.StatusCode)
	}
	_, body := get(t, ts, "/api/health", "tok-root")
	if !strings.Contains(body, `"healthy":false`) {
		t.Errorf("violated SLO not reported unhealthy:\n%s", body)
	}
	if !strings.Contains(body, "p99-latency") {
		t.Errorf("failing clause missing from report:\n%s", body)
	}
}
