package mcs

import (
	"net/http"
	"strconv"

	"composable/internal/obs"
)

// Control-plane observability: the server carries an obs.Registry of API
// counters and queue gauges, served as a plain-text admin endpoint, and
// every queue drain captures a per-job sim-time trace that tenants can
// fetch for their own jobs.

// initMetrics registers the server's counters and gauges. Gauge samplers
// read server state directly; they are only invoked under s.mu (from
// handleMetrics).
func (s *Server) initMetrics() {
	s.cJobsSubmitted = s.metrics.Counter("mcs_jobs_submitted_total")
	s.cJobsRun = s.metrics.Counter("mcs_jobs_run_total")
	s.cDrains = s.metrics.Counter("mcs_queue_drains_total")
	s.cAuthFailures = s.metrics.Counter("mcs_auth_failures_total")
	s.metrics.Gauge("mcs_jobs_queued", func() float64 {
		n := 0
		for i := range s.jobs {
			if s.jobs[i].Status == "queued" {
				n++
			}
		}
		return float64(n)
	})
	s.metrics.Gauge("mcs_audit_entries", func() float64 {
		return float64(len(s.audit))
	})
}

// handleMetrics serves the registry in registration order as "name value"
// text lines. Admin-only, but a tenant gets a plain 404 rather than the
// adminOnly 403: the endpoint's existence is itself operational surface.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request, u *User) {
	if u.Role != RoleAdmin {
		http.NotFound(w, nil)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.metrics.WriteText(w)
}

// handleJobTrace serves the Chrome trace_event JSON captured for one job
// by the last queue drain that ran it. Tenancy matches handleJobGet: a
// job that is not yours does not exist (404, never 403), and a job that
// has not been drained under tracing has no trace (404).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request, u *User) {
	id, err := strconv.Atoi(r.PathValue("id"))
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil || id < 0 || id >= len(s.jobs) || !visibleTo(u, &s.jobs[id]) {
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
		return
	}
	trace, ok := s.traces[id]
	if !ok {
		http.Error(w, `{"error":"no trace for job"}`, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(trace)
}

// tenantTrace renders the slice of a drain's trace that belongs to one
// orchestrator job: every span carrying a matching "job" attribute.
func tenantTrace(col *obs.Collector, jobID int) []byte {
	var b writerBuffer
	_ = col.WriteTraceFiltered(&b, "job", int64(jobID))
	return b.buf
}

// writerBuffer is a minimal io.Writer over an owned byte slice (avoids
// pulling bytes.Buffer into the handler path just to snapshot a trace).
type writerBuffer struct{ buf []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
