package mcs

import (
	"net/http"

	"composable/internal/falcon"
	"composable/internal/obs"
	"composable/internal/obs/analyze"
	"composable/internal/orchestrator"
)

// SLO health (§II-D extended): the server carries a declarative SLO
// (see internal/obs/analyze) that every queue drain is scored against,
// and the admin view of GET /api/health reports the verdict alongside
// per-tenant latency percentiles computed from the drain's trace.
// Tenants keep the plain chassis link-health body — fleet-wide SLO
// state and other tenants' latency figures are operator surface.

// tenantHealth is one tenant's latency digest from the last drain.
// Percentiles are exact nearest-rank values over that tenant's jobs.
type tenantHealth struct {
	Tenant       string `json:"tenant"`
	Jobs         int    `json:"jobs"`
	Failed       int    `json:"failed"`
	P50LatencyMS int64  `json:"p50LatencyMs"`
	P90LatencyMS int64  `json:"p90LatencyMs"`
	P99LatencyMS int64  `json:"p99LatencyMs"`
	P99WaitMS    int64  `json:"p99WaitMs"`
}

// drainAnalytics is the analytics snapshot of the most recent queue
// drain. Tenants appear in first-submission order, so the body is
// deterministic read over read.
type drainAnalytics struct {
	Jobs    int                   `json:"jobs"`
	Failed  int                   `json:"failed"`
	Kills   int                   `json:"kills"`
	SLO     *analyze.HealthReport `json:"slo,omitempty"`
	Tenants []tenantHealth        `json:"tenants"`
}

// adminHealth is the admin body of GET /api/health: the tenant-visible
// link health plus the last drain's SLO verdict and tenant digests.
type adminHealth struct {
	Ports     []falcon.LinkHealth `json:"ports"`
	SLO       string              `json:"slo,omitempty"`
	LastDrain *drainAnalytics     `json:"lastDrain,omitempty"`
}

// SetSLO installs the declarative SLO spec (analyze.ParseSLO syntax,
// e.g. "p99-wait<=1m max-failed<=0 util>=0.2") that every subsequent
// queue drain is evaluated against. An empty spec clears it.
func (s *Server) SetSLO(spec string) error {
	slo, err := analyze.ParseSLO(spec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slo = slo
	s.sloSpec = spec
	return nil
}

// handleHealth serves link health to everyone; admins additionally get
// the last drain's SLO verdict and per-tenant latency percentiles.
// The tenant body is exactly the chassis view — tenancy tests pin it.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request, u *User) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.Role != RoleAdmin {
		writeJSON(w, s.chassis.PortHealth())
		return
	}
	writeJSON(w, adminHealth{
		Ports: s.chassis.PortHealth(), SLO: s.sloSpec, LastDrain: s.drain,
	})
}

// drainSnapshot digests one drained queue: the run's trace is analyzed
// once, scored against the server SLO (if any), and bucketed into
// per-tenant latency histograms. owners lists each distinct owner in
// first-submission order; ownerOf maps orchestrator job order to the
// owning tenant.
func drainSnapshot(col *obs.Collector, res *orchestrator.FleetResult,
	owners []string, ownerOf map[int]string, slo analyze.SLO) *drainAnalytics {
	a := analyze.FromCollector(col).Analyze()
	snap := &drainAnalytics{Jobs: len(a.Jobs), Failed: a.FailedJobs(), Kills: res.Kills}
	if !slo.Empty() {
		snap.SLO = analyze.Evaluate(slo, a, analyze.FleetStats{
			Goodput: res.Goodput, Utilization: res.Utilization, Known: true,
		})
	}
	type acc struct {
		lat, wait *analyze.Histogram
		jobs      int
		failed    int
	}
	byOwner := make(map[string]*acc, len(owners))
	for _, o := range owners {
		byOwner[o] = &acc{lat: analyze.NewHistogram("latency"), wait: analyze.NewHistogram("wait")}
	}
	for i := range a.Jobs {
		ja := &a.Jobs[i]
		t := byOwner[ownerOf[int(ja.Job)]]
		if t == nil {
			continue
		}
		t.jobs++
		if ja.Failed {
			t.failed++
		}
		t.lat.Add(ja.Wall)
		t.wait.Add(ja.Buckets[analyze.BucketWait])
	}
	for _, o := range owners {
		t := byOwner[o]
		snap.Tenants = append(snap.Tenants, tenantHealth{
			Tenant: o, Jobs: t.jobs, Failed: t.failed,
			P50LatencyMS: t.lat.P50().Milliseconds(),
			P90LatencyMS: t.lat.P90().Milliseconds(),
			P99LatencyMS: t.lat.P99().Milliseconds(),
			P99WaitMS:    t.wait.P99().Milliseconds(),
		})
	}
	return snap
}
