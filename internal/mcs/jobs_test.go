package mcs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"composable/internal/falcon"
)

func jobsTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ch := falcon.New("jobs-test")
	srv := NewServer(ch, []User{
		{Name: "root", Role: RoleAdmin, Token: "tok-root"},
		{Name: "alice", Role: RoleUser, Token: "tok-alice", Hosts: []string{"host1"}},
		{Name: "bob", Role: RoleUser, Token: "tok-bob", Hosts: []string{"host2"}},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, ts *httptest.Server, method, path, token string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, path, err)
		}
	}
	return resp
}

func TestJobSubmitListTenancy(t *testing.T) {
	ts := jobsTestServer(t)

	// Unauthenticated submit is rejected.
	if resp := doJSON(t, ts, "POST", "/api/jobs", "", map[string]any{}, nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated submit: %d", resp.StatusCode)
	}

	var a, b JobRecord
	if resp := doJSON(t, ts, "POST", "/api/jobs", "tok-alice",
		map[string]any{"workload": "ResNet-50", "gpus": 4, "iters": 3}, &a); resp.StatusCode != http.StatusCreated {
		t.Fatalf("alice submit: %d", resp.StatusCode)
	}
	if resp := doJSON(t, ts, "POST", "/api/jobs", "tok-bob",
		map[string]any{"workload": "BERT", "gpus": 2, "iters": 3}, &b); resp.StatusCode != http.StatusCreated {
		t.Fatalf("bob submit: %d", resp.StatusCode)
	}
	if a.Owner != "alice" || a.Status != "queued" || b.Owner != "bob" {
		t.Fatalf("records: %+v %+v", a, b)
	}

	// Tenancy: alice lists only her own jobs; admin sees both.
	var aliceList, adminList []JobRecord
	doJSON(t, ts, "GET", "/api/jobs", "tok-alice", nil, &aliceList)
	doJSON(t, ts, "GET", "/api/jobs", "tok-root", nil, &adminList)
	if len(aliceList) != 1 || aliceList[0].Owner != "alice" {
		t.Errorf("alice sees %+v", aliceList)
	}
	if len(adminList) != 2 {
		t.Errorf("admin sees %+v", adminList)
	}

	// Tenancy on the status endpoint: bob's job is invisible to alice
	// (404, indistinguishable from nonexistent).
	if resp := doJSON(t, ts, "GET", "/api/jobs/1", "tok-alice", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("alice reading bob's job: %d, want 404", resp.StatusCode)
	}
	var got JobRecord
	if resp := doJSON(t, ts, "GET", "/api/jobs/1", "tok-bob", nil, &got); resp.StatusCode != http.StatusOK || got.ID != 1 {
		t.Errorf("bob reading his job: %d %+v", resp.StatusCode, got)
	}
}

func TestJobRunIsAdminOnlyAndFillsTelemetry(t *testing.T) {
	ts := jobsTestServer(t)
	for _, sub := range []struct {
		token string
		body  map[string]any
	}{
		{"tok-alice", map[string]any{"workload": "ResNet-50", "gpus": 4, "iters": 3}},
		{"tok-alice", map[string]any{"workload": "MobileNetV2", "gpus": 2, "iters": 3}},
		{"tok-bob", map[string]any{"workload": "BERT", "gpus": 2, "iters": 3}},
	} {
		if resp := doJSON(t, ts, "POST", "/api/jobs", sub.token, sub.body, nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit: %d", resp.StatusCode)
		}
	}

	// A tenant may not drain the fleet queue.
	if resp := doJSON(t, ts, "POST", "/api/jobs/run", "tok-alice", map[string]any{}, nil); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("alice running the queue: %d, want 403", resp.StatusCode)
	}
	// Unknown policy is rejected.
	if resp := doJSON(t, ts, "POST", "/api/jobs/run", "tok-root",
		map[string]any{"policy": "wishful"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad policy: %d, want 400", resp.StatusCode)
	}

	var sum jobRunResponse
	if resp := doJSON(t, ts, "POST", "/api/jobs/run", "tok-root",
		map[string]any{"policy": "drawer", "hosts": 2, "gpus": 8}, &sum); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d", resp.StatusCode)
	}
	if sum.Ran != 3 || sum.Policy != "drawer" || sum.MakespanMS <= 0 {
		t.Fatalf("run summary %+v", sum)
	}

	var all []JobRecord
	doJSON(t, ts, "GET", "/api/jobs", "tok-root", nil, &all)
	for _, rec := range all {
		if rec.Status != "done" || rec.Host == "" || rec.RuntimeMS <= 0 {
			t.Errorf("job %d not filled in: %+v", rec.ID, rec)
		}
	}

	// An empty queue cannot be drained twice.
	if resp := doJSON(t, ts, "POST", "/api/jobs/run", "tok-root", map[string]any{}, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("second run: %d, want 409", resp.StatusCode)
	}
}

// TestJobRunWithFaultProfile drains the queue under a seeded fault
// profile and checks the fault-recovery telemetry lands in the records:
// retry counts, last failure cause, checkpoint progress — and that the
// tenancy rule (404, not 403) still holds for the enriched status.
func TestJobRunWithFaultProfile(t *testing.T) {
	ts := jobsTestServer(t)
	for i := 0; i < 2; i++ {
		if resp := doJSON(t, ts, "POST", "/api/jobs", "tok-alice",
			map[string]any{"workload": "ResNet-50", "gpus": 4, "iters": 25, "epochs": 4}, nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
	}
	var out struct {
		Ran    int `json:"ran"`
		Faults int `json:"faults"`
		Kills  int `json:"kills"`
	}
	if resp := doJSON(t, ts, "POST", "/api/jobs/run", "tok-root",
		map[string]any{"hosts": 2, "gpus": 8, "attachMs": 1, "mtbfMs": 1500, "faultSeed": 1}, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d", resp.StatusCode)
	}
	if out.Ran != 2 || out.Faults == 0 {
		t.Fatalf("faulty drain: %+v", out)
	}
	if out.Kills == 0 {
		t.Fatalf("fault profile produced no kills; telemetry below is vacuous: %+v", out)
	}

	// The enriched status is visible to the owner…
	var rec JobRecord
	if resp := doJSON(t, ts, "GET", "/api/jobs/0", "tok-alice", nil, &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner status: %d", resp.StatusCode)
	}
	if rec.Status != "done" && rec.Status != "failed" {
		t.Errorf("status %q after drain", rec.Status)
	}
	totalRetries := 0
	var all []JobRecord
	doJSON(t, ts, "GET", "/api/jobs", "tok-root", nil, &all)
	for _, r := range all {
		totalRetries += r.Retries
		if r.Retries > 0 && r.LastFailure == "" {
			t.Errorf("job %d retried %d times with no recorded cause", r.ID, r.Retries)
		}
		if r.Status == "failed" && (r.Host != "" || r.RuntimeMS != 0) {
			t.Errorf("failed job %d carries completion telemetry: %+v", r.ID, r)
		}
	}
	if totalRetries != out.Kills {
		t.Errorf("record retries sum %d != reported kills %d", totalRetries, out.Kills)
	}

	// …and still a 404 (not 403) to other tenants.
	if resp := doJSON(t, ts, "GET", "/api/jobs/0", "tok-bob", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("bob reading alice's job after faulty drain: %d, want 404", resp.StatusCode)
	}
}
