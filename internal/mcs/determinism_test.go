package mcs

// Run-twice pinning for the control plane's rendered output: two servers
// built the same way, driven through the same API sequence under a fixed
// clock, must render byte-identical device lists, config exports and audit
// logs. The audit log is the tenancy story's paper trail — nondeterministic
// rendering would make its diffs meaningless.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"composable/internal/falcon"
)

// driveServer builds a fresh chassis+server with a fixed clock, walks one
// API sequence, and returns the rendered bodies of the read endpoints.
func driveServer(t *testing.T) map[string]string {
	t.Helper()
	ch := falcon.New("falcon-det")
	for i, h := range []string{"hostA", "hostA", "hostB", "hostB"} {
		if err := ch.CableHost(fmt.Sprintf("H%d", i+1), h); err != nil {
			t.Fatal(err)
		}
	}
	if err := ch.SetMode(0, falcon.ModeAdvanced); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		ref := falcon.SlotRef{Drawer: 0, Slot: s}
		dev := falcon.DeviceInfo{ID: fmt.Sprintf("gpu-%d", s), Type: falcon.DeviceGPU, Model: "V100"}
		if err := ch.Install(ref, dev); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(ch, []User{
		{Name: "alice", Role: RoleUser, Token: "tok-alice", Hosts: []string{"hostA"}},
		{Name: "root", Role: RoleAdmin, Token: "tok-root"},
	})
	// Fixed injected clock: each audit entry lands one simulated second
	// after the previous, identically in both runs.
	tick := time.Unix(1000, 0).UTC()
	srv.clock = func() time.Time {
		tick = tick.Add(time.Second)
		return tick
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	do := func(method, path, token, body string) {
		t.Helper()
		var rdr io.Reader
		if body != "" {
			rdr = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rdr)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// The mutation sequence: an attach, a denied attach, a detach.
	do("POST", "/api/attach", "tok-alice", `{"drawer":0,"slot":0,"port":"H1"}`)
	do("POST", "/api/attach", "tok-alice", `{"drawer":0,"slot":1,"port":"H3"}`) // not alice's host: denied
	do("POST", "/api/attach", "tok-root", `{"drawer":0,"slot":1,"port":"H3"}`)
	do("POST", "/api/detach", "tok-alice", `{"drawer":0,"slot":0}`)

	read := func(path, token string) string {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, b)
		}
		return string(b)
	}
	return map[string]string{
		"devices": read("/api/devices", "tok-alice"),
		"summary": read("/api/summary", "tok-alice"),
		"config":  read("/api/config", "tok-root"),
		"audit":   read("/api/audit", "tok-root"),
	}
}

func TestControlPlaneOutputIsRunStable(t *testing.T) {
	first := driveServer(t)
	second := driveServer(t)
	for name, body := range first {
		if body == "" {
			t.Fatalf("sanity: %s body is empty", name)
		}
		if second[name] != body {
			t.Errorf("%s differs between identical runs:\n--- run 1\n%s\n--- run 2\n%s", name, body, second[name])
		}
	}
}
