// Package mcs implements the Management Center Server of §II-D: the
// multi-tenant control plane that lets partner users manage *their own*
// chassis resources over HTTP without touching the low-level management
// interface — "users can control their own environment, yet not have any
// access to other users' resources".
//
// The server wraps a falcon.Chassis. Authentication is bearer-token based
// (the enterprise deployment fronts this with SSO; tokens stand in for it),
// and every mutation is authorization-checked against host ownership and
// recorded in an audit log.
package mcs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"composable/internal/falcon"
	"composable/internal/obs"
	"composable/internal/obs/analyze"
)

// Role grades a user's privileges.
type Role string

// Roles.
const (
	RoleAdmin Role = "admin"
	RoleUser  Role = "user"
)

// User is one tenant of the composable environment.
type User struct {
	Name  string
	Role  Role
	Token string
	// Hosts the user owns; the user may only manage devices attached
	// (or attachable) to ports cabled to these hosts.
	Hosts []string
}

func (u *User) ownsHost(h string) bool {
	for _, x := range u.Hosts {
		if x == h {
			return true
		}
	}
	return false
}

// AuditEntry records one authenticated API action.
type AuditEntry struct {
	At     time.Time `json:"at"`
	User   string    `json:"user"`
	Action string    `json:"action"`
	Detail string    `json:"detail"`
	Result string    `json:"result"`
}

// Server is the MCS HTTP server state.
type Server struct {
	mu      sync.Mutex
	chassis *falcon.Chassis
	users   map[string]*User // by token
	audit   []AuditEntry
	clock   func() time.Time
	// jobs is the fleet batch queue (see jobs.go); draining marks an
	// in-flight queue drain so the records cannot be raced.
	jobs     []JobRecord
	draining bool
	// Observability (see obs.go): API counters and queue gauges served by
	// GET /metrics, and the per-job sim-time traces captured by the most
	// recent queue drain, keyed by job record ID. All guarded by mu.
	metrics                                          obs.Registry
	cJobsSubmitted, cJobsRun, cDrains, cAuthFailures obs.CounterID
	traces                                           map[int][]byte
	// SLO health (see health.go): the declarative SLO each drain is
	// scored against and the last drain's analytics snapshot.
	slo     analyze.SLO
	sloSpec string
	drain   *drainAnalytics
}

// NewServer wraps a chassis. Pass the tenant set up front; the admin role
// bypasses ownership checks.
func NewServer(ch *falcon.Chassis, users []User) *Server {
	// Audit-log timestamping is the server's one legitimate wall-clock
	// use; tests swap the clock for a fixed one, and this default is the
	// single annotated read.
	//lint:allow nowallclock(default audit-log clock; injected everywhere determinism matters)
	s := &Server{chassis: ch, users: make(map[string]*User), clock: time.Now,
		traces: make(map[int][]byte)}
	for i := range users {
		u := users[i]
		s.users[u.Token] = &u
	}
	s.initMetrics()
	return s
}

// Audit returns a copy of the audit log.
func (s *Server) Audit() []AuditEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AuditEntry(nil), s.audit...)
}

func (s *Server) record(u *User, action, detail, result string) {
	s.audit = append(s.audit, AuditEntry{
		At: s.clock(), User: u.Name, Action: action, Detail: detail, Result: result,
	})
}

// Handler returns the HTTP mux for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/topology", s.auth(s.handleTopology))
	mux.HandleFunc("GET /api/summary", s.auth(s.handleSummary))
	mux.HandleFunc("GET /api/sensors", s.auth(s.handleSensors))
	mux.HandleFunc("GET /api/health", s.auth(s.handleHealth))
	mux.HandleFunc("GET /api/events", s.auth(s.adminOnly(s.handleEvents)))
	mux.HandleFunc("GET /api/audit", s.auth(s.adminOnly(s.handleAudit)))
	mux.HandleFunc("GET /api/config", s.auth(s.adminOnly(s.handleExport)))
	mux.HandleFunc("GET /api/devices", s.auth(s.handleDevices))
	mux.HandleFunc("GET /api/traffic", s.auth(s.handleTraffic))
	mux.HandleFunc("POST /api/attach", s.auth(s.handleAttach))
	mux.HandleFunc("POST /api/detach", s.auth(s.handleDetach))
	mux.HandleFunc("POST /api/mode", s.auth(s.adminOnly(s.handleMode)))
	mux.HandleFunc("POST /api/jobs", s.auth(s.handleJobSubmit))
	mux.HandleFunc("GET /api/jobs", s.auth(s.handleJobList))
	mux.HandleFunc("GET /api/jobs/{id}", s.auth(s.handleJobGet))
	mux.HandleFunc("GET /api/jobs/{id}/trace", s.auth(s.handleJobTrace))
	mux.HandleFunc("POST /api/jobs/run", s.auth(s.adminOnly(s.handleJobRun)))
	mux.HandleFunc("GET /metrics", s.auth(s.handleMetrics))
	return mux
}

type handlerFunc func(w http.ResponseWriter, r *http.Request, u *User)

// auth resolves the bearer token to a user.
func (s *Server) auth(next handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tok := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		s.mu.Lock()
		u := s.users[tok]
		if tok == "" || u == nil {
			s.metrics.Inc(s.cAuthFailures)
		}
		s.mu.Unlock()
		if tok == "" || u == nil {
			http.Error(w, `{"error":"unauthorized"}`, http.StatusUnauthorized)
			return
		}
		next(w, r, u)
	}
}

// adminOnly gates administrator endpoints (§II-B "administrator feature").
func (s *Server) adminOnly(next handlerFunc) handlerFunc {
	return func(w http.ResponseWriter, r *http.Request, u *User) {
		if u.Role != RoleAdmin {
			http.Error(w, `{"error":"admin role required"}`, http.StatusForbidden)
			return
		}
		next(w, r, u)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleTopology(w http.ResponseWriter, _ *http.Request, _ *User) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, map[string]string{"topology": s.chassis.Topology()})
}

func (s *Server) handleSummary(w http.ResponseWriter, _ *http.Request, _ *User) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, s.chassis.Summary())
}

func (s *Server) handleSensors(w http.ResponseWriter, _ *http.Request, _ *User) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, s.chassis.Sensors())
}

func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request, _ *User) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, s.chassis.Events())
}

func (s *Server) handleAudit(w http.ResponseWriter, _ *http.Request, _ *User) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, s.audit)
}

func (s *Server) handleExport(w http.ResponseWriter, _ *http.Request, _ *User) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.chassis.ExportConfig()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// deviceView is a slot as a tenant sees it.
type deviceView struct {
	Slot   falcon.SlotRef     `json:"slot"`
	Device *falcon.DeviceInfo `json:"device"`
	Port   string             `json:"port,omitempty"`
	Host   string             `json:"host,omitempty"`
	Yours  bool               `json:"yours"`
}

func (s *Server) handleDevices(w http.ResponseWriter, _ *http.Request, u *User) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []deviceView
	for _, ref := range s.chassis.Slots() {
		v := deviceView{Slot: ref, Device: s.chassis.Device(ref)}
		if port := s.chassis.Owner(ref); port != "" {
			v.Port = port
			if p, err := s.chassis.Port(port); err == nil {
				v.Host = p.Host
				v.Yours = u.Role == RoleAdmin || u.ownsHost(p.Host)
			}
		}
		out = append(out, v)
	}
	writeJSON(w, out)
}

func (s *Server) handleTraffic(w http.ResponseWriter, _ *http.Request, _ *User) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rows := s.chassis.PortTraffic()
	if rows == nil {
		rows = []falcon.PortTrafficRow{}
	}
	writeJSON(w, rows)
}

// attachRequest is the attach/detach body.
type attachRequest struct {
	Drawer int    `json:"drawer"`
	Slot   int    `json:"slot"`
	Port   string `json:"port,omitempty"`
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request, u *User) {
	var req attachRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
		return
	}
	ref := falcon.SlotRef{Drawer: req.Drawer, Slot: req.Slot}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Authorization: the target port must be cabled to a host this user
	// owns (admins skip the check).
	if u.Role != RoleAdmin {
		port, err := s.chassis.Port(req.Port)
		if err != nil || !u.ownsHost(port.Host) {
			s.record(u, "attach", fmt.Sprintf("%v -> %s", ref, req.Port), "denied")
			http.Error(w, `{"error":"not your host"}`, http.StatusForbidden)
			return
		}
	}
	if err := s.chassis.Attach(ref, req.Port); err != nil {
		s.record(u, "attach", fmt.Sprintf("%v -> %s", ref, req.Port), "error: "+err.Error())
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusConflict)
		return
	}
	s.record(u, "attach", fmt.Sprintf("%v -> %s", ref, req.Port), "ok")
	writeJSON(w, map[string]string{"status": "attached"})
}

func (s *Server) handleDetach(w http.ResponseWriter, r *http.Request, u *User) {
	var req attachRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
		return
	}
	ref := falcon.SlotRef{Drawer: req.Drawer, Slot: req.Slot}
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.Role != RoleAdmin {
		owner := s.chassis.Owner(ref)
		if owner == "" {
			http.Error(w, `{"error":"not attached"}`, http.StatusConflict)
			return
		}
		port, err := s.chassis.Port(owner)
		if err != nil || !u.ownsHost(port.Host) {
			s.record(u, "detach", ref.String(), "denied")
			http.Error(w, `{"error":"not your device"}`, http.StatusForbidden)
			return
		}
	}
	if err := s.chassis.Detach(ref); err != nil {
		s.record(u, "detach", ref.String(), "error: "+err.Error())
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusConflict)
		return
	}
	s.record(u, "detach", ref.String(), "ok")
	writeJSON(w, map[string]string{"status": "detached"})
}

// modeRequest switches a drawer's mode.
type modeRequest struct {
	Drawer int         `json:"drawer"`
	Mode   falcon.Mode `json:"mode"`
}

func (s *Server) handleMode(w http.ResponseWriter, r *http.Request, u *User) {
	var req modeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.chassis.SetMode(req.Drawer, req.Mode); err != nil {
		s.record(u, "mode", fmt.Sprintf("drawer %d -> %s", req.Drawer, req.Mode), "error: "+err.Error())
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusConflict)
		return
	}
	s.record(u, "mode", fmt.Sprintf("drawer %d -> %s", req.Drawer, req.Mode), "ok")
	writeJSON(w, map[string]string{"status": "ok"})
}
