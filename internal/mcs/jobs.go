package mcs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"composable/internal/cluster"
	"composable/internal/falcon"
	"composable/internal/faults"
	"composable/internal/gpu"
	"composable/internal/obs"
	"composable/internal/orchestrator"
	"composable/internal/sim"
	"composable/internal/train"
)

// Fleet job API (§II-D extended): tenants submit training jobs to the
// management server's batch queue; an administrator drains the queue
// through the fleet orchestrator, which schedules the jobs onto a
// composed multi-host testbed with dynamic GPU recomposition and writes
// the per-job telemetry back into the records.
//
// Tenancy is enforced end to end: a user sees and submits only their own
// jobs (admins see all), each submitting user maps to a tenant host of
// the composed fleet, and draining the queue — a fleet-wide action — is
// admin-only.

// JobRecord is one submitted job and, once the queue has been run, its
// scheduling telemetry.
type JobRecord struct {
	ID    int    `json:"id"`
	Owner string `json:"owner"`

	Workload  string `json:"workload"`
	GPUs      int    `json:"gpus"`
	Precision string `json:"precision"` // fp16 | fp32
	Strategy  string `json:"strategy"`  // DDP | DP
	Sharded   bool   `json:"sharded"`
	Iters     int    `json:"iters"`
	Epochs    int    `json:"epochs"`

	Status string `json:"status"` // queued | done | failed
	// Scheduling telemetry, populated when Status is "done".
	Host      string `json:"host,omitempty"`
	Moves     int    `json:"moves,omitempty"`
	WaitMS    int64  `json:"waitMs"`
	RuntimeMS int64  `json:"runtimeMs"`
	// Fault-recovery telemetry (populated after a faulty run): attempts a
	// fault killed, the last failure cause, and the checkpointed epochs
	// the restarts resumed from.
	Retries     int    `json:"retries"`
	LastFailure string `json:"lastFailure,omitempty"`
	EpochsDone  int    `json:"epochsDone"`
}

// jobSubmitRequest is the POST /api/jobs body.
type jobSubmitRequest struct {
	Workload  string `json:"workload"`
	GPUs      int    `json:"gpus"`
	Precision string `json:"precision"`
	Strategy  string `json:"strategy"`
	Sharded   bool   `json:"sharded"`
	Iters     int    `json:"iters"`
	Epochs    int    `json:"epochs"`
}

// jobRunRequest is the POST /api/jobs/run body. Zero values pick the
// defaults (drawer policy on a 3-host × 12-GPU fleet, fault-free).
type jobRunRequest struct {
	Policy   string `json:"policy"`
	Hosts    int    `json:"hosts"`
	GPUs     int    `json:"gpus"`
	AttachMS int    `json:"attachMs"`
	// MtbfMS, when positive, drains the queue under a seeded fault
	// profile with that mean time between failures; FaultSeed selects
	// the schedule (0 = 1).
	MtbfMS    int   `json:"mtbfMs"`
	FaultSeed int64 `json:"faultSeed"`
}

// jobRunResponse summarizes a drained queue.
type jobRunResponse struct {
	Ran            int     `json:"ran"`
	Policy         string  `json:"policy"`
	MakespanMS     int64   `json:"makespanMs"`
	Recompositions int     `json:"recompositions"`
	Utilization    float64 `json:"utilization"`
	// Fault telemetry (zero on a fault-free drain).
	Faults         int     `json:"faults"`
	Kills          int     `json:"kills"`
	FailedJobs     int     `json:"failedJobs"`
	LostGPUSeconds float64 `json:"lostGpuSeconds"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request, u *User) {
	var req jobSubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := JobRecord{
		ID: len(s.jobs), Owner: u.Name, Status: "queued",
		Workload: req.Workload, GPUs: req.GPUs,
		Precision: req.Precision, Strategy: req.Strategy, Sharded: req.Sharded,
		Iters: req.Iters, Epochs: req.Epochs,
	}
	if rec.Workload == "" {
		rec.Workload = "ResNet-50"
	}
	if rec.Precision == "" {
		rec.Precision = "fp16"
	}
	if rec.Strategy == "" {
		rec.Strategy = "DDP"
	}
	if rec.Iters <= 0 {
		rec.Iters = 10
	}
	if rec.Epochs <= 0 {
		rec.Epochs = 1
	}
	s.jobs = append(s.jobs, rec)
	s.metrics.Inc(s.cJobsSubmitted)
	s.record(u, "job-submit", fmt.Sprintf("job %d: %s ×%d", rec.ID, rec.Workload, rec.GPUs), "queued")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, rec)
}

// visibleTo reports whether a user may see a job record.
func visibleTo(u *User, rec *JobRecord) bool {
	return u.Role == RoleAdmin || rec.Owner == u.Name
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request, u *User) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := []JobRecord{}
	for i := range s.jobs {
		if visibleTo(u, &s.jobs[i]) {
			out = append(out, s.jobs[i])
		}
	}
	writeJSON(w, out)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request, u *User) {
	id, err := strconv.Atoi(r.PathValue("id"))
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil || id < 0 || id >= len(s.jobs) {
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
		return
	}
	if !visibleTo(u, &s.jobs[id]) {
		// 404, not 403: a tenant must not learn other tenants' job IDs.
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
		return
	}
	writeJSON(w, s.jobs[id])
}

// handleJobRun drains the queued jobs through the fleet orchestrator on a
// freshly composed testbed. Admin-only: scheduling recomposes GPUs across
// every tenant's hosts.
func (s *Server) handleJobRun(w http.ResponseWriter, r *http.Request, u *User) {
	var req jobRunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
		return
	}
	if req.Policy == "" {
		req.Policy = "drawer"
	}
	if req.Hosts == 0 {
		req.Hosts = 3
	}
	if req.GPUs == 0 {
		req.GPUs = 12
	}
	pol, err := orchestrator.PolicyByName(req.Policy)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return
	}

	// Snapshot the queue under the lock, simulate unlocked (a long queue
	// can take a while and must not stall the whole API — auth itself
	// takes the server lock), then write telemetry back under the lock.
	// draining guards against two concurrent admins racing the same
	// queued records; job IDs are stable because s.jobs only appends.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, `{"error":"a queue drain is already in progress"}`, http.StatusConflict)
		return
	}
	// Queued jobs in submission order; each distinct owner becomes a
	// tenant host (round-robin beyond the host count).
	var queued []int
	var owners []string // distinct owners, first-submission order
	tenantOf := map[string]int{}
	for i := range s.jobs {
		if s.jobs[i].Status != "queued" {
			continue
		}
		if _, ok := tenantOf[s.jobs[i].Owner]; !ok {
			tenantOf[s.jobs[i].Owner] = len(tenantOf) % req.Hosts
			owners = append(owners, s.jobs[i].Owner)
		}
		queued = append(queued, i)
	}
	if len(queued) == 0 {
		s.mu.Unlock()
		http.Error(w, `{"error":"no queued jobs"}`, http.StatusConflict)
		return
	}
	specs := make([]orchestrator.JobSpec, 0, len(queued))
	for order, i := range queued {
		rec := &s.jobs[i]
		spec := orchestrator.JobSpec{
			Arrival:  time.Duration(order) * 100 * time.Millisecond,
			Tenant:   tenantOf[rec.Owner],
			GPUs:     rec.GPUs,
			Workload: rec.Workload,
			Strategy: train.Strategy(rec.Strategy),
			Sharded:  rec.Sharded,
			Epochs:   rec.Epochs, ItersPerEpoch: rec.Iters,
		}
		if rec.Precision == "fp16" {
			spec.Precision = gpu.FP16
		} else {
			spec.Precision = gpu.FP32
		}
		specs = append(specs, spec)
	}
	s.draining = true
	s.mu.Unlock()

	res, col, errStatus, runErr := runFleetQueue(req, pol, specs)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = false
	if runErr != nil {
		s.record(u, "job-run", req.Policy, "error: "+runErr.Error())
		http.Error(w, fmt.Sprintf(`{"error":%q}`, runErr.Error()), errStatus)
		return
	}
	s.metrics.Inc(s.cDrains)
	s.metrics.Add(s.cJobsRun, int64(len(queued)))
	ownerOf := make(map[int]string, len(queued))
	for order, i := range queued {
		// The orchestrator numbers jobs by stream position, so `order` is
		// the job attribute its spans carry.
		s.traces[i] = tenantTrace(col, order)
		ownerOf[order] = s.jobs[i].Owner
	}
	s.drain = drainSnapshot(col, res, owners, ownerOf, s.slo)
	for order, i := range queued {
		rec := &s.jobs[i]
		j := res.Jobs[order]
		rec.Moves = j.Moves
		rec.Retries = j.Retries
		rec.LastFailure = j.FailureCause
		rec.EpochsDone = j.EpochsDone
		rec.GPUs = j.GPUs // sanitized demand is the scheduled truth
		if j.Failed {
			rec.Status = "failed"
			rec.Host = ""
			rec.WaitMS, rec.RuntimeMS = 0, 0
			continue
		}
		rec.Status = "done"
		rec.Host = fmt.Sprintf("host%d", j.Host+1)
		rec.WaitMS = j.Wait.Milliseconds()
		rec.RuntimeMS = j.Runtime.Milliseconds()
	}
	s.record(u, "job-run", fmt.Sprintf("%d jobs via %s on %d hosts × %d GPUs",
		len(queued), req.Policy, req.Hosts, req.GPUs), "ok")
	writeJSON(w, jobRunResponse{
		Ran: len(queued), Policy: res.Policy,
		MakespanMS: res.Makespan.Milliseconds(), Recompositions: res.Recompositions,
		Utilization: res.Utilization,
		Faults:      res.Faults, Kills: res.Kills, FailedJobs: res.FailedJobs,
		LostGPUSeconds: res.LostGPUSeconds,
	})
}

// runFleetQueue composes a fresh fleet and drains the snapshot through
// the orchestrator with a span collector attached (every drain is traced;
// the per-job slices are what GET /api/jobs/{id}/trace serves). It holds
// no server state and takes no lock. On failure the returned status
// distinguishes a bad fleet description (400) from a scheduling failure
// (409).
func runFleetQueue(req jobRunRequest, pol orchestrator.Policy, specs []orchestrator.JobSpec) (*orchestrator.FleetResult, *obs.Collector, int, error) {
	env := sim.NewEnv()
	col := obs.NewCollector()
	col.Attach(env)
	fleet, err := cluster.ComposeFleet(env, cluster.FleetOptions{
		Hosts: req.Hosts, GPUs: req.GPUs, Preattach: pol.Name() == "static",
	})
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	fleet.AttachObs(col)
	latency := time.Duration(req.AttachMS) * time.Millisecond
	if req.AttachMS == 0 {
		latency = orchestrator.DefaultAttachLatency
	}
	var plan *faults.Plan
	if req.MtbfMS > 0 {
		seed := req.FaultSeed
		if seed == 0 {
			seed = 1
		}
		p := faults.PlanMTBF(seed, time.Duration(req.MtbfMS)*time.Millisecond, faults.Bounds{
			Slots: req.GPUs, SlotsPerDrawer: falcon.SlotsPerDrawer, Hosts: req.Hosts,
		})
		plan = &p
	}
	res, err := orchestrator.Run(fleet, specs, orchestrator.Options{
		Policy: pol, AttachLatency: latency, Faults: plan, Obs: col,
	})
	if err != nil {
		return nil, nil, http.StatusConflict, err
	}
	// Mark the drain itself on the control-plane track. No "job" attr, so
	// tenant-filtered traces are unchanged by it.
	id := col.Emit(obs.CatMCS, "drain", 0, sim.Time(res.Makespan))
	col.SetAttrStr(id, "policy", res.Policy)
	return res, col, 0, nil
}
