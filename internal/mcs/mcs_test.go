package mcs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"composable/internal/falcon"
	"composable/internal/units"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *falcon.Chassis) {
	t.Helper()
	ch := falcon.New("falcon-test")
	for i, h := range []string{"hostA", "hostA", "hostB", "hostB"} {
		if err := ch.CableHost(fmt.Sprintf("H%d", i+1), h); err != nil {
			t.Fatal(err)
		}
	}
	if err := ch.SetMode(0, falcon.ModeAdvanced); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		ref := falcon.SlotRef{Drawer: 0, Slot: s}
		dev := falcon.DeviceInfo{ID: fmt.Sprintf("gpu-%d", s), Type: falcon.DeviceGPU, Model: "V100"}
		if err := ch.Install(ref, dev); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(ch, []User{
		{Name: "alice", Role: RoleUser, Token: "tok-alice", Hosts: []string{"hostA"}},
		{Name: "bob", Role: RoleUser, Token: "tok-bob", Hosts: []string{"hostB"}},
		{Name: "root", Role: RoleAdmin, Token: "tok-root"},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, ch
}

func call(t *testing.T, ts *httptest.Server, method, path, token string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestUnauthenticatedRejected(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, _ := call(t, ts, "GET", "/api/topology", "", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401", resp.StatusCode)
	}
	resp, _ = call(t, ts, "GET", "/api/topology", "tok-bogus", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bogus token status = %d, want 401", resp.StatusCode)
	}
}

func TestUserCanAttachToOwnHost(t *testing.T) {
	_, ts, ch := newTestServer(t)
	resp, body := call(t, ts, "POST", "/api/attach", "tok-alice",
		attachRequest{Drawer: 0, Slot: 0, Port: "H1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	if got := ch.Owner(falcon.SlotRef{Drawer: 0, Slot: 0}); got != "H1" {
		t.Fatalf("owner = %q", got)
	}
}

func TestUserCannotTouchOtherUsersResources(t *testing.T) {
	_, ts, ch := newTestServer(t)
	// Alice attaches to hostA's port.
	if resp, _ := call(t, ts, "POST", "/api/attach", "tok-alice",
		attachRequest{Drawer: 0, Slot: 0, Port: "H1"}); resp.StatusCode != 200 {
		t.Fatal("alice attach failed")
	}
	// Bob cannot attach to hostA's port...
	resp, _ := call(t, ts, "POST", "/api/attach", "tok-bob",
		attachRequest{Drawer: 0, Slot: 1, Port: "H1"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("bob attach to H1 status = %d, want 403", resp.StatusCode)
	}
	// ...and cannot detach alice's device.
	resp, _ = call(t, ts, "POST", "/api/detach", "tok-bob",
		attachRequest{Drawer: 0, Slot: 0})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("bob detach status = %d, want 403", resp.StatusCode)
	}
	if got := ch.Owner(falcon.SlotRef{Drawer: 0, Slot: 0}); got != "H1" {
		t.Fatalf("alice's device was detached: owner=%q", got)
	}
}

func TestAdminBypassesOwnership(t *testing.T) {
	_, ts, _ := newTestServer(t)
	if resp, _ := call(t, ts, "POST", "/api/attach", "tok-alice",
		attachRequest{Drawer: 0, Slot: 0, Port: "H1"}); resp.StatusCode != 200 {
		t.Fatal("alice attach failed")
	}
	resp, body := call(t, ts, "POST", "/api/detach", "tok-root",
		attachRequest{Drawer: 0, Slot: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin detach status = %d, body = %s", resp.StatusCode, body)
	}
}

func TestAdminOnlyEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, path := range []string{"/api/events", "/api/audit", "/api/config"} {
		resp, _ := call(t, ts, "GET", path, "tok-alice", nil)
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s as user: status = %d, want 403", path, resp.StatusCode)
		}
		resp, _ = call(t, ts, "GET", path, "tok-root", nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s as admin: status = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestAuditLogRecordsDenials(t *testing.T) {
	srv, ts, _ := newTestServer(t)
	call(t, ts, "POST", "/api/attach", "tok-alice", attachRequest{Drawer: 0, Slot: 0, Port: "H1"})
	call(t, ts, "POST", "/api/attach", "tok-bob", attachRequest{Drawer: 0, Slot: 1, Port: "H1"})
	audit := srv.Audit()
	var ok, denied int
	for _, e := range audit {
		switch e.Result {
		case "ok":
			ok++
		case "denied":
			denied++
		}
	}
	if ok != 1 || denied != 1 {
		t.Fatalf("audit ok=%d denied=%d, entries=%+v", ok, denied, audit)
	}
}

func TestReadEndpointsServeJSON(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, path := range []string{"/api/topology", "/api/summary", "/api/sensors", "/api/health", "/api/devices"} {
		resp, body := call(t, ts, "GET", path, "tok-alice", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
		var v interface{}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
	}
}

func TestModeSwitchViaAPI(t *testing.T) {
	_, ts, ch := newTestServer(t)
	resp, body := call(t, ts, "POST", "/api/mode", "tok-root",
		modeRequest{Drawer: 1, Mode: falcon.ModeStandardTwoHost})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	if ch.DrawerMode(1) != falcon.ModeStandardTwoHost {
		t.Fatal("mode not applied")
	}
	// Users cannot switch modes.
	resp, _ = call(t, ts, "POST", "/api/mode", "tok-alice",
		modeRequest{Drawer: 1, Mode: falcon.ModeAdvanced})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("user mode switch status = %d, want 403", resp.StatusCode)
	}
}

func TestTrafficEndpoint(t *testing.T) {
	srv, ts, ch := newTestServer(t)
	_ = srv
	// Wire a synthetic traffic source for one slot.
	ch.SetTrafficSource(falcon.SlotRef{Drawer: 0, Slot: 0}, func() (in, out units.Bytes) {
		return 1000, 2000
	})
	resp, body := call(t, ts, "GET", "/api/traffic", "tok-alice", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rows []map[string]interface{}
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1 monitored slot", len(rows))
	}
	if rows[0]["egressBytes"].(float64) != 2000 {
		t.Fatalf("egress = %v", rows[0]["egressBytes"])
	}
}
