package mcs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"composable/internal/falcon"
)

func obsTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	ch := falcon.New("obs-test")
	srv := NewServer(ch, []User{
		{Name: "root", Role: RoleAdmin, Token: "tok-root"},
		{Name: "alice", Role: RoleUser, Token: "tok-alice", Hosts: []string{"host1"}},
		{Name: "bob", Role: RoleUser, Token: "tok-bob", Hosts: []string{"host2"}},
	})
	// Freeze the audit clock so nothing in the server depends on wall time.
	fixed := time.Date(2021, 5, 17, 12, 0, 0, 0, time.UTC)
	srv.clock = func() time.Time { return fixed }
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, ts *httptest.Server, path, token string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsEndpoint pins the admin metrics surface: 401 without a
// token, a plain 404 (never 403) for tenants, and for admins a
// deterministic text body in registration order that tracks API activity.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := obsTestServer(t)

	if resp, _ := get(t, ts, "/metrics", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /metrics: %d, want 401", resp.StatusCode)
	}
	resp, body := get(t, ts, "/metrics", "tok-alice")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("tenant /metrics: %d, want 404 (not 403)", resp.StatusCode)
	}
	if strings.Contains(body, "admin") {
		t.Errorf("tenant 404 leaks the admin gate: %q", body)
	}

	resp, body = get(t, ts, "/metrics", "tok-root")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	// One failed auth above; the counter must have seen it.
	if !strings.Contains(body, "mcs_auth_failures_total 1\n") {
		t.Errorf("auth-failure counter wrong:\n%s", body)
	}

	// Submit two jobs and re-read: submissions and queue depth move.
	doJSON(t, ts, "POST", "/api/jobs", "tok-alice", map[string]any{"gpus": 2, "iters": 2}, nil)
	doJSON(t, ts, "POST", "/api/jobs", "tok-bob", map[string]any{"gpus": 2, "iters": 2}, nil)
	_, body = get(t, ts, "/metrics", "tok-root")
	for _, want := range []string{"mcs_jobs_submitted_total 2\n", "mcs_jobs_queued 2\n"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// Under the frozen clock the body is deterministic read over read.
	_, again := get(t, ts, "/metrics", "tok-root")
	if body != again {
		t.Errorf("metrics body changed between idle reads:\n--- first\n%s--- second\n%s", body, again)
	}
}

// TestJobTraceTenancy pins the per-job trace endpoint: before a drain no
// trace exists (404); after an admin drain each tenant can fetch exactly
// their own job's trace, other tenants' traces 404 (never 403), and the
// served slice carries only that job's spans.
func TestJobTraceTenancy(t *testing.T) {
	_, ts := obsTestServer(t)

	var a, b JobRecord
	doJSON(t, ts, "POST", "/api/jobs", "tok-alice", map[string]any{"gpus": 2, "iters": 2}, &a)
	doJSON(t, ts, "POST", "/api/jobs", "tok-bob", map[string]any{"gpus": 2, "iters": 2}, &b)

	if resp, _ := get(t, ts, "/api/jobs/0/trace", "tok-alice"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace before drain: %d, want 404", resp.StatusCode)
	}

	if resp := doJSON(t, ts, "POST", "/api/jobs/run", "tok-root", map[string]any{}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d", resp.StatusCode)
	}

	resp, body := get(t, ts, "/api/jobs/0/trace", "tok-alice")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alice's own trace: %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" && e.Ph != "i" {
			continue
		}
		spans++
		if v, ok := e.Args["job"].(float64); !ok || int(v) != 0 {
			t.Fatalf("alice's trace leaked a span with job attr %v", e.Args["job"])
		}
	}
	if spans == 0 {
		t.Fatal("alice's trace is empty")
	}

	// Bob's job is record 1; alice must get a 404, bob a 200, admin a 200.
	if resp, _ := get(t, ts, "/api/jobs/1/trace", "tok-alice"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant trace: %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/api/jobs/1/trace", "tok-bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob's own trace: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/api/jobs/1/trace", "tok-root"); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin read of a tenant trace: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/api/jobs/99/trace", "tok-root"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: %d, want 404", resp.StatusCode)
	}
}
