package invariant

import (
	"strings"
	"testing"
	"time"

	"composable/internal/falcon"
	"composable/internal/gpu"
	"composable/internal/orchestrator"
)

func ref(d, s int) falcon.SlotRef { return falcon.SlotRef{Drawer: d, Slot: s} }

func TestOrchestratorProbeCleanLifecycle(t *testing.T) {
	s := New()
	probe := s.OrchestratorProbe()
	slots := []falcon.SlotRef{ref(0, 0), ref(0, 1)}
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 0, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventPlace, At: time.Second, Job: 0, Host: 1, Slots: slots, Moves: 2})
	probe(orchestrator.Event{Kind: orchestrator.EventLaunch, At: 2 * time.Second, Job: 0, Host: 1, Slots: slots})
	probe(orchestrator.Event{Kind: orchestrator.EventFinish, At: 5 * time.Second, Job: 0, Host: 1, Slots: slots})
	if err := s.Err(); err != nil {
		t.Fatalf("clean lifecycle reported violations: %v", err)
	}
}

func TestOrchestratorProbeDoubleAssignment(t *testing.T) {
	s := New()
	probe := s.OrchestratorProbe()
	shared := []falcon.SlotRef{ref(0, 0)}
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 0, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 1, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventPlace, At: 0, Job: 0, Host: 0, Slots: shared})
	probe(orchestrator.Event{Kind: orchestrator.EventPlace, At: 0, Job: 1, Host: 1, Slots: shared})
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "double-assign") {
		t.Fatalf("double assignment not reported: %v", err)
	}
}

func TestOrchestratorProbeLifecycleOrder(t *testing.T) {
	s := New()
	probe := s.OrchestratorProbe()
	// Launch before place, and a job finishing without arriving.
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 0, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventLaunch, At: 0, Job: 0, Host: 0})
	probe(orchestrator.Event{Kind: orchestrator.EventFinish, At: 0, Job: 7, Host: 0})
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "lifecycle") {
		t.Fatalf("lifecycle violations not reported: %v", err)
	}
}

func TestOrchestratorProbeTimeMonotonic(t *testing.T) {
	s := New()
	probe := s.OrchestratorProbe()
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: time.Second, Job: 0, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 1, Host: -1})
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "time-monotonic") {
		t.Fatalf("time regression not reported: %v", err)
	}
}

func TestWatchChassisConservation(t *testing.T) {
	ch := falcon.New("inv-test")
	if err := ch.CableHost("H1", "host1"); err != nil {
		t.Fatal(err)
	}
	if err := ch.CableHost("H2", "host2"); err != nil {
		t.Fatal(err)
	}
	if err := ch.SetMode(0, falcon.ModeAdvanced); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := ch.Install(ref(0, i), falcon.DeviceInfo{
			ID: "g", Type: falcon.DeviceGPU, Model: gpu.TeslaV100PCIe.Name,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := New()
	s.WatchChassis(ch)
	if err := ch.Attach(ref(0, 0), "H1"); err != nil {
		t.Fatal(err)
	}
	if err := ch.Attach(ref(0, 1), "H1"); err != nil {
		t.Fatal(err)
	}
	if err := ch.Reassign(ref(0, 1), "H2"); err != nil {
		t.Fatal(err)
	}
	if err := ch.Detach(ref(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("legal attach/reassign/detach sequence reported violations: %v", err)
	}
	if s.chassisAttaches != 2 || s.chassisReassigns != 1 || s.chassisDetaches != 1 {
		t.Fatalf("event accounting: %d attaches, %d reassigns, %d detaches",
			s.chassisAttaches, s.chassisReassigns, s.chassisDetaches)
	}
}
