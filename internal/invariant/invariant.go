// Package invariant checks physics-style properties of composed-system
// simulations while they run. A Set attaches to the probe points the lower
// layers expose — the sim engine's event probe, the fabric allocator's
// auditor, the training engine's lifecycle probe — and records every
// violation it observes:
//
//   - event-time monotonicity: the virtual clock never runs backwards;
//   - bandwidth conservation: the max-min allocator never hands a link
//     direction more rate than its capacity, and never gives a flow a
//     negative rate or more than its own cap;
//   - byte conservation: per-link traffic counters only grow, and never
//     exceed the capacity integral over elapsed time;
//   - training-side sanity: epoch/checkpoint probe times are monotone,
//     reported utilizations are fractions, memory highwater marks respect
//     device capacity, and runs leave no allocations or flows behind.
//
// The random-scenario harness (internal/scengen) wires a Set into every
// run; any violation fails the sweep and the fuzz targets.
package invariant

import (
	"fmt"
	"math"
	"strings"
	"time"

	"composable/internal/cluster"
	"composable/internal/fabric"
	"composable/internal/falcon"
	"composable/internal/sim"
	"composable/internal/train"
	"composable/internal/units"
)

// Violation is one observed breach of an invariant.
type Violation struct {
	// Rule names the invariant, e.g. "fabric/link-capacity".
	Rule string
	// At is the virtual time of the observation.
	At time.Duration
	// Detail describes the breach with the observed values.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] t=%v: %s", v.Rule, v.At, v.Detail)
}

// Set accumulates violations from every probe it is attached to. It is not
// goroutine-safe across simulations; use one Set per composed system (the
// engine's strict handoff makes the in-simulation callbacks sequential).
type Set struct {
	violations []Violation
	// maxRecorded caps the slice so a systematically broken run cannot
	// allocate without bound; the count keeps the true total.
	count int

	// watcher state.
	lastEvent sim.Time
	lastTrain sim.Time
	linkSeen  map[fabric.LinkID][2]units.Bytes
	// Byte-conservation under capacity changes: the capacity integral is
	// accumulated audit window by audit window using the capacity that was
	// in effect during each window (capacity changes — fault degradations
	// and repairs — always trigger an audit at the instant they land, so a
	// window never spans a change).
	lastAudit   sim.Time
	linkCapInt  map[fabric.LinkID][2]float64
	linkPrevCap map[fabric.LinkID][2]float64

	// fleet watcher state (see orchestrator.go). Slot maps are keyed by
	// global fleet slot index: SlotRefs repeat across the chassis of a pod
	// fleet, so a ref alone no longer names a device.
	lastOrc          time.Duration
	orcJobs          map[int]*jobLife
	orcSlots         map[int]int
	orcDownSlots     map[int]bool
	orcDownHosts     map[int]bool
	orcDownPods      map[int]bool
	orcHostPod       []int // host index → pod (WatchFleet; nil = single pod)
	chassisAttached  map[chassisSlot]bool
	chassisAttachedN map[int]int // per-chassis attached count
	chassisAttaches  int
	chassisDetaches  int
	chassisReassigns int
}

// chassisSlot names one physical slot fleet-wide: the chassis's global
// index plus the slot's in-chassis ref.
type chassisSlot struct {
	chassis int
	ref     falcon.SlotRef
}

// maxRecorded bounds the retained violations per Set.
const maxRecorded = 64

// capacitySlack is the relative tolerance on rate/byte conservation checks,
// absorbing float rounding in the max-min progressive filling.
const capacitySlack = 1e-6

// New returns an empty Set.
func New() *Set {
	return &Set{
		lastEvent:   -1,
		lastTrain:   -1,
		linkSeen:    make(map[fabric.LinkID][2]units.Bytes),
		linkCapInt:  make(map[fabric.LinkID][2]float64),
		linkPrevCap: make(map[fabric.LinkID][2]float64),
	}
}

// Report records a violation. Exposed so higher layers (metamorphic checks
// in scengen) can funnel their findings through the same Set.
func (s *Set) Report(rule string, at time.Duration, format string, args ...any) {
	s.count++
	if len(s.violations) < maxRecorded {
		s.violations = append(s.violations, Violation{Rule: rule, At: at, Detail: fmt.Sprintf(format, args...)})
	}
}

// Ok reports whether no violation has been observed.
func (s *Set) Ok() bool { return s.count == 0 }

// Count returns the total number of violations observed, including any
// beyond the retained window.
func (s *Set) Count() int { return s.count }

// Violations returns the retained violations in observation order.
func (s *Set) Violations() []Violation { return s.violations }

// Err returns nil when the set is clean, otherwise an error summarizing
// the violations.
func (s *Set) Err() error {
	if s.count == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s):", s.count)
	for _, v := range s.violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if s.count > len(s.violations) {
		fmt.Fprintf(&b, "\n  ... and %d more", s.count-len(s.violations))
	}
	return fmt.Errorf("%s", b.String())
}

// WatchEnv attaches the event-time monotonicity check to the engine. The
// environment's previous event probe, if any, is replaced.
func (s *Set) WatchEnv(env *sim.Env) {
	env.SetEventProbe(func(at sim.Time) {
		if at < s.lastEvent {
			s.Report("sim/time-monotonic", at, "event at %v dispatched after %v", at, s.lastEvent)
		}
		s.lastEvent = at
	})
}

// WatchNetwork attaches the allocator audit to a fabric: after every
// recompute it checks per-direction capacity conservation, per-flow rate
// sanity, and the monotone growth and capacity integral of the link byte
// counters. The network's previous auditor, if any, is replaced.
func (s *Set) WatchNetwork(net *fabric.Network) {
	env := net.Env()
	net.SetAuditor(func() {
		now := env.Now()
		net.VisitAllocations(func(l *fabric.Link, forward bool, allocated, capacity float64) {
			if allocated > capacity*(1+capacitySlack)+1 {
				dir := "A→B"
				if !forward {
					dir = "B→A"
				}
				s.Report("fabric/link-capacity", now,
					"link %d %s allocated %.1f B/s over capacity %.1f B/s", l.ID, dir, allocated, capacity)
			}
		})
		net.VisitFlows(func(f *fabric.Flow) {
			rate := float64(f.Rate())
			if rate < 0 || math.IsNaN(rate) {
				s.Report("fabric/flow-rate", now, "flow %d→%d rate %v", f.Src, f.Dst, f.Rate())
			}
			if rcap := float64(f.MaxRate()); rcap > 0 && rate > rcap*(1+capacitySlack)+1 {
				s.Report("fabric/flow-rate-cap", now,
					"flow %d→%d rate %.1f B/s over cap %.1f B/s", f.Src, f.Dst, rate, rcap)
			}
			if f.Remaining() < 0 {
				s.Report("fabric/flow-remaining", now, "flow %d→%d remaining %v", f.Src, f.Dst, f.Remaining())
			}
		})
		// Capacity integrals, accumulated per audit window. Before the
		// first audit no flow has ever started (every flow change audits),
		// so initializing a link's in-effect capacity lazily is exact.
		dt := (now - s.lastAudit).Seconds()
		s.lastAudit = now
		for _, l := range net.Links() {
			ab, ba := l.BytesAtoB(), l.BytesBtoA()
			prev := s.linkSeen[l.ID]
			if ab < prev[0] || ba < prev[1] {
				s.Report("fabric/bytes-monotonic", now,
					"link %d counters went backwards: (%v,%v) after (%v,%v)", l.ID, ab, ba, prev[0], prev[1])
			}
			s.linkSeen[l.ID] = [2]units.Bytes{ab, ba}

			cap := s.linkPrevCap[l.ID] // capacity in effect during the window
			if _, seen := s.linkPrevCap[l.ID]; !seen {
				cap = [2]float64{float64(l.CapAtoB), float64(l.CapBtoA)}
			}
			integ := s.linkCapInt[l.ID]
			integ[0] += cap[0] * dt
			integ[1] += cap[1] * dt
			s.linkCapInt[l.ID] = integ
			s.linkPrevCap[l.ID] = [2]float64{float64(l.CapAtoB), float64(l.CapBtoA)}

			if maxAB := integ[0]*(1+capacitySlack) + 1; float64(ab) > maxAB {
				s.Report("fabric/bytes-conserved", now,
					"link %d moved %v A→B, over the %v capacity integral", l.ID, ab, units.Bytes(maxAB))
			}
			if maxBA := integ[1]*(1+capacitySlack) + 1; float64(ba) > maxBA {
				s.Report("fabric/bytes-conserved", now,
					"link %d moved %v B→A, over the %v capacity integral", l.ID, ba, units.Bytes(maxBA))
			}
		}
	})
}

// TrainProbe returns a probe function for train.Options.Probe that checks
// the training lifecycle events arrive in nondecreasing virtual time.
func (s *Set) TrainProbe() func(event string, at time.Duration) {
	return func(event string, at time.Duration) {
		if at < 0 {
			s.Report("train/time-positive", at, "probe %q at negative time %v", event, at)
		}
		if at < s.lastTrain {
			s.Report("train/time-monotonic", at, "probe %q at %v after %v", event, at, s.lastTrain)
		}
		s.lastTrain = at
	}
}

// Watch attaches the full in-simulation probe set to a composed system.
func (s *Set) Watch(sys *cluster.System) {
	s.WatchEnv(sys.Env)
	s.WatchNetwork(sys.Net)
}

// utilSlack tolerates float rounding in sampled utilization fractions.
const utilSlack = 1e-9

// CheckResult runs the post-run structural checks on a completed training
// run: positive times, monotone epoch accounting, utilization fractions in
// [0,1], memory high-water marks within device capacity, and no leaked
// allocations or in-flight flows on the system.
func (s *Set) CheckResult(sys *cluster.System, res *train.Result) {
	at := res.TotalTime
	if res.TotalTime <= 0 {
		s.Report("train/total-time", at, "nonpositive total time %v", res.TotalTime)
	}
	if res.AvgIter <= 0 {
		s.Report("train/avg-iter", at, "nonpositive avg iteration %v", res.AvgIter)
	}
	if res.Iters <= 0 {
		s.Report("train/iters", at, "nonpositive iteration count %d", res.Iters)
	}
	if len(res.EpochTimes) != res.Epochs {
		s.Report("train/epoch-count", at, "%d epoch times for %d epochs", len(res.EpochTimes), res.Epochs)
	}
	var epochSum time.Duration
	for i, e := range res.EpochTimes {
		if e <= 0 {
			s.Report("train/epoch-time", at, "epoch %d nonpositive duration %v", i+1, e)
		}
		epochSum += e
	}
	// Rank 0 records epoch boundaries before the final join, so their sum
	// never exceeds the run (the closing join adds a final sliver).
	if epochSum > res.TotalTime+time.Microsecond {
		s.Report("train/epoch-sum", at, "epoch times sum %v over total %v", epochSum, res.TotalTime)
	}
	fractions := []struct {
		name string
		u    float64
	}{
		{"gpu-util", res.AvgGPUUtil},
		{"gpu-mem-util", res.AvgGPUMemUtil},
		{"cpu-util", res.AvgCPUUtil},
		{"host-mem-util", res.AvgHostMemUtil},
		{"mem-access", res.MemAccessFrac},
	}
	for _, fr := range fractions {
		if fr.u < 0 || fr.u > 1+utilSlack || math.IsNaN(fr.u) {
			s.Report("train/util-fraction", at, "%s %v outside [0,1]", fr.name, fr.u)
		}
	}
	if res.FalconPCIeGBps < 0 {
		s.Report("train/falcon-traffic", at, "negative falcon PCIe rate %v", res.FalconPCIeGBps)
	}
	if len(sys.FalconGPUPortLinks) == 0 && res.FalconPCIeGBps != 0 {
		s.Report("train/falcon-traffic", at,
			"%v GB/s of falcon traffic with no falcon GPUs attached", res.FalconPCIeGBps)
	}
	var maxUsable units.Bytes
	for _, g := range sys.GPUs {
		if g.Usable() > maxUsable {
			maxUsable = g.Usable()
		}
		if g.Used() != 0 {
			s.Report("gpu/memory-leak", at, "%s still holds %v after the run", g.Name(), g.Used())
		}
	}
	if res.PeakGPUMem <= 0 || res.PeakGPUMem > maxUsable {
		s.Report("gpu/peak-memory", at, "peak GPU memory %v outside (0,%v]", res.PeakGPUMem, maxUsable)
	}
	if n := sys.Net.ActiveFlows(); n != 0 {
		s.Report("fabric/flows-drained", at, "%d flows still active after the run", n)
	}
}
