package invariant

import (
	"strings"
	"testing"
	"time"

	"composable/internal/falcon"
	"composable/internal/orchestrator"
)

func TestOrchestratorProbeKillRecoveryLifecycle(t *testing.T) {
	s := New()
	probe := s.OrchestratorProbe()
	slots := []falcon.SlotRef{ref(0, 0), ref(0, 1)}
	retry := []falcon.SlotRef{ref(0, 2), ref(0, 3)}
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 0, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventPlace, At: time.Second, Job: 0, Host: 0, Slots: slots})
	probe(orchestrator.Event{Kind: orchestrator.EventLaunch, At: time.Second, Job: 0, Host: 0, Slots: slots})
	// Fault: slot 0 goes down, holder is killed, retries elsewhere.
	probe(orchestrator.Event{Kind: orchestrator.EventSlotDown, At: 2 * time.Second, Job: -1, Host: -1, Slots: slots[:1]})
	probe(orchestrator.Event{Kind: orchestrator.EventKill, At: 3 * time.Second, Job: 0, Host: 0, Slots: slots})
	probe(orchestrator.Event{Kind: orchestrator.EventPlace, At: 3 * time.Second, Job: 0, Host: 1, Slots: retry})
	probe(orchestrator.Event{Kind: orchestrator.EventLaunch, At: 3 * time.Second, Job: 0, Host: 1, Slots: retry})
	probe(orchestrator.Event{Kind: orchestrator.EventFinish, At: 9 * time.Second, Job: 0, Host: 1, Slots: retry})
	if err := s.Err(); err != nil {
		t.Fatalf("clean kill-recovery lifecycle reported violations: %v", err)
	}
}

func TestOrchestratorProbePlaceOnDownSlot(t *testing.T) {
	s := New()
	probe := s.OrchestratorProbe()
	down := []falcon.SlotRef{ref(0, 0)}
	probe(orchestrator.Event{Kind: orchestrator.EventSlotDown, At: 0, Job: -1, Host: -1, Slots: down})
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 0, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventPlace, At: time.Second, Job: 0, Host: 0, Slots: down})
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "place-down-slot") {
		t.Fatalf("placement on a down slot not reported: %v", err)
	}

	// After the repair, placing there is legal again.
	s2 := New()
	probe2 := s2.OrchestratorProbe()
	probe2(orchestrator.Event{Kind: orchestrator.EventSlotDown, At: 0, Job: -1, Host: -1, Slots: down})
	probe2(orchestrator.Event{Kind: orchestrator.EventSlotUp, At: time.Second, Job: -1, Host: -1, Slots: down})
	probe2(orchestrator.Event{Kind: orchestrator.EventArrive, At: time.Second, Job: 0, Host: -1})
	probe2(orchestrator.Event{Kind: orchestrator.EventPlace, At: 2 * time.Second, Job: 0, Host: 0, Slots: down})
	if err := s2.Err(); err != nil {
		t.Fatalf("post-repair placement flagged: %v", err)
	}
}

func TestOrchestratorProbePlaceOnCrashedHost(t *testing.T) {
	s := New()
	probe := s.OrchestratorProbe()
	probe(orchestrator.Event{Kind: orchestrator.EventHostDown, At: 0, Job: -1, Host: 1})
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 0, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventPlace, At: time.Second, Job: 0, Host: 1, Slots: []falcon.SlotRef{ref(0, 0)}})
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "place-down-host") {
		t.Fatalf("placement on a crashed host not reported: %v", err)
	}
}

func TestOrchestratorProbeKillWithoutPlacement(t *testing.T) {
	s := New()
	probe := s.OrchestratorProbe()
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 0, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventKill, At: time.Second, Job: 0, Host: 0})
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "lifecycle") {
		t.Fatalf("kill of an unplaced job not reported: %v", err)
	}
}

func TestOrchestratorProbeFailRequiresKill(t *testing.T) {
	s := New()
	probe := s.OrchestratorProbe()
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 0, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventFail, At: time.Second, Job: 0, Host: -1})
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "without a preceding kill") {
		t.Fatalf("fail without kill not reported: %v", err)
	}
}

func TestCheckFleetResultLostWorkBalance(t *testing.T) {
	// A forged result whose fleet-level lost work does not match the
	// per-job sum must be flagged, without running a simulation.
	s := New()
	res := &orchestrator.FleetResult{
		Policy: "drawer", Hosts: 1, GPUs: 2,
		Jobs: []orchestrator.JobResult{{
			ID: 0, GPUs: 2, Failed: true, Retries: 1, LostGPUSeconds: 3.5,
		}},
		Kills: 1, FailedJobs: 1, Faults: 1,
		LostGPUSeconds: 99, // does not balance
	}
	// No fleet system needed for the ledger checks; use probe state only.
	probe := s.OrchestratorProbe()
	probe(orchestrator.Event{Kind: orchestrator.EventArrive, At: 0, Job: 0, Host: -1})
	probe(orchestrator.Event{Kind: orchestrator.EventPlace, At: 0, Job: 0, Host: 0, Slots: []falcon.SlotRef{ref(0, 0), ref(0, 1)}})
	probe(orchestrator.Event{Kind: orchestrator.EventKill, At: time.Second, Job: 0, Host: 0, Slots: []falcon.SlotRef{ref(0, 0), ref(0, 1)}})
	probe(orchestrator.Event{Kind: orchestrator.EventFail, At: time.Second, Job: 0, Host: -1})
	s.CheckFleetResult(nil, res)
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "does not balance") {
		t.Fatalf("unbalanced lost-work ledger not reported: %v", err)
	}
}

func TestCheckFleetResultFaultFreeMustBeClean(t *testing.T) {
	s := New()
	res := &orchestrator.FleetResult{
		Policy: "drawer", Hosts: 1, GPUs: 2,
		Makespan: time.Second, Utilization: 0.5, GPUSeconds: 1, Goodput: 1,
		Kills: 2, // recovery activity without any fault
	}
	s.CheckFleetResult(nil, res)
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "fault-free run reports recovery") {
		t.Fatalf("phantom recovery activity not reported: %v", err)
	}
}
