package invariant

import (
	"sort"
	"time"

	"composable/internal/cluster"
	"composable/internal/falcon"
	"composable/internal/orchestrator"
)

// Fleet-side invariants. The orchestrator exposes a lifecycle probe
// (orchestrator.Options.Probe) and the chassis an observer hook
// (falcon.Chassis.Observe); a Set attached to both checks, while the
// fleet runs:
//
//   - no GPU double-assignment: a slot is held by at most one job at any
//     instant, and only released by the job holding it;
//   - queue-lifecycle monotonicity: every job moves arrive → place →
//     launch → finish exactly once, at nondecreasing virtual times;
//   - attach/detach conservation: the chassis event stream and the
//     chassis aggregate state agree at every step — an attach lands on an
//     owned slot, a detach on an unowned one, and the replayed event
//     stream reproduces the attached-device count.
//
// CheckFleetResult adds the post-run structural checks (no leaked GPU
// memory or flows, recomposition accounting consistent, aggregates in
// range).

// jobLife tracks one job through the orchestrator lifecycle.
type jobLife struct {
	phase  int // 0 arrived/queued, 1 placed, 2 launched, 3 finished
	at     time.Duration
	kills  int
	failed bool
}

// phaseOf maps lifecycle event kinds to phases (-1 for non-lifecycle).
func phaseOf(kind orchestrator.EventKind) int {
	switch kind {
	case orchestrator.EventArrive:
		return 0
	case orchestrator.EventPlace:
		return 1
	case orchestrator.EventLaunch:
		return 2
	case orchestrator.EventFinish:
		return 3
	}
	return -1
}

// OrchestratorProbe returns a probe for orchestrator.Options.Probe that
// checks queue-lifecycle monotonicity and GPU assignment exclusivity on
// every scheduler event. Under faults it additionally checks that a kill
// returns the job to the queue (and releases exactly the slots it held),
// that a fail is terminal, and that nothing is ever placed or launched on
// a down slot or crashed host.
func (s *Set) OrchestratorProbe() func(orchestrator.Event) {
	if s.orcJobs == nil {
		s.orcJobs = make(map[int]*jobLife)
		s.orcSlots = make(map[int]int)
		s.orcDownSlots = make(map[int]bool)
		s.orcDownHosts = make(map[int]bool)
		s.orcDownPods = make(map[int]bool)
	}
	return func(ev orchestrator.Event) {
		if ev.At < s.lastOrc {
			s.Report("orchestrator/time-monotonic", ev.At,
				"event %s for job %d at %v after %v", ev.Kind, ev.Job, ev.At, s.lastOrc)
		}
		s.lastOrc = ev.At

		// Fault events: maintain the down sets the placement checks read.
		switch ev.Kind {
		case orchestrator.EventSlotDown:
			for k := range ev.Slots {
				s.orcDownSlots[slotKey(ev, k)] = true
			}
			return
		case orchestrator.EventSlotUp:
			for k := range ev.Slots {
				delete(s.orcDownSlots, slotKey(ev, k))
			}
			return
		case orchestrator.EventHostDown:
			s.orcDownHosts[ev.Host] = true
			return
		case orchestrator.EventHostUp:
			delete(s.orcDownHosts, ev.Host)
			return
		case orchestrator.EventPodDown:
			s.orcDownPods[ev.Pod] = true
			return
		case orchestrator.EventPodUp:
			delete(s.orcDownPods, ev.Pod)
			return
		}

		life := s.orcJobs[ev.Job]

		// Kill/fail: the fault-recovery transitions.
		switch ev.Kind {
		case orchestrator.EventKill:
			if life == nil || (life.phase != 1 && life.phase != 2) {
				s.Report("orchestrator/lifecycle", ev.At,
					"job %d killed while not placed or launched (%+v)", ev.Job, life)
				if life == nil {
					life = &jobLife{}
					s.orcJobs[ev.Job] = life
				}
			}
			life.phase, life.at = 0, ev.At
			life.kills++
			for k, ref := range ev.Slots {
				key := slotKey(ev, k)
				if holder, held := s.orcSlots[key]; !held || holder != ev.Job {
					s.Report("orchestrator/release", ev.At,
						"killed job %d released slot %v it did not hold (holder %d, held %t)", ev.Job, ref, holder, held)
					continue
				}
				delete(s.orcSlots, key)
			}
			return
		case orchestrator.EventFail:
			if life == nil || life.phase != 0 || life.kills == 0 {
				s.Report("orchestrator/lifecycle", ev.At,
					"job %d failed without a preceding kill (%+v)", ev.Job, life)
			}
			if life != nil {
				life.failed = true
			}
			return
		}

		phase := phaseOf(ev.Kind)
		if phase < 0 {
			s.Report("orchestrator/event-kind", ev.At, "unknown event kind %q", ev.Kind)
			return
		}
		switch {
		case life == nil && phase != 0:
			s.Report("orchestrator/lifecycle", ev.At, "job %d %s before arriving", ev.Job, ev.Kind)
			life = &jobLife{phase: phase, at: ev.At}
			s.orcJobs[ev.Job] = life
		case life == nil:
			s.orcJobs[ev.Job] = &jobLife{phase: 0, at: ev.At}
		default:
			if life.failed {
				s.Report("orchestrator/lifecycle", ev.At, "failed job %d saw %s", ev.Job, ev.Kind)
			}
			if phase != life.phase+1 {
				s.Report("orchestrator/lifecycle", ev.At,
					"job %d %s out of order (phase %d after %d)", ev.Job, ev.Kind, phase, life.phase)
			}
			if ev.At < life.at {
				s.Report("orchestrator/lifecycle-time", ev.At,
					"job %d %s at %v before its previous event at %v", ev.Job, ev.Kind, ev.At, life.at)
			}
			life.phase, life.at = phase, ev.At
		}

		switch ev.Kind {
		case orchestrator.EventPlace:
			if s.orcDownHosts[ev.Host] {
				s.Report("orchestrator/place-down-host", ev.At,
					"job %d placed on crashed host %d", ev.Job, ev.Host)
			}
			if s.orcHostPod != nil && ev.Host >= 0 && ev.Host < len(s.orcHostPod) &&
				s.orcDownPods[s.orcHostPod[ev.Host]] {
				s.Report("orchestrator/place-down-pod", ev.At,
					"job %d placed on host %d inside down pod %d", ev.Job, ev.Host, s.orcHostPod[ev.Host])
			}
			for k, ref := range ev.Slots {
				key := slotKey(ev, k)
				if s.orcDownSlots[key] {
					s.Report("orchestrator/place-down-slot", ev.At,
						"job %d placed on down slot %v", ev.Job, ref)
				}
				if holder, held := s.orcSlots[key]; held {
					s.Report("orchestrator/double-assign", ev.At,
						"slot %v assigned to job %d while held by job %d", ref, ev.Job, holder)
					continue
				}
				s.orcSlots[key] = ev.Job
			}
		case orchestrator.EventLaunch:
			for k, ref := range ev.Slots {
				if s.orcDownSlots[slotKey(ev, k)] {
					s.Report("orchestrator/launch-down-slot", ev.At,
						"job %d launched holding down slot %v", ev.Job, ref)
				}
			}
		case orchestrator.EventFinish:
			for k, ref := range ev.Slots {
				key := slotKey(ev, k)
				if holder, held := s.orcSlots[key]; !held || holder != ev.Job {
					s.Report("orchestrator/release", ev.At,
						"job %d released slot %v it did not hold (holder %d, held %t)", ev.Job, ref, holder, held)
					continue
				}
				delete(s.orcSlots, key)
			}
		}
	}
}

// slotKey returns the global fleet index of the k-th slot in an event. The
// orchestrator always populates Event.Indices; hand-built events without it
// fall back to the single-chassis bijection ref ↔ drawer×slots + slot.
func slotKey(ev orchestrator.Event, k int) int {
	if k < len(ev.Indices) {
		return ev.Indices[k]
	}
	ref := ev.Slots[k]
	return ref.Drawer*falcon.SlotsPerDrawer + ref.Slot
}

// WatchChassis attaches the attach/detach conservation check to the
// chassis event stream: every event must land on a slot in the matching
// ownership state, and replaying the stream must reproduce the chassis's
// aggregate attached-device count at every step. Attach events on
// already-attached slots are counted as reassignments (advanced-mode
// on-the-fly moves emit a single attach).
func (s *Set) WatchChassis(ch *falcon.Chassis) { s.watchChassis(ch, 0) }

// WatchFleet attaches the conservation check to every chassis of a fleet
// and records the host→pod map the pod-blast placement check reads.
func (s *Set) WatchFleet(f *cluster.FleetSystem) {
	s.orcHostPod = make([]int, len(f.Hosts))
	for h, host := range f.Hosts {
		s.orcHostPod[h] = host.Pod
	}
	for ci, ch := range f.ChassisList {
		s.watchChassis(ch, ci)
	}
}

func (s *Set) watchChassis(ch *falcon.Chassis, ci int) {
	if s.chassisAttached == nil {
		s.chassisAttached = make(map[chassisSlot]bool)
		s.chassisAttachedN = make(map[int]int)
	}
	for _, ref := range ch.Slots() {
		if ch.Owner(ref) != "" {
			s.chassisAttached[chassisSlot{ci, ref}] = true
			s.chassisAttachedN[ci]++
		}
	}
	ch.Observe(func(ev string, ref falcon.SlotRef) {
		now := ch.Now()
		key := chassisSlot{ci, ref}
		switch ev {
		case "attach":
			if ch.Owner(ref) == "" {
				s.Report("chassis/attach-state", now, "attach event on unowned slot %v", ref)
				return
			}
			if s.chassisAttached[key] {
				s.chassisReassigns++
			} else {
				s.chassisAttaches++
				s.chassisAttached[key] = true
				s.chassisAttachedN[ci]++
			}
		case "detach":
			if ch.Owner(ref) != "" {
				s.Report("chassis/detach-state", now, "detach event on owned slot %v", ref)
				return
			}
			if !s.chassisAttached[key] {
				s.Report("chassis/conservation", now, "detach of never-attached slot %v", ref)
				return
			}
			s.chassisDetaches++
			delete(s.chassisAttached, key)
			s.chassisAttachedN[ci]--
		default:
			return
		}
		if got, want := ch.Summary().Attached, s.chassisAttachedN[ci]; got != want {
			s.Report("chassis/conservation", now,
				"chassis %d reports %d attached devices, event stream implies %d", ci, got, want)
		}
	})
}

// CheckFleetResult runs the post-run structural checks on a completed
// fleet run: lifecycle completeness, recomposition accounting against the
// chassis event stream, aggregate ranges, leak freedom on every device
// and the fabric, and — under faults — the lost-work ledger: kills match
// retries, lost GPU time balances per job against the fleet total, and a
// fault-free job lost nothing.
func (s *Set) CheckFleetResult(f *cluster.FleetSystem, res *orchestrator.FleetResult) {
	at := res.Makespan
	completed := 0
	for _, j := range res.Jobs {
		if !j.Failed {
			completed++
		}
	}
	if res.Makespan <= 0 && completed > 0 {
		s.Report("fleet/makespan", at, "nonpositive makespan %v with %d completed jobs", res.Makespan, completed)
	}
	if res.Utilization < 0 || res.Utilization > 1+utilSlack {
		s.Report("fleet/utilization", at, "utilization %v outside [0,1]", res.Utilization)
	}
	if res.GPUSeconds < 0 || res.FragmentationGPUSeconds < 0 {
		s.Report("fleet/gpu-seconds", at, "negative GPU-second aggregates: %v delivered, %v stranded",
			res.GPUSeconds, res.FragmentationGPUSeconds)
	}

	movesTotal, retriesTotal, lostTotal, deliveredTotal := 0, 0, 0.0, 0.0
	for _, j := range res.Jobs {
		movesTotal += j.Moves
		retriesTotal += j.Retries
		lostTotal += j.LostGPUSeconds
		if j.LostGPUSeconds < 0 {
			s.Report("fleet/lost-work", at, "job %d negative lost work %v", j.ID, j.LostGPUSeconds)
		}
		if j.GPUSeconds < 0 {
			s.Report("fleet/gpu-seconds", at, "job %d negative delivered GPU time %v", j.ID, j.GPUSeconds)
		}
		if j.Retries == 0 && !j.Failed && j.GPUSeconds != 0 {
			// One uninterrupted attempt: delivered time is exactly GPUs ×
			// runtime, the same float product the scheduler computes.
			if want := float64(j.GPUs) * j.Runtime.Seconds(); j.GPUSeconds != want {
				s.Report("fleet/gpu-seconds", at,
					"job %d delivered %v GPU-s without retries, want GPUs × runtime = %v", j.ID, j.GPUSeconds, want)
			}
		}
		if !j.Failed {
			deliveredTotal += j.GPUSeconds
			// A retried job delivered at least its final attempt; checkpoint
			// carry-over can only add to it.
			if want := float64(j.GPUs) * j.Runtime.Seconds(); j.GPUSeconds+1e-9 < want {
				s.Report("fleet/gpu-seconds", at,
					"job %d delivered %v GPU-s, less than its final attempt %v", j.ID, j.GPUSeconds, want)
			}
		}
		if j.Retries == 0 && !j.Failed && j.LostGPUSeconds != 0 {
			s.Report("fleet/lost-work", at, "job %d lost %v GPU-s without any kill", j.ID, j.LostGPUSeconds)
		}
		life := s.orcJobs[j.ID]
		if life != nil && life.kills != j.Retries {
			s.Report("fleet/retry-count", at, "job %d reports %d retries, probe saw %d kills", j.ID, j.Retries, life.kills)
		}
		if j.Failed {
			if life == nil || !life.failed {
				s.Report("fleet/lifecycle-complete", at, "job %d reported failed without a fail event (%+v)", j.ID, life)
			}
			if j.Finished != 0 || j.Runtime != 0 {
				s.Report("fleet/failed-job", at, "failed job %d carries completion telemetry (%+v)", j.ID, j)
			}
			continue
		}
		if life == nil || life.phase != 3 {
			s.Report("fleet/lifecycle-complete", at, "job %d did not complete its lifecycle (%+v)", j.ID, life)
		}
		if j.Wait < 0 || j.Wait != j.Launched-j.Arrival {
			s.Report("fleet/wait", at, "job %d wait %v inconsistent with launch %v - arrival %v",
				j.ID, j.Wait, j.Launched, j.Arrival)
		}
		if j.Runtime <= 0 {
			s.Report("fleet/runtime", at, "job %d nonpositive runtime %v", j.ID, j.Runtime)
		}
		if j.Finished > res.Makespan {
			s.Report("fleet/makespan", at, "job %d finished at %v after the makespan %v", j.ID, j.Finished, res.Makespan)
		}
	}
	if res.Recompositions != movesTotal {
		s.Report("fleet/recomposition-count", at,
			"fleet reports %d recompositions, per-job moves sum to %d", res.Recompositions, movesTotal)
	}
	if res.Kills != retriesTotal {
		s.Report("fleet/kill-count", at, "fleet reports %d kills, per-job retries sum to %d", res.Kills, retriesTotal)
	}
	if diff := res.LostGPUSeconds - lostTotal; diff > 1e-9 || diff < -1e-9 {
		s.Report("fleet/lost-work", at,
			"fleet lost-work %v does not balance per-job sum %v", res.LostGPUSeconds, lostTotal)
	}
	if diff := res.GPUSeconds - deliveredTotal; diff > 1e-6 || diff < -1e-6 {
		s.Report("fleet/gpu-seconds", at,
			"fleet delivered %v GPU-s does not balance per-job sum %v", res.GPUSeconds, deliveredTotal)
	}
	if res.Faults == 0 && (res.Kills != 0 || res.FailedJobs != 0 || res.LostGPUSeconds != 0) {
		s.Report("fleet/lost-work", at,
			"fault-free run reports recovery activity: %d kills, %d failed, %v lost",
			res.Kills, res.FailedJobs, res.LostGPUSeconds)
	}
	if res.Makespan > 0 {
		if g := res.GPUSeconds / res.Makespan.Seconds(); g-res.Goodput > 1e-9 || res.Goodput-g > 1e-9 {
			s.Report("fleet/goodput", at, "goodput %v inconsistent with %v GPU-s over %v", res.Goodput, res.GPUSeconds, res.Makespan)
		}
	}
	// No job may be left holding a down slot once the stream drains.
	for idx, job := range s.orcSlots {
		if s.orcDownSlots[idx] {
			s.Report("fleet/down-slot-held", at, "down slot #%d still held by job %d after the run", idx, job)
		}
	}
	if s.chassisAttached != nil {
		if stream := s.chassisAttaches + s.chassisReassigns; stream != res.Recompositions {
			s.Report("fleet/recomposition-conservation", at,
				"chassis event stream saw %d runtime moves (%d attaches + %d reassigns), orchestrator reports %d",
				stream, s.chassisAttaches, s.chassisReassigns, res.Recompositions)
		}
	}

	// No slot may remain assigned after the stream drains.
	if len(s.orcSlots) > 0 {
		held := make([]int, 0, len(s.orcSlots))
		for idx := range s.orcSlots {
			held = append(held, idx)
		}
		sort.Ints(held)
		s.Report("fleet/slots-released", at, "%d slot(s) still assigned after the run: %v", len(held), held)
	}
	// Device/fabric leak checks need the fleet; nil runs the pure ledger
	// checks only (forged-result tests).
	if f == nil {
		return
	}
	for _, slot := range f.Slots {
		if slot.Dev.Used() != 0 {
			s.Report("gpu/memory-leak", at, "%s still holds %v after the fleet run", slot.Dev.Name(), slot.Dev.Used())
		}
		if slot.Dev.PeakUsed() > slot.Dev.Usable() {
			s.Report("gpu/peak-memory", at, "%s peak %v over usable %v", slot.Dev.Name(), slot.Dev.PeakUsed(), slot.Dev.Usable())
		}
	}
	if n := f.Net.ActiveFlows(); n != 0 {
		s.Report("fabric/flows-drained", at, "%d flows still active after the fleet run", n)
	}
}
