package invariant

import (
	"sort"
	"time"

	"composable/internal/cluster"
	"composable/internal/falcon"
	"composable/internal/orchestrator"
)

// Fleet-side invariants. The orchestrator exposes a lifecycle probe
// (orchestrator.Options.Probe) and the chassis an observer hook
// (falcon.Chassis.Observe); a Set attached to both checks, while the
// fleet runs:
//
//   - no GPU double-assignment: a slot is held by at most one job at any
//     instant, and only released by the job holding it;
//   - queue-lifecycle monotonicity: every job moves arrive → place →
//     launch → finish exactly once, at nondecreasing virtual times;
//   - attach/detach conservation: the chassis event stream and the
//     chassis aggregate state agree at every step — an attach lands on an
//     owned slot, a detach on an unowned one, and the replayed event
//     stream reproduces the attached-device count.
//
// CheckFleetResult adds the post-run structural checks (no leaked GPU
// memory or flows, recomposition accounting consistent, aggregates in
// range).

// jobLife tracks one job through the orchestrator lifecycle.
type jobLife struct {
	phase int // 0 arrived, 1 placed, 2 launched, 3 finished
	at    time.Duration
}

// phaseOf maps event kinds to lifecycle phases.
func phaseOf(kind orchestrator.EventKind) int {
	switch kind {
	case orchestrator.EventArrive:
		return 0
	case orchestrator.EventPlace:
		return 1
	case orchestrator.EventLaunch:
		return 2
	case orchestrator.EventFinish:
		return 3
	}
	return -1
}

// OrchestratorProbe returns a probe for orchestrator.Options.Probe that
// checks queue-lifecycle monotonicity and GPU assignment exclusivity on
// every scheduler event.
func (s *Set) OrchestratorProbe() func(orchestrator.Event) {
	if s.orcJobs == nil {
		s.orcJobs = make(map[int]*jobLife)
		s.orcSlots = make(map[falcon.SlotRef]int)
	}
	return func(ev orchestrator.Event) {
		phase := phaseOf(ev.Kind)
		if phase < 0 {
			s.Report("orchestrator/event-kind", ev.At, "unknown event kind %q", ev.Kind)
			return
		}
		if ev.At < s.lastOrc {
			s.Report("orchestrator/time-monotonic", ev.At,
				"event %s for job %d at %v after %v", ev.Kind, ev.Job, ev.At, s.lastOrc)
		}
		s.lastOrc = ev.At

		life := s.orcJobs[ev.Job]
		switch {
		case life == nil && phase != 0:
			s.Report("orchestrator/lifecycle", ev.At, "job %d %s before arriving", ev.Job, ev.Kind)
			life = &jobLife{phase: phase, at: ev.At}
			s.orcJobs[ev.Job] = life
		case life == nil:
			s.orcJobs[ev.Job] = &jobLife{phase: 0, at: ev.At}
		default:
			if phase != life.phase+1 {
				s.Report("orchestrator/lifecycle", ev.At,
					"job %d %s out of order (phase %d after %d)", ev.Job, ev.Kind, phase, life.phase)
			}
			if ev.At < life.at {
				s.Report("orchestrator/lifecycle-time", ev.At,
					"job %d %s at %v before its previous event at %v", ev.Job, ev.Kind, ev.At, life.at)
			}
			life.phase, life.at = phase, ev.At
		}

		switch ev.Kind {
		case orchestrator.EventPlace:
			for _, ref := range ev.Slots {
				if holder, held := s.orcSlots[ref]; held {
					s.Report("orchestrator/double-assign", ev.At,
						"slot %v assigned to job %d while held by job %d", ref, ev.Job, holder)
					continue
				}
				s.orcSlots[ref] = ev.Job
			}
		case orchestrator.EventFinish:
			for _, ref := range ev.Slots {
				if holder, held := s.orcSlots[ref]; !held || holder != ev.Job {
					s.Report("orchestrator/release", ev.At,
						"job %d released slot %v it did not hold (holder %d, held %t)", ev.Job, ref, holder, held)
					continue
				}
				delete(s.orcSlots, ref)
			}
		}
	}
}

// WatchChassis attaches the attach/detach conservation check to the
// chassis event stream: every event must land on a slot in the matching
// ownership state, and replaying the stream must reproduce the chassis's
// aggregate attached-device count at every step. Attach events on
// already-attached slots are counted as reassignments (advanced-mode
// on-the-fly moves emit a single attach).
func (s *Set) WatchChassis(ch *falcon.Chassis) {
	s.chassisAttached = make(map[falcon.SlotRef]bool)
	for _, ref := range ch.Slots() {
		if ch.Owner(ref) != "" {
			s.chassisAttached[ref] = true
		}
	}
	ch.Observe(func(ev string, ref falcon.SlotRef) {
		now := ch.Now()
		switch ev {
		case "attach":
			if ch.Owner(ref) == "" {
				s.Report("chassis/attach-state", now, "attach event on unowned slot %v", ref)
				return
			}
			if s.chassisAttached[ref] {
				s.chassisReassigns++
			} else {
				s.chassisAttaches++
				s.chassisAttached[ref] = true
			}
		case "detach":
			if ch.Owner(ref) != "" {
				s.Report("chassis/detach-state", now, "detach event on owned slot %v", ref)
				return
			}
			if !s.chassisAttached[ref] {
				s.Report("chassis/conservation", now, "detach of never-attached slot %v", ref)
				return
			}
			s.chassisDetaches++
			delete(s.chassisAttached, ref)
		default:
			return
		}
		if got, want := ch.Summary().Attached, len(s.chassisAttached); got != want {
			s.Report("chassis/conservation", now,
				"chassis reports %d attached devices, event stream implies %d", got, want)
		}
	})
}

// CheckFleetResult runs the post-run structural checks on a completed
// fleet run: lifecycle completeness, recomposition accounting against the
// chassis event stream, aggregate ranges, and leak freedom on every
// device and the fabric.
func (s *Set) CheckFleetResult(f *cluster.FleetSystem, res *orchestrator.FleetResult) {
	at := res.Makespan
	if res.Makespan <= 0 {
		s.Report("fleet/makespan", at, "nonpositive makespan %v", res.Makespan)
	}
	if res.Utilization < 0 || res.Utilization > 1+utilSlack {
		s.Report("fleet/utilization", at, "utilization %v outside [0,1]", res.Utilization)
	}
	if res.GPUSeconds < 0 || res.FragmentationGPUSeconds < 0 {
		s.Report("fleet/gpu-seconds", at, "negative GPU-second aggregates: %v delivered, %v stranded",
			res.GPUSeconds, res.FragmentationGPUSeconds)
	}

	movesTotal := 0
	for _, j := range res.Jobs {
		movesTotal += j.Moves
		if life := s.orcJobs[j.ID]; life == nil || life.phase != 3 {
			s.Report("fleet/lifecycle-complete", at, "job %d did not complete its lifecycle (%+v)", j.ID, life)
		}
		if j.Wait < 0 || j.Wait != j.Launched-j.Arrival {
			s.Report("fleet/wait", at, "job %d wait %v inconsistent with launch %v - arrival %v",
				j.ID, j.Wait, j.Launched, j.Arrival)
		}
		if j.Runtime <= 0 {
			s.Report("fleet/runtime", at, "job %d nonpositive runtime %v", j.ID, j.Runtime)
		}
		if j.Finished > res.Makespan {
			s.Report("fleet/makespan", at, "job %d finished at %v after the makespan %v", j.ID, j.Finished, res.Makespan)
		}
	}
	if res.Recompositions != movesTotal {
		s.Report("fleet/recomposition-count", at,
			"fleet reports %d recompositions, per-job moves sum to %d", res.Recompositions, movesTotal)
	}
	if s.chassisAttached != nil {
		if stream := s.chassisAttaches + s.chassisReassigns; stream != res.Recompositions {
			s.Report("fleet/recomposition-conservation", at,
				"chassis event stream saw %d runtime moves (%d attaches + %d reassigns), orchestrator reports %d",
				stream, s.chassisAttaches, s.chassisReassigns, res.Recompositions)
		}
	}

	// No slot may remain assigned after the stream drains.
	if len(s.orcSlots) > 0 {
		held := make([]string, 0, len(s.orcSlots))
		for ref := range s.orcSlots {
			held = append(held, ref.String())
		}
		sort.Strings(held)
		s.Report("fleet/slots-released", at, "%d slot(s) still assigned after the run: %v", len(held), held)
	}
	for _, slot := range f.Slots {
		if slot.Dev.Used() != 0 {
			s.Report("gpu/memory-leak", at, "%s still holds %v after the fleet run", slot.Dev.Name(), slot.Dev.Used())
		}
		if slot.Dev.PeakUsed() > slot.Dev.Usable() {
			s.Report("gpu/peak-memory", at, "%s peak %v over usable %v", slot.Dev.Name(), slot.Dev.PeakUsed(), slot.Dev.Usable())
		}
	}
	if n := f.Net.ActiveFlows(); n != 0 {
		s.Report("fabric/flows-drained", at, "%d flows still active after the fleet run", n)
	}
}
