package invariant

import (
	"strings"
	"testing"
	"time"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/fabric"
	"composable/internal/gpu"
	"composable/internal/sim"
	"composable/internal/train"
	"composable/internal/units"
)

func TestCleanSetHasNoError(t *testing.T) {
	s := New()
	if !s.Ok() || s.Err() != nil || s.Count() != 0 {
		t.Fatalf("fresh set not clean: ok=%v err=%v count=%d", s.Ok(), s.Err(), s.Count())
	}
}

func TestReportAndErrRendering(t *testing.T) {
	s := New()
	s.Report("test/rule", time.Second, "value %d too big", 42)
	if s.Ok() {
		t.Fatal("set still Ok after Report")
	}
	err := s.Err()
	if err == nil {
		t.Fatal("Err() == nil after Report")
	}
	for _, want := range []string{"test/rule", "t=1s", "value 42 too big"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestReportCapsRetainedViolations(t *testing.T) {
	s := New()
	for i := 0; i < maxRecorded+10; i++ {
		s.Report("test/flood", 0, "violation %d", i)
	}
	if s.Count() != maxRecorded+10 {
		t.Fatalf("Count() = %d, want %d", s.Count(), maxRecorded+10)
	}
	if len(s.Violations()) != maxRecorded {
		t.Fatalf("retained %d violations, want cap %d", len(s.Violations()), maxRecorded)
	}
	if !strings.Contains(s.Err().Error(), "and 10 more") {
		t.Errorf("error does not mention the overflow: %v", s.Err())
	}
}

func TestWatchEnvPassesCleanRun(t *testing.T) {
	env := sim.NewEnv()
	s := New()
	s.WatchEnv(env)
	env.Go("ticker", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Millisecond)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}
}

func TestTrainProbeDetectsBackwardsTime(t *testing.T) {
	s := New()
	probe := s.TrainProbe()
	probe(train.ProbeEpoch, 2*time.Second)
	probe(train.ProbeEpoch, time.Second) // backwards
	probe(train.ProbeDone, -time.Second) // negative and backwards
	if s.Ok() {
		t.Fatal("backwards probe times not detected")
	}
	err := s.Err().Error()
	if !strings.Contains(err, "train/time-monotonic") {
		t.Errorf("missing monotonicity violation: %v", err)
	}
	if !strings.Contains(err, "train/time-positive") {
		t.Errorf("missing negative-time violation: %v", err)
	}
}

func TestWatchNetworkPassesContendedTransfers(t *testing.T) {
	env := sim.NewEnv()
	net := fabric.NewNetwork(env)
	sw := net.AddNode("sw", fabric.KindSwitch)
	var eps []fabric.NodeID
	for i := 0; i < 4; i++ {
		eps = append(eps, net.AddNode("ep", fabric.KindGPU))
		net.ConnectSym(eps[i], sw, units.GBps(10), time.Microsecond, "pcie")
	}
	s := New()
	s.WatchEnv(env)
	s.WatchNetwork(net)
	for i := 0; i < 4; i++ {
		src, dst := eps[i], eps[(i+1)%4]
		env.Go("driver", func(p *sim.Proc) {
			for j := 0; j < 5; j++ {
				if err := net.Transfer(p, src, dst, 64*units.MB); err != nil {
					panic(err)
				}
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("contended transfers violated invariants: %v", err)
	}
	if net.ActiveFlows() != 0 {
		t.Fatalf("%d flows left active", net.ActiveFlows())
	}
}

// TestWatchNetworkAcceptsSanctionedCapacityChange pins the conservation
// audit's fault support: degrading a link through SetLinkCapacity while
// traffic crosses it (and repairing it later) is what the fault engine
// does, and must not read as a byte-conservation violation — the capacity
// integral is accumulated window by window with the capacity that was in
// effect, not recomputed from the final capacity.
func TestWatchNetworkAcceptsSanctionedCapacityChange(t *testing.T) {
	env := sim.NewEnv()
	net := fabric.NewNetwork(env)
	a := net.AddNode("a", fabric.KindGPU)
	b := net.AddNode("b", fabric.KindGPU)
	id := net.ConnectSym(a, b, units.GBps(10), time.Microsecond, "pcie")

	s := New()
	s.WatchNetwork(net)
	env.Go("driver", func(p *sim.Proc) {
		if err := net.Transfer(p, a, b, 100*units.MB); err != nil { // full speed
			panic(err)
		}
		net.SetLinkCapacity(id, units.MBps(100), units.MBps(100)) // degrade ×100
		if err := net.Transfer(p, a, b, 10*units.MB); err != nil {
			panic(err)
		}
		net.SetLinkCapacity(id, units.GBps(10), units.GBps(10)) // repair
		if err := net.Transfer(p, a, b, 100*units.MB); err != nil {
			panic(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("sanctioned capacity changes flagged as violations: %v", err)
	}
}

// TestWatchNetworkDetectsByteOverrun proves the conservation audit is not
// vacuous. With window-by-window integration the allocator can only trip
// it through an arithmetic bug (moving more bytes than the in-effect
// capacity allowed), so the test forges exactly that state white-box:
// erase the accumulated integral under counters that already carry 100 MB
// and pin the in-effect capacity near zero — the next audit must flag the
// history as unaffordable.
func TestWatchNetworkDetectsByteOverrun(t *testing.T) {
	env := sim.NewEnv()
	net := fabric.NewNetwork(env)
	a := net.AddNode("a", fabric.KindGPU)
	b := net.AddNode("b", fabric.KindGPU)
	id := net.ConnectSym(a, b, units.GBps(10), time.Microsecond, "pcie")

	s := New()
	s.WatchNetwork(net)
	env.Go("driver", func(p *sim.Proc) {
		if err := net.Transfer(p, a, b, 100*units.MB); err != nil {
			panic(err)
		}
		s.linkCapInt[id] = [2]float64{}
		s.linkPrevCap[id] = [2]float64{1, 1} // 1 B/s forever: history unaffordable
		if err := net.Transfer(p, b, a, units.KB); err != nil {
			panic(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Ok() {
		t.Fatal("byte-counter overrun not detected")
	}
	if !strings.Contains(s.Err().Error(), "fabric/bytes-conserved") {
		t.Fatalf("unexpected violations: %v", s.Err())
	}
}

// TestFullRunCleanUnderWatch runs a real (small) training job with every
// probe attached and expects a clean set.
func TestFullRunCleanUnderWatch(t *testing.T) {
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cluster.HybridGPUsConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.Watch(sys)
	res, err := train.Run(sys, train.Options{
		Workload:      dlmodel.MobileNetV2Workload(),
		Precision:     gpu.FP16,
		Epochs:        1,
		ItersPerEpoch: 3,
		Probe:         s.TrainProbe(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.CheckResult(sys, res)
	if err := s.Err(); err != nil {
		t.Fatalf("clean training run violated invariants: %v", err)
	}
}

// TestCheckResultDetectsCorruptedResult proves the post-run checks bite.
func TestCheckResultDetectsCorruptedResult(t *testing.T) {
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cluster.LocalGPUsConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := train.Run(sys, train.Options{
		Workload:      dlmodel.MobileNetV2Workload(),
		Precision:     gpu.FP16,
		Epochs:        1,
		ItersPerEpoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.AvgGPUUtil = 1.5      // not a fraction
	res.TotalTime = -1        // negative
	res.EpochTimes = nil      // count mismatch
	res.FalconPCIeGBps = -0.1 // negative traffic
	s := New()
	s.CheckResult(sys, res)
	errStr := s.Err().Error()
	for _, want := range []string{
		"train/util-fraction", "train/total-time", "train/epoch-count", "train/falcon-traffic",
	} {
		if !strings.Contains(errStr, want) {
			t.Errorf("corrupted result: missing %s violation in %v", want, errStr)
		}
	}
}
