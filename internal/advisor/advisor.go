// Package advisor implements the paper's stated future work (§VI): "build
// a system framework that can take the input of various configured runs,
// and recommend the optimal system level topology for AI and HPC
// workloads."
//
// Given a workload, the advisor evaluates candidate compositions on the
// simulator, scores them, and explains the choice in terms of the
// mechanism the paper identifies: whether the workload's gradient
// synchronization fits under the backward-pass overlap window of the
// candidate's interconnect.
package advisor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"composable/internal/cluster"
	"composable/internal/collective"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/sim"
	"composable/internal/train"
	"composable/internal/units"
)

// Evaluation is one candidate's measured outcome.
type Evaluation struct {
	Config cluster.Config
	Result *train.Result
	// PredictedOverhead is the analytic pre-estimate of PCIe switching
	// overhead (fraction ≥ 0), computed before simulation; comparing it
	// with the measured run validates the recommendation.
	PredictedOverhead float64
	// ThroughputSPS is global samples/second — the score.
	ThroughputSPS float64
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Workload string
	Best     Evaluation
	Ranked   []Evaluation // best first
	// Rationale explains the choice using the paper's mechanism.
	Rationale string
	// SoftwareAdvice recommends precision/sharding settings derived from
	// the memory model.
	SoftwareAdvice string
}

// Options tunes the advisor's evaluation runs.
type Options struct {
	ItersPerEpoch int // default 12
	Epochs        int // default 2
}

// Recommend evaluates the candidates (default: the three GPU compositions
// of Table III) for the workload and returns a ranked recommendation.
func Recommend(w dlmodel.Workload, candidates []cluster.Config, opts Options) (*Recommendation, error) {
	if len(candidates) == 0 {
		candidates = []cluster.Config{
			cluster.LocalGPUsConfig(), cluster.HybridGPUsConfig(), cluster.FalconGPUsConfig(),
		}
	}
	if opts.ItersPerEpoch <= 0 {
		opts.ItersPerEpoch = 12
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 2
	}

	evals := make([]Evaluation, 0, len(candidates))
	for _, cfg := range candidates {
		pred, err := PredictOverhead(w, cfg)
		if err != nil {
			return nil, err
		}
		env := sim.NewEnv()
		sys, err := cluster.Compose(env, cfg)
		if err != nil {
			return nil, err
		}
		res, err := train.Run(sys, train.Options{
			Workload:      w,
			Precision:     gpu.FP16,
			Strategy:      train.DDP,
			Epochs:        opts.Epochs,
			ItersPerEpoch: opts.ItersPerEpoch,
		})
		if err != nil {
			return nil, fmt.Errorf("advisor: evaluating %s: %w", cfg.Name, err)
		}
		sps := float64(res.Iters*res.BatchPerGPU*len(sys.GPUs)) / res.TotalTime.Seconds()
		evals = append(evals, Evaluation{
			Config: cfg, Result: res,
			PredictedOverhead: pred, ThroughputSPS: sps,
		})
	}
	sort.Slice(evals, func(i, j int) bool { return evals[i].ThroughputSPS > evals[j].ThroughputSPS })

	rec := &Recommendation{
		Workload: w.Name,
		Best:     evals[0],
		Ranked:   evals,
	}
	rec.Rationale = rationale(w, evals)
	rec.SoftwareAdvice = softwareAdvice(w)
	return rec, nil
}

// PredictOverhead analytically estimates the PCIe switching overhead of a
// configuration for a workload, before running anything: exposed
// communication ≈ max(0, allreduce time − overlappable backward window),
// relative to the compute time. This is the paper's explanation of
// Figure 11 in closed form.
func PredictOverhead(w dlmodel.Workload, cfg cluster.Config) (float64, error) {
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cfg)
	if err != nil {
		return 0, err
	}
	comm, err := collective.New(sys.Net, sys.GPUs)
	if err != nil {
		return 0, err
	}
	// Ring bandwidth: bottleneck edge capacity shared by the two
	// counter-rotating channels, derated by protocol efficiency.
	n := len(sys.GPUs)
	bottleneck := units.BytesPerSec(0)
	ring := comm.Ring()
	for i := range ring {
		a := sys.GPUs[ring[i]].Node
		b := sys.GPUs[ring[(i+1)%n]].Node
		bw, err := sys.Net.PathBottleneck(a, b)
		if err != nil {
			return 0, err
		}
		if bottleneck == 0 || bw < bottleneck {
			bottleneck = bw
		}
	}
	// Cross-host ring edges share the host-adapter link between the two
	// channels, halving the per-channel rate; a single all-reduce moves
	// 2(n−1)/n of the payload through that edge.
	grads := float64(w.GradBytes(gpu.FP16))
	commTime := 2 * float64(n-1) / float64(n) * grads / float64(bottleneck) / comm.RingEfficiency()

	fwd, bwd := w.ComputeTime(sys.GPUs[0].Spec, gpu.FP16, w.BatchPerGPU)
	compute := (fwd + bwd + w.LaunchOverhead).Seconds()
	window := bwd.Seconds() * 3 / 4 // buckets emitted across backward
	exposed := commTime - window
	if exposed < 0 {
		exposed = 0
	}
	return exposed / compute, nil
}

func rationale(w dlmodel.Workload, evals []Evaluation) string {
	var b strings.Builder
	best := evals[0]
	worst := evals[len(evals)-1]
	grads := w.GradBytes(gpu.FP16)
	fmt.Fprintf(&b, "%s synchronizes %v of gradients per iteration. ", w.Name, grads)
	spread := worst.Result.TotalTime.Seconds()/best.Result.TotalTime.Seconds() - 1
	switch {
	case spread < 0.07:
		fmt.Fprintf(&b, "All candidate topologies land within %.0f%% of each other: "+
			"gradient synchronization hides under the backward pass even over the "+
			"PCIe switch, so composed (Falcon-attached) GPUs cost almost nothing — "+
			"choose by availability and let the chassis give you flexibility.", spread*100)
	default:
		fmt.Fprintf(&b, "Topology matters: %s is %.0f%% slower than %s because the "+
			"all-reduce no longer hides under backward compute on the PCIe fabric. "+
			"Keep this model's GPUs NVLink-local.",
			worst.Config.Name, spread*100, best.Config.Name)
	}
	return b.String()
}

func softwareAdvice(w dlmodel.Workload) string {
	var b strings.Builder
	fp16Max := w.MaxBatch(gpu.TeslaV100SXM2, gpu.FP16, 1)
	sharded := w.MaxBatch(gpu.TeslaV100SXM2, gpu.FP16, 8)
	fmt.Fprintf(&b, "Use FP16 mixed precision with DDP. Max per-GPU batch: %d", fp16Max)
	if sharded > fp16Max {
		fmt.Fprintf(&b, "; ZeRO-2 sharding raises it to %d and is recommended for this model", sharded)
	}
	b.WriteString(".")
	return b.String()
}

// Report renders a recommendation as text.
func (r *Recommendation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recommendation for %s\n", r.Workload)
	fmt.Fprintf(&b, "%-12s %14s %14s %18s\n", "config", "throughput", "total", "predicted overhead")
	for _, e := range r.Ranked {
		fmt.Fprintf(&b, "%-12s %11.0f/s %14v %17.1f%%\n",
			e.Config.Name, e.ThroughputSPS,
			e.Result.TotalTime.Round(time.Millisecond), e.PredictedOverhead*100)
	}
	fmt.Fprintf(&b, "\n→ %s\n\n%s\n%s\n", r.Best.Config.Name, r.Rationale, r.SoftwareAdvice)
	return b.String()
}
