package advisor

import (
	"strings"
	"testing"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
)

func TestRecommendsLocalForBERTLarge(t *testing.T) {
	rec, err := Recommend(dlmodel.BERTLargeWorkload(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Config.Name != "localGPUs" {
		t.Fatalf("best = %s, want localGPUs (340M params cannot hide on PCIe)", rec.Best.Config.Name)
	}
	if !strings.Contains(rec.Rationale, "NVLink-local") {
		t.Errorf("rationale should advise keeping GPUs local: %q", rec.Rationale)
	}
	if !strings.Contains(rec.SoftwareAdvice, "ZeRO-2") {
		t.Errorf("software advice should recommend sharding for BERT-large: %q", rec.SoftwareAdvice)
	}
	if out := rec.Report(); !strings.Contains(out, "localGPUs") {
		t.Errorf("report missing winner: %s", out)
	}
}

func TestFlexibilityAdviceForSmallModels(t *testing.T) {
	rec, err := Recommend(dlmodel.MobileNetV2Workload(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// MobileNetV2's 7 MB gradients hide anywhere; the advisor should say
	// composition is essentially free.
	if !strings.Contains(rec.Rationale, "flexibility") {
		t.Errorf("rationale should highlight free flexibility: %q", rec.Rationale)
	}
	spread := rec.Ranked[len(rec.Ranked)-1].Result.TotalTime.Seconds() /
		rec.Ranked[0].Result.TotalTime.Seconds()
	if spread > 1.07 {
		t.Errorf("MobileNetV2 spread = %.2f, should be tiny", spread)
	}
}

func TestPredictionMatchesMeasurementDirection(t *testing.T) {
	// The analytic pre-estimate must agree with the simulator about which
	// workloads suffer on the Falcon fabric.
	falcon := cluster.FalconGPUsConfig()
	small, err := PredictOverhead(dlmodel.ResNet50Workload(), falcon)
	if err != nil {
		t.Fatal(err)
	}
	large, err := PredictOverhead(dlmodel.BERTLargeWorkload(), falcon)
	if err != nil {
		t.Fatal(err)
	}
	if small > 0.15 {
		t.Errorf("ResNet-50 predicted overhead = %.0f%%, want small", small*100)
	}
	if large < 0.4 {
		t.Errorf("BERT-L predicted overhead = %.0f%%, want large", large*100)
	}
	local, err := PredictOverhead(dlmodel.BERTLargeWorkload(), cluster.LocalGPUsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if local >= large {
		t.Errorf("local prediction (%.2f) should be below falcon (%.2f)", local, large)
	}
}

func TestRankedOrderIsByThroughput(t *testing.T) {
	rec, err := Recommend(dlmodel.BERTBaseWorkload(), nil, Options{ItersPerEpoch: 8, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rec.Ranked); i++ {
		if rec.Ranked[i].ThroughputSPS > rec.Ranked[i-1].ThroughputSPS {
			t.Fatal("ranking not sorted by throughput")
		}
	}
}
