package advisor

import (
	"strings"
	"testing"
	"time"
)

func TestRecommendPolicyRanksAndExplains(t *testing.T) {
	mix := FleetMix{
		Classes: []FleetJobClass{
			{Count: 4, GPUs: 4, Workload: "ResNet-50"},
			{Count: 2, GPUs: 2, Workload: "BERT"},
		},
		ItersPerEpoch: 3,
	}
	rec, err := RecommendPolicy(mix)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Policy == "" || rec.Best.Result == nil {
		t.Fatalf("no best policy: %+v", rec.Best)
	}
	// Ranked evaluations are sorted by makespan.
	var prev *PolicyEvaluation
	for i := range rec.Ranked {
		e := &rec.Ranked[i]
		if e.Skipped != "" {
			continue
		}
		if prev != nil && e.Result.Makespan < prev.Result.Makespan {
			t.Errorf("ranking out of order: %s (%v) after %s (%v)",
				e.Policy, e.Result.Makespan, prev.Policy, prev.Result.Makespan)
		}
		prev = e
	}
	report := rec.Report()
	for _, want := range []string{"firstfit", "drawer", "bandwidth", "static", "→", rec.Best.Policy} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// Determinism: the recommendation is a pure function of the mix.
	again, err := RecommendPolicy(mix)
	if err != nil {
		t.Fatal(err)
	}
	if again.Report() != report {
		t.Error("two recommendations for the same mix differ")
	}
}

// TestRecommendPolicySkipsInfeasibleStatic: a job bigger than any
// tenant's static share makes the static policy unservable; it must be
// reported as skipped, not ranked or fatal.
func TestRecommendPolicySkipsInfeasibleStatic(t *testing.T) {
	rec, err := RecommendPolicy(FleetMix{
		Hosts: 3, GPUs: 12,
		Classes:       []FleetJobClass{{Count: 2, GPUs: 8, Workload: "ResNet-50"}},
		ItersPerEpoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var foundSkip bool
	for _, e := range rec.Ranked {
		if e.Policy == "static" {
			foundSkip = e.Skipped != ""
		}
	}
	if !foundSkip {
		t.Errorf("static not skipped for an 8-GPU job on 4-GPU shares: %+v", rec.Ranked)
	}
	if rec.Best.Policy == "static" {
		t.Error("infeasible policy recommended")
	}
}

func TestRecommendPolicyRejectsEmptyMix(t *testing.T) {
	if _, err := RecommendPolicy(FleetMix{}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := RecommendPolicy(FleetMix{Classes: []FleetJobClass{{Count: 0, GPUs: 2}}}); err == nil {
		t.Error("zero-count class accepted")
	}
}

// TestRecommendPolicyFlipsUnderFaults pins the fault profile's headline
// behavior: the same mix that static partitioning wins fault-free is won
// by a dynamic policy under a high fault rate, because a fixed share
// cannot reschedule around dying hardware — the recommendation flips.
func TestRecommendPolicyFlipsUnderFaults(t *testing.T) {
	mix := FleetMix{
		Classes: []FleetJobClass{
			{Count: 4, GPUs: 4, Workload: "ResNet-50"},
			{Count: 2, GPUs: 2, Workload: "BERT"},
		},
	}
	clean, err := RecommendPolicy(mix)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Best.Policy != "static" {
		t.Fatalf("fault-free best = %s, want static (mix chosen for the flip)", clean.Best.Policy)
	}

	mix.MTBF, mix.FaultSeed = 2*time.Second, 1
	faulty, err := RecommendPolicy(mix)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Best.Policy == "static" {
		t.Fatalf("under MTBF %v the recommendation should flip away from static:\n%s",
			mix.MTBF, faulty.Report())
	}
	if faulty.Best.Result.Kills == 0 {
		t.Error("fault profile produced no kills; the flip proves nothing")
	}
	if !strings.Contains(faulty.Report(), "fault profile: MTBF") {
		t.Errorf("report missing the fault profile line:\n%s", faulty.Report())
	}
	if !strings.Contains(faulty.Rationale, "goodput") {
		t.Errorf("faulty rationale should explain via goodput: %q", faulty.Rationale)
	}

	// Same mix, same profile, run again: the recommendation is stable.
	again, err := RecommendPolicy(mix)
	if err != nil {
		t.Fatal(err)
	}
	if again.Best.Policy != faulty.Best.Policy {
		t.Fatalf("recommendation not deterministic: %s then %s", faulty.Best.Policy, again.Best.Policy)
	}
}
