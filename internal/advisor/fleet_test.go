package advisor

import (
	"strings"
	"testing"
	"time"
)

func TestRecommendPolicyRanksAndExplains(t *testing.T) {
	mix := FleetMix{
		Classes: []FleetJobClass{
			{Count: 4, GPUs: 4, Workload: "ResNet-50"},
			{Count: 2, GPUs: 2, Workload: "BERT"},
		},
		ItersPerEpoch: 3,
	}
	rec, err := RecommendPolicy(mix)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Policy == "" || rec.Best.Result == nil {
		t.Fatalf("no best policy: %+v", rec.Best)
	}
	// Ranked evaluations are sorted tenant-first: p99 queue wait from the
	// trace analysis, makespan as the tie-break.
	var prev *PolicyEvaluation
	for i := range rec.Ranked {
		e := &rec.Ranked[i]
		if e.Skipped != "" {
			continue
		}
		if prev != nil {
			if e.P99Wait < prev.P99Wait {
				t.Errorf("ranking out of order: %s (p99 wait %v) after %s (%v)",
					e.Policy, e.P99Wait, prev.Policy, prev.P99Wait)
			}
			if e.P99Wait == prev.P99Wait && e.Result.Makespan < prev.Result.Makespan {
				t.Errorf("tie-break out of order: %s (%v) after %s (%v)",
					e.Policy, e.Result.Makespan, prev.Policy, prev.Result.Makespan)
			}
		}
		prev = e
	}
	report := rec.Report()
	for _, want := range []string{"firstfit", "drawer", "bandwidth", "static", "→", rec.Best.Policy} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// Determinism: the recommendation is a pure function of the mix.
	again, err := RecommendPolicy(mix)
	if err != nil {
		t.Fatal(err)
	}
	if again.Report() != report {
		t.Error("two recommendations for the same mix differ")
	}
}

// TestRecommendPolicySkipsInfeasibleStatic: a job bigger than any
// tenant's static share makes the static policy unservable; it must be
// reported as skipped, not ranked or fatal.
func TestRecommendPolicySkipsInfeasibleStatic(t *testing.T) {
	rec, err := RecommendPolicy(FleetMix{
		Hosts: 3, GPUs: 12,
		Classes:       []FleetJobClass{{Count: 2, GPUs: 8, Workload: "ResNet-50"}},
		ItersPerEpoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var foundSkip bool
	for _, e := range rec.Ranked {
		if e.Policy == "static" {
			foundSkip = e.Skipped != ""
		}
	}
	if !foundSkip {
		t.Errorf("static not skipped for an 8-GPU job on 4-GPU shares: %+v", rec.Ranked)
	}
	if rec.Best.Policy == "static" {
		t.Error("infeasible policy recommended")
	}
}

func TestRecommendPolicyRejectsEmptyMix(t *testing.T) {
	if _, err := RecommendPolicy(FleetMix{}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := RecommendPolicy(FleetMix{Classes: []FleetJobClass{{Count: 0, GPUs: 2}}}); err == nil {
		t.Error("zero-count class accepted")
	}
}

// TestRecommendPolicyWaitTailBeatsMakespan pins the tenant-first
// ranking on a mix where it matters: static partitioning finishes the
// whole queue fastest, but its fixed shares queue the small-job burst
// behind earlier arrivals, while the bandwidth policy places every job
// the instant it lands. The p99-wait ranking must pick the zero-tail
// policy over the makespan winner — the two orders genuinely differ.
func TestRecommendPolicyWaitTailBeatsMakespan(t *testing.T) {
	rec, err := RecommendPolicy(FleetMix{
		Classes: []FleetJobClass{
			{Count: 4, GPUs: 2, Workload: "ResNet-50"},
			{Count: 2, GPUs: 3, Workload: "ResNet-50"},
		},
		BurstGap:      time.Second,
		ItersPerEpoch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Best.Policy != "bandwidth" {
		t.Fatalf("best = %s, want bandwidth (zero p99 wait):\n%s", rec.Best.Policy, rec.Report())
	}
	if rec.Best.P99Wait != 0 {
		t.Errorf("bandwidth p99 wait = %v, want 0", rec.Best.P99Wait)
	}
	// The makespan winner is a different policy — static — with a faster
	// fleet-wide finish but a worse wait tail; the rankings diverge.
	var static *PolicyEvaluation
	for i := range rec.Ranked {
		if rec.Ranked[i].Policy == "static" && rec.Ranked[i].Skipped == "" {
			static = &rec.Ranked[i]
		}
	}
	if static == nil {
		t.Fatalf("static not evaluated:\n%s", rec.Report())
	}
	if static.Result.Makespan >= rec.Best.Result.Makespan {
		t.Errorf("mix no longer divergent: static makespan %v vs best %v",
			static.Result.Makespan, rec.Best.Result.Makespan)
	}
	if static.P99Wait <= rec.Best.P99Wait {
		t.Errorf("static p99 wait %v should exceed best's %v", static.P99Wait, rec.Best.P99Wait)
	}
	// The rationale explains the divergence in tail terms.
	if !strings.Contains(rec.Rationale, "p99") {
		t.Errorf("rationale should explain via the wait tail: %q", rec.Rationale)
	}

	// With an SLO only static violates, the verdict column flips ranks:
	// a policy meeting the objective beats any raw numbers.
	withSLO, err := RecommendPolicy(FleetMix{
		Classes: []FleetJobClass{
			{Count: 4, GPUs: 2, Workload: "ResNet-50"},
			{Count: 2, GPUs: 3, Workload: "ResNet-50"},
		},
		BurstGap:      time.Second,
		ItersPerEpoch: 2,
		SLO:           "p99-wait<=10ms max-failed<=0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if withSLO.Best.Health == nil || !withSLO.Best.Health.Healthy {
		t.Errorf("best policy should meet the SLO:\n%s", withSLO.Report())
	}
	if static := findEval(withSLO, "static"); static != nil && static.Health.Healthy {
		t.Errorf("static should violate p99-wait<=10ms (p99 %v)", static.P99Wait)
	}
	if !strings.Contains(withSLO.Report(), "slo") {
		t.Errorf("report lacks the SLO column:\n%s", withSLO.Report())
	}
	if _, err := RecommendPolicy(FleetMix{
		Classes: []FleetJobClass{{Count: 1, GPUs: 2, Workload: "BERT"}},
		SLO:     "bogus<=1",
	}); err == nil {
		t.Error("bad SLO spec accepted")
	}
}

// findEval returns the named evaluated (non-skipped) policy, or nil.
func findEval(rec *PolicyRecommendation, policy string) *PolicyEvaluation {
	for i := range rec.Ranked {
		if rec.Ranked[i].Policy == policy && rec.Ranked[i].Skipped == "" {
			return &rec.Ranked[i]
		}
	}
	return nil
}

// TestRecommendPolicyFlipsUnderFaults pins the fault profile's headline
// behavior: the same mix that static partitioning wins fault-free is won
// by a dynamic policy under a high fault rate, because a fixed share
// cannot reschedule around dying hardware — the recommendation flips.
func TestRecommendPolicyFlipsUnderFaults(t *testing.T) {
	mix := FleetMix{
		Classes: []FleetJobClass{
			{Count: 4, GPUs: 4, Workload: "ResNet-50"},
			{Count: 2, GPUs: 2, Workload: "BERT"},
		},
	}
	clean, err := RecommendPolicy(mix)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Best.Policy != "static" {
		t.Fatalf("fault-free best = %s, want static (mix chosen for the flip)", clean.Best.Policy)
	}

	mix.MTBF, mix.FaultSeed = 2*time.Second, 1
	faulty, err := RecommendPolicy(mix)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Best.Policy == "static" {
		t.Fatalf("under MTBF %v the recommendation should flip away from static:\n%s",
			mix.MTBF, faulty.Report())
	}
	if faulty.Best.Result.Kills == 0 {
		t.Error("fault profile produced no kills; the flip proves nothing")
	}
	if !strings.Contains(faulty.Report(), "fault profile: MTBF") {
		t.Errorf("report missing the fault profile line:\n%s", faulty.Report())
	}
	if !strings.Contains(faulty.Rationale, "goodput") {
		t.Errorf("faulty rationale should explain via goodput: %q", faulty.Rationale)
	}

	// Same mix, same profile, run again: the recommendation is stable.
	again, err := RecommendPolicy(mix)
	if err != nil {
		t.Fatal(err)
	}
	if again.Best.Policy != faulty.Best.Policy {
		t.Fatalf("recommendation not deterministic: %s then %s", faulty.Best.Policy, again.Best.Policy)
	}
}
