package advisor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"composable/internal/cluster"
	"composable/internal/falcon"
	"composable/internal/faults"
	"composable/internal/obs"
	"composable/internal/obs/analyze"
	"composable/internal/orchestrator"
	"composable/internal/sim"
)

// Fleet-policy advice: given a *described* job mix — the operator knows
// "five 4-GPU vision jobs and two 2-GPU BERT fine-tunes land every
// morning", not a trace — the advisor synthesizes a deterministic stream
// from the description, replays it on the simulated fleet under every
// placement policy, and recommends the one with the best makespan.

// FleetJobClass is one class of jobs in a described mix.
type FleetJobClass struct {
	Count    int
	GPUs     int
	Workload string // Table II name
}

// FleetMix describes a job mix and the fleet it lands on. Zero values
// pick the defaults (3 hosts × 12 GPUs, 2 s between class bursts, 10
// iterations per job).
type FleetMix struct {
	Hosts, GPUs   int
	Classes       []FleetJobClass
	BurstGap      time.Duration
	ItersPerEpoch int

	// MTBF, when positive, replays the mix under a seeded fault profile
	// with that mean time between failures (dying GPUs, drawer flaps,
	// link outages — all repairable) instead of a fault-free fleet. The
	// same schedule hits every policy, so the ranking measures recovery:
	// under a high fault rate the recommendation can flip, because a
	// layout that wins on contention can lose on blast radius.
	MTBF time.Duration
	// FaultSeed selects the fault schedule (0 = 1).
	FaultSeed int64

	// SLO, when set, is a declarative service objective (analyze.ParseSLO
	// syntax, e.g. "p99-wait<=500ms max-failed<=0") every policy run is
	// scored against. Policies meeting the SLO rank above those violating
	// it regardless of raw speed.
	SLO string
}

// stream synthesizes the deterministic job stream the description
// implies: class c's jobs arrive as a burst at c×BurstGap, 200 ms apart,
// with tenants assigned round-robin across the mix.
func (m FleetMix) stream() []orchestrator.JobSpec {
	var jobs []orchestrator.JobSpec
	n := 0
	for c, class := range m.Classes {
		for i := 0; i < class.Count; i++ {
			jobs = append(jobs, orchestrator.JobSpec{
				Arrival:  time.Duration(c)*m.BurstGap + time.Duration(i)*200*time.Millisecond,
				Tenant:   n % m.Hosts,
				GPUs:     class.GPUs,
				Workload: class.Workload,
				Epochs:   1, ItersPerEpoch: m.ItersPerEpoch,
			})
			n++
		}
	}
	return jobs
}

// PolicyEvaluation is one policy's measured outcome on the mix.
type PolicyEvaluation struct {
	Policy string
	Result *orchestrator.FleetResult
	// P99Wait is the exact nearest-rank 99th-percentile queue wait from
	// the run's trace analysis — the tail a tenant actually feels, which
	// the ranking weighs ahead of fleet-wide makespan.
	P99Wait time.Duration
	// Health is the SLO verdict when the mix declares one.
	Health *analyze.HealthReport
	// Skipped explains why a policy was not evaluated (e.g. the static
	// partition cannot hold the mix's largest job).
	Skipped string
}

// meetsSLO reports the verdict (true when no SLO is declared).
func (e *PolicyEvaluation) meetsSLO() bool {
	return e.Health == nil || e.Health.Healthy
}

// PolicyRecommendation is the advisor's fleet-side output.
type PolicyRecommendation struct {
	Mix       FleetMix
	Best      PolicyEvaluation
	Ranked    []PolicyEvaluation // evaluated policies, best first; skipped appended
	Rationale string
}

// RecommendPolicy replays the described mix under every placement policy
// with a trace collector attached and ranks them tenant-first: SLO
// verdict (when the mix declares one), then exact p99 queue wait from
// the trace analysis, then makespan and mean wait. Under a fault
// profile survival still leads (failed jobs, then goodput) before the
// wait tail. Policies that cannot serve the mix at all — static
// partitioning when a job outgrows a tenant's share — are reported as
// skipped rather than ranked.
func RecommendPolicy(mix FleetMix) (*PolicyRecommendation, error) {
	if mix.Hosts == 0 {
		mix.Hosts = 3
	}
	if mix.GPUs == 0 {
		mix.GPUs = 12
	}
	if mix.BurstGap == 0 {
		mix.BurstGap = 2 * time.Second
	}
	if mix.ItersPerEpoch == 0 {
		mix.ItersPerEpoch = 10
	}
	if len(mix.Classes) == 0 {
		return nil, fmt.Errorf("advisor: empty job mix")
	}
	for _, c := range mix.Classes {
		if c.Count < 1 {
			return nil, fmt.Errorf("advisor: class %q has count %d", c.Workload, c.Count)
		}
	}
	stream := mix.stream()
	slo, err := analyze.ParseSLO(mix.SLO)
	if err != nil {
		return nil, fmt.Errorf("advisor: %w", err)
	}

	// Optional fault profile: one schedule, replayed against every
	// policy. Everything must heal (MaxPermanentGPUs 0) so the static
	// baseline stays evaluable rather than wedged.
	var plan *faults.Plan
	if mix.MTBF > 0 {
		seed := mix.FaultSeed
		if seed == 0 {
			seed = 1
		}
		p := faults.PlanMTBF(seed, mix.MTBF, faults.Bounds{
			Slots: mix.GPUs, SlotsPerDrawer: falcon.SlotsPerDrawer, Hosts: mix.Hosts,
		})
		plan = &p
	}

	var evaluated, skipped []PolicyEvaluation
	for _, pol := range orchestrator.Policies() {
		env := sim.NewEnv()
		fleet, err := cluster.ComposeFleet(env, cluster.FleetOptions{
			Hosts: mix.Hosts, GPUs: mix.GPUs, Preattach: true,
		})
		if err != nil {
			return nil, err
		}
		col := obs.NewCollector()
		// Spans only: an armed metrics sampler would keep the event queue
		// alive forever on policies that strand jobs (the skip path).
		col.DisableSampling()
		col.Attach(env)
		res, err := orchestrator.Run(fleet, stream, orchestrator.Options{Policy: pol, Faults: plan, Obs: col})
		if err != nil {
			skipped = append(skipped, PolicyEvaluation{Policy: pol.Name(), Skipped: err.Error()})
			continue
		}
		an := analyze.FromCollector(col).Analyze()
		ev := PolicyEvaluation{Policy: pol.Name(), Result: res, P99Wait: an.Wait.P99()}
		if !slo.Empty() {
			ev.Health = analyze.Evaluate(slo, an, analyze.FleetStats{
				Goodput: res.Goodput, Utilization: res.Utilization, Known: true,
			})
		}
		evaluated = append(evaluated, ev)
	}
	if len(evaluated) == 0 {
		return nil, fmt.Errorf("advisor: no policy can serve the mix")
	}
	sort.SliceStable(evaluated, func(i, j int) bool {
		x, y := &evaluated[i], &evaluated[j]
		a, b := x.Result, y.Result
		// A policy meeting the declared SLO beats one violating it,
		// whatever the raw numbers say.
		if x.meetsSLO() != y.meetsSLO() {
			return x.meetsSLO()
		}
		if mix.MTBF > 0 {
			// Under faults the metric is recovery: first don't abandon
			// jobs, then deliver useful work fastest.
			if a.FailedJobs != b.FailedJobs {
				return a.FailedJobs < b.FailedJobs
			}
			if a.Goodput != b.Goodput {
				return a.Goodput > b.Goodput
			}
		}
		// Tenant experience before fleet throughput: the p99 wait tail,
		// then makespan, then mean wait.
		if x.P99Wait != y.P99Wait {
			return x.P99Wait < y.P99Wait
		}
		if a.Makespan != b.Makespan {
			return a.Makespan < b.Makespan
		}
		return a.MeanWait < b.MeanWait
	})

	rec := &PolicyRecommendation{
		Mix:    mix,
		Best:   evaluated[0],
		Ranked: append(evaluated, skipped...),
	}
	if mix.MTBF > 0 {
		rec.Rationale = faultyRationale(mix, evaluated)
	} else {
		rec.Rationale = policyRationale(evaluated)
	}
	if mix.SLO != "" {
		healthy := 0
		for i := range evaluated {
			if evaluated[i].meetsSLO() {
				healthy++
			}
		}
		rec.Rationale += fmt.Sprintf(" SLO %q: %d of %d evaluated policies healthy.",
			mix.SLO, healthy, len(evaluated))
	}
	return rec, nil
}

func faultyRationale(mix FleetMix, evaluated []PolicyEvaluation) string {
	best := evaluated[0]
	if len(evaluated) == 1 {
		return fmt.Sprintf("Only %s survives this mix under MTBF %v.", best.Policy, mix.MTBF)
	}
	worst := evaluated[len(evaluated)-1]
	return fmt.Sprintf("Under MTBF %v the metric is goodput, not makespan: %s delivers %.2f "+
		"useful GPU-s/s against %s's %.2f (%d vs %d kills, %.1f vs %.1f GPU-s of work lost "+
		"and re-done from checkpoints).",
		mix.MTBF, best.Policy, best.Result.Goodput, worst.Policy, worst.Result.Goodput,
		best.Result.Kills, worst.Result.Kills,
		best.Result.LostGPUSeconds, worst.Result.LostGPUSeconds)
}

func policyRationale(evaluated []PolicyEvaluation) string {
	best := evaluated[0]
	if len(evaluated) == 1 {
		return fmt.Sprintf("Only %s can serve this mix on the described fleet.", best.Policy)
	}
	// When the wait-tail winner is not the makespan winner, the tail is
	// the story: name the faster-finishing policy the ranking passed over.
	fastest := &evaluated[0]
	for i := range evaluated {
		if evaluated[i].Result.Makespan < fastest.Result.Makespan {
			fastest = &evaluated[i]
		}
	}
	if fastest.Policy != best.Policy {
		return fmt.Sprintf("%s finishes the whole queue sooner (%v vs %v), but %s holds the p99 "+
			"queue wait to %v against %s's %v — the tail, not the makespan, is what a tenant feels.",
			fastest.Policy, fastest.Result.Makespan.Round(time.Millisecond),
			best.Result.Makespan.Round(time.Millisecond), best.Policy,
			best.P99Wait.Round(time.Millisecond), fastest.Policy, fastest.P99Wait.Round(time.Millisecond))
	}
	worst := evaluated[len(evaluated)-1]
	gap := worst.Result.Makespan.Seconds()/best.Result.Makespan.Seconds() - 1
	if gap < 0.05 {
		return fmt.Sprintf("Placement barely matters for this mix (%.0f%% spread): the drawer "+
			"fabric absorbs any layout — choose %s and move on.", gap*100, best.Policy)
	}
	return fmt.Sprintf("%s takes %.0f%% longer than %s on this mix: it needs %d device moves "+
		"to %s's %d, and every move costs a hot-plug window the queue inherits.",
		worst.Policy, gap*100, best.Policy,
		worst.Result.Recompositions, best.Policy, best.Result.Recompositions)
}

// Report renders the recommendation as text.
func (r *PolicyRecommendation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Placement-policy recommendation for %d job class(es) on %d hosts × %d GPUs\n",
		len(r.Mix.Classes), r.Mix.Hosts, r.Mix.GPUs)
	for _, c := range r.Mix.Classes {
		fmt.Fprintf(&b, "  %d × %s on %d GPUs\n", c.Count, c.Workload, c.GPUs)
	}
	if r.Mix.MTBF > 0 {
		fmt.Fprintf(&b, "  fault profile: MTBF %v (seeded, repairable GPU/drawer/link failures)\n", r.Mix.MTBF)
		fmt.Fprintf(&b, "\n%-10s %14s %9s %6s %7s %10s%s\n", "policy", "makespan", "goodput", "kills", "failed", "lost", sloHeader(r.Mix.SLO))
		for _, e := range r.Ranked {
			if e.Skipped != "" {
				fmt.Fprintf(&b, "%-10s skipped: %s\n", e.Policy, e.Skipped)
				continue
			}
			fmt.Fprintf(&b, "%-10s %14v %7.2f/s %6d %7d %8.1fGs%s\n", e.Policy,
				e.Result.Makespan.Round(time.Millisecond), e.Result.Goodput,
				e.Result.Kills, e.Result.FailedJobs, e.Result.LostGPUSeconds, sloCell(r.Mix.SLO, &e))
		}
	} else {
		fmt.Fprintf(&b, "\n%-10s %14s %14s %14s %8s %8s%s\n", "policy", "makespan", "p99 wait", "mean wait", "moves", "util", sloHeader(r.Mix.SLO))
		for _, e := range r.Ranked {
			if e.Skipped != "" {
				fmt.Fprintf(&b, "%-10s skipped: %s\n", e.Policy, e.Skipped)
				continue
			}
			fmt.Fprintf(&b, "%-10s %14v %14v %14v %8d %7.1f%%%s\n", e.Policy,
				e.Result.Makespan.Round(time.Millisecond), e.P99Wait.Round(time.Millisecond),
				e.Result.MeanWait.Round(time.Millisecond),
				e.Result.Recompositions, e.Result.Utilization*100, sloCell(r.Mix.SLO, &e))
		}
	}
	fmt.Fprintf(&b, "\n→ %s\n\n%s\n", r.Best.Policy, r.Rationale)
	return b.String()
}

// sloHeader and sloCell render the optional SLO verdict column.
func sloHeader(spec string) string {
	if spec == "" {
		return ""
	}
	return "  slo"
}

func sloCell(spec string, e *PolicyEvaluation) string {
	switch {
	case spec == "":
		return ""
	case e.meetsSLO():
		return "   ok"
	default:
		return " FAIL"
	}
}
