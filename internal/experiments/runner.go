package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// Report is one experiment's rendered artifact plus run telemetry.
type Report struct {
	ID     string
	Title  string
	Output string
	// Elapsed is the wall-clock time this experiment took. Under a
	// parallel runner an experiment's elapsed time includes waiting on
	// training runs another experiment had in flight, so the per-report
	// sum can exceed the suite's wall time.
	Elapsed time.Duration
	// Err is the experiment's failure, ctx.Err() if the suite was
	// canceled before this experiment started (experiments already in
	// flight run to completion), or nil.
	Err error
}

// Runner executes a set of experiments over one shared Session, optionally
// in parallel. Reports come back in the experiments' given (paper) order
// regardless of completion order, and — because the Session deduplicates
// training runs and the simulation is deterministic — a parallel run
// renders byte-identical output to a sequential one.
type Runner struct {
	Session *Session
	// Experiments to run; nil means the full Registry() (paper artifacts
	// then extensions).
	Experiments []Experiment
}

// NewRunner returns a runner over the session. exps nil means Registry().
func NewRunner(s *Session, exps []Experiment) *Runner {
	return &Runner{Session: s, Experiments: exps}
}

// RunAll executes the experiments on a pool of parallelism workers
// (parallelism < 1 means runtime.GOMAXPROCS(0)) and returns one Report per
// experiment, in input order. It always returns a report slice of full
// length: on failure or cancellation the affected reports carry the error,
// and the returned error is the first report error in input order —
// falling back to ctx.Err() when the context was canceled after every
// dispatched experiment had already started.
func (r *Runner) RunAll(ctx context.Context, parallelism int) ([]Report, error) {
	exps := r.Experiments
	if exps == nil {
		exps = Registry()
	}
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(exps) {
		parallelism = len(exps)
	}

	reports := make([]Report, len(exps))
	for i, e := range exps {
		reports[i] = Report{ID: e.ID, Title: e.Title}
	}
	if len(exps) == 0 {
		return reports, nil
	}

	work := make(chan int)
	done := make(chan struct{})
	// Workers own disjoint report slots, so no locking is needed.
	for w := 0; w < parallelism; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range work {
				if err := ctx.Err(); err != nil {
					reports[i].Err = err
					continue
				}
				e := exps[i]
				// Genuine telemetry: Elapsed reports how long the worker
				// spent, never feeds an experiment's rendered output, and
				// is excluded from the byte-identity tests.
				//lint:allow nowallclock(Report.Elapsed is wall-clock telemetry, not simulation output)
				start := time.Now()
				out, err := e.Run(r.Session)
				reports[i].Output = out
				//lint:allow nowallclock(Report.Elapsed is wall-clock telemetry, not simulation output)
				reports[i].Elapsed = time.Since(start)
				if err != nil {
					reports[i].Err = fmt.Errorf("%s: %w", e.ID, err)
				}
			}
		}()
	}
	for i := range exps {
		work <- i
	}
	close(work)
	for w := 0; w < parallelism; w++ {
		<-done
	}

	for i := range reports {
		if reports[i].Err != nil {
			return reports, reports[i].Err
		}
	}
	if err := ctx.Err(); err != nil {
		return reports, err
	}
	return reports, nil
}
