package experiments

import (
	"fmt"
	"strings"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/train"
)

// Figure9 renders the GPU-utilization pattern of every benchmark over a
// full (scaled) training run on the localGPUs configuration, as sparkline
// panels — the analog of the paper's five utilization plots. The periodic
// dips are the checkpoint/synchronization pauses the paper calls out.
func Figure9(s *Session) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "GPU utilization over training (localGPUs), 1 char ≈ 1 sample window\n")
	for _, w := range dlmodel.Benchmarks() {
		res, err := s.RunOpts(cluster.LocalGPUsConfig(), w, fp16DDP())
		if err != nil {
			return "", err
		}
		series := res.Recorder.Series(train.SeriesGPUUtil)
		fmt.Fprintf(&b, "%-12s |%s| mean %5.1f%%  min %5.1f%%\n",
			w.Name, series.Sparkline(60), series.Mean()*100, series.Min()*100)
	}
	return b.String(), nil
}

// Figure10 reports GPU utilization, GPU memory utilization and the share
// of time spent accessing GPU memory for every benchmark on the three GPU
// configurations.
func Figure10(s *Session) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %10s %12s %12s\n",
		"Benchmark", "Config", "GPU util", "GPU mem", "Mem access")
	for _, w := range dlmodel.Benchmarks() {
		for _, cfg := range gpuConfigs() {
			res, err := s.RunOpts(cfg, w, fp16DDP())
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%-12s %-12s %9.1f%% %11.1f%% %11.1f%%\n",
				w.Name, cfg.Name, res.AvgGPUUtil*100, res.AvgGPUMemUtil*100, res.MemAccessFrac*100)
		}
	}
	return b.String(), nil
}

// Figure11Data computes the percentage training-time change of hybridGPUs
// and falconGPUs relative to localGPUs for every benchmark.
func Figure11Data(s *Session) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	for _, w := range dlmodel.Benchmarks() {
		base, err := s.RunOpts(cluster.LocalGPUsConfig(), w, fp16DDP())
		if err != nil {
			return nil, err
		}
		out[w.Name] = make(map[string]float64)
		for _, cfg := range []cluster.Config{cluster.HybridGPUsConfig(), cluster.FalconGPUsConfig()} {
			res, err := s.RunOpts(cfg, w, fp16DDP())
			if err != nil {
				return nil, err
			}
			out[w.Name][cfg.Name] = PercentChange(base, res)
		}
	}
	return out, nil
}

// Figure11 renders the PCIe-switching overhead chart.
func Figure11(s *Session) (string, error) {
	data, err := Figure11Data(s)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Training-time change vs localGPUs (positive = slower)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "Benchmark", "hybridGPUs", "falconGPUs")
	for _, w := range dlmodel.Benchmarks() {
		fmt.Fprintf(&b, "%-12s %+11.1f%% %+11.1f%%\n",
			w.Name, data[w.Name]["hybridGPUs"], data[w.Name]["falconGPUs"])
	}
	return b.String(), nil
}

// Figure12Data computes the average PCIe traffic (GB/s, ingress+egress of
// the Falcon GPU slot ports) for the two Falcon GPU configurations.
func Figure12Data(s *Session) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	for _, w := range dlmodel.Benchmarks() {
		out[w.Name] = make(map[string]float64)
		for _, cfg := range []cluster.Config{cluster.HybridGPUsConfig(), cluster.FalconGPUsConfig()} {
			res, err := s.RunOpts(cfg, w, fp16DDP())
			if err != nil {
				return nil, err
			}
			out[w.Name][cfg.Name] = res.FalconPCIeGBps
		}
	}
	return out, nil
}

// Figure12 renders the Falcon PCIe traffic chart.
func Figure12(s *Session) (string, error) {
	data, err := Figure12Data(s)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "PCIe data transfer rate of Falcon GPU ports (GB/s)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "Benchmark", "hybridGPUs", "falconGPUs")
	for _, w := range dlmodel.Benchmarks() {
		fmt.Fprintf(&b, "%-12s %12.2f %12.2f\n",
			w.Name, data[w.Name]["hybridGPUs"], data[w.Name]["falconGPUs"])
	}
	return b.String(), nil
}

// hostUtilFigure renders one benchmark × GPU-configuration percentage
// grid — the shared shape of Figures 13 and 14.
func hostUtilFigure(s *Session, metric func(*train.Result) float64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "Benchmark", "localGPUs", "hybridGPUs", "falconGPUs")
	for _, w := range dlmodel.Benchmarks() {
		fmt.Fprintf(&b, "%-12s", w.Name)
		for _, cfg := range gpuConfigs() {
			res, err := s.RunOpts(cfg, w, fp16DDP())
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " %11.1f%%", metric(res)*100)
		}
		fmt.Fprintln(&b)
	}
	return b.String(), nil
}

// Figure13 reports CPU utilization per benchmark per GPU configuration.
func Figure13(s *Session) (string, error) {
	return hostUtilFigure(s, func(res *train.Result) float64 { return res.AvgCPUUtil })
}

// Figure14 reports host memory utilization per benchmark per configuration.
func Figure14(s *Session) (string, error) {
	return hostUtilFigure(s, func(res *train.Result) float64 { return res.AvgHostMemUtil })
}

// Figure15Data computes the percentage training-time change of the two
// NVMe storage configurations relative to localGPUs (negative = faster).
func Figure15Data(s *Session) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	for _, w := range dlmodel.Benchmarks() {
		base, err := s.RunOpts(cluster.LocalGPUsConfig(), w, fp16DDP())
		if err != nil {
			return nil, err
		}
		out[w.Name] = make(map[string]float64)
		for _, cfg := range storageConfigs() {
			res, err := s.RunOpts(cfg, w, fp16DDP())
			if err != nil {
				return nil, err
			}
			out[w.Name][cfg.Name] = PercentChange(base, res)
		}
	}
	return out, nil
}

// Figure15 renders the storage-configuration chart.
func Figure15(s *Session) (string, error) {
	data, err := Figure15Data(s)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Training-time change vs localGPUs (negative = faster)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "Benchmark", "localNVMe", "falconNVMe")
	for _, w := range dlmodel.Benchmarks() {
		fmt.Fprintf(&b, "%-12s %+11.1f%% %+11.1f%%\n",
			w.Name, data[w.Name]["localNVMe"], data[w.Name]["falconNVMe"])
	}
	return b.String(), nil
}

// SoftOptResult is one bar of Figure 16.
type SoftOptResult struct {
	Label       string
	Config      string
	BatchPerGPU int
	// PerSampleMs is training time per sample (lower is better) — the
	// scale-free version of the figure's y axis.
	PerSampleMs float64
}

// Figure16Data runs the BERT-large software-optimization grid of §V-C-4 on
// the local and Falcon GPU configurations: DataParallel vs
// DistributedDataParallel, FP32 vs FP16 mixed precision, and ZeRO-2
// sharding (which lifts the per-GPU batch from 6 to 10).
func Figure16Data(s *Session) ([]SoftOptResult, error) {
	w := dlmodel.BERTLargeWorkload()
	fp32Batch := w.MaxBatch(gpu.TeslaV100SXM2, gpu.FP32, 1)
	shardedBatch := w.MaxBatch(gpu.TeslaV100SXM2, gpu.FP16, 8)
	variants := []struct {
		label string
		opts  train.Options
	}{
		{"DP-FP32", train.Options{Strategy: train.DP, Precision: gpu.FP32, BatchPerGPU: fp32Batch}},
		{"DDP-FP32", train.Options{Strategy: train.DDP, Precision: gpu.FP32, BatchPerGPU: fp32Batch}},
		{"DP-FP16", train.Options{Strategy: train.DP, Precision: gpu.FP16}},
		{"DDP-FP16", train.Options{Strategy: train.DDP, Precision: gpu.FP16}},
		{"DDP-FP16-sharded(b10)", train.Options{Strategy: train.DDP, Precision: gpu.FP16, Sharded: true, BatchPerGPU: shardedBatch}},
	}
	var out []SoftOptResult
	for _, cfg := range []cluster.Config{cluster.LocalGPUsConfig(), cluster.FalconGPUsConfig()} {
		for _, v := range variants {
			res, err := s.RunOpts(cfg, w, v.opts)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", v.label, cfg.Name, err)
			}
			out = append(out, SoftOptResult{
				Label:       v.label,
				Config:      cfg.Name,
				BatchPerGPU: res.BatchPerGPU,
				PerSampleMs: res.TotalTime.Seconds() * 1e3 / float64(res.Iters*res.BatchPerGPU),
			})
		}
	}
	return out, nil
}

// Figure16 renders the software-optimization study.
func Figure16(s *Session) (string, error) {
	rows, err := Figure16Data(s)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "BERT-large fine-tuning (SQuAD): software-level optimizations\n")
	fmt.Fprintf(&b, "%-24s %-12s %8s %16s\n", "Variant", "Config", "batch", "ms/sample")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %-12s %8d %16.1f\n", r.Label, r.Config, r.BatchPerGPU, r.PerSampleMs)
	}
	return b.String(), nil
}
