package experiments

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"composable/internal/orchestrator"
	"composable/internal/scengen"
)

// TestS1DynamicBeatsStatic is the S1 acceptance gate: for the bursty
// stream, dynamic recomposition must beat static partitioning on
// makespan — the repo's quantified version of the paper's composability
// pitch. It runs the underlying scenarios directly so it can compare the
// numbers, not parse the report.
func TestS1DynamicBeatsStatic(t *testing.T) {
	stream := burstyStream(Quick.ItersPerEpoch)
	static := scengen.FleetScenario{
		Hosts: 3, GPUs: 12, Preattach: true, Policy: "static",
		AttachLatency: orchestrator.DefaultAttachLatency, Jobs: stream,
	}
	dynamic := static
	dynamic.Policy = "drawer"

	sres, err := fleetRun(static)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := fleetRun(dynamic)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Makespan >= sres.Makespan {
		t.Fatalf("dynamic makespan %v not better than static %v", dres.Makespan, sres.Makespan)
	}
	if dres.Recompositions == 0 {
		t.Error("dynamic run never recomposed — the comparison is vacuous")
	}
	if sres.Recompositions != 0 {
		t.Errorf("static run recomposed %d times", sres.Recompositions)
	}
	// The win must survive the recomposition tax by a sane margin at
	// quick scale; the burst serializes 5 jobs on 4 GPUs vs ~2 rounds on
	// 12 GPUs.
	if ratio := sres.Makespan.Seconds() / dres.Makespan.Seconds(); ratio < 1.2 {
		t.Errorf("dynamic speedup only %.2fx", ratio)
	}
}

func TestFleetExperimentsRender(t *testing.T) {
	s := NewSession(Quick)
	for _, e := range FleetExperiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, "makespan") {
				t.Errorf("%s report missing telemetry header:\n%s", e.ID, out)
			}
		})
	}
}

// TestS1ReportSpeedupLine pins the report's headline number to the
// underlying telemetry: the printed speedup must parse and exceed 1.
func TestS1ReportSpeedupLine(t *testing.T) {
	out, err := FleetStaticVsDynamic(NewSession(Quick))
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`finishes the stream (\d+\.\d+)x faster`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no speedup line in:\n%s", out)
	}
	speedup, err := strconv.ParseFloat(m[1], 64)
	if err != nil || speedup <= 1 {
		t.Fatalf("speedup %q does not show a dynamic win:\n%s", m[1], out)
	}
}

// TestS5VerdictSplit pins S5's defining shape at Quick scale: the
// static partition must fail the queue-wait SLO the dynamic composition
// meets — if both verdicts agree, the experiment's SLO threshold no
// longer separates the compositions and the story collapses.
func TestS5VerdictSplit(t *testing.T) {
	out, err := FleetAttributionSLO(NewSession(Quick))
	if err != nil {
		t.Fatal(err)
	}
	var staticLine, dynamicLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "static partition") {
			staticLine = line
		}
		if strings.HasPrefix(line, "dynamic (") {
			dynamicLine = line
		}
	}
	if staticLine == "" || dynamicLine == "" {
		t.Fatalf("report lacks per-composition rows:\n%s", out)
	}
	if !strings.HasSuffix(staticLine, "FAIL") {
		t.Errorf("static row should fail the SLO: %q", staticLine)
	}
	if !strings.HasSuffix(dynamicLine, "ok") {
		t.Errorf("dynamic row should meet the SLO: %q", dynamicLine)
	}
	if !strings.Contains(out, "Attribution explains the verdicts") {
		t.Errorf("report lacks the derived verdict paragraph:\n%s", out)
	}
}

// TestS4SpineOversubscriptionCosts checks S4's defining shape: on a fleet
// where every cross-chassis byte crosses the spine, starving the spine
// 16x must slow the pod-spanning stream down — if it doesn't, the
// experiment is not actually exercising the oversubscribed tier.
func TestS4SpineOversubscriptionCosts(t *testing.T) {
	jobs := podStream(Quick.ItersPerEpoch)
	open, err := fleetRun(s4Fleet("bandwidth", 1, jobs))
	if err != nil {
		t.Fatal(err)
	}
	starved, err := fleetRun(s4Fleet("bandwidth", 16, jobs))
	if err != nil {
		t.Fatal(err)
	}
	if open.Pods != 4 || open.Oversubscription != 1 || starved.Oversubscription != 16 {
		t.Fatalf("hierarchy telemetry missing: %+v vs %+v", open, starved)
	}
	if starved.Makespan <= open.Makespan {
		t.Errorf("16x oversubscription did not cost anything: %v vs %v — no cross-pod traffic on the spine",
			starved.Makespan, open.Makespan)
	}
}

// TestS3WaitsGrowWithLoad checks the saturation sweep's defining shape:
// mean wait at 4x load is no smaller than at 0.25x load.
func TestS3WaitsGrowWithLoad(t *testing.T) {
	base := shootoutStream(Quick.ItersPerEpoch)
	meanWait := func(scale float64) time.Duration {
		jobs := make([]orchestrator.JobSpec, len(base))
		for i, j := range base {
			j.Arrival = time.Duration(float64(j.Arrival) * scale)
			jobs[i] = j
		}
		r, err := fleetRun(scengen.FleetScenario{
			Hosts: 3, GPUs: 12, Preattach: true, Policy: "drawer",
			AttachLatency: orchestrator.DefaultAttachLatency, Jobs: jobs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.MeanWait
	}
	if idle, saturated := meanWait(4), meanWait(0.25); saturated < idle {
		t.Errorf("mean wait shrank under load: %v at 0.25x vs %v at 4x", idle, saturated)
	}
}
