package experiments

import (
	"strings"
	"testing"

	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/train"
)

// The experiment tests are the repository's acceptance gate: they assert
// the *shapes* the paper reports (who wins, by what rough factor, in what
// order), per README.md "Experiments".

func quickSession() *Session { return NewSession(Quick) }

func TestAllExperimentsRender(t *testing.T) {
	s := quickSession()
	for _, e := range All() {
		out, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(strings.TrimSpace(out)) == 0 {
			t.Fatalf("%s produced empty report", e.ID)
		}
		t.Logf("%s: %s\n%s", e.ID, e.Title, out)
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("F11"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("F99"); err == nil {
		t.Fatal("expected error")
	}
	if got := len(IDs()); got != 12 {
		t.Fatalf("experiments = %d, want 12 (4 tables + 8 figures)", got)
	}
}

// TestFigure11Shape: vision overhead small; NLP overhead large and ordered
// by parameter count; BERT-large ≈ 2x on falconGPUs.
func TestFigure11Shape(t *testing.T) {
	s := quickSession()
	data, err := Figure11Data(s)
	if err != nil {
		t.Fatal(err)
	}
	falcon := func(name string) float64 { return data[name]["falconGPUs"] }
	// Vision ≤ ~8% (paper: <7%).
	for _, v := range []string{"MobileNetV2", "ResNet-50", "YOLOv5-L"} {
		if o := falcon(v); o < -3 || o > 9 {
			t.Errorf("%s falcon overhead = %+.1f%%, want small (<9%%)", v, o)
		}
	}
	// BERT-large ≈ +100% ("almost twice as much time").
	if o := falcon("BERT-L"); o < 60 || o > 130 {
		t.Errorf("BERT-L falcon overhead = %+.1f%%, want ≈100%%", o)
	}
	// Overhead correlates with parameter count (paper §V-C-2).
	if !(falcon("BERT-L") > falcon("BERT") && falcon("BERT") > falcon("ResNet-50")) {
		t.Errorf("overhead not ordered by model size: BERT-L=%+.1f%% BERT=%+.1f%% ResNet=%+.1f%%",
			falcon("BERT-L"), falcon("BERT"), falcon("ResNet-50"))
	}
	// Hybrid also pays the PCIe price for BERT-large.
	if o := data["BERT-L"]["hybridGPUs"]; o < 30 {
		t.Errorf("BERT-L hybrid overhead = %+.1f%%, want substantial", o)
	}
}

// TestFigure12Shape: falcon PCIe traffic ordered by model size;
// BERT-large ≈ 76 GB/s, ≈19x MobileNetV2, ≈7x ResNet-50.
func TestFigure12Shape(t *testing.T) {
	s := quickSession()
	data, err := Figure12Data(s)
	if err != nil {
		t.Fatal(err)
	}
	f := func(name string) float64 { return data[name]["falconGPUs"] }
	if v := f("BERT-L"); v < 55 || v > 95 {
		t.Errorf("BERT-L falcon traffic = %.1f GB/s, want ≈76", v)
	}
	if v := f("MobileNetV2"); v < 2 || v > 9 {
		t.Errorf("MobileNetV2 falcon traffic = %.1f GB/s, want ≈4", v)
	}
	if v := f("ResNet-50"); v < 7 || v > 17 {
		t.Errorf("ResNet-50 falcon traffic = %.1f GB/s, want ≈11", v)
	}
	if r := f("BERT-L") / f("MobileNetV2"); r < 10 || r > 28 {
		t.Errorf("BERT-L/MobileNet traffic ratio = %.1f, want ≈19", r)
	}
	if r := f("BERT-L") / f("ResNet-50"); r < 4.5 || r > 10 {
		t.Errorf("BERT-L/ResNet traffic ratio = %.1f, want ≈7", r)
	}
	// Traffic increases with model size across the board.
	order := []string{"MobileNetV2", "ResNet-50", "YOLOv5-L", "BERT", "BERT-L"}
	for i := 1; i < len(order); i++ {
		if f(order[i]) <= f(order[i-1]) {
			t.Errorf("traffic not increasing: %s (%.1f) <= %s (%.1f)",
				order[i], f(order[i]), order[i-1], f(order[i-1]))
		}
	}
}

// TestFigure15Shape: NVMe accelerates the big checkpointers (BERT, YOLO);
// small vision models barely move; falconNVMe tracks localNVMe closely.
func TestFigure15Shape(t *testing.T) {
	s := quickSession()
	data, err := Figure15Data(s)
	if err != nil {
		t.Fatal(err)
	}
	if v := data["BERT-L"]["localNVMe"]; v > -2 {
		t.Errorf("BERT-L localNVMe change = %+.1f%%, want clearly negative (faster)", v)
	}
	if v := data["YOLOv5-L"]["localNVMe"]; v > -0.5 {
		t.Errorf("YOLOv5-L localNVMe change = %+.1f%%, want negative (faster)", v)
	}
	if v := data["MobileNetV2"]["localNVMe"]; v < -6 || v > 3 {
		t.Errorf("MobileNetV2 localNVMe change = %+.1f%%, want near zero", v)
	}
	// Falcon-attached NVMe ≈ local NVMe (small switching overhead).
	for _, w := range []string{"YOLOv5-L", "BERT", "BERT-L"} {
		gap := data[w]["falconNVMe"] - data[w]["localNVMe"]
		if gap < -3 || gap > 5 {
			t.Errorf("%s falconNVMe vs localNVMe gap = %+.1f pts, want small", w, gap)
		}
	}
}

// TestFigure16Shape: FP16 >50% faster than FP32 everywhere (>70% on
// falcon); DDP beats DP; sharding lifts batch 6→10 and throughput further.
func TestFigure16Shape(t *testing.T) {
	s := quickSession()
	rows, err := Figure16Data(s)
	if err != nil {
		t.Fatal(err)
	}
	get := func(label, cfg string) SoftOptResult {
		for _, r := range rows {
			if r.Label == label && r.Config == cfg {
				return r
			}
		}
		t.Fatalf("missing %s/%s", label, cfg)
		return SoftOptResult{}
	}
	for _, cfg := range []string{"localGPUs", "falconGPUs"} {
		fp32 := get("DDP-FP32", cfg).PerSampleMs
		fp16 := get("DDP-FP16", cfg).PerSampleMs
		speedup := fp32/fp16 - 1
		if speedup < 0.5 {
			t.Errorf("%s: FP16 speedup %.0f%%, want >50%%", cfg, speedup*100)
		}
		if cfg == "falconGPUs" && speedup < 0.7 {
			t.Errorf("falcon FP16 speedup %.0f%%, want >70%%", speedup*100)
		}
		dp := get("DP-FP16", cfg).PerSampleMs
		ddp := get("DDP-FP16", cfg).PerSampleMs
		if dp <= ddp {
			t.Errorf("%s: DP (%.1f) should be slower than DDP (%.1f)", cfg, dp, ddp)
		}
		sharded := get("DDP-FP16-sharded(b10)", cfg)
		if sharded.BatchPerGPU != 10 {
			t.Errorf("%s: sharded batch = %d, want 10", cfg, sharded.BatchPerGPU)
		}
		if sharded.PerSampleMs >= ddp {
			t.Errorf("%s: sharding (%.1f ms/sample) should beat plain DDP (%.1f)",
				cfg, sharded.PerSampleMs, ddp)
		}
	}
	// DDP gain over DP is largest on local GPUs (paper: >80% locally).
	dpGainLocal := get("DP-FP32", "localGPUs").PerSampleMs/get("DDP-FP32", "localGPUs").PerSampleMs - 1
	if dpGainLocal < 0.2 {
		t.Errorf("local DDP-vs-DP gain = %.0f%%, want substantial", dpGainLocal*100)
	}
}

// TestFigure10And13Shapes: GPU util high everywhere; CPU vision > NLP;
// memory-access share lower on Falcon configs (iterations stretch).
func TestFigure10And13Shapes(t *testing.T) {
	s := quickSession()
	if _, err := Figure10(s); err != nil {
		t.Fatal(err)
	}
	resLocal, err := s.RunOpts(gpuConfigs()[0], benchmarkByNameT(t, "BERT-L"), fp16DDP())
	if err != nil {
		t.Fatal(err)
	}
	resFalcon, err := s.RunOpts(gpuConfigs()[2], benchmarkByNameT(t, "BERT-L"), fp16DDP())
	if err != nil {
		t.Fatal(err)
	}
	if resLocal.AvgGPUUtil < 0.8 {
		t.Errorf("BERT-L local GPU util = %.0f%%, want >80%%", resLocal.AvgGPUUtil*100)
	}
	if resFalcon.MemAccessFrac >= resLocal.MemAccessFrac {
		t.Errorf("mem-access share should drop on falcon: local %.1f%% falcon %.1f%%",
			resLocal.MemAccessFrac*100, resFalcon.MemAccessFrac*100)
	}
}

func benchmarkByNameT(t *testing.T, name string) dlmodel.Workload {
	t.Helper()
	wl, err := dlmodel.BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func TestExtensionsRender(t *testing.T) {
	s := quickSession()
	for _, e := range Extensions() {
		out, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(strings.TrimSpace(out)) == 0 {
			t.Fatalf("%s produced empty report", e.ID)
		}
		t.Logf("%s: %s\n%s", e.ID, e.Title, out)
	}
}

// TestAblationShapes pins the ablations' directional findings.
func TestAblationShapes(t *testing.T) {
	s := quickSession()
	// A1: fewer buckets expose more communication.
	one, err := s.RunOpts(gpuConfigs()[2], benchmarkByNameT(t, "BERT-L"),
		train.Options{Precision: gpu.FP16, Buckets: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := s.RunOpts(gpuConfigs()[2], benchmarkByNameT(t, "BERT-L"),
		train.Options{Precision: gpu.FP16, Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	if one.AvgIter <= eight.AvgIter {
		t.Errorf("1 bucket (%v) should be slower than 8 buckets (%v)", one.AvgIter, eight.AvgIter)
	}
	// A4: single-drawer packing avoids host crossings.
	twoDrawer, err := s.RunOpts(gpuConfigs()[2], benchmarkByNameT(t, "BERT-L"), fp16DDP())
	if err != nil {
		t.Fatal(err)
	}
	single := gpuConfigs()[2]
	single.Name = "falconGPUs-1drawer"
	single.SingleDrawer = true
	oneDrawer, err := s.RunOpts(single, benchmarkByNameT(t, "BERT-L"), fp16DDP())
	if err != nil {
		t.Fatal(err)
	}
	if oneDrawer.AvgIter >= twoDrawer.AvgIter {
		t.Errorf("single drawer (%v) should beat 2x4 layout (%v) for ring traffic",
			oneDrawer.AvgIter, twoDrawer.AvgIter)
	}
}

// TestAdvancedModeIsolation: concurrent tenants on one drawer train as
// fast as solo tenants (the X1 extension's claim).
func TestAdvancedModeIsolation(t *testing.T) {
	out, err := ExtensionAdvancedMode(quickSession())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "+0.0%") {
		t.Errorf("expected ~0%% interference, got:\n%s", out)
	}
}
