package experiments

import (
	"strings"
	"testing"
	"time"

	"composable/internal/faults"
	"composable/internal/gpu"
	"composable/internal/orchestrator"
	"composable/internal/scengen"
)

func TestRecoveryExperimentsRender(t *testing.T) {
	s := NewSession(Quick)
	for _, e := range RecoveryExperiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatalf("%s produced empty report", e.ID)
			}
		})
	}
}

// TestR1CheckpointIntervalTradeoff asserts R1's verdict from the
// simulated data itself: fault-free, the fewest checkpoints win (they are
// pure overhead); under a mid-run device fault, the finest checkpoint
// cadence beats the coarsest because it loses less work.
func TestR1CheckpointIntervalTradeoff(t *testing.T) {
	fleet := func(epochs, iters int) scengen.FleetScenario {
		return scengen.FleetScenario{
			Hosts: 1, GPUs: 4, Policy: "drawer", AttachLatency: -1,
			Jobs: []orchestrator.JobSpec{{
				GPUs: 4, Workload: "ResNet-50", Precision: gpu.FP16,
				Epochs: epochs, ItersPerEpoch: iters, CheckpointsPerEpoch: 1,
			}},
		}
	}
	cleanRun := func(epochs, iters int) time.Duration {
		out, err := scengen.RunFleet(fleet(epochs, iters))
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Err(); err != nil {
			t.Fatal(err)
		}
		return out.Result.Makespan
	}
	clean1, clean8 := cleanRun(1, 24), cleanRun(8, 3)
	if clean1 > clean8 {
		t.Errorf("fault-free: 1×24 (%v) should not be slower than 8×3 (%v): checkpoints are overhead", clean1, clean8)
	}

	faultAt := clean1 * 3 / 5
	faultyRun := func(epochs, iters int) *orchestrator.FleetResult {
		sc := scengen.FaultScenario{
			Fleet: fleet(epochs, iters),
			Plan: faults.Plan{Events: []faults.Event{
				{At: faultAt, Kind: faults.KindGPU, Target: 0, Repair: 500 * time.Millisecond},
			}},
		}
		out, err := scengen.RunFaultyFleet(sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Err(); err != nil {
			t.Fatal(err)
		}
		return out.Result
	}
	coarse, fine := faultyRun(1, 24), faultyRun(8, 3)
	if coarse.Kills != 1 || fine.Kills != 1 {
		t.Fatalf("fault must kill both runs once (coarse %d, fine %d)", coarse.Kills, fine.Kills)
	}
	if fine.Jobs[0].EpochsDone == 0 {
		t.Error("fine cadence carried no checkpointed epochs across the kill")
	}
	if coarse.Jobs[0].EpochsDone != 0 {
		t.Errorf("coarse cadence had no epoch boundary before the fault, carried %d", coarse.Jobs[0].EpochsDone)
	}
	if fine.Makespan >= coarse.Makespan {
		t.Errorf("under the fault, 8×3 (%v) must beat 1×24 (%v): less work lost", fine.Makespan, coarse.Makespan)
	}
	if fine.LostGPUSeconds >= coarse.LostGPUSeconds {
		t.Errorf("fine cadence lost %v GPU-s, coarse %v: cadence should bound the loss",
			fine.LostGPUSeconds, coarse.LostGPUSeconds)
	}
}

// TestR2DynamicBeatsStaticUnderFlaps is the PR's acceptance assertion:
// from simulated data, dynamic recomposition with rescheduling beats the
// static partition on goodput when a drawer flaps mid-burst.
func TestR2DynamicBeatsStaticUnderFlaps(t *testing.T) {
	out, err := RecoveryChassisFlaps(quickSession())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "more goodput") {
		t.Fatalf("R2 report missing the goodput verdict:\n%s", out)
	}
	// Re-derive the numbers instead of parsing the report.
	stream := burstyStream(Quick.ItersPerEpoch)
	run := func(policy string) *orchestrator.FleetResult {
		sc := scengen.FaultScenario{
			Fleet: scengen.FleetScenario{
				Hosts: 3, GPUs: 12, Preattach: true, Policy: policy,
				AttachLatency: orchestrator.DefaultAttachLatency, Jobs: stream,
			},
			Plan: faults.Plan{Events: []faults.Event{
				{At: 2 * time.Second, Kind: faults.KindDrawer, Target: 0, Repair: 6 * time.Second},
			}},
		}
		res, err := faultyFleetRun(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static, dynamic := run("static"), run("drawer")
	if static.Kills == 0 || dynamic.Kills == 0 {
		t.Fatalf("the flap must kill jobs under both policies (static %d, dynamic %d)", static.Kills, dynamic.Kills)
	}
	if dynamic.Goodput <= static.Goodput {
		t.Errorf("dynamic goodput %.3f not above static %.3f under chassis flaps",
			dynamic.Goodput, static.Goodput)
	}
	if dynamic.Makespan >= static.Makespan {
		t.Errorf("dynamic makespan %v not below static %v under chassis flaps",
			dynamic.Makespan, static.Makespan)
	}
}

// TestR3DegradationMonotone asserts R3's physics from data: deeper link
// degradation never speeds training up, DDP overlap keeps a half-speed
// link below the naive 2× hit, and a starved link clearly slows the run.
func TestR3DegradationMonotone(t *testing.T) {
	iters, err := MeasureDegradedLink(quickSession(), []float64{1, 0.5, 0.25, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(iters); i++ {
		if iters[i] < iters[i-1] {
			t.Errorf("deeper degradation sped training up: %v after %v", iters[i], iters[i-1])
		}
	}
	if ratio := iters[1].Seconds() / iters[0].Seconds(); ratio >= 2 {
		t.Errorf("half-speed link slowed ×%.2f: DDP overlap should absorb part of it", ratio)
	}
	if ratio := iters[3].Seconds() / iters[0].Seconds(); ratio < 2 {
		t.Errorf("a 10%% link slowed only ×%.2f: degradation not biting", ratio)
	}
}
