// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): Tables I–IV and Figures 9–16. Each experiment renders a
// text report shaped like the paper's artifact and exposes structured
// results for tests and benchmarks.
//
// Experiments share training runs through a Session: Figures 10–14 are
// different views of the same fifteen (workload × GPU-configuration) runs,
// exactly as in the paper.
package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/sim"
	"composable/internal/train"
)

// Scale sets how much of each training run is simulated. Simulated epochs
// are shortened subsets of the real ones (per-epoch fixed costs are scaled
// accordingly by the training engine), so Quick and Standard produce the
// same shapes at different statistical quality.
type Scale struct {
	Name          string
	ItersPerEpoch int
	// MaxEpochs caps the paper's epoch counts (20-epoch ImageNet runs
	// add nothing to the measured ratios).
	MaxEpochs      int
	SampleInterval time.Duration
}

// Predefined scales.
var (
	Quick    = Scale{Name: "quick", ItersPerEpoch: 10, MaxEpochs: 2, SampleInterval: 100 * time.Millisecond}
	Standard = Scale{Name: "standard", ItersPerEpoch: 30, MaxEpochs: 3, SampleInterval: 100 * time.Millisecond}
)

func (s Scale) epochs(paper int) int {
	if paper > s.MaxEpochs {
		return s.MaxEpochs
	}
	return paper
}

// Session caches training runs across experiments. It is safe for
// concurrent use: experiments running on separate goroutines that need the
// same (configuration × workload × options) run share one in-flight
// train.Run — the first caller executes it, later callers block on the
// same entry and receive the same *train.Result (singleflight), so a run
// is never raced or duplicated.
type Session struct {
	Scale Scale

	mu    sync.Mutex
	cache map[string]*sessionRun
	stats Stats
}

// sessionRun is one cached-or-in-flight training run. done is closed once
// res/err are set; waiters block on it without holding the session lock.
type sessionRun struct {
	done chan struct{}
	res  *train.Result
	err  error
}

// Stats counts the session's cache behavior — the runner surfaces these as
// telemetry so a parallel suite can show how much work deduplication saved.
type Stats struct {
	// TrainRuns is the number of training runs actually executed.
	TrainRuns int
	// CacheHits is the number of requests served from a completed run.
	CacheHits int
	// Joins is the number of requests that blocked on a run another
	// goroutine had in flight (the deduplicated races).
	Joins int
}

// NewSession creates an empty session at the given scale.
func NewSession(scale Scale) *Session {
	return &Session{Scale: scale, cache: make(map[string]*sessionRun)}
}

// Stats returns a snapshot of the session's cache counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// GPU configurations used by the GPU-focused figures (Table III top).
func gpuConfigs() []cluster.Config {
	return []cluster.Config{
		cluster.LocalGPUsConfig(), cluster.HybridGPUsConfig(), cluster.FalconGPUsConfig(),
	}
}

// storageConfigs used by Figure 15 (Table III bottom; localGPUs is the
// baseline).
func storageConfigs() []cluster.Config {
	return []cluster.Config{cluster.LocalNVMeConfig(), cluster.FalconNVMeConfig()}
}

// Run returns the (cached) result of training w on cfg with default
// options at the session scale.
func (s *Session) Run(cfg cluster.Config, w dlmodel.Workload) (*train.Result, error) {
	return s.RunOpts(cfg, w, train.Options{})
}

// RunOpts is Run with strategy/precision overrides. opts.Workload,
// ItersPerEpoch, Epochs and SampleInterval are filled from the session.
func (s *Session) RunOpts(cfg cluster.Config, w dlmodel.Workload, opts train.Options) (*train.Result, error) {
	opts.Workload = w
	if opts.ItersPerEpoch == 0 {
		opts.ItersPerEpoch = s.Scale.ItersPerEpoch
	}
	if opts.Epochs == 0 {
		opts.Epochs = s.Scale.epochs(w.Epochs)
	}
	if opts.SampleInterval == 0 {
		opts.SampleInterval = s.Scale.SampleInterval
	}
	// The key covers the full configuration struct and every
	// outcome-relevant option.
	key := fmt.Sprintf("%+v|%s", cfg, opts.Fingerprint())

	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		// Completed entries return immediately (the channel is closed);
		// in-flight ones make this caller a join on the leader's run.
		select {
		case <-r.done:
			s.stats.CacheHits++
		default:
			s.stats.Joins++
		}
		s.mu.Unlock()
		<-r.done
		return r.res, r.err
	}
	r := &sessionRun{done: make(chan struct{})}
	s.cache[key] = r
	s.stats.TrainRuns++
	s.mu.Unlock()

	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cfg)
	if err == nil {
		r.res, r.err = train.Run(sys, opts)
	} else {
		r.err = err
	}
	if r.err != nil {
		// Failed runs are not cached: evict so a later call may retry.
		s.mu.Lock()
		delete(s.cache, key)
		s.mu.Unlock()
	}
	close(r.done)
	return r.res, r.err
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Run renders the report at the session's scale.
	Run func(s *Session) (string, error)
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Table I: Software Stack Details", func(s *Session) (string, error) { return TableI(), nil }},
		{"T2", "Table II: Characteristics of the Evaluated DL Benchmarks", func(s *Session) (string, error) { return TableIIReport(), nil }},
		{"T3", "Table III: Composable Host Configurations", func(s *Session) (string, error) { return TableIIIReport(), nil }},
		{"T4", "Table IV: GPU-GPU Bandwidth, Latency, and Protocol", func(s *Session) (string, error) { return TableIVReport() }},
		{"F9", "Figure 9: GPU Utilization Patterns", Figure9},
		{"F10", "Figure 10: GPU Performance on the Composable Configurations", Figure10},
		{"F11", "Figure 11: Training-Time Change vs localGPUs (PCIe switching)", Figure11},
		{"F12", "Figure 12: PCIe Data Transfer Rate for Falcon-attached GPUs", Figure12},
		{"F13", "Figure 13: CPU Utilization", Figure13},
		{"F14", "Figure 14: System Memory Utilization", Figure14},
		{"F15", "Figure 15: Training-Time Change vs localGPUs (storage)", Figure15},
		{"F16", "Figure 16: Software-level Optimizations on BERT-large", Figure16},
	}
}

// registry is the full experiment catalog — paper artifacts then
// extensions — indexed once instead of rebuilt on every lookup.
type registry struct {
	order []Experiment
	byID  map[string]Experiment
	ids   []string // paper artifacts only, in paper order
}

var catalog = sync.OnceValue(func() *registry {
	r := &registry{byID: make(map[string]Experiment)}
	r.order = append(append(append(All(), Extensions()...), FleetExperiments()...), RecoveryExperiments()...)
	for _, e := range r.order {
		r.byID[e.ID] = e
	}
	for _, e := range All() {
		r.ids = append(r.ids, e.ID)
	}
	return r
})

// Registry returns every experiment — paper artifacts then extensions — in
// paper order. The returned slice is the caller's to mutate.
func Registry() []Experiment {
	return append([]Experiment(nil), catalog().order...)
}

// ByID finds an experiment among the paper artifacts and the extensions.
func ByID(id string) (Experiment, error) {
	if e, ok := catalog().byID[id]; ok {
		return e, nil
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have T1-T4, F9-F16, A1-A4, X1-X2, S1-S5, R1-R3)", id)
}

// IDs lists the paper-artifact experiment IDs in paper order.
func IDs() []string {
	return append([]string(nil), catalog().ids...)
}

// PercentChange is the paper's Figure 11/15 metric: how much slower (+) or
// faster (−) a configuration trains than the localGPUs baseline.
func PercentChange(base, other *train.Result) float64 {
	return (other.TotalTime.Seconds()/base.TotalTime.Seconds() - 1) * 100
}

// sortedKeys helps render deterministic maps.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fp16DDP is the default software configuration of §V-C: all headline
// experiments use mixed precision and DistributedDataParallel.
func fp16DDP() train.Options {
	return train.Options{Precision: gpu.FP16, Strategy: train.DDP}
}
