package experiments

import (
	"fmt"
	"strings"
	"time"

	"composable/internal/cluster"
	"composable/internal/collective"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/sim"
	"composable/internal/train"
	"composable/internal/units"
)

// Extensions are experiments beyond the paper's figures: ablations of the
// simulator/design choices README.md calls out (A1–A4), the advanced-mode
// multi-tenant study the paper lists as future work (X1), and the
// heterogeneous-accelerator swap (X2).
func Extensions() []Experiment {
	return []Experiment{
		{"A1", "Ablation: DDP gradient bucket count (overlap granularity)", AblationBuckets},
		{"A2", "Ablation: collective ring channels (counter-rotation)", AblationChannels},
		{"A3", "Ablation: ring topology awareness (host crossings)", AblationRingOrder},
		{"A4", "Ablation: drawer packing (1x8 vs 2x4 Falcon GPUs)", AblationDrawerPacking},
		{"X1", "Extension: advanced-mode multi-tenant isolation", ExtensionAdvancedMode},
		{"X2", "Extension: heterogeneous accelerators (P100 in the chassis)", ExtensionHeterogeneous},
	}
}

// AblationBuckets sweeps the DDP bucket count for BERT-large on Falcon
// GPUs: more buckets emit gradients earlier and hide more communication,
// the mechanism behind DDP's advantage in Figure 16.
func AblationBuckets(s *Session) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "BERT-large on falconGPUs: DDP bucket-count sweep\n")
	fmt.Fprintf(&b, "%8s %14s %14s\n", "buckets", "avg iter", "vs 4 buckets")
	var base time.Duration
	for _, buckets := range []int{1, 2, 4, 8} {
		res, err := s.RunOpts(cluster.FalconGPUsConfig(), dlmodel.BERTLargeWorkload(),
			train.Options{Precision: gpu.FP16, Buckets: buckets})
		if err != nil {
			return "", err
		}
		if buckets == 4 {
			base = res.AvgIter
		}
		fmt.Fprintf(&b, "%8d %14v", buckets, res.AvgIter.Round(time.Microsecond))
		if base > 0 {
			fmt.Fprintf(&b, " %+13.1f%%", (res.AvgIter.Seconds()/base.Seconds()-1)*100)
		}
		fmt.Fprintln(&b)
	}
	return b.String(), nil
}

// AblationChannels compares one ring against counter-rotating pairs for
// BERT-large on Falcon GPUs. The expected (and validating) result here is
// a null effect: both ring directions already share the host-adapter
// bottleneck, so k channels each move 1/k of the payload at 1/k of the
// rate. On the NVLink mesh, by contrast, ring edges are dedicated
// full-duplex links and the counter-rotating pair doubles bandwidth (see
// collective.TestChannelCountEffects) — which is why the communicator
// defaults to two.
func AblationChannels(s *Session) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "BERT-large on falconGPUs: collective channel sweep\n")
	fmt.Fprintf(&b, "(expected: invariant here — the host-adapter bottleneck is shared\n")
	fmt.Fprintf(&b, " by both ring directions; on NVLink, 2 channels double bandwidth)\n")
	fmt.Fprintf(&b, "%9s %14s\n", "channels", "avg iter")
	for _, ch := range []int{1, 2, 4} {
		res, err := s.RunOpts(cluster.FalconGPUsConfig(), dlmodel.BERTLargeWorkload(),
			train.Options{Precision: gpu.FP16, Channels: ch})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%9d %14v\n", ch, res.AvgIter.Round(time.Microsecond))
	}
	return b.String(), nil
}

// AblationRingOrder measures an all-reduce on the hybrid system with the
// production topology-aware ring (local GPUs contiguous: two host
// crossings) against a naive interleaved ring (local/falcon alternating:
// eight crossings). The gap is why NCCL searches the topology graph.
func AblationRingOrder(s *Session) (string, error) {
	measure := func(naive bool) (time.Duration, error) {
		env := sim.NewEnv()
		sys, err := cluster.Compose(env, cluster.HybridGPUsConfig())
		if err != nil {
			return 0, err
		}
		var comm *collective.Communicator
		if naive {
			// l0 f0 l1 f1 ... : every edge crosses the host boundary.
			ring := []int{0, 4, 1, 5, 2, 6, 3, 7}
			comm, err = collective.NewWithRing(sys.Net, sys.GPUs, ring)
		} else {
			comm, err = collective.New(sys.Net, sys.GPUs)
		}
		if err != nil {
			return 0, err
		}
		var took time.Duration
		env.Go("bench", func(p *sim.Proc) {
			start := p.Now()
			comm.ExecAllReduce(p, 640*units.MB)
			took = p.Now() - start
		})
		if err := env.Run(); err != nil {
			return 0, err
		}
		return took, nil
	}
	aware, err := measure(false)
	if err != nil {
		return "", err
	}
	naive, err := measure(true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "640MB all-reduce on hybridGPUs (4 local + 4 falcon)\n")
	fmt.Fprintf(&b, "topology-aware ring (2 host crossings):  %v\n", aware.Round(time.Microsecond))
	fmt.Fprintf(&b, "naive interleaved ring (8 crossings):    %v  (%.1fx slower)\n",
		naive.Round(time.Microsecond), naive.Seconds()/aware.Seconds())
	return b.String(), nil
}

// AblationDrawerPacking compares the paper's Figure 6 layout (4 GPUs in
// each of two drawers, two host connections) against packing all eight
// GPUs into one drawer (one connection): §III-B's trade-off between
// host bandwidth and peer-to-peer locality, measured on BERT-large.
func AblationDrawerPacking(s *Session) (string, error) {
	single := cluster.FalconGPUsConfig()
	single.Name = "falconGPUs-1drawer"
	single.SingleDrawer = true
	var b strings.Builder
	fmt.Fprintf(&b, "BERT-large, 8 Falcon GPUs: drawer packing\n")
	for _, cfg := range []cluster.Config{cluster.FalconGPUsConfig(), single} {
		res, err := s.RunOpts(cfg, dlmodel.BERTLargeWorkload(), fp16DDP())
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-22s avg iter %v, falcon PCIe %.1f GB/s\n",
			cfg.Name, res.AvgIter.Round(time.Microsecond), res.FalconPCIeGBps)
	}
	fmt.Fprintf(&b, "One drawer keeps the all-reduce ring inside the PCIe switch\n")
	fmt.Fprintf(&b, "(no root-complex crossings), trading host-link bandwidth for\n")
	fmt.Fprintf(&b, "peer locality — the §III-B discussion, quantified.\n")
	return b.String(), nil
}

// ExtensionAdvancedMode runs two tenants concurrently, each owning four
// GPUs of the same Falcon drawer in advanced mode, and compares their
// training times against solo runs of identical four-GPU systems: the
// chassis's isolation claim, quantified. (Paper §VI lists evaluating
// advanced mode as future work.)
func ExtensionAdvancedMode(s *Session) (string, error) {
	iters := s.Scale.ItersPerEpoch
	type tenantSpec struct {
		w    dlmodel.Workload
		opts train.Options
	}
	tenants := []tenantSpec{
		{dlmodel.ResNet50Workload(), train.Options{Precision: gpu.FP16, Epochs: 2, ItersPerEpoch: iters}},
		{dlmodel.BERTBaseWorkload(), train.Options{Precision: gpu.FP16, Epochs: 2, ItersPerEpoch: iters}},
	}

	// Solo baselines: each tenant alone on a 4-GPU falcon system.
	solo := make([]time.Duration, len(tenants))
	for i, tn := range tenants {
		env := sim.NewEnv()
		cfg := cluster.Config{Name: "falcon4", FalconGPUs: 4, Storage: cluster.StorageBaseline, SingleDrawer: true}
		sys, err := cluster.Compose(env, cfg)
		if err != nil {
			return "", err
		}
		opts := tn.opts
		opts.Workload = tn.w
		res, err := train.Run(sys, opts)
		if err != nil {
			return "", err
		}
		solo[i] = res.TotalTime
	}

	// Shared run: both tenants concurrently on one chassis drawer.
	env := sim.NewEnv()
	systems, ch, err := cluster.ComposeShared(env, 2, 4)
	if err != nil {
		return "", err
	}
	jobs := make([]*train.Job, len(tenants))
	for i, tn := range tenants {
		opts := tn.opts
		opts.Workload = tn.w
		job, err := train.Start(systems[i], opts)
		if err != nil {
			return "", err
		}
		jobs[i] = job
	}
	if err := env.Run(); err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Advanced mode: two tenants share one drawer (4 GPUs each)\n")
	fmt.Fprintf(&b, "%-12s %-12s %14s %14s %14s\n", "tenant", "workload", "solo", "shared", "interference")
	for i, tn := range tenants {
		res, err := jobs[i].Collect()
		if err != nil {
			return "", err
		}
		interference := (res.TotalTime.Seconds()/solo[i].Seconds() - 1) * 100
		fmt.Fprintf(&b, "%-12s %-12s %14v %14v %+13.1f%%\n",
			fmt.Sprintf("host%d", i+1), tn.w.Name,
			solo[i].Round(time.Millisecond), res.TotalTime.Round(time.Millisecond), interference)
	}
	fmt.Fprintf(&b, "\nChassis control plane after the run: %d devices attached across %d hosts\n",
		ch.Summary().Attached, 2)
	fmt.Fprintf(&b, "Per-tenant slot links and host adapters are disjoint, so the\n")
	fmt.Fprintf(&b, "drawer partitions cleanly: interference stays within noise.\n")
	return b.String(), nil
}

// ExtensionHeterogeneous swaps the chassis V100s for the P100s the test
// bed also holds (§V-A-1) and measures ResNet-50 — the paper's §VI future
// work of "incorporating other accelerators into the composable systems".
// The chassis absorbs the change with no re-cabling: only the slot
// inventory differs.
func ExtensionHeterogeneous(s *Session) (string, error) {
	v100 := cluster.FalconGPUsConfig()
	p100 := cluster.FalconGPUsConfig()
	p100.Name = "falconGPUs-P100"
	p100.FalconGPUModel = "P100"
	var b strings.Builder
	fmt.Fprintf(&b, "ResNet-50 FP16 on chassis-attached accelerators\n")
	var times []time.Duration
	for _, cfg := range []cluster.Config{v100, p100} {
		res, err := s.RunOpts(cfg, dlmodel.ResNet50Workload(), fp16DDP())
		if err != nil {
			return "", err
		}
		times = append(times, res.AvgIter)
		fmt.Fprintf(&b, "%-20s avg iter %v (GPU util %.0f%%)\n",
			cfg.Name, res.AvgIter.Round(time.Microsecond), res.AvgGPUUtil*100)
	}
	fmt.Fprintf(&b, "P100 (no tensor cores) is %.1fx slower per iteration; the\n",
		times[1].Seconds()/times[0].Seconds())
	fmt.Fprintf(&b, "composable chassis swaps accelerator generations without any\n")
	fmt.Fprintf(&b, "host changes — the co-design use case of §I.\n")
	return b.String(), nil
}
