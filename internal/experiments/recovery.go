package experiments

import (
	"fmt"
	"strings"
	"time"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/faults"
	"composable/internal/gpu"
	"composable/internal/invariant"
	"composable/internal/orchestrator"
	"composable/internal/scengen"
	"composable/internal/sim"
	"composable/internal/train"
	"composable/internal/units"
)

// RecoveryExperiments is the fault/recovery experiment family (R1–R3):
// the composable test bed exercised under the failures its own
// architecture invites — dying chassis GPUs, drawer hot-unplugs,
// degraded Falcon links — with the checkpoint/restart and rescheduling
// machinery measured rather than assumed. Every run executes under the
// full fault-aware invariant probe set; a violation fails the experiment.
func RecoveryExperiments() []Experiment {
	return []Experiment{
		{"R1", "Recovery: checkpoint interval vs device MTBF", RecoveryCheckpointInterval},
		{"R2", "Recovery: static vs dynamic placement under chassis flaps", RecoveryChassisFlaps},
		{"R3", "Recovery: degraded Falcon link impact on DDP throughput", RecoveryDegradedLink},
	}
}

// faultyFleetRun executes a fault scenario and fails on any invariant
// violation, so the R experiments cannot publish numbers from a broken
// run.
func faultyFleetRun(sc scengen.FaultScenario) (*orchestrator.FleetResult, error) {
	out, err := scengen.RunFaultyFleet(sc)
	if err != nil {
		return nil, err
	}
	if err := out.Err(); err != nil {
		return nil, err
	}
	return out.Result, nil
}

// RecoveryCheckpointInterval (R1) trains the same fixed work budget (24
// iterations of ResNet-50 on 4 chassis GPUs) split into 1, 2, 4 and 8
// epochs — the checkpoint cadence, since every epoch boundary writes a
// checkpoint and restart resumes from the last one — first fault-free,
// then with a GPU dying at ~60% of the run. Frequent checkpoints cost
// storage-tier writes up front but bound the work a fault destroys: the
// classic checkpoint-interval trade, measured end to end through the
// scheduler, the storage tier and the restore path.
func RecoveryCheckpointInterval(s *Session) (string, error) {
	splits := []struct{ epochs, iters int }{{1, 24}, {2, 12}, {4, 6}, {8, 3}}
	fleet := func(epochs, iters int) scengen.FleetScenario {
		return scengen.FleetScenario{
			Hosts: 1, GPUs: 4, Policy: "drawer", AttachLatency: -1,
			Jobs: []orchestrator.JobSpec{{
				GPUs: 4, Workload: "ResNet-50", Precision: gpu.FP16,
				Epochs: epochs, ItersPerEpoch: iters, CheckpointsPerEpoch: 1,
			}},
		}
	}

	// Fault-free baselines; the 1-epoch split also anchors the fault time.
	clean := make([]time.Duration, len(splits))
	for i, sp := range splits {
		out, err := scengen.RunFleet(fleet(sp.epochs, sp.iters))
		if err != nil {
			return "", err
		}
		if err := out.Err(); err != nil {
			return "", err
		}
		clean[i] = out.Result.Makespan
	}
	faultAt := clean[0] * 3 / 5

	var b strings.Builder
	fmt.Fprintf(&b, "Fixed work (24 iters, ResNet-50 ×4 GPUs), checkpoint every epoch boundary;\n")
	fmt.Fprintf(&b, "fault: the job's GPU dies at %v (repaired 500ms later), restart resumes\n", faultAt.Round(time.Millisecond))
	fmt.Fprintf(&b, "from the last checkpoint.\n\n")
	fmt.Fprintf(&b, "%8s %14s %14s %12s %12s\n", "epochs", "fault-free", "faulty", "lost GPU-s", "ckpt carry")
	faulty := make([]time.Duration, len(splits))
	for i, sp := range splits {
		sc := scengen.FaultScenario{
			Fleet: fleet(sp.epochs, sp.iters),
			Plan: faults.Plan{Events: []faults.Event{
				{At: faultAt, Kind: faults.KindGPU, Target: 0, Repair: 500 * time.Millisecond},
			}},
		}
		res, err := faultyFleetRun(sc)
		if err != nil {
			return "", err
		}
		j := res.Jobs[0]
		faulty[i] = res.Makespan
		fmt.Fprintf(&b, "%8d %14v %14v %12.1f %9d ep\n", sp.epochs,
			clean[i].Round(time.Millisecond), res.Makespan.Round(time.Millisecond),
			j.LostGPUSeconds, j.EpochsDone)
	}
	// Data-derived verdict.
	bestClean, bestFaulty := 0, 0
	for i := range splits {
		if clean[i] < clean[bestClean] {
			bestClean = i
		}
		if faulty[i] < faulty[bestFaulty] {
			bestFaulty = i
		}
	}
	fmt.Fprintf(&b, "\nFault-free, %d epoch(s) wins (%v): checkpoints are pure overhead.\n",
		splits[bestClean].epochs, clean[bestClean].Round(time.Millisecond))
	fmt.Fprintf(&b, "Under the fault, %d epochs wins (%v): a shorter checkpoint interval\n",
		splits[bestFaulty].epochs, faulty[bestFaulty].Round(time.Millisecond))
	fmt.Fprintf(&b, "trades write overhead for less work lost — the optimal interval\n")
	fmt.Fprintf(&b, "shrinks as MTBF shrinks.\n")
	return b.String(), nil
}

// flappyPlan is R2's fault schedule: drawer 0 hot-unplugs mid-burst and
// returns 6 seconds later — the chassis flap a composable fabric must
// survive.
func flappyPlan() faults.Plan {
	return faults.Plan{Events: []faults.Event{
		{At: 2 * time.Second, Kind: faults.KindDrawer, Target: 0, Repair: 6 * time.Second},
	}}
}

// RecoveryChassisFlaps (R2) replays S1's bursty stream on the 3-host ×
// 12-GPU fleet while drawer 0 flaps, under the static per-host partition
// and under dynamic recomposition with rescheduling. Static tenants whose
// share sits in the unplugged drawer can only wait for the re-plug;
// dynamic placement reschedules the killed jobs onto drawer 1's surviving
// GPUs and keeps delivering. The verdict metric is goodput — useful
// GPU-seconds per second of makespan — because under faults raw
// utilization also counts work that a kill then throws away.
func RecoveryChassisFlaps(s *Session) (string, error) {
	stream := burstyStream(s.Scale.ItersPerEpoch)
	static := scengen.FaultScenario{
		Fleet: scengen.FleetScenario{
			Hosts: 3, GPUs: 12, Preattach: true, Policy: "static",
			AttachLatency: orchestrator.DefaultAttachLatency, Jobs: stream,
		},
		Plan: flappyPlan(),
	}
	dynamic := static
	dynamic.Fleet.Policy = "drawer"
	dynamic.Plan = flappyPlan()

	sres, err := faultyFleetRun(static)
	if err != nil {
		return "", err
	}
	dres, err := faultyFleetRun(dynamic)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Bursty stream (%d jobs) on 3 hosts × 12 GPUs; drawer 0 (8 GPUs)\n", len(stream))
	fmt.Fprintf(&b, "hot-unplugs at 2s and returns at 8s.\n\n")
	fmt.Fprintf(&b, "%-22s %12s %9s %6s %7s %10s %12s\n",
		"composition", "makespan", "goodput", "kills", "failed", "lost", "recomps")
	for _, r := range []*orchestrator.FleetResult{sres, dres} {
		label := "static partition"
		if r.Policy != "static" {
			label = "dynamic (" + r.Policy + ")"
		}
		fmt.Fprintf(&b, "%-22s %12v %7.2f/s %6d %7d %8.1fGs %12d\n", label,
			r.Makespan.Round(time.Millisecond), r.Goodput, r.Kills, r.FailedJobs,
			r.LostGPUSeconds, r.Recompositions)
	}
	gain := dres.Goodput/sres.Goodput - 1
	fmt.Fprintf(&b, "\nDynamic recomposition with rescheduling delivers %.0f%% more goodput\n", gain*100)
	fmt.Fprintf(&b, "under the flap: killed jobs restart from checkpoints on drawer 1's\n")
	fmt.Fprintf(&b, "GPUs while static tenants wait out the re-plug (fault timeline: %s).\n",
		dres.Track.Timeline(24, dres.Makespan))
	return b.String(), nil
}

// RecoveryDegradedLink (R3) trains BERT-large with DDP on eight chassis
// GPUs while one GPU's slot link runs degraded — the partially failed
// cable/retimer case, where the device is alive but slow. A ring
// all-reduce crosses every member's link, so one slow link gates every
// gradient bucket; the sweep measures how hard each degradation level
// hits end-to-end throughput and how much of it DDP's compute/comm
// overlap hides.
func RecoveryDegradedLink(s *Session) (string, error) {
	factors := []float64{1, 0.5, 0.25, 0.1}
	iters, err := MeasureDegradedLink(s, factors)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "BERT-large FP16 DDP on falconGPUs; GPU 0's slot link at a fraction\n")
	fmt.Fprintf(&b, "of its healthy capacity from t=0.\n\n")
	fmt.Fprintf(&b, "%8s %14s %14s\n", "link", "avg iter", "slowdown")
	for i, factor := range factors {
		fmt.Fprintf(&b, "%7.0f%% %14v %13.2fx\n", factor*100,
			iters[i].Round(time.Microsecond), iters[i].Seconds()/iters[0].Seconds())
	}
	overlapHidden := 1/factors[1] - iters[1].Seconds()/iters[0].Seconds()
	fmt.Fprintf(&b, "\nOne slow link gates the whole ring, but the slowdown stays below the\n")
	fmt.Fprintf(&b, "raw bandwidth loss (×%.1f at half speed vs ×2.0 naively — DDP overlaps\n",
		iters[1].Seconds()/iters[0].Seconds())
	fmt.Fprintf(&b, "%.1f× of it behind backward compute) until the link is starved.\n", overlapHidden)
	return b.String(), nil
}

// MeasureDegradedLink runs R3's sweep: BERT-large DDP on the falconGPUs
// topology with GPU 0's slot link scaled to each factor (1 = healthy),
// under the full invariant set, returning the average iteration time per
// factor. Exposed so tests can assert the physics on the numbers.
func MeasureDegradedLink(s *Session, factors []float64) ([]time.Duration, error) {
	iters := make([]time.Duration, len(factors))
	for i, factor := range factors {
		env := sim.NewEnv()
		sys, err := cluster.Compose(env, cluster.FalconGPUsConfig())
		if err != nil {
			return nil, err
		}
		inv := invariant.New()
		inv.Watch(sys)
		if factor < 1 {
			link := sys.FalconGPUPortLinks[0]
			healthy := sys.Net.Link(link)
			capAB, capBA := healthy.CapAtoB, healthy.CapBtoA
			inj := faults.NewInjector(env, faults.Plan{Events: []faults.Event{
				{At: time.Millisecond, Kind: faults.KindSlotLink, Target: 0, Factor: factor},
			}}, faults.Hooks{
				SlotLink: func(slot int, f float64) {
					sys.Net.SetLinkCapacity(link,
						units.BytesPerSec(float64(capAB)*f), units.BytesPerSec(float64(capBA)*f))
				},
			})
			inj.Arm()
		}
		opts := train.Options{
			Workload: dlmodel.BERTLargeWorkload(), Precision: gpu.FP16,
			Epochs: 1, ItersPerEpoch: s.Scale.ItersPerEpoch,
			SampleInterval: s.Scale.SampleInterval,
			Probe:          inv.TrainProbe(),
		}
		res, err := train.Run(sys, opts)
		if err != nil {
			return nil, err
		}
		inv.CheckResult(sys, res)
		if err := inv.Err(); err != nil {
			return nil, err
		}
		iters[i] = res.AvgIter
	}
	return iters, nil
}
