package experiments

import (
	"fmt"
	"strings"
	"time"

	"composable/internal/obs/analyze"
	"composable/internal/orchestrator"
	"composable/internal/scengen"
)

// FleetExperiments is the orchestrator experiment family (S1–S4): fleet
// scheduling studies on the multi-host testbed, beyond anything the paper
// measures — its §III-B advanced mode exercised as a serving system
// instead of a one-shot composition. Every run executes under the full
// fleet invariant probe set; a violation fails the experiment.
func FleetExperiments() []Experiment {
	return []Experiment{
		{"S1", "Fleet: static partitioning vs dynamic GPU recomposition", FleetStaticVsDynamic},
		{"S2", "Fleet: placement-policy shoot-out", FleetPolicyShootout},
		{"S3", "Fleet: arrival-rate saturation sweep", FleetSaturation},
		{"S4", "Fleet: pod locality under an oversubscribed spine", FleetPodLocality},
		{"S5", "Fleet: time attribution and SLO verdicts", FleetAttributionSLO},
	}
}

// fleetRun executes a scenario and fails on any invariant violation, so
// the S experiments cannot silently publish numbers from a broken run.
func fleetRun(sc scengen.FleetScenario) (*orchestrator.FleetResult, error) {
	out, err := scengen.RunFleet(sc)
	if err != nil {
		return nil, err
	}
	if err := out.Err(); err != nil {
		return nil, err
	}
	return out.Result, nil
}

// burstyStream is S1's workload: tenant 0 dumps a burst of five 4-GPU
// jobs at once (a deadline crunch), while tenants 1 and 2 each submit one
// small job later. Under a static per-host partition the burst serializes
// on tenant 0's fixed four GPUs while eight others idle; dynamic
// recomposition spreads it across the fleet.
func burstyStream(iters int) []orchestrator.JobSpec {
	var jobs []orchestrator.JobSpec
	for i := 0; i < 5; i++ {
		jobs = append(jobs, orchestrator.JobSpec{
			Arrival: time.Duration(i) * 200 * time.Millisecond,
			Tenant:  0, GPUs: 4, Workload: "ResNet-50",
			Epochs: 1, ItersPerEpoch: iters,
		})
	}
	jobs = append(jobs,
		orchestrator.JobSpec{Arrival: 6 * time.Second, Tenant: 1, GPUs: 2, Workload: "MobileNetV2", Epochs: 1, ItersPerEpoch: iters},
		orchestrator.JobSpec{Arrival: 8 * time.Second, Tenant: 2, GPUs: 2, Workload: "BERT", Epochs: 1, ItersPerEpoch: iters},
	)
	return jobs
}

// FleetStaticVsDynamic (S1) runs the bursty stream through the static
// per-host partition and through dynamic recomposition (drawer-local
// policy) on the same 3-host × 12-GPU fleet, and compares makespan — the
// headline claim of a composable system, quantified: re-cabling GPUs
// between hosts on demand beats static ownership even though every move
// costs a hot-plug delay.
func FleetStaticVsDynamic(s *Session) (string, error) {
	stream := burstyStream(s.Scale.ItersPerEpoch)
	static := scengen.FleetScenario{
		Hosts: 3, GPUs: 12, Preattach: true, Policy: "static",
		AttachLatency: orchestrator.DefaultAttachLatency, Jobs: stream,
	}
	dynamic := static
	dynamic.Policy = "drawer"

	sres, err := fleetRun(static)
	if err != nil {
		return "", err
	}
	dres, err := fleetRun(dynamic)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Bursty stream (%d jobs, tenant 0 bursts 5×4-GPU) on 3 hosts × 12 GPUs\n", len(stream))
	fmt.Fprintf(&b, "%-22s %14s %14s %14s %8s\n", "composition", "makespan", "mean wait", "max wait", "moves")
	for _, r := range []*orchestrator.FleetResult{sres, dres} {
		label := "static partition"
		if r.Policy != "static" {
			label = "dynamic (" + r.Policy + ")"
		}
		fmt.Fprintf(&b, "%-22s %14v %14v %14v %8d\n", label,
			r.Makespan.Round(time.Millisecond), r.MeanWait.Round(time.Millisecond),
			r.MaxWait.Round(time.Millisecond), r.Recompositions)
	}
	speedup := sres.Makespan.Seconds() / dres.Makespan.Seconds()
	fmt.Fprintf(&b, "\nDynamic recomposition finishes the stream %.2fx faster: the burst\n", speedup)
	fmt.Fprintf(&b, "spreads over all three hosts (%d device moves at %v each) while the\n",
		dres.Recompositions, orchestrator.DefaultAttachLatency)
	fmt.Fprintf(&b, "static partition strands %.0f GPU-s of idle capacity behind ownership.\n",
		sres.FragmentationGPUSeconds)
	return b.String(), nil
}

// shootoutStream is S2's workload: all three tenants active with mixed
// demands, enough overlap that placement quality matters.
func shootoutStream(iters int) []orchestrator.JobSpec {
	mk := func(at time.Duration, tenant, gpus int, wl string) orchestrator.JobSpec {
		return orchestrator.JobSpec{Arrival: at, Tenant: tenant, GPUs: gpus, Workload: wl, Epochs: 1, ItersPerEpoch: iters}
	}
	return []orchestrator.JobSpec{
		mk(0, 0, 4, "ResNet-50"),
		mk(0, 1, 2, "BERT"),
		mk(500*time.Millisecond, 2, 6, "MobileNetV2"),
		mk(1*time.Second, 0, 2, "ResNet-50"),
		mk(2*time.Second, 1, 4, "MobileNetV2"),
		mk(3*time.Second, 2, 2, "BERT"),
		mk(3*time.Second, 0, 4, "ResNet-50"),
	}
}

// FleetPolicyShootout (S2) runs one mixed stream through every dynamic
// placement policy on a warm fleet (GPUs preattached round-robin, the
// state a running fleet is always in) and tabulates the scheduling
// telemetry. On this fabric the drawer switch absorbs peer traffic
// wherever a job lands, so what separates policies is mostly
// recomposition — every device move costs a hot-plug window the queue
// inherits — and which slots a policy is willing to move to get its
// preferred layout shifts with the job mix and run length. The verdict
// line is derived from the measured table, never asserted a priori.
func FleetPolicyShootout(s *Session) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Mixed 7-job stream, 3 hosts × 12 GPUs, warm (preattached) fleet\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %8s %8s %12s\n", "policy", "makespan", "mean wait", "moves", "util", "stranded")
	var best, worst *orchestrator.FleetResult
	for _, policy := range []string{"firstfit", "drawer", "bandwidth"} {
		sc := scengen.FleetScenario{
			Hosts: 3, GPUs: 12, Preattach: true, Policy: policy,
			AttachLatency: orchestrator.DefaultAttachLatency,
			Jobs:          shootoutStream(s.Scale.ItersPerEpoch),
		}
		r, err := fleetRun(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %14v %14v %8d %7.1f%% %10.1fGs\n", policy,
			r.Makespan.Round(time.Millisecond), r.MeanWait.Round(time.Millisecond),
			r.Recompositions, r.Utilization*100, r.FragmentationGPUSeconds)
		if best == nil || r.Makespan < best.Makespan {
			best = r
		}
		if worst == nil || r.Makespan > worst.Makespan {
			worst = r
		}
	}
	fmt.Fprintf(&b, "\n%s wins this stream: %v makespan over %s's %v (%d moves vs %d\n",
		best.Policy, best.Makespan.Round(time.Millisecond),
		worst.Policy, worst.Makespan.Round(time.Millisecond),
		best.Recompositions, worst.Recompositions)
	fmt.Fprintf(&b, "at %v each). Placement quality here is recomposition\n", orchestrator.DefaultAttachLatency)
	fmt.Fprintf(&b, "discipline: moves the policy spends buying its preferred layout.\n")
	return b.String(), nil
}

// FleetSaturation (S3) replays the mixed stream at increasing arrival
// rates (inter-arrival gaps ×4, ×1, ×¼) under the drawer-local policy:
// the queueing curve of the fleet, from idle to saturated.
func FleetSaturation(s *Session) (string, error) {
	base := shootoutStream(s.Scale.ItersPerEpoch)
	var b strings.Builder
	fmt.Fprintf(&b, "Arrival-rate sweep (drawer policy, 3 hosts × 12 GPUs)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %8s\n", "load", "makespan", "mean wait", "max wait", "util")
	for _, load := range []struct {
		label string
		scale float64
	}{
		{"0.25x", 4}, {"1x", 1}, {"4x", 0.25},
	} {
		jobs := make([]orchestrator.JobSpec, len(base))
		for i, j := range base {
			j.Arrival = time.Duration(float64(j.Arrival) * load.scale)
			jobs[i] = j
		}
		sc := scengen.FleetScenario{
			Hosts: 3, GPUs: 12, Preattach: true, Policy: "drawer",
			AttachLatency: orchestrator.DefaultAttachLatency, Jobs: jobs,
		}
		r, err := fleetRun(sc)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %14v %14v %14v %7.1f%%\n", load.label,
			r.Makespan.Round(time.Millisecond), r.MeanWait.Round(time.Millisecond),
			r.MaxWait.Round(time.Millisecond), r.Utilization*100)
	}
	fmt.Fprintf(&b, "\nAs the same work arrives faster, waits grow superlinearly while\n")
	fmt.Fprintf(&b, "utilization saturates — the fleet's queueing knee, measured.\n")
	return b.String(), nil
}

// podStream is S4's workload: three 12-GPU jobs against 8-GPU chassis, so
// each must span chassis — and on a one-chassis-per-pod fleet, pods —
// putting its DDP ring on the spine; three small jobs ride along.
func podStream(iters int) []orchestrator.JobSpec {
	mk := func(at time.Duration, tenant, gpus int, wl string) orchestrator.JobSpec {
		return orchestrator.JobSpec{Arrival: at, Tenant: tenant, GPUs: gpus, Workload: wl, Epochs: 1, ItersPerEpoch: iters}
	}
	return []orchestrator.JobSpec{
		mk(0, 0, 12, "ResNet-50"),
		mk(0, 1, 4, "BERT"),
		mk(500*time.Millisecond, 2, 12, "MobileNetV2"),
		mk(1*time.Second, 3, 6, "ResNet-50"),
		mk(2*time.Second, 4, 4, "BERT"),
		mk(3*time.Second, 5, 12, "ResNet-50"),
	}
}

// s4Fleet is the S4 testbed: 4 pods × 1 chassis × 8 GPUs (2 hosts per
// chassis), so every cross-chassis byte is a cross-pod byte on the spine.
func s4Fleet(policy string, oversub float64, jobs []orchestrator.JobSpec) scengen.FleetScenario {
	return scengen.FleetScenario{
		Hosts: 2, GPUs: 8, Preattach: true, Policy: policy,
		Pods: 4, ChassisPerPod: 1, Oversubscription: oversub,
		AttachLatency: orchestrator.DefaultAttachLatency, Jobs: jobs,
	}
}

// FleetPodLocality (S4) runs the pod stream through every dynamic policy
// on a non-blocking spine (1:1) and on a heavily oversubscribed one
// (16:1), on the same 4-pod fleet. The spread between the two columns is
// each policy's measured spine exposure: how much of its layout lives or
// dies with cross-pod bandwidth. The verdict is derived from the table.
func FleetPodLocality(s *Session) (string, error) {
	jobs := podStream(s.Scale.ItersPerEpoch)
	var b strings.Builder
	fmt.Fprintf(&b, "Pod fleet: 4 pods × 1 chassis × 8 GPUs, 2 hosts/chassis, %d jobs (3 span pods)\n", len(jobs))
	fmt.Fprintf(&b, "%-10s %8s %14s %14s %8s %8s\n", "policy", "spine", "makespan", "mean wait", "moves", "util")
	type row struct {
		policy   string
		slowdown float64
	}
	var rows []row
	for _, policy := range []string{"firstfit", "drawer", "bandwidth"} {
		var span [2]*orchestrator.FleetResult
		for i, oversub := range []float64{1, 16} {
			r, err := fleetRun(s4Fleet(policy, oversub, jobs))
			if err != nil {
				return "", err
			}
			span[i] = r
			fmt.Fprintf(&b, "%-10s %7gx %14v %14v %8d %7.1f%%\n", policy, oversub,
				r.Makespan.Round(time.Millisecond), r.MeanWait.Round(time.Millisecond),
				r.Recompositions, r.Utilization*100)
		}
		rows = append(rows, row{policy, span[1].Makespan.Seconds() / span[0].Makespan.Seconds()})
	}
	best, worst := rows[0], rows[0]
	for _, r := range rows[1:] {
		if r.slowdown < best.slowdown {
			best = r
		}
		if r.slowdown > worst.slowdown {
			worst = r
		}
	}
	fmt.Fprintf(&b, "\nStarving the spine 16x slows %s least (%.2fx) and %s most (%.2fx):\n",
		best.policy, best.slowdown, worst.policy, worst.slowdown)
	fmt.Fprintf(&b, "the gap is the cross-pod traffic each policy's placements put on the\n")
	fmt.Fprintf(&b, "oversubscribed tier — locality discipline, measured end to end.\n")
	return b.String(), nil
}

// FleetAttributionSLO (S5) turns the S1 bursty stream into an SLO
// story: the same stream runs under the static partition and under
// dynamic recomposition with a trace collector attached, the analyzer
// attributes every job's wall time (wait / compose / compute /
// checkpoint), and both runs are scored against a declarative queue-wait
// SLO. The attribution table shows *why* a verdict comes out the way it
// does — the failing composition's wall time is queue wait, not compute.
// Both runs are also asserted against "max-failed<=0": an S experiment
// must never publish numbers from a run that abandoned jobs.
func FleetAttributionSLO(s *Session) (string, error) {
	stream := burstyStream(s.Scale.ItersPerEpoch)
	const slo = "p99-wait<=15s max-failed<=0"

	var b strings.Builder
	fmt.Fprintf(&b, "Bursty stream (%d jobs) on 3 hosts × 12 GPUs, scored against SLO %q\n",
		len(stream), slo)
	fmt.Fprintf(&b, "%-22s %14s %14s %7s %9s %9s %6s\n",
		"composition", "makespan", "p99 wait", "wait%", "compose%", "compute%", "slo")

	type row struct {
		label   string
		p99Wait time.Duration
		waitPct float64
		healthy bool
	}
	var rows []row
	for _, policy := range []string{"static", "drawer"} {
		sc := scengen.FleetScenario{
			Hosts: 3, GPUs: 12, Preattach: true, Policy: policy,
			AttachLatency: orchestrator.DefaultAttachLatency, Jobs: stream,
		}
		out, a, err := scengen.AnalyzeFleet(sc)
		if err != nil {
			return "", err
		}
		if err := out.Err(); err != nil {
			return "", err
		}
		if err := scengen.CheckSLO("max-failed<=0", a, out.Stats()); err != nil {
			return "", fmt.Errorf("S5 %s run is broken: %w", policy, err)
		}
		var total time.Duration
		for _, d := range a.Blame {
			total += d
		}
		pct := func(bk analyze.Bucket) float64 {
			if total == 0 {
				return 0
			}
			return 100 * float64(a.Blame[bk]) / float64(total)
		}
		health := analyze.Evaluate(mustSLO(slo), a, out.Stats())
		verdict := "FAIL"
		if health.Healthy {
			verdict = "ok"
		}
		label := "static partition"
		if policy != "static" {
			label = "dynamic (" + policy + ")"
		}
		fmt.Fprintf(&b, "%-22s %14v %14v %6.1f%% %8.1f%% %8.1f%% %6s\n", label,
			out.Result.Makespan.Round(time.Millisecond), a.Wait.P99().Round(time.Millisecond),
			pct(analyze.BucketWait), pct(analyze.BucketCompose), pct(analyze.BucketCompute), verdict)
		rows = append(rows, row{label, a.Wait.P99(), pct(analyze.BucketWait), health.Healthy})
	}

	// The verdict sentence is derived from the measured attribution.
	worst, best := rows[0], rows[0]
	for _, r := range rows[1:] {
		if r.p99Wait > worst.p99Wait {
			worst = r
		}
		if r.p99Wait < best.p99Wait {
			best = r
		}
	}
	fmt.Fprintf(&b, "\nAttribution explains the verdicts: %s spends %.1f%% of the fleet's\n",
		worst.label, worst.waitPct)
	fmt.Fprintf(&b, "attributed time queueing (p99 wait %v) where %s holds the tail to %v\n",
		worst.p99Wait.Round(time.Millisecond), best.label, best.p99Wait.Round(time.Millisecond))
	fmt.Fprintf(&b, "(%.1f%% waiting) — the SLO column is the same physics, scored.\n", best.waitPct)
	return b.String(), nil
}

// mustSLO parses a compile-time-constant SLO spec.
func mustSLO(spec string) analyze.SLO {
	slo, err := analyze.ParseSLO(spec)
	if err != nil {
		panic(err)
	}
	return slo
}
