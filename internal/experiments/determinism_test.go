package experiments

// Run-twice pinning for experiment output: the same experiment rendered
// from two fresh sessions must be byte-identical, and a parallel RunAll
// must render exactly what a sequential one does (Report.Elapsed is
// wall-clock telemetry and is deliberately excluded — it is the one field
// allowed to differ, per its nowallclock annotation in runner.go).

import (
	"context"
	"testing"
)

func TestExperimentOutputIsRunStable(t *testing.T) {
	for _, id := range []string{"T1", "F11"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out1, err := e.Run(NewSession(Quick))
		if err != nil {
			t.Fatalf("%s run 1: %v", id, err)
		}
		out2, err := e.Run(NewSession(Quick))
		if err != nil {
			t.Fatalf("%s run 2: %v", id, err)
		}
		if out1 == "" {
			t.Fatalf("sanity: %s rendered empty output", id)
		}
		if out1 != out2 {
			t.Errorf("%s output differs between fresh sessions:\n--- run 1\n%s\n--- run 2\n%s", id, out1, out2)
		}
	}
}

func TestParallelRunRendersSequentialOutput(t *testing.T) {
	exps := []Experiment{mustByID(t, "T1"), mustByID(t, "F11"), mustByID(t, "F12")}
	seq, err := NewRunner(NewSession(Quick), exps).RunAll(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(NewSession(Quick), exps).RunAll(context.Background(), len(exps))
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].ID != par[i].ID {
			t.Fatalf("report order differs at %d: %s vs %s", i, seq[i].ID, par[i].ID)
		}
		if seq[i].Output != par[i].Output {
			t.Errorf("%s renders differently under parallelism:\n--- sequential\n%s\n--- parallel\n%s",
				seq[i].ID, seq[i].Output, par[i].Output)
		}
	}
}

func mustByID(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
