package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// fake builds a registry-free experiment for runner plumbing tests.
func fake(id, out string, err error) Experiment {
	return Experiment{ID: id, Title: "fake " + id, Run: func(*Session) (string, error) {
		return out, err
	}}
}

func TestRunnerOrderAndTelemetry(t *testing.T) {
	exps := []Experiment{fake("E1", "one", nil), fake("E2", "two", nil), fake("E3", "three", nil)}
	reports, err := NewRunner(quickSession(), exps).RunAll(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	for i, want := range []string{"one", "two", "three"} {
		if reports[i].ID != exps[i].ID {
			t.Errorf("report %d id = %s, want %s (input order must be preserved)", i, reports[i].ID, exps[i].ID)
		}
		if reports[i].Output != want {
			t.Errorf("report %d output = %q, want %q", i, reports[i].Output, want)
		}
		if reports[i].Elapsed < 0 {
			t.Errorf("report %d elapsed = %v, want >= 0", i, reports[i].Elapsed)
		}
	}
}

func TestRunnerErrorKeepsOtherReports(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{fake("E1", "one", nil), fake("E2", "", boom), fake("E3", "three", nil)}
	reports, err := NewRunner(quickSession(), exps).RunAll(context.Background(), 2)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "E2") {
		t.Errorf("err = %v, want the failing experiment's ID", err)
	}
	if reports[0].Output != "one" || reports[2].Output != "three" {
		t.Errorf("healthy experiments should still report: %+v", reports)
	}
	if reports[1].Err == nil {
		t.Error("failing experiment's report should carry its error")
	}
}

func TestRunnerCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	exps := []Experiment{
		{ID: "E1", Title: "fake", Run: func(*Session) (string, error) { ran.Add(1); return "x", nil }},
		{ID: "E2", Title: "fake", Run: func(*Session) (string, error) { ran.Add(1); return "x", nil }},
	}
	reports, err := NewRunner(quickSession(), exps).RunAll(ctx, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("%d experiments ran despite canceled context", got)
	}
	for _, r := range reports {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.ID, r.Err)
		}
	}
}

func TestRunnerCancelMidFlight(t *testing.T) {
	// A cancellation landing while the last experiments are already in
	// flight must still surface: completed reports keep their output and
	// RunAll falls back to ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	exps := []Experiment{
		{ID: "E1", Title: "fake", Run: func(*Session) (string, error) { cancel(); return "done", nil }},
	}
	reports, err := NewRunner(quickSession(), exps).RunAll(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if reports[0].Err != nil || reports[0].Output != "done" {
		t.Errorf("in-flight experiment should complete normally: %+v", reports[0])
	}
}

func TestRunnerNilDefaultsToRegistry(t *testing.T) {
	r := NewRunner(quickSession(), nil)
	// Don't run the full suite here (e2e covers it); just confirm the
	// default expansion matches the catalog.
	exps := r.Experiments
	if exps != nil {
		t.Fatalf("nil Experiments should stay nil until RunAll")
	}
	if got, want := len(Registry()), len(All())+len(Extensions())+len(FleetExperiments())+len(RecoveryExperiments()); got != want {
		t.Fatalf("Registry() = %d experiments, want %d", got, want)
	}
}

func TestRegistryLookupsAndCopies(t *testing.T) {
	for _, id := range []string{"T1", "F16", "A4", "X2", "S1", "S3"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if e.ID != id {
			t.Errorf("ByID(%s).ID = %s", id, e.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID should reject unknown IDs")
	}
	// Mutating returned slices must not corrupt the shared catalog.
	ids := IDs()
	ids[0] = "corrupted"
	if IDs()[0] != "T1" {
		t.Error("IDs() exposed shared backing storage")
	}
	reg := Registry()
	reg[0].ID = "corrupted"
	if Registry()[0].ID != "T1" {
		t.Error("Registry() exposed shared backing storage")
	}
}
