package experiments

import (
	"fmt"
	"strings"

	"composable/internal/cluster"
	"composable/internal/core"
	"composable/internal/dlmodel"
	"composable/internal/microbench"
	"composable/internal/units"
)

// TableI renders the software-stack manifest: the paper's stack and the
// simulator module that substitutes for each layer.
func TableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-16s %s\n", "Component", "Paper (Table I)", "This reproduction")
	for _, c := range core.StackManifest() {
		fmt.Fprintf(&b, "%-28s %-16s %s\n", c.Layer, c.PaperValue, c.Substitute)
	}
	return b.String()
}

// paperTableII is the published Table II for side-by-side comparison.
var paperTableII = map[string]struct {
	params string
	depth  int
}{
	"MobileNetV2": {"3.4M", 53},
	"ResNet-50":   {"25.6M", 50},
	"YOLOv5-L":    {"47M", 392},
	"BERT":        {"110M", 12},
	"BERT-L":      {"340M", 24},
}

// TableIIReport renders the derived benchmark characteristics against the
// published values.
func TableIIReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-16s %-12s %12s %10s %14s %10s\n",
		"Benchmark", "Domain", "Dataset", "Params", "Depth", "Paper-params", "P-depth")
	for _, row := range dlmodel.TableII() {
		p := paperTableII[row.Benchmark]
		fmt.Fprintf(&b, "%-12s %-16s %-12s %11.1fM %10d %14s %10d\n",
			row.Benchmark, row.Domain, row.Dataset,
			float64(row.Params)/1e6, row.Depth, p.params, p.depth)
	}
	return b.String()
}

// TableIIIReport renders the five host configurations.
func TableIIIReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %s\n", "Label", "Host Configuration")
	for _, cfg := range cluster.TableIIIConfigs() {
		fmt.Fprintf(&b, "%-12s %s\n", cfg.Name, cfg.Description())
	}
	return b.String()
}

// paperTableIV is the published Table IV for side-by-side comparison.
var paperTableIV = map[string]struct {
	bw  float64
	lat float64 // µs
}{
	"L-L": {72.37, 1.85},
	"F-L": {19.64, 2.66},
	"F-F": {24.47, 2.08},
}

// TableIVReport runs the p2p microbenchmark and renders it against the
// published Table IV.
func TableIVReport() (string, error) {
	rows, err := microbench.TableIV(units.GB)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %18s %18s %-12s %14s %12s\n",
		"Pair", "Bidir BW (GB/s)", "P2P latency (us)", "Protocol", "Paper-BW", "Paper-lat")
	for _, r := range rows {
		p := paperTableIV[r.Pair]
		fmt.Fprintf(&b, "%-6s %18.2f %18.2f %-12s %14.2f %12.2f\n",
			r.Pair, r.BidirBandwidth.GB(), float64(r.WriteLatency.Nanoseconds())/1e3,
			r.Protocol, p.bw, p.lat)
	}
	return b.String(), nil
}
