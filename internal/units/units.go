// Package units defines the physical quantities used throughout the
// composable-system simulator: byte sizes, bandwidths, virtual time and
// compute throughput. Keeping them as distinct named types catches unit
// mix-ups at compile time and gives every quantity a uniform String form.
package units

import (
	"fmt"
	"time"
)

// Bytes is a data size in bytes.
type Bytes int64

// Common byte sizes.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// KiB and friends are aliases used where the binary prefix reads better.
const (
	KiB = KB
	MiB = MB
	GiB = GB
	TiB = TB
)

func (b Bytes) String() string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// Float returns the size as a float64 number of bytes.
func (b Bytes) Float() float64 { return float64(b) }

// BytesPerSec is a bandwidth. The paper reports bandwidths in GB/s
// (decimal gigabytes, as NVIDIA tools do), so the constructor GBps and the
// String method use 1e9.
type BytesPerSec float64

// GBps converts a decimal-GB/s figure (as used by nvidia-smi, NCCL and the
// paper's Table IV) into a BytesPerSec.
func GBps(v float64) BytesPerSec { return BytesPerSec(v * 1e9) }

// MBps converts decimal MB/s.
func MBps(v float64) BytesPerSec { return BytesPerSec(v * 1e6) }

// Gbps converts a line rate in gigabits per second (e.g. the Falcon's
// 400 Gb/s CDFP host cables).
func Gbps(v float64) BytesPerSec { return BytesPerSec(v * 1e9 / 8) }

// GB returns the bandwidth in decimal GB/s.
func (r BytesPerSec) GB() float64 { return float64(r) / 1e9 }

func (r BytesPerSec) String() string {
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.2fGB/s", float64(r)/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.2fMB/s", float64(r)/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.2fKB/s", float64(r)/1e3)
	}
	return fmt.Sprintf("%.0fB/s", float64(r))
}

// TransferTime returns how long moving n bytes takes at rate r, excluding
// propagation latency. A non-positive rate yields a very large duration so
// that misconfigured links surface as obvious stalls rather than panics.
func (r BytesPerSec) TransferTime(n Bytes) time.Duration {
	if r <= 0 {
		return time.Duration(1<<62 - 1)
	}
	sec := float64(n) / float64(r)
	return time.Duration(sec * float64(time.Second))
}

// FLOPs counts floating-point operations.
type FLOPs int64

// Common FLOP scales.
const (
	MFLOP FLOPs = 1e6
	GFLOP FLOPs = 1e9
	TFLOP FLOPs = 1e12
)

func (f FLOPs) String() string {
	switch {
	case f >= TFLOP:
		return fmt.Sprintf("%.2fTFLOP", float64(f)/float64(TFLOP))
	case f >= GFLOP:
		return fmt.Sprintf("%.2fGFLOP", float64(f)/float64(GFLOP))
	case f >= MFLOP:
		return fmt.Sprintf("%.2fMFLOP", float64(f)/float64(MFLOP))
	}
	return fmt.Sprintf("%dFLOP", int64(f))
}

// FLOPSRate is a compute throughput in FLOP/s.
type FLOPSRate float64

// TFLOPS converts a teraFLOP/s figure.
func TFLOPS(v float64) FLOPSRate { return FLOPSRate(v * 1e12) }

// GFLOPS converts a gigaFLOP/s figure.
func GFLOPS(v float64) FLOPSRate { return FLOPSRate(v * 1e9) }

// TF returns the rate in teraFLOP/s.
func (r FLOPSRate) TF() float64 { return float64(r) / 1e12 }

func (r FLOPSRate) String() string {
	if r >= 1e12 {
		return fmt.Sprintf("%.2fTFLOPS", float64(r)/1e12)
	}
	return fmt.Sprintf("%.2fGFLOPS", float64(r)/1e9)
}

// ComputeTime returns how long f FLOPs take at rate r.
func (r FLOPSRate) ComputeTime(f FLOPs) time.Duration {
	if r <= 0 {
		return time.Duration(1<<62 - 1)
	}
	sec := float64(f) / float64(r)
	return time.Duration(sec * float64(time.Second))
}

// Percent formats a 0..1 fraction as a percentage string.
func Percent(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }
