package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := map[Bytes]string{
		512:          "512B",
		2 * KB:       "2.00KB",
		3 * MB:       "3.00MB",
		GB + GB/2:    "1.50GB",
		2 * TB:       "2.00TB",
		110 * KB:     "110.00KB",
		25 * MB / 10: "2.50MB",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestBandwidthConstructors(t *testing.T) {
	if got := GBps(10); got != 10e9 {
		t.Errorf("GBps(10) = %v", float64(got))
	}
	if got := Gbps(400); got != 50e9 {
		t.Errorf("Gbps(400) = %v B/s, want 50e9 (CDFP cable)", float64(got))
	}
	if got := MBps(1500).GB(); got != 1.5 {
		t.Errorf("MBps(1500).GB() = %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	d := GBps(1).TransferTime(Bytes(1e9))
	if d != time.Second {
		t.Errorf("1e9 bytes at 1GB/s = %v, want 1s", d)
	}
	// Zero rate must not divide by zero; it returns a huge duration.
	if d := BytesPerSec(0).TransferTime(GB); d < time.Hour {
		t.Errorf("zero-rate transfer = %v, want huge", d)
	}
}

func TestComputeTime(t *testing.T) {
	d := TFLOPS(1).ComputeTime(TFLOP)
	if d != time.Second {
		t.Errorf("1 TFLOP at 1 TFLOPS = %v, want 1s", d)
	}
	if got := TFLOPS(125).TF(); got != 125 {
		t.Errorf("TF() = %v", got)
	}
}

func TestFLOPsString(t *testing.T) {
	if got := (3 * GFLOP).String(); got != "3.00GFLOP" {
		t.Errorf("got %q", got)
	}
	if got := FLOPSRate(2.5e12).String(); got != "2.50TFLOPS" {
		t.Errorf("got %q", got)
	}
}

func TestTransferTimeMonotonicProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		r := GBps(1 + float64(a%100))
		small, big := Bytes(b%1000000), Bytes(b%1000000)+Bytes(a%1000)+1
		return r.TransferTime(small) <= r.TransferTime(big)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.876); got != "87.6%" {
		t.Errorf("got %q", got)
	}
}
