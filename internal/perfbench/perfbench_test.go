package perfbench

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSuiteRegistration(t *testing.T) {
	suite := Suite()
	if len(suite) == 0 {
		t.Fatal("empty benchmark suite")
	}
	seen := map[string]bool{}
	layers := map[string]bool{}
	for _, bm := range suite {
		if bm.Name == "" {
			t.Fatal("benchmark registered without a name")
		}
		if bm.Fn == nil {
			t.Fatalf("benchmark %q registered without a body", bm.Name)
		}
		if seen[bm.Name] {
			t.Fatalf("benchmark %q registered twice", bm.Name)
		}
		seen[bm.Name] = true
		layer, _, ok := strings.Cut(bm.Name, "/")
		if !ok {
			t.Fatalf("benchmark %q does not follow the layer/name convention", bm.Name)
		}
		layers[layer] = true
	}
	// The suite's contract: it covers the sim core, the fabric allocator,
	// the fleet orchestrator, the end-to-end experiment regeneration and
	// the static-analysis pass the lint gate pays per CI run.
	for _, layer := range []string{"sim", "fabric", "orchestrator", "suite", "lint"} {
		if !layers[layer] {
			t.Errorf("suite does not cover the %s layer (have %v)", layer, layers)
		}
	}
}

func sampleResults() []PerfResult {
	return []PerfResult{
		{Name: "sim/sleep-wake", Iterations: 1000, NsPerOp: 505.2, AllocsPerOp: 0, BytesPerOp: 0, OpsPerSec: 1.98e6},
		{Name: "fabric/flow-churn-contended", Iterations: 500, NsPerOp: 820.9, AllocsPerOp: 5, BytesPerOp: 640, OpsPerSec: 1.22e6},
		{Name: "suite/run-all-sequential", Iterations: 2, NsPerOp: 7.3e8, AllocsPerOp: 3_360_000, BytesPerOp: 186_000_000, OpsPerSec: 1.37},
	}
}

func TestPerfReportJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	results := sampleResults()
	if err := WritePerfReport(path, "PR3", results); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfReport(path)
	if err != nil {
		t.Fatal(err)
	}
	want := NewPerfReport("PR3", results)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the report:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Schema != PerfSchema || got.Label != "PR3" {
		t.Fatalf("schema/label lost: %+v", got)
	}
	if got.GoVersion == "" || got.NumCPU == 0 {
		t.Fatalf("environment provenance missing: %+v", got)
	}
}

func TestReadPerfReportRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadPerfReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file not rejected")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPerfReport(bad); err == nil {
		t.Error("malformed JSON not rejected")
	}
	wrong := filepath.Join(dir, "wrong.json")
	if err := writeFile(wrong, `{"schema":"other/v9","results":[]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPerfReport(wrong); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema not rejected: %v", err)
	}
}

func TestCheckedInTrajectoryParses(t *testing.T) {
	// The repo's own trajectory file must stay loadable by this package.
	rep, err := ReadPerfReport("../../BENCH_PR2.json")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Label != "PR2" || len(rep.Results) == 0 {
		t.Fatalf("unexpected trajectory contents: label %q, %d results", rep.Label, len(rep.Results))
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := NewPerfReport("old", []PerfResult{
		{Name: "sim/a", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "sim/b", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "sim/c", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "sim/gone", NsPerOp: 50},
	})
	new := NewPerfReport("new", []PerfResult{
		{Name: "sim/a", NsPerOp: 150, AllocsPerOp: 5}, // 1.5× slower: regression
		{Name: "sim/b", NsPerOp: 105, AllocsPerOp: 0}, // 1.05×: inside threshold
		{Name: "sim/c", NsPerOp: 100, AllocsPerOp: 3}, // allocs appeared from zero
		{Name: "sim/new", NsPerOp: 70},                // added: missing, never a regression
	})
	deltas := Compare(old, new, 0.20)
	if len(deltas) != 5 {
		t.Fatalf("got %d deltas, want 5: %+v", len(deltas), deltas)
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	a := byName["sim/a"]
	if !a.Regressed || a.Ratio != 1.5 || a.AllocRatio != 0.5 {
		t.Errorf("sim/a misjudged: %+v", a)
	}
	if b := byName["sim/b"]; b.Regressed || b.Ratio != 1.05 || b.AllocRatio != 1 {
		t.Errorf("sim/b misjudged: %+v", b)
	}
	// Allocations appearing against a zero-alloc baseline must not read as
	// an improvement: AllocRatio is +Inf, not 0.
	if c := byName["sim/c"]; !math.IsInf(c.AllocRatio, 1) {
		t.Errorf("sim/c alloc appearance misjudged: %+v", c)
	}
	if d := byName["sim/new"]; !d.Missing || d.Regressed {
		t.Errorf("added benchmark misjudged: %+v", d)
	}
	if d := byName["sim/gone"]; !d.Missing || d.Regressed {
		t.Errorf("removed benchmark misjudged: %+v", d)
	}
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Name != "sim/a" {
		t.Errorf("Regressions() = %+v, want only sim/a", regs)
	}
}

func TestCompareIdenticalReportsIsClean(t *testing.T) {
	rep := NewPerfReport("x", sampleResults())
	if regs := Regressions(Compare(rep, rep, 0.0)); len(regs) != 0 {
		t.Fatalf("self-comparison found regressions: %+v", regs)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
