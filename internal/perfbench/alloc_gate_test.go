package perfbench

import (
	"testing"
	"time"

	"composable/internal/cluster"
	"composable/internal/faults"
	"composable/internal/orchestrator"
	"composable/internal/sim"
)

// Steady-state allocation ceilings for the two fleet-path benchmarks,
// pinned by PR7's allocation-free pass. The ceilings are the PR's 10x
// acceptance targets (BENCH_PR6 ÷ 10, with margin over the ~2.0k/2.3k
// measured steady state), so a change that drifts allocations back up
// fails here long before it erodes a full 10x.
const (
	fleetScheduleAllocCeiling    = 3391
	faultsRecoverAllocCeiling    = 4161
	fleetScheduleBytesPerOpNotes = "see BENCH_PR7.json for the full record"
)

func runFleetScheduleOnce(t testing.TB) {
	stream := []orchestrator.JobSpec{
		{Arrival: 0, Tenant: 0, GPUs: 4, Workload: "ResNet-50", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 0, Tenant: 1, GPUs: 2, Workload: "BERT", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: time.Second, Tenant: 2, GPUs: 2, Workload: "MobileNetV2", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 2 * time.Second, Tenant: 0, GPUs: 4, Workload: "MobileNetV2", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 2 * time.Second, Tenant: 1, GPUs: 2, Workload: "ResNet-50", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 3 * time.Second, Tenant: 2, GPUs: 4, Workload: "BERT", Epochs: 1, ItersPerEpoch: 2},
	}
	env := sim.NewEnv()
	fleet, err := cluster.ComposeFleet(env, cluster.FleetOptions{Hosts: 3, GPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := orchestrator.Run(fleet, stream, orchestrator.Options{Policy: orchestrator.DrawerLocal{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(stream) {
		t.Fatal("incomplete fleet run")
	}
}

func runFaultsRecoverOnce(t testing.TB) {
	stream := []orchestrator.JobSpec{
		{Arrival: 0, Tenant: 0, GPUs: 4, Workload: "ResNet-50", Epochs: 4, ItersPerEpoch: 6},
		{Arrival: time.Second, Tenant: 1, GPUs: 2, Workload: "MobileNetV2", Epochs: 1, ItersPerEpoch: 4},
	}
	plan := faults.Plan{Events: []faults.Event{
		{At: 2 * time.Second, Kind: faults.KindGPU, Target: 0, Repair: 500 * time.Millisecond},
	}}
	env := sim.NewEnv()
	fleet, err := cluster.ComposeFleet(env, cluster.FleetOptions{Hosts: 2, GPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := orchestrator.Run(fleet, stream, orchestrator.Options{
		Policy: orchestrator.DrawerLocal{}, AttachLatency: -1, Faults: &plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills == 0 {
		t.Fatal("gate fault never killed: not measuring recovery")
	}
}

// TestFleetScheduleAllocGate pins the fleet-schedule op's allocation
// count: the same op body BenchOrchestratorFleetSchedule measures, gated
// at PR7's 10x-vs-PR6 ceiling via testing.AllocsPerRun.
func TestFleetScheduleAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate runs full fleet ops")
	}
	allocs := testing.AllocsPerRun(5, func() { runFleetScheduleOnce(t) })
	if allocs > fleetScheduleAllocCeiling {
		t.Errorf("fleet-schedule op allocates %.0f objects, ceiling %d (%s)",
			allocs, fleetScheduleAllocCeiling, fleetScheduleBytesPerOpNotes)
	}
}

// TestFaultsRecoverAllocGate pins the fault-recovery op's allocation
// count, same scheme as TestFleetScheduleAllocGate.
func TestFaultsRecoverAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate runs full fleet ops")
	}
	allocs := testing.AllocsPerRun(5, func() { runFaultsRecoverOnce(t) })
	if allocs > faultsRecoverAllocCeiling {
		t.Errorf("faults-recover op allocates %.0f objects, ceiling %d (%s)",
			allocs, faultsRecoverAllocCeiling, fleetScheduleBytesPerOpNotes)
	}
}
