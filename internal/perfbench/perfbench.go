// Package perfbench is the simulator's performance-regression harness: a
// fixed suite of micro-benchmarks over the sim core, the fabric allocator
// and the full experiment suite, runnable in process (testing.Benchmark)
// and serialized to the checked-in BENCH_*.json trajectory files that let
// each PR compare its constant factors against its predecessors.
//
// The benchmark bodies live here — not in _test.go files — so the
// per-package `go test -bench` benchmarks and the `benchrunner
// -bench-json` suite run the exact same harnesses and can never diverge.
package perfbench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"composable/internal/cluster"
	"composable/internal/experiments"
	"composable/internal/fabric"
	"composable/internal/faults"
	"composable/internal/lint"
	"composable/internal/obs"
	"composable/internal/obs/analyze"
	"composable/internal/orchestrator"
	"composable/internal/sim"
	"composable/internal/units"
)

// PerfResult is one micro-benchmark measurement in the repo's benchmark
// trajectory (the checked-in BENCH_*.json files). Fields mirror what `go
// test -bench -benchmem` reports so benchstat-style comparison across PRs
// stays straightforward.
type PerfResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// OpsPerSec is the benchmark's headline rate: simulated events/sec for
	// the sim-core benchmarks, flow add→drain→remove cycles/sec for the
	// fabric benchmarks, experiment-suite runs/sec for the end-to-end one.
	OpsPerSec float64 `json:"ops_per_sec"`
}

// PerfReport is the file format of BENCH_*.json: environment provenance
// plus the suite results, so future PRs can tell a real regression from a
// hardware change. GoMaxProcs and CreatedAt were added in PR7 (older
// trajectory files read back with zero values, which EnvMismatch treats
// as unknown): BENCH_PR6's num_cpu=1 against PR5's box made cross-PR
// comparison ambiguous, so reports now carry enough provenance for
// Compare users to warn when two reports came from different worlds.
type PerfReport struct {
	Schema    string `json:"schema"`
	Label     string `json:"label"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is runtime.GOMAXPROCS at measurement time — the
	// scheduler-visible parallelism, which bounds benchmark noise far more
	// directly than the physical CPU count.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// CreatedAt is the wall-clock RFC 3339 time the suite ran.
	CreatedAt string `json:"created_at,omitempty"`
	// Samples is how many runs each result's fastest-of-N was taken over
	// (SamplesPerBench at write time; zero in pre-PR7 reports, meaning a
	// single run).
	Samples int          `json:"samples,omitempty"`
	Results []PerfResult `json:"results"`
}

// PerfSchema identifies the BENCH_*.json layout.
const PerfSchema = "composable-bench/v1"

// Benchmark is one registered suite entry.
type Benchmark struct {
	Name string
	Fn   func(b *testing.B)
}

// Suite returns the registered micro-benchmarks in suite order. The
// registry is exposed separately from PerfSuite so tests can check
// registration without paying for a measurement run.
func Suite() []Benchmark {
	return []Benchmark{
		{"sim/schedule-callbacks", BenchSimScheduleCallbacks},
		{"sim/sleep-wake", BenchSimSleepWake},
		{"sim/same-instant-fifo", BenchSimSameInstantFIFO},
		{"fabric/flow-churn-contended", BenchFabricFlowChurnContended},
		{"orchestrator/fleet-schedule", BenchOrchestratorFleetSchedule},
		{"orchestrator/pod-schedule", BenchOrchestratorPodSchedule},
		{"faults/recover-reschedule", BenchFaultsRecoverReschedule},
		{"obs/trace-fleet-schedule", BenchObsTraceFleetSchedule},
		{"obs/analyze-fleet-trace", BenchObsAnalyzeFleetTrace},
		{"suite/run-all-sequential", BenchSuiteRunAllSequential},
		{"lint/simlint-full-repo", BenchSimlintFullRepo},
	}
}

// PerfSuite runs the simulator's performance micro-benchmarks in process
// via testing.Benchmark — no `go test` invocation needed — and returns the
// measurements. It is the engine behind `benchrunner -bench-json`.
//
// The suite covers the three layers the hot path crosses: the sim core's
// event loop (events/sec), the fabric's max-min allocator under flow churn
// (flows/sec), and one full experiment-suite regeneration (the number the
// ROADMAP's "as fast as the hardware allows" goal ultimately cares about).
//
// Each benchmark runs SamplesPerBench times and the fastest sample is
// reported. On a shared single-CPU box individual testing.Benchmark runs
// swing ±25% with host noise; the minimum is the standard estimator for
// "what the code costs when the machine isn't busy", and it is what keeps
// the CI regression gate (benchrunner -bench-against) from tripping on a
// noisy neighbor instead of a real regression.
func PerfSuite() []PerfResult {
	benchmarks := Suite()
	results := make([]PerfResult, 0, len(benchmarks))
	for _, bm := range benchmarks {
		var best testing.BenchmarkResult
		for s := 0; s < SamplesPerBench; s++ {
			r := testing.Benchmark(bm.Fn)
			if s == 0 || float64(r.T.Nanoseconds())/float64(r.N) < float64(best.T.Nanoseconds())/float64(best.N) {
				best = r
			}
		}
		per := PerfResult{
			Name:        bm.Name,
			Iterations:  best.N,
			NsPerOp:     float64(best.T.Nanoseconds()) / float64(best.N),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		}
		if per.NsPerOp > 0 {
			per.OpsPerSec = 1e9 / per.NsPerOp
		}
		results = append(results, per)
	}
	return results
}

// SamplesPerBench is how many times PerfSuite runs each benchmark before
// keeping the fastest sample.
const SamplesPerBench = 3

// NewPerfReport wraps suite results with environment provenance.
func NewPerfReport(label string, results []PerfResult) PerfReport {
	return PerfReport{
		Schema:     PerfSchema,
		Label:      label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Samples:    SamplesPerBench,
		Results:    results,
	}
}

// EnvMismatch compares two reports' measurement environments and returns
// one human-readable warning per differing dimension. A zero/empty value
// on either side (a pre-PR7 trajectory file) is unknown and never warns.
// Compare callers should surface these alongside the deltas: a 2x "ratio"
// between a 1-CPU CI box and an 8-CPU laptop is provenance, not a
// regression.
func EnvMismatch(old, new PerfReport) []string {
	var warns []string
	str := func(field, o, n string) {
		if o != "" && n != "" && o != n {
			warns = append(warns, fmt.Sprintf("%s changed: %s → %s", field, o, n))
		}
	}
	num := func(field string, o, n int) {
		if o != 0 && n != 0 && o != n {
			warns = append(warns, fmt.Sprintf("%s changed: %d → %d", field, o, n))
		}
	}
	str("go version", old.GoVersion, new.GoVersion)
	str("GOOS", old.GOOS, new.GOOS)
	str("GOARCH", old.GOARCH, new.GOARCH)
	num("num CPU", old.NumCPU, new.NumCPU)
	num("GOMAXPROCS", old.GoMaxProcs, new.GoMaxProcs)
	return warns
}

// WritePerfReport writes the report as indented JSON to path.
func WritePerfReport(path, label string, results []PerfResult) error {
	data, err := json.MarshalIndent(NewPerfReport(label, results), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPerfReport loads a BENCH_*.json trajectory file, rejecting files
// with an unknown schema marker.
func ReadPerfReport(path string) (PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return PerfReport{}, err
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return PerfReport{}, fmt.Errorf("perfbench: parsing %s: %w", path, err)
	}
	if rep.Schema != PerfSchema {
		return PerfReport{}, fmt.Errorf("perfbench: %s has schema %q, want %q", path, rep.Schema, PerfSchema)
	}
	return rep, nil
}

// Delta is one benchmark's movement between two trajectory reports.
type Delta struct {
	Name string
	// Old/NewNsPerOp are the per-op times; Ratio is new/old (>1 = slower).
	OldNsPerOp, NewNsPerOp float64
	Ratio                  float64
	// AllocRatio is new/old allocations per op: 1 when both are zero, +Inf
	// when allocations appear against an allocation-free baseline (the
	// regression the zero-alloc trajectory entries exist to catch).
	AllocRatio float64
	// Regressed is set when the time ratio exceeds the comparison
	// threshold. Missing marks benchmarks present in only one report
	// (renames, additions); those never count as regressions.
	Regressed bool
	Missing   bool
}

// Compare diffs two trajectory reports benchmark by benchmark. threshold
// is the tolerated relative slowdown (e.g. 0.20 flags anything more than
// 20% slower); it guards the time ratio only — allocation movement is
// reported but not flagged, since alloc counts are exact and meaningful
// changes should be asserted directly. Results follow the new report's
// order, with old-only benchmarks appended as Missing.
func Compare(old, new PerfReport, threshold float64) []Delta {
	byName := make(map[string]PerfResult, len(old.Results))
	for _, r := range old.Results {
		byName[r.Name] = r
	}
	deltas := make([]Delta, 0, len(new.Results))
	for _, r := range new.Results {
		o, ok := byName[r.Name]
		if !ok {
			deltas = append(deltas, Delta{Name: r.Name, NewNsPerOp: r.NsPerOp, Missing: true})
			continue
		}
		delete(byName, r.Name)
		d := Delta{Name: r.Name, OldNsPerOp: o.NsPerOp, NewNsPerOp: r.NsPerOp}
		if o.NsPerOp > 0 {
			d.Ratio = r.NsPerOp / o.NsPerOp
		}
		switch {
		case o.AllocsPerOp > 0:
			d.AllocRatio = float64(r.AllocsPerOp) / float64(o.AllocsPerOp)
		case r.AllocsPerOp == 0:
			d.AllocRatio = 1
		default: // allocations appeared against a zero-alloc baseline
			d.AllocRatio = math.Inf(1)
		}
		d.Regressed = d.Ratio > 1+threshold
		deltas = append(deltas, d)
	}
	// Old-only benchmarks, in the old report's order.
	for _, r := range old.Results {
		if _, gone := byName[r.Name]; gone {
			deltas = append(deltas, Delta{Name: r.Name, OldNsPerOp: r.NsPerOp, Missing: true})
		}
	}
	return deltas
}

// Regressions filters a comparison down to the flagged entries.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// BenchSimScheduleCallbacks measures the raw event-queue cost with no
// process handoffs: a single self-rescheduling callback chain, one event
// per op. This is the purest view of per-event allocation.
func BenchSimScheduleCallbacks(b *testing.B) {
	e := sim.NewEnv()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(time.Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/s")
}

// BenchSimSleepWake measures the full process path — schedule, heap, wake,
// yield — one Sleep per op across a small set of interleaved processes.
func BenchSimSleepWake(b *testing.B) {
	e := sim.NewEnv()
	const procs = 8
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Go("sleeper", func(p *sim.Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(procs*per)/b.Elapsed().Seconds(), "events/s")
}

// BenchSimSameInstantFIFO measures zero-duration sleeps: every reschedule
// lands at the current instant, the case the FIFO fast path serves.
func BenchSimSameInstantFIFO(b *testing.B) {
	e := sim.NewEnv()
	e.Go("spinner", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(0)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// StarNetwork builds the benchmark fabric: n endpoint GPUs around one
// switch, the shape that makes every flow share the switch links and so
// exercises the max-min allocator with real contention.
func StarNetwork(env *sim.Env, n int) (*fabric.Network, []fabric.NodeID) {
	net := fabric.NewNetwork(env)
	sw := net.AddNode("sw", fabric.KindSwitch)
	eps := make([]fabric.NodeID, n)
	for i := range eps {
		eps[i] = net.AddNode("gpu", fabric.KindGPU)
		net.ConnectSym(eps[i], sw, units.GBps(16), time.Microsecond, "pcie")
	}
	return net, eps
}

// BenchFabricFlowChurnContended measures allocator churn under steady
// contention: eight transfer loops share the star switch, so every
// add/remove recomputes fair shares over ~8 active flows. One op is one
// completed flow.
func BenchFabricFlowChurnContended(b *testing.B) {
	const procs = 8
	env := sim.NewEnv()
	net, eps := StarNetwork(env, procs)
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		src, dst := eps[i], eps[(i+1)%procs]
		env.Go("driver", func(p *sim.Proc) {
			for j := 0; j < per; j++ {
				if err := net.Transfer(p, src, dst, units.MB); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// BenchOrchestratorFleetSchedule measures one complete fleet scheduling
// round: compose a 3-host × 8-GPU fleet and drive a fixed 6-job stream
// through the orchestrator under the drawer-local policy, dynamic
// recompositions included. One op = one full fleet run, so the number
// tracks the whole stack the fleet path crosses — composition, control
// plane, scheduler, training engine, fabric.
func BenchOrchestratorFleetSchedule(b *testing.B) {
	stream := []orchestrator.JobSpec{
		{Arrival: 0, Tenant: 0, GPUs: 4, Workload: "ResNet-50", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 0, Tenant: 1, GPUs: 2, Workload: "BERT", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: time.Second, Tenant: 2, GPUs: 2, Workload: "MobileNetV2", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 2 * time.Second, Tenant: 0, GPUs: 4, Workload: "MobileNetV2", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 2 * time.Second, Tenant: 1, GPUs: 2, Workload: "ResNet-50", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 3 * time.Second, Tenant: 2, GPUs: 4, Workload: "BERT", Epochs: 1, ItersPerEpoch: 2},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		fleet, err := cluster.ComposeFleet(env, cluster.FleetOptions{Hosts: 3, GPUs: 8})
		if err != nil {
			b.Fatal(err)
		}
		res, err := orchestrator.Run(fleet, stream, orchestrator.Options{Policy: orchestrator.DrawerLocal{}})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Jobs) != len(stream) {
			b.Fatal("incomplete fleet run")
		}
	}
	b.ReportMetric(float64(b.N*len(stream))/b.Elapsed().Seconds(), "jobs/s")
}

// PodBenchStream is the datacenter-scale workload behind
// orchestrator/pod-schedule: 500 jobs from 128 tenants, mostly
// chassis-sized (2/4/6 GPUs) with every fiftieth spanning two chassis
// (20 GPUs), arriving in 100 waves. Deterministic by construction.
func PodBenchStream() []orchestrator.JobSpec {
	workloads := []string{"ResNet-50", "BERT", "MobileNetV2"}
	jobs := make([]orchestrator.JobSpec, 500)
	for i := range jobs {
		gpus := 2 + (i%3)*2
		if i%50 == 0 {
			gpus = 20
		}
		jobs[i] = orchestrator.JobSpec{
			Arrival:  time.Duration(i%100) * 50 * time.Millisecond,
			Tenant:   i % 128,
			GPUs:     gpus,
			Workload: workloads[i%3],
			Epochs:   1, ItersPerEpoch: 1,
		}
	}
	return jobs
}

// PodFleetOptions is the orchestrator/pod-schedule testbed: 8 pods × 8
// chassis × 16 GPUs (1024 GPUs, 128 hosts) behind a 4:1 oversubscribed
// spine — the ISSUE's 1000-GPU datacenter shape.
func PodFleetOptions() cluster.FleetOptions {
	return cluster.FleetOptions{
		Hosts: 2, GPUs: 16, Pods: 8, ChassisPerPod: 8, Oversubscription: 4,
	}
}

// BenchOrchestratorPodSchedule measures datacenter-scale scheduling: one
// op composes the 1024-GPU pod fleet and drives the full 500-job stream
// through the drawer-local policy — composition, spine/leaf fabric,
// hierarchy-aware placement, cross-chassis recomposition, training,
// teardown. This is the entry the <10 s acceptance bound and the CI
// bench gate watch.
func BenchOrchestratorPodSchedule(b *testing.B) {
	stream := PodBenchStream()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		fleet, err := cluster.ComposeFleet(env, PodFleetOptions())
		if err != nil {
			b.Fatal(err)
		}
		res, err := orchestrator.Run(fleet, stream, orchestrator.Options{Policy: orchestrator.DrawerLocal{}})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Jobs) != len(stream) || res.FailedJobs != 0 {
			b.Fatalf("incomplete pod fleet run: %d results, %d failed", len(res.Jobs), res.FailedJobs)
		}
	}
	b.ReportMetric(float64(b.N*len(stream))/b.Elapsed().Seconds(), "jobs/s")
}

// BenchFaultsRecoverReschedule measures the full fault-recovery path:
// compose a 2-host × 8-GPU fleet, run a 4-epoch job plus a companion, kill
// a held GPU mid-run, and let the scheduler abort the attempt, blacklist
// the device, and restart the job from its last epoch-boundary checkpoint.
// One op = one complete faulty fleet run, so the number tracks everything
// the recovery path crosses — injection, cooperative wind-down, control
// plane hot-unplug, requeue, checkpoint restore.
func BenchFaultsRecoverReschedule(b *testing.B) {
	stream := []orchestrator.JobSpec{
		{Arrival: 0, Tenant: 0, GPUs: 4, Workload: "ResNet-50", Epochs: 4, ItersPerEpoch: 6},
		{Arrival: time.Second, Tenant: 1, GPUs: 2, Workload: "MobileNetV2", Epochs: 1, ItersPerEpoch: 4},
	}
	plan := faults.Plan{Events: []faults.Event{
		{At: 2 * time.Second, Kind: faults.KindGPU, Target: 0, Repair: 500 * time.Millisecond},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		fleet, err := cluster.ComposeFleet(env, cluster.FleetOptions{Hosts: 2, GPUs: 8})
		if err != nil {
			b.Fatal(err)
		}
		res, err := orchestrator.Run(fleet, stream, orchestrator.Options{
			Policy: orchestrator.DrawerLocal{}, AttachLatency: -1, Faults: &plan,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Kills == 0 {
			b.Fatal("benchmark fault never killed: not measuring recovery")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recoveries/s")
}

// TraceFleetSchedule runs one fleet-schedule op with the observability
// layer fully armed — a collector attached to the sim, fabric, train and
// orchestrator seams, metrics sampled on the default interval — and
// streams the resulting Chrome trace into w. It is the op body behind
// both `benchrunner -trace` and the obs/trace-fleet-schedule suite entry.
func TraceFleetSchedule(w io.Writer) error {
	col, _, err := observedFleetRun()
	if err != nil {
		return err
	}
	return col.WriteTrace(w)
}

// observedFleetRun executes the canonical observed fleet-schedule op —
// 6 jobs over 3 hosts × 8 GPUs with the collector attached at every
// seam — and returns the loaded collector plus the run result. It is
// the shared setup behind TraceFleetSchedule and the analyze benchmark.
func observedFleetRun() (*obs.Collector, *orchestrator.FleetResult, error) {
	stream := []orchestrator.JobSpec{
		{Arrival: 0, Tenant: 0, GPUs: 4, Workload: "ResNet-50", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 0, Tenant: 1, GPUs: 2, Workload: "BERT", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: time.Second, Tenant: 2, GPUs: 2, Workload: "MobileNetV2", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 2 * time.Second, Tenant: 0, GPUs: 4, Workload: "MobileNetV2", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 2 * time.Second, Tenant: 1, GPUs: 2, Workload: "ResNet-50", Epochs: 1, ItersPerEpoch: 2},
		{Arrival: 3 * time.Second, Tenant: 2, GPUs: 4, Workload: "BERT", Epochs: 1, ItersPerEpoch: 2},
	}
	col := obs.NewCollector()
	env := sim.NewEnv()
	col.Attach(env)
	fleet, err := cluster.ComposeFleet(env, cluster.FleetOptions{Hosts: 3, GPUs: 8})
	if err != nil {
		return nil, nil, err
	}
	fleet.AttachObs(col)
	res, err := orchestrator.Run(fleet, stream, orchestrator.Options{
		Policy: orchestrator.DrawerLocal{}, Obs: col,
	})
	if err != nil {
		return nil, nil, err
	}
	if len(res.Jobs) != len(stream) {
		return nil, nil, fmt.Errorf("perfbench: incomplete observed fleet run: %d jobs", len(res.Jobs))
	}
	return col, res, nil
}

// BenchObsTraceFleetSchedule measures the fully-observed fleet-schedule
// op: the same work as orchestrator/fleet-schedule plus span collection,
// metric sampling, and trace export (into io.Discard). The gap between
// the two entries prices the observability layer when it is ON; the
// alloc gates separately pin that the disabled path costs nothing.
func BenchObsTraceFleetSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := TraceFleetSchedule(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}

// BenchObsAnalyzeFleetTrace measures the trace-analytics pipeline —
// span extraction, per-job time attribution with critical paths, the
// percentile histograms, an SLO evaluation and the text report — over
// the observed fleet-schedule run. The run itself happens once, untimed:
// this entry prices what `tracectl` / `-report` cost on top of a trace
// the simulator already produced.
func BenchObsAnalyzeFleetTrace(b *testing.B) {
	col, res, err := observedFleetRun()
	if err != nil {
		b.Fatal(err)
	}
	slo, err := analyze.ParseSLO("p99-wait<=60s max-failed<=0")
	if err != nil {
		b.Fatal(err)
	}
	stats := analyze.FleetStats{Goodput: res.Goodput, Utilization: res.Utilization, Known: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := analyze.FromCollector(col).Analyze()
		health := analyze.Evaluate(slo, a, stats)
		if !health.Healthy {
			b.Fatal("benchmark SLO unexpectedly violated: not measuring the healthy path")
		}
		if err := analyze.WriteText(io.Discard, a, &stats, health, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "analyses/s")
}

// BenchSuiteRunAllSequential regenerates every registered experiment on a
// single worker at quick scale — the end-to-end number the trajectory
// tracks across PRs.
func BenchSuiteRunAllSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(experiments.Quick)
		reports, err := experiments.NewRunner(s, nil).RunAll(context.Background(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
	}
}

// BenchSimlintFullRepo measures one full static-analysis pass over the
// module: `go list -export` package loading, type-checking every package
// from export data, and all four analyzers. This is the cost the lint CI
// job pays per run and what a pre-commit hook would feel; ops/sec is
// full-repo passes per second.
func BenchSimlintFullRepo(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkgs, err := lint.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		diags, err := lint.RunAnalyzers(pkgs, lint.Analyzers()...)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repo not lint-clean: %d finding(s), first: %s", len(diags), diags[0])
		}
	}
}
