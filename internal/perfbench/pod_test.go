package perfbench

import (
	"testing"
	"time"

	"composable/internal/cluster"
	"composable/internal/orchestrator"
	"composable/internal/sim"
)

// TestPodScheduleUnderTenSeconds is the ISSUE 8 acceptance bound: the
// 1024-GPU, 500-job pod scenario must schedule end to end in under 10
// seconds of wall clock. It runs the exact workload and fleet shape of
// the orchestrator/pod-schedule suite entry once, un-benchmarked.
func TestPodScheduleUnderTenSeconds(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound skipped in -short mode")
	}
	stream := PodBenchStream()
	start := time.Now()
	env := sim.NewEnv()
	fleet, err := cluster.ComposeFleet(env, PodFleetOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fleet.Slots); got != 1024 {
		t.Fatalf("pod fleet has %d GPUs, want 1024", got)
	}
	res, err := orchestrator.Run(fleet, stream, orchestrator.Options{Policy: orchestrator.DrawerLocal{}})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(res.Jobs) != len(stream) || res.FailedJobs != 0 {
		t.Fatalf("incomplete pod run: %d results, %d failed", len(res.Jobs), res.FailedJobs)
	}
	if elapsed >= 10*time.Second {
		t.Errorf("1024-GPU / 500-job schedule took %v, bound is 10s", elapsed)
	}
	t.Logf("scheduled %d jobs on %d GPUs in %v (sim makespan %v, %d recompositions)",
		len(res.Jobs), len(fleet.Slots), elapsed, res.Makespan, res.Recompositions)
}
