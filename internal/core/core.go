// Package core is the public face of the composable-system platform: it
// composes pooled resources (host GPUs, Falcon chassis devices, storage)
// into runnable systems, runs deep-learning workloads on them, and exposes
// the measurement surface the paper's evaluation is built on.
//
// The intended workflow mirrors the paper's §V:
//
//	sys, _ := core.NewSystem(core.FalconGPUs())
//	res, _ := sys.Train(train.Options{
//	        Workload:      dlmodel.ResNet50Workload(),
//	        Precision:     gpu.FP16,
//	        ItersPerEpoch: 40,
//	})
//	fmt.Println(res.TotalTime, res.FalconPCIeGBps)
package core

import (
	"fmt"

	"composable/internal/cluster"
	"composable/internal/falcon"
	"composable/internal/microbench"
	"composable/internal/sim"
	"composable/internal/train"
	"composable/internal/units"
)

// Config aliases the cluster composition config.
type Config = cluster.Config

// The five host configurations of the paper's Table III.
func LocalGPUs() Config  { return cluster.LocalGPUsConfig() }
func HybridGPUs() Config { return cluster.HybridGPUsConfig() }
func FalconGPUs() Config { return cluster.FalconGPUsConfig() }
func LocalNVMe() Config  { return cluster.LocalNVMeConfig() }
func FalconNVMe() Config { return cluster.FalconNVMeConfig() }
func Configs() []Config  { return cluster.TableIIIConfigs() }

// System is a composed system with its own simulation clock. Training runs
// execute sequentially on it; each run advances the clock further.
type System struct {
	*cluster.System
}

// NewSystem composes a fresh system for the configuration.
func NewSystem(cfg Config) (*System, error) {
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: compose %s: %w", cfg.Name, err)
	}
	return &System{System: sys}, nil
}

// Train runs one training job to completion and returns its results.
func (s *System) Train(opts train.Options) (*train.Result, error) {
	return train.Run(s.System, opts)
}

// ChassisTopology renders the management view of the chassis.
func (s *System) ChassisTopology() string { return s.Chassis.Topology() }

// ChassisEvents returns the chassis event log.
func (s *System) ChassisEvents() []falcon.Event { return s.Chassis.Events() }

// P2PBenchmark runs the p2p microbenchmark (Table IV). It composes its own
// hybrid system, so it can be called without a System.
func P2PBenchmark(payload units.Bytes) ([]microbench.P2PResult, error) {
	return microbench.TableIV(payload)
}

// StackComponent is one row of the platform's software-stack manifest —
// the simulator analog of the paper's Table I, mapping every layer of the
// paper's stack to the module that substitutes for it here.
type StackComponent struct {
	Layer      string // the paper's component
	PaperValue string // the version in Table I
	Substitute string // this repository's implementation
}

// StackManifest reproduces Table I, annotated with the simulator module
// standing in for each component.
func StackManifest() []StackComponent {
	return []StackComponent{
		{"Operating system", "Ubuntu 18.04", "composable simulation runtime (internal/sim)"},
		{"DL Framework", "PyTorch 1.7.1", "internal/train (DDP/DP/AMP/sharded engine)"},
		{"CUDA", "10.2.89", "internal/gpu kernel-timing model"},
		{"CUDA Driver", "450.102.04", "internal/gpu device model"},
		{"CUDNN", "cudnn7.6.5", "internal/dlmodel layer cost model"},
		{"NCCL", "NCCL 2.8.4", "internal/collective ring collectives"},
		{"Profiler (wandb)", "wandb 0.10.14", "internal/telemetry recorder"},
		{"Profiler (Nsight Systems)", "2020.4.3.7", "internal/telemetry series export"},
		{"Profiler (Nsight Compute)", "2020.3.0.0", "internal/gpu utilization accounting"},
	}
}
