package core

import (
	"strings"
	"testing"

	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/train"
	"composable/internal/units"
)

func TestComposeAllConfigs(t *testing.T) {
	for _, cfg := range Configs() {
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(sys.GPUs) != 8 {
			t.Errorf("%s: %d GPUs, want 8", cfg.Name, len(sys.GPUs))
		}
	}
}

func TestSequentialJobsOnOneSystem(t *testing.T) {
	// The same composed system runs several jobs back to back; the
	// virtual clock keeps advancing and results stay self-consistent.
	sys, err := NewSystem(LocalGPUs())
	if err != nil {
		t.Fatal(err)
	}
	opts := train.Options{
		Workload:      dlmodel.MobileNetV2Workload(),
		Precision:     gpu.FP16,
		Epochs:        1,
		ItersPerEpoch: 5,
	}
	first, err := sys.Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sys.Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.TotalTime <= 0 || second.TotalTime <= 0 {
		t.Fatal("job times not recorded")
	}
	// The second run is warmer (page cache holds the dataset) but the
	// same order of magnitude.
	ratio := second.TotalTime.Seconds() / first.TotalTime.Seconds()
	if ratio < 0.5 || ratio > 1.1 {
		t.Fatalf("second run ratio = %.2f, want warm-cache ≤ first", ratio)
	}
}

func TestChassisViewsFromCore(t *testing.T) {
	sys, err := NewSystem(FalconGPUs())
	if err != nil {
		t.Fatal(err)
	}
	topo := sys.ChassisTopology()
	if !strings.Contains(topo, "drawer 0") || !strings.Contains(topo, "V100") {
		t.Fatalf("topology view incomplete:\n%s", topo)
	}
	if len(sys.ChassisEvents()) == 0 {
		t.Fatal("composition should have produced chassis events")
	}
}

func TestP2PBenchmarkFromCore(t *testing.T) {
	rows, err := P2PBenchmark(256 * units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Pair != "L-L" || rows[0].BidirBandwidth.GB() < 70 {
		t.Fatalf("L-L row = %+v", rows[0])
	}
}

func TestStackManifestCoversTableI(t *testing.T) {
	m := StackManifest()
	if len(m) != 9 {
		t.Fatalf("manifest rows = %d, want 9 (Table I)", len(m))
	}
	wantLayers := []string{"Operating system", "DL Framework", "CUDA", "NCCL"}
	for _, w := range wantLayers {
		found := false
		for _, c := range m {
			if c.Layer == w {
				found = true
			}
		}
		if !found {
			t.Errorf("manifest missing layer %q", w)
		}
	}
}
