package telemetry

import (
	"strings"
	"testing"
	"time"

	"composable/internal/sim"
)

func TestTrackRecordAndKinds(t *testing.T) {
	tr := NewTrack("faults")
	tr.Record(time.Second, "fault", "gpu[3]")
	tr.Record(2*time.Second, "kill", "job 0")
	tr.Record(3*time.Second, "repair", "gpu[3]")
	tr.Record(4*time.Second, "fault", "host[1]")
	if tr.Len() != 4 {
		t.Fatalf("len = %d", tr.Len())
	}
	kinds := tr.Kinds()
	want := []string{"fault", "kill", "repair"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestTrackCSV(t *testing.T) {
	tr := NewTrack("faults")
	tr.Record(1500*time.Millisecond, "fault", "gpu[3], drawer 0")
	csv := tr.CSV()
	if !strings.HasPrefix(csv, "time_s,faults_kind,label\n") {
		t.Fatalf("bad header: %q", csv)
	}
	if !strings.Contains(csv, "1.500,fault,gpu[3]; drawer 0") {
		t.Fatalf("bad row (commas must not break the format): %q", csv)
	}
}

func TestTrackTimeline(t *testing.T) {
	tr := NewTrack("faults")
	tr.Record(0, "fault", "")
	tr.Record(5*time.Second, "kill", "")
	tr.Record(5*time.Second, "repair", "")
	tr.Record(10*time.Second, "repair", "")
	line := tr.Timeline(10, 10*time.Second)
	if len([]rune(line)) != 10 {
		t.Fatalf("timeline width %d, want 10: %q", len([]rune(line)), line)
	}
	runes := []rune(line)
	if runes[0] != 'f' {
		t.Errorf("t=0 marker %q, want 'f'", runes[0])
	}
	if runes[5] != '*' {
		t.Errorf("colliding kinds at mid marker %q, want '*'", runes[5])
	}
	if runes[9] != 'r' {
		t.Errorf("end marker %q, want 'r'", runes[9])
	}
	if tr.Timeline(0, time.Second) != "" || tr.Timeline(10, 0) != "" {
		t.Error("degenerate timelines should be empty")
	}
}

func TestRecorderTracks(t *testing.T) {
	env := sim.NewEnv()
	rec := NewRecorder(env, 0)
	tr := rec.AddTrack("events")
	tr.Record(time.Second, "checkpoint", "w")
	if rec.Track("events") != tr {
		t.Fatal("Track lookup failed")
	}
	if rec.Track("nope") != nil {
		t.Fatal("unknown track should be nil")
	}
	if len(rec.Tracks()) != 1 {
		t.Fatalf("tracks = %d", len(rec.Tracks()))
	}
}
