// Package telemetry samples system-level metrics from a running simulation
// the way the paper's tooling (Weights & Biases, nvidia-smi, the Falcon
// port monitors) samples the real test bed: a periodic probe sweep over
// GPU utilization, GPU memory, CPU, host memory and PCIe port traffic.
// Series can be summarized, exported as CSV, or rendered as ASCII charts
// (the repo's stand-in for the paper's utilization figures).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"composable/internal/sim"
)

// Series is one sampled metric.
type Series struct {
	Name   string
	Times  []time.Duration
	Values []float64
}

func (s *Series) append(t time.Duration, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.Values) }

// Mean returns the arithmetic mean of the samples (0 if empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max returns the largest sample (0 if empty).
func (s *Series) Max() float64 {
	out := math.Inf(-1)
	for _, v := range s.Values {
		if v > out {
			out = v
		}
	}
	if math.IsInf(out, -1) {
		return 0
	}
	return out
}

// Min returns the smallest sample (0 if empty).
func (s *Series) Min() float64 {
	out := math.Inf(1)
	for _, v := range s.Values {
		if v < out {
			out = v
		}
	}
	if math.IsInf(out, 1) {
		return 0
	}
	return out
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest rank.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as a fixed-width ASCII chart, resampling by
// bucket means. It is the textual analog of the paper's Figure 9 panels.
func (s *Series) Sparkline(width int) string {
	if width <= 0 || len(s.Values) == 0 {
		return ""
	}
	lo, hi := s.Min(), s.Max()
	if hi-lo < 1e-12 {
		hi = lo + 1
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		from := i * len(s.Values) / width
		to := (i + 1) * len(s.Values) / width
		if to <= from {
			to = from + 1
		}
		if from >= len(s.Values) {
			break
		}
		if to > len(s.Values) {
			to = len(s.Values)
		}
		sum := 0.0
		for _, v := range s.Values[from:to] {
			sum += v
		}
		mean := sum / float64(to-from)
		idx := int((mean - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// CSV renders "time_s,value" lines.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "time_s,%s\n", s.Name)
	for i := range s.Values {
		fmt.Fprintf(&b, "%.3f,%.6f\n", s.Times[i].Seconds(), s.Values[i])
	}
	return b.String()
}

// TrackEvent is one annotated observation on an event track.
type TrackEvent struct {
	At    time.Duration
	Kind  string // e.g. "checkpoint", "fault", "repair", "kill"
	Label string
}

// Track is an annotated event series: discrete occurrences (faults,
// repairs, checkpoints, kills) alongside the sampled gauge series. The
// paper's tooling overlays exactly these marks on its utilization plots;
// Timeline is the ASCII analog.
type Track struct {
	Name   string
	Events []TrackEvent
}

// NewTrack creates an empty track.
func NewTrack(name string) *Track { return &Track{Name: name} }

// Record appends one event.
func (t *Track) Record(at time.Duration, kind, label string) {
	t.Events = append(t.Events, TrackEvent{At: at, Kind: kind, Label: label})
}

// Len returns the event count.
func (t *Track) Len() int { return len(t.Events) }

// Kinds returns the distinct event kinds in first-seen order.
func (t *Track) Kinds() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range t.Events {
		if !seen[e.Kind] {
			seen[e.Kind] = true
			out = append(out, e.Kind)
		}
	}
	return out
}

// CSV renders "time_s,kind,label" lines, the event-track analog of
// Series.CSV.
func (t *Track) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "time_s,%s_kind,label\n", t.Name)
	for _, e := range t.Events {
		fmt.Fprintf(&b, "%.3f,%s,%s\n", e.At.Seconds(), e.Kind, strings.ReplaceAll(e.Label, ",", ";"))
	}
	return b.String()
}

// Timeline renders the track as a fixed-width ASCII lane over [0, span]:
// each column shows the first rune of the kind of the event(s) landing in
// its bucket, '*' when kinds collide, '·' when empty. It is the event
// overlay for the Sparkline gauge charts.
func (t *Track) Timeline(width int, span time.Duration) string {
	if width <= 0 || span <= 0 {
		return ""
	}
	marks := make([]rune, width)
	for i := range marks {
		marks[i] = '·'
	}
	for _, e := range t.Events {
		if e.At < 0 || e.At > span {
			continue
		}
		i := int(float64(e.At) / float64(span) * float64(width))
		if i >= width {
			i = width - 1
		}
		r := '?'
		for _, c := range e.Kind {
			r = c
			break
		}
		switch marks[i] {
		case '·':
			marks[i] = r
		case r:
		default:
			marks[i] = '*'
		}
	}
	return string(marks)
}

// Probe is one metric source sampled each interval.
type Probe struct {
	Name   string
	Sample func() float64
}

// Recorder periodically sweeps its probes inside a simulation.
type Recorder struct {
	env      *sim.Env
	interval time.Duration
	probes   []Probe
	series   map[string]*Series
	tracks   []*Track
	stopped  bool
	sp       *sim.Proc // sampling stepper (see Start)
	primed   bool      // first step only arms the first tick
}

// NewRecorder creates a recorder sampling every interval of virtual time.
func NewRecorder(env *sim.Env, interval time.Duration) *Recorder {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Recorder{env: env, interval: interval, series: make(map[string]*Series)}
}

// AddTrack registers (and returns) an annotated event track. Unlike
// probes, tracks are written by the instrumented code itself (a training
// loop recording checkpoints, a fault engine recording failures), not
// sampled.
func (r *Recorder) AddTrack(name string) *Track {
	t := NewTrack(name)
	r.tracks = append(r.tracks, t)
	return t
}

// Track returns the named track (nil if unknown).
func (r *Recorder) Track(name string) *Track {
	for _, t := range r.tracks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Tracks returns the registered tracks in registration order.
func (r *Recorder) Tracks() []*Track { return r.tracks }

// AddProbe registers a metric source. Must be called before Start.
func (r *Recorder) AddProbe(name string, sample func() float64) {
	r.probes = append(r.probes, Probe{Name: name, Sample: sample})
	r.series[name] = &Series{Name: name}
}

// Start spawns the sampling process. It runs until Stop is called.
//
// The sampler is a stepper, not a goroutine-backed process: each tick is
// one inline step (sample every probe, re-arm) instead of a park/wake
// pair, and the step events occupy the exact (timestamp, seq) positions
// the previous Sleep-loop implementation's wakes did.
func (r *Recorder) Start() {
	r.sp = r.env.NewStepper("telemetry", r.step)
	r.primed = false
	r.env.Ready(r.sp)
}

//perf:hot
func (r *Recorder) step() {
	if r.stopped {
		return
	}
	if !r.primed {
		// Spawn position: the old implementation slept before its first
		// sample, so the first step only arms the first tick.
		r.primed = true
		r.env.ReadyAfter(r.sp, r.interval)
		return
	}
	now := r.env.Now()
	for _, pr := range r.probes {
		r.series[pr.Name].append(now, pr.Sample())
	}
	r.env.ReadyAfter(r.sp, r.interval)
}

// Stop ends sampling after the current interval elapses.
func (r *Recorder) Stop() { r.stopped = true }

// Series returns the named series (nil if unknown).
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns the probe names in registration order.
func (r *Recorder) Names() []string {
	out := make([]string, 0, len(r.probes))
	for _, p := range r.probes {
		out = append(out, p.Name)
	}
	return out
}
