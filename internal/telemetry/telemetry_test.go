package telemetry

import (
	"strings"
	"testing"
	"time"

	"composable/internal/sim"
)

func TestRecorderSamplesAtInterval(t *testing.T) {
	env := sim.NewEnv()
	rec := NewRecorder(env, 100*time.Millisecond)
	v := 0.0
	rec.AddProbe("x", func() float64 { v += 1; return v })
	rec.Start()
	env.Go("stopper", func(p *sim.Proc) {
		p.Sleep(1050 * time.Millisecond)
		rec.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	s := rec.Series("x")
	if s.Len() != 10 {
		t.Fatalf("samples = %d, want 10", s.Len())
	}
	if s.Times[0] != 100*time.Millisecond {
		t.Fatalf("first sample at %v", s.Times[0])
	}
}

func TestSeriesStats(t *testing.T) {
	s := &Series{Name: "t"}
	for i, v := range []float64{1, 5, 3, 2, 4} {
		s.append(time.Duration(i)*time.Second, v)
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Max() != 5 || s.Min() != 1 {
		t.Errorf("max/min = %v/%v", s.Max(), s.Min())
	}
	if p := s.Percentile(50); p != 3 {
		t.Errorf("p50 = %v", p)
	}
	if p := s.Percentile(100); p != 5 {
		t.Errorf("p100 = %v", p)
	}
}

func TestEmptySeriesSafe(t *testing.T) {
	s := &Series{Name: "empty"}
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series stats should be zero")
	}
	if s.Sparkline(10) != "" {
		t.Error("empty sparkline should be empty")
	}
}

func TestSparklineShape(t *testing.T) {
	s := &Series{Name: "ramp"}
	for i := 0; i < 100; i++ {
		s.append(time.Duration(i)*time.Second, float64(i))
	}
	sp := []rune(s.Sparkline(10))
	if len(sp) != 10 {
		t.Fatalf("width = %d", len(sp))
	}
	// A ramp renders monotonically non-decreasing glyphs.
	for i := 1; i < len(sp); i++ {
		if sp[i] < sp[i-1] {
			t.Fatalf("sparkline not monotonic for ramp: %q", string(sp))
		}
	}
	// Constant series renders without dividing by zero.
	c := &Series{Name: "const"}
	for i := 0; i < 10; i++ {
		c.append(time.Duration(i), 7)
	}
	if got := c.Sparkline(5); len([]rune(got)) != 5 {
		t.Fatalf("constant sparkline = %q", got)
	}
}

func TestCSVExport(t *testing.T) {
	s := &Series{Name: "gpu"}
	s.append(time.Second, 0.5)
	out := s.CSV()
	if !strings.HasPrefix(out, "time_s,gpu\n") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, "1.000,0.500000") {
		t.Fatalf("csv row missing: %q", out)
	}
}

func TestRecorderNames(t *testing.T) {
	env := sim.NewEnv()
	rec := NewRecorder(env, time.Second)
	rec.AddProbe("a", func() float64 { return 0 })
	rec.AddProbe("b", func() float64 { return 0 })
	names := rec.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if rec.Series("nope") != nil {
		t.Fatal("unknown series should be nil")
	}
}
