package telemetry

// Run-twice pinning for the rendered-output paths maporder polices: two
// identical simulated recordings must render byte-identical CSV, sparkline
// and timeline artifacts. Telemetry output feeding experiment fingerprints
// is only trustworthy if it cannot vary between runs of the same seed.

import (
	"testing"
	"time"

	"composable/internal/sim"
)

// record drives one deterministic simulated recording and renders every
// output format the package exposes.
func record(t *testing.T) (csv, spark, trackCSV, timeline string) {
	t.Helper()
	env := sim.NewEnv()
	rec := NewRecorder(env, 50*time.Millisecond)
	v := 0.0
	rec.AddProbe("util", func() float64 { v += 7; return float64(int(v*13) % 97) })
	tr := rec.AddTrack("events")
	rec.Start()
	env.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(90 * time.Millisecond)
			kind := "tick"
			if i%3 == 0 {
				kind = "mark"
			}
			tr.Record(p.Now(), kind, "step")
		}
		rec.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	s := rec.Series("util")
	return s.CSV(), s.Sparkline(40), tr.CSV(), tr.Timeline(60, time.Second)
}

func TestRenderedOutputIsRunStable(t *testing.T) {
	csv1, spark1, track1, tl1 := record(t)
	csv2, spark2, track2, tl2 := record(t)
	if csv1 != csv2 {
		t.Errorf("Series.CSV differs between identical runs:\n--- run 1\n%s\n--- run 2\n%s", csv1, csv2)
	}
	if spark1 != spark2 {
		t.Errorf("Sparkline differs between identical runs: %q vs %q", spark1, spark2)
	}
	if track1 != track2 {
		t.Errorf("Track.CSV differs between identical runs:\n--- run 1\n%s\n--- run 2\n%s", track1, track2)
	}
	if tl1 != tl2 {
		t.Errorf("Timeline differs between identical runs:\n%q\nvs\n%q", tl1, tl2)
	}
	if csv1 == "" || track1 == "" {
		t.Fatal("sanity: rendered artifacts are empty")
	}
}
