// Package train is the deep-learning training engine of the simulator: the
// PyTorch-equivalent layer. It drives the full per-iteration pipeline the
// paper describes in §V-B / Figure 8 — storage read, CPU preprocessing,
// host→GPU copy, forward/backward compute, gradient synchronization,
// optimizer step, periodic checkpointing — over a composed system, with
// the software configurations of §V-C-4: DistributedDataParallel with
// bucketed overlap, single-process DataParallel, FP32 or FP16 mixed
// precision, and ZeRO-style sharded training.
package train

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"composable/internal/cluster"
	"composable/internal/collective"
	"composable/internal/dlmodel"
	"composable/internal/fabric"
	"composable/internal/gpu"
	"composable/internal/obs"
	"composable/internal/sim"
	"composable/internal/telemetry"
	"composable/internal/units"
)

// Strategy selects the multi-GPU parallelization scheme.
type Strategy string

// Parallelization strategies (§V-C-4).
const (
	// DDP is PyTorch DistributedDataParallel: one process per GPU, ring
	// all-reduce of gradient buckets overlapped with backward compute.
	DDP Strategy = "DDP"
	// DP is PyTorch DataParallel: a single process with a master GPU
	// that gathers gradients and broadcasts parameters every iteration.
	DP Strategy = "DP"
)

// Options configures a training run.
type Options struct {
	Workload  dlmodel.Workload
	Precision gpu.Precision
	Strategy  Strategy
	// Sharded enables ZeRO-2 style sharding of gradients and optimizer
	// state across the data-parallel group (DDP only).
	Sharded bool
	// BatchPerGPU overrides the workload default (0 keeps it).
	BatchPerGPU int
	// Epochs overrides the workload default (0 keeps it).
	Epochs int
	// ItersPerEpoch scales the epoch length; it must be set — full
	// ImageNet epochs are pointless to simulate event by event.
	ItersPerEpoch int
	// Buckets is the DDP gradient bucket count (0 → 4).
	Buckets int
	// Workers is the data-loader worker pool size (0 → 24).
	Workers int
	// SampleInterval is the telemetry period (0 → 100 ms).
	SampleInterval time.Duration
	// Channels overrides the collective's counter-rotating ring count
	// (0 → library default; ablation knob).
	Channels int
	// CheckpointsPerEpoch overrides the workload's checkpoint write
	// cadence (0 keeps it). Only epoch-boundary checkpoints are resume
	// points (ResumeEpochs); mid-epoch writes model Figure 9's periodic
	// dips, so raising this buys fidelity, not recovery.
	CheckpointsPerEpoch int
	// ResumeEpochs marks this run as a checkpoint restart: the job already
	// completed that many epochs in a previous attempt, and before the
	// first iteration rank 0 restores the checkpoint — a storage read plus
	// a host→GPU parameter load per rank, charged against the same tiers
	// the periodic checkpoint writes use. Epochs still counts only the
	// epochs this run executes.
	ResumeEpochs int
	// Seed offsets nothing today but keeps the API honest about
	// determinism: the simulation is deterministic for a given seed.
	Seed int64
	// Probe, when non-nil, observes the run's lifecycle probe points —
	// ProbeEpoch at every epoch boundary, ProbeCheckpoint after each
	// checkpoint write, ProbeDone at completion — each with the virtual
	// time of the event. It must not change outcomes, so it is excluded
	// from Fingerprint; internal/invariant hangs its training-side checks
	// here.
	Probe func(event string, at time.Duration)
	// Obs, when non-nil, records the run's lifecycle on the train trace
	// track: epoch and checkpoint/restore spans, a done/abort instant.
	// Like Probe it must not change outcomes, so it is excluded from
	// Fingerprint. ObsJob tags every emitted span with the owning fleet
	// job id (the orchestrator threads it through) so per-job traces can
	// be cut from a shared run.
	Obs    *obs.Collector
	ObsJob int
}

// Probe event names passed to Options.Probe.
const (
	ProbeEpoch      = "epoch"
	ProbeCheckpoint = "checkpoint"
	ProbeRestore    = "restore"
	ProbeDone       = "done"
	ProbeAbort      = "abort"
)

// Fingerprint canonically encodes every option that changes the outcome of
// a run, identifying the workload by its name (the Table II benchmarks are
// immutable; callers must not reuse a benchmark's name for a modified
// workload). Two runs of the same workload on identical systems with equal
// fingerprints produce identical Results (the simulation is deterministic),
// which is what makes fingerprints safe as cache/deduplication keys — the
// experiments session keys its shared-run cache on them.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("%s|%v|%s|%t|%d|%d|%d|%d|%d|%d|%v|%d|%d|%d",
		o.Workload.Name, o.Precision, o.Strategy, o.Sharded,
		o.BatchPerGPU, o.Epochs, o.ItersPerEpoch, o.Buckets, o.Workers,
		o.Channels, o.SampleInterval, o.Seed, o.CheckpointsPerEpoch, o.ResumeEpochs)
}

// launchBusyFraction is how much of the per-iteration launch overhead a
// coarse utilization sampler (nvidia-smi's ~100 ms windows) attributes to
// the GPU: short inter-kernel gaps are invisible to it.
const launchBusyFraction = 0.8

// prefetchDepth is the loader's global-batch lookahead.
const prefetchDepth = 3

// pcieWireOverhead converts payload bytes to on-the-wire bytes for the
// chassis port monitors: TLP/DLLP headers and flow-control traffic add
// ≈12% on PCIe links, and the Falcon GUI (the paper's Figure 12 source)
// counts raw link traffic.
const pcieWireOverhead = 1.12

// Result summarizes a completed run.
type Result struct {
	System    string
	Workload  string
	Strategy  Strategy
	Precision gpu.Precision
	Sharded   bool

	BatchPerGPU int
	Epochs      int
	Iters       int

	TotalTime  time.Duration
	EpochTimes []time.Duration
	AvgIter    time.Duration

	// Sampled averages over the run.
	AvgGPUUtil     float64
	AvgGPUMemUtil  float64
	AvgCPUUtil     float64
	AvgHostMemUtil float64
	// MemAccessFrac estimates the share of iteration time spent in
	// GPU-memory-bound phases (Figure 10's third metric).
	MemAccessFrac float64
	// FalconPCIeGBps is the mean ingress+egress traffic of the
	// Falcon-attached GPU slot ports over the run (Figure 12), in
	// decimal GB/s. Zero when no Falcon GPUs are attached.
	FalconPCIeGBps float64

	PeakGPUMem units.Bytes
	// Recorder holds the sampled time series (GPU util etc.) for
	// figure rendering.
	Recorder *telemetry.Recorder
}

// Throughput returns global samples/second.
func (r *Result) Throughput() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.Iters*r.BatchPerGPU) / r.TotalTime.Seconds() // per GPU; see GlobalThroughput
}

// Run trains the workload on the composed system and reports the results:
// it starts the job, drains the simulation, and collects. For concurrent
// jobs on a shared simulation (advanced-mode tenancy), use Start on each
// system, run the shared environment once, then Collect each job.
func Run(sys *cluster.System, opts Options) (*Result, error) {
	job, err := Start(sys, opts)
	if err != nil {
		return nil, err
	}
	if err := sys.Env.Run(); err != nil {
		return nil, fmt.Errorf("train: %s on %s: %w", opts.Workload.Name, sys.Cfg.Name, err)
	}
	return job.Collect()
}

// Job is an in-flight training run started with Start.
type Job struct {
	sys       *cluster.System
	res       *Result
	rec       *recorder
	opts      Options
	batch     int
	start     time.Duration
	finish    time.Duration
	epochEnds []time.Duration
	portBase  units.Bytes
	done      sim.Signal

	// Abort machinery: when a fault kills the job, every rank stops at the
	// same iteration boundary (cutoff) so no collective is left waiting on
	// a rank that already quit — the simulated analog of NCCL tearing the
	// process group down after a peer dies.
	totalIters int
	maxStarted int // highest iteration any rank has begun (-1 before iter 0)
	cutoff     int
	aborted    bool
}

// Done returns the signal fired when all ranks complete (or, for an
// aborted job, when the wind-down drains).
func (j *Job) Done() *sim.Signal { return &j.done }

// Abort requests a cooperative stop: every rank finishes the last
// iteration any rank has already begun (keeping in-flight collectives
// consistent) and then exits; the loader and feeders drain so the
// simulation winds down cleanly and the Done signal still fires. It must
// be called from inside the simulation. If the run has already begun its
// final iteration the abort is a no-op and the job completes normally —
// the fault lost the race against the finish line.
func (j *Job) Abort() {
	if j.aborted || j.done.Fired() {
		return
	}
	cut := j.maxStarted + 1
	if cut >= j.totalIters {
		return
	}
	j.aborted = true
	j.cutoff = cut
}

// Aborted reports whether the job was stopped by Abort before completing.
func (j *Job) Aborted() bool { return j.aborted }

// EpochsDone returns the number of epoch boundaries this run completed —
// the progress a checkpoint restart resumes from.
func (j *Job) EpochsDone() int { return len(j.epochEnds) }

// LastEpochEnd returns the virtual time of the last completed epoch
// boundary, and false when no epoch completed.
func (j *Job) LastEpochEnd() (time.Duration, bool) {
	if len(j.epochEnds) == 0 {
		return 0, false
	}
	return j.epochEnds[len(j.epochEnds)-1], true
}

// stopAt reports whether iteration it is past the abort cutoff.
func (j *Job) stopAt(it int) bool { return j.aborted && it >= j.cutoff }

// Start sets up and launches the training job's processes without running
// the simulation. The caller runs sys.Env (once, possibly with several
// concurrent jobs) and then calls Collect.
func Start(sys *cluster.System, opts Options) (*Job, error) {
	w := opts.Workload
	if w.Graph == nil {
		return nil, errors.New("train: options missing workload")
	}
	if opts.ItersPerEpoch <= 0 {
		return nil, errors.New("train: ItersPerEpoch must be set")
	}
	batch := opts.BatchPerGPU
	if batch == 0 {
		batch = w.BatchPerGPU
	}
	epochs := opts.Epochs
	if epochs == 0 {
		epochs = w.Epochs
	}
	strategy := opts.Strategy
	if strategy == "" {
		strategy = DDP
	}
	buckets := opts.Buckets
	if buckets <= 0 {
		buckets = 4
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 24
	}
	if opts.Sharded && strategy != DDP {
		return nil, errors.New("train: sharded training requires DDP")
	}
	nGPU := len(sys.GPUs)
	env := sys.Env

	// Memory admission: exactly the paper's OOM boundary (§V-C-4).
	shards := 1
	if opts.Sharded {
		shards = nGPU
	}
	need := w.MemoryNeeded(opts.Precision, batch, shards)
	for i, g := range sys.GPUs {
		if err := g.Alloc(need); err != nil {
			for _, h := range sys.GPUs[:i] {
				h.FreeMem(need)
			}
			return nil, fmt.Errorf("train: %s batch %d: %w", w.Name, batch, err)
		}
	}
	freeAll := func() {
		for _, g := range sys.GPUs {
			g.FreeMem(need)
		}
	}

	comm, err := collective.New(sys.Net, sys.GPUs)
	if err != nil {
		freeAll()
		return nil, err
	}
	if opts.Channels > 0 {
		comm.SetChannels(opts.Channels)
	}

	totalIters := epochs * opts.ItersPerEpoch
	globalBatch := batch * nGPU
	readPerIter := units.Bytes(globalBatch) * w.Data.BytesPerSample * units.Bytes(w.Data.ReadsPerSample)
	// Cold-read window: in a full-length run only the first epoch reads
	// from storage (the page cache serves the rest), i.e. a 1/Epochs
	// fraction of all iterations. The simulated run keeps that fraction
	// — scaled epochs must not overweight cold storage reads.
	coldIters := totalIters / w.Epochs
	if coldIters < 1 {
		coldIters = 1
	}
	datasetBytes := units.Bytes(coldIters) * readPerIter
	inputBytes := units.Bytes(batch) * w.Data.InputBytesPerSample
	decodePerBatch := time.Duration(globalBatch) * w.Data.DecodePerSample

	// Pinned staging buffers for the loader pipeline.
	staging := units.Bytes(prefetchDepth) * units.Bytes(nGPU) * inputBytes
	if err := sys.Host.AllocMem(staging); err != nil {
		freeAll()
		return nil, fmt.Errorf("train: staging buffers: %w", err)
	}

	rec := newRecorder(sys, opts.SampleInterval)

	// Checkpoint schedule: CheckpointsPerEpoch marks per epoch (workload
	// default, overridable), the last at the epoch boundary. Because the
	// simulated epoch is a shortened subset of the real one, the bytes
	// written per mark are scaled by simIters/realIters so checkpointing
	// keeps the same share of training time it has in a full-length run.
	ckptPer := w.CheckpointsPerEpoch
	if opts.CheckpointsPerEpoch > 0 {
		ckptPer = opts.CheckpointsPerEpoch
	}
	if ckptPer > opts.ItersPerEpoch {
		ckptPer = opts.ItersPerEpoch
	}
	// ckptAt is indexed by iteration (nil: no checkpoint there): the rank
	// loop probes it every iteration, so it must be a slice load, not a
	// map lookup.
	ckptAt := make([]*ckptPoint, totalIters)
	ckptScale := float64(opts.ItersPerEpoch) / float64(w.RealItersPerEpoch(nGPU))
	if ckptScale > 1 {
		ckptScale = 1
	}
	ckptBytes := units.Bytes(float64(w.CheckpointWriteBytes()) * ckptScale)
	for e := 0; e < epochs; e++ {
		for j := 0; j < ckptPer; j++ {
			it := e*opts.ItersPerEpoch + (j+1)*opts.ItersPerEpoch/ckptPer - 1
			if it >= 0 && it < totalIters {
				ckptAt[it] = newCkptPoint(nGPU)
			}
		}
	}

	// Loader: one process feeding per-rank queues, bounded by prefetch
	// tokens; the first epoch reads from storage, later epochs hit the
	// page cache (storage.PageCache).
	// Per-rank process/queue names, computed once up front (strconv, not
	// fmt) so the spawn paths below never format.
	rankStr := make([]string, nGPU)
	for i := range rankStr {
		rankStr[i] = strconv.Itoa(i)
	}

	res := &Result{
		System: sys.Cfg.Name, Workload: w.Name,
		Strategy: strategy, Precision: opts.Precision, Sharded: opts.Sharded,
		BatchPerGPU: batch, Epochs: epochs, Iters: totalIters,
	}
	job := &Job{
		sys: sys, res: res, rec: rec, opts: opts, batch: batch, start: env.Now(),
		totalIters: totalIters, maxStarted: -1,
	}
	for _, id := range sys.FalconGPUPortLinks {
		ab, ba := sys.Net.LinkTrafficSnapshot(id)
		job.portBase += ab + ba
	}

	// Checkpoint restore on restart: before any rank computes, rank 0
	// reads the last checkpoint back from the storage tier and every rank
	// loads the restored parameters host→GPU — the price of resuming that
	// the R1 checkpoint-interval experiment trades against lost work.
	var restored sim.Signal
	resuming := opts.ResumeEpochs > 0
	if resuming {
		env.Go("restore", func(p *sim.Proc) {
			restoreT0 := p.Now()
			if err := sys.Store.Read(p, sys.Mem, ckptBytes, false); err != nil {
				panic(err)
			}
			specs := make([]fabric.TransferSpec, nGPU)
			for i, g := range sys.GPUs {
				specs[i] = fabric.TransferSpec{Src: sys.Mem, Dst: g.Node, Size: ckptBytes}
			}
			if err := sys.Net.ParallelTransfer(p, specs); err != nil {
				panic(err)
			}
			rec.event(p.Now(), ProbeRestore, w.Name)
			if opts.Probe != nil {
				opts.Probe(ProbeRestore, p.Now())
			}
			if opts.Obs != nil {
				id := opts.Obs.Emit(obs.CatTrain, "restore", restoreT0, p.Now())
				opts.Obs.SetAttr(id, "job", int64(opts.ObsJob))
			}
			restored.Fire(env)
		})
	}

	prefetch := sim.NewResource("loader.prefetch", prefetchDepth*nGPU)
	queues := make([]*sim.Queue, nGPU)
	for i := range queues {
		queues[i] = sim.NewQueue("batches.gpu" + rankStr[i])
	}
	cacheKey := w.Name + "/" + w.Data.Name
	env.Go("loader", func(p *sim.Proc) {
		if resuming {
			restored.Wait(p)
		}
		for it := 0; it < totalIters && !job.stopAt(it); it++ {
			prefetch.Acquire(p, nGPU)
			if sys.Cache.CachedBytes(cacheKey) < datasetBytes {
				if err := sys.Store.Read(p, sys.Mem, readPerIter, w.Data.RandomAccess); err != nil {
					panic(err)
				}
				sys.Cache.Admit(cacheKey, readPerIter, datasetBytes)
			}
			sys.Host.RunOnCores(p, workers, decodePerBatch/time.Duration(workers))
			for _, q := range queues {
				q.Put(env, it)
			}
		}
		for _, q := range queues {
			q.Close(env)
		}
	})

	// Per-rank H2D feeders: double-buffered host→GPU input copies that
	// overlap the previous iteration's compute (pinned-memory prefetch).
	// After an abort they keep draining the loader's queue — releasing
	// prefetch tokens without copying — so every process winds down.
	h2dReady := make([]*sim.Queue, nGPU)
	for i := range h2dReady {
		h2dReady[i] = sim.NewQueue("h2d.gpu" + rankStr[i])
	}
	for rank := 0; rank < nGPU; rank++ {
		dev := sys.GPUs[rank]
		env.Go("feeder"+rankStr[rank], func(p *sim.Proc) {
			inflight := sim.NewResource("h2dbuf"+rankStr[rank], 2)
			for it := 0; ; it++ {
				_, ok := queues[rank].Get(p)
				if !ok {
					h2dReady[rank].Close(env)
					return
				}
				prefetch.Release(env, 1)
				if job.stopAt(it) {
					continue // past the cutoff: no rank will consume this
				}
				inflight.Acquire(p, 1)
				f, err := sys.Net.StartFlow(sys.Mem, dev.Node, inputBytes)
				if err != nil {
					panic(err)
				}
				h2dReady[rank].Put(env, &h2dItem{done: f.Done(), buf: inflight})
			}
		})
	}

	fwd, bwd := w.ComputeTime(dev0Spec(sys), opts.Precision, batch)
	gradBytes := w.GradBytes(opts.Precision)
	paramBytes := units.Bytes(w.Graph.Params()) * opts.Precision.BytesPerElement()

	var ranksDone sim.WaitGroup
	ranksDone.Add(nGPU)

	// obsEpochStart tracks the last epoch boundary for the epoch spans;
	// only rank 0 reads or writes it.
	obsEpochStart := env.Now()
	for rank := 0; rank < nGPU; rank++ {
		dev := sys.GPUs[rank]
		env.Go("rank"+rankStr[rank], func(p *sim.Proc) {
			if resuming {
				restored.Wait(p)
			}
			// Bucket-collective handles, reused across iterations.
			handles := make([]*sim.Signal, 0, buckets)
			for it := 0; it < totalIters; it++ {
				// Abort cutoff: every rank runs exactly the iterations
				// some rank had begun when Abort fired, then stops — so
				// collectives never wait on a departed peer.
				if job.stopAt(it) {
					break
				}
				if it > job.maxStarted {
					job.maxStarted = it
				}
				// Input batch: wait for the prefetched H2D copy.
				v, ok := h2dReady[rank].Get(p)
				if !ok {
					panic("train: feeder closed early")
				}
				item := v.(*h2dItem)
				item.done.Wait(p)
				item.buf.Release(env, 1)

				// Host-side dispatch (kernel launches, optimizer glue):
				// CPU time during which the GPU appears mostly busy to
				// a coarse sampler.
				sys.Host.RunOnCore(p, w.LaunchOverhead)
				dev.MarkBusyFor(time.Duration(float64(w.LaunchOverhead) * launchBusyFraction))

				// Forward.
				dev.Compute(p, fwd)

				// Backward + gradient synchronization.
				switch {
				case strategy == DP:
					dev.Compute(p, bwd)
					sys.Host.RunOnCore(p, w.DPPerIterOverhead)
					t0 := p.Now()
					comm.ReduceToRoot(p, rank, 0, gradBytes)
					comm.Broadcast(p, rank, 0, paramBytes)
					dev.MarkBusyFor(p.Now() - t0)
				case opts.Sharded:
					handles = handles[:0]
					for b := 0; b < buckets; b++ {
						dev.Compute(p, bwd/time.Duration(buckets))
						handles = append(handles, comm.StartReduceScatter(rank, gradBytes/units.Bytes(buckets)))
					}
					t0 := p.Now()
					// One park at the last bucket's completion: bucket ops
					// serialize on the communicator, so waiting on all of
					// them resumes exactly where waiting one-by-one did.
					sim.WaitAll(p, handles)
					// Shard-local optimizer step, then parameter
					// all-gather.
					comm.StartAllGather(rank, paramBytes).Wait(p)
					dev.MarkBusyFor(p.Now() - t0)
				default: // DDP
					handles = handles[:0]
					for b := 0; b < buckets; b++ {
						dev.Compute(p, bwd/time.Duration(buckets))
						handles = append(handles, comm.StartAllReduce(rank, gradBytes/units.Bytes(buckets)))
					}
					t0 := p.Now()
					sim.WaitAll(p, handles)
					dev.MarkBusyFor(p.Now() - t0)
				}

				// Checkpoint barrier (Figure 9's periodic dips).
				if cp := ckptAt[it]; cp != nil {
					ckptT0 := p.Now()
					cp.arrive(env, p, rank, func(cb *sim.Proc) {
						if err := sys.Net.Transfer(cb, sys.GPUs[0].Node, sys.Mem, ckptBytes); err != nil {
							panic(err)
						}
						if err := sys.Store.Write(cb, sys.Mem, ckptBytes); err != nil {
							panic(err)
						}
					})
					if rank == 0 {
						rec.event(p.Now(), ProbeCheckpoint, w.Name)
						if opts.Probe != nil {
							opts.Probe(ProbeCheckpoint, p.Now())
						}
						if opts.Obs != nil {
							id := opts.Obs.Emit(obs.CatTrain, "checkpoint", ckptT0, p.Now())
							opts.Obs.SetAttr(id, "job", int64(opts.ObsJob))
						}
					}
				}
				if rank == 0 && (it+1)%opts.ItersPerEpoch == 0 {
					job.epochEnds = append(job.epochEnds, p.Now())
					rec.event(p.Now(), ProbeEpoch, w.Name)
					if opts.Probe != nil {
						opts.Probe(ProbeEpoch, p.Now())
					}
					if opts.Obs != nil {
						id := opts.Obs.Emit(obs.CatTrain, "epoch", obsEpochStart, p.Now())
						opts.Obs.SetAttr(id, "job", int64(opts.ObsJob))
						opts.Obs.SetAttr(id, "epoch", int64(len(job.epochEnds)+opts.ResumeEpochs))
						obsEpochStart = p.Now()
					}
				}
			}
			// Abort wind-down: drain copies the feeder had in flight before
			// it saw the cutoff, releasing their pinned buffers so the
			// feeder can finish discarding and every process exits.
			if job.aborted {
				for {
					v, ok := h2dReady[rank].Get(p)
					if !ok {
						break
					}
					item := v.(*h2dItem)
					item.done.Wait(p)
					item.buf.Release(env, 1)
				}
			}
			ranksDone.Done(env)
		})
	}

	env.Go("join", func(p *sim.Proc) {
		ranksDone.Wait(p)
		job.finish = p.Now()
		rec.stop()
		sys.Host.FreeMem(staging)
		freeAll()
		final := ProbeDone
		if job.aborted {
			final = ProbeAbort
		}
		rec.event(p.Now(), final, w.Name)
		if opts.Probe != nil {
			opts.Probe(final, p.Now())
		}
		if opts.Obs != nil {
			id := opts.Obs.Instant(obs.CatTrain, final)
			opts.Obs.SetAttr(id, "job", int64(opts.ObsJob))
		}
		job.done.Fire(env)
	})
	return job, nil
}

// Collect finalizes the job's metrics. It must be called after the
// simulation has run the job to completion.
func (j *Job) Collect() (*Result, error) {
	if !j.done.Fired() {
		return nil, errors.New("train: Collect before job completion (run the environment first)")
	}
	if j.aborted {
		return nil, errors.New("train: job was aborted; no result (reschedule from the last checkpoint)")
	}
	sys, res, w := j.sys, j.res, j.opts.Workload
	elapsed := j.finish - j.start
	res.TotalTime = elapsed
	res.AvgIter = elapsed / time.Duration(res.Iters)
	prev := j.start
	for _, e := range j.epochEnds {
		res.EpochTimes = append(res.EpochTimes, e-prev)
		prev = e
	}
	j.rec.fill(res)
	res.MemAccessFrac = memAccessFrac(sys, w, j.opts.Precision, j.batch, res.AvgIter)
	for _, g := range sys.GPUs {
		if g.PeakUsed() > res.PeakGPUMem {
			res.PeakGPUMem = g.PeakUsed()
		}
	}
	if len(sys.FalconGPUPortLinks) > 0 && elapsed > 0 {
		var total units.Bytes
		for _, id := range sys.FalconGPUPortLinks {
			ab, ba := sys.Net.LinkTrafficSnapshot(id)
			total += ab + ba
		}
		res.FalconPCIeGBps = float64(total-j.portBase) * pcieWireOverhead / elapsed.Seconds() / 1e9
	}
	return res, nil
}

type h2dItem struct {
	done *sim.Signal
	buf  *sim.Resource
}

func dev0Spec(sys *cluster.System) gpu.Spec { return sys.GPUs[0].Spec }

// ckptPoint coordinates one all-rank checkpoint: every rank arrives, rank 0
// performs the D2H copy and storage write, everyone else waits.
type ckptPoint struct {
	wg   sim.WaitGroup
	done sim.Signal
}

func newCkptPoint(n int) *ckptPoint {
	cp := &ckptPoint{}
	cp.wg.Add(n)
	return cp
}

func (cp *ckptPoint) arrive(env *sim.Env, p *sim.Proc, rank int, write func(*sim.Proc)) {
	cp.wg.Done(env)
	if rank == 0 {
		cp.wg.Wait(p)
		write(p)
		cp.done.Fire(env)
		return
	}
	cp.done.Wait(p)
}

// memAccessFrac estimates the fraction of iteration time the GPU spends
// memory-bound: three activation passes (forward, backward, weight grads)
// plus parameter and gradient sweeps over HBM2.
func memAccessFrac(sys *cluster.System, w dlmodel.Workload, prec gpu.Precision, batch int, iter time.Duration) float64 {
	if iter <= 0 {
		return 0
	}
	act := w.ActPerSampleFP16
	if prec == gpu.FP32 {
		act *= 2
	}
	traffic := 3*float64(act)*float64(batch) + 6*float64(w.GradBytes(prec))
	memTime := traffic / float64(sys.GPUs[0].Spec.MemBW)
	frac := memTime / iter.Seconds()
	if frac > 1 {
		frac = 1
	}
	return frac
}
