package train

import (
	"time"

	"composable/internal/cluster"
	"composable/internal/sim"
	"composable/internal/telemetry"
	"composable/internal/units"
)

// Metric series names recorded by every run.
const (
	SeriesGPUUtil    = "gpu_util"
	SeriesGPUMemUtil = "gpu_mem_util"
	SeriesCPUUtil    = "cpu_util"
	SeriesHostMem    = "host_mem_util"
	SeriesFalconGBps = "falcon_pcie_gbps"
)

// TrackEvents is the recorder's annotated event track: training lifecycle
// marks (epoch, checkpoint, restore, done/abort) recorded alongside the
// gauge series, so figures and CSV exports can overlay when checkpoints
// and faults happened on the utilization curves.
const TrackEvents = "events"

// recorder wires the telemetry probes the paper's tooling collected:
// windowed GPU utilization (nvidia-smi), GPU memory, host CPU and memory
// (wandb system metrics) and Falcon port traffic (chassis GUI), plus the
// annotated lifecycle event track.
type recorder struct {
	rec    *telemetry.Recorder
	events *telemetry.Track
}

func newRecorder(sys *cluster.System, interval time.Duration) *recorder {
	rec := telemetry.NewRecorder(sys.Env, interval)

	// GPU utilization: windowed busy fraction averaged across devices.
	type snap struct{ t, busy sim.Time }
	gpuMarks := make([]snap, len(sys.GPUs))
	rec.AddProbe(SeriesGPUUtil, func() float64 {
		sum := 0.0
		for i, g := range sys.GPUs {
			u := g.UtilizationSince(gpuMarks[i].t, gpuMarks[i].busy)
			gpuMarks[i].t, gpuMarks[i].busy = g.BusySnapshot()
			sum += u
		}
		return sum / float64(len(sys.GPUs))
	})
	rec.AddProbe(SeriesGPUMemUtil, func() float64 {
		sum := 0.0
		for _, g := range sys.GPUs {
			sum += g.MemUtilization()
		}
		return sum / float64(len(sys.GPUs))
	})
	var cpuMark snap
	rec.AddProbe(SeriesCPUUtil, func() float64 {
		u := sys.Host.UtilizationSince(cpuMark.t, cpuMark.busy)
		cpuMark.t, cpuMark.busy = sys.Host.BusySnapshot()
		return u
	})
	rec.AddProbe(SeriesHostMem, func() float64 { return sys.Host.MemUtilization() })

	if len(sys.FalconGPUPortLinks) > 0 {
		last := make(map[int]units.Bytes)
		var lastT sim.Time
		rec.AddProbe(SeriesFalconGBps, func() float64 {
			now := sys.Env.Now()
			dt := (now - lastT).Seconds()
			var delta units.Bytes
			for i, id := range sys.FalconGPUPortLinks {
				ab, ba := sys.Net.LinkTrafficSnapshot(id)
				cur := ab + ba
				delta += cur - last[i]
				last[i] = cur
			}
			lastT = now
			if dt <= 0 {
				return 0
			}
			// Same wire-overhead accounting as Result.FalconPCIeGBps.
			return float64(delta) * pcieWireOverhead / dt / 1e9
		})
	}
	rec.Start()
	return &recorder{rec: rec, events: rec.AddTrack(TrackEvents)}
}

func (r *recorder) stop() { r.rec.Stop() }

// event annotates the lifecycle track.
func (r *recorder) event(at time.Duration, kind, label string) {
	r.events.Record(at, kind, label)
}

// fill copies the series means into the result.
func (r *recorder) fill(res *Result) {
	res.Recorder = r.rec
	if s := r.rec.Series(SeriesGPUUtil); s != nil {
		res.AvgGPUUtil = s.Mean()
	}
	if s := r.rec.Series(SeriesGPUMemUtil); s != nil {
		res.AvgGPUMemUtil = s.Mean()
	}
	if s := r.rec.Series(SeriesCPUUtil); s != nil {
		res.AvgCPUUtil = s.Mean()
	}
	if s := r.rec.Series(SeriesHostMem); s != nil {
		res.AvgHostMemUtil = s.Mean()
	}
}
