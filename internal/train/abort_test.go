package train

import (
	"testing"
	"time"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/sim"
)

// startOn composes cfg and starts (without running) a job on it.
func startOn(t *testing.T, cfg cluster.Config, opts Options) (*sim.Env, *cluster.System, *Job) {
	t.Helper()
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := Start(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	return env, sys, job
}

func TestAbortMidRunWindsDownCleanly(t *testing.T) {
	opts := quickOpts(dlmodel.ResNet50Workload())
	// Full run first, to pick an abort instant in the middle.
	full := runOn(t, cluster.LocalGPUsConfig(), opts)

	env, sys, job := startOn(t, cluster.LocalGPUsConfig(), opts)
	baseHostMem := sys.Host.UsedMem() // staging buffers are already pinned
	env.Schedule(full.TotalTime/2, func() { job.Abort() })
	if err := env.Run(); err != nil {
		t.Fatalf("aborted run did not wind down: %v", err)
	}
	if !job.Aborted() {
		t.Fatal("job not marked aborted")
	}
	if !job.Done().Fired() {
		t.Fatal("done signal never fired")
	}
	if _, err := job.Collect(); err == nil {
		t.Fatal("Collect on aborted job should error")
	}
	if got := job.EpochsDone(); got < 0 || got >= opts.Epochs {
		t.Fatalf("aborted halfway: epochs done = %d, want in [0,%d)", got, opts.Epochs)
	}
	// Wind-down must leave no residue: memory freed, flows drained.
	for _, g := range sys.GPUs {
		if g.Used() != 0 {
			t.Fatalf("%s still holds %v after abort", g.Name(), g.Used())
		}
	}
	if n := sys.Net.ActiveFlows(); n != 0 {
		t.Fatalf("%d flows still active after abort", n)
	}
	if got := sys.Host.UsedMem(); got >= baseHostMem {
		t.Fatalf("host memory after abort (%v) not below start-of-run level (%v): staging leak", got, baseHostMem)
	}
}

func TestAbortIsDeterministic(t *testing.T) {
	opts := quickOpts(dlmodel.ResNet50Workload())
	full := runOn(t, cluster.LocalGPUsConfig(), opts)
	wind := func() (time.Duration, int) {
		env, _, job := startOn(t, cluster.LocalGPUsConfig(), opts)
		env.Schedule(full.TotalTime/3, func() { job.Abort() })
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return job.finish, job.EpochsDone()
	}
	f1, e1 := wind()
	f2, e2 := wind()
	if f1 != f2 || e1 != e2 {
		t.Fatalf("aborted runs diverged: (%v,%d) vs (%v,%d)", f1, e1, f2, e2)
	}
}

func TestAbortPastFinalIterationCompletes(t *testing.T) {
	opts := quickOpts(dlmodel.ResNet50Workload())
	full := runOn(t, cluster.LocalGPUsConfig(), opts)
	env, _, job := startOn(t, cluster.LocalGPUsConfig(), opts)
	// Fire inside the last iteration: the abort loses the race and the
	// run completes normally.
	env.Schedule(full.TotalTime-time.Millisecond, func() { job.Abort() })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if job.Aborted() {
		t.Fatal("abort past the final iteration should be a no-op")
	}
	if _, err := job.Collect(); err != nil {
		t.Fatalf("run should have completed: %v", err)
	}
}

func TestResumeChargesRestoreCost(t *testing.T) {
	opts := quickOpts(dlmodel.ResNet50Workload())
	opts.Epochs = 1
	fresh := runOn(t, cluster.LocalGPUsConfig(), opts)
	resumed := opts
	resumed.ResumeEpochs = 1
	res := runOn(t, cluster.LocalGPUsConfig(), resumed)
	if res.TotalTime <= fresh.TotalTime {
		t.Fatalf("resumed run (%v) not slower than fresh run (%v): restore cost missing",
			res.TotalTime, fresh.TotalTime)
	}
	if opts.Fingerprint() == resumed.Fingerprint() {
		t.Fatal("ResumeEpochs must be outcome-relevant in the fingerprint")
	}
}

func TestCheckpointsPerEpochOverride(t *testing.T) {
	count := func(per int) int {
		opts := quickOpts(dlmodel.ResNet50Workload())
		opts.CheckpointsPerEpoch = per
		ckpts := 0
		opts.Probe = func(event string, at time.Duration) {
			if event == ProbeCheckpoint {
				ckpts++
			}
		}
		runOn(t, cluster.LocalGPUsConfig(), opts)
		return ckpts
	}
	if got := count(4); got != 4*2 {
		t.Fatalf("override 4/epoch × 2 epochs: %d checkpoints, want 8", got)
	}
	if got := count(1); got != 2 {
		t.Fatalf("override 1/epoch × 2 epochs: %d checkpoints, want 2", got)
	}
}

func TestLifecycleTrackRecordsEvents(t *testing.T) {
	opts := quickOpts(dlmodel.ResNet50Workload())
	res := runOn(t, cluster.LocalGPUsConfig(), opts)
	track := res.Recorder.Track(TrackEvents)
	if track == nil {
		t.Fatal("no lifecycle track on the recorder")
	}
	byKind := map[string]int{}
	for _, e := range track.Events {
		byKind[e.Kind]++
	}
	if byKind[ProbeEpoch] != opts.Epochs {
		t.Errorf("track has %d epoch marks, want %d", byKind[ProbeEpoch], opts.Epochs)
	}
	if byKind[ProbeCheckpoint] == 0 || byKind[ProbeDone] != 1 {
		t.Errorf("track missing checkpoint/done marks: %v", byKind)
	}
	if track.CSV() == "" || track.Timeline(40, res.TotalTime) == "" {
		t.Error("track CSV/timeline rendering empty")
	}
}
