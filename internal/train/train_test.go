package train

import (
	"strings"
	"testing"
	"time"

	"composable/internal/cluster"
	"composable/internal/dlmodel"
	"composable/internal/gpu"
	"composable/internal/sim"
)

// runOn composes cfg and trains w on it with small scaled epochs.
func runOn(t *testing.T, cfg cluster.Config, opts Options) *Result {
	t.Helper()
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func quickOpts(w dlmodel.Workload) Options {
	return Options{
		Workload:      w,
		Precision:     gpu.FP16,
		Strategy:      DDP,
		Epochs:        2,
		ItersPerEpoch: 12,
	}
}

func TestResNetTrainsOnLocalGPUs(t *testing.T) {
	res := runOn(t, cluster.LocalGPUsConfig(), quickOpts(dlmodel.ResNet50Workload()))
	if res.Iters != 24 {
		t.Fatalf("iters = %d", res.Iters)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	// ResNet-50 FP16 batch 128 iterations on V100s land near 130 ms.
	if res.AvgIter < 90*time.Millisecond || res.AvgIter > 220*time.Millisecond {
		t.Fatalf("avg iter = %v, want ~130ms", res.AvgIter)
	}
	if len(res.EpochTimes) != 2 {
		t.Fatalf("epochs recorded = %d", len(res.EpochTimes))
	}
	if res.AvgGPUUtil < 0.7 || res.AvgGPUUtil > 1.0 {
		t.Fatalf("GPU util = %.2f, want >0.7 (paper: >80%%)", res.AvgGPUUtil)
	}
	if res.FalconPCIeGBps != 0 {
		t.Fatalf("local config reported falcon traffic %v", res.FalconPCIeGBps)
	}
}

func TestFalconSlowerThanLocalForBERTLarge(t *testing.T) {
	opts := quickOpts(dlmodel.BERTLargeWorkload())
	local := runOn(t, cluster.LocalGPUsConfig(), opts)
	falcon := runOn(t, cluster.FalconGPUsConfig(), opts)
	ratio := float64(falcon.TotalTime) / float64(local.TotalTime)
	t.Logf("BERT-L local=%v falcon=%v ratio=%.2f falconPCIe=%.1fGB/s",
		local.TotalTime, falcon.TotalTime, ratio, falcon.FalconPCIeGBps)
	// Paper: "BERT-large fine-tuning took almost twice as much time using
	// Falcon-attached GPUs".
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("falcon/local ratio = %.2f, want ≈2", ratio)
	}
	// Paper Figure 12: ≈76 GB/s PCIe traffic for BERT-large on falconGPUs.
	if falcon.FalconPCIeGBps < 55 || falcon.FalconPCIeGBps > 100 {
		t.Errorf("falcon PCIe traffic = %.1f GB/s, want ≈76", falcon.FalconPCIeGBps)
	}
}

func TestVisionOverheadSmallOnFalcon(t *testing.T) {
	opts := quickOpts(dlmodel.ResNet50Workload())
	local := runOn(t, cluster.LocalGPUsConfig(), opts)
	falcon := runOn(t, cluster.FalconGPUsConfig(), opts)
	overhead := float64(falcon.TotalTime)/float64(local.TotalTime) - 1
	t.Logf("ResNet-50 local=%v falcon=%v overhead=%.1f%%", local.TotalTime, falcon.TotalTime, overhead*100)
	// Paper: vision training is less than 7% slower on Falcon configs.
	if overhead < -0.02 || overhead > 0.08 {
		t.Errorf("ResNet-50 falcon overhead = %.1f%%, want < 7%%", overhead*100)
	}
}

func TestOOMBeyondBatchCeiling(t *testing.T) {
	opts := quickOpts(dlmodel.BERTLargeWorkload())
	opts.BatchPerGPU = 7 // paper: 6 is the ceiling without sharding
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cluster.LocalGPUsConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(sys, opts)
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("expected OOM for batch 7, got %v", err)
	}
	// Sharding admits batch 10 (paper §V-C-4).
	opts.BatchPerGPU = 10
	opts.Sharded = true
	env2 := sim.NewEnv()
	sys2, err := cluster.Compose(env2, cluster.LocalGPUsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sys2, opts); err != nil {
		t.Fatalf("sharded batch 10 should fit: %v", err)
	}
}

func TestDPSlowerThanDDP(t *testing.T) {
	base := quickOpts(dlmodel.BERTLargeWorkload())
	ddp := runOn(t, cluster.LocalGPUsConfig(), base)
	dp := base
	dp.Strategy = DP
	dpRes := runOn(t, cluster.LocalGPUsConfig(), dp)
	t.Logf("BERT-L DDP=%v DP=%v", ddp.TotalTime, dpRes.TotalTime)
	if dpRes.TotalTime <= ddp.TotalTime {
		t.Fatal("DP should be slower than DDP")
	}
}

func TestFP16FasterThanFP32(t *testing.T) {
	fp16 := quickOpts(dlmodel.BERTLargeWorkload())
	fp32 := fp16
	fp32.Precision = gpu.FP32
	fp32.BatchPerGPU = 3 // FP32 activations don't fit batch 6
	r16 := runOn(t, cluster.LocalGPUsConfig(), fp16)
	r32 := runOn(t, cluster.LocalGPUsConfig(), fp32)
	// Compare per-sample time: FP16 must be >50% faster (paper §V-C-4).
	perSample16 := r16.TotalTime.Seconds() / float64(r16.Iters*r16.BatchPerGPU)
	perSample32 := r32.TotalTime.Seconds() / float64(r32.Iters*r32.BatchPerGPU)
	speedup := perSample32/perSample16 - 1
	t.Logf("BERT-L fp32=%.1fms/sample fp16=%.1fms/sample speedup=%.0f%%",
		perSample32*1e3, perSample16*1e3, speedup*100)
	if speedup < 0.5 {
		t.Errorf("FP16 speedup = %.0f%%, want > 50%%", speedup*100)
	}
}

func TestCPUUtilVisionAboveNLP(t *testing.T) {
	vision := runOn(t, cluster.LocalGPUsConfig(), quickOpts(dlmodel.ResNet50Workload()))
	nlp := runOn(t, cluster.LocalGPUsConfig(), quickOpts(dlmodel.BERTBaseWorkload()))
	t.Logf("CPU util: ResNet=%.1f%% BERT=%.1f%%", vision.AvgCPUUtil*100, nlp.AvgCPUUtil*100)
	if vision.AvgCPUUtil <= nlp.AvgCPUUtil {
		t.Error("vision should exercise the CPU more than NLP (paper §V-C-2)")
	}
	// Neither stresses the CPU (paper Figure 13).
	if vision.AvgCPUUtil > 0.6 {
		t.Errorf("ResNet CPU util = %.1f%%, too high", vision.AvgCPUUtil*100)
	}
}

func TestHostMemoryModest(t *testing.T) {
	res := runOn(t, cluster.LocalGPUsConfig(), quickOpts(dlmodel.ResNet50Workload()))
	if res.AvgHostMemUtil > 0.5 {
		t.Errorf("host memory util = %.1f%%, paper shows no memory stress", res.AvgHostMemUtil*100)
	}
	if res.AvgHostMemUtil <= 0 {
		t.Error("host memory util not recorded")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runOn(t, cluster.FalconGPUsConfig(), quickOpts(dlmodel.ResNet50Workload()))
	b := runOn(t, cluster.FalconGPUsConfig(), quickOpts(dlmodel.ResNet50Workload()))
	if a.TotalTime != b.TotalTime {
		t.Fatalf("non-deterministic: %v vs %v", a.TotalTime, b.TotalTime)
	}
}

func TestGPUMemUtilHigherForBERT(t *testing.T) {
	bert := runOn(t, cluster.LocalGPUsConfig(), quickOpts(dlmodel.BERTLargeWorkload()))
	mob := runOn(t, cluster.LocalGPUsConfig(), quickOpts(dlmodel.MobileNetV2Workload()))
	t.Logf("GPU mem: BERT-L=%.0f%% MobileNet=%.0f%%", bert.AvgGPUMemUtil*100, mob.AvgGPUMemUtil*100)
	if bert.AvgGPUMemUtil <= mob.AvgGPUMemUtil {
		t.Error("BERT-large should stress GPU memory more than MobileNetV2")
	}
	if bert.AvgGPUMemUtil < 0.8 {
		t.Errorf("BERT-large GPU mem util = %.0f%%, want high", bert.AvgGPUMemUtil*100)
	}
}

func TestInvalidOptions(t *testing.T) {
	env := sim.NewEnv()
	sys, err := cluster.Compose(env, cluster.LocalGPUsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sys, Options{Workload: dlmodel.ResNet50Workload()}); err == nil {
		t.Error("missing ItersPerEpoch should fail")
	}
	opts := quickOpts(dlmodel.ResNet50Workload())
	opts.Strategy = DP
	opts.Sharded = true
	if _, err := Run(sys, opts); err == nil {
		t.Error("sharded DP should be rejected")
	}
}

func TestEpochTimesSumToTotal(t *testing.T) {
	res := runOn(t, cluster.LocalGPUsConfig(), quickOpts(dlmodel.ResNet50Workload()))
	var sum time.Duration
	for _, e := range res.EpochTimes {
		sum += e
	}
	// Epoch boundaries are rank-0 observations; the run ends when the
	// last rank finishes, so the sum trails the total by less than an
	// iteration.
	if diff := res.TotalTime - sum; diff < 0 || diff > res.AvgIter {
		t.Fatalf("epochs sum %v vs total %v (avg iter %v)", sum, res.TotalTime, res.AvgIter)
	}
}

func TestShardedCommunicatesLessPerGPU(t *testing.T) {
	// ZeRO-2 at the same batch should not be slower than plain DDP on
	// falcon GPUs (reduce-scatter + all-gather ≈ all-reduce volume), and
	// it must free memory.
	base := quickOpts(dlmodel.BERTLargeWorkload())
	plain := runOn(t, cluster.FalconGPUsConfig(), base)
	sharded := base
	sharded.Sharded = true
	sh := runOn(t, cluster.FalconGPUsConfig(), sharded)
	if sh.PeakGPUMem >= plain.PeakGPUMem {
		t.Fatalf("sharded peak %v not below plain %v", sh.PeakGPUMem, plain.PeakGPUMem)
	}
	ratio := sh.TotalTime.Seconds() / plain.TotalTime.Seconds()
	if ratio > 1.15 {
		t.Fatalf("sharded/plain time = %.2f, want ≈1", ratio)
	}
}

func TestCheckpointDipsVisibleInSeries(t *testing.T) {
	opts := quickOpts(dlmodel.BERTLargeWorkload())
	opts.ItersPerEpoch = 15
	opts.SampleInterval = 50 * time.Millisecond
	res := runOn(t, cluster.LocalGPUsConfig(), opts)
	s := res.Recorder.Series(SeriesGPUUtil)
	if s.Min() >= s.Mean()*0.8 {
		t.Fatalf("no utilization dips visible: min %.2f mean %.2f (Figure 9 pattern)", s.Min(), s.Mean())
	}
}

func TestUtilizationSeriesBounded(t *testing.T) {
	res := runOn(t, cluster.FalconGPUsConfig(), quickOpts(dlmodel.BERTLargeWorkload()))
	for _, name := range []string{SeriesGPUUtil, SeriesCPUUtil, SeriesGPUMemUtil, SeriesHostMem} {
		s := res.Recorder.Series(name)
		if s == nil {
			t.Fatalf("missing series %s", name)
		}
		if s.Max() > 1.0000001 || s.Min() < 0 {
			t.Fatalf("%s out of [0,1]: min %.3f max %.3f", name, s.Min(), s.Max())
		}
	}
}

func TestHybridAndFalconBothChargePortTraffic(t *testing.T) {
	hybrid := runOn(t, cluster.HybridGPUsConfig(), quickOpts(dlmodel.BERTBaseWorkload()))
	falcon := runOn(t, cluster.FalconGPUsConfig(), quickOpts(dlmodel.BERTBaseWorkload()))
	if hybrid.FalconPCIeGBps <= 0 {
		t.Fatal("hybrid reported no falcon traffic")
	}
	// Hybrid has half the monitored ports: roughly half the traffic.
	ratio := falcon.FalconPCIeGBps / hybrid.FalconPCIeGBps
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("falcon/hybrid traffic ratio = %.2f, want ≈2", ratio)
	}
}
