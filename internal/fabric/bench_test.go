// The fabric-allocator micro-benchmarks. The contended-churn harness and
// the star topology builder live in internal/perfbench so that `go test
// -bench` here and `benchrunner -bench-json` measure the exact same code.
package fabric_test

import (
	"testing"

	"composable/internal/fabric"
	"composable/internal/perfbench"
	"composable/internal/sim"
	"composable/internal/units"
)

// BenchmarkFlowChurnSerial measures one flow add→drain→remove cycle per op
// over a two-hop path with no contention: the allocator's fixed cost.
func BenchmarkFlowChurnSerial(b *testing.B) {
	env := sim.NewEnv()
	net, eps := perfbench.StarNetwork(env, 2)
	env.Go("driver", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := net.Transfer(p, eps[0], eps[1], units.MB); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "flows/s")
}

// BenchmarkFlowChurnContended measures allocator churn under steady
// contention over the shared star switch. One op is one completed flow.
func BenchmarkFlowChurnContended(b *testing.B) { perfbench.BenchFabricFlowChurnContended(b) }

// BenchmarkRecomputeWide measures a single recompute sweep at width: 32
// concurrent flows started back to back (each start recomputes over the
// growing set), then drained.
func BenchmarkRecomputeWide(b *testing.B) {
	const width = 32
	env := sim.NewEnv()
	net, eps := perfbench.StarNetwork(env, width)
	env.Go("driver", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			flows := make([]*fabric.Flow, 0, width)
			for j := 0; j < width; j++ {
				f, err := net.StartFlow(eps[j], eps[(j+1)%width], units.MB)
				if err != nil {
					b.Error(err)
					return
				}
				flows = append(flows, f)
			}
			for _, f := range flows {
				f.Done().Wait(p)
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}
