package fabric

import (
	"strings"
	"testing"
	"time"

	"composable/internal/sim"
	"composable/internal/units"
)

func TestDotExport(t *testing.T) {
	env := sim.NewEnv()
	n := NewNetwork(env)
	a := n.AddNode("gpu0", KindGPU)
	b := n.AddNode("sw0", KindSwitch)
	n.Connect(a, b, units.GBps(12), units.GBps(10), time.Microsecond, "PCI-e 4.0")
	out := n.Dot("test")
	for _, want := range []string{"graph fabric", `"gpu0"`, `"sw0"`, "hexagon", "PCI-e 4.0", "12.00GB/s/10.00GB/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestLinkUtilizationOrdering(t *testing.T) {
	env := sim.NewEnv()
	n := NewNetwork(env)
	a := n.AddNode("a", KindGPU)
	b := n.AddNode("b", KindSwitch)
	c := n.AddNode("c", KindGPU)
	n.ConnectSym(a, b, units.GBps(10), 0, "x")
	n.ConnectSym(b, c, units.GBps(10), 0, "x")
	env.Go("t", func(p *sim.Proc) {
		_ = n.Transfer(p, a, b, 5*units.GB) // only link 0
		_ = n.Transfer(p, a, c, units.GB)   // both links
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	rows := n.LinkUtilization()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].AtoB != 6*units.GB || rows[1].AtoB != units.GB {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].From != "a" || rows[0].To != "b" {
		t.Fatalf("busiest link = %s--%s", rows[0].From, rows[0].To)
	}
}
