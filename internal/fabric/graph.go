// Package fabric simulates the interconnect of the composable system: a
// graph of PCIe root complexes, PCIe switches, NVLink meshes and devices,
// with data transfers modeled as fluid flows that share link bandwidth
// max-min fairly.
//
// This flow-level model is what turns the higher-level workload models into
// the paper's observed behaviour: when eight Falcon-attached GPUs run a
// NCCL-style ring all-reduce, their flows contend on the drawer switch and
// host-adapter links and the achievable bus bandwidth drops — exactly the
// PCIe-switching overhead the paper measures in Figures 11 and 12.
//
// For reference (paper Fig. 5, citing Papaioannou et al.), the latency
// ladder this fabric spans: CPU-to-memory ~ns, GPU-to-GPU NVLink ~1-2 µs,
// GPU across a PCIe switch ~2-3 µs, storage ~100 µs. Those orders of
// magnitude come out of the link parameters in package cluster.
package fabric

import (
	"fmt"
	"math"
	"time"

	"composable/internal/units"
)

// NodeID identifies a node in the fabric graph.
type NodeID int

// NodeKind classifies fabric nodes; the fabric itself treats all nodes
// uniformly, but composition and reporting layers use the kind.
type NodeKind string

// Node kinds used by the composable system model.
const (
	KindRootComplex NodeKind = "root-complex" // host CPU PCIe root
	KindSwitch      NodeKind = "pcie-switch"  // Falcon drawer switch
	KindHostAdapter NodeKind = "host-adapter" // Falcon host port adapter card
	KindGPU         NodeKind = "gpu"
	KindNVMe        NodeKind = "nvme"
	KindNIC         NodeKind = "nic"
	KindMemory      NodeKind = "memory" // host DRAM target
)

// Node is a vertex in the fabric graph.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
}

// LinkID identifies an undirected link (a pair of directed channels).
type LinkID int

// Link is a full-duplex connection between two nodes with independent
// per-direction capacities, a one-way traversal latency, and a protocol
// label (surfaced in Table IV).
type Link struct {
	ID       LinkID
	A, B     NodeID
	CapAtoB  units.BytesPerSec
	CapBtoA  units.BytesPerSec
	Latency  time.Duration
	Protocol string

	// Cumulative bytes moved in each direction, maintained continuously
	// by the flow engine; these back the Falcon port-traffic monitors
	// and Figure 12.
	bytesAtoB float64
	bytesBtoA float64
}

// BytesAtoB returns cumulative bytes moved A→B.
func (l *Link) BytesAtoB() units.Bytes { return units.Bytes(l.bytesAtoB) }

// BytesBtoA returns cumulative bytes moved B→A.
func (l *Link) BytesBtoA() units.Bytes { return units.Bytes(l.bytesBtoA) }

// dirLink is one direction of a Link.
type dirLink struct {
	link    *Link
	forward bool // true: A→B
}

func (d dirLink) capacity() float64 {
	if d.forward {
		return float64(d.link.CapAtoB)
	}
	return float64(d.link.CapBtoA)
}

func (d dirLink) addBytes(n float64) {
	if d.forward {
		d.link.bytesAtoB += n
	} else {
		d.link.bytesBtoA += n
	}
}

func (d dirLink) from() NodeID {
	if d.forward {
		return d.link.A
	}
	return d.link.B
}

func (d dirLink) to() NodeID {
	if d.forward {
		return d.link.B
	}
	return d.link.A
}

// addGraphStructures indexes a new link for routing.
func (n *Network) addGraphStructures(l *Link) {
	if l.CapAtoB > 0 {
		n.adj[l.A] = append(n.adj[l.A], dirLink{link: l, forward: true})
	}
	if l.CapBtoA > 0 {
		n.adj[l.B] = append(n.adj[l.B], dirLink{link: l, forward: false})
	}
	n.routeCache, n.routes = nil, nil
}

// AddNode adds a node and returns its ID.
func (n *Network) AddNode(name string, kind NodeKind) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, &Node{ID: id, Name: name, Kind: kind})
	n.routeCache, n.routes = nil, nil
	return id
}

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Nodes returns all nodes in creation order.
func (n *Network) Nodes() []*Node { return n.nodes }

// Links returns all links in creation order.
func (n *Network) Links() []*Link { return n.links }

// Connect adds a full-duplex link between a and b.
func (n *Network) Connect(a, b NodeID, capAB, capBA units.BytesPerSec, latency time.Duration, protocol string) LinkID {
	if a == b {
		panic("fabric: self-link")
	}
	l := &Link{
		ID: LinkID(len(n.links)), A: a, B: b,
		CapAtoB: capAB, CapBtoA: capBA,
		Latency: latency, Protocol: protocol,
	}
	n.links = append(n.links, l)
	n.linkCons = append(n.linkCons, nil, nil)
	n.addGraphStructures(l)
	return l.ID
}

// ConnectSym adds a link with equal capacity in both directions.
func (n *Network) ConnectSym(a, b NodeID, cap units.BytesPerSec, latency time.Duration, protocol string) LinkID {
	return n.Connect(a, b, cap, cap, latency, protocol)
}

// Link returns the link with the given ID.
func (n *Network) Link(id LinkID) *Link { return n.links[id] }

// denseRouteLimit is the node count up to which the route cache is a
// dense nodes×nodes table indexed directly by (src, dst) — one slice
// index instead of a map hash per flow start. Larger graphs (the
// 1000-GPU fleet direction) fall back to the map to avoid a quadratic
// table.
const denseRouteLimit = 256

// routeEntry is one dense-cache slot; path == nil after compute means
// dst is unreachable from src.
type routeEntry struct {
	path     []dirLink
	computed bool
}

// Route returns the directed links on the preferred path src→dst, or an
// error if dst is unreachable. Paths minimize total latency with a small
// per-hop penalty (so that, capacities being equal, fewer switch traversals
// win — matching real PCIe/NVLink route selection) and are cached.
//
//perf:hot
func (n *Network) Route(src, dst NodeID) ([]dirLink, error) {
	if src == dst {
		return nil, nil
	}
	if nn := len(n.nodes); nn <= denseRouteLimit {
		if len(n.routes) != nn*nn {
			n.routes = make([]routeEntry, nn*nn)
		}
		e := &n.routes[int(src)*nn+int(dst)]
		if !e.computed {
			e.path = n.dijkstra(src, dst)
			e.computed = true
		}
		if e.path == nil {
			return nil, n.noPathErr(src, dst)
		}
		return e.path, nil
	}
	if n.routeCache == nil {
		//lint:allow hotalloc(one-time fallback-cache build for >256-node graphs; the steady state hits the map, not this branch)
		n.routeCache = make(map[[2]NodeID][]dirLink)
	}
	key := [2]NodeID{src, dst}
	if p, ok := n.routeCache[key]; ok {
		if p == nil {
			return nil, n.noPathErr(src, dst)
		}
		return p, nil
	}
	p := n.dijkstra(src, dst)
	n.routeCache[key] = p
	if p == nil {
		return nil, n.noPathErr(src, dst)
	}
	return p, nil
}

func (n *Network) noPathErr(src, dst NodeID) error {
	return fmt.Errorf("fabric: no path %s → %s", n.nodes[src].Name, n.nodes[dst].Name)
}

// hopPenalty breaks ties between equal-latency paths in favor of fewer hops.
const hopPenalty = 10 * time.Nanosecond

func (n *Network) dijkstra(src, dst NodeID) []dirLink {
	const inf = math.MaxInt64
	if len(n.nodes) > denseRouteLimit {
		return n.dijkstraHeap(src, dst)
	}
	// Scratch arrays live on the Network: a fleet composition computes
	// routes for every endpoint pair, and per-call slices were a measurable
	// share of setup allocations.
	n.djReset()
	dist := n.djDist[:len(n.nodes)]
	prev := n.djPrev[:len(n.nodes)]
	hasPrev := n.djHasPrev[:len(n.nodes)]
	visited := n.djVisited[:len(n.nodes)]
	dist[src] = 0
	for {
		// Linear scan: fabric graphs are tens of nodes, so a heap is
		// not worth the code.
		best, bestD := NodeID(-1), int64(inf)
		for i, d := range dist {
			if !visited[i] && d < bestD {
				best, bestD = NodeID(i), d
			}
		}
		if best == -1 {
			break
		}
		if best == dst {
			break
		}
		visited[best] = true
		for _, dl := range n.adj[best] {
			cost := int64(dl.link.Latency) + int64(hopPenalty)
			if nd := dist[best] + cost; nd < dist[dl.to()] {
				dist[dl.to()] = nd
				prev[dl.to()] = dl
				hasPrev[dl.to()] = true
			}
		}
	}
	if !hasPrev[dst] {
		return nil
	}
	return n.djPath(src, dst)
}

// djReset (re)sizes and clears the dijkstra scratch arrays.
func (n *Network) djReset() {
	const inf = math.MaxInt64
	if len(n.djDist) < len(n.nodes) {
		n.djDist = make([]int64, len(n.nodes))
		n.djPrev = make([]dirLink, len(n.nodes))
		n.djHasPrev = make([]bool, len(n.nodes))
		n.djVisited = make([]bool, len(n.nodes))
	}
	dist := n.djDist[:len(n.nodes)]
	prev := n.djPrev[:len(n.nodes)]
	hasPrev := n.djHasPrev[:len(n.nodes)]
	visited := n.djVisited[:len(n.nodes)]
	for i := range dist {
		dist[i] = inf
		prev[i] = dirLink{}
		hasPrev[i] = false
		visited[i] = false
	}
}

// djPath reconstructs the src→dst path from the prev pointers.
func (n *Network) djPath(src, dst NodeID) []dirLink {
	prev := n.djPrev[:len(n.nodes)]
	rev := n.djRev[:0]
	for at := dst; at != src; at = prev[at].from() {
		rev = append(rev, prev[at])
	}
	n.djRev = rev
	path := make([]dirLink, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

// heapItem is one frontier entry in the large-graph dijkstra variant.
type heapItem struct {
	dist int64
	node NodeID
}

// heapLess orders the frontier by (dist, node): the node tiebreak makes
// the heap settle nodes in exactly the order the linear scan does —
// lowest index among equal distances — so both variants compute
// identical routes and the choice of variant is invisible to results.
func heapLess(a, b heapItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.node < b.node
}

func heapPush(h []heapItem, it heapItem) []heapItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func heapPop(h []heapItem) ([]heapItem, heapItem) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < len(h) && heapLess(h[l], h[s]) {
			s = l
		}
		if r < len(h) && heapLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return h, top
}

// dijkstraHeap is the frontier-heap variant used beyond denseRouteLimit:
// the linear scan's O(V) extract-min is fine at rack scale, but its
// quadratic total dominates pod-fleet composition (~2k nodes, routes for
// every endpoint pair). Stale heap entries are skipped via the visited
// and dist checks rather than a decrease-key.
func (n *Network) dijkstraHeap(src, dst NodeID) []dirLink {
	n.djReset()
	dist := n.djDist[:len(n.nodes)]
	prev := n.djPrev[:len(n.nodes)]
	hasPrev := n.djHasPrev[:len(n.nodes)]
	visited := n.djVisited[:len(n.nodes)]
	dist[src] = 0
	h := heapPush(n.djHeap[:0], heapItem{0, src})
	for len(h) > 0 {
		var it heapItem
		h, it = heapPop(h)
		if visited[it.node] || it.dist != dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		visited[it.node] = true
		for _, dl := range n.adj[it.node] {
			cost := int64(dl.link.Latency) + int64(hopPenalty)
			if nd := it.dist + cost; nd < dist[dl.to()] {
				dist[dl.to()] = nd
				prev[dl.to()] = dl
				hasPrev[dl.to()] = true
				h = heapPush(h, heapItem{nd, dl.to()})
			}
		}
	}
	n.djHeap = h[:0]
	if !hasPrev[dst] {
		return nil
	}
	return n.djPath(src, dst)
}

// PathLatency returns the one-way latency of the preferred src→dst path
// plus the per-endpoint overheads registered on the network (DMA engine
// setup, driver stack), which is what a p2p latency microbenchmark sees.
func (n *Network) PathLatency(src, dst NodeID) (time.Duration, error) {
	path, err := n.Route(src, dst)
	if err != nil {
		return 0, err
	}
	total := n.EndpointOverhead
	for _, dl := range path {
		total += dl.link.Latency
	}
	return total, nil
}

// PathProtocol describes the protocol of a path: the single protocol if
// uniform, otherwise the protocol of the bottleneck (lowest-capacity) hop.
func (n *Network) PathProtocol(src, dst NodeID) (string, error) {
	path, err := n.Route(src, dst)
	if err != nil {
		return "", err
	}
	if len(path) == 0 {
		return "local", nil
	}
	proto := path[0].link.Protocol
	bottleneck := path[0]
	for _, dl := range path[1:] {
		if dl.capacity() < bottleneck.capacity() {
			bottleneck = dl
		}
		if dl.link.Protocol != proto {
			proto = bottleneck.link.Protocol
		}
	}
	return proto, nil
}

// PathBottleneck returns the minimum directed capacity along src→dst.
func (n *Network) PathBottleneck(src, dst NodeID) (units.BytesPerSec, error) {
	path, err := n.Route(src, dst)
	if err != nil {
		return 0, err
	}
	best := math.MaxFloat64
	for _, dl := range path {
		if c := dl.capacity(); c < best {
			best = c
		}
	}
	if len(path) == 0 {
		return 0, nil
	}
	return units.BytesPerSec(best), nil
}
