package fabric

import (
	"fmt"
	"sort"
	"strings"

	"composable/internal/units"
)

// Dot renders the fabric as a Graphviz document: nodes grouped by kind,
// edges labeled with per-direction capacity and protocol. Useful for
// inspecting composed topologies (`composer -dot | dot -Tsvg`).
func (n *Network) Dot(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph fabric {\n  label=%q;\n  node [shape=box];\n", title)
	shapes := map[NodeKind]string{
		KindRootComplex: "doubleoctagon",
		KindSwitch:      "hexagon",
		KindHostAdapter: "component",
		KindGPU:         "box",
		KindNVMe:        "cylinder",
		KindNIC:         "cds",
		KindMemory:      "folder",
	}
	for _, node := range n.nodes {
		shape := shapes[node.Kind]
		if shape == "" {
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", node.ID, node.Name, shape)
	}
	for _, l := range n.links {
		label := fmt.Sprintf("%s\\n%s", l.Protocol, units.BytesPerSec(l.CapAtoB))
		if l.CapAtoB != l.CapBtoA {
			label = fmt.Sprintf("%s\\n%s/%s", l.Protocol,
				units.BytesPerSec(l.CapAtoB), units.BytesPerSec(l.CapBtoA))
		}
		fmt.Fprintf(&b, "  n%d -- n%d [label=%q];\n", l.A, l.B, label)
	}
	b.WriteString("}\n")
	return b.String()
}

// LinkUtilizationRow summarizes one link's cumulative traffic.
type LinkUtilizationRow struct {
	Link     LinkID
	From, To string
	Protocol string
	AtoB     units.Bytes
	BtoA     units.Bytes
}

// LinkUtilization returns cumulative traffic for every link, busiest
// first, after integrating in-flight flows to the current instant.
func (n *Network) LinkUtilization() []LinkUtilizationRow {
	n.advance()
	rows := make([]LinkUtilizationRow, 0, len(n.links))
	for _, l := range n.links {
		rows = append(rows, LinkUtilizationRow{
			Link: l.ID,
			From: n.nodes[l.A].Name, To: n.nodes[l.B].Name,
			Protocol: l.Protocol,
			AtoB:     l.BytesAtoB(), BtoA: l.BytesBtoA(),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].AtoB+rows[i].BtoA > rows[j].AtoB+rows[j].BtoA
	})
	return rows
}
