package fabric

import (
	"fmt"
	"math"
	"time"

	"composable/internal/obs"
	"composable/internal/sim"
	"composable/internal/units"
)

// Network is a fabric graph plus an active set of fluid flows. All mutation
// must happen inside the simulation (from processes or scheduled callbacks);
// the engine's strict handoff makes that race-free without locks.
type Network struct {
	env   *sim.Env
	nodes []*Node
	links []*Link
	adj   map[NodeID][]dirLink

	// EndpointOverhead is added once per transfer to model DMA/driver
	// setup at the endpoints; it dominates small-message p2p latency.
	EndpointOverhead time.Duration

	// flows is the active set in deterministic insertion order (removal
	// swaps the tail in; each flow tracks its index).
	flows      []*Flow
	lastUpdate sim.Time
	epoch      uint64
	routeCache map[[2]NodeID][]dirLink
	// routes is the dense route cache for small graphs (see Route); it
	// replaces a map hash per flow start with one slice index.
	routes []routeEntry

	// linkCons holds one persistent constraint per link direction, indexed
	// by 2*LinkID (+1 for the B→A direction), created lazily on first use.
	// cons lists the constraints that currently carry flows: flow add and
	// remove touch only the constraints on the flow's own path, and
	// recompute sweeps empty ones out lazily — nothing is rebuilt per
	// churn.
	linkCons []*constraint
	cons     []*constraint
	// liveCons is recomputeNow's scratch: the constraints still carrying
	// unfrozen flows, compacted between waterfill rounds so late rounds
	// scan only survivors instead of the whole active set. Compaction
	// preserves relative order, so equal-share ties resolve exactly as a
	// full scan would.
	liveCons []*constraint

	// freeFlows recycles Flow structs whose transfer fully completed and
	// whose waiter returned: the blocking helpers (Transfer,
	// TransferLimited, ParallelTransfer) release their flows here, so the
	// collective/storage traffic that dominates a training run reuses a
	// handful of Flow structs — including their done-signal waiter arrays
	// and cons backing — instead of allocating per transfer. Flows handed
	// out by StartFlow escape to the caller and are simply never recycled.
	freeFlows []*Flow
	// freeTimers recycles completion-timer thunks: each recompute arms one
	// timer carrying the allocation epoch it belongs to, and the thunk
	// returns itself to this list after it fires, making the arm
	// allocation-free in steady state.
	freeTimers []*completionTimer
	// armedTimer is the completion timer armed by the most recent
	// recompute, with the instant it was armed at and its fire time. When
	// several recomputes happen at the same instant and agree on the next
	// completion time (the symmetric ring channels of a collective do this
	// every round), re-arming just bumps the live timer's epoch instead of
	// enqueueing a superseding event — one completion event per instant
	// group instead of one per recompute.
	armedTimer *completionTimer
	armedAt    sim.Time
	armedFor   sim.Time

	// freeBatches recycles the grouped completion-signal events emitted by
	// finishCompleted (see signalBatch).
	freeBatches []*signalBatch

	// Dijkstra scratch (see dijkstra): reused across route computations.
	djDist    []int64
	djPrev    []dirLink
	djHasPrev []bool
	djVisited []bool
	djRev     []dirLink
	djHeap    []heapItem

	// recomputeQueued coalesces same-instant recompute requests into one
	// deferred sweep (flushFn, created once in NewNetwork): rates computed
	// mid-instant are never read — advance over zero elapsed time is a
	// no-op — so the arm/complete/arm bursts of a collective round trigger
	// one max-min sweep instead of three.
	recomputeQueued bool
	flushFn         func()

	// auditor, when set, runs after every max-min recompute with the new
	// allocation in place. It is the allocator's invariant probe point
	// (internal/invariant checks capacity and conservation through it);
	// the nil check keeps the churn path free.
	auditor func()

	// obs, when set, traces the allocator: every flow's lifetime becomes
	// one fabric-track span, capacity changes become instants, and
	// recompute sweeps bump obsRecompute. Nil-checked at every seam so a
	// disabled collector costs one branch on the hot path.
	obs          *obs.Collector
	obsRecompute obs.CounterID
}

// SetAuditor installs fn to run after every allocation recompute, once the
// new fair-share rates are assigned. Pass nil to remove it. The auditor
// must not start or cancel flows; it observes through VisitAllocations,
// VisitFlows and the link byte counters.
func (n *Network) SetAuditor(fn func()) { n.auditor = fn }

// SetObs installs an observability collector on the allocator: flow
// add/remove pairs become spans, SetLinkCapacity emits degrade/repair
// instants, recompute sweeps are counted, and the active-flow population
// is registered as a gauge. Pass nil to disable.
func (n *Network) SetObs(c *obs.Collector) {
	n.obs = c
	if c == nil {
		return
	}
	n.obsRecompute = c.Registry().Counter("fabric.recomputes")
	c.Registry().Gauge("fabric.active_flows", func() float64 { return float64(len(n.flows)) })
}

// VisitAllocations calls fn for every link direction currently carrying
// flows, with the total allocated rate and the direction's capacity (both
// bytes/sec). Per-flow rate-cap constraints are not included; see
// Flow.MaxRate.
func (n *Network) VisitAllocations(fn func(l *Link, forward bool, allocated, capacity float64)) {
	n.ensureAllocated()
	for _, st := range n.cons {
		if st.link == nil || len(st.flows) == 0 {
			continue
		}
		total := 0.0
		for _, cf := range st.flows {
			total += cf.f.rate
		}
		fn(st.link, st.forward, total, st.capacity())
	}
}

// VisitFlows calls fn for every active flow in insertion order.
func (n *Network) VisitFlows(fn func(f *Flow)) {
	n.ensureAllocated()
	for _, f := range n.flows {
		fn(f)
	}
}

// constraint is one capacity limit in the max-min allocation: a direction
// of a link, or a flow's own rate cap (a virtual single-flow link).
// Constraints persist across recomputes; residual and unfrozen are
// refreshed at the start of each allocation epoch.
type constraint struct {
	link    *Link // nil for per-flow rate caps
	forward bool
	capped  float64 // rate cap when link is nil

	flows    []conFlow
	residual float64
	unfrozen int
	// active tracks membership in Network.cons so a constraint is never
	// listed twice; it stays set while the constraint sits in cons, even
	// after its last flow leaves, until a recompute sweeps it out.
	active bool
}

// conFlow is one entry in a constraint's membership list: the flow plus
// the index of this constraint within the flow's own cons list, so a
// swap-remove can fix the moved flow's back-pointer in O(1).
type conFlow struct {
	f    *Flow
	back int
}

// flowCon is the reverse edge: a constraint on the flow's path plus the
// flow's position in that constraint's flows list.
type flowCon struct {
	st  *constraint
	idx int
}

func (st *constraint) capacity() float64 {
	if st.link == nil {
		return st.capped
	}
	if st.forward {
		return float64(st.link.CapAtoB)
	}
	return float64(st.link.CapBtoA)
}

// NewNetwork creates an empty fabric bound to a simulation environment.
func NewNetwork(env *sim.Env) *Network {
	n := &Network{
		env: env,
		adj: make(map[NodeID][]dirLink),
	}
	n.flushFn = func() {
		n.ensureAllocated()
	}
	return n
}

// Env returns the simulation environment.
func (n *Network) Env() *sim.Env { return n.env }

// Flow is an in-flight transfer. Its instantaneous rate is recomputed by
// the max-min fair allocator whenever the set of flows changes.
type Flow struct {
	Src, Dst  NodeID
	path      []dirLink
	remaining float64 // bytes
	rate      float64 // bytes/sec
	maxRate   float64 // 0 = unlimited; models endpoint media/DMA limits
	done      sim.Signal
	latency   time.Duration
	net       *Network

	// cons caches the constraints along the path (plus the rate cap, if
	// any), so recomputes never rebuild a flow→constraint index. Each
	// entry also records the flow's position in that constraint's flows
	// list, making membership removal O(1).
	cons []flowCon
	// capCon is the flow's persistent rate-cap constraint, created on the
	// first capped start and reused across recycles.
	capCon *constraint
	// idx is the flow's position in Network.flows.
	idx int
	// frozenEpoch marks the allocation epoch the flow was last frozen in,
	// replacing a per-recompute frozen set.
	frozenEpoch uint64
	// obsSpan is the flow's open trace span (0 = untraced); set by addFlow
	// and closed by removeFlow, surviving pooling because addFlow always
	// reassigns it.
	obsSpan obs.SpanID
}

// Done returns the signal fired when the flow (including its path latency)
// completes.
func (f *Flow) Done() *sim.Signal { return &f.done }

// Rate returns the flow's current allocated rate.
func (f *Flow) Rate() units.BytesPerSec {
	if f.net != nil {
		f.net.ensureAllocated()
	}
	return units.BytesPerSec(f.rate)
}

// Remaining returns the bytes not yet transferred, as of the last
// integration instant.
func (f *Flow) Remaining() units.Bytes { return units.Bytes(f.remaining) }

// MaxRate returns the flow's rate cap (0 = unlimited).
func (f *Flow) MaxRate() units.BytesPerSec { return units.BytesPerSec(f.maxRate) }

// StartFlow begins transferring size bytes src→dst and returns the flow.
// The returned flow's Done signal fires when the last byte arrives (transfer
// completion plus one-way path latency). Zero-length or same-node transfers
// complete after just the path latency.
func (n *Network) StartFlow(src, dst NodeID, size units.Bytes) (*Flow, error) {
	return n.StartFlowLimited(src, dst, size, 0)
}

// StartFlowLimited is StartFlow with a per-flow rate cap (0 = unlimited),
// used for endpoints whose internal media is slower than their link — an
// NVMe device's flash, a DMA engine's request rate.
//perf:hot
func (n *Network) StartFlowLimited(src, dst NodeID, size units.Bytes, maxRate units.BytesPerSec) (*Flow, error) {
	path, err := n.Route(src, dst)
	if err != nil {
		return nil, err
	}
	lat := n.EndpointOverhead
	for _, dl := range path {
		lat += dl.link.Latency
	}
	f := n.takeFlow()
	f.Src, f.Dst, f.path = src, dst, path
	f.remaining = float64(size)
	f.maxRate = float64(maxRate)
	f.latency = lat
	f.net = n
	n.advance()
	if f.remaining <= 0 || (len(path) == 0 && f.maxRate <= 0) {
		n.env.AfterSignal(lat, &f.done)
		return f, nil
	}
	n.addFlow(f)
	n.recomputeSync()
	return f, nil
}

// takeFlow pops a recycled Flow or allocates a fresh one. The caller
// overwrites every transfer field; rate and frozenEpoch are cleared here
// because the start paths rely on their zero values.
//
//perf:hot
func (n *Network) takeFlow() *Flow {
	if last := len(n.freeFlows) - 1; last >= 0 {
		f := n.freeFlows[last]
		n.freeFlows[last] = nil
		n.freeFlows = n.freeFlows[:last]
		f.rate = 0
		f.frozenEpoch = 0
		f.done.Reset()
		return f
	}
	return &Flow{net: n}
}

// releaseFlow recycles a flow whose Done signal has fired and whose
// waiters have all returned. Only the blocking helpers call it — a flow
// returned by StartFlow belongs to the caller, who may hold its Done
// signal indefinitely.
//
//perf:hot
func (n *Network) releaseFlow(f *Flow) {
	if !f.done.Fired() {
		panic("fabric: releaseFlow on an incomplete flow")
	}
	n.freeFlows = append(n.freeFlows, f)
}

// addFlow registers f with the active set and with the constraints on its
// path — the only link state touched is the flow's own.
//
//perf:hot
func (n *Network) addFlow(f *Flow) {
	f.obsSpan = 0
	if n.obs != nil {
		f.obsSpan = n.obs.Begin(obs.CatFabric, "flow")
		n.obs.SetAttr(f.obsSpan, "src", int64(f.Src))
		n.obs.SetAttr(f.obsSpan, "dst", int64(f.Dst))
	}
	f.idx = len(n.flows)
	n.flows = append(n.flows, f)
	if cap(f.cons) < len(f.path)+1 {
		f.cons = make([]flowCon, 0, len(f.path)+1)
	} else {
		f.cons = f.cons[:0]
	}
	for _, dl := range f.path {
		st := n.linkConstraint(dl)
		st.flows = append(st.flows, conFlow{f: f, back: len(f.cons)})
		if !st.active {
			st.active = true
			n.cons = append(n.cons, st)
		}
		f.cons = append(f.cons, flowCon{st: st, idx: len(st.flows) - 1})
	}
	if f.maxRate > 0 {
		st := f.capCon
		if st == nil {
			st = &constraint{}
			f.capCon = st
		}
		st.capped = f.maxRate
		st.flows = append(st.flows[:0], conFlow{f: f, back: len(f.cons)})
		capIdx := 0
		// A recycled flow's cap constraint is always swept out of cons by
		// the recompute that followed its removal, so re-appending here
		// keeps exactly the ordering a freshly allocated constraint had.
		if !st.active {
			st.active = true
			n.cons = append(n.cons, st)
		}
		f.cons = append(f.cons, flowCon{st: st, idx: capIdx})
	}
}

// removeFlow unregisters a completed flow, again touching only the
// constraints on its own path. Emptied constraints are left in cons for the
// next recompute to sweep out. The conIdx back-pointers make each
// membership removal O(1): the tail entry is swapped into the vacated
// slot (exactly the order the old linear scan produced) and its flow's
// back-pointer is patched.
//
//perf:hot
func (n *Network) removeFlow(f *Flow) {
	if n.obs != nil && f.obsSpan != 0 {
		n.obs.End(f.obsSpan)
		f.obsSpan = 0
	}
	last := len(n.flows) - 1
	n.flows[f.idx] = n.flows[last]
	n.flows[f.idx].idx = f.idx
	n.flows[last] = nil
	n.flows = n.flows[:last]
	for ci, fc := range f.cons {
		st := fc.st
		i := fc.idx
		m := len(st.flows) - 1
		moved := st.flows[m]
		st.flows[i] = moved
		moved.f.cons[moved.back].idx = i
		st.flows[m] = conFlow{}
		st.flows = st.flows[:m]
		f.cons[ci] = flowCon{}
	}
	f.cons = f.cons[:0]
}

// linkConstraint returns the persistent constraint for one link direction,
// creating it on first use.
//
//perf:hot
func (n *Network) linkConstraint(dl dirLink) *constraint {
	i := 2 * int(dl.link.ID)
	if !dl.forward {
		i++
	}
	st := n.linkCons[i]
	if st == nil {
		st = &constraint{link: dl.link, forward: dl.forward}
		n.linkCons[i] = st
	}
	return st
}

// TransferLimited moves size bytes with a per-flow rate cap, blocking until
// arrival.
//
//perf:hot
func (n *Network) TransferLimited(p *sim.Proc, src, dst NodeID, size units.Bytes, maxRate units.BytesPerSec) error {
	f, err := n.StartFlowLimited(src, dst, size, maxRate)
	if err != nil {
		return err
	}
	f.done.Wait(p)
	n.releaseFlow(f)
	return nil
}

// Transfer moves size bytes src→dst, blocking the calling process until the
// data has fully arrived. It is the common case wrapper around StartFlow.
//
//perf:hot
func (n *Network) Transfer(p *sim.Proc, src, dst NodeID, size units.Bytes) error {
	f, err := n.StartFlow(src, dst, size)
	if err != nil {
		return err
	}
	f.done.Wait(p)
	n.releaseFlow(f)
	return nil
}

// parallelStackWidth is the widest ParallelTransfer served from a stack
// buffer; collective ring passes and restore fan-outs have one leg per
// rank, far below it.
const parallelStackWidth = 32

// ParallelTransfer starts one flow per (src,dst,size) triple and blocks
// until all complete: the building block for collective steps. All legs
// begin at the same instant, so the fair-share allocation is recomputed
// once for the whole batch — the per-leg recomputes a StartFlow loop
// would run produce no observable allocation (no virtual time passes
// between them) and only cost CPU.
//
//perf:hot
func (n *Network) ParallelTransfer(p *sim.Proc, xs []TransferSpec) error {
	return n.ParallelTransferPadded(p, xs, 0)
}

// ParallelTransferPadded is ParallelTransfer followed by a proportional
// cool-down: the caller resumes at T + (T − now) × padFactor, where T is
// the instant the slowest leg completes. The collective rings use it to
// charge per-round protocol overhead without a second park per round.
//
//perf:hot
func (n *Network) ParallelTransferPadded(p *sim.Proc, xs []TransferSpec, padFactor float64) error {
	from := n.env.Now()
	var buf [parallelStackWidth]*Flow
	flows := buf[:0]
	if len(xs) > parallelStackWidth {
		flows = make([]*Flow, 0, len(xs))
	}
	flows, err := n.startLegs(xs, flows)
	if err != nil {
		return err
	}
	// One park for the whole batch: the wait resumes when the slowest leg
	// completes (plus the pad), exactly when the last of the sequential
	// Waits (plus a Sleep) would have.
	var sigBuf [parallelStackWidth]*sim.Signal
	sigs := sigBuf[:0]
	if len(flows) > parallelStackWidth {
		sigs = make([]*sim.Signal, 0, len(flows))
	}
	for _, f := range flows {
		sigs = append(sigs, &f.done)
	}
	sim.WaitAllPadded(p, sigs, from, padFactor)
	for _, f := range flows {
		n.releaseFlow(f)
	}
	return nil
}

// startLegs starts one flow per spec, appending to flows, with a single
// fair-share recompute for the whole batch. On a routing error the legs
// already admitted keep running (they were observably started); the error
// is returned after their rates are fixed up.
//
//perf:hot
func (n *Network) startLegs(xs []TransferSpec, flows []*Flow) ([]*Flow, error) {
	n.advance()
	added := false
	for _, x := range xs {
		path, err := n.Route(x.Src, x.Dst)
		if err != nil {
			if added {
				n.recompute() // flows already admitted must get rates
			}
			return flows, err
		}
		lat := n.EndpointOverhead
		for _, dl := range path {
			lat += dl.link.Latency
		}
		f := n.takeFlow()
		f.Src, f.Dst, f.path = x.Src, x.Dst, path
		f.remaining = float64(x.Size)
		f.maxRate = 0
		f.latency = lat
		f.net = n
		if f.remaining <= 0 || len(path) == 0 {
			n.env.AfterSignal(lat, &f.done)
		} else {
			n.addFlow(f)
			added = true
		}
		flows = append(flows, f)
	}
	if added {
		n.recompute()
	}
	return flows, nil
}

// ArmParallelTransfer is the stepper form of ParallelTransferPadded: it
// starts every leg and registers sp to step when the slowest completes,
// padded by (T − now) × padFactor, at the exact event position the
// blocking form would have resumed at. The started flows are appended to
// *out; the stepper releases them via ReleaseFlows at the start of its
// next step. Returns false (with no registration) if every leg finished
// instantly — the caller continues inline, as the blocking form would
// have.
//
//perf:hot
func (n *Network) ArmParallelTransfer(sp *sim.Proc, xs []TransferSpec, padFactor float64, out *[]*Flow) (bool, error) {
	from := n.env.Now()
	flows, err := n.startLegs(xs, (*out)[:0])
	*out = flows
	if err != nil {
		return false, err
	}
	var sigBuf [parallelStackWidth]*sim.Signal
	sigs := sigBuf[:0]
	if len(flows) > parallelStackWidth {
		sigs = make([]*sim.Signal, 0, len(flows))
	}
	for _, f := range flows {
		sigs = append(sigs, &f.done)
	}
	return sim.ArmWaitAllPadded(sp, sigs, from, padFactor), nil
}

// ReleaseFlows returns a batch of completed flows to the pool and
// truncates the slice in place.
//
//perf:hot
func (n *Network) ReleaseFlows(fs *[]*Flow) {
	for i, f := range *fs {
		n.releaseFlow(f)
		(*fs)[i] = nil
	}
	*fs = (*fs)[:0]
}

// TransferSpec names one leg of a parallel transfer.
type TransferSpec struct {
	Src, Dst NodeID
	Size     units.Bytes
}

// advance integrates all flows from lastUpdate to now at their current
// rates, crediting per-link byte counters.
//
//perf:hot
func (n *Network) advance() {
	now := n.env.Now()
	dt := (now - n.lastUpdate).Seconds()
	n.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, dl := range f.path {
			dl.addBytes(moved)
		}
	}
}

// recompute runs max-min fair allocation over the active flows and
// schedules the next completion event. It must be called with counters
// already advanced to the current instant.
//
// The sweep is incremental in its bookkeeping: constraints persist between
// calls (no byKey/flowCons maps are rebuilt), frozen state is an epoch
// stamp on each flow, and per-constraint unfrozen counts replace the
// per-round rescans of every constraint's flow list.
//
//perf:hot
func (n *Network) recompute() {
	if n.recomputeQueued {
		return
	}
	n.recomputeQueued = true
	n.env.After(0, n.flushFn)
}

// recomputeSync runs the sweep immediately, absorbing any pending
// deferred request. Paths that are normally the only recompute of their
// instant (flow completion, single flow starts, capacity changes) use it
// so they don't pay for a flush event that coalesces nothing.
//
//perf:hot
func (n *Network) recomputeSync() {
	n.recomputeQueued = false
	n.recomputeNow()
}

// ensureAllocated runs a pending deferred recompute immediately. Read
// APIs (Rate, VisitAllocations, VisitFlows) call it so a caller inspecting
// allocations in the same instant as a flow change sees fresh rates; the
// already-queued flush event then no-ops.
func (n *Network) ensureAllocated() {
	if !n.recomputeQueued {
		return
	}
	n.recomputeQueued = false
	n.recomputeNow()
}

// recomputeNow is the deferred body of recompute; it runs once per
// instant that requested one, via flushFn.
//
//perf:hot
func (n *Network) recomputeNow() {
	if n.obs != nil {
		n.obs.Inc(n.obsRecompute)
	}
	n.epoch++
	if len(n.flows) == 0 {
		if n.auditor != nil {
			n.auditor()
		}
		return
	}

	// Refresh the active constraints for this epoch, sweeping out the
	// ones whose last flow has left.
	cons := n.cons[:0]
	for _, st := range n.cons {
		if len(st.flows) == 0 {
			st.active = false
			continue
		}
		st.residual = st.capacity()
		st.unfrozen = len(st.flows)
		cons = append(cons, st)
	}
	for i := len(cons); i < len(n.cons); i++ {
		n.cons[i] = nil
	}
	n.cons = cons

	// Progressive filling: repeatedly find the most constrained
	// constraint (smallest fair share among its unfrozen flows), freeze
	// those flows at that share, remove their demand, repeat. Every
	// admitted flow sits on at least one constraint and each round
	// freezes every flow of the winning constraint, so the loop below
	// assigns every flow's rate — no reset pass is needed first.
	frozen := 0
	live := append(n.liveCons[:0], cons...)
	for frozen < len(n.flows) {
		bestShare := math.Inf(1)
		var best *constraint
		// Scan for the minimum share, compacting out constraints whose
		// flows all froze in earlier rounds as we go: collective-heavy
		// runs freeze most constraints in the first round or two, so late
		// rounds scan a short tail instead of the whole active set.
		w := 0
		for _, st := range live {
			if st.unfrozen == 0 {
				continue
			}
			live[w] = st
			w++
			share := st.residual / float64(st.unfrozen)
			if share < bestShare {
				bestShare, best = share, st
			}
		}
		live = live[:w]
		if best == nil {
			break
		}
		for _, cf := range best.flows {
			f := cf.f
			if f.frozenEpoch == n.epoch {
				continue
			}
			f.frozenEpoch = n.epoch
			f.rate = bestShare
			frozen++
			for _, fc := range f.cons {
				st := fc.st
				st.residual -= bestShare
				if st.residual < 0 {
					st.residual = 0
				}
				st.unfrozen--
			}
		}
	}
	n.liveCons = live[:0]

	// Schedule the next completion.
	nextIn := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < nextIn {
			nextIn = t
		}
	}
	if math.IsInf(nextIn, 1) {
		// No flow can make progress: a configuration error (zero-capacity
		// path). Surface loudly rather than hanging the simulation.
		//lint:allow hotalloc(panic path only: formats a configuration-error report)
		panic(fmt.Sprintf("fabric: %d flows with zero allocated rate", len(n.flows)))
	}
	n.armCompletionTimer(durationFromSeconds(nextIn))
	if n.auditor != nil {
		n.auditor()
	}
}

// completionTimer is a reusable epoch-guarded completion thunk. Each
// recompute arms one; superseded timers fire as no-ops. The thunk is
// created once per timer object and recycles itself after firing, so
// arming allocates nothing in steady state.
type completionTimer struct {
	n     *Network
	epoch uint64
	fn    func()
}

// armCompletionTimer schedules the next flow-completion check for the
// current allocation epoch.
//
//perf:hot
func (n *Network) armCompletionTimer(d time.Duration) {
	now := n.env.Now()
	at := now + sim.Time(d)
	if t := n.armedTimer; t != nil && n.armedAt == now && n.armedFor == at {
		// Same instant, same deadline: the already-queued timer does this
		// epoch's work (it would have fired stale and been immediately
		// followed by an identical live timer at the same instant).
		t.epoch = n.epoch
		return
	}
	var t *completionTimer
	if last := len(n.freeTimers) - 1; last >= 0 {
		t = n.freeTimers[last]
		n.freeTimers[last] = nil
		n.freeTimers = n.freeTimers[:last]
	} else {
		t = &completionTimer{n: n}
		//lint:allow hotalloc(one closure per pooled timer object, created on the pool-miss path and reused forever)
		t.fn = func() {
			if t.n.armedTimer == t {
				t.n.armedTimer = nil
			}
			if t.n.epoch == t.epoch {
				t.n.advance()
				t.n.finishCompleted()
			}
			t.n.freeTimers = append(t.n.freeTimers, t)
		}
	}
	t.epoch = n.epoch
	n.armedTimer, n.armedAt, n.armedFor = t, now, at
	n.env.After(d, t.fn)
}

// completionEpsilon absorbs float rounding when deciding a flow is done.
const completionEpsilon = 1e-3 // bytes

//perf:hot
func (n *Network) finishCompleted() {
	var doneBuf [16]*Flow
	done := doneBuf[:0]
	for i := 0; i < len(n.flows); {
		f := n.flows[i]
		if f.remaining > completionEpsilon {
			i++
			continue
		}
		n.removeFlow(f) // swaps the tail into slot i; revisit it
		done = append(done, f)
	}
	// Completion signals with the same path latency fire at the same
	// instant; emit each such group as one batched event instead of one
	// heap event per flow (a ring round retires every leg at once). The
	// batch fires its signals in the order the per-flow events would have
	// had, so event positions are unchanged.
	for len(done) > 0 {
		lat := done[0].latency
		b := n.takeBatch()
		keep := done[:0]
		for _, f := range done {
			if f.latency == lat {
				b.sigs = append(b.sigs, &f.done)
			} else {
				keep = append(keep, f)
			}
		}
		if len(b.sigs) == 1 {
			// Sole flow at this latency: a plain signal event is cheaper.
			n.env.AfterSignal(lat, b.sigs[0])
			b.sigs[0] = nil
			b.sigs = b.sigs[:0]
			n.freeBatches = append(n.freeBatches, b)
		} else {
			n.env.After(lat, b.fn)
		}
		done = keep
	}
	n.recomputeSync()
}

// signalBatch fires a group of completion signals that share one fire
// instant as a single event. The thunk is created once per pooled batch
// and recycles itself after firing.
type signalBatch struct {
	n    *Network
	sigs []*sim.Signal
	fn   func()
}

//perf:hot
func (n *Network) takeBatch() *signalBatch {
	if last := len(n.freeBatches) - 1; last >= 0 {
		b := n.freeBatches[last]
		n.freeBatches[last] = nil
		n.freeBatches = n.freeBatches[:last]
		return b
	}
	b := &signalBatch{n: n}
	//lint:allow hotalloc(one closure per pooled batch object, created on the pool-miss path and reused forever)
	b.fn = func() {
		e := b.n.env
		for i, s := range b.sigs {
			s.Fire(e)
			b.sigs[i] = nil
		}
		b.sigs = b.sigs[:0]
		b.n.freeBatches = append(b.n.freeBatches, b)
	}
	return b
}

func durationFromSeconds(s float64) time.Duration {
	if s < 0 {
		s = 0
	}
	d := time.Duration(s * float64(time.Second))
	// Guard against rounding to zero, which would busy-loop the engine:
	// always make at least 1ns of progress.
	if d == 0 {
		d = time.Nanosecond
	}
	return d
}

// SetLinkCapacity changes both directions of a link mid-run — the fault
// engine's degradation/outage/repair primitive. In-flight traffic is
// integrated at the old rates up to the current instant, then the fair
// shares are recomputed under the new capacities, so flows crossing the
// link slow down (or thaw on repair) immediately and deterministically.
// Capacities must stay positive: a true zero would wedge flows forever;
// outages use a small floor (faults.OutageFloor) instead.
func (n *Network) SetLinkCapacity(id LinkID, capAB, capBA units.BytesPerSec) {
	if capAB <= 0 || capBA <= 0 {
		panic(fmt.Sprintf("fabric: link %d capacity must stay positive (got %v/%v)", id, capAB, capBA))
	}
	n.advance()
	l := n.links[id]
	if n.obs != nil {
		name := "link-repair"
		if capAB < l.CapAtoB || capBA < l.CapBtoA {
			name = "link-degrade"
		}
		ev := n.obs.Instant(obs.CatFabric, name)
		n.obs.SetAttr(ev, "link", int64(id))
	}
	l.CapAtoB, l.CapBtoA = capAB, capBA
	n.recomputeSync()
}

// Traverses reports whether the flow's path crosses the link (either
// direction). The fault-aware invariant probes use it to assert no live
// flow rides a dead device's link.
func (f *Flow) Traverses(id LinkID) bool {
	for _, dl := range f.path {
		if dl.link.ID == id {
			return true
		}
	}
	return false
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// LinkTrafficSnapshot returns cumulative (A→B, B→A) bytes for a link after
// integrating flows to the current instant. Monitors diff two snapshots to
// get a rate, exactly as the Falcon GUI computes per-port GB/s.
func (n *Network) LinkTrafficSnapshot(id LinkID) (ab, ba units.Bytes) {
	n.advance()
	l := n.links[id]
	return l.BytesAtoB(), l.BytesBtoA()
}
