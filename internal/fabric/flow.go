package fabric

import (
	"fmt"
	"math"
	"time"

	"composable/internal/sim"
	"composable/internal/units"
)

// Network is a fabric graph plus an active set of fluid flows. All mutation
// must happen inside the simulation (from processes or scheduled callbacks);
// the engine's strict handoff makes that race-free without locks.
type Network struct {
	env   *sim.Env
	nodes []*Node
	links []*Link
	adj   map[NodeID][]dirLink

	// EndpointOverhead is added once per transfer to model DMA/driver
	// setup at the endpoints; it dominates small-message p2p latency.
	EndpointOverhead time.Duration

	// flows is the active set in deterministic insertion order (removal
	// swaps the tail in; each flow tracks its index).
	flows      []*Flow
	lastUpdate sim.Time
	epoch      uint64
	routeCache map[[2]NodeID][]dirLink

	// linkCons holds one persistent constraint per link direction, indexed
	// by 2*LinkID (+1 for the B→A direction), created lazily on first use.
	// cons lists the constraints that currently carry flows: flow add and
	// remove touch only the constraints on the flow's own path, and
	// recompute sweeps empty ones out lazily — nothing is rebuilt per
	// churn.
	linkCons []*constraint
	cons     []*constraint

	// auditor, when set, runs after every max-min recompute with the new
	// allocation in place. It is the allocator's invariant probe point
	// (internal/invariant checks capacity and conservation through it);
	// the nil check keeps the churn path free.
	auditor func()
}

// SetAuditor installs fn to run after every allocation recompute, once the
// new fair-share rates are assigned. Pass nil to remove it. The auditor
// must not start or cancel flows; it observes through VisitAllocations,
// VisitFlows and the link byte counters.
func (n *Network) SetAuditor(fn func()) { n.auditor = fn }

// VisitAllocations calls fn for every link direction currently carrying
// flows, with the total allocated rate and the direction's capacity (both
// bytes/sec). Per-flow rate-cap constraints are not included; see
// Flow.MaxRate.
func (n *Network) VisitAllocations(fn func(l *Link, forward bool, allocated, capacity float64)) {
	for _, st := range n.cons {
		if st.link == nil || len(st.flows) == 0 {
			continue
		}
		total := 0.0
		for _, f := range st.flows {
			total += f.rate
		}
		fn(st.link, st.forward, total, st.capacity())
	}
}

// VisitFlows calls fn for every active flow in insertion order.
func (n *Network) VisitFlows(fn func(f *Flow)) {
	for _, f := range n.flows {
		fn(f)
	}
}

// constraint is one capacity limit in the max-min allocation: a direction
// of a link, or a flow's own rate cap (a virtual single-flow link).
// Constraints persist across recomputes; residual and unfrozen are
// refreshed at the start of each allocation epoch.
type constraint struct {
	link    *Link // nil for per-flow rate caps
	forward bool
	capped  float64 // rate cap when link is nil

	flows    []*Flow
	residual float64
	unfrozen int
	// active tracks membership in Network.cons so a constraint is never
	// listed twice; it stays set while the constraint sits in cons, even
	// after its last flow leaves, until a recompute sweeps it out.
	active bool
}

func (st *constraint) capacity() float64 {
	if st.link == nil {
		return st.capped
	}
	if st.forward {
		return float64(st.link.CapAtoB)
	}
	return float64(st.link.CapBtoA)
}

// NewNetwork creates an empty fabric bound to a simulation environment.
func NewNetwork(env *sim.Env) *Network {
	return &Network{
		env: env,
		adj: make(map[NodeID][]dirLink),
	}
}

// Env returns the simulation environment.
func (n *Network) Env() *sim.Env { return n.env }

// Flow is an in-flight transfer. Its instantaneous rate is recomputed by
// the max-min fair allocator whenever the set of flows changes.
type Flow struct {
	Src, Dst  NodeID
	path      []dirLink
	remaining float64 // bytes
	rate      float64 // bytes/sec
	maxRate   float64 // 0 = unlimited; models endpoint media/DMA limits
	done      sim.Signal
	latency   time.Duration
	net       *Network

	// cons caches the constraints along the path (plus the rate cap, if
	// any), so recomputes never rebuild a flow→constraint index.
	cons []*constraint
	// idx is the flow's position in Network.flows.
	idx int
	// frozenEpoch marks the allocation epoch the flow was last frozen in,
	// replacing a per-recompute frozen set.
	frozenEpoch uint64
}

// Done returns the signal fired when the flow (including its path latency)
// completes.
func (f *Flow) Done() *sim.Signal { return &f.done }

// Rate returns the flow's current allocated rate.
func (f *Flow) Rate() units.BytesPerSec { return units.BytesPerSec(f.rate) }

// Remaining returns the bytes not yet transferred, as of the last
// integration instant.
func (f *Flow) Remaining() units.Bytes { return units.Bytes(f.remaining) }

// MaxRate returns the flow's rate cap (0 = unlimited).
func (f *Flow) MaxRate() units.BytesPerSec { return units.BytesPerSec(f.maxRate) }

// StartFlow begins transferring size bytes src→dst and returns the flow.
// The returned flow's Done signal fires when the last byte arrives (transfer
// completion plus one-way path latency). Zero-length or same-node transfers
// complete after just the path latency.
func (n *Network) StartFlow(src, dst NodeID, size units.Bytes) (*Flow, error) {
	return n.StartFlowLimited(src, dst, size, 0)
}

// StartFlowLimited is StartFlow with a per-flow rate cap (0 = unlimited),
// used for endpoints whose internal media is slower than their link — an
// NVMe device's flash, a DMA engine's request rate.
func (n *Network) StartFlowLimited(src, dst NodeID, size units.Bytes, maxRate units.BytesPerSec) (*Flow, error) {
	path, err := n.Route(src, dst)
	if err != nil {
		return nil, err
	}
	lat := n.EndpointOverhead
	for _, dl := range path {
		lat += dl.link.Latency
	}
	f := &Flow{Src: src, Dst: dst, path: path, remaining: float64(size),
		maxRate: float64(maxRate), latency: lat, net: n}
	n.advance()
	if f.remaining <= 0 || (len(path) == 0 && f.maxRate <= 0) {
		n.env.After(lat, func() { f.done.Fire(n.env) })
		return f, nil
	}
	n.addFlow(f)
	n.recompute()
	return f, nil
}

// addFlow registers f with the active set and with the constraints on its
// path — the only link state touched is the flow's own.
//
//perf:hot
func (n *Network) addFlow(f *Flow) {
	f.idx = len(n.flows)
	n.flows = append(n.flows, f)
	f.cons = make([]*constraint, 0, len(f.path)+1)
	for _, dl := range f.path {
		st := n.linkConstraint(dl)
		st.flows = append(st.flows, f)
		if !st.active {
			st.active = true
			n.cons = append(n.cons, st)
		}
		f.cons = append(f.cons, st)
	}
	if f.maxRate > 0 {
		//lint:allow hotalloc(rate-capped flows only: one single-element constraint per capped flow at start)
		st := &constraint{capped: f.maxRate, flows: []*Flow{f}, active: true}
		n.cons = append(n.cons, st)
		f.cons = append(f.cons, st)
	}
}

// removeFlow unregisters a completed flow, again touching only the
// constraints on its own path. Emptied constraints are left in cons for the
// next recompute to sweep out.
//
//perf:hot
func (n *Network) removeFlow(f *Flow) {
	last := len(n.flows) - 1
	n.flows[f.idx] = n.flows[last]
	n.flows[f.idx].idx = f.idx
	n.flows[last] = nil
	n.flows = n.flows[:last]
	for _, st := range f.cons {
		for i, g := range st.flows {
			if g == f {
				st.flows[i] = st.flows[len(st.flows)-1]
				st.flows[len(st.flows)-1] = nil
				st.flows = st.flows[:len(st.flows)-1]
				break
			}
		}
	}
	f.cons = nil
}

// linkConstraint returns the persistent constraint for one link direction,
// creating it on first use.
//
//perf:hot
func (n *Network) linkConstraint(dl dirLink) *constraint {
	i := 2 * int(dl.link.ID)
	if !dl.forward {
		i++
	}
	st := n.linkCons[i]
	if st == nil {
		st = &constraint{link: dl.link, forward: dl.forward}
		n.linkCons[i] = st
	}
	return st
}

// TransferLimited moves size bytes with a per-flow rate cap, blocking until
// arrival.
func (n *Network) TransferLimited(p *sim.Proc, src, dst NodeID, size units.Bytes, maxRate units.BytesPerSec) error {
	f, err := n.StartFlowLimited(src, dst, size, maxRate)
	if err != nil {
		return err
	}
	f.done.Wait(p)
	return nil
}

// Transfer moves size bytes src→dst, blocking the calling process until the
// data has fully arrived. It is the common case wrapper around StartFlow.
func (n *Network) Transfer(p *sim.Proc, src, dst NodeID, size units.Bytes) error {
	f, err := n.StartFlow(src, dst, size)
	if err != nil {
		return err
	}
	f.done.Wait(p)
	return nil
}

// ParallelTransfer starts one flow per (src,dst,size) triple and blocks
// until all complete: the building block for collective steps.
func (n *Network) ParallelTransfer(p *sim.Proc, xs []TransferSpec) error {
	flows := make([]*Flow, 0, len(xs))
	for _, x := range xs {
		f, err := n.StartFlow(x.Src, x.Dst, x.Size)
		if err != nil {
			return err
		}
		flows = append(flows, f)
	}
	for _, f := range flows {
		f.done.Wait(p)
	}
	return nil
}

// TransferSpec names one leg of a parallel transfer.
type TransferSpec struct {
	Src, Dst NodeID
	Size     units.Bytes
}

// advance integrates all flows from lastUpdate to now at their current
// rates, crediting per-link byte counters.
//
//perf:hot
func (n *Network) advance() {
	now := n.env.Now()
	dt := (now - n.lastUpdate).Seconds()
	n.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, f := range n.flows {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, dl := range f.path {
			dl.addBytes(moved)
		}
	}
}

// recompute runs max-min fair allocation over the active flows and
// schedules the next completion event. It must be called with counters
// already advanced to the current instant.
//
// The sweep is incremental in its bookkeeping: constraints persist between
// calls (no byKey/flowCons maps are rebuilt), frozen state is an epoch
// stamp on each flow, and per-constraint unfrozen counts replace the
// per-round rescans of every constraint's flow list.
//
//perf:hot
func (n *Network) recompute() {
	n.epoch++
	if len(n.flows) == 0 {
		if n.auditor != nil {
			n.auditor()
		}
		return
	}

	// Refresh the active constraints for this epoch, sweeping out the
	// ones whose last flow has left.
	cons := n.cons[:0]
	for _, st := range n.cons {
		if len(st.flows) == 0 {
			st.active = false
			continue
		}
		st.residual = st.capacity()
		st.unfrozen = len(st.flows)
		cons = append(cons, st)
	}
	for i := len(cons); i < len(n.cons); i++ {
		n.cons[i] = nil
	}
	n.cons = cons

	// Progressive filling: repeatedly find the most constrained
	// constraint (smallest fair share among its unfrozen flows), freeze
	// those flows at that share, remove their demand, repeat.
	for _, f := range n.flows {
		f.rate = math.Inf(1)
	}
	frozen := 0
	for frozen < len(n.flows) {
		bestShare := math.Inf(1)
		var best *constraint
		for _, st := range cons {
			if st.unfrozen == 0 {
				continue
			}
			share := st.residual / float64(st.unfrozen)
			if share < bestShare {
				bestShare, best = share, st
			}
		}
		if best == nil {
			break
		}
		for _, f := range best.flows {
			if f.frozenEpoch == n.epoch {
				continue
			}
			f.frozenEpoch = n.epoch
			f.rate = bestShare
			frozen++
			for _, st := range f.cons {
				st.residual -= bestShare
				if st.residual < 0 {
					st.residual = 0
				}
				st.unfrozen--
			}
		}
	}

	// Schedule the next completion.
	nextIn := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < nextIn {
			nextIn = t
		}
	}
	if math.IsInf(nextIn, 1) {
		// No flow can make progress: a configuration error (zero-capacity
		// path). Surface loudly rather than hanging the simulation.
		//lint:allow hotalloc(panic path only: formats a configuration-error report)
		panic(fmt.Sprintf("fabric: %d flows with zero allocated rate", len(n.flows)))
	}
	epoch := n.epoch
	//lint:allow hotalloc(one completion-timer closure per recompute; it carries the epoch guard)
	n.env.After(durationFromSeconds(nextIn), func() {
		if n.epoch != epoch {
			return // superseded by a newer recompute
		}
		n.advance()
		n.finishCompleted()
	})
	if n.auditor != nil {
		n.auditor()
	}
}

// completionEpsilon absorbs float rounding when deciding a flow is done.
const completionEpsilon = 1e-3 // bytes

//perf:hot
func (n *Network) finishCompleted() {
	for i := 0; i < len(n.flows); {
		f := n.flows[i]
		if f.remaining > completionEpsilon {
			i++
			continue
		}
		n.removeFlow(f) // swaps the tail into slot i; revisit it
		//lint:allow hotalloc(one latency-delay closure per completed flow, not per event)
		n.env.After(f.latency, func() { f.done.Fire(n.env) })
	}
	n.recompute()
}

func durationFromSeconds(s float64) time.Duration {
	if s < 0 {
		s = 0
	}
	d := time.Duration(s * float64(time.Second))
	// Guard against rounding to zero, which would busy-loop the engine:
	// always make at least 1ns of progress.
	if d == 0 {
		d = time.Nanosecond
	}
	return d
}

// SetLinkCapacity changes both directions of a link mid-run — the fault
// engine's degradation/outage/repair primitive. In-flight traffic is
// integrated at the old rates up to the current instant, then the fair
// shares are recomputed under the new capacities, so flows crossing the
// link slow down (or thaw on repair) immediately and deterministically.
// Capacities must stay positive: a true zero would wedge flows forever;
// outages use a small floor (faults.OutageFloor) instead.
func (n *Network) SetLinkCapacity(id LinkID, capAB, capBA units.BytesPerSec) {
	if capAB <= 0 || capBA <= 0 {
		panic(fmt.Sprintf("fabric: link %d capacity must stay positive (got %v/%v)", id, capAB, capBA))
	}
	n.advance()
	l := n.links[id]
	l.CapAtoB, l.CapBtoA = capAB, capBA
	n.recompute()
}

// Traverses reports whether the flow's path crosses the link (either
// direction). The fault-aware invariant probes use it to assert no live
// flow rides a dead device's link.
func (f *Flow) Traverses(id LinkID) bool {
	for _, dl := range f.path {
		if dl.link.ID == id {
			return true
		}
	}
	return false
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// LinkTrafficSnapshot returns cumulative (A→B, B→A) bytes for a link after
// integrating flows to the current instant. Monitors diff two snapshots to
// get a rate, exactly as the Falcon GUI computes per-port GB/s.
func (n *Network) LinkTrafficSnapshot(id LinkID) (ab, ba units.Bytes) {
	n.advance()
	l := n.links[id]
	return l.BytesAtoB(), l.BytesBtoA()
}
