package fabric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"composable/internal/sim"
	"composable/internal/units"
)

// line builds a -- b -- c with 10 GB/s links, 1µs each.
func line(t *testing.T) (*sim.Env, *Network, NodeID, NodeID, NodeID) {
	t.Helper()
	env := sim.NewEnv()
	n := NewNetwork(env)
	a := n.AddNode("a", KindGPU)
	b := n.AddNode("b", KindSwitch)
	c := n.AddNode("c", KindGPU)
	n.ConnectSym(a, b, units.GBps(10), time.Microsecond, "PCI-e 4.0")
	n.ConnectSym(b, c, units.GBps(10), time.Microsecond, "PCI-e 4.0")
	return env, n, a, b, c
}

func TestSingleTransferTime(t *testing.T) {
	env, n, a, _, c := line(t)
	var took time.Duration
	env.Go("x", func(p *sim.Proc) {
		start := p.Now()
		if err := n.Transfer(p, a, c, 10*units.GB); err != nil {
			t.Error(err)
		}
		took = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// 10 GiB at 10 GB/s ≈ 1.0737s, plus 2µs path latency.
	want := time.Duration(float64(10*units.GB) / 10e9 * float64(time.Second))
	if diff := (took - want - 2*time.Microsecond); diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("took %v, want ≈%v", took, want)
	}
}

func TestFairSharingHalvesRate(t *testing.T) {
	env, n, a, _, c := line(t)
	var t1, t2 time.Duration
	env.Go("f1", func(p *sim.Proc) {
		if err := n.Transfer(p, a, c, 10*units.GB); err != nil {
			t.Error(err)
		}
		t1 = p.Now()
	})
	env.Go("f2", func(p *sim.Proc) {
		if err := n.Transfer(p, a, c, 10*units.GB); err != nil {
			t.Error(err)
		}
		t2 = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Two equal flows sharing a 10 GB/s path: both finish at ~2× the solo
	// time.
	want := time.Duration(2 * float64(10*units.GB) / 10e9 * float64(time.Second))
	for _, got := range []time.Duration{t1, t2} {
		if diff := got - want; diff < -2*time.Millisecond || diff > 2*time.Millisecond {
			t.Fatalf("finish at %v, want ≈%v", got, want)
		}
	}
}

func TestOppositeDirectionsDoNotContend(t *testing.T) {
	env, n, a, _, c := line(t)
	var t1, t2 time.Duration
	env.Go("f1", func(p *sim.Proc) {
		_ = n.Transfer(p, a, c, 10*units.GB)
		t1 = p.Now()
	})
	env.Go("f2", func(p *sim.Proc) {
		_ = n.Transfer(p, c, a, 10*units.GB)
		t2 = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(10*units.GB) / 10e9 * float64(time.Second))
	for _, got := range []time.Duration{t1, t2} {
		if diff := got - want; diff < -2*time.Millisecond || diff > 2*time.Millisecond {
			t.Fatalf("finish at %v, want ≈%v (full duplex)", got, want)
		}
	}
}

func TestMaxMinUnevenBottleneck(t *testing.T) {
	// a --10--> b; c --10--> b; b --10--> d.
	// Flow1 a→d and flow2 c→d share b→d: 5 each.
	// Flow3 a→b only: gets the a→b residual (10-5 = 5)... then max-min
	// gives it the leftover: flow1 frozen at 5, flow3 gets 5.
	env := sim.NewEnv()
	n := NewNetwork(env)
	a := n.AddNode("a", KindGPU)
	b := n.AddNode("b", KindSwitch)
	c := n.AddNode("c", KindGPU)
	d := n.AddNode("d", KindGPU)
	n.ConnectSym(a, b, units.GBps(10), 0, "x")
	n.ConnectSym(c, b, units.GBps(10), 0, "x")
	n.ConnectSym(b, d, units.GBps(10), 0, "x")

	env.Go("setup", func(p *sim.Proc) {
		f1, _ := n.StartFlow(a, d, units.GB)
		f2, _ := n.StartFlow(c, d, units.GB)
		f3, _ := n.StartFlow(a, b, units.GB)
		if got := f1.Rate().GB(); math.Abs(got-5) > 0.01 {
			t.Errorf("f1 rate %v, want 5", got)
		}
		if got := f2.Rate().GB(); math.Abs(got-5) > 0.01 {
			t.Errorf("f2 rate %v, want 5", got)
		}
		if got := f3.Rate().GB(); math.Abs(got-5) > 0.01 {
			t.Errorf("f3 rate %v, want 5", got)
		}
		f1.Done().Wait(p)
		f2.Done().Wait(p)
		f3.Done().Wait(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRoutePrefersLowLatencyDirectLink(t *testing.T) {
	// GPU pair with both a direct NVLink and a 2-hop PCIe path must route
	// over NVLink.
	env := sim.NewEnv()
	n := NewNetwork(env)
	g0 := n.AddNode("gpu0", KindGPU)
	g1 := n.AddNode("gpu1", KindGPU)
	sw := n.AddNode("sw", KindSwitch)
	n.ConnectSym(g0, sw, units.GBps(12), 700*time.Nanosecond, "PCI-e 4.0")
	n.ConnectSym(g1, sw, units.GBps(12), 700*time.Nanosecond, "PCI-e 4.0")
	n.ConnectSym(g0, g1, units.GBps(36), 600*time.Nanosecond, "NVLink")
	proto, err := n.PathProtocol(g0, g1)
	if err != nil {
		t.Fatal(err)
	}
	if proto != "NVLink" {
		t.Fatalf("protocol = %q, want NVLink", proto)
	}
	lat, _ := n.PathLatency(g0, g1)
	if lat != 600*time.Nanosecond {
		t.Fatalf("latency = %v, want 600ns", lat)
	}
}

func TestNoPathError(t *testing.T) {
	env := sim.NewEnv()
	n := NewNetwork(env)
	a := n.AddNode("a", KindGPU)
	b := n.AddNode("b", KindGPU)
	if _, err := n.Route(a, b); err == nil {
		t.Fatal("expected unreachable error")
	}
}

func TestLinkCountersMatchTransferredBytes(t *testing.T) {
	env, n, a, _, c := line(t)
	env.Go("x", func(p *sim.Proc) {
		_ = n.Transfer(p, a, c, 3*units.GB)
		_ = n.Transfer(p, c, a, units.GB)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	ab, ba := n.LinkTrafficSnapshot(0)
	if ab != 3*units.GB {
		t.Fatalf("a→b bytes = %v, want 3GB", ab)
	}
	if ba != units.GB {
		t.Fatalf("b→a bytes = %v, want 1GB", ba)
	}
}

func TestParallelTransferBarrier(t *testing.T) {
	env, n, a, _, c := line(t)
	var took time.Duration
	env.Go("x", func(p *sim.Proc) {
		start := p.Now()
		err := n.ParallelTransfer(p, []TransferSpec{
			{Src: a, Dst: c, Size: 5 * units.GB},
			{Src: a, Dst: c, Size: 5 * units.GB},
		})
		if err != nil {
			t.Error(err)
		}
		took = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(10*units.GB) / 10e9 * float64(time.Second))
	if diff := took - want; diff < -2*time.Millisecond || diff > 2*time.Millisecond {
		t.Fatalf("took %v, want ≈%v", took, want)
	}
}

// dirKey names one direction of a link for the per-direction usage sums
// the allocator invariants are checked against.
type dirKey struct {
	id      LinkID
	forward bool
}

// TestMaxMinPropertyInvariants checks, over random star topologies and flow
// sets, the three defining properties of the allocator: non-negative rates,
// no directed link over capacity, and work conservation (every flow is
// bottlenecked by at least one saturated link on its path).
func TestMaxMinPropertyInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := sim.NewEnv()
		n := NewNetwork(env)
		hub := n.AddNode("hub", KindSwitch)
		nLeaf := 2 + rng.Intn(6)
		leaves := make([]NodeID, nLeaf)
		caps := make([]float64, nLeaf)
		for i := range leaves {
			caps[i] = 1e9 * (1 + rng.Float64()*20)
			leaves[i] = n.AddNode("leaf", KindGPU)
			n.ConnectSym(leaves[i], hub, units.BytesPerSec(caps[i]), 0, "x")
		}
		ok := true
		env.Go("flows", func(p *sim.Proc) {
			nf := 1 + rng.Intn(8)
			flows := make([]*Flow, 0, nf)
			for i := 0; i < nf; i++ {
				s := rng.Intn(nLeaf)
				d := rng.Intn(nLeaf)
				if s == d {
					d = (d + 1) % nLeaf
				}
				f, err := n.StartFlow(leaves[s], leaves[d], 100*units.GB)
				if err != nil {
					t.Error(err)
					ok = false
					return
				}
				flows = append(flows, f)
			}
			// Inspect allocation of the final recompute (reading rate
			// fields directly, so run any pending deferred sweep first —
			// the public readers do this via the same call).
			n.ensureAllocated()
			use := map[dirKey]float64{}
			for _, f := range flows {
				if f.rate < 0 {
					ok = false
				}
				for _, dl := range f.path {
					use[dirKey{dl.link.ID, dl.forward}] += f.rate
				}
			}
			for k, u := range use {
				l := n.Link(k.id)
				cap := float64(l.CapAtoB)
				if !k.forward {
					cap = float64(l.CapBtoA)
				}
				if u > cap*(1+1e-9) {
					ok = false
				}
			}
			// Work conservation: each flow touches a saturated link.
			for _, f := range flows {
				saturated := false
				for _, dl := range f.path {
					k := dirKey{dl.link.ID, dl.forward}
					cap := dl.capacity()
					if use[k] >= cap*(1-1e-9) {
						saturated = true
					}
				}
				if !saturated {
					ok = false
				}
			}
		})
		// Don't run to completion; the allocation check above is the test.
		_ = env.RunUntil(time.Millisecond)
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroByteTransferTakesLatencyOnly(t *testing.T) {
	env, n, a, _, c := line(t)
	var took time.Duration
	env.Go("x", func(p *sim.Proc) {
		start := p.Now()
		_ = n.Transfer(p, a, c, 0)
		took = p.Now() - start
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 2*time.Microsecond {
		t.Fatalf("took %v, want 2µs", took)
	}
}
