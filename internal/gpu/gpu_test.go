package gpu

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"composable/internal/sim"
	"composable/internal/units"
)

func newDev(env *sim.Env) *Device { return New(env, TeslaV100SXM2, 0, 0, true) }

func TestAllocatorOOM(t *testing.T) {
	env := sim.NewEnv()
	d := newDev(env)
	usable := d.Usable()
	if err := d.Alloc(usable); err != nil {
		t.Fatalf("exact-fit alloc failed: %v", err)
	}
	err := d.Alloc(1)
	var oom *ErrOOM
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if oom.Free != 0 {
		t.Fatalf("OOM free = %v", oom.Free)
	}
	d.FreeMem(usable)
	if d.Used() != 0 {
		t.Fatalf("used after free = %v", d.Used())
	}
}

func TestAllocatorPeakTracking(t *testing.T) {
	env := sim.NewEnv()
	d := newDev(env)
	_ = d.Alloc(4 * units.GB)
	_ = d.Alloc(2 * units.GB)
	d.FreeMem(5 * units.GB)
	_ = d.Alloc(units.GB)
	if d.PeakUsed() != 6*units.GB {
		t.Fatalf("peak = %v, want 6GB", d.PeakUsed())
	}
}

func TestMemUtilizationIncludesReserved(t *testing.T) {
	env := sim.NewEnv()
	d := newDev(env)
	base := d.MemUtilization()
	if base <= 0 || base >= 1 {
		t.Fatalf("idle mem util = %v (framework reservation should show)", base)
	}
	_ = d.Alloc(8 * units.GB)
	if d.MemUtilization() <= base {
		t.Fatal("allocation did not raise mem util")
	}
}

// TestAllocatorInvariantProperty: random alloc/free sequences never let
// usage exceed capacity or go negative, and free restores capacity.
func TestAllocatorInvariantProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := sim.NewEnv()
		d := newDev(env)
		var held []units.Bytes
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 || len(held) == 0 {
				n := units.Bytes(rng.Int63n(int64(4 * units.GB)))
				if err := d.Alloc(n); err == nil {
					held = append(held, n)
				}
			} else {
				i := rng.Intn(len(held))
				d.FreeMem(held[i])
				held = append(held[:i], held[i+1:]...)
			}
			if d.Used() < 0 || d.Used() > d.Usable() {
				return false
			}
			var sum units.Bytes
			for _, h := range held {
				sum += h
			}
			if sum != d.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeSerializesOnDevice(t *testing.T) {
	env := sim.NewEnv()
	d := newDev(env)
	var t1, t2 time.Duration
	env.Go("k1", func(p *sim.Proc) {
		d.Compute(p, 10*time.Millisecond)
		t1 = p.Now()
	})
	env.Go("k2", func(p *sim.Proc) {
		d.Compute(p, 10*time.Millisecond)
		t2 = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 != 10*time.Millisecond || t2 != 20*time.Millisecond {
		t.Fatalf("kernels did not serialize: %v, %v", t1, t2)
	}
}

func TestUtilizationAndNCCLBusyCredit(t *testing.T) {
	env := sim.NewEnv()
	d := newDev(env)
	env.Go("work", func(p *sim.Proc) {
		d.Compute(p, 30*time.Millisecond)
		p.Sleep(30 * time.Millisecond) // blocked on a collective
		d.MarkBusyFor(30 * time.Millisecond)
		p.Sleep(40 * time.Millisecond) // idle
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	got := d.Utilization()
	if got < 0.59 || got > 0.61 {
		t.Fatalf("utilization = %v, want 0.6 (30ms compute + 30ms NCCL over 100ms)", got)
	}
}

func TestPrecisionHelpers(t *testing.T) {
	if FP16.BytesPerElement() != 2 || FP32.BytesPerElement() != 4 {
		t.Fatal("bytes per element wrong")
	}
	if FP16.String() != "FP16" || FP32.String() != "FP32" {
		t.Fatal("precision strings wrong")
	}
	if TeslaV100SXM2.Peak(FP16) <= TeslaV100SXM2.Peak(FP32) {
		t.Fatal("tensor-core peak should exceed FP32 peak")
	}
}

func TestCatalogSpecs(t *testing.T) {
	// The catalog must reflect the paper's hardware: 16 GB HBM2 V100s,
	// six NVLink bricks on the SXM2 part, none on the chassis part.
	if TeslaV100SXM2.Memory != 16*units.GB || TeslaV100PCIe.Memory != 16*units.GB {
		t.Fatal("V100s must have 16GB")
	}
	if TeslaV100SXM2.NVLinks != 6 || TeslaV100PCIe.NVLinks != 0 {
		t.Fatal("NVLink brick counts wrong")
	}
	if TeslaP100.PeakFP16 >= TeslaV100SXM2.PeakFP16/2 {
		t.Fatal("P100 has no tensor cores; FP16 peak must be far below V100")
	}
}
