// Package gpu models NVIDIA data-center GPUs as simulation devices: compute
// throughput by precision, HBM2 capacity with an allocator that reproduces
// out-of-memory behaviour, and busy-time accounting that backs the GPU
// utilization figures.
package gpu

import (
	"fmt"
	"time"

	"composable/internal/fabric"
	"composable/internal/sim"
	"composable/internal/units"
)

// Precision selects the arithmetic used by a workload.
type Precision int

// Supported precisions.
const (
	FP32 Precision = iota
	FP16           // mixed precision: FP16 tensor-core math with FP32 master weights
)

func (p Precision) String() string {
	if p == FP16 {
		return "FP16"
	}
	return "FP32"
}

// BytesPerElement returns the storage size of one tensor element.
func (p Precision) BytesPerElement() units.Bytes {
	if p == FP16 {
		return 2
	}
	return 4
}

// Spec describes a GPU product.
type Spec struct {
	Name     string
	PeakFP32 units.FLOPSRate   // CUDA-core FP32 peak
	PeakFP16 units.FLOPSRate   // tensor-core mixed-precision peak
	MemBW    units.BytesPerSec // HBM2 bandwidth
	Memory   units.Bytes       // device memory capacity
	NVLinks  int               // NVLink brick count (0 for PCIe cards)
	// Reserved is memory unavailable to workloads: CUDA context, cuDNN
	// workspaces and framework caching allocator overhead.
	Reserved units.Bytes
}

// Peak returns the peak throughput for a precision.
func (s Spec) Peak(p Precision) units.FLOPSRate {
	if p == FP16 {
		return s.PeakFP16
	}
	return s.PeakFP32
}

// Catalog entries for the GPUs in the test bed (paper §II-A, §V-A-1).
var (
	// TeslaV100SXM2 is the host-local part: NVLink-attached, 16 GB HBM2.
	TeslaV100SXM2 = Spec{
		Name:     "Tesla V100-SXM2-16GB",
		PeakFP32: units.TFLOPS(15.7),
		PeakFP16: units.TFLOPS(125),
		MemBW:    units.GBps(900),
		Memory:   16 * units.GB,
		NVLinks:  6,
		Reserved: 5 * units.GB / 2,
	}
	// TeslaV100PCIe is the Falcon-attached part: same silicon on a PCIe
	// board (no NVLink in the chassis; peer traffic uses the switch).
	// Compute peaks are modeled identical to the SXM2 part: the paper
	// attributes the entire Falcon overhead to PCIe switching (§V-C-2),
	// so the reproduction keeps card clocks out of the comparison.
	TeslaV100PCIe = Spec{
		Name:     "Tesla V100-PCIE-16GB",
		PeakFP32: units.TFLOPS(15.7),
		PeakFP16: units.TFLOPS(125),
		MemBW:    units.GBps(900),
		Memory:   16 * units.GB,
		NVLinks:  0,
		Reserved: 5 * units.GB / 2,
	}
	// TeslaP100 also populates the chassis (paper §V-A-1) though the
	// evaluated runs use V100s only.
	TeslaP100 = Spec{
		Name:     "Tesla P100-PCIE-16GB",
		PeakFP32: units.TFLOPS(9.3),
		PeakFP16: units.TFLOPS(18.7), // no tensor cores: 2× FP16 vector
		MemBW:    units.GBps(732),
		Memory:   16 * units.GB,
		NVLinks:  0,
		Reserved: 13 * units.GB / 10,
	}
)

// Device is one GPU instance placed in the fabric.
type Device struct {
	Spec  Spec
	Index int           // global index within the composed system
	Node  fabric.NodeID // the GPU's fabric node
	Local bool          // true: host-local (NVLink); false: Falcon-attached

	env     *sim.Env
	compute *sim.Resource
	used    units.Bytes
	peak    units.Bytes
}

// New creates a device bound to a fabric node.
func New(env *sim.Env, spec Spec, index int, node fabric.NodeID, local bool) *Device {
	return &Device{
		Spec: spec, Index: index, Node: node, Local: local,
		env:     env,
		compute: sim.NewResource(fmt.Sprintf("gpu%d.compute", index), 1),
	}
}

// Name returns a short identifier such as "gpu3(local)".
func (d *Device) Name() string {
	loc := "falcon"
	if d.Local {
		loc = "local"
	}
	return fmt.Sprintf("gpu%d(%s)", d.Index, loc)
}

// ErrOOM is returned when an allocation exceeds device memory; the message
// mirrors the CUDA allocator's.
type ErrOOM struct {
	Device    string
	Requested units.Bytes
	Free      units.Bytes
}

func (e *ErrOOM) Error() string {
	return fmt.Sprintf("gpu: CUDA out of memory on %s: tried to allocate %v (%v free)",
		e.Device, e.Requested, e.Free)
}

// Usable returns the memory available to workloads after the framework
// reservation.
func (d *Device) Usable() units.Bytes { return d.Spec.Memory - d.Spec.Reserved }

// Free returns the currently unallocated workload memory.
func (d *Device) Free() units.Bytes { return d.Usable() - d.used }

// Used returns the current workload allocation.
func (d *Device) Used() units.Bytes { return d.used }

// PeakUsed returns the high-water mark of workload allocations.
func (d *Device) PeakUsed() units.Bytes { return d.peak }

// Alloc reserves n bytes of device memory.
func (d *Device) Alloc(n units.Bytes) error {
	if n < 0 {
		return fmt.Errorf("gpu: negative allocation %d", n)
	}
	if d.used+n > d.Usable() {
		return &ErrOOM{Device: d.Name(), Requested: n, Free: d.Free()}
	}
	d.used += n
	if d.used > d.peak {
		d.peak = d.used
	}
	return nil
}

// Free releases n bytes of device memory.
func (d *Device) FreeMem(n units.Bytes) {
	if n < 0 || n > d.used {
		panic(fmt.Sprintf("gpu: freeing %v with %v in use", n, d.used))
	}
	d.used -= n
}

// MemUtilization returns used/total including the framework reservation,
// matching what nvidia-smi reports as memory in use.
func (d *Device) MemUtilization() float64 {
	return float64(d.Spec.Reserved+d.used) / float64(d.Spec.Memory)
}

// Compute occupies the device's execution engine for d time: the workload
// model has already converted FLOPs and memory traffic into a duration.
func (d *Device) Compute(p *sim.Proc, dur time.Duration) {
	d.compute.Acquire(p, 1)
	p.Sleep(dur)
	d.compute.Release(d.env, 1)
}

// MarkBusyFor credits the device with busy time it spent running
// communication kernels (NCCL all-reduce shows up as GPU utilization in
// nvidia-smi even though the training stream is blocked).
func (d *Device) MarkBusyFor(dur time.Duration) { d.compute.AddBusy(d.env, dur) }

// BusySnapshot supports windowed utilization sampling; see
// sim.Resource.UtilizationSince.
func (d *Device) BusySnapshot() (sim.Time, sim.Time) { return d.compute.BusySnapshot(d.env) }

// UtilizationSince returns the busy fraction since a snapshot.
func (d *Device) UtilizationSince(markTime, markBusy sim.Time) float64 {
	return d.compute.UtilizationSince(d.env, markTime, markBusy)
}

// Utilization returns the lifetime busy fraction.
func (d *Device) Utilization() float64 { return d.compute.Utilization(d.env) }
